examples/broker_demo.mli:
