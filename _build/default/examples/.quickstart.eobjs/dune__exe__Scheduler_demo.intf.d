examples/scheduler_demo.mli:
