examples/txn_demo.mli:
