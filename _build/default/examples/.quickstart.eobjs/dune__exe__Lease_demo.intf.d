examples/lease_demo.mli:
