examples/quickstart.ml: Format Grid_paxos Grid_runtime Grid_services List Option Printf
