examples/lease_demo.ml: Grid_paxos Grid_runtime Grid_services Option Printf
