examples/txn_demo.ml: Format Grid_codec Grid_paxos Grid_runtime Grid_services List Option Printf
