examples/broker_demo.ml: Array Grid_paxos Grid_runtime Grid_services List Printf String
