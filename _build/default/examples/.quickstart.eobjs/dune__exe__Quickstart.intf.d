examples/quickstart.mli:
