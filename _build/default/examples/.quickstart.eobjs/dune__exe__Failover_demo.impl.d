examples/failover_demo.ml: Array Format Grid_check Grid_paxos Grid_runtime Grid_services Grid_sim List Option Printf
