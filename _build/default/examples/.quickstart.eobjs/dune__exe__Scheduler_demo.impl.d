examples/scheduler_demo.ml: Grid_paxos Grid_runtime Grid_services Grid_util List Printf String
