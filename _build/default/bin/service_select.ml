(* Shared CLI plumbing: the services a binary can host, and address-list
   parsing ("host:port,host:port,...", replica ids assigned in order). *)

type service = Counter | Kv | Noop

let service_conv =
  let parse = function
    | "counter" -> Ok Counter
    | "kv" -> Ok Kv
    | "noop" -> Ok Noop
    | s -> Error (`Msg (Printf.sprintf "unknown service %S (counter|kv|noop)" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with Counter -> "counter" | Kv -> "kv" | Noop -> "noop")
  in
  Cmdliner.Arg.conv (parse, print)

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> Error (`Msg (Printf.sprintf "bad address %S (expected host:port)" s))
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | None -> Error (`Msg (Printf.sprintf "bad port in %S" s))
    | Some port -> (
      try
        let inet =
          if host = "" || host = "localhost" then Unix.inet_addr_loopback
          else Unix.inet_addr_of_string host
        in
        Ok (Unix.ADDR_INET (inet, port))
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { h_addr_list = [||]; _ } -> Error (`Msg (Printf.sprintf "cannot resolve %S" host))
        | { h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port))
        | exception Not_found -> Error (`Msg (Printf.sprintf "cannot resolve %S" host)))))

let parse_cluster s =
  let parts = String.split_on_char ',' s in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
      match parse_addr (String.trim part) with
      | Ok addr -> go (i + 1) ((i, addr) :: acc) rest
      | Error e -> Error e)
  in
  go 0 [] parts

let cluster_conv =
  let print ppf l =
    Format.pp_print_string ppf (String.concat "," (List.map (fun _ -> "host:port") l))
  in
  Cmdliner.Arg.conv (parse_cluster, print)
