bin/client.ml: Arg Cmd Cmdliner Format Grid_net Grid_paxos Grid_services Grid_util Printf Service_select Stdlib Term Unix
