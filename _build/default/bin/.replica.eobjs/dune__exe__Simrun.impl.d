bin/simrun.ml: Arg Cmd Cmdliner Format Grid_paxos Grid_runtime Grid_services Grid_sim Grid_util Printf Stdlib Term
