bin/client.mli:
