bin/replica.mli:
