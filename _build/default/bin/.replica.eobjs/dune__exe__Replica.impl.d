bin/replica.ml: Arg Cmd Cmdliner Grid_net Grid_paxos Grid_services List Option Printf Service_select Term Thread Unix
