bin/simrun.mli:
