bin/service_select.ml: Array Cmdliner Format List Printf String Unix
