bench/bench_openloop.ml: Array Experiment Float Grid_paxos Grid_runtime Grid_services Grid_util List Printf
