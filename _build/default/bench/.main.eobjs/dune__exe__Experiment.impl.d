bench/experiment.ml: Array Float Fun Grid_codec Grid_paxos Grid_runtime Grid_services Grid_util Int List Printf Stdlib
