bench/main.mli:
