bench/bench_micro.ml: Analyze Bechamel Benchmark Experiment Grid_codec Grid_paxos Grid_util Hashtbl Instance Int List Measure Printf Staged String Test Time Toolkit
