bench/bench_rrt.ml: Experiment Grid_paxos Grid_runtime Grid_util List Printf
