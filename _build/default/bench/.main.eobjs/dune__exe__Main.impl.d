bench/main.ml: Arg Bench_ablation Bench_messages Bench_micro Bench_openloop Bench_rrt Bench_semi_passive Bench_throughput Bench_txn Cmd Cmdliner List Printf Term
