bench/bench_txn.ml: Experiment Grid_runtime Grid_util List Printf
