bench/bench_ablation.ml: Array Experiment Float Grid_codec Grid_paxos Grid_runtime Grid_services Grid_sim Grid_util List Printf
