bench/bench_semi_passive.ml: Array Experiment Float Fun Grid_paxos Grid_runtime Grid_services Grid_sim Grid_util List
