bench/bench_messages.ml: Experiment Float Grid_codec Grid_paxos Grid_runtime Grid_services Grid_util List
