test/test_services.ml: Alcotest Grid_services Grid_util List Option Printf QCheck2 QCheck_alcotest String
