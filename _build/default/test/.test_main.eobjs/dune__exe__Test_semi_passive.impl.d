test/test_semi_passive.ml: Alcotest Array Grid_check Grid_paxos Grid_services Grid_util List Printf
