test/test_codec.ml: Alcotest Bytes Float Grid_codec Int64 List QCheck2 QCheck_alcotest String
