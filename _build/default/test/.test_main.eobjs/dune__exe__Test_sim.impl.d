test/test_sim.ml: Alcotest Float Grid_sim Grid_util List
