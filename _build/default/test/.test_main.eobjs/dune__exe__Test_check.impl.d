test/test_check.ml: Alcotest Float Grid_check Grid_paxos Grid_services Grid_util Hashtbl List Printf
