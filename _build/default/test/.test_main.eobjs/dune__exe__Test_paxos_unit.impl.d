test/test_paxos_unit.ml: Alcotest Array Filename Fun Grid_codec Grid_paxos Grid_util List QCheck2 QCheck_alcotest Sys Unix
