test/test_net.ml: Alcotest Array Ballot Fun Grid_codec Grid_net Grid_paxos Grid_services Grid_util List Printf String Thread Unix
