test/test_faults.ml: Alcotest Array Ballot Filename Float Format Fun Grid_check Grid_paxos Grid_runtime Grid_services Grid_sim Grid_util List Option String Sys Unix
