test/test_util.ml: Alcotest Array Float Fun Grid_util Int List QCheck2 QCheck_alcotest Set String
