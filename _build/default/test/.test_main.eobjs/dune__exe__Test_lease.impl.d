test/test_lease.ml: Alcotest Grid_paxos Grid_runtime Grid_services Grid_util List Option
