test/engine_harness.ml: Array Fun Grid_paxos Grid_services Grid_util List
