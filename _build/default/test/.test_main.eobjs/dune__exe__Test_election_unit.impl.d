test/test_election_unit.ml: Alcotest Array Ballot Engine_harness Grid_codec Grid_paxos Grid_services Grid_util List
