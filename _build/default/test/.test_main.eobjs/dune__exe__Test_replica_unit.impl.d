test/test_replica_unit.ml: Alcotest Array Engine_harness Grid_paxos Grid_services Grid_util List Printf
