test/test_scenario.ml: Alcotest Ballot Grid_codec Grid_paxos Grid_runtime Grid_sim Grid_util List QCheck2 QCheck_alcotest
