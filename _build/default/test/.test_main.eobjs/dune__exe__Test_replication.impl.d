test/test_replication.ml: Alcotest Array Float Grid_check Grid_paxos Grid_runtime Grid_services Grid_sim Grid_util List Option Printf QCheck2 QCheck_alcotest String
