test/test_txn.ml: Alcotest Array Grid_check Grid_codec Grid_paxos Grid_runtime Grid_services Hashtbl List Printf
