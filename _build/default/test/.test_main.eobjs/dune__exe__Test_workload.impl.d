test/test_workload.ml: Alcotest Array Float Grid_codec Grid_paxos Grid_runtime Grid_services Grid_util Hashtbl List Option Printf Stdlib
