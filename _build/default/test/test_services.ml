(* Tests for the example services: semantics, codecs, diff/patch, and the
   apply/replay determinization contract that the replication layer
   relies on. *)

module Rng = Grid_util.Rng
module Noop = Grid_services.Noop
module Counter = Grid_services.Counter
module Broker = Grid_services.Resource_broker
module Sched = Grid_services.Grid_scheduler
module Kv = Grid_services.Kv_store

(* ------------------------------------------------------------------ *)
(* Noop *)

let test_noop_semantics () =
  let s = Noop.initial () in
  let o = Noop.apply ~rng:(Rng.of_int 1) ~now:0.0 s Noop.Noop_write in
  Alcotest.(check int) "write bumps" 1 o.state.writes;
  let o2 = Noop.apply ~rng:(Rng.of_int 1) ~now:0.0 o.state Noop.Noop_read in
  Alcotest.(check int) "read no-op" 1 o2.state.writes;
  Alcotest.(check bool) "classify read" true (Noop.classify Noop.Noop_read = `Read);
  Alcotest.(check bool) "classify write" true (Noop.classify Noop.Noop_write = `Write)

let test_noop_sized_write () =
  let s = Noop.initial () in
  let o = Noop.apply ~rng:(Rng.of_int 1) ~now:0.0 s (Noop.Noop_sized_write 100) in
  Alcotest.(check int) "padding size" 100 (String.length o.state.padding);
  Alcotest.(check bool) "encoded state carries padding" true
    (String.length (Noop.encode_state o.state) > 100)

let test_noop_codec_and_diff () =
  let s = Noop.initial () in
  let o = Noop.apply ~rng:(Rng.of_int 1) ~now:0.0 s Noop.Noop_write in
  let st = Noop.decode_state (Noop.encode_state o.state) in
  Alcotest.(check int) "state roundtrip" 1 st.writes;
  (match Noop.diff ~old_state:s o.state with
  | Some d ->
    let patched = Noop.patch s d in
    Alcotest.(check int) "patch = new" o.state.writes patched.writes;
    (* Padding unchanged -> delta much smaller than a sized state. *)
    let o2 = Noop.apply ~rng:(Rng.of_int 1) ~now:0.0 o.state (Noop.Noop_sized_write 1000) in
    let d2 = Option.get (Noop.diff ~old_state:o.state o2.state) in
    let d3 = Option.get (Noop.diff ~old_state:o2.state
                           (Noop.apply ~rng:(Rng.of_int 1) ~now:0.0 o2.state Noop.Noop_write).state) in
    Alcotest.(check bool) "changed padding shipped" true (String.length d2 > 1000);
    Alcotest.(check bool) "unchanged padding not shipped" true (String.length d3 < 20)
  | None -> Alcotest.fail "noop should provide diffs");
  List.iter
    (fun op -> Alcotest.(check bool) "op roundtrip" true (Noop.decode_op (Noop.encode_op op) = op))
    [ Noop.Noop_read; Noop.Noop_write; Noop.Noop_sized_write 7 ]

(* ------------------------------------------------------------------ *)
(* Counter *)

let test_counter_semantics () =
  let s = Counter.initial () in
  let o = Counter.apply ~rng:(Rng.of_int 1) ~now:0.0 s (Counter.Add 5) in
  Alcotest.(check int) "state" 5 o.state;
  Alcotest.(check int) "result" 5 o.result;
  let o2 = Counter.apply ~rng:(Rng.of_int 1) ~now:0.0 o.state Counter.Get in
  Alcotest.(check int) "get result" 5 o2.result;
  Alcotest.(check int) "get preserves" 5 o2.state

let test_counter_codecs () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "op roundtrip" true
        (Counter.decode_op (Counter.encode_op op) = op))
    [ Counter.Get; Counter.Add 42; Counter.Add (-7) ];
  Alcotest.(check int) "result roundtrip" (-3)
    (Counter.decode_result (Counter.encode_result (-3)));
  Alcotest.(check int) "state roundtrip" 99 (Counter.decode_state (Counter.encode_state 99))

(* ------------------------------------------------------------------ *)
(* Resource broker *)

let broker_with_resources ?(sites = 2) ?(per_site = 3) ?(capacity = 4) () =
  let s = ref (Broker.initial ()) in
  let rng = Rng.of_int 1 in
  for site = 0 to sites - 1 do
    for k = 0 to per_site - 1 do
      let o =
        Broker.apply ~rng ~now:0.0 !s
          (Broker.Register { rid = (site * 100) + k; site; capacity })
      in
      s := o.state
    done
  done;
  !s

let test_broker_register_select () =
  let s = broker_with_resources () in
  let rng = Rng.of_int 42 in
  let o = Broker.apply ~rng ~now:0.0 s (Broker.Select { site = 0; units = 2; strategy = Uniform }) in
  (match o.result with
  | Broker.Selected ids ->
    Alcotest.(check int) "two units" 2 (List.length ids);
    List.iter
      (fun rid -> Alcotest.(check bool) "local site preferred" true (rid < 100))
      ids
  | _ -> Alcotest.fail "expected Selected");
  Alcotest.(check int) "used units" 2 (Broker.total_used o.state)

let test_broker_remote_spill () =
  (* Exhaust site 0, then select again: must spill to site 1 (§2). *)
  let s = broker_with_resources ~per_site:1 ~capacity:2 () in
  let rng = Rng.of_int 7 in
  let o1 = Broker.apply ~rng ~now:0.0 s (Broker.Select { site = 0; units = 2; strategy = Uniform }) in
  let o2 =
    Broker.apply ~rng ~now:0.0 o1.state
      (Broker.Select { site = 0; units = 1; strategy = Uniform })
  in
  (match o2.result with
  | Broker.Selected [ rid ] -> Alcotest.(check int) "remote resource" 100 rid
  | _ -> Alcotest.fail "expected spill to remote site");
  let o3 =
    Broker.apply ~rng ~now:0.0 o2.state
      (Broker.Select { site = 0; units = 5; strategy = Uniform })
  in
  match o3.result with
  | Broker.No_capacity -> ()
  | _ -> Alcotest.fail "expected No_capacity"

let test_broker_nondeterminism_and_replay () =
  (* Two replicas with different RNGs diverge on apply; replay with the
     witness reconverges them — the paper's core mechanism. *)
  let s = broker_with_resources () in
  let op = Broker.Select { site = 0; units = 1; strategy = Uniform } in
  let diverged = ref false in
  for seed = 0 to 20 do
    let o1 = Broker.apply ~rng:(Rng.of_int seed) ~now:0.0 s op in
    let o2 = Broker.apply ~rng:(Rng.of_int (seed + 1000)) ~now:0.0 s op in
    if o1.result <> o2.result then diverged := true
  done;
  Alcotest.(check bool) "independent rngs diverge somewhere" true !diverged;
  let o = Broker.apply ~rng:(Rng.of_int 3) ~now:0.0 s op in
  let witness = Option.get o.witness in
  let st, res = Broker.replay s op ~witness in
  Alcotest.(check bool) "replay reproduces result" true (res = o.result);
  Alcotest.(check string) "replay reproduces state" (Broker.encode_state o.state)
    (Broker.encode_state st)

let test_broker_release () =
  let s = broker_with_resources () in
  let rng = Rng.of_int 5 in
  let o = Broker.apply ~rng ~now:0.0 s (Broker.Select { site = 0; units = 3; strategy = Uniform }) in
  let rid = match o.result with Broker.Selected (r :: _) -> r | _ -> Alcotest.fail "sel" in
  let o2 = Broker.apply ~rng ~now:0.0 o.state (Broker.Release { rid; units = 1 }) in
  Alcotest.(check int) "released" (Broker.total_used o.state - 1) (Broker.total_used o2.state);
  let o3 = Broker.apply ~rng ~now:0.0 o2.state (Broker.Release { rid = 999; units = 1 }) in
  match o3.result with
  | Broker.Error _ -> ()
  | _ -> Alcotest.fail "unknown resource should error"

let test_broker_power_of_two_balances () =
  (* Power-of-two-choices yields lower imbalance than uniform random
     (Mitzenmacher); check on a replicated sequence of selections. *)
  let run strategy seed =
    let s = ref (broker_with_resources ~sites:1 ~per_site:10 ~capacity:1000 ()) in
    let rng = Rng.of_int seed in
    for _ = 1 to 500 do
      let o = Broker.apply ~rng ~now:0.0 !s (Broker.Select { site = 0; units = 1; strategy }) in
      s := o.state
    done;
    Broker.imbalance !s
  in
  let total_uniform = ref 0 and total_p2 = ref 0 in
  for seed = 1 to 10 do
    total_uniform := !total_uniform + run Broker.Uniform seed;
    total_p2 := !total_p2 + run Broker.Power_of_two seed
  done;
  Alcotest.(check bool)
    (Printf.sprintf "p2c (%d) beats uniform (%d)" !total_p2 !total_uniform)
    true (!total_p2 < !total_uniform)

let test_broker_reads () =
  let s = broker_with_resources () in
  let rng = Rng.of_int 5 in
  let o = Broker.apply ~rng ~now:0.0 s Broker.List_free in
  (match o.result with
  | Broker.Free_units [ (0, a); (1, b) ] ->
    Alcotest.(check int) "site 0 free" 12 a;
    Alcotest.(check int) "site 1 free" 12 b
  | _ -> Alcotest.fail "expected two sites");
  match (Broker.apply ~rng ~now:0.0 s (Broker.Resource_info 0)).result with
  | Broker.Info (Some r) -> Alcotest.(check int) "capacity" 4 r.capacity
  | _ -> Alcotest.fail "expected resource info"

let test_broker_codecs () =
  let ops =
    [
      Broker.Register { rid = 1; site = 2; capacity = 3 };
      Broker.Release { rid = 1; units = 2 };
      Broker.Select { site = 0; units = 4; strategy = Power_of_two };
      Broker.List_free;
      Broker.Resource_info 9;
    ]
  in
  List.iter
    (fun op ->
      Alcotest.(check bool) "op roundtrip" true (Broker.decode_op (Broker.encode_op op) = op))
    ops;
  let s = broker_with_resources () in
  Alcotest.(check string) "state roundtrip" (Broker.encode_state s)
    (Broker.encode_state (Broker.decode_state (Broker.encode_state s)))

let test_broker_diff_patch () =
  let s = broker_with_resources () in
  let rng = Rng.of_int 11 in
  let o = Broker.apply ~rng ~now:0.0 s (Broker.Select { site = 1; units = 2; strategy = Uniform }) in
  let d = Option.get (Broker.diff ~old_state:s o.state) in
  Alcotest.(check bool) "delta smaller than full state" true
    (String.length d < String.length (Broker.encode_state o.state));
  Alcotest.(check string) "patch reproduces" (Broker.encode_state o.state)
    (Broker.encode_state (Broker.patch s d))

(* ------------------------------------------------------------------ *)
(* Grid scheduler *)

let sched_base () =
  let rng = Rng.of_int 1 in
  let s = ref (Sched.initial ()) in
  List.iter
    (fun m -> s := (Sched.apply ~rng ~now:0.0 !s (Sched.Add_machine m)).state)
    [ 1; 2; 3 ];
  !s

let test_sched_fcfs_priority () =
  let rng = Rng.of_int 2 in
  let s = sched_base () in
  let s = (Sched.apply ~rng ~now:1.0 s (Sched.Submit { job = 10; priority = 0 })).state in
  let s = (Sched.apply ~rng ~now:2.0 s (Sched.Submit { job = 11; priority = 5 })).state in
  let s = (Sched.apply ~rng ~now:3.0 s (Sched.Submit { job = 12; priority = 0 })).state in
  let o = Sched.apply ~rng ~now:4.0 s Sched.Examine in
  (match o.result with
  | Sched.Scheduled (Some (job, _)) -> Alcotest.(check int) "priority first" 11 job
  | _ -> Alcotest.fail "expected schedule");
  let o2 = Sched.apply ~rng ~now:5.0 o.state Sched.Examine in
  (match o2.result with
  | Sched.Scheduled (Some (job, _)) -> Alcotest.(check int) "then FCFS" 10 job
  | _ -> Alcotest.fail "expected schedule");
  let o3 = Sched.apply ~rng ~now:6.0 o2.state Sched.Examine in
  match o3.result with
  | Sched.Scheduled (Some (job, _)) -> Alcotest.(check int) "then next" 12 job
  | _ -> Alcotest.fail "expected schedule"

let test_sched_job_a_b_race () =
  (* The paper's §2 example: job A arrives at t1, job B (higher priority)
     at t2 > t1. A fast scheduler examining between t1 and t2 picks A; a
     slow one examining after t2 picks B. Same request sequence, different
     behaviour — pure examination-time nondeterminism. *)
  let rng = Rng.of_int 3 in
  let base = sched_base () in
  (* Fast replica: examines between the arrivals. *)
  let s_fast = (Sched.apply ~rng ~now:1.0 base (Sched.Submit { job = 1; priority = 0 })).state in
  let fast_pick = Sched.apply ~rng ~now:1.5 s_fast Sched.Examine in
  let s_fast' =
    (Sched.apply ~rng ~now:2.0 fast_pick.state (Sched.Submit { job = 2; priority = 9 })).state
  in
  ignore s_fast';
  (* Slow replica: same submissions, examines after both. *)
  let s_slow = (Sched.apply ~rng ~now:1.0 base (Sched.Submit { job = 1; priority = 0 })).state in
  let s_slow = (Sched.apply ~rng ~now:2.0 s_slow (Sched.Submit { job = 2; priority = 9 })).state in
  let slow_pick = Sched.apply ~rng ~now:2.5 s_slow Sched.Examine in
  let job_of o =
    match o.Sched.result with
    | Sched.Scheduled (Some (j, _)) -> j
    | _ -> Alcotest.fail "expected schedule"
  in
  Alcotest.(check int) "fast picks A" 1 (job_of fast_pick);
  Alcotest.(check int) "slow picks B" 2 (job_of slow_pick)

let test_sched_replay () =
  let rng = Rng.of_int 4 in
  let s = sched_base () in
  let o1 = Sched.apply ~rng ~now:7.25 s (Sched.Submit { job = 5; priority = 1 }) in
  (* Replay the submit on a replica: the arrival timestamp must come from
     the witness, not the replica's own clock. *)
  let st, res = Sched.replay s (Sched.Submit { job = 5; priority = 1 })
      ~witness:(Option.get o1.witness) in
  Alcotest.(check bool) "submit replay result" true (res = o1.result);
  Alcotest.(check string) "submit replay state" (Sched.encode_state o1.state)
    (Sched.encode_state st);
  let o2 = Sched.apply ~rng ~now:8.0 o1.state Sched.Examine in
  let st2, res2 = Sched.replay o1.state Sched.Examine ~witness:(Option.get o2.witness) in
  Alcotest.(check bool) "examine replay result" true (res2 = o2.result);
  Alcotest.(check string) "examine replay state" (Sched.encode_state o2.state)
    (Sched.encode_state st2)

let test_sched_complete_and_reads () =
  let rng = Rng.of_int 5 in
  let s = sched_base () in
  let s = (Sched.apply ~rng ~now:1.0 s (Sched.Submit { job = 1; priority = 0 })).state in
  let o = Sched.apply ~rng ~now:2.0 s Sched.Examine in
  let job, machine =
    match o.result with Sched.Scheduled (Some jm) -> jm | _ -> Alcotest.fail "sched"
  in
  Alcotest.(check int) "machine loaded" 1 (Sched.machine_load o.state machine);
  (match (Sched.apply ~rng ~now:3.0 o.state (Sched.Assignment_of job)).result with
  | Sched.Assigned_to (Some m) -> Alcotest.(check int) "assignment read" machine m
  | _ -> Alcotest.fail "expected assignment");
  let done_state = (Sched.apply ~rng ~now:4.0 o.state (Sched.Complete { job; machine })).state in
  Alcotest.(check int) "machine freed" 0 (Sched.machine_load done_state machine);
  match (Sched.apply ~rng ~now:5.0 done_state Sched.Queue_length).result with
  | Sched.Length 0 -> ()
  | _ -> Alcotest.fail "queue should be empty"

let test_sched_duplicate_job () =
  let rng = Rng.of_int 6 in
  let s = sched_base () in
  let s = (Sched.apply ~rng ~now:1.0 s (Sched.Submit { job = 1; priority = 0 })).state in
  match (Sched.apply ~rng ~now:2.0 s (Sched.Submit { job = 1; priority = 3 })).result with
  | Sched.Error _ -> ()
  | _ -> Alcotest.fail "duplicate job must error"

let test_sched_codecs () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "op roundtrip" true (Sched.decode_op (Sched.encode_op op) = op))
    [
      Sched.Add_machine 3;
      Sched.Submit { job = 1; priority = -2 };
      Sched.Examine;
      Sched.Complete { job = 1; machine = 2 };
      Sched.Queue_length;
      Sched.Assignment_of 5;
    ];
  let rng = Rng.of_int 7 in
  let s = sched_base () in
  let s = (Sched.apply ~rng ~now:1.5 s (Sched.Submit { job = 1; priority = 0 })).state in
  Alcotest.(check string) "state roundtrip" (Sched.encode_state s)
    (Sched.encode_state (Sched.decode_state (Sched.encode_state s)))

(* ------------------------------------------------------------------ *)
(* KV store *)

let test_kv_semantics () =
  let rng = Rng.of_int 1 in
  let s = Kv.initial () in
  let s = (Kv.apply ~rng ~now:0.0 s (Kv.Put { key = "a"; value = "1" })).state in
  (match (Kv.apply ~rng ~now:0.0 s (Kv.Get "a")).result with
  | Kv.Value (Some "1") -> ()
  | _ -> Alcotest.fail "get after put");
  let s = (Kv.apply ~rng ~now:0.0 s (Kv.Append { key = "a"; value = "2" })).state in
  (match (Kv.apply ~rng ~now:0.0 s (Kv.Get "a")).result with
  | Kv.Value (Some "12") -> ()
  | _ -> Alcotest.fail "append");
  let s = (Kv.apply ~rng ~now:0.0 s (Kv.Del "a")).state in
  (match (Kv.apply ~rng ~now:0.0 s (Kv.Get "a")).result with
  | Kv.Value None -> ()
  | _ -> Alcotest.fail "del");
  match (Kv.apply ~rng ~now:0.0 s Kv.Size).result with
  | Kv.Count 0 -> ()
  | _ -> Alcotest.fail "size"

let test_kv_cas () =
  let rng = Rng.of_int 1 in
  let s = Kv.initial () in
  let o = Kv.apply ~rng ~now:0.0 s (Kv.Cas { key = "k"; expected = None; value = "v1" }) in
  (match o.result with Kv.Cas_ok true -> () | _ -> Alcotest.fail "cas on empty");
  let o2 =
    Kv.apply ~rng ~now:0.0 o.state (Kv.Cas { key = "k"; expected = Some "wrong"; value = "v2" })
  in
  (match o2.result with Kv.Cas_ok false -> () | _ -> Alcotest.fail "cas mismatch");
  Alcotest.(check (option string)) "unchanged" (Some "v1") (Kv.find o2.state "k")

let test_kv_footprints () =
  Alcotest.(check (list string)) "put" [ "kv/x" ] (Kv.footprint (Kv.Put { key = "x"; value = "" }));
  Alcotest.(check (list string)) "size empty" [] (Kv.footprint Kv.Size)

let test_kv_version_bumps () =
  let rng = Rng.of_int 1 in
  let s = Kv.initial () in
  let s1 = (Kv.apply ~rng ~now:0.0 s (Kv.Put { key = "a"; value = "1" })).state in
  let s2 = (Kv.apply ~rng ~now:0.0 s1 (Kv.Get "a")).state in
  Alcotest.(check int) "write bumps version" 1 s1.version;
  Alcotest.(check int) "read does not" 1 s2.version

let gen_kv_op =
  QCheck2.Gen.(
    let key = map (fun i -> "k" ^ string_of_int i) (int_range 0 5) in
    oneof
      [
        map2 (fun key value -> Kv.Put { key; value }) key (string_size (int_range 0 8));
        map (fun k -> Kv.Get k) key;
        map (fun k -> Kv.Del k) key;
        map2 (fun key value -> Kv.Append { key; value }) key (string_size (int_range 0 4));
        return Kv.Size;
      ])

let prop_kv_diff_patch =
  QCheck2.Test.make ~name:"kv diff/patch equals full state" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) gen_kv_op)
    (fun ops ->
      let rng = Rng.of_int 1 in
      let final =
        List.fold_left (fun s op -> (Kv.apply ~rng ~now:0.0 s op).state) (Kv.initial ()) ops
      in
      (* Patch each intermediate diff chain and compare. *)
      let patched =
        List.fold_left
          (fun s op ->
            let o = Kv.apply ~rng:(Rng.of_int 2) ~now:0.0 s op in
            match Kv.diff ~old_state:s o.state with
            | Some d -> Kv.patch s d
            | None -> o.state)
          (Kv.initial ()) ops
      in
      Kv.encode_state final = Kv.encode_state patched)

let prop_kv_codec_roundtrip =
  QCheck2.Test.make ~name:"kv op codec roundtrip" ~count:200 gen_kv_op (fun op ->
      Kv.decode_op (Kv.encode_op op) = op)

let prop_kv_replay_matches_apply =
  QCheck2.Test.make ~name:"kv replay = apply (deterministic service)" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) gen_kv_op)
    (fun ops ->
      let rng = Rng.of_int 1 in
      List.fold_left
        (fun (s, ok) op ->
          let o = Kv.apply ~rng ~now:0.0 s op in
          let s', r' = Kv.replay s op ~witness:"" in
          (o.state, ok && r' = o.result && Kv.encode_state s' = Kv.encode_state o.state))
        (Kv.initial (), true)
        ops
      |> snd)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "services.noop",
      [
        Alcotest.test_case "semantics" `Quick test_noop_semantics;
        Alcotest.test_case "sized write" `Quick test_noop_sized_write;
        Alcotest.test_case "codec + diff" `Quick test_noop_codec_and_diff;
      ] );
    ( "services.counter",
      [
        Alcotest.test_case "semantics" `Quick test_counter_semantics;
        Alcotest.test_case "codecs" `Quick test_counter_codecs;
      ] );
    ( "services.broker",
      [
        Alcotest.test_case "register + select" `Quick test_broker_register_select;
        Alcotest.test_case "remote spill + exhaustion" `Quick test_broker_remote_spill;
        Alcotest.test_case "nondeterminism + witness replay" `Quick
          test_broker_nondeterminism_and_replay;
        Alcotest.test_case "release" `Quick test_broker_release;
        Alcotest.test_case "power-of-two balances better" `Quick
          test_broker_power_of_two_balances;
        Alcotest.test_case "reads" `Quick test_broker_reads;
        Alcotest.test_case "codecs" `Quick test_broker_codecs;
        Alcotest.test_case "diff/patch" `Quick test_broker_diff_patch;
      ] );
    ( "services.scheduler",
      [
        Alcotest.test_case "FCFS with priority override" `Quick test_sched_fcfs_priority;
        Alcotest.test_case "job A/B examination race (paper §2)" `Quick
          test_sched_job_a_b_race;
        Alcotest.test_case "witness replay" `Quick test_sched_replay;
        Alcotest.test_case "complete + reads" `Quick test_sched_complete_and_reads;
        Alcotest.test_case "duplicate job" `Quick test_sched_duplicate_job;
        Alcotest.test_case "codecs" `Quick test_sched_codecs;
      ] );
    ( "services.kv",
      Alcotest.test_case "semantics" `Quick test_kv_semantics
      :: Alcotest.test_case "cas" `Quick test_kv_cas
      :: Alcotest.test_case "footprints" `Quick test_kv_footprints
      :: Alcotest.test_case "version bumps" `Quick test_kv_version_bumps
      :: qcheck [ prop_kv_diff_patch; prop_kv_codec_roundtrip; prop_kv_replay_matches_apply ]
    );
  ]
