(* Unit and property tests for the wire codec. *)

module Wire = Grid_codec.Wire

let roundtrip_uint n =
  Wire.decode (Wire.encode (fun e -> Wire.Encoder.uint e n)) Wire.Decoder.uint

let roundtrip_int n =
  Wire.decode (Wire.encode (fun e -> Wire.Encoder.int e n)) Wire.Decoder.int

let test_uint_edges () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (roundtrip_uint n))
    [ 0; 1; 127; 128; 129; 16383; 16384; 1 lsl 30; max_int ]

let test_uint_negative_rejected () =
  Alcotest.check_raises "negative uint" (Invalid_argument "Wire.Encoder.uint: negative")
    (fun () -> ignore (Wire.encode (fun e -> Wire.Encoder.uint e (-1))))

let test_int_edges () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (roundtrip_int n))
    [ 0; 1; -1; 63; -64; 64; -65; max_int; min_int; max_int - 1; min_int + 1 ]

let test_varint_compactness () =
  let len n = String.length (Wire.encode (fun e -> Wire.Encoder.uint e n)) in
  Alcotest.(check int) "small is 1 byte" 1 (len 100);
  Alcotest.(check int) "128 is 2 bytes" 2 (len 128);
  Alcotest.(check bool) "zigzag small negatives compact" true
    (String.length (Wire.encode (fun e -> Wire.Encoder.int e (-3))) = 1)

let test_int64_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check int64) (Int64.to_string v) v
        (Wire.decode (Wire.encode (fun e -> Wire.Encoder.int64 e v)) Wire.Decoder.int64))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0xDEADBEEFL ]

let test_float_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check (float 0.0)) (Float.to_string v) v
        (Wire.decode (Wire.encode (fun e -> Wire.Encoder.float e v)) Wire.Decoder.float))
    [ 0.0; -0.0; 1.5; -3.25; Float.max_float; Float.min_float; infinity; neg_infinity ];
  Alcotest.(check bool) "nan roundtrips" true
    (Float.is_nan
       (Wire.decode (Wire.encode (fun e -> Wire.Encoder.float e Float.nan)) Wire.Decoder.float))

let test_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) "string" s
        (Wire.decode (Wire.encode (fun e -> Wire.Encoder.string e s)) Wire.Decoder.string))
    [ ""; "a"; String.make 1000 'z'; "\x00\xff\x80 binary" ]

let test_truncated_string () =
  let encoded = Wire.encode (fun e -> Wire.Encoder.string e "hello") in
  let truncated = String.sub encoded 0 (String.length encoded - 2) in
  Alcotest.(check bool) "truncation raises" true
    (match Wire.decode truncated Wire.Decoder.string with
    | _ -> false
    | exception Wire.Decode_error _ -> true)

let test_trailing_bytes () =
  let encoded = Wire.encode (fun e -> Wire.Encoder.uint e 5) ^ "junk" in
  Alcotest.(check bool) "trailing raises" true
    (match Wire.decode encoded Wire.Decoder.uint with
    | _ -> false
    | exception Wire.Decode_error _ -> true)

let test_bad_bool () =
  Alcotest.(check bool) "bad bool raises" true
    (match Wire.decode "\x02" Wire.Decoder.bool with
    | _ -> false
    | exception Wire.Decode_error _ -> true)

let test_option_list_array () =
  let enc =
    Wire.encode (fun e ->
        Wire.Encoder.option e (Wire.Encoder.uint e) (Some 7);
        Wire.Encoder.option e (Wire.Encoder.uint e) None;
        Wire.Encoder.list e (Wire.Encoder.int e) [ 1; -2; 3 ];
        Wire.Encoder.array e (Wire.Encoder.string e) [| "a"; "bb" |])
  in
  Wire.decode enc (fun d ->
      Alcotest.(check (option int)) "some" (Some 7) (Wire.Decoder.option d Wire.Decoder.uint);
      Alcotest.(check (option int)) "none" None (Wire.Decoder.option d Wire.Decoder.uint);
      Alcotest.(check (list int)) "list" [ 1; -2; 3 ] (Wire.Decoder.list d Wire.Decoder.int);
      Alcotest.(check (array string)) "array" [| "a"; "bb" |]
        (Wire.Decoder.array d Wire.Decoder.string))

let test_crc_known_vector () =
  (* The canonical CRC-32 check value. *)
  Alcotest.(check int32) "crc32(123456789)" 0xCBF43926l (Wire.crc32 "123456789")

let test_crc_empty () = Alcotest.(check int32) "crc32 of empty" 0l (Wire.crc32 "")

let test_crc_incremental () =
  let whole = Wire.crc32 "hello world" in
  let part = Wire.crc32 ~crc:(Wire.crc32 "hello ") "world" in
  Alcotest.(check int32) "incremental equals whole" whole part

let test_with_check_crc () =
  let body = "some payload \x00\xff" in
  Alcotest.(check string) "roundtrip" body (Wire.check_crc (Wire.with_crc body));
  let corrupted = Bytes.of_string (Wire.with_crc body) in
  Bytes.set corrupted 2 'X';
  Alcotest.(check bool) "corruption detected" true
    (match Wire.check_crc (Bytes.to_string corrupted) with
    | _ -> false
    | exception Wire.Decode_error _ -> true);
  Alcotest.(check bool) "too short detected" true
    (match Wire.check_crc "ab" with
    | _ -> false
    | exception Wire.Decode_error _ -> true)

(* Property tests *)

let prop_uint_roundtrip =
  QCheck2.Test.make ~name:"uint roundtrip" ~count:500
    QCheck2.Gen.(map abs int)
    (fun n -> n < 0 || roundtrip_uint n = n)

let prop_int_roundtrip =
  QCheck2.Test.make ~name:"int roundtrip" ~count:500 QCheck2.Gen.int (fun n ->
      roundtrip_int n = n)

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"string roundtrip" ~count:300 QCheck2.Gen.string (fun s ->
      Wire.decode (Wire.encode (fun e -> Wire.Encoder.string e s)) Wire.Decoder.string = s)

let prop_mixed_roundtrip =
  QCheck2.Test.make ~name:"mixed record roundtrip" ~count:300
    QCheck2.Gen.(quad int string bool (list (pair int string)))
    (fun (n, s, b, l) ->
      let enc =
        Wire.encode (fun e ->
            Wire.Encoder.int e n;
            Wire.Encoder.string e s;
            Wire.Encoder.bool e b;
            Wire.Encoder.list e
              (fun (i, str) ->
                Wire.Encoder.int e i;
                Wire.Encoder.string e str)
              l)
      in
      Wire.decode enc (fun d ->
          let n' = Wire.Decoder.int d in
          let s' = Wire.Decoder.string d in
          let b' = Wire.Decoder.bool d in
          let l' =
            Wire.Decoder.list d (fun d ->
                let i = Wire.Decoder.int d in
                let str = Wire.Decoder.string d in
                (i, str))
          in
          (n', s', b', l') = (n, s, b, l)))

let prop_crc_roundtrip =
  QCheck2.Test.make ~name:"with_crc/check_crc roundtrip" ~count:300 QCheck2.Gen.string
    (fun s -> Wire.check_crc (Wire.with_crc s) = s)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "codec.varint",
      [
        Alcotest.test_case "uint edges" `Quick test_uint_edges;
        Alcotest.test_case "uint rejects negative" `Quick test_uint_negative_rejected;
        Alcotest.test_case "int edges" `Quick test_int_edges;
        Alcotest.test_case "compactness" `Quick test_varint_compactness;
      ] );
    ( "codec.scalars",
      [
        Alcotest.test_case "int64" `Quick test_int64_roundtrip;
        Alcotest.test_case "float" `Quick test_float_roundtrip;
        Alcotest.test_case "string" `Quick test_string_roundtrip;
        Alcotest.test_case "option/list/array" `Quick test_option_list_array;
      ] );
    ( "codec.errors",
      [
        Alcotest.test_case "truncated string" `Quick test_truncated_string;
        Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes;
        Alcotest.test_case "bad bool" `Quick test_bad_bool;
      ] );
    ( "codec.crc",
      [
        Alcotest.test_case "known vector" `Quick test_crc_known_vector;
        Alcotest.test_case "empty" `Quick test_crc_empty;
        Alcotest.test_case "incremental" `Quick test_crc_incremental;
        Alcotest.test_case "frame roundtrip + corruption" `Quick test_with_check_crc;
      ] );
    ( "codec.properties",
      qcheck
        [
          prop_uint_roundtrip;
          prop_int_roundtrip;
          prop_string_roundtrip;
          prop_mixed_roundtrip;
          prop_crc_roundtrip;
        ] );
  ]
