lib/check/mcheck.ml: Agreement Array Float Grid_paxos Grid_util Hashtbl List Option Queue
