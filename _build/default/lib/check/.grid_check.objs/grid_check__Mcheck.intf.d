lib/check/mcheck.mli: Agreement Grid_paxos
