lib/check/agreement.ml: Array Format Grid_paxos Grid_util Hashtbl List Option String
