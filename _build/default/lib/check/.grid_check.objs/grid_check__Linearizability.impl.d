lib/check/linearizability.ml: Float Int List Map Option String
