lib/check/agreement.mli: Format Grid_paxos
