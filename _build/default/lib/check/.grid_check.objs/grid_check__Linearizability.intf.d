lib/check/linearizability.mli: Map
