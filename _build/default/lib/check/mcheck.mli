(** Randomized-schedule state-space exploration of the protocol engines.

    A scheduler owns the message pool (FIFO per directed pair, as with
    TCP) and the timer set, and drives the replicas through interleavings
    far more adversarial than latency-ordered simulation: cross-pair
    reordering, arbitrarily late timer firings, crashes and recoveries at
    any step. Clients are modeled closed-loop with retransmission, so
    benign schedules also give a liveness check.

    Each run is fully determined by its seed: a failing schedule replays
    exactly. *)

type outcome = {
  replies : Grid_paxos.Types.reply list;
  violations : Agreement.violation list;
  committed : int array;  (** commit point per replica at the end *)
  delivered : int;
  timer_fires : int;
  all_replied : bool;
      (** every injected request got a reply by the end of the drain *)
}

module Make (S : Grid_paxos.Service_intf.S) : sig
  module R : module type of Grid_paxos.Replica.Make (S)

  val run :
    ?seed:int ->
    ?steps:int ->
    ?crash_prob:float ->
    ?max_down:int ->
    ?requests:(int * Grid_paxos.Types.rtype * string) list ->
    unit ->
    outcome
  (** Explore one schedule over a 3-replica group. [requests] are
      (client id, rtype, payload) triples; each client's requests are
      injected in order (closed loop) and retransmitted until answered.
      After [steps] scheduling choices, crashes stop, every replica is
      recovered, and the system is drained so liveness can be asserted.
      Defaults: seed 1, 5000 steps, no crashes, at most one replica down
      at a time. *)
end
