(** Randomized-schedule state-space exploration for the protocol engines.

    Because the replica and client engines are pure step machines, a
    scheduler that owns the message pool and timer set can drive them
    through interleavings far more adversarial than the latency-ordered
    ones the simulator produces: reordering across pairs (FIFO per pair
    is preserved, as with TCP), arbitrarily late timer firings, crashes
    and recoveries at any step.

    Each run uses one seed, so a failing schedule replays exactly. The
    test suite runs thousands of seeds and asserts the agreement
    invariant after every run. *)

module Rng = Grid_util.Rng
open Grid_paxos.Types

type outcome = {
  replies : reply list;
  violations : Agreement.violation list;
  committed : int array;  (** commit point per replica at the end *)
  delivered : int;
  timer_fires : int;
  all_replied : bool;
}

module Make (S : Grid_paxos.Service_intf.S) = struct
  module R = Grid_paxos.Replica.Make (S)

  type sched = {
    rng : Rng.t;
    cfg : Grid_paxos.Config.t;
    replicas : R.t array;
    down : bool array;
    (* FIFO queue per directed pair, keyed (src, dst). *)
    channels : (int * int, msg Queue.t) Hashtbl.t;
    mutable timers : (int * timer * float) list;
    mutable vnow : float;
    mutable replies : reply list;
    mutable delivered : int;
    mutable timer_fires : int;
  }

  let enqueue sched ~src ~dst msg =
    let q =
      match Hashtbl.find_opt sched.channels (src, dst) with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace sched.channels (src, dst) q;
        q
    in
    Queue.add msg q

  let exec_actions sched i actions =
    List.iter
      (function
        | Send { dst; msg } ->
          if node_is_client dst then begin
            match msg with
            | Reply_msg r -> sched.replies <- r :: sched.replies
            | _ -> ()
          end
          else enqueue sched ~src:i ~dst msg
        | After { delay; timer } ->
          sched.timers <- (i, timer, sched.vnow +. delay) :: sched.timers
        | Note _ -> ())
      actions

  let dispatch sched i input =
    if not sched.down.(i) then
      exec_actions sched i (R.handle sched.replicas.(i) ~now:sched.vnow input)

  let deliverable_pairs sched =
    Hashtbl.fold
      (fun (src, dst) q acc ->
        if (not (Queue.is_empty q)) && not sched.down.(dst) then (src, dst) :: acc
        else acc)
      sched.channels []
    |> List.sort compare

  (* One scheduling step. Weights bias toward message delivery so runs
     make progress; crash/recovery are rare events. *)
  let step sched ~crash_prob ~max_down =
    let pairs = deliverable_pairs sched in
    let timers = sched.timers in
    let down_count = Array.fold_left (fun n d -> if d then n + 1 else n) 0 sched.down in
    let roll = Rng.float sched.rng 1.0 in
    if roll < crash_prob && down_count < max_down then begin
      (* Crash a random live replica. *)
      let live =
        List.filter (fun i -> not sched.down.(i)) (Grid_paxos.Config.replica_ids sched.cfg)
      in
      match live with
      | [] -> false
      | _ ->
        let victim = Rng.pick_list sched.rng live in
        sched.down.(victim) <- true;
        (* Its in-flight timers die with it. *)
        sched.timers <- List.filter (fun (i, _, _) -> i <> victim) sched.timers;
        true
    end
    else if roll < 2.0 *. crash_prob && down_count > 0 then begin
      (* Recover a random crashed replica. *)
      let dead =
        List.filter (fun i -> sched.down.(i)) (Grid_paxos.Config.replica_ids sched.cfg)
      in
      match dead with
      | [] -> false
      | _ ->
        let back = Rng.pick_list sched.rng dead in
        sched.down.(back) <- false;
        (* Messages queued toward it while down are lost (TCP reset). *)
        Hashtbl.iter
          (fun (_, dst) q -> if dst = back then Queue.clear q)
          sched.channels;
        exec_actions sched back (R.restart sched.replicas.(back) ~now:sched.vnow);
        true
    end
    else begin
      (* Prefer delivering a message 3:1 over firing a timer. *)
      let deliver () =
        match pairs with
        | [] -> false
        | _ ->
          let src, dst = Rng.pick_list sched.rng pairs in
          let q = Hashtbl.find sched.channels (src, dst) in
          let msg = Queue.take q in
          sched.delivered <- sched.delivered + 1;
          dispatch sched dst (Receive { src; msg });
          true
      in
      let fire () =
        let live = List.filter (fun (i, _, _) -> not sched.down.(i)) timers in
        match live with
        | [] -> false
        | _ ->
          let ((i, timer, due) as chosen) = Rng.pick_list sched.rng live in
          sched.timers <- List.filter (fun t -> t != chosen) sched.timers;
          sched.vnow <- Float.max sched.vnow due;
          sched.timer_fires <- sched.timer_fires + 1;
          dispatch sched i (Timer timer);
          true
      in
      if pairs <> [] && (timers = [] || Rng.int sched.rng 4 < 3) then deliver ()
      else if fire () then true
      else deliver ()
    end

  (** [run ~requests ()] explores one random schedule. [requests] are
      (client id, rtype, payload) triples. Like the real client protocol,
      every request is broadcast to all replicas and retransmitted until
      answered (retransmission points are scheduling choices), which both
      exercises deduplication and gives benign schedules a liveness
      guarantee. Returns the outcome with agreement violations, if any. *)
  let run ?(seed = 1) ?(steps = 5_000) ?(crash_prob = 0.0) ?(max_down = 1)
      ?(requests = []) () =
    let rng = Rng.of_int seed in
    let cfg =
      { (Grid_paxos.Config.default ~n:3) with record_history = true }
    in
    let sched =
      {
        rng;
        cfg;
        replicas = Array.init cfg.n (fun i -> R.create ~cfg ~id:i ~seed:(seed + i) ());
        down = Array.make cfg.n false;
        channels = Hashtbl.create 32;
        timers = [];
        vnow = 0.0;
        replies = [];
        delivered = 0;
        timer_fires = 0;
      }
    in
    Array.iteri (fun i r -> exec_actions sched i (R.bootstrap r)) sched.replicas;
    (* Clients are closed-loop: each client's requests carry increasing
       sequence numbers and the next is only injected after the previous
       one was answered (deduplication assumes exactly this). Injection
       and retransmission points are scheduling choices. *)
    let per_client : (int, request Queue.t) Hashtbl.t = Hashtbl.create 8 in
    let seq_counters : (int, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (client, rtype, payload) ->
        let seq = 1 + Option.value ~default:0 (Hashtbl.find_opt seq_counters client) in
        Hashtbl.replace seq_counters client seq;
        let id =
          Grid_util.Ids.Request_id.make
            ~client:(Grid_util.Ids.Client_id.of_int client)
            ~seq
        in
        let q =
          match Hashtbl.find_opt per_client client with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace per_client client q;
            q
        in
        Queue.add { id; rtype; payload } q)
      requests;
    let absorb_replies () =
      List.iter
        (fun (r : reply) ->
          match Hashtbl.find_opt per_client (Grid_util.Ids.Client_id.to_int r.req.client) with
          | Some q when not (Queue.is_empty q) ->
            let head = Queue.peek q in
            if head.id.seq = r.req.seq then ignore (Queue.take q)
          | _ -> ())
        sched.replies
    in
    let pending_count () =
      absorb_replies ();
      Hashtbl.fold (fun _ q acc -> acc + Queue.length q) per_client 0
    in
    let inject () =
      absorb_replies ();
      let heads =
        Hashtbl.fold
          (fun _ q acc -> if Queue.is_empty q then acc else Queue.peek q :: acc)
          per_client []
      in
      match heads with
      | [] -> false
      | _ ->
        let r = Rng.pick_list sched.rng heads in
        for i = 0 to cfg.n - 1 do
          dispatch sched i (Receive { src = client_node r.id.client; msg = Client_req r })
        done;
        true
    in
    for _ = 1 to steps do
      if pending_count () > 0 && Rng.int sched.rng 10 = 0 then ignore (inject ())
      else ignore (step sched ~crash_prob ~max_down)
    done;
    (* Drain: no more crashes; recover everyone; keep injecting unanswered
       requests and scheduling until all are answered or the budget runs
       out. *)
    for i = 0 to cfg.n - 1 do
      if sched.down.(i) then begin
        sched.down.(i) <- false;
        exec_actions sched i (R.restart sched.replicas.(i) ~now:sched.vnow)
      end
    done;
    let budget = ref (steps * 10) in
    while !budget > 0 && pending_count () > 0 do
      decr budget;
      if Rng.int sched.rng 20 = 0 then ignore (inject ())
      else ignore (step sched ~crash_prob:0.0 ~max_down)
    done;
    let all_replied = pending_count () = 0 in
    let histories = Array.map R.committed_updates sched.replicas in
    {
      replies = List.rev sched.replies;
      violations = Agreement.check histories;
      committed = Array.map R.commit_point sched.replicas;
      delivered = sched.delivered;
      timer_fires = sched.timer_fires;
      all_replied;
    }
end
