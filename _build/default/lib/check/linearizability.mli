(** A Wing–Gong linearizability checker for small concurrent histories.

    The replicated service should be linearizable from the clients' point
    of view: every completed operation appears to take effect atomically
    between its invocation and its response. The checker searches for a
    legal sequential witness; it is exponential in the worst case and
    intended for test-suite histories (tens of operations, small
    concurrency). *)

module type MODEL = sig
  type state
  type op
  type result

  val initial : state
  val step : state -> op -> state * result
  val equal_result : result -> result -> bool
end

type ('op, 'res) event = {
  client : int;
  op : 'op;
  result : 'res;
  invoked_at : float;
  responded_at : float;
}

module Make (M : MODEL) : sig
  type history = (M.op, M.result) event list

  val check : history -> bool
  (** [true] iff the history is linearizable with respect to the model. *)
end

(** Ready-made model for the replicated counter service. *)
module Counter_model : sig
  type state = int
  type op = Get | Add of int
  type result = int

  val initial : state
  val step : state -> op -> state * result
  val equal_result : result -> result -> bool
end

module Counter : module type of Make (Counter_model)

(** Ready-made model for the key-value store. *)
module Kv_model : sig
  module Smap : Map.S with type key = string

  type state = string Smap.t
  type op = Put of string * string | Get of string | Del of string
  type result = Ok | Found of string option

  val initial : state
  val step : state -> op -> state * result
  val equal_result : result -> result -> bool
end

module Kv : module type of Make (Kv_model)
