(** A Wing–Gong linearizability checker for small concurrent histories.

    The replicated service should be linearizable from the clients' point
    of view: every completed operation appears to take effect atomically
    between its invocation and its response. The checker searches for a
    legal sequential witness by trying, at each step, every {e minimal}
    pending operation (one whose invocation precedes the earliest pending
    response) against a sequential model.

    Exponential in the worst case; intended for the test suite's
    histories (tens of operations, small concurrency). *)

module type MODEL = sig
  type state
  type op
  type result

  val initial : state
  val step : state -> op -> state * result
  val equal_result : result -> result -> bool
end

type ('op, 'res) event = {
  client : int;
  op : 'op;
  result : 'res;
  invoked_at : float;
  responded_at : float;
}

module Make (M : MODEL) = struct
  type history = (M.op, M.result) event list

  (* An operation [e] is minimal in the pending set if no other pending
     operation responded before [e] was invoked. *)
  let minimal pending =
    let earliest_response =
      List.fold_left (fun acc e -> Float.min acc e.responded_at) infinity pending
    in
    List.filter (fun e -> e.invoked_at <= earliest_response) pending

  let rec search state pending =
    match pending with
    | [] -> true
    | _ ->
      List.exists
        (fun e ->
          let state', result = M.step state e.op in
          M.equal_result result e.result
          && search state' (List.filter (fun e' -> e' != e) pending))
        (minimal pending)

  (** [check history] is [true] iff the history is linearizable with
      respect to the model. *)
  let check (history : history) = search M.initial history
end

(** Ready-made model for the replicated counter service. *)
module Counter_model = struct
  type state = int
  type op = Get | Add of int
  type result = int

  let initial = 0
  let step s = function Get -> (s, s) | Add n -> (s + n, s + n)
  let equal_result = Int.equal
end

module Counter = Make (Counter_model)

(** Ready-made model for the key-value store. *)
module Kv_model = struct
  module Smap = Map.Make (String)

  type state = string Smap.t
  type op = Put of string * string | Get of string | Del of string
  type result = Ok | Found of string option

  let initial = Smap.empty

  let step s = function
    | Put (k, v) -> (Smap.add k v s, Ok)
    | Get k -> (s, Found (Smap.find_opt k s))
    | Del k -> (Smap.remove k s, Ok)

  let equal_result a b =
    match (a, b) with
    | Ok, Ok -> true
    | Found x, Found y -> Option.equal String.equal x y
    | _ -> false
end

module Kv = Make (Kv_model)
