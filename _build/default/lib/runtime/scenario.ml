(** Named network scenarios mirroring the paper's three experimental
    configurations (§4), plus constructors for custom ones.

    Latencies are one-way milliseconds. They were calibrated so that the
    {e original} (unreplicated) request RRT matches the paper's reported
    mean in each configuration; the read/write/transaction numbers are
    then emergent from the protocol message patterns. CPU costs model the
    per-message send/receive work of a 2006-era server; they create the
    throughput saturation of Figures 5–6.

    EXPERIMENTS.md records the resulting paper-vs-measured comparison. *)

module Latency = Grid_sim.Latency

type t = {
  name : string;
  n : int;  (** replicas *)
  replica_link : int -> int -> Latency.t;
      (** one-way latency between two replicas *)
  client_link : int -> Latency.t;
      (** one-way latency between a client (by client id) and a replica,
          symmetric *)
  replica_send_cost : float;
  replica_recv_cost : float;
  client_send_cost : float;
  client_recv_cost : float;
  clients_per_machine : int -> int;
      (** how many clients share a physical machine when [c] clients run
          (the paper's eight client hosts); client CPU costs scale with
          this to model machine contention *)
  server_load_factor : int -> float;
      (** multiplier on replica CPU costs as a function of connected
          clients — models the O(connections) select/poll overhead of a
          2006-era server, which bends the Figure 6 curves down past
          32–64 clients *)
  tune : Grid_paxos.Config.t -> Grid_paxos.Config.t;
}

let jitter mean cv : Latency.t = Lognormal { mean; cv }

(* -------------------------------------------------------------------- *)
(* Configuration 1: the UCSD "Sysnet" cluster. P4 2.8 GHz machines on
   gigabit ethernet. Calibrated against: original RRT 0.181 ms, read
   0.263 ms, write 0.338 ms (§4.1). *)

let sysnet_client_one_way = 0.0845
let sysnet_replica_one_way = 0.0705

let sysnet =
  {
    name = "sysnet";
    n = 3;
    replica_link = (fun _ _ -> jitter sysnet_replica_one_way 0.04);
    client_link = (fun _ -> jitter sysnet_client_one_way 0.04);
    replica_send_cost = 0.0022;
    replica_recv_cost = 0.0045;
    client_send_cost = 0.0018;
    client_recv_cost = 0.0030;
    clients_per_machine = (fun c -> Stdlib.max 1 ((c + 7) / 8));
    server_load_factor = (fun c -> 1.0 +. (0.004 *. Float.of_int c));
    tune = Fun.id;
  }

(* -------------------------------------------------------------------- *)
(* Configuration 2: replicas co-located at Princeton, clients at
   Berkeley. Calibrated against: original RRT 91.85 ms; read 92.79;
   write 93.13 (so replica-to-replica one-way ≈ 0.64 ms, a campus LAN
   with PlanetLab load jitter). *)

let princeton =
  {
    name = "berkeley-to-princeton";
    n = 3;
    replica_link = (fun _ _ -> jitter 0.67 0.15);
    client_link = (fun _ -> jitter 45.86 0.042);
    replica_send_cost = 0.003;
    replica_recv_cost = 0.006;
    client_send_cost = 0.002;
    client_recv_cost = 0.004;
    clients_per_machine = (fun c -> Stdlib.max 1 ((c + 7) / 8));
    server_load_factor = (fun _ -> 1.0);
    tune = Grid_paxos.Config.with_wan_timeouts;
  }

(* -------------------------------------------------------------------- *)
(* Configuration 3: service replicated across the wide area to mask
   correlated failures. Leader (replica 0) at UIUC, replica 1 at Utah,
   replica 2 at UT-Austin; clients at Berkeley and Intel Labs Oregon.
   Calibrated against: original RRT 70.82 ms; read 75.49; write 106.73.
   The inferred one-way latencies are consistent with 2006 Internet2
   paths: Berkeley–UIUC ≈ 35.4 ms, UIUC–Utah ≈ 17.8 ms (the accept
   round-trip behind write − original ≈ 35.9 ms), Berkeley–Utah ≈ 22.2 ms
   (the confirm path behind read − original ≈ 4.7 ms). *)

let wan_replica_matrix =
  (* one-way ms, indexed [src][dst]: 0 = UIUC, 1 = Utah, 2 = UT-Austin *)
  [| [| 0.0; 17.8; 24.6 |]; [| 17.8; 0.0; 20.3 |]; [| 24.6; 20.3; 0.0 |] |]

let wan_client_to_replica = [| 35.41; 22.25; 24.9 |]
(* Berkeley/Oregon clients to UIUC / Utah / UT-Austin respectively; the
   two client sites are close enough in the paper's numbers to share a
   calibration. *)

let wan =
  {
    name = "wan";
    n = 3;
    replica_link = (fun a b -> jitter wan_replica_matrix.(a).(b) 0.03);
    client_link =
      (fun r ->
        if r < 0 || r > 2 then invalid_arg "wan scenario has 3 replicas"
        else jitter wan_client_to_replica.(r) 0.015);
    replica_send_cost = 0.003;
    replica_recv_cost = 0.006;
    client_send_cost = 0.002;
    client_recv_cost = 0.004;
    clients_per_machine = (fun c -> Stdlib.max 1 ((c + 7) / 8));
    server_load_factor = (fun _ -> 1.0);
    tune = Grid_paxos.Config.with_wan_timeouts;
  }

(* -------------------------------------------------------------------- *)

(** A uniform scenario for tests: every link has the same latency model,
    negligible CPU cost. *)
let uniform ?(n = 3) ?(latency = Latency.Constant 1.0) () =
  {
    name = "uniform";
    n;
    replica_link = (fun _ _ -> latency);
    client_link = (fun _ -> latency);
    replica_send_cost = 0.0;
    replica_recv_cost = 0.0;
    client_send_cost = 0.0;
    client_recv_cost = 0.0;
    clients_per_machine = (fun _ -> 1);
    server_load_factor = (fun _ -> 1.0);
    tune = Fun.id;
  }

(** Scale every link latency (variance sweep for the t>1 ablation). *)
let scale_latency t k =
  {
    t with
    replica_link = (fun a b -> Latency.scale (t.replica_link a b) k);
    client_link = (fun r -> Latency.scale (t.client_link r) k);
  }

(** Replace the coefficient of variation of every (lognormal) link — the
    §4.3 ablation varies WAN message-delay variance. *)
let with_cv t cv =
  let swap (m : Latency.t) : Latency.t =
    match m with Lognormal { mean; _ } -> Lognormal { mean; cv } | other -> other
  in
  {
    t with
    replica_link = (fun a b -> swap (t.replica_link a b));
    client_link = (fun r -> swap (t.client_link r));
  }

(** Widen a 3-replica scenario to [n] replicas by tiling the replica
    latency matrix (for the t>1 ablation). *)
let with_n t n = { t with n; replica_link = (fun a b -> t.replica_link (a mod 3) (b mod 3));
                   client_link = (fun r -> t.client_link (r mod 3)) }
