lib/runtime/runtime.ml: Array Float Grid_paxos Grid_sim Grid_util Hashtbl Int64 List Option Printf Scenario
