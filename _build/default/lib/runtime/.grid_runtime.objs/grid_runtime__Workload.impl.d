lib/runtime/workload.ml: Array Grid_codec Grid_paxos Grid_services Grid_sim Grid_util List Printf Runtime
