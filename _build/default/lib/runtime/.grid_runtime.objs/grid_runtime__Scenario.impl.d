lib/runtime/scenario.ml: Array Float Fun Grid_paxos Grid_sim Stdlib
