lib/runtime/runtime.mli: Grid_paxos Grid_sim Scenario
