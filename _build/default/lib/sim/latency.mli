(** One-way message latency models for simulated links.

    All values are milliseconds. Models are sampled with an explicit RNG so
    that runs are reproducible; [sample] never returns a negative value. *)

type t =
  | Constant of float
      (** Fixed latency; the Sysnet LAN is modeled as near-constant. *)
  | Uniform of { lo : float; hi : float }
  | Exponential_shifted of { base : float; mean_extra : float }
      (** [base] plus an exponential tail — a simple queueing-delay model. *)
  | Lognormal of { mean : float; cv : float }
      (** Lognormal with the given real-space mean and coefficient of
          variation; the WAN/PlanetLab links use this (heavy-ish tail,
          never negative). *)
  | Empirical of float array
      (** Uniform draw from recorded samples. *)

val sample : t -> Grid_util.Rng.t -> float

val mean : t -> float
(** Analytical mean of the model (sample average for [Empirical]). *)

val scale : t -> float -> t
(** [scale m k] multiplies the model's location parameters by [k];
    used by variance/latency sweeps in the ablations. *)

val pp : Format.formatter -> t -> unit
