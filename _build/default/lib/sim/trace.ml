module Ring_buffer = Grid_util.Ring_buffer

type t = { buf : (float * string * string) Ring_buffer.t; enabled : bool }

let create ?(capacity = 4096) ~enabled () = { buf = Ring_buffer.create capacity; enabled }
let enabled t = t.enabled

let record t ~time ~actor msg =
  if t.enabled then Ring_buffer.push t.buf (time, actor, msg)

let recordf t ~time ~actor fmt =
  if t.enabled then
    Format.kasprintf (fun msg -> Ring_buffer.push t.buf (time, actor, msg)) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let to_list t = Ring_buffer.to_list t.buf

let pp ppf t =
  List.iter
    (fun (time, actor, msg) -> Format.fprintf ppf "%10.3f %-8s %s@." time actor msg)
    (to_list t)

let clear t = Ring_buffer.clear t.buf
