(** Deterministic discrete-event simulation engine.

    Time is a [float] in {e milliseconds} (the unit used throughout the
    paper's evaluation). Events scheduled for the same instant fire in
    scheduling order (a strictly increasing sequence number breaks ties),
    so runs are fully deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in milliseconds. *)

type timer
(** Handle for a scheduled callback; cancellation is O(1) (lazy deletion
    from the event heap). *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays
    are clamped to zero. *)

val schedule_at : t -> time:float -> (unit -> unit) -> timer
(** Absolute-time variant; times in the past fire immediately (at [now]). *)

val cancel : t -> timer -> unit
(** Idempotent; cancelling a fired timer is a no-op. *)

val cancelled : timer -> bool

val step : t -> bool
(** Fire the next event. [false] if the queue was empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Fire events until the queue empties, [until] (exclusive: events at or
    after it stay queued and [now] advances to [until]), or [max_events]
    events have fired, whichever comes first. *)

val pending : t -> int
(** Number of live (non-cancelled) queued events. *)

val fired : t -> int
(** Total events fired since creation. *)
