(** Bounded event trace for debugging simulation runs.

    A trace keeps the last [capacity] entries; protocols record decisions
    (elections, proposals, commits) and the failover example prints the
    tail. Disabled traces cost one branch per record. *)

type t

val create : ?capacity:int -> enabled:bool -> unit -> t
(** Default capacity: 4096 entries. *)

val enabled : t -> bool
val record : t -> time:float -> actor:string -> string -> unit
(** [record t ~time ~actor msg]; cheap no-op when disabled. *)

val recordf :
  t -> time:float -> actor:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are not evaluated when the
    trace is disabled. *)

val to_list : t -> (float * string * string) list
(** Oldest first. *)

val pp : Format.formatter -> t -> unit
val clear : t -> unit
