lib/sim/engine.mli:
