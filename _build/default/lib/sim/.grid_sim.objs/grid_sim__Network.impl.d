lib/sim/network.ml: Engine Float Grid_util Hashtbl Latency List Printf
