lib/sim/fault.ml: Engine Format List Network String
