lib/sim/engine.ml: Float Grid_util Int
