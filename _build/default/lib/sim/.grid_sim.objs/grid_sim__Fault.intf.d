lib/sim/fault.mli: Format Network
