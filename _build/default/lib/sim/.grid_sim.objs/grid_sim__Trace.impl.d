lib/sim/trace.ml: Format Grid_util List
