lib/sim/latency.mli: Format Grid_util
