lib/sim/latency.ml: Array Float Format Grid_util
