lib/sim/network.mli: Engine Grid_util Latency
