type timer = { time : float; seq : int; f : unit -> unit; mutable cancelled : bool }

module Event_order = struct
  type t = timer

  let compare a b =
    match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c
end

module Heap = Grid_util.Heap.Make (Event_order)

type t = {
  mutable now : float;
  mutable seq : int;
  mutable live : int;
  mutable fired : int;
  queue : Heap.t;
}

let create () = { now = 0.0; seq = 0; live = 0; fired = 0; queue = Heap.create () }

let now t = t.now

let schedule_at t ~time f =
  let time = if time < t.now then t.now else time in
  let ev = { time; seq = t.seq; f; cancelled = false } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Heap.add t.queue ev;
  ev

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.now +. delay) f

(* [live] is decremented immediately so [pending] stays accurate; the dead
   event is skipped when it reaches the top of the heap. *)
let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let cancelled ev = ev.cancelled

(* Pop events, skipping lazily-deleted (cancelled) ones. *)
let rec pop_live t =
  match Heap.pop_min t.queue with
  | None -> None
  | Some ev when ev.cancelled -> pop_live t
  | Some ev -> Some ev

let step t =
  match pop_live t with
  | None -> false
  | Some ev ->
    t.now <- ev.time;
    t.live <- t.live - 1;
    t.fired <- t.fired + 1;
    ev.f ();
    true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match pop_live t with
    | None -> continue := false
    | Some ev -> (
      match until with
      | Some horizon when ev.time >= horizon ->
        (* Put it back: the caller may resume later. *)
        Heap.add t.queue ev;
        t.now <- horizon;
        continue := false
      | _ ->
        t.now <- ev.time;
        t.live <- t.live - 1;
        t.fired <- t.fired + 1;
        decr budget;
        ev.f ())
  done;
  match until with
  | Some horizon when t.now < horizon && !budget > 0 -> t.now <- horizon
  | _ -> ()

let pending t =
  (* [live] counts cancelled-but-unpopped events out. *)
  t.live

let fired t = t.fired
