module Rng = Grid_util.Rng

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential_shifted of { base : float; mean_extra : float }
  | Lognormal of { mean : float; cv : float }
  | Empirical of float array

let sample t rng =
  let v =
    match t with
    | Constant c -> c
    | Uniform { lo; hi } -> lo +. Rng.float rng (hi -. lo)
    | Exponential_shifted { base; mean_extra } ->
      base +. Rng.exponential rng ~mean:mean_extra
    | Lognormal { mean; cv } -> Rng.lognormal_mean_cv rng ~mean ~cv
    | Empirical samples ->
      if Array.length samples = 0 then 0.0 else Rng.pick rng samples
  in
  if v < 0.0 then 0.0 else v

let mean = function
  | Constant c -> c
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential_shifted { base; mean_extra } -> base +. mean_extra
  | Lognormal { mean; _ } -> mean
  | Empirical samples ->
    if Array.length samples = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 samples /. Float.of_int (Array.length samples)

let scale t k =
  match t with
  | Constant c -> Constant (c *. k)
  | Uniform { lo; hi } -> Uniform { lo = lo *. k; hi = hi *. k }
  | Exponential_shifted { base; mean_extra } ->
    Exponential_shifted { base = base *. k; mean_extra = mean_extra *. k }
  | Lognormal { mean; cv } -> Lognormal { mean = mean *. k; cv }
  | Empirical samples -> Empirical (Array.map (fun x -> x *. k) samples)

let pp ppf = function
  | Constant c -> Format.fprintf ppf "const(%.3fms)" c
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%.3f..%.3fms)" lo hi
  | Exponential_shifted { base; mean_extra } ->
    Format.fprintf ppf "exp(base=%.3f,+%.3fms)" base mean_extra
  | Lognormal { mean; cv } -> Format.fprintf ppf "lognormal(mean=%.3f,cv=%.2f)" mean cv
  | Empirical s -> Format.fprintf ppf "empirical(%d samples)" (Array.length s)
