type 'a t = {
  mutable data : 'a array;
  cap : int;
  mutable start : int; (* index of the oldest element *)
  mutable len : int;
}

let create cap =
  if cap < 1 then invalid_arg "Ring_buffer.create: capacity must be >= 1";
  { data = [||]; cap; start = 0; len = 0 }

let push t x =
  if Array.length t.data = 0 then t.data <- Array.make t.cap x;
  if t.len < t.cap then begin
    t.data.((t.start + t.len) mod t.cap) <- x;
    t.len <- t.len + 1
  end
  else begin
    t.data.(t.start) <- x;
    t.start <- (t.start + 1) mod t.cap
  end

let length t = t.len
let capacity t = t.cap
let is_full t = t.len = t.cap

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.((t.start + i) mod t.cap)
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let clear t =
  t.start <- 0;
  t.len <- 0

let latest t =
  if t.len = 0 then None else Some t.data.((t.start + t.len - 1) mod t.cap)
