type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy t = { state = t.state }

(* SplitMix64 output function: mix the incremented state through two
   xor-shift-multiply rounds. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  (* Mix again with a distinct constant so split streams do not overlap the
     parent stream even for adjacent seeds. *)
  { state = mix64 (Int64.logxor seed 0xD1B54A32D192ED03L) }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.(sub (sub r v) (sub bound64 1L)) < 0L then go () else Int64.to_int v
  in
  go ()

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits -> [0,1), scaled. *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let lognormal_mean_cv t ~mean ~cv =
  if cv <= 0.0 then mean
  else begin
    let sigma2 = log (1.0 +. (cv *. cv)) in
    let mu = log mean -. (sigma2 /. 2.0) in
    lognormal t ~mu ~sigma:(sqrt sigma2)
  end

let pareto t ~scale ~shape =
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

(* Zipf sampling by inverse CDF over precomputed cumulative weights. The
   table is memoized on (n, s) since workload generators draw many samples
   from one distribution. *)
let zipf_tables : (int * float, float array) Hashtbl.t = Hashtbl.create 7

let zipf_cdf n s =
  match Hashtbl.find_opt zipf_tables (n, s) with
  | Some cdf -> cdf
  | None ->
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for k = 1 to n do
      acc := !acc +. (1.0 /. (Float.of_int k ** s));
      cdf.(k - 1) <- !acc
    done;
    let total = !acc in
    for k = 0 to n - 1 do
      cdf.(k) <- cdf.(k) /. total
    done;
    Hashtbl.replace zipf_tables (n, s) cdf;
    cdf

let zipf t ~n ~s =
  assert (n >= 1);
  if n = 1 then 1
  else begin
    let cdf = zipf_cdf n s in
    let u = float t 1.0 in
    (* Binary search for the first index with cdf >= u. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo + 1
  end

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
