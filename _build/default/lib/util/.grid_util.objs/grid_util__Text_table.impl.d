lib/util/text_table.ml: Buffer Format List Printf Stdlib String
