lib/util/heap.mli:
