lib/util/rng.mli:
