(** Plain-text table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables similar to the tables in the
    paper, e.g.

    {v
    | Operation  | Req/tran | Avg. TRT (ms) | 99% CI (ms) |
    |------------|----------|---------------|-------------|
    | Read/write |        3 |          1.17 |       ±0.02 |
    v} *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Column headers with per-column alignment. *)

val add_row : t -> string list -> unit
(** Row cells, one per column. Raises [Invalid_argument] on arity
    mismatch. *)

val add_rule : t -> unit
(** Horizontal separator between row groups. *)

val render : t -> string

val pp : Format.formatter -> t -> unit

val cell_f : ?decimals:int -> float -> string
(** Format a float cell with fixed decimals (default 3). *)

val cell_ci : ?decimals:int -> float -> string
(** Format a confidence-interval cell as ["±x.xxx"]. *)
