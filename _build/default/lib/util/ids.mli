(** Typed identifiers for the actors of the system.

    Replica, client and request identifiers are all integers on the wire,
    but conflating them is a classic source of protocol bugs; these small
    abstract-ish modules keep them apart at the type level while staying
    zero-cost. *)

module Replica_id : sig
  type t = private int

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module Client_id : sig
  type t = private int

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Request_id : sig
  (** A request is identified by the issuing client plus a per-client
      sequence number; retransmissions reuse the id so replicas can
      deduplicate. *)

  type t = { client : Client_id.t; seq : int }

  val make : client:Client_id.t -> seq:int -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end
