(** Compact fixed-size bitsets.

    Used to track quorum membership: which replicas have acknowledged a
    prepare/accept or confirmed a read. *)

type t

val create : int -> t
(** [create n] is an empty set over the universe [0 .. n-1]. *)

val capacity : t -> int
val set : t -> int -> unit
val clear_bit : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val clear : t -> unit
val copy : t -> t
val union : t -> t -> t
val inter : t -> t -> t
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
val of_list : int -> int list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
