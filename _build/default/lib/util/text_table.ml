type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~columns =
  if columns = [] then invalid_arg "Text_table.create: no columns";
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Text_table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row ->
            match row with
            | Rule -> w
            | Cells cells -> Stdlib.max w (String.length (List.nth cells i)))
          (String.length h) rows)
      t.headers
  in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad (List.nth t.aligns i) (List.nth widths i) c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let emit_rule () =
    Buffer.add_string buf "|";
    List.iter (fun w -> Buffer.add_string buf (String.make (w + 2) '-');
                Buffer.add_char buf '|')
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> emit_rule ()) rows;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)

let cell_f ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
let cell_ci ?(decimals = 3) x = Printf.sprintf "\xc2\xb1%.*f" decimals x
