module Replica_id = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg "Replica_id.of_int: negative";
    i

  let to_int t = t
  let equal = Int.equal
  let compare = Int.compare
  let hash = Hashtbl.hash
  let pp ppf t = Format.fprintf ppf "r%d" t
end

module Client_id = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg "Client_id.of_int: negative";
    i

  let to_int t = t
  let equal = Int.equal
  let compare = Int.compare
  let pp ppf t = Format.fprintf ppf "c%d" t
end

module Request_id = struct
  type t = { client : Client_id.t; seq : int }

  let make ~client ~seq =
    if seq < 0 then invalid_arg "Request_id.make: negative seq";
    { client; seq }

  let equal a b = Client_id.equal a.client b.client && Int.equal a.seq b.seq

  let compare a b =
    match Client_id.compare a.client b.client with
    | 0 -> Int.compare a.seq b.seq
    | c -> c

  let pp ppf t = Format.fprintf ppf "%a#%d" Client_id.pp t.client t.seq
end
