type t = { words : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { words = Bytes.make ((n + 7) / 8) '\000'; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i / 8)) in
  Bytes.set t.words (i / 8) (Char.chr (byte lor (1 lsl (i mod 8))))

let clear_bit t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i / 8)) in
  Bytes.set t.words (i / 8) (Char.chr (byte land lnot (1 lsl (i mod 8)) land 0xFF))

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i / 8)) land (1 lsl (i mod 8)) <> 0

let popcount_byte b =
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
  go b 0

let cardinal t =
  let total = ref 0 in
  Bytes.iter (fun c -> total := !total + popcount_byte (Char.code c)) t.words;
  !total

let is_empty t = cardinal t = 0
let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'
let copy t = { words = Bytes.copy t.words; n = t.n }

let zip_words op a b =
  if a.n <> b.n then invalid_arg "Bitset: size mismatch";
  let out = create a.n in
  for i = 0 to Bytes.length a.words - 1 do
    Bytes.set out.words i
      (Char.chr (op (Char.code (Bytes.get a.words i)) (Char.code (Bytes.get b.words i))))
  done;
  out

let union = zip_words (lor)
let inter = zip_words (land)

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

let equal a b = a.n = b.n && Bytes.equal a.words b.words

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
