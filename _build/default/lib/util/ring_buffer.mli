(** Bounded ring buffer keeping the most recent [capacity] items.

    Used for recent-latency windows in adaptive timeouts and for trace
    tails in debugging output. *)

type 'a t

val create : int -> 'a t
(** [create capacity] with [capacity >= 1]. *)

val push : 'a t -> 'a -> unit
(** Append, evicting the oldest element when full. *)

val length : 'a t -> int
val capacity : 'a t -> int
val is_full : 'a t -> bool
val to_list : 'a t -> 'a list
(** Oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val clear : 'a t -> unit
val latest : 'a t -> 'a option
