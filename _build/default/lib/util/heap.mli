(** Array-backed binary min-heap, functorized over the element order.

    Used as the event queue of the discrete-event simulator, where the
    common operations are [add] and [pop_min] plus lazy deletion of
    cancelled timers. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val is_empty : t -> bool
  val add : t -> Elt.t -> unit
  val min_elt : t -> Elt.t option
  (** Smallest element without removing it. *)

  val pop_min : t -> Elt.t option
  (** Remove and return the smallest element. *)

  val clear : t -> unit

  val to_sorted_list : t -> Elt.t list
  (** Non-destructive; O(n log n). *)

  val check_invariant : t -> bool
  (** True iff every parent is [<=] its children (for tests). *)
end
