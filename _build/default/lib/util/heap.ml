module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) = struct
  type t = { mutable data : Elt.t array; mutable size : int }

  let create ?capacity:_ () = { data = [||]; size = 0 }

  let length t = t.size
  let is_empty t = t.size = 0

  let swap t i j =
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(j);
    t.data.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if Elt.compare t.data.(i) t.data.(parent) < 0 then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && Elt.compare t.data.(l) t.data.(!smallest) < 0 then smallest := l;
    if r < t.size && Elt.compare t.data.(r) t.data.(!smallest) < 0 then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let grow t x =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let ncap = if cap = 0 then 16 else 2 * cap in
      let ndata = Array.make ncap x in
      Array.blit t.data 0 ndata 0 t.size;
      t.data <- ndata
    end

  let add t x =
    grow t x;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let min_elt t = if t.size = 0 then None else Some t.data.(0)

  let pop_min t =
    if t.size = 0 then None
    else begin
      let root = t.data.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.data.(0) <- t.data.(t.size);
        sift_down t 0
      end;
      Some root
    end

  let clear t = t.size <- 0

  let to_sorted_list t =
    let copy = { data = Array.sub t.data 0 t.size; size = t.size } in
    let rec drain acc =
      match pop_min copy with None -> List.rev acc | Some x -> drain (x :: acc)
    in
    drain []

  let check_invariant t =
    let ok = ref true in
    for i = 1 to t.size - 1 do
      if Elt.compare t.data.((i - 1) / 2) t.data.(i) > 0 then ok := false
    done;
    !ok
end
