(** Deterministic pseudo-random number generation.

    All nondeterminism in the system (simulated latencies, randomized
    services, workload generators) flows through values of type {!t} that
    are explicitly seeded, so every simulation run is reproducible.

    The core generator is SplitMix64 (Steele, Lea & Flood 2014), which has
    a 64-bit state, passes BigCrush, and supports cheap splitting — handy
    for giving every replica, client and link an independent stream derived
    from one experiment seed. *)

type t
(** A mutable generator. Not thread-safe; use one per logical actor. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds give
    independent-looking streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list (O(n)). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample (Box–Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Lognormal sample: [exp (normal ~mu ~sigma)]. [mu]/[sigma] are the
    parameters of the underlying normal (log-space). *)

val lognormal_mean_cv : t -> mean:float -> cv:float -> float
(** Lognormal sample parameterized by its real-space [mean] and coefficient
    of variation [cv] (= stddev/mean). Convenient for latency jitter:
    [lognormal_mean_cv rng ~mean:45.9 ~cv:0.05]. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto sample with minimum [scale] and tail index [shape]. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[1, n\]] with exponent [s] (rejection
    sampling; O(1) expected). *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0 .. n-1]. *)
