exception Decode_error of { pos : int; msg : string }

let fail pos msg = raise (Decode_error { pos; msg })

module Encoder = struct
  type t = Buffer.t

  let create ?(initial_size = 64) () = Buffer.create initial_size

  let uint t n =
    if n < 0 then invalid_arg "Wire.Encoder.uint: negative";
    let rec go n =
      if n < 0x80 then Buffer.add_char t (Char.chr n)
      else begin
        Buffer.add_char t (Char.chr (0x80 lor (n land 0x7F)));
        go (n lsr 7)
      end
    in
    go n

  let int t n =
    (* Zigzag: map small-magnitude signed ints to small unsigned ints. The
       logical shifts keep this correct for min_int. *)
    let z = (n lsl 1) lxor (n asr (Sys.int_size - 1)) in
    (* [z] may have the top bit set; emit as up to 10 varint bytes treating
       it as unsigned. *)
    let rec go z =
      if z land lnot 0x7F = 0 then Buffer.add_char t (Char.chr z)
      else begin
        Buffer.add_char t (Char.chr (0x80 lor (z land 0x7F)));
        go (z lsr 7)
      end
    in
    go z

  let int64 t v =
    for i = 0 to 7 do
      Buffer.add_char t (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
    done

  let float t f = int64 t (Int64.bits_of_float f)
  let bool t b = Buffer.add_char t (if b then '\001' else '\000')
  let char t c = Buffer.add_char t c

  let string t s =
    uint t (String.length s);
    Buffer.add_string t s

  let option t enc = function
    | None -> bool t false
    | Some v ->
      bool t true;
      enc v

  let list t enc l =
    uint t (List.length l);
    List.iter enc l

  let array t enc a =
    uint t (Array.length a);
    Array.iter enc a

  let raw t s = Buffer.add_string t s
  let length = Buffer.length
  let contents = Buffer.contents
end

module Decoder = struct
  type t = { src : string; mutable pos : int }

  let of_string ?(pos = 0) src =
    if pos < 0 || pos > String.length src then
      invalid_arg "Wire.Decoder.of_string: bad position";
    { src; pos }

  let pos t = t.pos
  let remaining t = String.length t.src - t.pos
  let at_end t = remaining t = 0

  let byte t =
    if t.pos >= String.length t.src then fail t.pos "unexpected end of input";
    let c = String.unsafe_get t.src t.pos in
    t.pos <- t.pos + 1;
    Char.code c

  let uint t =
    let rec go shift acc =
      if shift > Sys.int_size then fail t.pos "varint too long";
      let b = byte t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int t =
    let z = uint t in
    (z lsr 1) lxor (-(z land 1))

  let int64 t =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte t)) (8 * i))
    done;
    !v

  let float t = Int64.float_of_bits (int64 t)

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | b -> fail (t.pos - 1) (Printf.sprintf "invalid boolean byte %d" b)

  let char t = Char.chr (byte t)

  let raw t n =
    if n < 0 then fail t.pos "negative length";
    if remaining t < n then fail t.pos "string extends past end of input";
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let string t =
    let n = uint t in
    raw t n

  let option t dec = if bool t then Some (dec t) else None

  let list t dec =
    let n = uint t in
    if n > remaining t then fail t.pos "list length exceeds input";
    List.init n (fun _ -> dec t)

  let array t dec =
    let n = uint t in
    if n > remaining t then fail t.pos "array length exceeds input";
    Array.init n (fun _ -> dec t)

  let expect_end t =
    if not (at_end t) then fail t.pos "trailing bytes after decoded value"
end

(* CRC-32, reflected IEEE 802.3 polynomial 0xEDB88320, table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(crc = 0l) s =
  let table = Lazy.force crc_table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let with_crc s =
  let crc = crc32 s in
  let e = Encoder.create ~initial_size:(String.length s + 4) () in
  Encoder.raw e s;
  let b = Buffer.create 4 in
  for i = 0 to 3 do
    Buffer.add_char b
      (Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xFF))
  done;
  Encoder.raw e (Buffer.contents b);
  Encoder.contents e

let check_crc s =
  let n = String.length s in
  if n < 4 then fail n "input too short to contain a CRC trailer";
  let body = String.sub s 0 (n - 4) in
  let stored = ref 0l in
  for i = 0 to 3 do
    stored :=
      Int32.logor !stored
        (Int32.shift_left (Int32.of_int (Char.code s.[n - 4 + i])) (8 * i))
  done;
  if crc32 body <> !stored then fail (n - 4) "CRC mismatch";
  body

let encode f =
  let e = Encoder.create () in
  f e;
  Encoder.contents e

let decode s f =
  let d = Decoder.of_string s in
  let v = f d in
  Decoder.expect_end d;
  v
