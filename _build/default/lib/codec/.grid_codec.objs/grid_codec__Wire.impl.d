lib/codec/wire.ml: Array Buffer Char Int32 Int64 Lazy List Printf String Sys
