lib/codec/wire.mli:
