(** Binary wire format: a compact, self-describing-enough encoding used
    for shipped service state, the stable-storage log, and TCP frames.

    Integers use LEB128 varints (unsigned) or zigzag varints (signed);
    strings and blobs are length-prefixed. Decoding failures raise
    {!Decode_error} with a position and message rather than returning
    garbage. *)

exception Decode_error of { pos : int; msg : string }

(** {1 Encoding} *)

module Encoder : sig
  type t

  val create : ?initial_size:int -> unit -> t
  val uint : t -> int -> unit
  (** Unsigned LEB128 varint. Requires a non-negative argument. *)

  val int : t -> int -> unit
  (** Signed zigzag varint (full [int] range). *)

  val int64 : t -> int64 -> unit
  (** Fixed 8-byte little-endian. *)

  val float : t -> float -> unit
  (** IEEE-754 binary64, little-endian. *)

  val bool : t -> bool -> unit
  val char : t -> char -> unit
  val string : t -> string -> unit
  (** Length-prefixed bytes. *)

  val option : t -> ('a -> unit) -> 'a option -> unit
  (** [option e enc v]: 1-byte tag then the payload via [enc]. The
      continuation is expected to write into [e]. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Length prefix then each element via the continuation. *)

  val array : t -> ('a -> unit) -> 'a array -> unit
  val raw : t -> string -> unit
  (** Append bytes with no length prefix (for already-framed payloads). *)

  val length : t -> int
  val contents : t -> string
end

(** {1 Decoding} *)

module Decoder : sig
  type t

  val of_string : ?pos:int -> string -> t
  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool
  val uint : t -> int
  val int : t -> int
  val int64 : t -> int64
  val float : t -> float
  val bool : t -> bool
  val char : t -> char
  val string : t -> string
  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val raw : t -> int -> string
  (** [raw d n] reads exactly [n] bytes. *)

  val expect_end : t -> unit
  (** Raise {!Decode_error} unless all input has been consumed. *)
end

(** {1 Checksums} *)

val crc32 : ?crc:int32 -> string -> int32
(** CRC-32 (IEEE 802.3 polynomial, reflected). [?crc] continues a running
    checksum. *)

val with_crc : string -> string
(** Append a 4-byte little-endian CRC32 trailer. *)

val check_crc : string -> string
(** Validate and strip the trailer added by {!with_crc}; raises
    {!Decode_error} on mismatch or truncation. *)

(** {1 Convenience} *)

val encode : (Encoder.t -> unit) -> string
val decode : string -> (Decoder.t -> 'a) -> 'a
(** [decode s f] runs [f] and then {!Decoder.expect_end}. *)
