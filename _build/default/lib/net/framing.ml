module Wire = Grid_codec.Wire

exception Closed

let max_frame = 16 * 1024 * 1024

let really_write fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let n = Unix.write_substring fd s !pos (len - !pos) in
    if n = 0 then raise Closed;
    pos := !pos + n
  done

let really_read fd n =
  let buf = Bytes.create n in
  let pos = ref 0 in
  while !pos < n do
    let k = Unix.read fd buf !pos (n - !pos) in
    if k = 0 then raise Closed;
    pos := !pos + k
  done;
  Bytes.unsafe_to_string buf

let write_frame fd payload =
  let framed = Wire.with_crc payload in
  let len = String.length framed in
  if len > max_frame then invalid_arg "Framing.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr (len land 0xFF));
  Bytes.set hdr 1 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set hdr 2 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set hdr 3 (Char.chr ((len lsr 24) land 0xFF));
  really_write fd (Bytes.unsafe_to_string hdr ^ framed)

let read_frame fd =
  let hdr = really_read fd 4 in
  let len =
    Char.code hdr.[0]
    lor (Char.code hdr.[1] lsl 8)
    lor (Char.code hdr.[2] lsl 16)
    lor (Char.code hdr.[3] lsl 24)
  in
  if len < 4 || len > max_frame then
    raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "bad frame length %d" len });
  Wire.check_crc (really_read fd len)

let write_msg fd msg =
  write_frame fd (Wire.encode (fun e -> Grid_paxos.Types.encode_msg e msg))

let read_msg fd = Wire.decode (read_frame fd) Grid_paxos.Types.decode_msg

let write_hello fd ~node_id =
  write_frame fd (Wire.encode (fun e -> Wire.Encoder.uint e node_id))

let read_hello fd = Wire.decode (read_frame fd) Wire.Decoder.uint
