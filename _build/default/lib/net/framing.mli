(** Length-prefixed, CRC-protected message framing over file descriptors.

    Frame layout: 4-byte little-endian payload length, then the payload
    with the 4-byte CRC32 trailer of {!Grid_codec.Wire.with_crc}. The
    maximum frame size guards against corrupt length headers. *)

exception Closed
(** Raised on EOF or a closed peer. *)

val max_frame : int
(** 16 MiB. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame (payload without CRC; the trailer is added here).
    Raises [Unix.Unix_error] on socket errors. *)

val read_frame : Unix.file_descr -> string
(** Read one frame, verify the CRC, and return the payload. Raises
    {!Closed} on EOF, {!Grid_codec.Wire.Decode_error} on corruption. *)

val write_msg : Unix.file_descr -> Grid_paxos.Types.msg -> unit
val read_msg : Unix.file_descr -> Grid_paxos.Types.msg

val write_hello : Unix.file_descr -> node_id:int -> unit
(** Connection handshake: the dialing side announces its node id. *)

val read_hello : Unix.file_descr -> int
