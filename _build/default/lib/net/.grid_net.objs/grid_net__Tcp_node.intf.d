lib/net/tcp_node.mli: Grid_paxos Unix
