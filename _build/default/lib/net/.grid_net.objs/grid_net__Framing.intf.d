lib/net/framing.mli: Grid_paxos Unix
