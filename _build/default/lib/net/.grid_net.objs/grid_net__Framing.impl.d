lib/net/framing.ml: Bytes Char Grid_codec Grid_paxos Printf String Unix
