lib/net/tcp_node.ml: Bytes Condition Float Framing Fun Grid_codec Grid_paxos Grid_util List Mutex Option Queue Thread Unix
