(** The evaluation service of §4: every operation invokes an empty
    method, so benchmarks measure pure replication overhead. The state is
    a write counter plus optional padding so that state-size experiments
    have something to ship. *)

type state = { writes : int; padding : string }

type op =
  | Noop_read
  | Noop_write
  | Noop_sized_write of int
      (** write that also grows the encoded state to roughly this many
          bytes (the §3.3 state-size ablation) *)

type result = unit

include
  Grid_paxos.Service_intf.S
    with type state := state
     and type op := op
     and type result := result
