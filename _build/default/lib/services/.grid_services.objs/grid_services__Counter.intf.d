lib/services/counter.mli: Grid_paxos
