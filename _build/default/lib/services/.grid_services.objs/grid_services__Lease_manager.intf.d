lib/services/lease_manager.mli: Grid_paxos Map
