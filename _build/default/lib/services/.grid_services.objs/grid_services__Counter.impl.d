lib/services/counter.ml: Grid_codec Printf
