lib/services/noop.mli: Grid_paxos
