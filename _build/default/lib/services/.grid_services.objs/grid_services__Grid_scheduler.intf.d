lib/services/grid_scheduler.mli: Grid_paxos Map
