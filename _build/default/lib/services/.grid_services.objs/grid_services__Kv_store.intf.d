lib/services/kv_store.mli: Grid_paxos Map
