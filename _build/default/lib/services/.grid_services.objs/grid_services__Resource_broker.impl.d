lib/services/resource_broker.ml: Array Grid_codec Grid_util Hashtbl Int List Map Option Printf Stdlib
