lib/services/noop.ml: Grid_codec Printf String
