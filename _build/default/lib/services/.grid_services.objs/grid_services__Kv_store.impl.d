lib/services/kv_store.ml: Grid_codec List Map Option Printf String
