lib/services/grid_scheduler.ml: Array Grid_codec Grid_util Int List Map Option Printf Stdlib
