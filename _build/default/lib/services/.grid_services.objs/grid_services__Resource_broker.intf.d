lib/services/resource_broker.mli: Grid_paxos Map
