lib/services/lease_manager.ml: Grid_codec List Map Printf String
