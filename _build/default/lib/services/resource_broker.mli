(** The distributed grid resource broker of §2: accepts requests for
    resources and selects them with a {e randomized} algorithm to balance
    load — the paper's canonical intentionally-nondeterministic service.
    Selection prefers the requester's site and spills to remote sites
    only when local capacity is insufficient; every random choice is
    recorded in the witness so backups replay the exact selection. *)

module Imap : Map.S with type key = int

type resource = { site : int; capacity : int; used : int }

type state = { resources : resource Imap.t; selections : int }

type strategy =
  | Uniform  (** uniformly random among feasible resources *)
  | Power_of_two  (** two samples, pick the less loaded (Mitzenmacher) *)
  | Least_loaded  (** deterministic argmin, for comparison *)

type op =
  | Register of { rid : int; site : int; capacity : int }
  | Release of { rid : int; units : int }
  | Select of { site : int; units : int; strategy : strategy }
  | List_free  (** read: free units per site *)
  | Resource_info of int  (** read *)

type result =
  | Registered
  | Released
  | Selected of int list  (** chosen resource ids, one per unit *)
  | No_capacity
  | Free_units of (int * int) list
  | Info of resource option
  | Error of string

include
  Grid_paxos.Service_intf.S
    with type state := state
     and type op := op
     and type result := result

(** {1 Helpers} *)

val total_used : state -> int
(** Units allocated across all resources. *)

val imbalance : state -> int
(** Max minus min used units across resources — the load-balancing
    quality metric for the strategy comparison. *)
