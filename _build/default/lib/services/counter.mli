(** A deterministic replicated counter — the quickstart service and the
    reference service for the protocol test suites. *)

type state = int
type op = Get | Add of int
type result = int

include
  Grid_paxos.Service_intf.S
    with type state := state
     and type op := op
     and type result := result
