(** A lease manager for grid resources (reservations in the style of the
    Storage Resource Broker). Whether an [Acquire] succeeds depends on
    whether the previous lease has expired {e at the moment the service
    examines it} — local-clock nondeterminism of the same class as the
    grid scheduler's (§2). The leader's decision, including the grant
    deadline it computed from its clock, ships in the witness, so every
    replica records the identical lease table. *)

module Smap : Map.S with type key = string

type lease = { holder : int; until : float  (** leader-clock ms *) }

type state = { leases : lease Smap.t; grants : int }

type op =
  | Acquire of { resource : string; holder : int; ttl_ms : float }
  | Renew of { resource : string; holder : int; ttl_ms : float }
  | Release of { resource : string; holder : int }
  | Holder_of of string  (** read *)
  | Active_count  (** read: leases unexpired at examination time *)

type result =
  | Granted of { until : float }
  | Denied of { holder : int; until : float }
  | Renewed of { until : float }
  | Released
  | Not_holder
  | Holder of (int * float) option
  | Count of int

include
  Grid_paxos.Service_intf.S
    with type state := state
     and type op := op
     and type result := result

(** {1 Helpers} *)

val lease_of : state -> string -> lease option
val lease_count : state -> int
