(** The grid scheduling service of §2 (after the NILE Global Planner):
    jobs examined in FCFS order overridden by priorities. The service is
    {e unintentionally} nondeterministic: a job's effective position
    depends on the local clock at submission, [Examine] schedules the
    best job currently visible (the Job-A/Job-B race), and the target
    machine is drawn randomly among the least loaded. Witnesses record
    the observed clock and the choices made. *)

module Imap : Map.S with type key = int

type job = { priority : int; arrival : float; submitted_seq : int }

type state = {
  machines : int Imap.t;  (** machine id → jobs currently assigned *)
  pending : job Imap.t;
  assignments : (int * int) list;  (** (job, machine), newest first *)
  next_seq : int;
}

type op =
  | Add_machine of int
  | Submit of { job : int; priority : int }
  | Examine  (** schedule the best pending job, if any *)
  | Complete of { job : int; machine : int }
  | Queue_length  (** read *)
  | Assignment_of of int  (** read *)

type result =
  | Done
  | Submitted
  | Scheduled of (int * int) option
  | Length of int
  | Assigned_to of int option
  | Error of string

include
  Grid_paxos.Service_intf.S
    with type state := state
     and type op := op
     and type result := result

(** {1 Helpers} *)

val pending_jobs : state -> int list
val assignments : state -> (int * int) list
(** Oldest first. *)

val machine_load : state -> int -> int
