module Wire = Grid_codec.Wire

type persisted = {
  promised : Types.Ballot.t;
  entries : Types.recovery_entry list;
  commit_point : int;
  snapshot : string option;
}

type t = {
  persist_promise : Types.Ballot.t -> unit;
  persist_entry : instance:int -> ballot:Types.Ballot.t -> Types.proposal -> unit;
  persist_commit : int -> unit;
  persist_snapshot : string -> unit;
}

let null () =
  {
    persist_promise = (fun _ -> ());
    persist_entry = (fun ~instance:_ ~ballot:_ _ -> ());
    persist_commit = (fun _ -> ());
    persist_snapshot = (fun _ -> ());
  }

let memory () =
  let promised = ref Types.Ballot.zero in
  let entries : (int, Types.recovery_entry) Hashtbl.t = Hashtbl.create 32 in
  let commit_point = ref 0 in
  let snapshot = ref None in
  let store =
    {
      persist_promise = (fun b -> promised := b);
      persist_entry =
        (fun ~instance ~ballot proposal ->
          Hashtbl.replace entries instance { Types.instance; ballot; proposal });
      persist_commit = (fun cp -> if cp > !commit_point then commit_point := cp);
      persist_snapshot = (fun s -> snapshot := Some s);
    }
  in
  let read () =
    {
      promised = !promised;
      entries = Hashtbl.fold (fun _ e acc -> e :: acc) entries [];
      commit_point = !commit_point;
      snapshot = !snapshot;
    }
  in
  (store, read)

(* File backend: one append-only log of CRC-framed records plus a
   last-snapshot-wins snapshot file. Record framing: u32-le length, then
   [with_crc] payload. *)

let rec_promise = 0
and rec_entry = 1
and rec_commit = 2

let encode_record tag body =
  Wire.encode (fun e ->
      Wire.Encoder.uint e tag;
      body e)

let write_frame oc payload =
  let framed = Wire.with_crc payload in
  let len = String.length framed in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr (len land 0xFF));
  Bytes.set hdr 1 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set hdr 2 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set hdr 3 (Char.chr ((len lsr 24) land 0xFF));
  output_bytes oc hdr;
  output_string oc framed;
  flush oc

let read_frames path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let frames = ref [] in
    (try
       let rec loop () =
         let hdr = really_input_string ic 4 in
         let len =
           Char.code hdr.[0]
           lor (Char.code hdr.[1] lsl 8)
           lor (Char.code hdr.[2] lsl 16)
           lor (Char.code hdr.[3] lsl 24)
         in
         let framed = really_input_string ic len in
         (* A torn tail (CRC failure on the final record) is treated as
            end-of-log; interior corruption propagates. *)
         let payload =
           try Some (Wire.check_crc framed) with Wire.Decode_error _ -> None
         in
         match payload with
         | Some p ->
           frames := p :: !frames;
           loop ()
         | None -> ()
       in
       loop ()
     with End_of_file -> ());
    close_in ic;
    List.rev !frames
  end

let decode_entry_record d =
  let instance = Wire.Decoder.uint d in
  let ballot = Types.Ballot.decode d in
  let proposal = Types.decode_proposal d in
  { Types.instance; ballot; proposal }

let replay_log frames =
  let promised = ref Types.Ballot.zero in
  let entries : (int, Types.recovery_entry) Hashtbl.t = Hashtbl.create 32 in
  let commit_point = ref 0 in
  List.iter
    (fun payload ->
      let d = Wire.Decoder.of_string payload in
      match Wire.Decoder.uint d with
      | tag when tag = rec_promise -> promised := Types.Ballot.decode d
      | tag when tag = rec_entry ->
        let e = decode_entry_record d in
        Hashtbl.replace entries e.instance e
      | tag when tag = rec_commit ->
        let cp = Wire.Decoder.uint d in
        if cp > !commit_point then commit_point := cp
      | tag ->
        raise
          (Wire.Decode_error { pos = 0; msg = Printf.sprintf "unknown record tag %d" tag }))
    frames;
  (!promised, Hashtbl.fold (fun _ e acc -> e :: acc) entries [], !commit_point)

let file ~path =
  let log_path = path ^ ".log" and snap_path = path ^ ".snap" in
  let recovered =
    let frames = read_frames log_path in
    let snapshot =
      if Sys.file_exists snap_path then begin
        let ic = open_in_bin snap_path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        match Wire.check_crc s with
        | body -> Some body
        | exception Wire.Decode_error _ -> None
      end
      else None
    in
    if frames = [] && snapshot = None then None
    else begin
      let promised, entries, commit_point = replay_log frames in
      Some { promised; entries; commit_point; snapshot }
    end
  in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 log_path in
  let store =
    {
      persist_promise =
        (fun b -> write_frame oc (encode_record rec_promise (fun e -> Types.Ballot.encode e b)));
      persist_entry =
        (fun ~instance ~ballot proposal ->
          write_frame oc
            (encode_record rec_entry (fun e ->
                 Wire.Encoder.uint e instance;
                 Types.Ballot.encode e ballot;
                 Types.encode_proposal e proposal)));
      persist_commit =
        (fun cp -> write_frame oc (encode_record rec_commit (fun e -> Wire.Encoder.uint e cp)));
      persist_snapshot =
        (fun s ->
          let tmp = snap_path ^ ".tmp" in
          let soc = open_out_bin tmp in
          output_string soc (Wire.with_crc s);
          close_out soc;
          Sys.rename tmp snap_path);
    }
  in
  (store, recovered)
