type entry = {
  ballot : Types.Ballot.t;
  proposal : Types.proposal;
  committed : bool;
  pruned : bool;
}

type t = {
  entries : (int, entry) Hashtbl.t;
  mutable commit_point : int;
  mutable max_accepted : int;
}

let create () = { entries = Hashtbl.create 64; commit_point = 0; max_accepted = 0 }
let commit_point t = t.commit_point
let max_accepted t = t.max_accepted
let get t i = Hashtbl.find_opt t.entries i

let accept t ~instance ~ballot proposal =
  if instance < 1 then invalid_arg "Plog.accept: instances start at 1";
  let store () =
    Hashtbl.replace t.entries instance
      { ballot; proposal; committed = false; pruned = false };
    if instance > t.max_accepted then t.max_accepted <- instance;
    true
  in
  match Hashtbl.find_opt t.entries instance with
  | None -> store ()
  | Some e when e.committed -> false
  | Some e when Types.Ballot.compare ballot e.ballot >= 0 -> store ()
  | Some _ -> false

let commit t ~instance =
  match Hashtbl.find_opt t.entries instance with
  | None -> false
  | Some e ->
    if not e.committed then
      Hashtbl.replace t.entries instance { e with committed = true };
    (* Advance the contiguous committed prefix. *)
    let rec advance i =
      match Hashtbl.find_opt t.entries (i + 1) with
      | Some e when e.committed -> advance (i + 1)
      | _ -> i
    in
    t.commit_point <- advance t.commit_point;
    true

let install_commit_point t cp =
  if cp > t.commit_point then begin
    Hashtbl.filter_map_inplace
      (fun i e -> if i <= cp then None else Some e)
      t.entries;
    t.commit_point <- cp;
    if t.max_accepted < cp then t.max_accepted <- cp
  end

let accepted_above t floor =
  Hashtbl.fold
    (fun i (e : entry) acc ->
      if i > floor && not e.pruned then
        ({ Types.instance = i; ballot = e.ballot; proposal = e.proposal } :: acc)
      else acc)
    t.entries []
  |> List.sort (fun (a : Types.recovery_entry) b -> Int.compare a.instance b.instance)

let prune_below t floor =
  Hashtbl.filter_map_inplace
    (fun i e ->
      if i <= floor && e.committed && not e.pruned then
        Some
          {
            e with
            pruned = true;
            proposal = { e.proposal with update = Types.Full "" };
          }
      else Some e)
    t.entries

let entry_count t = Hashtbl.length t.entries

let committed_requests t =
  Hashtbl.fold (fun i e acc -> if e.committed then (i, e) :: acc else acc) t.entries []
  |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
  |> List.concat_map (fun (_, (e : entry)) -> e.proposal.Types.requests)
