(** Stable storage for replicas.

    The protocol requires three things to survive a crash: the promised
    ballot, accepted log entries, and the commit point (plus a state
    snapshot so recovery does not replay from the beginning). Storage is
    a record of synchronous persist hooks so engines stay pure; three
    backends are provided:

    - {!null}: persists nothing (benchmarks — the paper's evaluation does
      not model disk latency either);
    - {!memory}: keeps the persisted image in memory (crash-recovery
      tests that simulate losing volatile state only);
    - {!file}: an append-only CRC-protected log plus snapshot file. *)

type persisted = {
  promised : Types.Ballot.t;
  entries : Types.recovery_entry list;  (** accepted entries, any order *)
  commit_point : int;
  snapshot : string option;  (** encoded {!Snapshot.t} *)
}

type t = {
  persist_promise : Types.Ballot.t -> unit;
  persist_entry : instance:int -> ballot:Types.Ballot.t -> Types.proposal -> unit;
  persist_commit : int -> unit;
  persist_snapshot : string -> unit;
}

val null : unit -> t

val memory : unit -> t * (unit -> persisted)
(** The second component reads back the current persisted image. *)

val file : path:string -> t * persisted option
(** Open (or create) a file-backed store; returns the recovered image if
    the files already existed and were non-empty. Corrupt trailing
    records (torn writes) are ignored; corrupt interior records raise
    {!Grid_codec.Wire.Decode_error}. *)
