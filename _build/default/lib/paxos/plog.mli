(** The replica's log of accepted proposals (§3.3).

    Instances are numbered from 1. Each entry records the highest-ballot
    proposal accepted for its instance and whether it is known chosen.
    The {e commit point} is the largest [i] such that instances [1..i]
    are all committed; per the paper, replicas must remember the requests
    of all accepted proposals but only the state of the latest one, so
    committed entries below the commit point can be {e pruned} — their
    state update is dropped, the requests and replies stay. *)

type entry = {
  ballot : Types.Ballot.t;
  proposal : Types.proposal;
  committed : bool;
  pruned : bool;  (** state update replaced by a zero-byte placeholder *)
}

type t

val create : unit -> t
val commit_point : t -> int
val max_accepted : t -> int
(** Highest instance with an accepted entry; [0] if none. *)

val get : t -> int -> entry option

val accept : t -> instance:int -> ballot:Types.Ballot.t -> Types.proposal -> bool
(** Record an accepted proposal. Overwrites an existing uncommitted entry
    only when [ballot] is at least as high; never overwrites a committed
    entry. Returns whether the entry was stored. *)

val commit : t -> instance:int -> bool
(** Mark an instance committed and advance the commit point over any
    contiguous committed prefix. Returns [false] if the instance has no
    accepted entry (caller should catch up). *)

val install_commit_point : t -> int -> unit
(** Jump the commit point forward after installing a snapshot; entries at
    or below it are dropped. *)

val accepted_above : t -> int -> Types.recovery_entry list
(** Accepted (committed or not), unpruned entries with instance > the
    argument, in increasing instance order — the payload of a
    [Prepare_ack]. *)

val prune_below : t -> int -> unit
(** Drop the state updates of committed entries at or below the given
    instance (keeps requests and replies for recovery/dedup). *)

val entry_count : t -> int

val committed_requests : t -> Types.request list
(** All requests in committed entries, in instance order (test helper;
    O(n log n)). *)
