(** Replica snapshots: everything a lagging or recovering replica needs to
    join the group at a given commit point — the encoded service state,
    the committed prefix length, and the client deduplication table (so
    duplicate requests keep getting their original replies). *)

module Wire = Grid_codec.Wire
module Ids = Grid_util.Ids

type t = {
  commit_point : int;
  state : string;  (** service state, encoded by the service codec *)
  dedup : (int * Types.reply) list;
      (** per client-id: highest committed sequence's reply *)
}

let encode t =
  Wire.encode (fun e ->
      Wire.Encoder.uint e t.commit_point;
      Wire.Encoder.string e t.state;
      Wire.Encoder.list e
        (fun (client, reply) ->
          Wire.Encoder.uint e client;
          Types.encode_reply e reply)
        t.dedup)

let decode s =
  Wire.decode s (fun d ->
      let commit_point = Wire.Decoder.uint d in
      let state = Wire.Decoder.string d in
      let dedup =
        Wire.Decoder.list d (fun d ->
            let client = Wire.Decoder.uint d in
            let reply = Types.decode_reply d in
            (client, reply))
      in
      { commit_point; state; dedup })
