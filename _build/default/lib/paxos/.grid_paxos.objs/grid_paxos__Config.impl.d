lib/paxos/config.ml: Fun List
