lib/paxos/snapshot.ml: Grid_codec Grid_util Types
