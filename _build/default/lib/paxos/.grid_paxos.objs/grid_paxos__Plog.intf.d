lib/paxos/plog.mli: Types
