lib/paxos/replica.mli: Config Service_intf Storage Types
