lib/paxos/service_intf.ml: Grid_util
