lib/paxos/client.mli: Grid_util Types
