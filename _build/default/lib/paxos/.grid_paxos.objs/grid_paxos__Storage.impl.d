lib/paxos/storage.ml: Bytes Char Grid_codec Hashtbl List Printf String Sys Types
