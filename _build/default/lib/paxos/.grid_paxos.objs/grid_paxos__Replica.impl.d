lib/paxos/replica.ml: Array Ballot Config Float Format Grid_codec Grid_util Hashtbl Int List Plog Queue Service_intf Snapshot Stdlib Storage Types
