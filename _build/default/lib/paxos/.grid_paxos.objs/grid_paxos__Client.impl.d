lib/paxos/client.ml: Format Grid_util List Types
