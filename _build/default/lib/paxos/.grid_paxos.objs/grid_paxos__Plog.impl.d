lib/paxos/plog.ml: Hashtbl Int List Types
