lib/paxos/storage.mli: Types
