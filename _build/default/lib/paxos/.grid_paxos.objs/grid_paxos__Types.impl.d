lib/paxos/types.ml: Format Grid_codec Grid_util Int List Printf String
