lib/paxos/semi_passive.ml: Config Float Grid_util Hashtbl List Queue Service_intf Stdlib Types
