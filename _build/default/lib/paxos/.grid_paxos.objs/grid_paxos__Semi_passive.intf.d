lib/paxos/semi_passive.mli: Config Service_intf Types
