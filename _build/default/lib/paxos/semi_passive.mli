(** Semi-passive replication (Défago, Schiper & Sergent, SRDS 1998) —
    the §5 related-work baseline whose "practical implementation and
    performance remains uninvestigated" per the paper.

    Like the paper's protocol, each consensus instance decides the tuple
    ⟨request, resulting state⟩, so nondeterministic services replicate
    safely. Unlike it, there is {e no leader election service}: each
    instance runs a Chandra–Toueg-style ◇S consensus with a rotating
    coordinator. Round 0's coordinator is fixed (replica 0), so in
    failure-free runs it acts as a de-facto primary; when it is suspected
    (round timeout), the next round's coordinator takes over — {e lazy
    execution} means only the coordinator that actually proposes executes
    the request.

    Message pattern per instance, failure-free:
    client broadcast → coordinator executes → [Sp_propose] → majority
    [Sp_ack] → reply + [Sp_decide]; the same 2M + E + 2m latency as the
    basic protocol, but fail-over costs one round timeout instead of a
    full election + multi-instance prepare.

    The engine speaks the same {!Types.input}/{!Types.action} vocabulary
    as {!Replica.Make}, so the simulator drives it unchanged. *)

module Make (S : Service_intf.S) : sig
  type t

  val create : cfg:Config.t -> id:int -> ?seed:int -> unit -> t
  (** [cfg.suspicion_ms] is used as the per-round suspicion timeout. *)

  val bootstrap : t -> Types.action list
  val handle : t -> now:float -> Types.input -> Types.action list

  (** {1 Introspection} *)

  val id : t -> int
  val decided_count : t -> int
  val state : t -> S.state
  val committed_updates : t -> (int * Types.request list * string) list
  (** Requires [cfg.record_history]. *)
end
