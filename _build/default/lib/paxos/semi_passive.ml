open Types
module Rng = Grid_util.Rng
module Bitset = Grid_util.Bitset
module Ids = Grid_util.Ids

module Make (S : Service_intf.S) = struct
  (* Per-instance ◇S consensus state. Instances are independent for
     consensus purposes; state application happens strictly in instance
     order. *)
  type inst = {
    mutable round : int;
    mutable estimate : (proposal * int) option;  (* locked value, round *)
    mutable proposed_round : int;  (* highest round this replica proposed in; -1 if none *)
    mutable acks : Bitset.t;
    (* round -> estimates gathered when this replica coordinates it *)
    estimates : (int, (int, (proposal * int) option) Hashtbl.t) Hashtbl.t;
    mutable timeout_round : int;  (* highest round with an armed timeout *)
  }

  type t = {
    cfg : Config.t;
    rid : int;
    rng : Rng.t;
    mutable now : float;
    mutable app_state : S.state;
    pending : request Queue.t;  (* arrival order, undecided *)
    pending_ids : (Ids.Request_id.t, unit) Hashtbl.t;
    insts : (int, inst) Hashtbl.t;
    decided : (int, proposal) Hashtbl.t;
    mutable applied : int;  (* contiguous applied prefix *)
    dedup : (int, reply) Hashtbl.t;
    mutable history : (int * request list * string) list;
  }

  let create ~cfg ~id ?seed () =
    let seed = match seed with Some s -> s | None -> 0x5e31 + id in
    {
      cfg;
      rid = id;
      rng = Rng.of_int seed;
      now = 0.0;
      app_state = S.initial ();
      pending = Queue.create ();
      pending_ids = Hashtbl.create 16;
      insts = Hashtbl.create 8;
      decided = Hashtbl.create 16;
      applied = 0;
      dedup = Hashtbl.create 16;
      history = [];
    }

  let id t = t.rid
  let decided_count t = t.applied
  let state t = t.app_state
  let committed_updates t = List.rev t.history
  let quorum t = Config.quorum t.cfg
  let others t = List.filter (fun r -> r <> t.rid) (Config.replica_ids t.cfg)
  let coordinator t round = round mod t.cfg.n
  let broadcast t msg = List.map (fun dst -> send ~dst msg) (others t)

  let inst_of t i =
    match Hashtbl.find_opt t.insts i with
    | Some s -> s
    | None ->
      let s =
        {
          round = 0;
          estimate = None;
          proposed_round = -1;
          acks = Bitset.create t.cfg.n;
          estimates = Hashtbl.create 4;
          timeout_round = -1;
        }
      in
      Hashtbl.replace t.insts i s;
      s

  let timeout_delay t round = t.cfg.suspicion_ms *. Float.of_int (1 + round)

  let arm_timeout t i (s : inst) round =
    if s.timeout_round < round then begin
      s.timeout_round <- round;
      [ after ~delay:(timeout_delay t round) (Sp_round_timeout (i, round)) ]
    end
    else []

  let dedup_update t (r : reply) =
    let c = Ids.Client_id.to_int r.req.client in
    match Hashtbl.find_opt t.dedup c with
    | Some prev when prev.req.seq >= r.req.seq -> ()
    | _ -> Hashtbl.replace t.dedup c r

  (* Apply the contiguous decided prefix. *)
  let apply_ready t =
    let rec go () =
      match Hashtbl.find_opt t.decided (t.applied + 1) with
      | None -> ()
      | Some p ->
        t.applied <- t.applied + 1;
        (match p.update with
        | Full s -> t.app_state <- S.decode_state s
        | Delta d -> t.app_state <- S.patch t.app_state d
        | Witness w -> (
          match p.requests with
          | [ r ] ->
            t.app_state <- fst (S.replay t.app_state (S.decode_op r.payload) ~witness:w)
          | _ -> invalid_arg "Semi_passive: witness batch"));
        List.iter (dedup_update t) p.replies;
        List.iter
          (fun (r : request) ->
            if Hashtbl.mem t.pending_ids r.id then begin
              Hashtbl.remove t.pending_ids r.id;
              (* Drop it from the queue lazily: mark via the id table; the
                 proposer skips requests no longer in pending_ids. *)
              ()
            end)
          p.requests;
        if t.cfg.record_history then
          t.history <- (t.applied, p.requests, S.encode_state t.app_state) :: t.history;
        Hashtbl.remove t.insts t.applied;
        go ()
    in
    go ()

  (* The oldest pending request that has not been decided meanwhile. *)
  let rec next_request t =
    match Queue.peek_opt t.pending with
    | None -> None
    | Some r ->
      if Hashtbl.mem t.pending_ids r.id then Some r
      else begin
        ignore (Queue.pop t.pending);
        next_request t
      end

  let decide t i (p : proposal) ~am_decider =
    if not (Hashtbl.mem t.decided i) then begin
      Hashtbl.replace t.decided i p;
      apply_ready t;
      let replies =
        if am_decider then
          List.map (fun (r : reply) -> send ~dst:(client_node r.req.client) (Reply_msg r)) p.replies
        else []
      in
      replies
    end
    else []

  (* Coordinator proposing in round [round] of instance [i]. [locked] is
     the highest-round estimate among a majority (None in round 0). Lazy
     execution: only here does a request actually run. *)
  let propose t i (s : inst) ~round ~locked =
    if s.proposed_round >= round || Hashtbl.mem t.decided i then []
    else begin
      let proposal =
        match locked with
        | Some (p, _) -> Some p
        | None -> (
          match next_request t with
          | None -> None
          | Some r ->
            let op = S.decode_op r.payload in
            let outcome = S.apply ~rng:t.rng ~now:t.now t.app_state op in
            let reply =
              { req = r.id; status = Ok; payload = S.encode_result outcome.result }
            in
            Some
              {
                requests = [ r ];
                update = Full (S.encode_state outcome.state);
                replies = [ reply ];
              })
      in
      match proposal with
      | None -> []
      | Some proposal ->
        s.proposed_round <- round;
        s.round <- Stdlib.max s.round round;
        s.estimate <- Some (proposal, round);
        s.acks <- Bitset.create t.cfg.n;
        Bitset.set s.acks t.rid;
        let acts =
          broadcast t (Sp_propose { instance = i; round; proposal })
          @ arm_timeout t i s round
        in
        if Bitset.cardinal s.acks >= quorum t then
          acts @ decide t i proposal ~am_decider:true
          @ broadcast t (Sp_decide { instance = i; proposal })
        else acts
    end

  (* Try to start the next undecided instance if we coordinate round 0. *)
  let try_initiate t =
    let i = t.applied + 1 in
    if coordinator t 0 = t.rid && not (Hashtbl.mem t.decided i) then begin
      let s = inst_of t i in
      if s.proposed_round < 0 then propose t i s ~round:0 ~locked:None else []
    end
    else []

  (* Followers arm the round-0 suspicion timeout once they know there is
     something to decide. *)
  let arm_if_pending t =
    let i = t.applied + 1 in
    if next_request t <> None && not (Hashtbl.mem t.decided i) then
      arm_timeout t i (inst_of t i) (inst_of t i).round
    else []

  let handle_client t (r : request) =
    match Hashtbl.find_opt t.dedup (Ids.Client_id.to_int r.id.client) with
    | Some prev when prev.req.seq = r.id.seq ->
      (* Decided already: any replica may re-answer a duplicate. *)
      [ send ~dst:(client_node r.id.client) (Reply_msg prev) ]
    | Some prev when prev.req.seq > r.id.seq -> []
    | _ ->
      if Hashtbl.mem t.pending_ids r.id then []
      else begin
        Hashtbl.replace t.pending_ids r.id ();
        Queue.add r t.pending;
        try_initiate t @ arm_if_pending t
      end

  let handle_propose t ~src ~i ~round ~proposal =
    match Hashtbl.find_opt t.decided i with
    | Some p -> [ send ~dst:src (Sp_decide { instance = i; proposal = p }) ]
    | None ->
      let s = inst_of t i in
      if round >= s.round then begin
        (* Adopt: lock the value at this round and ack. Never regress. *)
        s.round <- round;
        s.estimate <- Some (proposal, round);
        send ~dst:src (Sp_ack { instance = i; round })
        :: arm_timeout t i s round
      end
      else []

  let handle_ack t ~src ~i ~round =
    match Hashtbl.find_opt t.decided i with
    | Some _ -> []
    | None ->
      let s = inst_of t i in
      if s.proposed_round = round then begin
        Bitset.set s.acks src;
        if Bitset.cardinal s.acks >= quorum t then begin
          match s.estimate with
          | Some (proposal, _) ->
            decide t i proposal ~am_decider:true
            @ broadcast t (Sp_decide { instance = i; proposal })
            @ try_initiate t
            @ arm_if_pending t
          | None -> []
        end
        else []
      end
      else []

  let handle_estimate t ~src ~i ~round ~estimate =
    match Hashtbl.find_opt t.decided i with
    | Some p -> [ send ~dst:src (Sp_decide { instance = i; proposal = p }) ]
    | None ->
      if coordinator t round <> t.rid then []
      else begin
        let s = inst_of t i in
        let table =
          match Hashtbl.find_opt s.estimates round with
          | Some tbl -> tbl
          | None ->
            let tbl = Hashtbl.create 4 in
            Hashtbl.replace s.estimates round tbl;
            tbl
        in
        Hashtbl.replace table src estimate;
        if Hashtbl.length table >= quorum t && s.proposed_round < round then begin
          (* Choose the estimate locked at the highest round, if any. *)
          let locked =
            Hashtbl.fold
              (fun _ est best ->
                match (est, best) with
                | Some (p, r), Some (_, br) when r > br -> Some (p, r)
                | Some (p, r), None -> Some (p, r)
                | _ -> best)
              table None
          in
          propose t i s ~round ~locked
        end
        else []
      end

  let handle_timeout t ~i ~round =
    match Hashtbl.find_opt t.decided i with
    | Some _ -> []
    | None ->
      let s = inst_of t i in
      if s.round <> round || next_request t = None && s.estimate = None then
        (* Stale timeout, or nothing to decide yet. *)
        arm_if_pending t
      else begin
        (* Suspect the coordinator of [round]: move to round+1 and report
           our estimate to its coordinator. *)
        let next = round + 1 in
        s.round <- next;
        let c = coordinator t next in
        let acts =
          if c = t.rid then
            (* Deliver our own estimate locally. *)
            handle_estimate t ~src:t.rid ~i ~round:next ~estimate:s.estimate
          else [ send ~dst:c (Sp_estimate { instance = i; round = next; estimate = s.estimate }) ]
        in
        acts @ arm_timeout t i s next
      end

  let handle_decide t ~i ~proposal =
    let acts = decide t i proposal ~am_decider:false in
    acts @ try_initiate t @ arm_if_pending t

  let bootstrap _t = []

  let handle t ~now input =
    t.now <- now;
    match input with
    | Timer (Sp_round_timeout (i, round)) -> handle_timeout t ~i ~round
    | Timer _ -> []
    | Receive { src; msg } -> (
      match msg with
      | Client_req r -> handle_client t r
      | Sp_propose { instance; round; proposal } ->
        handle_propose t ~src ~i:instance ~round ~proposal
      | Sp_ack { instance; round } -> handle_ack t ~src ~i:instance ~round
      | Sp_estimate { instance; round; estimate } ->
        handle_estimate t ~src ~i:instance ~round ~estimate
      | Sp_decide { instance; proposal } -> handle_decide t ~i:instance ~proposal
      | _ -> [])
end
