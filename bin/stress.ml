(* Nemesis stress runner: seeded model-checker schedules with crashes
   (clean and torn-persist), metadata loss, duplication and reordering,
   checking agreement, durability and linearizability on every run.

     dune exec bin/stress.exe -- --schedules 200
     dune exec bin/stress.exe -- --seed 42 --service kv      # replay one
     dune exec bin/stress.exe -- --plant-dedup               # shrink demo

   Exit status is 0 iff every schedule passed (or, with --plant-dedup,
   iff the planted bug was caught and shrunk). *)

open Cmdliner
module Stress = Grid_check.Stress
module Mcheck = Grid_check.Mcheck

let services_of = function
  | `Counter -> [ Stress.Counter_service ]
  | `Kv -> [ Stress.Kv_service ]
  | `Both -> [ Stress.Counter_service; Stress.Kv_service ]

let nemesis ~crash ~torn ~dup ~reorder ~meta_drop ~drift ~drift_max =
  {
    Mcheck.crash_prob = crash;
    torn_frac = torn;
    dup_prob = dup;
    reorder_prob = reorder;
    meta_drop_prob = meta_drop;
    drift_prob = drift;
    drift_max_ms = drift_max;
  }

let print_failures failures =
  List.iter
    (fun f -> Format.printf "FAIL %a@." Stress.pp_failure f)
    failures

(* Run one seed per selected service, then re-run it from the recorded
   fault plan and insist the replay reproduces the outcome exactly. *)
let run_single ~services ~seed ~steps ~nem ~disable_dedup ~cfg_tweak ~trace_dump =
  let ok = ref true in
  List.iter
    (fun service ->
      let obs =
        match trace_dump with
        | None -> None
        | Some _ -> Some (Grid_obs.Span.Recorder.create ~enabled:true ())
      in
      let o, failure =
        Stress.run_one ~service ?obs ~steps ~nemesis:nem ~disable_dedup ~cfg_tweak
          ~shrink:true ~seed ()
      in
      (match (trace_dump, obs) with
      | Some file, Some obs ->
        let file =
          if List.length services > 1 then file ^ "." ^ Stress.service_name service
          else file
        in
        let events = Grid_obs.Span.Recorder.events obs in
        (try Grid_obs.Span.dump_file file events
         with Sys_error e ->
           Printf.eprintf "trace-dump failed: %s\n" e;
           exit 1);
        Format.printf "trace: %d events -> %s@." (List.length events) file
      | _ -> ());
      Format.printf "seed %d (%s): %d delivered, %d replies, commit points [%s]@."
        seed
        (Stress.service_name service)
        o.delivered (List.length o.replies)
        (String.concat ";" (Array.to_list (Array.map string_of_int o.committed)));
      Format.printf "  plan (%d events): %a@." (List.length o.plan) Mcheck.pp_plan
        o.plan;
      let replay seed plan =
        match service with
        | Stress.Counter_service ->
          fst
            (Stress.Counter_harness.replay_plan ~steps
               ~meta_drop_prob:nem.Mcheck.meta_drop_prob ~disable_dedup ~cfg_tweak
               ~seed ~plan ())
        | Stress.Kv_service ->
          fst
            (Stress.Kv_harness.replay_plan ~steps
               ~meta_drop_prob:nem.Mcheck.meta_drop_prob ~disable_dedup ~cfg_tweak
               ~seed ~plan ())
      in
      let r = replay seed o.plan in
      if
        r.Mcheck.delivered = o.delivered
        && r.committed = o.committed
        && r.timer_fires = o.timer_fires
      then Format.printf "  replay from plan: deterministic (identical outcome)@."
      else begin
        Format.printf "  replay from plan DIVERGED@.";
        ok := false
      end;
      match failure with
      | None -> Format.printf "  all invariants hold@."
      | Some f ->
        print_failures [ f ];
        ok := false)
    services;
  if !ok then 0 else 1

(* Plant the double-commit bug (dedup disabled), find a schedule that
   catches it, and shrink that schedule to a minimal fault plan. Seeds
   whose fault-free schedule already fails (client retransmission alone
   can straddle a commit) shrink to an empty plan; prefer a seed where
   the injected faults are essential, so the minimal plan pins them. *)
let run_plant ~seed ~steps ~nem ~attempts =
  let nem = { nem with Mcheck.dup_prob = Float.max nem.Mcheck.dup_prob 0.15 } in
  let faultless_passes s =
    let _, reasons =
      Stress.Counter_harness.replay_plan ~steps
        ~meta_drop_prob:nem.Mcheck.meta_drop_prob ~disable_dedup:true ~seed:s
        ~plan:[] ()
    in
    reasons = []
  in
  let rec hunt s fallback =
    if s >= seed + attempts then fallback
    else
      let _, failure =
        Stress.run_one ~service:Stress.Counter_service ~steps ~nemesis:nem
          ~disable_dedup:true ~shrink:true ~seed:s ()
      in
      match failure with
      | Some f when faultless_passes s -> Some f
      | Some f -> hunt (s + 1) (if fallback = None then Some f else fallback)
      | None -> hunt (s + 1) fallback
  in
  Format.printf
    "hunting for a schedule that catches the planted dedup bug (seeds %d..%d)@."
    seed
    (seed + attempts - 1);
  match hunt seed None with
  | None ->
    Format.printf "planted bug escaped %d schedules — FAIL@." attempts;
    1
  | Some f ->
    print_failures [ f ];
    (match f.shrunk with
    | Some shrunk ->
      let o, reasons =
        Stress.Counter_harness.replay_plan ~steps
          ~meta_drop_prob:nem.Mcheck.meta_drop_prob ~disable_dedup:true
          ~seed:f.seed ~plan:shrunk ()
      in
      ignore o;
      if reasons <> [] then begin
        Format.printf
          "minimal failing schedule: seed %d, %d of %d fault events@." f.seed
          (List.length shrunk) (List.length f.plan);
        0
      end
      else begin
        Format.printf "shrunk plan no longer fails — FAIL@.";
        1
      end
    | None ->
      Format.printf "no shrunk plan produced — FAIL@.";
      1)

let batch_progress ~quiet =
  if quiet then None
  else
    Some
      (fun (s : Stress.summary) ->
        if s.schedules mod 50 = 0 then
          Format.printf "  ... %d schedules, %d failing@." s.schedules
            (List.length s.failures))

let run_batch ~services ~schedules ~base_seed ~steps ~nem ~disable_dedup
    ~cfg_tweak ~shrink ~quiet =
  let progress = batch_progress ~quiet in
  let summary =
    Stress.run ~services ~schedules ~base_seed ~steps ~nemesis:nem ~disable_dedup
      ~cfg_tweak ~shrink ?progress ()
  in
  Format.printf "%a@." Stress.pp_summary summary;
  print_failures summary.failures;
  if summary.failures = [] then 0 else 1

(* The overload tier: counter service, write-heavy workload, tiny
   admission window, crash-doubled nemesis, plus the admitted-loss and
   bounded-admitted-p99 oracles on every schedule. *)
let run_overload ~schedules ~base_seed ~steps ~max_inflight ~max_queue ~shrink
    ~quiet =
  let progress = batch_progress ~quiet in
  let summary =
    Stress.run_overload ~schedules ~base_seed ~steps ~max_inflight ~max_queue
      ~shrink ?progress ()
  in
  Format.printf "%a@." Stress.pp_summary summary;
  print_failures summary.failures;
  if summary.shed = 0 then begin
    Format.printf "no Overloaded pushback exercised — FAIL@.";
    1
  end
  else if summary.failures = [] then 0
  else 1

(* The cross-shard tier: sharded KV runtime, 2PC transactions under
   crashes, duplication/reordering and abandoned coordinators, with the
   agreement and cross-shard atomicity/serializability oracles on every
   schedule (see Grid_check.Xstress). *)
let run_xshard ~schedules ~base_seed ~quiet =
  let progress =
    if quiet then None
    else
      Some
        (fun (s : Grid_check.Xstress.summary) ->
          if s.s_schedules mod 50 = 0 then
            Format.printf "  ... %d schedules, %d failing@." s.s_schedules
              (List.length s.s_failures))
  in
  let summary = Grid_check.Xstress.run ~schedules ~base_seed ?progress () in
  Format.printf "%a@." Grid_check.Xstress.pp_summary summary;
  List.iter
    (fun (o : Grid_check.Xstress.outcome) ->
      Format.printf "FAIL %a@." Grid_check.Xstress.pp_outcome o;
      List.iter (fun v -> Format.printf "  %s@." v) o.o_violations)
    summary.s_failures;
  if summary.s_committed = 0 then begin
    Format.printf "no cross-shard commit exercised — FAIL@.";
    1
  end
  else if summary.s_failures = [] then 0
  else 1

(* The elastic-resharding tier: live shard splits/merges with snapshot
   handoff racing tagged appends, leader crashes in the migrating groups
   and parked coordinators, with the exactly-once acked-write oracle on
   every schedule (see Grid_check.Xstress). *)
let run_reshard ~schedules ~base_seed ~quiet =
  let progress =
    if quiet then None
    else
      Some
        (fun (s : Grid_check.Xstress.reshard_summary) ->
          if s.rs_schedules mod 50 = 0 then
            Format.printf "  ... %d schedules, %d failing@." s.rs_schedules
              (List.length s.rs_failures))
  in
  let summary = Grid_check.Xstress.run_reshard ~schedules ~base_seed ?progress () in
  Format.printf "%a@." Grid_check.Xstress.pp_reshard_summary summary;
  List.iter
    (fun (o : Grid_check.Xstress.reshard_outcome) ->
      Format.printf "FAIL %a@." Grid_check.Xstress.pp_reshard_outcome o;
      List.iter (fun v -> Format.printf "  %s@." v) o.r_violations)
    summary.rs_failures;
  if summary.rs_splits = 0 || summary.rs_acked = 0 || summary.rs_xcommitted = 0
  then begin
    Format.printf
      "no live split, acked write, or committed cross txn exercised — FAIL@.";
    1
  end
  else if summary.rs_failures = [] then 0
  else 1

let main schedules seed base_seed steps service crash torn dup reorder meta_drop
    drift drift_max lease_ms plant_dedup overload xshard reshard max_inflight
    max_queue disable_dedup no_shrink quiet trace_dump =
  let nem = nemesis ~crash ~torn ~dup ~reorder ~meta_drop ~drift ~drift_max in
  let cfg_tweak =
    if lease_ms > 0.0 then fun c -> Grid_paxos.Config.make ~base:c ~lease_ms ()
    else Fun.id
  in
  let services = services_of service in
  if plant_dedup then run_plant ~seed:base_seed ~steps ~nem ~attempts:40
  else if xshard then run_xshard ~schedules ~base_seed ~quiet
  else if reshard then run_reshard ~schedules ~base_seed ~quiet
  else if overload then
    run_overload ~schedules ~base_seed ~steps ~max_inflight ~max_queue
      ~shrink:(not no_shrink) ~quiet
  else
    match seed with
    | Some seed ->
      run_single ~services ~seed ~steps ~nem ~disable_dedup ~cfg_tweak ~trace_dump
    | None ->
      run_batch ~services ~schedules ~base_seed ~steps ~nem ~disable_dedup
        ~cfg_tweak ~shrink:(not no_shrink) ~quiet

let schedules_arg =
  Arg.(
    value & opt int 200
    & info [ "schedules" ] ~docv:"N" ~doc:"Number of seeded schedules to run.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Run exactly one schedule with this seed (per selected service), print \
           its fault plan, and verify the plan replays deterministically.")

let base_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "base-seed" ] ~docv:"N" ~doc:"First seed of the batch.")

let steps_arg =
  Arg.(
    value & opt int 1_200
    & info [ "steps" ] ~docv:"N" ~doc:"Scheduling steps per schedule.")

let service_arg =
  Arg.(
    value
    & opt (enum [ ("counter", `Counter); ("kv", `Kv); ("both", `Both) ]) `Both
    & info [ "service" ] ~docv:"SERVICE" ~doc:"Service under test (counter|kv|both).")

let rate name doc default =
  Arg.(value & opt float default & info [ name ] ~docv:"P" ~doc)

let crash_arg = rate "crash" "Per-step crash probability." 0.002
let torn_arg = rate "torn" "Fraction of crashes that are torn persists." 0.3
let dup_arg = rate "dup" "Per-delivery duplication probability." 0.03
let reorder_arg = rate "reorder" "Per-delivery reordering probability." 0.03

let meta_drop_arg =
  rate "meta-drop" "Per-persist metadata (commit/snapshot) loss probability." 0.05

let drift_arg = rate "drift" "Per-step clock-drift probability." 0.0

let drift_max_arg =
  rate "drift-max-ms" "Maximum clock-drift offset in milliseconds." 2.0

let lease_ms_arg =
  rate "lease-ms"
    "Leader-lease duration in milliseconds (0 disables the read fast path)." 0.0

let plant_arg =
  Arg.(
    value & flag
    & info [ "plant-dedup" ]
        ~doc:
          "Demo: disable request deduplication, find a schedule that catches the \
           resulting double-commit, and shrink it to a minimal fault plan.")

let overload_arg =
  Arg.(
    value & flag
    & info [ "overload" ]
        ~doc:
          "Run the overload tier instead of the default batch: counter service \
           under a write-heavy open-loop workload with a tiny admission window \
           and a crash-doubled nemesis, checking the admitted-loss and bounded \
           admitted-p99 oracles on every schedule. Honours --schedules, \
           --base-seed, --steps, --max-inflight, --max-queue and --no-shrink.")

let xshard_arg =
  Arg.(
    value & flag
    & info [ "xshard" ]
        ~doc:
          "Run the cross-shard tier instead of the default batch: sharded KV \
           runtime driving 2PC transactions against replica crashes, message \
           duplication/reordering, contending single-shard traffic and \
           abandoned coordinators, with the per-group agreement and \
           cross-shard atomicity/serializability oracles on every schedule. \
           Honours --schedules, --base-seed and --quiet.")

let reshard_arg =
  Arg.(
    value & flag
    & info [ "reshard" ]
        ~doc:
          "Run the elastic-resharding tier instead of the default batch: a \
           live key range splits and merges between groups (snapshot handoff, \
           FREEZE/INSTALL/COMMIT) while closed-loop clients append tagged \
           tokens across the moving keyspace, leaders of the migrating groups \
           crash mid-protocol and some coordinators park after FREEZE for \
           presumed-abort recovery. Every schedule checks per-group agreement \
           and that each acked append appears exactly once at the final \
           owner. Honours --schedules, --base-seed and --quiet.")

let max_inflight_arg =
  Arg.(
    value & opt int 2
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:"Overload tier: leader read-admission window (0 = unlimited).")

let max_queue_arg =
  Arg.(
    value & opt int 2
    & info [ "max-queue" ] ~docv:"N"
        ~doc:"Overload tier: leader write-queue bound (0 = unlimited).")

let disable_dedup_arg =
  Arg.(
    value & flag
    & info [ "disable-dedup" ] ~doc:"Run the batch with the dedup table disabled.")

let no_shrink_arg =
  Arg.(value & flag & info [ "no-shrink" ] ~doc:"Do not shrink failing schedules.")

let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"No progress output.")

let trace_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dump" ] ~docv:"FILE"
        ~doc:
          "With --seed: record the replicas' lifecycle spans (virtual-clock \
           timestamps, deterministic per seed) and dump them as JSONL to $(docv).")

let cmd =
  let doc = "Nemesis stress harness for the replicated-service protocol" in
  Cmd.v
    (Cmd.info "grid-stress" ~doc)
    Term.(
      const main $ schedules_arg $ seed_arg $ base_seed_arg $ steps_arg
      $ service_arg $ crash_arg $ torn_arg $ dup_arg $ reorder_arg
      $ meta_drop_arg $ drift_arg $ drift_max_arg $ lease_ms_arg $ plant_arg
      $ overload_arg $ xshard_arg $ reshard_arg $ max_inflight_arg
      $ max_queue_arg $ disable_dedup_arg
      $ no_shrink_arg $ quiet_arg $ trace_dump_arg)

let () = exit (Cmd.eval' cmd)
