(* Drive a TCP cluster with a closed-loop workload and print latency
   statistics, mirroring the paper's measurement client.

     dune exec bin/client.exe -- \
       --cluster 127.0.0.1:4000,127.0.0.1:4001,127.0.0.1:4002 \
       --service counter --workload write --count 100

   Workloads: read | write | original | mixed (alternating). *)

open Cmdliner
module Stats = Grid_util.Stats

type workload = W_read | W_write | W_original | W_mixed

let workload_conv =
  let parse = function
    | "read" -> Stdlib.Ok W_read
    | "write" -> Stdlib.Ok W_write
    | "original" -> Stdlib.Ok W_original
    | "mixed" -> Stdlib.Ok W_mixed
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  let print ppf w =
    Format.pp_print_string ppf
      (match w with
      | W_read -> "read"
      | W_write -> "write"
      | W_original -> "original"
      | W_mixed -> "mixed")
  in
  Arg.conv (parse, print)

let run cluster service workload count client_id wire_version =
  let start (type a) (module S : Grid_paxos.Service_intf.S with type op = a)
      ~(read_op : a) ~(write_op : a) =
    let module Tcp = Grid_net.Tcp_node.Make (S) in
    let client =
      Tcp.start_client ~id:client_id ~replicas:cluster
        ~max_wire_version:wire_version ()
    in
    let acc = Stats.create () in
    let failures = ref 0 in
    let request k =
      let unreplicated, op =
        match workload with
        | W_read -> (false, read_op)
        | W_write -> (false, write_op)
        | W_original -> (true, write_op)
        | W_mixed -> (false, if k mod 2 = 0 then read_op else write_op)
      in
      let t0 = Unix.gettimeofday () in
      match Tcp.call_op client ~unreplicated op ~timeout_s:10.0 with
      | Some _ -> Stats.add acc ((Unix.gettimeofday () -. t0) *. 1000.0)
      | None -> incr failures
    in
    for k = 1 to count do
      request k
    done;
    Tcp.stop_client client;
    Printf.printf "%d requests: mean RRT %.3f ms \xc2\xb1%.3f (99%% CI), p-min %.3f, p-max %.3f, %d timeouts\n"
      (Stats.count acc) (Stats.mean acc)
      (Stats.confidence_interval ~confidence:0.99 acc)
      (Stats.min_value acc) (Stats.max_value acc) !failures
  in
  match service with
  | Service_select.Counter ->
    start
      (module Grid_services.Counter)
      ~read_op:Grid_services.Counter.Get
      ~write_op:(Grid_services.Counter.Add 1)
  | Service_select.Kv ->
    start
      (module Grid_services.Kv_store)
      ~read_op:(Grid_services.Kv_store.Get "k")
      ~write_op:(Grid_services.Kv_store.Put { key = "k"; value = "v" })
  | Service_select.Noop ->
    start
      (module Grid_services.Noop)
      ~read_op:Grid_services.Noop.Noop_read
      ~write_op:Grid_services.Noop.Noop_write

let cluster_arg =
  Arg.(
    required
    & opt (some Service_select.cluster_conv) None
    & info [ "cluster" ] ~docv:"ADDRS" ~doc:"Comma-separated replica host:port list.")

let service_arg =
  Arg.(
    value
    & opt Service_select.service_conv Service_select.Counter
    & info [ "service" ] ~docv:"SERVICE" ~doc:"Service (counter|kv|noop).")

let workload_arg =
  Arg.(
    value
    & opt workload_conv W_mixed
    & info [ "workload" ] ~docv:"KIND" ~doc:"read|write|original|mixed.")

let count_arg =
  Arg.(value & opt int 20 & info [ "count" ] ~docv:"N" ~doc:"Requests to send.")

let id_arg = Arg.(value & opt int 1 & info [ "client-id" ] ~docv:"C" ~doc:"Client id.")

let wire_version_arg =
  Arg.(
    value
    & opt int Grid_paxos.Wire_codec.latest_version
    & info [ "wire-version" ] ~docv:"V"
        ~doc:"Highest wire-protocol version to advertise (default latest).")

let cmd =
  let doc = "Closed-loop measurement client for a TCP replica cluster" in
  Cmd.v
    (Cmd.info "grid-client" ~doc)
    Term.(
      const run $ cluster_arg $ service_arg $ workload_arg $ count_arg $ id_arg
      $ wire_version_arg)

let () = exit (Cmd.eval cmd)
