(* Run a named simulation scenario from the command line and print RRT
   and throughput summaries — a CLI front end to the same machinery the
   benchmark harness uses.

     dune exec bin/simrun.exe -- --scenario wan --rtype read --clients 4 \
       --requests 250 *)

open Cmdliner
module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module Noop = Grid_services.Noop
open Grid_paxos.Types
module RT = Grid_runtime.Runtime.Make (Noop)

let scenario_conv =
  let parse = function
    | "sysnet" -> Stdlib.Ok Scenario.sysnet
    | "princeton" -> Stdlib.Ok Scenario.princeton
    | "wan" -> Stdlib.Ok Scenario.wan
    | "uniform" -> Stdlib.Ok (Scenario.uniform ())
    | s -> Error (`Msg (Printf.sprintf "unknown scenario %S (sysnet|princeton|wan|uniform)" s))
  in
  let print ppf (s : Scenario.t) = Format.pp_print_string ppf s.name in
  Arg.conv (parse, print)

let rtype_conv =
  let parse = function
    | "read" -> Stdlib.Ok Read
    | "write" -> Stdlib.Ok Write
    | "original" -> Stdlib.Ok Original
    | s -> Error (`Msg (Printf.sprintf "unknown request type %S" s))
  in
  Arg.conv (parse, fun ppf r -> pp_rtype ppf r)

let run scenario rtype clients requests seed trace trace_dump =
  let cfg = Grid_paxos.Config.make ~n:3 () in
  let tracing = trace || trace_dump <> None in
  let t = RT.create ~cfg ~scenario ~seed ~trace:tracing () in
  let item : Noop.op Grid_runtime.Runtime.item =
    match rtype with
    | Read -> Do Noop.Noop_read
    | Original -> Unreplicated Noop.Noop_write
    | _ -> Do Noop.Noop_write
  in
  let results =
    RT.run_closed_loop_ops t ~clients
      ~requests_per_client:(Stdlib.max 1 (requests / clients))
      ~gen:(fun ~client:_ () -> Some item)
  in
  let lats = RT.latencies results in
  let summary = Stats.summarize lats in
  Printf.printf "scenario %s, %s requests, %d clients, seed %d\n" scenario.Scenario.name
    (Format.asprintf "%a" pp_rtype rtype)
    clients seed;
  Printf.printf "  completed:  %d in %.2f simulated ms\n" results.total_completed
    (results.finished_at -. results.started_at);
  Printf.printf "  throughput: %.1f req/s\n" (RT.throughput_rps results);
  Printf.printf "  RRT:        %s\n" (Format.asprintf "%a" Stats.pp_summary summary);
  if tracing then begin
    let events = Grid_obs.Span.Recorder.events (RT.obs t) in
    Format.printf "%a@." Grid_obs.Lifecycle.pp_phase_stats
      (Grid_obs.Lifecycle.phase_stats events);
    match trace_dump with
    | Some file ->
      (try Grid_obs.Span.dump_file file events
       with Sys_error e ->
         Printf.eprintf "trace-dump failed: %s\n" e;
         exit 1);
      Printf.printf "trace:      %d events -> %s (query with bin/tracestat.exe)\n"
        (List.length events) file
    | None ->
      if trace then begin
        Format.printf "trace:@.";
        List.iter
          (fun ev -> Format.printf "  %a@." Grid_obs.Span.pp_event ev)
          (Grid_obs.Span.Recorder.events (RT.obs t))
      end
  end

let scenario_arg =
  Arg.(
    value
    & opt scenario_conv Scenario.sysnet
    & info [ "scenario" ] ~docv:"NAME" ~doc:"sysnet|princeton|wan|uniform.")

let rtype_arg =
  Arg.(value & opt rtype_conv Write & info [ "rtype" ] ~docv:"KIND" ~doc:"read|write|original.")

let clients_arg =
  Arg.(value & opt int 1 & info [ "clients" ] ~docv:"C" ~doc:"Concurrent closed-loop clients.")

let requests_arg =
  Arg.(value & opt int 100 & info [ "requests" ] ~docv:"N" ~doc:"Total requests.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Simulation seed.")
let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Print the protocol trace.")

let trace_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dump" ] ~docv:"FILE"
        ~doc:"Record lifecycle spans and dump them as JSONL to $(docv).")

let cmd =
  let doc = "Run a simulation scenario and print latency/throughput" in
  Cmd.v
    (Cmd.info "grid-simrun" ~doc)
    Term.(
      const run $ scenario_arg $ rtype_arg $ clients_arg $ requests_arg $ seed_arg
      $ trace_arg $ trace_dump_arg)

let () = exit (Cmd.eval cmd)
