(* Run one TCP replica of a replicated service.

     dune exec bin/replica.exe -- --id 0 \
       --cluster 127.0.0.1:4000,127.0.0.1:4001,127.0.0.1:4002 \
       --service counter [--storage /tmp/r0]

   Start one process per cluster entry (ids in address order); then drive
   them with bin/client.exe. *)

open Cmdliner

let run id cluster service storage wire_version verbose =
  if id < 0 || id >= List.length cluster then (
    Printf.eprintf "--id must index into --cluster (0..%d)\n" (List.length cluster - 1);
    exit 1);
  let port =
    match List.assoc id cluster with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let peers = List.filter (fun (i, _) -> i <> id) cluster in
  let cfg =
    Grid_paxos.Config.make ~n:(List.length cluster) ~hb_period_ms:50.0
      ~suspicion_ms:300.0 ~stability_ms:100.0 ~accept_retry_ms:100.0 ()
  in
  let storage =
    match storage with
    | None -> None
    | Some path ->
      let store, recovered, report = Grid_paxos.Storage.file ~path in
      (match recovered with
      | Some _ ->
        Printf.printf "recovered persisted state from %s (%s)\n%!" path
          (Format.asprintf "%a" Grid_paxos.Storage.pp_report report)
      | None -> ());
      Some (store, recovered)
  in
  (if wire_version < Grid_paxos.Wire_codec.min_version
      || wire_version > Grid_paxos.Wire_codec.latest_version
   then begin
     Printf.eprintf "--wire-version must be %d..%d\n"
       Grid_paxos.Wire_codec.min_version Grid_paxos.Wire_codec.latest_version;
     exit 1
   end);
  let start (module S : Grid_paxos.Service_intf.S) =
    let module Tcp = Grid_net.Tcp_node.Make (S) in
    let handle =
      Tcp.start_replica ~cfg ~id ~port ~peers ?storage:(Option.map fst storage)
        ~max_wire_version:wire_version ()
    in
    Printf.printf "replica %d (%s service, wire <= v%d) listening on port %d\n%!"
      id S.name wire_version port;
    Printf.printf "  admin: http://127.0.0.1:%d/{health,metrics,flightrec}\n%!" port;
    (* Report role changes until interrupted. *)
    let last = ref false in
    while true do
      Thread.delay 1.0;
      let leading = Tcp.replica_is_leader handle in
      if leading <> !last || verbose then
        Printf.printf "replica %d: %s, commit point %d\n%!" id
          (if leading then "LEADER" else "follower")
          (Tcp.replica_commit_point handle);
      last := leading
    done
  in
  match service with
  | Service_select.Counter -> start (module Grid_services.Counter)
  | Service_select.Kv -> start (module Grid_services.Kv_store)
  | Service_select.Noop -> start (module Grid_services.Noop)

let id_arg =
  Arg.(required & opt (some int) None & info [ "id" ] ~docv:"N" ~doc:"Replica id.")

let cluster_arg =
  Arg.(
    required
    & opt (some Service_select.cluster_conv) None
    & info [ "cluster" ] ~docv:"ADDRS"
        ~doc:"Comma-separated host:port list; ids follow list order.")

let service_arg =
  Arg.(
    value
    & opt Service_select.service_conv Service_select.Counter
    & info [ "service" ] ~docv:"SERVICE" ~doc:"Service to replicate (counter|kv|noop).")

let storage_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "storage" ] ~docv:"PATH" ~doc:"File-backed stable storage path prefix.")

let wire_version_arg =
  Arg.(
    value
    & opt int Grid_paxos.Wire_codec.latest_version
    & info [ "wire-version" ] ~docv:"V"
        ~doc:
          "Highest wire-protocol version to advertise (default latest). Pin \
           to an older version to emulate a not-yet-upgraded build during a \
           rolling upgrade; each connection negotiates the minimum of the \
           two endpoints.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Report status every second.")

let cmd =
  let doc = "Run one TCP replica of a replicated nondeterministic service" in
  Cmd.v
    (Cmd.info "grid-replica" ~doc)
    Term.(
      const run $ id_arg $ cluster_arg $ service_arg $ storage_arg
      $ wire_version_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
