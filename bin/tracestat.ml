(* Query a JSONL trace dump produced by simrun/stress [--trace-dump]:
   per-protocol phase breakdowns (the paper's M / E / m decomposition),
   the slowest requests, per-actor message counts, and the full lifecycle
   timeline of a single request.

     dune exec bin/tracestat.exe -- trace.jsonl
     dune exec bin/tracestat.exe -- trace.jsonl --req 'c0#2'
     dune exec bin/tracestat.exe -- trace.jsonl --tree 'c0#2' *)

open Cmdliner
module Ids = Grid_util.Ids
module Span = Grid_obs.Span
module Lifecycle = Grid_obs.Lifecycle

let parse_req s =
  (* "c0#2" — the [Ids.Request_id.pp] rendering used in traces. *)
  match String.index_opt s '#' with
  | Some i when i > 1 && s.[0] = 'c' -> (
    match
      ( int_of_string_opt (String.sub s 1 (i - 1)),
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    with
    | Some client, Some seq ->
      Stdlib.Ok { Ids.Request_id.client = Ids.Client_id.of_int client; seq }
    | _ -> Error (`Msg (Printf.sprintf "bad request id %S (expected e.g. c0#2)" s)))
  | _ -> Error (`Msg (Printf.sprintf "bad request id %S (expected e.g. c0#2)" s))

let req_conv = Arg.conv (parse_req, Ids.Request_id.pp)

let print_timeline events req =
  match Lifecycle.find events req with
  | None ->
    Format.printf "request %a: not found in trace@." Ids.Request_id.pp req;
    exit 1
  | Some tl ->
    Format.printf "%a@." Lifecycle.pp_timeline tl;
    (match Lifecycle.breakdown tl with
    | Some b -> Format.printf "breakdown: %a@." Lifecycle.pp_breakdown b
    | None -> Format.printf "breakdown: incomplete (no client-side spans)@.")

let print_tree events req =
  match Lifecycle.trace_id_of events req with
  | None ->
    Format.printf "request %a: no traced spans (was the run recorded with \
                   tracing on?)@."
      Ids.Request_id.pp req;
    exit 1
  | Some tid -> (
    match Lifecycle.trace_tree events ~tid with
    | [] ->
      Format.printf "trace %d: no spans@." tid;
      exit 1
    | roots ->
      Format.printf "trace %d (%a):@.%a@." tid Ids.Request_id.pp req
        Lifecycle.pp_tree roots)

let print_report events slowest_n =
  let timelines = Lifecycle.timelines events in
  let completed = List.filter Lifecycle.completed timelines in
  Format.printf "%d events, %d requests (%d completed)@.@." (List.length events)
    (List.length timelines) (List.length completed);
  Format.printf "%a@.@." Lifecycle.pp_phase_stats (Lifecycle.phase_stats events);
  (match Lifecycle.slowest ~n:slowest_n events with
  | [] -> ()
  | slow ->
    Format.printf "@[<v2>slowest %d requests:" (List.length slow);
    List.iter
      (fun ((tl : Lifecycle.timeline), (b : Lifecycle.breakdown)) ->
        Format.printf "@ %a  total %.3f ms  (%a)" Ids.Request_id.pp tl.req b.total
          Lifecycle.pp_breakdown b)
      slow;
    Format.printf "@]@.@.");
  (match Lifecycle.message_counts events with
  | [] -> ()
  | counts ->
    Format.printf "@[<v2>messages sent per actor:";
    List.iter
      (fun (actor, kind, n) -> Format.printf "@ %-6s %-14s %d" actor kind n)
      counts;
    Format.printf "@]@.");
  match Lifecycle.tail_attribution events with
  | [] -> ()
  | attr -> Format.printf "@.%a@." Lifecycle.pp_attribution attr

let run file req tree slowest_n =
  let events = Span.load_file file in
  if events = [] then begin
    Printf.eprintf "%s: no trace events\n" file;
    exit 1
  end;
  match (req, tree) with
  | _, Some r -> print_tree events r
  | Some r, None -> print_timeline events r
  | None, None -> print_report events slowest_n

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"JSONL trace dump.")

let req_arg =
  Arg.(
    value
    & opt (some req_conv) None
    & info [ "req" ] ~docv:"ID" ~doc:"Print the timeline of one request (e.g. c0#2).")

let tree_arg =
  Arg.(
    value
    & opt (some req_conv) None
    & info [ "tree" ] ~docv:"ID"
        ~doc:
          "Print the stitched causal trace tree of one request (e.g. c0#2): \
           every span sharing its trace id, parented router -> client -> \
           leader -> followers. Requires a trace recorded with causal \
           propagation (any traced run).")

let slowest_arg =
  Arg.(value & opt int 10 & info [ "slowest" ] ~docv:"N" ~doc:"How many slow requests to list.")

let cmd =
  let doc = "Analyze a request-lifecycle trace dump" in
  Cmd.v
    (Cmd.info "grid-tracestat" ~doc)
    Term.(const run $ file_arg $ req_arg $ tree_arg $ slowest_arg)

let () = exit (Cmd.eval cmd)
