(* Failover walkthrough: kill the leader mid-workload and watch the Ω
   elector, the multi-instance prepare, and state catch-up put the group
   back together — with the protocol's internal notes traced.

     dune exec examples/failover_demo.exe *)

module Counter = Grid_services.Counter
module RT = Grid_runtime.Runtime.Make (Counter)

let () =
  let cfg = Grid_paxos.Config.make ~n:3 ~record_history:true () in
  let scenario = Grid_runtime.Scenario.uniform () in
  let t = RT.create ~cfg ~scenario ~trace:true () in
  let leader0 = Option.get (RT.await_leader t) in
  Printf.printf "initial leader: replica %d\n" leader0;

  (* Crash the leader 40 ms into the workload, recover it 300 ms later. *)
  let eng = RT.engine t in
  ignore
    (Grid_sim.Engine.schedule eng ~delay:40.0 (fun () ->
         Printf.printf "t=%7.1f  *** crashing leader r%d ***\n" (RT.now t) leader0;
         RT.crash_replica t leader0));
  ignore
    (Grid_sim.Engine.schedule eng ~delay:340.0 (fun () ->
         Printf.printf "t=%7.1f  *** recovering r%d ***\n" (RT.now t) leader0;
         RT.recover_replica t leader0));

  let results =
    RT.run_closed_loop_ops t ~clients:2 ~requests_per_client:30 ~gen:(fun ~client:_ ->
        fun () -> Some (Grid_runtime.Runtime.Do (Counter.Add 1)))
  in
  Printf.printf "workload: %d/%d requests answered, %.1f ms total\n"
    results.total_completed 60
    (results.finished_at -. results.started_at);

  (* Let catch-up finish, then compare replicas. *)
  RT.run_until t (RT.now t +. 2_000.0);
  Printf.printf "final leader: replica %d\n" (Option.get (RT.leader t));
  for i = 0 to 2 do
    Printf.printf "replica %d: counter=%d commit_point=%d\n" i
      (RT.R.state (RT.replica t i))
      (RT.R.commit_point (RT.replica t i))
  done;

  let histories = Array.init 3 (fun i -> RT.R.committed_updates (RT.replica t i)) in
  let violations = Grid_check.Agreement.check histories in
  Printf.printf "agreement violations: %d\n" (List.length violations);

  print_endline "\nprotocol trace (elections, prepares, re-proposals):";
  List.iter
    (fun (ev : Grid_obs.Span.event) ->
      match ev.body with
      | Grid_obs.Span.Note _ -> Format.printf "  %a@." Grid_obs.Span.pp_event ev
      | _ -> ())
    (Grid_obs.Span.Recorder.events (RT.obs t))
