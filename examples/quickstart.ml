(* Quickstart: replicate a counter over three simulated replicas.

     dune exec examples/quickstart.exe

   The cluster runs the paper's basic protocol: the leader executes each
   request and ships ⟨request, resulting state⟩ through a consensus
   instance; reads go through the X-Paxos fast path. *)

module Counter = Grid_services.Counter
module RT = Grid_runtime.Runtime.Make (Counter)
open Grid_paxos.Types

let () =
  (* A 3-replica group on a uniform 1 ms network. *)
  let cfg = Grid_paxos.Config.default ~n:3 in
  let scenario = Grid_runtime.Scenario.uniform () in
  let t = RT.create ~cfg ~scenario () in

  (* Wait for the leader election to settle. *)
  let leader = Option.get (RT.await_leader t) in
  Printf.printf "leader elected: replica %d (t = %.1f ms)\n" leader (RT.now t);

  (* One closed-loop client: ten increments, then a read. *)
  let results =
    RT.run_closed_loop_ops t ~clients:1 ~requests_per_client:11 ~gen:(fun ~client:_ ->
        let n = ref 0 in
        fun () ->
          incr n;
          if !n <= 10 then Some (Grid_runtime.Runtime.Do (Counter.Add !n))
          else Some (Grid_runtime.Runtime.Do Counter.Get))
  in
  List.iter
    (fun r ->
      Printf.printf "  %-5s -> %.2f ms\n"
        (Format.asprintf "%a" pp_rtype r.RT.rec_rtype)
        r.RT.rec_latency)
    results.records;

  (* Every replica holds the same state: 1 + 2 + ... + 10 = 55. *)
  RT.run_until t (RT.now t +. 100.0);
  for i = 0 to 2 do
    Printf.printf "replica %d: counter = %d (commit point %d)\n" i
      (RT.R.state (RT.replica t i))
      (RT.R.commit_point (RT.replica t i))
  done
