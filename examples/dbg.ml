module MC = Grid_check.Mcheck.Make (Grid_services.Counter)
module Counter = Grid_services.Counter
open Grid_paxos.Types

let mc_requests =
  [ MC.request 1 (Counter.Add 5);
    MC.request 2 (Counter.Add 7);
    MC.request 1 Counter.Get;
    MC.request 2 (Counter.Add 1);
    MC.request 3 Counter.Get ]

let () =
  let o = MC.run ~seed:34 ~steps:2000 ~crash_prob:0.0 ~requests:mc_requests () in
  List.iter
    (fun (r : reply) ->
      Printf.printf "client %d seq %d -> %d\n"
        (Grid_util.Ids.Client_id.to_int r.req.client)
        r.req.seq
        (Counter.decode_result r.payload))
    o.replies;
  Printf.printf "committed: %s\n"
    (String.concat ";" (Array.to_list (Array.map string_of_int o.committed)))
