module MC = Grid_check.Mcheck.Make (Grid_services.Counter)
module Counter = Grid_services.Counter
open Grid_paxos.Types

let mc_requests =
  [ (1, Write, Counter.encode_op (Counter.Add 5));
    (2, Write, Counter.encode_op (Counter.Add 7));
    (1, Read, Counter.encode_op Counter.Get);
    (2, Write, Counter.encode_op (Counter.Add 1));
    (3, Read, Counter.encode_op Counter.Get) ]

let () =
  let o = MC.run ~seed:34 ~steps:2000 ~crash_prob:0.0 ~requests:mc_requests () in
  List.iter
    (fun (r : reply) ->
      Printf.printf "client %d seq %d -> %d\n"
        (Grid_util.Ids.Client_id.to_int r.req.client)
        r.req.seq
        (Counter.decode_result r.payload))
    o.replies;
  Printf.printf "committed: %s\n"
    (String.concat ";" (Array.to_list (Array.map string_of_int o.committed)))
