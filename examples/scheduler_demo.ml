(* The grid scheduling service of §2 (after the NILE Global Planner):
   FCFS order overridden by priorities, with the examination-time race
   the paper describes — and how replication with state shipping makes
   the replicas agree on every scheduling decision.

     dune exec examples/scheduler_demo.exe *)

module Sched = Grid_services.Grid_scheduler
module Rng = Grid_util.Rng
module RT = Grid_runtime.Runtime.Make (Sched)

(* Part 1: the unreplicated race (§2). Job A arrives at t1; job B, with
   higher priority, at t2 > t1. A fast scheduler that examines the queue
   between t1 and t2 picks A; a slow one picks B. *)
let race_demo () =
  print_endline "Part 1 — the Job-A/Job-B examination race on ONE scheduler:";
  let rng = Rng.of_int 1 in
  let base =
    List.fold_left
      (fun st m -> (Sched.apply ~rng ~now:0.0 st (Sched.Add_machine m)).state)
      (Sched.initial ()) [ 1; 2 ]
  in
  let pick label examine_between =
    let st = (Sched.apply ~rng ~now:1.0 base (Sched.Submit { job = 1; priority = 0 })).state in
    let st, first =
      if examine_between then begin
        let o = Sched.apply ~rng ~now:1.5 st Sched.Examine in
        (o.state, o.result)
      end
      else (st, Sched.Scheduled None)
    in
    let st = (Sched.apply ~rng ~now:2.0 st (Sched.Submit { job = 2; priority = 9 })).state in
    let o =
      if examine_between then (first, st)
      else
        let o = Sched.apply ~rng ~now:2.5 st Sched.Examine in
        (o.result, o.state)
    in
    (match fst o with
    | Sched.Scheduled (Some (job, machine)) ->
      Printf.printf "  %s scheduler picked job %d (machine %d)\n" label job machine
    | _ -> Printf.printf "  %s scheduler picked nothing\n" label)
  in
  pick "fast" true;
  pick "slow" false;
  print_endline
    "  Same submissions, different decisions — the service is nondeterministic\n\
     even though its developer never intended it to be (§2).\n"

(* Part 2: three replicas running the paper's protocol agree on every
   decision, including the leader's observed arrival clocks and its
   random machine choices, because decisions ship as state. *)
let replicated_demo () =
  print_endline "Part 2 — the same service actively replicated (3 replicas):";
  let cfg = Grid_paxos.Config.make ~n:3 ~record_history:true () in
  let t = RT.create ~cfg ~scenario:(Grid_runtime.Scenario.uniform ()) () in
  let ops =
    List.concat
      [
        List.init 3 (fun m -> Sched.Add_machine m);
        List.concat
          (List.init 6 (fun j ->
               [ Sched.Submit { job = j; priority = (if j = 4 then 9 else 0) };
                 Sched.Examine ]));
      ]
  in
  let remaining = ref ops in
  let _ =
    RT.run_closed_loop_ops t ~clients:1 ~requests_per_client:(List.length ops)
      ~gen:(fun ~client:_ () ->
        match !remaining with
        | [] -> None
        | op :: rest ->
          remaining := rest;
          Some (Grid_runtime.Runtime.Do op))
  in
  RT.run_until t (RT.now t +. 200.0);
  let st0 = RT.R.state (RT.replica t 0) in
  Printf.printf "  schedule decided by the replicated service:\n";
  List.iter
    (fun (job, machine) -> Printf.printf "    job %d -> machine %d\n" job machine)
    (Sched.assignments st0);
  let identical =
    List.for_all
      (fun i ->
        String.equal
          (Sched.encode_state (RT.R.state (RT.replica t i)))
          (Sched.encode_state st0))
      [ 1; 2 ]
  in
  Printf.printf "  all replicas agree on the schedule: %b\n" identical;
  print_endline
    "  (Job 4 jumped the FCFS queue thanks to its priority, and every replica\n\
     records the same machine for every job, despite randomized placement.)"

let () =
  race_demo ();
  replicated_demo ()
