(* T-Paxos transactions (§3.5) over the replicated key-value store:
   per-operation replies at unreplicated speed, one consensus instance at
   commit, first-committer-wins conflicts, and abort-on-leader-switch.

     dune exec examples/txn_demo.exe *)

module Kv = Grid_services.Kv_store
module Runtime = Grid_runtime.Runtime
module RT = Runtime.Make (Kv)
open Grid_paxos.Types

let show_status (s : status) =
  Format.asprintf "%a" pp_status s

(* Demo clients never overlap their own requests, so a [`Busy] cannot
   happen; the match keeps the typed submit explicit. *)
let submit_item t c it =
  match RT.submit_item t c it with `Submitted -> () | `Busy -> assert false

let () =
  let cfg = Grid_paxos.Config.default ~n:3 in
  let t = RT.create ~cfg ~scenario:(Grid_runtime.Scenario.uniform ()) () in
  ignore (RT.await_leader t);

  let log = ref [] in
  let client name id =
    RT.add_client t ~id
      ~on_reply:(fun reply ->
        log := (name, reply.req.seq, reply.status, RT.now t) :: !log)
      ()
  in
  let alice = client "alice" 1 in
  let bob = client "bob" 2 in

  print_endline "1. Alice runs a 3-op transaction; ops are answered instantly,";
  print_endline "   only the commit waits for the accept phase:";
  submit_item t alice (Runtime.In_txn (1, Kv.Put { key = "job/1"; value = "queued" }));
  RT.run_until t (RT.now t +. 10.0);
  submit_item t alice (Runtime.In_txn (1, Kv.Put { key = "job/2"; value = "queued" }));
  RT.run_until t (RT.now t +. 10.0);
  submit_item t alice (Runtime.In_txn (1, Kv.Append { key = "audit"; value = "alice;" }));
  RT.run_until t (RT.now t +. 10.0);
  submit_item t alice (Runtime.Commit_txn { tid = 1; ops = 3 });
  RT.run_until t (RT.now t +. 20.0);
  List.iter
    (fun (who, seq, status, _) ->
      Printf.printf "   %s op %d: %s\n" who seq (show_status status))
    (List.rev !log);
  log := [];

  print_endline "\n2. Alice and Bob race on the same key; first committer wins:";
  submit_item t alice (Runtime.In_txn (2, Kv.Put { key = "lock"; value = "alice" }));
  submit_item t bob (Runtime.In_txn (1, Kv.Put { key = "lock"; value = "bob" }));
  RT.run_until t (RT.now t +. 10.0);
  submit_item t alice (Runtime.Commit_txn { tid = 2; ops = 1 });
  RT.run_until t (RT.now t +. 20.0);
  submit_item t bob (Runtime.Commit_txn { tid = 1; ops = 1 });
  RT.run_until t (RT.now t +. 20.0);
  List.iter
    (fun (who, seq, status, _) ->
      Printf.printf "   %s request %d: %s\n" who seq (show_status status))
    (List.rev !log);
  Printf.printf "   lock = %s\n"
    (Option.value ~default:"(none)" (Kv.find (RT.R.state (RT.replica t 0)) "lock"));
  log := [];

  print_endline "\n3. A leader switch mid-transaction aborts it (§3.6):";
  submit_item t bob (Runtime.In_txn (2, Kv.Put { key = "doomed"; value = "x" }));
  RT.run_until t (RT.now t +. 10.0);
  let l = Option.get (RT.leader t) in
  Printf.printf "   crashing leader (replica %d) before Bob commits...\n" l;
  RT.crash_replica t l;
  RT.run_until t (RT.now t +. 500.0);
  Printf.printf "   new leader: replica %d\n" (Option.get (RT.leader t));
  submit_item t bob (Runtime.Commit_txn { tid = 2; ops = 1 });
  RT.run_until t (RT.now t +. 500.0);
  List.iter
    (fun (who, seq, status, _) ->
      Printf.printf "   %s request %d: %s\n" who seq (show_status status))
    (List.rev !log);
  Printf.printf "   key 'doomed' committed? %b\n"
    (Kv.find (RT.R.state (RT.replica t (Option.get (RT.leader t)))) "doomed" <> None);

  print_endline "\nFinal replicated store (all replicas identical):";
  RT.run_until t (RT.now t +. 200.0);
  let st = RT.R.state (RT.replica t (Option.get (RT.leader t))) in
  Printf.printf "   %d keys, version %d\n" (Kv.cardinal st) st.version
