(* The distributed grid resource broker of §2, replicated two ways:

   1. classic Multi-Paxos (request shipping): every replica re-executes
      the randomized selection with its own RNG — the replicas diverge;
   2. the paper's protocol (state shipping): only the leader runs the
      randomized algorithm and the chosen state is replicated — the
      replicas stay identical.

     dune exec examples/broker_demo.exe *)

module Broker = Grid_services.Resource_broker
module RT = Grid_runtime.Runtime.Make (Broker)

(* Two sites with four machines each; then a burst of randomized
   selections from site-0 clients, some spilling to the remote site. *)
let workload =
  List.concat
    [
      List.init 4 (fun k -> Broker.Register { rid = k; site = 0; capacity = 3 });
      List.init 4 (fun k -> Broker.Register { rid = 100 + k; site = 1; capacity = 3 });
      List.init 18 (fun _ ->
          Broker.Select { site = 0; units = 1; strategy = Broker.Power_of_two });
    ]

let run coordination =
  let cfg = Grid_paxos.Config.make ~n:3 ~coordination () in
  let t = RT.create ~cfg ~scenario:(Grid_runtime.Scenario.uniform ()) () in
  let remaining = ref workload in
  let _ =
    RT.run_closed_loop_ops t ~clients:1 ~requests_per_client:(List.length workload)
      ~gen:(fun ~client:_ () ->
        match !remaining with
        | [] -> None
        | op :: rest ->
          remaining := rest;
          Some (Grid_runtime.Runtime.Do op))
  in
  RT.run_until t (RT.now t +. 200.0);
  Array.init 3 (fun i -> RT.R.state (RT.replica t i))

let describe label states =
  Printf.printf "%s\n" label;
  Array.iteri
    (fun i st ->
      Printf.printf "  replica %d: %2d units allocated, load imbalance %d\n" i
        (Broker.total_used st) (Broker.imbalance st))
    states;
  let identical =
    Array.for_all
      (fun st -> String.equal (Broker.encode_state st) (Broker.encode_state states.(0)))
      states
  in
  Printf.printf "  replicas identical: %b\n\n" identical

let () =
  print_endline
    "Replicating a randomized resource broker (power-of-two-choices\n\
     selection, local site preferred, remote spill when full):\n";
  describe "classic Multi-Paxos (request shipping) — replicas re-roll the dice:"
    (run `Request_shipping);
  describe "this paper (state shipping) — the leader's choices are replicated:"
    (run `State_shipping);
  print_endline
    "The divergence under request shipping is the paper's motivation (§1–2):\n\
     replicated state machines assume deterministic services. Shipping the\n\
     post-execution state makes the randomized broker safely replicable."
