(* Replicated resource leases: clock-dependent grant/expiry decisions are
   made once by the leader and replicated, so the lease table survives a
   leader switch — where an unreplicated lease manager loses every lease
   with its host.

     dune exec examples/lease_demo.exe *)

module Lease = Grid_services.Lease_manager
module RT = Grid_runtime.Runtime.Make (Lease)
open Grid_paxos.Types

let show = function
  | Lease.Granted { until } -> Printf.sprintf "granted (until t=%.0f)" until
  | Lease.Denied { holder; until } ->
    Printf.sprintf "denied (held by site %d until t=%.0f)" holder until
  | Lease.Renewed { until } -> Printf.sprintf "renewed (until t=%.0f)" until
  | Lease.Released -> "released"
  | Lease.Not_holder -> "not the holder"
  | Lease.Holder (Some (h, until)) -> Printf.sprintf "held by site %d until t=%.0f" h until
  | Lease.Holder None -> "free"
  | Lease.Count n -> Printf.sprintf "%d active" n

let () =
  let cfg = Grid_paxos.Config.default ~n:3 in
  let t = RT.create ~cfg ~scenario:(Grid_runtime.Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  let last = ref Lease.Released in
  let client = RT.add_client t ~id:1 ~on_reply:(fun r ->
      last := Lease.decode_result r.payload) () in
  let call op =
    (match RT.submit_op t client op with `Submitted -> () | `Busy -> assert false);
    RT.run_until t (RT.now t +. 50.0);
    !last
  in

  Printf.printf "t=%6.0f site 1 acquires the tape silo for 60 s: %s\n" (RT.now t)
    (show (call (Lease.Acquire { resource = "tape-silo"; holder = 1; ttl_ms = 60_000.0 })));
  Printf.printf "t=%6.0f site 2 tries to grab it:              %s\n" (RT.now t)
    (show (call (Lease.Acquire { resource = "tape-silo"; holder = 2; ttl_ms = 60_000.0 })));

  let leader = Option.get (RT.leader t) in
  Printf.printf "t=%6.0f *** leader (replica %d) crashes ***\n" (RT.now t) leader;
  RT.crash_replica t leader;
  RT.run_until t (RT.now t +. 1_000.0);
  Printf.printf "t=%6.0f new leader: replica %d\n" (RT.now t) (Option.get (RT.leader t));

  Printf.printf "t=%6.0f lease after failover:                 %s\n" (RT.now t)
    (show (call (Lease.Holder_of "tape-silo")));
  Printf.printf "t=%6.0f site 2 still denied:                  %s\n" (RT.now t)
    (show (call (Lease.Acquire { resource = "tape-silo"; holder = 2; ttl_ms = 60_000.0 })));
  Printf.printf "t=%6.0f site 1 renews through the NEW leader: %s\n" (RT.now t)
    (show (call (Lease.Renew { resource = "tape-silo"; holder = 1; ttl_ms = 60_000.0 })));

  print_endline
    "\nThe grant deadline was computed from the ORIGINAL leader's clock and\n\
     shipped inside the decided <request, state> tuple, so every replica —\n\
     including the new leader — enforces the exact same expiry instant.\n\
     An unreplicated lease service (or one replicated by re-execution)\n\
     would have lost or re-dated the lease."
