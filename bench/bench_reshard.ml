(* Elastic resharding under load (ours): open-loop Poisson arrivals over
   a bounded client pool against the 3-group range-partitioned KV
   cluster while a live split migrates [kv/f, kv/h) from group 0 to
   group 1 (DESIGN.md §17).

   Client-visible cost has two parts: requests to keys in the moving
   range block at the frozen source until COMMIT releases them with
   Wrong_epoch and the redirect wrapper resubmits against the new owner
   — that stall is the unavailability window; everything else pays at
   most one redirect. We report the overall p50/p99, the p99 restricted
   to the migration interval, the longest moving-key stall, and the
   freeze→commit duration itself. *)

module Config = Grid_paxos.Config
module Scenario = Grid_runtime.Scenario
module Engine = Grid_sim.Engine
module Rng = Grid_util.Rng
module Stats = Grid_util.Stats
module T = Grid_util.Text_table
module Kv = Grid_services.Kv_store
module Partition = Grid_shard.Partition
module M = Grid_shard.Multi.Make (Kv)
open Grid_paxos.Types

let cuts = [ "kv/h"; "kv/p" ]
let cut = "kv/f"

(* Half the pool lives in the moving range [kv/f, kv/h), half is spread
   over ranges that never move. *)
let moving_keys = [| "f0"; "f1"; "g0"; "g1" |]
let stable_keys = [| "d0"; "d1"; "m0"; "m1"; "q0"; "q1" |]

type trial = {
  t_p50 : float;
  t_p99 : float;
  t_p99_mig : float;  (** p99 of requests completed during the split *)
  t_stall : float;  (** max moving-key latency overlapping the split *)
  t_split_ms : float;  (** freeze→commit duration at the coordinator *)
  t_completed : int;
  t_shed : int;  (** arrivals dropped because every session was busy *)
  t_redirects : int;
}

let sessions = 48
let warmup_ms = 800.0

let trial ~rps ~duration_ms ~seed =
  let rng = Rng.of_int (0xbe5d + (seed * 7919)) in
  let cfg = Config.make ~n:3 ~suspicion_ms:60.0 ~stability_ms:20.0 () in
  let t =
    M.create ~seed ~cfg ~scenario:(Scenario.uniform ~n:3 ()) ~route:Kv.route
      ~spec:(Partition.Range cuts) ~shards:3 ()
  in
  (match M.await_leaders t with
  | Some _ -> ()
  | None -> failwith "bench_reshard: no leaders");
  let eng = M.engine t in
  (* Session pool: each arrival grabs an idle client; with none idle the
     arrival is shed (open loop, bounded concurrency). *)
  let idle = Queue.create () in
  let started = Array.make sessions 0.0 in
  let on_moving = Array.make sessions false in
  let clients =
    Array.init sessions (fun i ->
        let cl = M.add_client t ~id:(10 + i) () in
        Queue.add i idle;
        cl)
  in
  let split_start = ref nan and split_end = ref nan in
  let latencies = ref [] (* (completion time, latency, was moving) *)
  and completed = ref 0
  and shed = ref 0 in
  Array.iteri
    (fun i cl ->
      M.set_on_reply t cl (fun (r : reply) ->
          ignore r.status;
          let now = M.now t in
          let lat = now -. started.(i) in
          if started.(i) >= warmup_ms then begin
            latencies := (now, lat, on_moving.(i)) :: !latencies;
            incr completed
          end;
          Queue.add i idle))
    clients;
  let submit_one () =
    match Queue.take_opt idle with
    | None -> incr shed
    | Some i ->
      let moving = Rng.float rng 1.0 < 0.4 in
      let key =
        if moving then Rng.pick rng moving_keys else Rng.pick rng stable_keys
      in
      started.(i) <- M.now t;
      on_moving.(i) <- moving;
      (match M.try_submit_op t clients.(i) (Kv.Put { key; value = "v" }) with
      | Ok _ -> ()
      | Error _ -> Queue.add i idle)
  in
  let deadline = M.now t +. duration_ms in
  let rec arrive () =
    if M.now t < deadline then begin
      submit_one ();
      ignore
        (Engine.schedule eng
           ~delay:(Rng.exponential rng ~mean:(1000.0 /. rps))
           arrive)
    end
  in
  arrive ();
  (* The live split, fired once the load is warm. *)
  let coord = M.add_client t ~id:5 () in
  ignore
    (Engine.schedule eng ~delay:warmup_ms (fun () ->
         split_start := M.now t;
         match
           M.split_shard t coord ~cut ~target:1 ~on_done:(fun r ->
               split_end := M.now t;
               match r with
               | M.R_committed -> ()
               | M.R_aborted why ->
                 failwith ("bench_reshard: split aborted: " ^ why))
         with
         | Ok () -> ()
         | Error e ->
           Format.kasprintf failwith "bench_reshard: split plan: %a"
             Partition.pp_reshard_error e));
  M.run_until t (deadline +. 2_000.0);
  if Float.is_nan !split_end then failwith "bench_reshard: split never finished";
  let all = Array.of_list (List.rev_map (fun (_, l, _) -> l) !latencies) in
  let during_mig =
    List.filter_map
      (fun (fin, l, _) ->
        if fin -. l <= !split_end && fin >= !split_start then Some l else None)
      !latencies
  in
  let stall =
    List.fold_left
      (fun acc (fin, l, moving) ->
        if moving && fin -. l <= !split_end && fin >= !split_start then
          Float.max acc l
        else acc)
      0.0 !latencies
  in
  {
    t_p50 = Experiment.percentile_or_nan all 50.0;
    t_p99 = Experiment.percentile_or_nan all 99.0;
    t_p99_mig = Experiment.percentile_or_nan (Array.of_list during_mig) 99.0;
    t_stall = stall;
    t_split_ms = !split_end -. !split_start;
    t_completed = !completed;
    t_shed = !shed;
    t_redirects =
      Array.fold_left (fun acc cl -> acc + M.redirect_count cl) 0 clients;
  }

let run ~quick ~only =
  if only = None || only = Some "reshard" then begin
    Experiment.section
      "reshard — client-visible latency across a live shard split (ours)";
    let duration_ms = if quick then 2_500.0 else 6_000.0 in
    let trials = if quick then 2 else 5 in
    let rates = if quick then [ 200.0; 1_000.0 ] else [ 200.0; 1_000.0; 4_000.0 ] in
    let table =
      T.create
        ~columns:
          [ ("Offered (req/s)", T.Right); ("p50 (ms)", T.Right);
            ("p99 (ms)", T.Right); ("p99 in split (ms)", T.Right);
            ("Unavail (ms)", T.Right); ("Split (ms)", T.Right);
            ("Redirects", T.Right); ("Shed", T.Right) ]
    in
    List.iter
      (fun rps ->
        let p50 = Stats.create ()
        and p99 = Stats.create ()
        and p99m = Stats.create ()
        and stall = Stats.create ()
        and split = Stats.create ()
        and redirects = ref 0
        and shed = ref 0 in
        for seed = 1 to trials do
          let r = trial ~rps ~duration_ms ~seed in
          Stats.add p50 r.t_p50;
          Stats.add p99 r.t_p99;
          if not (Float.is_nan r.t_p99_mig) then Stats.add p99m r.t_p99_mig;
          Stats.add stall r.t_stall;
          Stats.add split r.t_split_ms;
          redirects := !redirects + r.t_redirects;
          shed := !shed + r.t_shed;
          let cfg l = Printf.sprintf "%.0frps-%s" rps l in
          Report.sample ~experiment:"reshard" ~config:(cfg "p50_ms") r.t_p50;
          Report.sample ~experiment:"reshard" ~config:(cfg "p99_ms") r.t_p99;
          if not (Float.is_nan r.t_p99_mig) then
            Report.sample ~experiment:"reshard" ~config:(cfg "p99_split_ms")
              r.t_p99_mig;
          Report.sample ~experiment:"reshard" ~config:(cfg "unavail_ms")
            r.t_stall;
          Report.sample ~experiment:"reshard" ~config:(cfg "split_ms")
            r.t_split_ms
        done;
        T.add_row table
          [ Printf.sprintf "%.0f" rps; T.cell_f (Stats.mean p50);
            T.cell_f (Stats.mean p99); T.cell_f (Stats.mean p99m);
            T.cell_f (Stats.mean stall); T.cell_f (Stats.mean split);
            string_of_int !redirects; string_of_int !shed ])
      rates;
    print_string (T.render table);
    print_endline
      "Expected shape: p50 stays at the unloaded write RRT — only keys in\n\
       the moving range stall, and only between FREEZE and COMMIT; the\n\
       unavailability window tracks the split duration (snapshot ship +\n\
       two consensus decisions), while stable-range requests pay at most\n\
       one transparent Wrong_epoch redirect after the map flips."
  end
