(* Machine-readable bench telemetry: drivers feed every trial sample
   here keyed by (experiment id, config label); [flush] writes one
   BENCH_<experiment>.json per experiment with the summary the printed
   tables show (n, mean, 99% CI) plus p50/p99 and the raw samples, so
   regressions can be checked without scraping stdout. A no-op unless
   [enable] was called. *)

module Json = Grid_obs.Json
module Stats = Grid_util.Stats

let out_dir : string option ref = ref None

(* experiment id -> configs in first-use order; samples newest-first *)
let experiments : (string, (string * float list ref) list ref) Hashtbl.t =
  Hashtbl.create 8

let order : string list ref = ref []

let enable ~dir = out_dir := Some dir
let enabled () = !out_dir <> None

let sample ~experiment ~config v =
  if enabled () then begin
    let configs =
      match Hashtbl.find_opt experiments experiment with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add experiments experiment c;
        order := experiment :: !order;
        c
    in
    match List.assoc_opt config !configs with
    | Some samples -> samples := v :: !samples
    | None -> configs := !configs @ [ (config, ref [ v ]) ]
  end

let config_json (label, samples) =
  let xs = Array.of_list (List.rev !samples) in
  let s = Stats.summarize xs in
  Json.Obj
    [ ("config", Json.Str label); ("n", Json.int s.n); ("mean", Json.Num s.mean);
      ("ci99", Json.Num s.ci99); ("p50", Json.Num s.p50); ("p99", Json.Num s.p99);
      ("min", Json.Num s.min); ("max", Json.Num s.max);
      ("samples", Json.Arr (List.map (fun x -> Json.Num x) (Array.to_list xs))) ]

let flush () =
  match !out_dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun experiment ->
        let configs = !(Hashtbl.find experiments experiment) in
        let json =
          Json.Obj
            [ ("experiment", Json.Str experiment);
              ("configs", Json.Arr (List.map config_json configs)) ]
        in
        let path = Filename.concat dir ("BENCH_" ^ experiment ^ ".json") in
        let oc = open_out path in
        output_string oc (Json.to_string_pretty json);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n%!" path)
      (List.rev !order)
