(* T-Paxos transaction benchmarks on the Sysnet scenario:
     Table 1   — transaction response time, 3 and 5 requests/transaction;
     Figure 9a — transaction throughput, 3 requests/transaction;
     Figure 9b — transaction throughput, 5 requests/transaction. *)

module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module T = Grid_util.Text_table

let scenario = Scenario.sysnet

let mode_name = function
  | Experiment.Read_write -> "Read/write"
  | Write_only -> "Write-only"
  | Optimized -> "Optimized"

let paper_trt = function
  | Experiment.Read_write, 3 -> 1.17
  | Read_write, 5 -> 1.79
  | Write_only, 3 -> 1.29
  | Write_only, 5 -> 2.01
  | Optimized, 3 -> 0.85
  | Optimized, 5 -> 1.23
  | _ -> nan

let run_table1 ~quick () =
  let trials = if quick then 6 else 25 in
  let txns = 20 in
  let table =
    T.create
      ~columns:
        [ ("Operation", T.Left); ("Req/tran", T.Right); ("Avg. TRT (ms)", T.Right);
          ("99% CI (ms)", T.Right); ("Paper (ms)", T.Right) ]
  in
  List.iter
    (fun mode ->
      List.iter
        (fun reqs_per_txn ->
          let acc =
            Experiment.txn_rrt
              ~report:
                ("txn", Printf.sprintf "table1 %s r=%d" (mode_name mode) reqs_per_txn)
              ~scenario ~mode ~reqs_per_txn ~txns ~trials ()
          in
          T.add_row table
            [ mode_name mode; string_of_int reqs_per_txn;
              T.cell_f ~decimals:2 (Stats.mean acc);
              T.cell_ci ~decimals:2 (Stats.confidence_interval ~confidence:0.99 acc);
              T.cell_f ~decimals:2 (paper_trt (mode, reqs_per_txn)) ])
        [ 3; 5 ];
      T.add_rule table)
    [ Experiment.Read_write; Write_only; Optimized ];
  print_string (T.render table);
  print_endline
    "Paper shape: T-Paxos cuts TRT by 28–34% (3 requests) and 31–39% (5 requests)."

let run_fig9 ~quick ~id ~reqs_per_txn () =
  let trials = if quick then 3 else 10 in
  let txns_total = if quick then 120 else 400 in
  let table =
    T.create
      ~columns:
        [ ("Clients", T.Right); ("Read/write (txn/s)", T.Right);
          ("Write-only (txn/s)", T.Right); ("Optimized (txn/s)", T.Right) ]
  in
  List.iter
    (fun clients ->
      let measure mode =
        Experiment.txn_throughput
          ~report:("txn", Printf.sprintf "%s %s c=%d" id (mode_name mode) clients)
          ~scenario ~mode ~reqs_per_txn ~clients ~txns_total ~trials ()
      in
      let rw = measure Experiment.Read_write in
      let wo = measure Write_only in
      let opt = measure Optimized in
      T.add_row table
        [ string_of_int clients; Experiment.pp_tput rw; Experiment.pp_tput wo;
          Experiment.pp_tput opt ])
    [ 1; 2; 4; 8; 16 ];
  print_string (T.render table);
  print_endline
    "Paper shape: optimized (T-Paxos) highest, then read/write, then write-only;\n\
     the T-Paxos advantage grows with the number of clients."

(* Ours: the paper measures transactions on the cluster only; across the
   WAN every per-operation coordination round costs a full inter-site
   trip, so T-Paxos's deferral should pay off far more. *)
let run_txn_wan ~quick () =
  let scenario = Scenario.wan in
  let trials = if quick then 4 else 12 in
  let txns = 10 in
  let table =
    T.create
      ~columns:
        [ ("Operation", T.Left); ("Req/tran", T.Right); ("Avg. TRT (ms)", T.Right);
          ("99% CI (ms)", T.Right) ]
  in
  List.iter
    (fun mode ->
      let acc =
        Experiment.txn_rrt ~report:("txn", "txn-wan " ^ mode_name mode) ~scenario ~mode
          ~reqs_per_txn:3 ~txns ~trials ()
      in
      T.add_row table
        [ mode_name mode; "3"; T.cell_f ~decimals:1 (Stats.mean acc);
          T.cell_ci ~decimals:1 (Stats.confidence_interval ~confidence:0.99 acc) ])
    [ Experiment.Read_write; Write_only; Optimized ];
  print_string (T.render table);
  print_endline
    "Expected shape: on the WAN each coordinated operation costs a full
     inter-site round (write RRT ~107 ms), so deferring coordination to the
     commit saves ~35 ms per operation — a much larger absolute win than on
     the cluster (analytically: optimized 3*70.8+106.5 ~ 319 ms vs
     write-only 4*106.7 ~ 427 ms)."

let run ~quick ~only =
  (* [--only txn] runs the whole transaction family in one process, so
     BENCH_txn.json holds every experiment's samples. *)
  let only = if only = Some "txn" then None else only in
  let maybe id title f =
    if only = None || only = Some id then begin
      Experiment.section (Printf.sprintf "%s — %s" id title);
      f ()
    end
  in
  maybe "table1" "Transaction response time on Sysnet (Table 1)" (run_table1 ~quick);
  maybe "fig9a" "Transaction throughput, 3 requests/transaction (Figure 9a)"
    (run_fig9 ~quick ~id:"fig9a" ~reqs_per_txn:3);
  maybe "fig9b" "Transaction throughput, 5 requests/transaction (Figure 9b)"
    (run_fig9 ~quick ~id:"fig9b" ~reqs_per_txn:5);
  maybe "txn-wan" "Transaction response time across the WAN (ours)" (run_txn_wan ~quick)
