(* Shard scaling (ours): aggregate closed-loop throughput of the sharded
   runtime at k ∈ {1, 2, 4, 8} groups on the Sysnet LAN, flagship
   service Kv_store on disjoint per-shard keyspaces.

   Each group keeps its own leader and its own depth-one write pipeline,
   and groups exchange no messages, so with a fixed client count per
   shard the aggregate should scale near-linearly — the Parallel-SMR
   argument for partitioned agreement. The simulation models no
   cross-group interference (each group's replicas are distinct nodes);
   a real deployment realizes that by placing groups on disjoint
   hosts. *)

module Config = Grid_paxos.Config
module Scenario = Grid_runtime.Scenario
module Runtime = Grid_runtime.Runtime
module Stats = Grid_util.Stats
module T = Grid_util.Text_table
module Kv = Grid_services.Kv_store
module Partition = Grid_shard.Partition
module M = Grid_shard.Multi.Make (Kv)

let clients_per_shard = 8
let keys_per_shard = 32

(* Per-shard keyspaces, rejection-sampled against the partition map so
   the router pins every client to its own group. *)
let keyset part shard =
  let keys = ref [] in
  let count = ref 0 in
  let i = ref 0 in
  while !count < keys_per_shard do
    let k = Printf.sprintf "s%d-key-%d" shard !i in
    incr i;
    if Partition.owner_of_key part ("kv/" ^ k) = shard then begin
      keys := k :: !keys;
      incr count
    end
  done;
  Array.of_list !keys

let shard_trial ~shards ~requests_per_client ~seed =
  let t =
    M.create ~seed ~cfg:(Config.default ~n:3) ~scenario:Scenario.sysnet
      ~route:Kv.route ~shards ()
  in
  let keysets = Array.init shards (keyset (M.partition t)) in
  let clients = shards * clients_per_shard in
  let results =
    M.run_closed_loop t ~clients ~requests_per_client ~gen:(fun ~client ->
        let keys = keysets.(client mod shards) in
        let n = ref 0 in
        fun () ->
          incr n;
          Some (Runtime.Do (Kv.Put { key = keys.(!n mod Array.length keys); value = "v" })))
  in
  M.throughput_rps results

let run ~quick ~only =
  if only = None || only = Some "shard" then begin
    Experiment.section
      "shard — aggregate closed-loop throughput vs shard count (ours)";
    let trials = if quick then 3 else 8 in
    let requests_per_client = if quick then 100 else 400 in
    let table =
      T.create
        ~columns:
          [ ("Shards", T.Right); ("Clients", T.Right);
            ("Aggregate (req/s)", T.Right); ("vs 1 shard", T.Right) ]
    in
    let base = ref 0.0 in
    List.iter
      (fun shards ->
        let acc = Stats.create () in
        for seed = 1 to trials do
          let v = shard_trial ~shards ~requests_per_client ~seed in
          Stats.add acc v;
          Report.sample ~experiment:"shard"
            ~config:(Printf.sprintf "%d-shards" shards)
            v
        done;
        let mean = Stats.mean acc in
        if shards = 1 then base := mean;
        T.add_row table
          [ string_of_int shards;
            string_of_int (shards * clients_per_shard);
            Experiment.pp_tput acc;
            Printf.sprintf "%.2fx" (mean /. !base) ])
      [ 1; 2; 4; 8 ];
    print_string (T.render table);
    print_endline
      "Expected shape: near-linear scaling — each group runs an independent\n\
       depth-one pipeline over its own keyspace; the router never lets a\n\
       request cross groups (cross-shard writes are rejected, DESIGN.md §11)."
  end
