(* Wire-codec benchmark (ours): encode/decode cost and on-wire bytes of
   the negotiated protocol versions. V1 is the seed's unversioned
   encoding wrapped behind the {!Grid_codec.Wire_intf.WIRE} signature;
   V2 adds the compact header and flag-gated field elisions
   (DESIGN.md §15). Two questions, both answered per version:

   - ns/msg to encode and to decode a representative message mix — the
     CPU the transport pays per delivery;
   - bytes/request on the wire for one replicated write and one
     confirmed read in a 3-replica group, frame overhead (4-byte length
     header + 4-byte CRC trailer) included — the number the rolling
     upgrade trades against.

   With --json-dir the samples land in BENCH_wire.json; the driver
   asserts V2 never costs more bytes per request than V1. *)

module Types = Grid_paxos.Types
module WC = Grid_paxos.Wire_codec
module Ids = Grid_util.Ids
module Stats = Grid_util.Stats
module T = Grid_util.Text_table

let ballot = Types.Ballot.make ~round:2 ~holder:1

let request ?(payload = String.make 64 'p') ?(trace = Types.no_trace) seq :
    Types.request =
  {
    id = Ids.Request_id.make ~client:(Ids.Client_id.of_int 7) ~seq;
    rtype = Types.Write;
    payload;
    trace;
  }

let read_request seq : Types.request =
  {
    id = Ids.Request_id.make ~client:(Ids.Client_id.of_int 7) ~seq;
    rtype = Types.Read;
    payload = String.make 8 'g';
    trace = Types.no_trace;
  }

let proposal : Types.proposal =
  {
    requests = [ request 11 ];
    update = Types.Delta (String.make 128 's');
    replies =
      [ { Types.req = (request 11).id; status = Types.Ok; payload = "r" } ];
  }

let reply : Types.reply =
  { req = (request 11).id; status = Types.Ok; payload = String.make 16 'v' }

(* One replicated write through a 3-replica group: the client broadcasts
   to all replicas; the leader runs one accept round and replies. *)
let write_flow : Types.msg list =
  let cr = Types.Client_req (request 11) in
  let accept = Types.Accept { ballot; instance = 42; proposal } in
  let ack = Types.Accept_ack { ballot; instance = 42 } in
  let commit = Types.Commit { ballot; instance = 42 } in
  [ cr; cr; cr; accept; accept; ack; ack; commit; commit; Types.Reply_msg reply ]

(* One X-Paxos confirmed read: broadcast, two follower confirmations to
   the leader, one reply. Lease anchors are [nan] (leases off) — the
   common configuration, and the one V2 elides. *)
let read_flow : Types.msg list =
  let cr = Types.Client_req (read_request 12) in
  let confirm =
    Types.Read_confirm
      { ballot; req = (read_request 12).id; lease_anchor = Float.nan }
  in
  [ cr; cr; cr; confirm; confirm; Types.Reply_msg reply ]

(* Mixed message set for the CPU timing: the two request flows plus the
   background traffic (heartbeats, recovery, semi-passive rounds). *)
let timing_mix : Types.msg list =
  write_flow @ read_flow
  @ [
      Types.Heartbeat
        {
          round_seen = 2;
          commit_point = 41;
          promised = ballot;
          sent_at = 12345.0;
          lease_anchor = Float.nan;
        };
      Types.Prepare { ballot; commit_point = 41 };
      Types.Prepare_ack
        {
          ballot;
          commit_point = 41;
          snapshot = None;
          accepted = [ { Types.instance = 42; ballot; proposal } ];
        };
      Types.Sp_propose { instance = 43; round = 1; proposal };
      Types.Sp_ack { instance = 43; round = 1 };
      Types.Sp_decide { instance = 43; proposal };
    ]

let frame_overhead = 8 (* 4-byte length header + 4-byte CRC trailer *)

let flow_bytes (module W : Grid_codec.Wire_intf.WIRE with type msg = Types.msg)
    flow =
  List.fold_left
    (fun acc m -> acc + frame_overhead + String.length (W.encode m))
    0 flow

(* ns/msg over [iters] passes of the mix; one call = one sample. *)
let time_ns f n_msgs ~iters =
  let t0 = Sys.time () in
  for _ = 1 to iters do
    f ()
  done;
  (Sys.time () -. t0) *. 1e9 /. Float.of_int (iters * n_msgs)

let bench_codec ~trials ~iters
    (module W : Grid_codec.Wire_intf.WIRE with type msg = Types.msg) =
  let msgs = Array.of_list timing_mix in
  let encoded = Array.map W.encode msgs in
  (* Every decode must succeed — a codec that errors on its own output
     would corrupt the timing with exception overhead. *)
  Array.iter
    (fun s ->
      match W.decode s with
      | Ok _ -> ()
      | Error e ->
        failwith
          (Printf.sprintf "bench_wire: v%d self-decode failed: %s" W.version
             (Grid_codec.Wire_intf.decode_error_to_string e)))
    encoded;
  let enc = Stats.create () and dec = Stats.create () in
  let n = Array.length msgs in
  let encode_pass () = Array.iter (fun m -> ignore (W.encode m)) msgs in
  let decode_pass () = Array.iter (fun s -> ignore (W.decode s)) encoded in
  (* Warm up, then interleave so allocator drift cancels. *)
  ignore (time_ns encode_pass n ~iters);
  ignore (time_ns decode_pass n ~iters);
  for _ = 1 to trials do
    let e = time_ns encode_pass n ~iters in
    let d = time_ns decode_pass n ~iters in
    Stats.add enc e;
    Stats.add dec d;
    Report.sample ~experiment:"wire"
      ~config:(Printf.sprintf "v%d encode (ns/msg)" W.version)
      e;
    Report.sample ~experiment:"wire"
      ~config:(Printf.sprintf "v%d decode (ns/msg)" W.version)
      d
  done;
  (enc, dec)

let run ~quick ~only =
  if only = None || only = Some "wire" then begin
    Experiment.section
      "wire — codec versions: ns/msg and bytes/request, V1 vs V2 (ours)";
    let trials = if quick then 8 else 24 in
    let iters = if quick then 500 else 2_000 in
    let codecs = [ (module WC.V1 : Grid_codec.Wire_intf.WIRE
                      with type msg = Types.msg);
                   (module WC.V2) ] in
    let table =
      T.create
        ~columns:
          [ ("Codec", T.Left); ("Encode ns/msg", T.Right);
            ("Decode ns/msg", T.Right); ("Write B/req", T.Right);
            ("Read B/req", T.Right) ]
    in
    let byte_totals =
      List.map
        (fun ((module W : Grid_codec.Wire_intf.WIRE with type msg = Types.msg)
              as w) ->
          let enc, dec = bench_codec ~trials ~iters w in
          let wb = flow_bytes w write_flow and rb = flow_bytes w read_flow in
          Report.sample ~experiment:"wire"
            ~config:(Printf.sprintf "v%d write flow (bytes/request)" W.version)
            (Float.of_int wb);
          Report.sample ~experiment:"wire"
            ~config:(Printf.sprintf "v%d read flow (bytes/request)" W.version)
            (Float.of_int rb);
          T.add_row table
            [ Printf.sprintf "V%d" W.version; T.cell_f (Stats.mean enc);
              T.cell_f (Stats.mean dec); string_of_int wb; string_of_int rb ];
          (W.version, wb, rb))
        codecs
    in
    print_string (T.render table);
    match byte_totals with
    | [ (1, w1, r1); (2, w2, r2) ] ->
      if w2 > w1 || r2 > r1 then
        failwith "bench_wire: V2 must not cost more bytes/request than V1";
      Printf.printf
        "V2 saves %.1f%% on the write flow, %.1f%% on the read flow\n%!"
        (Float.of_int (w1 - w2) /. Float.of_int w1 *. 100.0)
        (Float.of_int (r1 - r2) /. Float.of_int r1 *. 100.0)
    | _ -> failwith "bench_wire: expected exactly V1 and V2"
  end
