(* Bechamel microbenchmarks of the protocol-critical data paths: wire
   codec, CRC, heap, log append, snapshot encoding. These are ours (the
   paper has no microbenchmarks); they guard the constant factors the
   simulator's CPU-cost model abstracts. *)

open Bechamel
open Toolkit
module Wire = Grid_codec.Wire
module Plog = Grid_paxos.Plog
module Types = Grid_paxos.Types
module Ids = Grid_util.Ids

let sample_request : Types.request =
  {
    id = Ids.Request_id.make ~client:(Ids.Client_id.of_int 3) ~seq:17;
    rtype = Types.Write;
    payload = String.make 64 'p';
    trace = Types.no_trace;
  }

let sample_proposal : Types.proposal =
  {
    requests = [ sample_request ];
    update = Types.Delta (String.make 128 's');
    replies = [ { req = sample_request.id; status = Types.Ok; payload = "r" } ];
  }

let encoded_proposal = Wire.encode (fun e -> Types.encode_proposal e sample_proposal)
let crc_payload = String.make 1024 'x'

let test_encode_proposal =
  Test.make ~name:"codec: encode proposal"
    (Staged.stage (fun () ->
         ignore (Wire.encode (fun e -> Types.encode_proposal e sample_proposal))))

let test_decode_proposal =
  Test.make ~name:"codec: decode proposal"
    (Staged.stage (fun () -> ignore (Wire.decode encoded_proposal Types.decode_proposal)))

let test_crc =
  Test.make ~name:"codec: crc32 1KiB"
    (Staged.stage (fun () -> ignore (Wire.crc32 crc_payload)))

module Int_heap = Grid_util.Heap.Make (Int)

let test_heap =
  Test.make ~name:"heap: 64 push + drain"
    (Staged.stage (fun () ->
         let h = Int_heap.create () in
         for i = 63 downto 0 do
           Int_heap.add h i
         done;
         while Int_heap.pop_min h <> None do
           ()
         done))

let test_plog_append =
  Test.make ~name:"plog: 64 accept + commit"
    (Staged.stage (fun () ->
         let log = Plog.create () in
         let ballot = Types.Ballot.make ~round:1 ~holder:0 in
         for i = 1 to 64 do
           ignore (Plog.accept log ~instance:i ~ballot sample_proposal);
           ignore (Plog.commit log ~instance:i)
         done))

let test_snapshot =
  Test.make ~name:"snapshot: encode+decode"
    (Staged.stage
       (let snap =
          {
            Grid_paxos.Snapshot.commit_point = 100;
            state = String.make 256 's';
            dedup =
              List.init 16 (fun c ->
                  ( c,
                    { Types.req = Ids.Request_id.make ~client:(Ids.Client_id.of_int c) ~seq:9;
                      status = Types.Ok;
                      payload = "ok" } ));
            prepared = [];
            outcomes = [];
            reshard = "";
          }
        in
        fun () ->
          ignore (Grid_paxos.Snapshot.decode (Grid_paxos.Snapshot.encode snap))))

let benchmark test =
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg [ instance ] test in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      instance raw
  in
  results

let run ~quick:_ ~only =
  if only = None || only = Some "micro" then begin
    Experiment.section "micro — data-structure microbenchmarks (bechamel)";
    let table =
      Grid_util.Text_table.create
        ~columns:[ ("Benchmark", Grid_util.Text_table.Left); ("ns/op", Grid_util.Text_table.Right) ]
    in
    List.iter
      (fun test ->
        let results = benchmark test in
        Hashtbl.iter
          (fun name ols ->
            let estimate =
              match Analyze.OLS.estimates ols with
              | Some (e :: _) -> Printf.sprintf "%.1f" e
              | _ -> "n/a"
            in
            Grid_util.Text_table.add_row table [ name; estimate ])
          results)
      [
        test_encode_proposal;
        test_decode_proposal;
        test_crc;
        test_heap;
        test_plog_append;
        test_snapshot;
      ];
    print_string (Grid_util.Text_table.render table)
  end
