(* Open-loop experiment (ours): the paper measures closed-loop saturation
   throughput; this sweep offers a fixed Poisson arrival rate instead and
   reports the latency each protocol sustains as load approaches its
   saturation point — the classic latency/throughput knee, on Sysnet. *)

module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module T = Grid_util.Text_table
module Noop = Grid_services.Noop
open Grid_paxos.Types

module OL = Grid_runtime.Workload.Make (Noop)

let latency_at ~rtype ~rps ~seed ~duration_ms =
  let t =
    OL.RT.create ~cfg:(Grid_paxos.Config.default ~n:3) ~scenario:Scenario.sysnet ~seed ()
  in
  ignore (OL.RT.await_leader t);
  let item : Noop.op Grid_runtime.Runtime.item =
    match rtype with
    | Read -> Do Noop.Noop_read
    | Original -> Unreplicated Noop.Noop_write
    | _ -> Do Noop.Noop_write
  in
  let r = OL.run t ~seed:(seed + 100) ~rps ~duration_ms ~item in
  Experiment.percentile_or_nan r.latencies_ms 50.0

let run ~quick ~only =
  if only = None || only = Some "openloop" then begin
    Experiment.section
      "openloop — median latency vs offered load on Sysnet (ours)";
    let duration_ms = if quick then 300.0 else 1000.0 in
    let trials = if quick then 2 else 5 in
    let rates = [ 2_000.0; 10_000.0; 20_000.0; 40_000.0 ] in
    let table =
      T.create
        ~columns:
          [ ("Offered (req/s)", T.Right); ("Read p50 (ms)", T.Right);
            ("Write p50 (ms)", T.Right); ("Original p50 (ms)", T.Right);
            ("Dropped trials (r/w/o)", T.Right) ]
    in
    let total_dropped = ref 0 in
    List.iter
      (fun rps ->
        (* A trial that completes nothing yields nan; count it as dropped
           instead of silently averaging over fewer trials. *)
        let median rtype =
          let acc = Stats.create () in
          let dropped = ref 0 in
          for seed = 1 to trials do
            let v = latency_at ~rtype ~rps ~seed ~duration_ms in
            if Float.is_nan v then incr dropped else Stats.add acc v
          done;
          total_dropped := !total_dropped + !dropped;
          ((if trials - !dropped = 0 then nan else Stats.mean acc), !dropped)
        in
        let r_p50, r_drop = median Read in
        let w_p50, w_drop = median Write in
        let o_p50, o_drop = median Original in
        T.add_row table
          [ Printf.sprintf "%.0f" rps; T.cell_f r_p50; T.cell_f w_p50;
            T.cell_f o_p50; Printf.sprintf "%d/%d/%d" r_drop w_drop o_drop ])
      rates;
    print_string (T.render table);
    if !total_dropped > 0 then
      Printf.printf
        "note: %d trial(s) completed no requests and were dropped from the averages\n"
        !total_dropped;
    print_endline
      "Expected shape: at low load every class sits at its unloaded RRT\n\
       (0.26 / 0.34 / 0.18 ms); as the offered rate approaches a class's\n\
       closed-loop saturation point (Figure 6), queueing inflates its\n\
       latency first — writes knee earliest, originals last."
  end
