(* Cross-shard transactions (ours): commit latency and throughput of the
   2PC-over-T-Paxos path (DESIGN.md §16) against the single-shard
   transaction baseline, on an 8-group Sysnet cluster.

   A cross-shard transaction touching k groups pays k parallel branch
   executions, then a prepare round (one consensus instance per group)
   and a decision round (home group first, then fan-out) — roughly three
   sequential consensus latencies end to end regardless of k, with
   per-group work growing linearly. The single-shard baseline is one
   branch op plus one T-Paxos commit: one consensus instance. *)

module Config = Grid_paxos.Config
module Scenario = Grid_runtime.Scenario
module Runtime = Grid_runtime.Runtime
module Stats = Grid_util.Stats
module T = Grid_util.Text_table
module Kv = Grid_services.Kv_store
module Partition = Grid_shard.Partition
module M = Grid_shard.Multi.Make (Kv)

let shards = 8
let spans = [ 1; 2; 4; 8 ]  (* groups touched; 1 = single-shard baseline *)

let keyset part shard =
  let rec go i =
    let k = Printf.sprintf "x%d-%d" shard i in
    if Partition.owner_of_key part ("kv/" ^ k) = shard then k else go (i + 1)
  in
  go 0

(* Closed-loop: one coordinator, [count] transactions back to back;
   returns per-commit latency samples (ms) and throughput (txn/s). *)
let trial ~span ~count ~seed =
  let t =
    M.create ~seed ~cfg:(Config.default ~n:3) ~scenario:Scenario.sysnet
      ~route:Kv.route ~shards ()
  in
  (match M.await_leaders t with
  | Some _ -> ()
  | None -> failwith "bench_xshard: no leaders");
  let keys = Array.init shards (fun s -> keyset (M.partition t) s) in
  let cl = M.add_client t ~id:0 () in
  let lat = ref [] in
  let completed = ref 0 in
  let committed = ref 0 in
  let started = ref 0.0 in
  let finish () =
    lat := (M.now t -. !started) :: !lat;
    incr completed
  in
  let next_single =
    (* Single-shard baseline: one branch op then a T-Paxos commit, on a
       rotating home group. *)
    let tid = ref 0 in
    let phase = ref `Idle in
    M.set_on_reply t cl (fun _ ->
        match !phase with
        | `Op ->
          phase := `Commit;
          ignore (M.submit_item t cl (Runtime.Commit_txn { tid = !tid; ops = 1 }))
        | `Commit ->
          phase := `Idle;
          incr committed;
          finish ()
        | `Idle -> ());
    fun () ->
      incr tid;
      started := M.now t;
      phase := `Op;
      ignore
        (M.submit_item t cl
           (Runtime.In_txn
              (!tid, Kv.Put { key = keys.(!tid mod shards); value = "v" })))
  in
  let next_cross span () =
    started := M.now t;
    ignore
      (M.submit_cross_txn t cl
         ~ops:
           (List.init span (fun g ->
                Kv.Put { key = keys.((!completed + g) mod shards); value = "v" }))
         ~on_done:(fun r ->
           (match r with M.X_committed -> incr committed | _ -> ());
           finish ()))
  in
  (* Rotating key windows can collide for span > 1 only across txns, and
     the coordinator is sequential, so every txn should commit. *)
  let next = if span = 1 then next_single else next_cross span in
  let t0 = M.now t in
  let launched = ref 0 in
  let deadline = t0 +. 600_000.0 in
  while !completed < count && M.now t < deadline do
    if !launched = !completed then begin
      incr launched;
      next ()
    end;
    M.run_until t (M.now t +. 0.1)
  done;
  if !committed < count then
    Printf.printf "  (span %d seed %d: only %d/%d committed)\n%!" span seed
      !committed count;
  (!lat, float_of_int !completed /. ((M.now t -. t0) /. 1000.0))

let run ~quick ~only =
  if only = None || only = Some "xshard" then begin
    Experiment.section
      "xshard — cross-shard 2PC commit vs single-shard transactions (ours)";
    let trials = if quick then 3 else 6 in
    let count = if quick then 60 else 200 in
    let table =
      T.create
        ~columns:
          [ ("Groups/txn", T.Right); ("Latency (ms)", T.Right);
            ("p95 (ms)", T.Right); ("Throughput (txn/s)", T.Right);
            ("vs single", T.Right) ]
    in
    let base = ref 0.0 in
    List.iter
      (fun span ->
        let lat_all = ref [] in
        let tput = Stats.create () in
        let cfg suffix =
          if span = 1 then "single-shard-" ^ suffix
          else Printf.sprintf "cross-%d-groups-%s" span suffix
        in
        for seed = 1 to trials do
          let lat, rps = trial ~span ~count ~seed in
          lat_all := List.rev_append lat !lat_all;
          Stats.add tput rps;
          let s = Stats.create () in
          List.iter (Stats.add s) lat;
          Report.sample ~experiment:"xshard" ~config:(cfg "latency-ms")
            (Stats.mean s);
          Report.sample ~experiment:"xshard" ~config:(cfg "tput") rps
        done;
        let samples = Array.of_list !lat_all in
        let mean =
          Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)
        in
        if span = 1 then base := mean;
        T.add_row table
          [ (if span = 1 then "1 (single)" else string_of_int span);
            Printf.sprintf "%.2f" mean;
            Printf.sprintf "%.2f" (Stats.percentile samples 95.0);
            Experiment.pp_tput tput;
            Printf.sprintf "%.2fx" (mean /. !base) ])
      spans;
    print_string (T.render table);
    print_endline
      "Expected shape: a cross-shard commit costs ~3 consensus rounds (branch\n\
       ops, replicated PREPARE votes, replicated decision) against the single\n\
       instance of a same-group commit, and the gap is flat in the number of\n\
       groups touched — the rounds run per group in parallel (DESIGN.md §16)."
  end
