(* Request response time on the three configurations (§4.1 text).

   Paper targets:
     Sysnet:    original 0.181 ms   read 0.263 ms   write 0.338 ms
     Princeton: original 91.85 ms   read 92.79 ms   write 93.13 ms
     WAN:       original 70.82 ms   read 75.49 ms   write 106.73 ms *)

module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module T = Grid_util.Text_table
open Grid_paxos.Types

let paper_numbers = function
  | "sysnet" -> (0.181, 0.263, 0.338)
  | "berkeley-to-princeton" -> (91.85, 92.79, 93.13)
  | "wan" -> (70.82, 75.49, 106.73)
  | _ -> (nan, nan, nan)

let run_one ~quick ~id (scenario : Scenario.t) =
  let trials = if quick then 8 else 40 in
  let reqs = 20 in
  let measure rtype =
    let label = Format.asprintf "%a" pp_rtype rtype in
    Experiment.rrt ~report:(id, label) ~scenario ~rtype ~trials ~reqs ()
  in
  let original = measure Original in
  let read = measure Read in
  let write = measure Write in
  let p_orig, p_read, p_write = paper_numbers scenario.name in
  let table =
    T.create
      ~columns:
        [ ("Request", T.Left); ("Avg. RRT (ms)", T.Right); ("99% CI (ms)", T.Right);
          ("Paper (ms)", T.Right) ]
  in
  let row name acc paper =
    T.add_row table
      [ name; T.cell_f (Stats.mean acc);
        T.cell_ci (Stats.confidence_interval ~confidence:0.99 acc); T.cell_f paper ]
  in
  row "original" original p_orig;
  row "read (X-Paxos)" read p_read;
  row "write (basic)" write p_write;
  print_string (T.render table);
  let reduction = (Stats.mean write -. Stats.mean read) /. Stats.mean write *. 100.0 in
  Printf.printf "X-Paxos RRT reduction vs basic protocol: %.1f%% (paper: %.0f%%)\n%!"
    reduction
    ((p_write -. p_read) /. p_write *. 100.0)

let run ~quick ~only =
  let cases =
    [ ("rrt-sysnet", Scenario.sysnet); ("rrt-princeton", Scenario.princeton);
      ("rrt-wan", Scenario.wan) ]
  in
  List.iter
    (fun (id, scenario) ->
      if only = None || only = Some id then begin
        Experiment.section
          (Printf.sprintf "%s — request response time (§4.1), scenario %s" id
             scenario.Scenario.name);
        run_one ~quick ~id scenario
      end)
    cases
