(* Ablations for the design points the paper discusses but does not plot:
     abl-leader-switch — §3.6: X-Paxos and T-Paxos need longer leader
       stability than the basic protocol;
     abl-state-size   — §3.3: shipping full state vs delta vs witness as
       the service state grows;
     abl-t2           — §4.3: tolerating t=2 failures (5 replicas) and the
       effect of WAN latency variance on X-Paxos reads. *)

module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module T = Grid_util.Text_table
module Network = Grid_sim.Network
module Engine = Grid_sim.Engine
module Noop = Grid_services.Noop
module Wire = Grid_codec.Wire
open Grid_paxos.Types
module RT = Experiment.RT

(* ------------------------------------------------------------------ *)
(* Leader-switch sensitivity (§3.6). Force a leader crash (30 ms outage)
   every [period] ms during a fixed workload; compare how the three
   request classes weather the churn. *)

let churn_trial ~rtype ~period ~seed =
  let cfg =
    Grid_paxos.Config.make ~n:3 ~suspicion_ms:20.0 ~stability_ms:5.0 ~hb_period_ms:5.0
      ~client_retry_ms:60.0 ~accept_retry_ms:20.0 ()
  in
  let t = RT.create ~cfg ~scenario:Scenario.sysnet ~seed () in
  ignore (RT.await_leader t);
  (if period < infinity then
     let eng = RT.engine t in
     let rec arm () =
       ignore
         (Engine.schedule eng ~delay:period (fun () ->
              (match RT.leader t with
              | Some l ->
                RT.crash_replica t l;
                ignore (Engine.schedule eng ~delay:30.0 (fun () -> RT.recover_replica t l))
              | None -> ());
              arm ()))
     in
     arm ());
  let total = 2_000 in
  let results =
    RT.run_closed_loop_ops t ~max_sim_ms:3_600_000.0 ~clients:4
      ~requests_per_client:(total / 4) ~gen:(fun ~client:_ () ->
        Some (Experiment.noop_item rtype))
  in
  RT.throughput_rps results

let txn_churn_trial ~period ~seed =
  let cfg =
    Grid_paxos.Config.make ~n:3 ~suspicion_ms:20.0 ~stability_ms:5.0 ~hb_period_ms:5.0
      ~client_retry_ms:60.0 ~accept_retry_ms:20.0 ()
  in
  let t = RT.create ~cfg ~scenario:Scenario.sysnet ~seed () in
  ignore (RT.await_leader t);
  (if period < infinity then
     let eng = RT.engine t in
     let rec arm () =
       ignore
         (Engine.schedule eng ~delay:period (fun () ->
              (match RT.leader t with
              | Some l ->
                RT.crash_replica t l;
                ignore (Engine.schedule eng ~delay:30.0 (fun () -> RT.recover_replica t l))
              | None -> ());
              arm ()))
     in
     arm ());
  let txns = 400 in
  let reqs_per_txn = 3 in
  let results =
    RT.run_closed_loop_ops t ~max_sim_ms:3_600_000.0 ~clients:2
      ~requests_per_client:(txns / 2 * (reqs_per_txn + 1))
      ~gen:(Experiment.txn_gen Experiment.Optimized ~reqs_per_txn ~txns:(txns / 2))
  in
  (* Commit outcomes: aborted commits are the §3.6 cost of churn. *)
  let commits, aborted =
    List.fold_left
      (fun (c, a) r ->
        match r.RT.rec_rtype with
        | Txn_commit _ -> (c + 1, if r.RT.rec_status = Ok then a else a + 1)
        | _ -> (c, a))
      (0, 0) results.records
  in
  if commits = 0 then 0.0 else Float.of_int aborted /. Float.of_int commits

let run_leader_switch ~quick () =
  let trials = if quick then 3 else 8 in
  (* Periods stay above the election time (~25 ms here); below it the
     system cannot complete a single round between switches — the extreme
     form of §3.6's stability requirement. *)
  let periods =
    [ (infinity, "none"); (200.0, "200"); (80.0, "80"); (40.0, "40") ]
  in
  let table =
    T.create
      ~columns:
        [ ("Switch period (ms)", T.Right); ("Write (req/s)", T.Right);
          ("Read (req/s)", T.Right); ("Txn aborts (%)", T.Right) ]
  in
  List.iter
    (fun (period, label) ->
      let tput rtype =
        let acc = Stats.create () in
        for seed = 1 to trials do
          Stats.add acc (churn_trial ~rtype ~period ~seed)
        done;
        acc
      in
      let aborts = Stats.create () in
      for seed = 1 to trials do
        Stats.add aborts (txn_churn_trial ~period ~seed)
      done;
      T.add_row table
        [ label; Experiment.pp_tput (tput Write); Experiment.pp_tput (tput Read);
          T.cell_f ~decimals:1 (Stats.mean aborts *. 100.0) ])
    periods;
  print_string (T.render table);
  print_endline
    "Expected shape (§3.6): throughput of every class degrades with churn, and\n\
     T-Paxos additionally aborts the transactions cut by a switch — it needs\n\
     the longest stable-leader window, X-Paxos the next longest."

(* ------------------------------------------------------------------ *)
(* State-size ablation (§3.3): write RRT as the service state grows,
   under full-state, delta and witness shipping, over a 1 Gb/s LAN. *)

let state_size_trial ~ship ~size ~seed =
  let cfg = Grid_paxos.Config.make ~n:3 ~ship () in
  let t = RT.create ~cfg ~scenario:Scenario.sysnet ~seed () in
  Network.set_sizer (RT.network t) msg_size;
  Network.set_bandwidth (RT.network t) 125_000.0 (* 1 Gb/s in bytes/ms *);
  let results =
    RT.run_closed_loop_ops t ~clients:1 ~requests_per_client:20
      ~gen:(fun ~client:_ () ->
        Some (Grid_runtime.Runtime.Do (Noop.Noop_sized_write size)))
  in
  let lats = RT.latencies results in
  (* Skip the first write: it legitimately ships the newly-grown padding
     under every mode. *)
  let tail = Array.sub lats 1 (Array.length lats - 1) in
  Array.fold_left ( +. ) 0.0 tail /. Float.of_int (Array.length tail)

let run_state_size ~quick () =
  let trials = if quick then 4 else 15 in
  let sizes = [ 16; 1024; 16_384; 131_072 ] in
  let table =
    T.create
      ~columns:
        [ ("State size (B)", T.Right); ("Full (ms)", T.Right); ("Delta (ms)", T.Right);
          ("Witness (ms)", T.Right) ]
  in
  List.iter
    (fun size ->
      let mean ship =
        let acc = Stats.create () in
        for seed = 1 to trials do
          Stats.add acc (state_size_trial ~ship ~size ~seed)
        done;
        Stats.mean acc
      in
      T.add_row table
        [ string_of_int size; T.cell_f (mean `Full); T.cell_f (mean `Delta);
          T.cell_f (mean `Witness) ])
    sizes;
  print_string (T.render table);
  print_endline
    "Expected shape (§3.3): full-state shipping degrades with state size; the\n\
     delta and witness encodings keep the write RRT flat — 'the overhead of\n\
     transferring service state can usually be made small'."

(* ------------------------------------------------------------------ *)
(* t = 2 and latency variance (§4.3): with 5 replicas on the WAN, write
   latency barely moves (the leader still waits for the fastest majority)
   while X-Paxos reads degrade as client-link variance grows, because a
   read needs confirms routed through more distant replicas. *)

let run_t2 ~quick () =
  let trials = if quick then 6 else 20 in
  let reqs = 20 in
  let table =
    T.create
      ~columns:
        [ ("Replicas", T.Right); ("Link cv", T.Right); ("Read (ms)", T.Right);
          ("Write (ms)", T.Right); ("Original (ms)", T.Right) ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun cv ->
          let scenario = Scenario.with_cv (Scenario.with_n Scenario.wan n) cv in
          let mean rtype =
            Stats.mean (Experiment.rrt ~scenario ~rtype ~trials ~reqs ())
          in
          T.add_row table
            [ string_of_int n; Printf.sprintf "%.2f" cv; T.cell_f (mean Read);
              T.cell_f (mean Write); T.cell_f (mean Original) ])
        [ 0.02; 0.10; 0.25 ];
      T.add_rule table)
    [ 3; 5 ];
  print_string (T.render table);
  print_endline
    "Expected shape (§4.3): going from t=1 to t=2 barely moves the basic\n\
     protocol's write latency, while X-Paxos reads worsen with replica count\n\
     and variance — the client must reach a larger confirm majority."

let run ~quick ~only =
  let maybe id title f =
    if only = None || only = Some id then begin
      Experiment.section (Printf.sprintf "%s — %s" id title);
      f ()
    end
  in
  maybe "abl-leader-switch" "leader-switch sensitivity (§3.6)" (run_leader_switch ~quick);
  maybe "abl-state-size" "state-size and shipping mode (§3.3)" (run_state_size ~quick);
  maybe "abl-t2" "t=2 and WAN latency variance (§4.3)" (run_t2 ~quick)
