(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (§4) plus the ablations listed in DESIGN.md.

     dune exec bench/main.exe                 # everything, full trials
     dune exec bench/main.exe -- --quick      # CI-speed pass
     dune exec bench/main.exe -- --only fig5  # one experiment
     dune exec bench/main.exe -- --list       # experiment ids *)

let experiments =
  [
    ("rrt-sysnet", "RRT on the Sysnet cluster (§4.1 text)");
    ("rrt-princeton", "RRT Berkeley → Princeton (§4.1 text)");
    ("rrt-wan", "RRT on the WAN configuration (§4.1 text)");
    ("reads", "Read-path RRT: basic vs X-Paxos vs leased (§3.4 + leases)");
    ("fig5", "Sysnet throughput, 1–16 clients (Figure 5)");
    ("fig6", "Sysnet throughput, 8–128 clients (Figure 6)");
    ("fig7", "Berkeley → Princeton throughput (Figure 7)");
    ("fig8", "WAN throughput (Figure 8)");
    ("throughput", "Figures 5–8 in one pass (fills BENCH_throughput.json)");
    ("table1", "Transaction response time (Table 1)");
    ("fig9a", "Transaction throughput, 3 req/txn (Figure 9a)");
    ("fig9b", "Transaction throughput, 5 req/txn (Figure 9b)");
    ("txn-wan", "Transaction response time across the WAN (ours)");
    ("txn", "Table 1 + Figures 9a/9b + txn-wan in one pass (fills BENCH_txn.json)");
    ("abl-leader-switch", "Leader-switch sensitivity (§3.6)");
    ("abl-state-size", "State size × shipping mode (§3.3)");
    ("abl-t2", "t=2 replicas and WAN variance (§4.3)");
    ("msg-complexity", "Wire messages per request vs analysis (§3.3–3.5)");
    ("wire", "Wire-codec versions: ns/msg and bytes/request, V1 vs V2 (ours)");
    ("openloop", "Median latency vs offered load, open loop (ours)");
    ("overload", "Goodput vs offered load under admission control (ours)");
    ("shard", "Aggregate throughput vs shard count (ours)");
    ("xshard", "Cross-shard 2PC commit vs single-shard transactions (ours)");
    ("reshard", "Client-visible latency across a live shard split (ours)");
    ("semi-passive", "Semi-passive replication baseline (§5, ours)");
    ("obs", "Introspection plane overhead: tracing off vs on (ours)");
    ("micro", "Data-structure microbenchmarks");
  ]

let run_all ~quick ~only ~sweep =
  (match only with
  | Some id when not (List.mem_assoc id experiments) ->
    Printf.eprintf "unknown experiment %S; try --list\n" id;
    exit 1
  | _ -> ());
  Printf.printf
    "Replicating Nondeterministic Services on Grid Environments (HPDC 2006)\n\
     benchmark harness — %s run%s\n"
    (if quick then "quick" else "full")
    (match only with Some id -> Printf.sprintf ", experiment %s" id | None -> "");
  Bench_rrt.run ~quick ~only;
  Bench_reads.run ~quick ~only;
  Bench_throughput.run ~sweep ~quick ~only;
  Bench_txn.run ~quick ~only;
  Bench_ablation.run ~quick ~only;
  Bench_messages.run ~quick ~only;
  Bench_wire.run ~quick ~only;
  Bench_openloop.run ~quick ~only;
  Bench_overload.run ~quick ~only;
  Bench_shard.run ~quick ~only;
  Bench_xshard.run ~quick ~only;
  Bench_reshard.run ~quick ~only;
  Bench_semi_passive.run ~quick ~only;
  Bench_obs.run ~quick ~only;
  Bench_micro.run ~quick ~only;
  print_newline ();
  Report.flush ()

open Cmdliner

let quick =
  let doc = "Fewer trials per experiment (CI-speed)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let only =
  let doc = "Run only the experiment with this id (see --list)." in
  Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc)

let list_flag =
  let doc = "List experiment ids and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let sweep =
  let doc =
    "Extra sweep axes for the throughput family (comma-separated from: \
     batch, state), e.g. --sweep batch,state. Runs with the throughput \
     experiments and lands in BENCH_throughput.json."
  in
  Arg.(value & opt (list string) [] & info [ "sweep" ] ~docv:"AXES" ~doc)

let json_dir =
  let doc =
    "Also write machine-readable BENCH_<id>.json telemetry (n/mean/ci99/p50/p99 \
     and raw samples per config) into $(docv)."
  in
  Arg.(value & opt (some dir) None & info [ "json-dir" ] ~docv:"DIR" ~doc)

let main quick only sweep list_flag json_dir =
  if list_flag then
    List.iter (fun (id, d) -> Printf.printf "%-18s %s\n" id d) experiments
  else begin
    (match json_dir with Some dir -> Report.enable ~dir | None -> ());
    run_all ~quick ~only ~sweep
  end

let cmd =
  let doc = "Regenerate the tables and figures of the paper's evaluation" in
  let info = Cmd.info "grid-replication-bench" ~doc in
  Cmd.v info Term.(const main $ quick $ only $ sweep $ list_flag $ json_dir)

let () = exit (Cmd.eval cmd)
