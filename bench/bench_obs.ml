(* Introspection overhead: the identical closed-loop workload with the
   tracing plane off vs on. The simulator is deterministic, so the
   simulated latencies are byte-identical either way — the cost of the
   plane is host CPU time spent recording spans into the ring. Two
   traced configurations are measured: the deployed default (the
   flight recorder's 2048-event ring, always on in [tcp_node]) and the
   full-trace capacity used for debugging ([trace:true], 64k ring).
   Each trial times one run (create + closed loop) with the CPU clock;
   runs are long enough that the one-time trace-buffer allocation is
   amortized and the marginal per-request cost dominates, which is what
   a long-lived server pays. The full-trace configuration additionally
   pays for its 64k-slot buffer every run — a fixed debugging-mode cost
   that keeps amortizing as runs get longer — so the deployed plane
   (flight recorder) is the configuration the <5% overhead target is
   about. With --json-dir the per-trial samples land in
   BENCH_obs.json. *)

module Config = Grid_paxos.Config
module Runtime = Grid_runtime.Runtime
module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module Span = Grid_obs.Span
module T = Grid_util.Text_table
module Noop = Grid_services.Noop

module RT = Runtime.Make (Noop)

let clients = 4
let flight_capacity = 2048 (* tcp_node's always-on flight recorder *)

type cfg = Off | Flight | Full

let cfg_name = function
  | Off -> "trace off"
  | Flight -> Printf.sprintf "flight recorder (cap %d)" flight_capacity
  | Full -> "full trace (cap 65536)"

(* One timed run: [clients] closed-loop clients, [reqs] writes each.
   Returns (wall ms, spans recorded). The watchdogs run in every
   configuration — they are always on — so the deltas isolate the
   tracing plane itself. *)
let run_trial ~cfg:c ~seed ~reqs =
  let cfg = Config.default ~n:3 in
  let trace = c <> Off in
  let trace_capacity = match c with Flight -> Some flight_capacity | _ -> None in
  let t0 = Sys.time () in
  let t = RT.create ~cfg ~scenario:Scenario.sysnet ~seed ~trace ?trace_capacity () in
  let results =
    RT.run_closed_loop_ops t ~clients ~requests_per_client:reqs
      ~gen:(fun ~client:_ () -> Some (Runtime.Do Noop.Noop_write))
  in
  let elapsed = (Sys.time () -. t0) *. 1000.0 in
  if Array.length (RT.latencies results) <> clients * reqs then
    failwith "bench_obs: closed loop did not complete";
  (elapsed, Span.Recorder.length (RT.obs t))

(* The process slows down slightly but monotonically as the major heap
   grows, so measuring all off-trials and then all on-trials would book
   that drift as tracing overhead. Interleave the configurations within
   every seed instead, rotating which goes first, so drift cancels. *)
let measure ~trials ~reqs =
  let configs = [| Off; Flight; Full |] in
  Array.iter (fun c -> ignore (run_trial ~cfg:c ~seed:0 ~reqs)) configs;
  let accs = Array.map (fun _ -> Stats.create ()) configs in
  let spans = Array.map (fun _ -> 0) configs in
  for seed = 1 to trials do
    for k = 0 to Array.length configs - 1 do
      let j = (seed + k) mod Array.length configs in
      let ms, n = run_trial ~cfg:configs.(j) ~seed ~reqs in
      Stats.add accs.(j) ms;
      spans.(j) <- n;
      Report.sample ~experiment:"obs"
        ~config:(cfg_name configs.(j) ^ " (ms/run)")
        ms
    done
  done;
  (configs, accs, spans)

let run ~quick ~only =
  if only = None || only = Some "obs" then begin
    Experiment.section
      "obs — introspection plane overhead, tracing off vs on (ours)";
    let trials = if quick then 6 else 16 in
    let reqs = if quick then 1_000 else 2_500 in
    let configs, accs, spans = measure ~trials ~reqs in
    let table =
      T.create
        ~columns:
          [ ("Tracing", T.Left); ("Wall ms/run", T.Right); ("99% CI (ms)", T.Right);
            ("Events kept", T.Right) ]
    in
    Array.iteri
      (fun j c ->
        T.add_row table
          [ cfg_name c; T.cell_f (Stats.mean accs.(j));
            T.cell_ci (Stats.confidence_interval ~confidence:0.99 accs.(j));
            string_of_int spans.(j) ])
      configs;
    print_string (T.render table);
    let base = Stats.mean accs.(0) in
    let overhead j = (Stats.mean accs.(j) -. base) /. base *. 100.0 in
    Report.sample ~experiment:"obs" ~config:"flight recorder overhead (pct)"
      (overhead 1);
    Report.sample ~experiment:"obs" ~config:"full trace overhead (pct)" (overhead 2);
    Printf.printf
      "tracing overhead on %d requests/run: %+.1f%% flight recorder, %+.1f%% full \
       trace\n%!"
      (clients * reqs) (overhead 1) (overhead 2)
  end
