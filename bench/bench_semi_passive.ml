(* Semi-passive replication vs the paper's protocol — the §5 comparison
   the paper leaves "uninvestigated".

   Both decide ⟨request, state⟩ tuples; they differ in how the executor
   is chosen: a stable elected leader (paper) vs a rotating ◇S
   coordinator (semi-passive). Failure-free write latency should tie
   (both pay one inter-replica round trip); fail-over differs — the
   rotating coordinator needs one round timeout, while the leader-based
   protocol pays suspicion + stability hold-down + prepare. *)

module Engine = Grid_sim.Engine
module Network = Grid_sim.Network
module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module T = Grid_util.Text_table
module Noop = Grid_services.Noop
module Client = Grid_paxos.Client
module SP = Grid_paxos.Semi_passive.Make (Noop)
open Grid_paxos.Types
module RT = Experiment.RT

(* Minimal simulator driver for the semi-passive engine plus one client. *)
type sp_cluster = {
  eng : Engine.t;
  net : msg Network.t;
  replicas : SP.t array;
  down : bool array;
}

let sp_create ~seed ~(scenario : Scenario.t) ~cfg =
  let eng = Engine.create () in
  let rng = Grid_util.Rng.of_int seed in
  let net = Network.create eng rng in
  let replicas = Array.init cfg.Grid_paxos.Config.n (fun i -> SP.create ~cfg ~id:i ~seed:(seed + i) ()) in
  let t = { eng; net; replicas; down = Array.make cfg.n false } in
  let rec dispatch i actions =
    List.iter
      (function
        | Send { dst; msg } -> Network.send net ~src:i ~dst msg
        | After { delay; timer } ->
          ignore
            (Engine.schedule eng ~delay (fun () ->
                 if not t.down.(i) then
                   dispatch i (SP.handle replicas.(i) ~now:(Engine.now eng) (Timer timer))))
        | Note _ -> ())
      actions
  in
  for i = 0 to cfg.n - 1 do
    Network.add_node net ~id:i ~recv_cost:scenario.replica_recv_cost
      ~send_cost:scenario.replica_send_cost (fun ~src msg ->
        if not t.down.(i) then
          dispatch i (SP.handle replicas.(i) ~now:(Engine.now eng) (Receive { src; msg })))
  done;
  for i = 0 to cfg.n - 1 do
    for j = 0 to cfg.n - 1 do
      if i <> j then Network.set_link net ~src:i ~dst:j (scenario.replica_link i j)
    done
  done;
  Array.iteri (fun i r -> dispatch i (SP.bootstrap r)) replicas;
  t

(* One closed-loop client against the semi-passive cluster; returns
   per-request latencies (ms). *)
let sp_client_run t ~(scenario : Scenario.t) ~count ~on_progress =
  let cfg_n = Array.length t.replicas in
  let client =
    Client.create ~id:(Grid_util.Ids.Client_id.of_int 0)
      ~replicas:(List.init cfg_n Fun.id) ~retry_ms:200.0 ()
  in
  let node = Client.node client in
  let latencies = ref [] in
  let sent_at = ref 0.0 in
  let remaining = ref count in
  let rec dispatch actions reply =
    List.iter
      (function
        | Send { dst; msg } -> Network.send t.net ~src:node ~dst msg
        | After { delay; timer } ->
          ignore
            (Engine.schedule t.eng ~delay (fun () ->
                 let actions, reply = Client.handle client ~now:(Engine.now t.eng) (Timer timer) in
                 dispatch actions reply))
        | Note _ -> ())
      actions;
    match reply with
    | Some _ ->
      latencies := (Engine.now t.eng -. !sent_at) :: !latencies;
      on_progress (Engine.now t.eng);
      decr remaining;
      if !remaining > 0 then submit ()
    | None -> ()
  and submit () =
    sent_at := Engine.now t.eng;
    match Client.submit client Write ~payload:(Noop.encode_op Noop.Noop_write) with
    | `Sent actions -> dispatch actions None
    | `Busy -> ()
  in
  Network.add_node t.net ~id:node ~recv_cost:scenario.client_recv_cost
    ~send_cost:scenario.client_send_cost (fun ~src msg ->
      let actions, reply = Client.handle client ~now:(Engine.now t.eng) (Receive { src; msg }) in
      dispatch actions reply);
  for r = 0 to cfg_n - 1 do
    Network.set_link_sym t.net node r (scenario.client_link r)
  done;
  submit ();
  let deadline = Engine.now t.eng +. 120_000.0 in
  let rec drive () =
    if !remaining > 0 && Engine.now t.eng < deadline && Engine.step t.eng then drive ()
  in
  drive ();
  Array.of_list (List.rev !latencies)

let sp_cfg () = Grid_paxos.Config.make ~n:3 ~suspicion_ms:100.0 ()

(* Failure-free write RRT under semi-passive. *)
let sp_rrt ~seed =
  let scenario = Scenario.sysnet in
  let t = sp_create ~seed ~scenario ~cfg:(sp_cfg ()) in
  let lats = sp_client_run t ~scenario ~count:20 ~on_progress:(fun _ -> ()) in
  Array.fold_left ( +. ) 0.0 lats /. Float.of_int (Array.length lats)

(* Fail-over gap: crash the executor mid-run; the gap is the longest
   inter-reply interval. *)
let sp_failover_gap ~seed =
  let scenario = Scenario.sysnet in
  let t = sp_create ~seed ~scenario ~cfg:(sp_cfg ()) in
  let last = ref 0.0 and gap = ref 0.0 in
  ignore
    (Engine.schedule t.eng ~delay:10.0 (fun () ->
         t.down.(0) <- true;
         Network.crash t.net 0));
  let _ =
    sp_client_run t ~scenario ~count:40 ~on_progress:(fun now ->
        if now -. !last > !gap then gap := now -. !last;
        last := now)
  in
  !gap

(* The paper's protocol under an identical crash (same suspicion
   timeout), using the standard runtime. *)
let basic_failover_gap ~seed =
  let cfg = Grid_paxos.Config.make ~n:3 ~suspicion_ms:100.0 ~stability_ms:30.0 () in
  let t = RT.create ~cfg ~scenario:Scenario.sysnet ~seed () in
  ignore (RT.await_leader t);
  ignore
    (Engine.schedule (RT.engine t) ~delay:10.0 (fun () -> RT.crash_replica t 0));
  let results =
    RT.run_closed_loop_ops t ~clients:1 ~requests_per_client:40
      ~gen:(fun ~client:_ () -> Some (Grid_runtime.Runtime.Do Noop.Noop_write))
  in
  (* The request in flight during the switch absorbs the whole fail-over
     gap, so the maximum latency is the gap. *)
  List.fold_left (fun acc r -> Float.max acc r.RT.rec_latency) 0.0 results.records

let run ~quick ~only =
  if only = None || only = Some "semi-passive" then begin
    Experiment.section
      "semi-passive — rotating-coordinator baseline vs the paper's protocol (§5)";
    let trials = if quick then 5 else 15 in
    let mean f =
      let acc = Stats.create () in
      for seed = 1 to trials do
        Stats.add acc (f ~seed)
      done;
      acc
    in
    let sp = mean sp_rrt in
    let basic =
      mean (fun ~seed ->
          Experiment.rrt_trial ~scenario:Scenario.sysnet ~rtype:Write ~reqs:20 ~seed ())
    in
    let table =
      T.create
        ~columns:[ ("Metric", T.Left); ("Paper protocol", T.Right); ("Semi-passive", T.Right) ]
    in
    T.add_row table
      [ "write RRT, failure-free (ms)"; Experiment.pp_mean_ci basic; Experiment.pp_mean_ci sp ];
    let sp_gap = mean sp_failover_gap in
    let basic_gap = mean basic_failover_gap in
    T.add_row table
      [ "fail-over gap after executor crash (ms)"; Experiment.pp_mean_ci basic_gap;
        Experiment.pp_mean_ci sp_gap ];
    print_string (T.render table);
    print_endline
      "Both protocols decide <request, state> tuples, so failure-free write\n\
       latency ties (one inter-replica round trip). Fail-over differs: the\n\
       rotating coordinator resumes after one round timeout, while the\n\
       leader-based protocol pays suspicion + stability hold-down + prepare —\n\
       the price of the stable leader that makes X-Paxos and T-Paxos possible."
  end
