(* Service throughput figures:
     Figure 5 — Sysnet, 1..16 clients;
     Figure 6 — Sysnet, 8..128 clients (peak at 32–64);
     Figure 7 — Berkeley→Princeton, 1..16 clients (all curves close);
     Figure 8 — WAN, 1..16 clients (X-Paxos beats basic for reads).
   Plus, behind [--sweep batch,state]: a batch-size × state-size sweep
   locating the delta-vs-full shipping crossover per service. *)

module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module T = Grid_util.Text_table
module Network = Grid_sim.Network
module Runtime = Grid_runtime.Runtime
module Noop = Grid_services.Noop
module Kv = Grid_services.Kv_store
open Grid_paxos.Types

let run_figure ~quick ~id ~scenario ~client_counts ~total () =
  let trials = if quick then 3 else 10 in
  let table =
    T.create
      ~columns:
        [ ("Clients", T.Right); ("Read (req/s)", T.Right); ("Write (req/s)", T.Right);
          ("Original (req/s)", T.Right) ]
  in
  List.iter
    (fun clients ->
      let measure rtype =
        (* The whole figure family lands in one BENCH_throughput.json;
           the figure id is part of the config label. *)
        let label = Format.asprintf "%s %a c=%d" id pp_rtype rtype clients in
        Experiment.throughput ~report:("throughput", label) ~scenario ~rtype ~clients ~total
          ~trials ()
      in
      let read = measure Read in
      let write = measure Write in
      let original = measure Original in
      T.add_row table
        [ string_of_int clients; Experiment.pp_tput read; Experiment.pp_tput write;
          Experiment.pp_tput original ])
    client_counts;
  print_string (T.render table)

(* ------------------------------------------------------------------ *)
(* Batch × state sweep (ROADMAP item 1 down payment): closed-loop write
   throughput at each (max_batch, state size) point under `Full and
   `Delta shipping, on a 1 Gb/s Sysnet LAN with sized messages so the
   shipped state actually occupies the wire. Larger batches amortize one
   state ship over the whole folded batch, so the state size at which
   delta shipping starts to win moves right as the batch grows. *)

module RTK = Grid_runtime.Runtime.Make (Kv)

let sweep_clients = 16

let sweep_trial_noop ~ship ~max_batch ~size ~total ~seed =
  let cfg = Grid_paxos.Config.make ~n:3 ~ship ~max_batch () in
  let t = Experiment.RT.create ~cfg ~scenario:Scenario.sysnet ~seed () in
  Network.set_sizer (Experiment.RT.network t) msg_size;
  Network.set_bandwidth (Experiment.RT.network t) 125_000.0 (* 1 Gb/s *);
  let results =
    Experiment.RT.run_closed_loop_ops t ~max_sim_ms:3_600_000.0
      ~clients:sweep_clients
      ~requests_per_client:(Stdlib.max 1 (total / sweep_clients))
      ~gen:(fun ~client:_ () -> Some (Runtime.Do (Noop.Noop_sized_write size)))
  in
  Experiment.RT.throughput_rps results

(* The KV variant grows the store once (a padding key written by client
   0's first request) and then measures small puts: full shipping pays
   for the whole store on every commit, delta ships just the put. *)
let sweep_trial_kv ~ship ~max_batch ~size ~total ~seed =
  let cfg = Grid_paxos.Config.make ~n:3 ~ship ~max_batch () in
  let t = RTK.create ~cfg ~scenario:Scenario.sysnet ~seed () in
  Network.set_sizer (RTK.network t) msg_size;
  Network.set_bandwidth (RTK.network t) 125_000.0;
  let results =
    RTK.run_closed_loop_ops t ~max_sim_ms:3_600_000.0 ~clients:sweep_clients
      ~requests_per_client:(Stdlib.max 1 (total / sweep_clients))
      ~gen:(fun ~client ->
        let n = ref 0 in
        fun () ->
          incr n;
          if client = 0 && !n = 1 then
            Some
              (Runtime.Do (Kv.Put { key = "pad"; value = String.make size 'p' }))
          else
            Some
              (Runtime.Do
                 (Kv.Put { key = Printf.sprintf "k%d" client; value = "v" })))
  in
  RTK.throughput_rps results

let run_sweep ~quick ~axes () =
  let batches = if List.mem "batch" axes then [ 1; 4; 16 ] else [ 4 ] in
  let sizes =
    if List.mem "state" axes then [ 16; 1_024; 16_384; 131_072 ] else [ 1_024 ]
  in
  let trials = if quick then 2 else 5 in
  let total = if quick then 192 else 480 in
  let services =
    [ ("noop", sweep_trial_noop); ("kv", sweep_trial_kv) ]
  in
  List.iter
    (fun (svc, trial) ->
      let table =
        T.create
          ~columns:
            [ ("Batch", T.Right); ("State (B)", T.Right);
              ("Full (req/s)", T.Right); ("Delta (req/s)", T.Right);
              ("Delta/Full", T.Right) ]
      in
      let crossovers = ref [] in
      List.iter
        (fun max_batch ->
          let cross = ref None in
          List.iter
            (fun size ->
              let mean ship =
                let acc = Stats.create () in
                for seed = 1 to trials do
                  let v = trial ~ship ~max_batch ~size ~total ~seed in
                  Stats.add acc v;
                  Report.sample ~experiment:"throughput"
                    ~config:
                      (Format.asprintf "sweep %s %s batch=%d state=%d" svc
                         (match ship with `Full -> "full" | _ -> "delta")
                         max_batch size)
                    v
                done;
                Stats.mean acc
              in
              let full = mean `Full and delta = mean `Delta in
              (* 2% margin so trial noise at tiny states doesn't count. *)
              if delta > 1.02 *. full && !cross = None then cross := Some size;
              T.add_row table
                [ string_of_int max_batch; string_of_int size;
                  Printf.sprintf "%.0f" full; Printf.sprintf "%.0f" delta;
                  Printf.sprintf "%.2fx" (delta /. full) ])
            sizes;
          crossovers := (max_batch, !cross) :: !crossovers)
        batches;
      Printf.printf "service %s:\n" svc;
      print_string (T.render table);
      List.iter
        (fun (b, c) ->
          Printf.printf "  batch=%-2d delta overtakes full at state ≥ %s\n" b
            (match c with
            | Some s -> Printf.sprintf "%d B" s
            | None -> "(never in range)"))
        (List.rev !crossovers))
    services;
  print_endline
    "Expected shape: delta shipping wins once the state outgrows the wire\n\
     budget per commit; batching amortizes one full-state ship across the\n\
     folded batch, pushing the crossover toward larger states."

let run ~sweep ~quick ~only =
  (* [--only throughput] runs the whole figure family in one process, so
     BENCH_throughput.json holds every figure's samples. *)
  let only = if only = Some "throughput" then None else only in
  let maybe id title f =
    if only = None || only = Some id then begin
      Experiment.section (Printf.sprintf "%s — %s" id title);
      f ()
    end
  in
  maybe "fig5" "Sysnet service throughput, 1–16 clients (Figure 5)" (fun () ->
      run_figure ~quick ~id:"fig5" ~scenario:Scenario.sysnet
        ~client_counts:[ 1; 2; 4; 8; 16 ] ~total:1000 ();
      print_endline
        "Paper shape: original > read > write; reads at least 13% above writes.");
  maybe "fig6" "Sysnet service throughput, 8–128 clients (Figure 6)" (fun () ->
      run_figure ~quick ~id:"fig6" ~scenario:Scenario.sysnet
        ~client_counts:[ 8; 16; 32; 64; 128 ] ~total:(if quick then 1024 else 2048) ();
      print_endline
        "Paper shape: basic protocol and X-Paxos peak between 32 and 64 clients.");
  maybe "fig7" "Berkeley → Princeton throughput (Figure 7)" (fun () ->
      run_figure ~quick ~id:"fig7" ~scenario:Scenario.princeton
        ~client_counts:[ 1; 2; 4; 8; 16 ] ~total:(if quick then 200 else 1000) ();
      print_endline
        "Paper shape: read ≈ write ≈ original — replica coordination is cheap\n\
         next to the client WAN, so replication is almost free here.");
  maybe "fig8" "WAN (leader UIUC, replicas Utah/UT-Austin) throughput (Figure 8)"
    (fun () ->
      run_figure ~quick ~id:"fig8" ~scenario:Scenario.wan
        ~client_counts:[ 1; 2; 4; 8; 16 ] ~total:(if quick then 200 else 1000) ();
      print_endline
        "Paper shape: original > read > write, with X-Paxos clearly beating the\n\
         basic protocol when replicas are spread across sites.");
  if sweep <> [] then
    maybe "sweep" "batch-size × state-size sweep, delta vs full shipping (ours)"
      (run_sweep ~quick ~axes:sweep)
