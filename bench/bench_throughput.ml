(* Service throughput figures:
     Figure 5 — Sysnet, 1..16 clients;
     Figure 6 — Sysnet, 8..128 clients (peak at 32–64);
     Figure 7 — Berkeley→Princeton, 1..16 clients (all curves close);
     Figure 8 — WAN, 1..16 clients (X-Paxos beats basic for reads). *)

module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module T = Grid_util.Text_table
open Grid_paxos.Types

let run_figure ~quick ~id ~scenario ~client_counts ~total () =
  let trials = if quick then 3 else 10 in
  let table =
    T.create
      ~columns:
        [ ("Clients", T.Right); ("Read (req/s)", T.Right); ("Write (req/s)", T.Right);
          ("Original (req/s)", T.Right) ]
  in
  List.iter
    (fun clients ->
      let measure rtype =
        (* The whole figure family lands in one BENCH_throughput.json;
           the figure id is part of the config label. *)
        let label = Format.asprintf "%s %a c=%d" id pp_rtype rtype clients in
        Experiment.throughput ~report:("throughput", label) ~scenario ~rtype ~clients ~total
          ~trials ()
      in
      let read = measure Read in
      let write = measure Write in
      let original = measure Original in
      T.add_row table
        [ string_of_int clients; Experiment.pp_tput read; Experiment.pp_tput write;
          Experiment.pp_tput original ])
    client_counts;
  print_string (T.render table)

let run ~quick ~only =
  (* [--only throughput] runs the whole figure family in one process, so
     BENCH_throughput.json holds every figure's samples. *)
  let only = if only = Some "throughput" then None else only in
  let maybe id title f =
    if only = None || only = Some id then begin
      Experiment.section (Printf.sprintf "%s — %s" id title);
      f ()
    end
  in
  maybe "fig5" "Sysnet service throughput, 1–16 clients (Figure 5)" (fun () ->
      run_figure ~quick ~id:"fig5" ~scenario:Scenario.sysnet
        ~client_counts:[ 1; 2; 4; 8; 16 ] ~total:1000 ();
      print_endline
        "Paper shape: original > read > write; reads at least 13% above writes.");
  maybe "fig6" "Sysnet service throughput, 8–128 clients (Figure 6)" (fun () ->
      run_figure ~quick ~id:"fig6" ~scenario:Scenario.sysnet
        ~client_counts:[ 8; 16; 32; 64; 128 ] ~total:(if quick then 1024 else 2048) ();
      print_endline
        "Paper shape: basic protocol and X-Paxos peak between 32 and 64 clients.");
  maybe "fig7" "Berkeley → Princeton throughput (Figure 7)" (fun () ->
      run_figure ~quick ~id:"fig7" ~scenario:Scenario.princeton
        ~client_counts:[ 1; 2; 4; 8; 16 ] ~total:(if quick then 200 else 1000) ();
      print_endline
        "Paper shape: read ≈ write ≈ original — replica coordination is cheap\n\
         next to the client WAN, so replication is almost free here.");
  maybe "fig8" "WAN (leader UIUC, replicas Utah/UT-Austin) throughput (Figure 8)"
    (fun () ->
      run_figure ~quick ~id:"fig8" ~scenario:Scenario.wan
        ~client_counts:[ 1; 2; 4; 8; 16 ] ~total:(if quick then 200 else 1000) ();
      print_endline
        "Paper shape: original > read > write, with X-Paxos clearly beating the\n\
         basic protocol when replicas are spread across sites.")
