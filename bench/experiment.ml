(* Shared experiment drivers for the benchmark harness: every table and
   figure runs the Noop evaluation service (the paper's empty method)
   through the simulator under one of the calibrated scenarios, repeating
   each measurement across seeds and reporting mean ± 99% CI exactly as
   the paper does. *)

module Config = Grid_paxos.Config
module Runtime = Grid_runtime.Runtime
module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module Noop = Grid_services.Noop
open Grid_paxos.Types

module RT = Grid_runtime.Runtime.Make (Noop)

(* The typed item each request class submits; encoding stays inside the
   runtime. *)
let noop_item rtype : Noop.op Runtime.item =
  match rtype with
  | Read -> Do Noop.Noop_read
  | Original -> Unreplicated Noop.Noop_write
  | _ -> Do Noop.Noop_write

(* One runtime per trial; the seed varies so trials see independent
   latency draws, like the paper's repeated samples. *)
let make_runtime ?(cfg_tweak = Fun.id) ~scenario ~seed () =
  let cfg = cfg_tweak (Config.default ~n:3) in
  RT.create ~cfg ~scenario ~seed ()

(* ------------------------------------------------------------------ *)
(* Response time: one client, [reqs] requests per trial; the trial's
   sample is the mean RRT (the paper's "20 requests in one sample"). *)

let rrt_trial ?cfg_tweak ~scenario ~rtype ~reqs ~seed () =
  let t = make_runtime ?cfg_tweak ~scenario ~seed () in
  let results =
    RT.run_closed_loop_ops t ~clients:1 ~requests_per_client:reqs
      ~gen:(fun ~client:_ () -> Some (noop_item rtype))
  in
  let lats = RT.latencies results in
  Array.fold_left ( +. ) 0.0 lats /. Float.of_int (Array.length lats)

(* [report = (experiment, config)] also feeds the trial samples to
   {!Report} for the BENCH_*.json telemetry files. *)
let record report v =
  match report with
  | Some (experiment, config) -> Report.sample ~experiment ~config v
  | None -> ()

let rrt ?cfg_tweak ?report ~scenario ~rtype ~trials ~reqs () =
  let acc = Stats.create () in
  for seed = 1 to trials do
    let v = rrt_trial ?cfg_tweak ~scenario ~rtype ~reqs ~seed () in
    Stats.add acc v;
    record report v
  done;
  acc

(* ------------------------------------------------------------------ *)
(* Throughput: [clients] closed-loop clients, [total] requests split
   evenly (the paper's 1000/c); the sample is requests per second. *)

let throughput_trial ?cfg_tweak ~scenario ~rtype ~clients ~total ~seed () =
  let t = make_runtime ?cfg_tweak ~scenario ~seed () in
  let per_client = Stdlib.max 1 (total / clients) in
  let results =
    RT.run_closed_loop_ops t ~max_sim_ms:3_600_000.0 ~clients
      ~requests_per_client:per_client
      ~gen:(fun ~client:_ () -> Some (noop_item rtype))
  in
  RT.throughput_rps results

let throughput ?cfg_tweak ?report ~scenario ~rtype ~clients ~total ~trials () =
  let acc = Stats.create () in
  for seed = 1 to trials do
    let v = throughput_trial ?cfg_tweak ~scenario ~rtype ~clients ~total ~seed () in
    Stats.add acc v;
    record report v
  done;
  acc

(* ------------------------------------------------------------------ *)
(* Transactions (§4.2). Three modes on the Sysnet cluster:
   - [`Read_write k]: unoptimized; (k-1)/3*... the paper's mixes are
     3-request = 2 reads + 1 write and 5-request = 3 reads + 2 writes,
     each followed by a commit coordinated with the basic protocol;
   - [`Write_only k]: k writes + commit, all basic protocol;
   - [`Optimized k]: k T-Paxos ops + T-Paxos commit. *)

type txn_mode = Read_write | Write_only | Optimized

let txn_requests mode ~reqs_per_txn ~txn_index : Noop.op Runtime.item list =
  match mode with
  | Read_write ->
    let writes = reqs_per_txn / 2 in
    let reads = reqs_per_txn - writes in
    List.init reads (fun _ -> noop_item Read)
    @ List.init writes (fun _ -> noop_item Write)
    @ [ noop_item Write ]  (* the commit coordinates too *)
  | Write_only ->
    List.init reqs_per_txn (fun _ -> noop_item Write)
    @ [ noop_item Write ]
  | Optimized ->
    let tid = txn_index + 1 in
    List.init reqs_per_txn (fun _ -> Runtime.In_txn (tid, Noop.Noop_write))
    @ [ Runtime.Commit_txn { tid; ops = reqs_per_txn } ]

(* A client session of [txns] back-to-back transactions. *)
let txn_gen mode ~reqs_per_txn ~txns ~client:_ =
  let txn = ref 0 and step = ref 0 in
  let current = ref (txn_requests mode ~reqs_per_txn ~txn_index:0) in
  fun () ->
    if !txn >= txns then None
    else begin
      match !current with
      | item :: rest ->
        current := rest;
        incr step;
        Some item
      | [] ->
        incr txn;
        if !txn >= txns then None
        else begin
          current := txn_requests mode ~reqs_per_txn ~txn_index:!txn;
          match !current with
          | item :: rest ->
            current := rest;
            Some item
          | [] -> None
        end
    end

(* Transaction response time: latency from first-op submission to commit
   reply = the sum of the group's request latencies (closed loop). *)
let txn_rrt_trial ?cfg_tweak ~scenario ~mode ~reqs_per_txn ~txns ~seed () =
  let t = make_runtime ?cfg_tweak ~scenario ~seed () in
  let group = reqs_per_txn + 1 in
  let results =
    RT.run_closed_loop_ops t ~clients:1 ~requests_per_client:(txns * group)
      ~gen:(txn_gen mode ~reqs_per_txn ~txns)
  in
  (* Group per-client-ordered latencies into transactions. *)
  let ordered =
    List.filter (fun r -> r.RT.rec_client = 0) results.records
    |> List.sort (fun a b -> Int.compare a.RT.rec_seq b.RT.rec_seq)
  in
  let acc = Stats.create () in
  let rec group_sums = function
    | [] -> ()
    | records ->
      let txn_records = List.filteri (fun i _ -> i < group) records in
      let rest = List.filteri (fun i _ -> i >= group) records in
      if List.length txn_records = group then
        Stats.add acc
          (List.fold_left (fun s r -> s +. r.RT.rec_latency) 0.0 txn_records);
      group_sums rest
  in
  group_sums ordered;
  Stats.mean acc

let txn_rrt ?cfg_tweak ?report ~scenario ~mode ~reqs_per_txn ~txns ~trials () =
  let acc = Stats.create () in
  for seed = 1 to trials do
    let v = txn_rrt_trial ?cfg_tweak ~scenario ~mode ~reqs_per_txn ~txns ~seed () in
    Stats.add acc v;
    record report v
  done;
  acc

(* Transaction throughput: committed transactions per second. *)
let txn_throughput_trial ?cfg_tweak ~scenario ~mode ~reqs_per_txn ~clients ~txns_total
    ~seed () =
  let t = make_runtime ?cfg_tweak ~scenario ~seed () in
  let group = reqs_per_txn + 1 in
  let txns = Stdlib.max 1 (txns_total / clients) in
  let results =
    RT.run_closed_loop_ops t ~max_sim_ms:3_600_000.0 ~clients
      ~requests_per_client:(txns * group)
      ~gen:(txn_gen mode ~reqs_per_txn ~txns)
  in
  let dur_ms = results.finished_at -. results.started_at in
  Float.of_int (clients * txns) /. dur_ms *. 1000.0

let txn_throughput ?cfg_tweak ?report ~scenario ~mode ~reqs_per_txn ~clients ~txns_total
    ~trials () =
  let acc = Stats.create () in
  for seed = 1 to trials do
    let v =
      txn_throughput_trial ?cfg_tweak ~scenario ~mode ~reqs_per_txn ~clients ~txns_total
        ~seed ()
    in
    Stats.add acc v;
    record report v
  done;
  acc

(* ------------------------------------------------------------------ *)
(* Shared percentile helper for the open-loop sweeps: [nan] flags a trial
   that produced no latencies (the caller reports it as dropped instead
   of silently averaging over fewer trials). *)

let percentile_or_nan xs p = if Array.length xs = 0 then nan else Stats.percentile xs p

(* ------------------------------------------------------------------ *)
(* Rendering helpers *)

let pp_mean_ci acc =
  Printf.sprintf "%.3f \xc2\xb1%.3f" (Stats.mean acc)
    (Stats.confidence_interval ~confidence:0.99 acc)

let pp_tput acc =
  Printf.sprintf "%.0f \xc2\xb1%.0f" (Stats.mean acc)
    (Stats.confidence_interval ~confidence:0.99 acc)

let section title =
  Printf.printf "\n=== %s ===\n%!" title
