(* Overload control (ours): goodput vs offered load when the leader
   bounds its admission window. Without admission control an open-loop
   overload grows the leader queue without bound and latency diverges;
   with [max_inflight]/[max_queue] set the leader sheds the excess with
   [Overloaded] pushback and goodput saturates at the service capacity
   instead of collapsing past the knee.

   Arrivals are driven through the session pool (Session.Make), so a
   single simulation sustains the 10^5+ concurrent backed-off clients an
   overloaded open loop accumulates. *)

module Config = Grid_paxos.Config
module Scenario = Grid_runtime.Scenario
module T = Grid_util.Text_table
module Noop = Grid_services.Noop

module OL = Grid_runtime.Workload.Make (Noop)

type point = {
  goodput_rps : float;
  shed : int;
  p99_ms : float;
  dropped : int;  (* arrivals with no idle session *)
  peak_inflight : int;
}

let trial ~seed ~rps ~duration_ms ~max_inflight ~max_queue =
  (* A per-request execution cost caps the service at ~5k writes/s, so
     the sweep crosses a real capacity knee well below the rate at which
     per-message CPU would saturate the replicas (batching would
     otherwise push the noop write capacity past every rate here). *)
  let cfg =
    Config.make ~base:(Config.default ~n:3) ~execution_cost_ms:0.2
      ~max_inflight ~max_queue ()
  in
  let t = OL.RT.create ~cfg ~scenario:Scenario.sysnet ~seed () in
  ignore (OL.RT.await_leader t);
  let pool = OL.Sess.create t in
  (* Zero grace: goodput is completions inside the measurement window
     over the window, the open-loop convention; stragglers show up as
     [still_inflight], not as extra goodput. *)
  let r =
    OL.run_sessions pool ~seed:(seed + 100) ~rps ~duration_ms ~grace_ms:0.0
      ~item:(Grid_runtime.Runtime.Do Noop.Noop_write) ()
  in
  let shed = ref 0 in
  for i = 0 to (OL.RT.config t).n - 1 do
    let reads, writes = OL.RT.R.stats_shed (OL.RT.replica t i) in
    shed := !shed + reads + writes
  done;
  {
    goodput_rps = Float.of_int r.completed /. (duration_ms /. 1000.0);
    shed = !shed;
    p99_ms = Experiment.percentile_or_nan r.latencies_ms 99.0;
    dropped = r.dropped;
    peak_inflight = OL.Sess.peak_in_flight pool;
  }

let run ~quick ~only =
  if only = None || only = Some "overload" then begin
    Experiment.section
      "overload — goodput vs offered load with bounded admission (ours)";
    let duration_ms = if quick then 400.0 else 1000.0 in
    let trials = if quick then 1 else 3 in
    let rates =
      if quick then [ 2_000.0; 8_000.0; 24_000.0 ]
      else [ 2_000.0; 4_000.0; 8_000.0; 16_000.0; 32_000.0 ]
    in
    let max_inflight = 128 and max_queue = 256 in
    let table =
      T.create
        ~columns:
          [ ("Offered (req/s)", T.Right); ("Goodput (req/s)", T.Right);
            ("Shed", T.Right); ("Admitted p99 (ms)", T.Right);
            ("No-session drops", T.Right); ("Peak inflight", T.Right) ]
    in
    List.iter
      (fun rps ->
        let acc_good = Grid_util.Stats.create () in
        let acc_p99 = Grid_util.Stats.create () in
        let shed = ref 0 and dropped = ref 0 and peak = ref 0 in
        for seed = 1 to trials do
          let p = trial ~seed ~rps ~duration_ms ~max_inflight ~max_queue in
          Grid_util.Stats.add acc_good p.goodput_rps;
          if not (Float.is_nan p.p99_ms) then Grid_util.Stats.add acc_p99 p.p99_ms;
          shed := !shed + p.shed;
          dropped := !dropped + p.dropped;
          peak := Stdlib.max !peak p.peak_inflight;
          Report.sample ~experiment:"overload"
            ~config:(Printf.sprintf "goodput@offered=%.0f" rps)
            p.goodput_rps;
          if not (Float.is_nan p.p99_ms) then
            Report.sample ~experiment:"overload"
              ~config:(Printf.sprintf "p99_ms@offered=%.0f" rps)
              p.p99_ms
        done;
        T.add_row table
          [ Printf.sprintf "%.0f" rps;
            Printf.sprintf "%.0f" (Grid_util.Stats.mean acc_good);
            string_of_int !shed;
            T.cell_f (Grid_util.Stats.mean acc_p99);
            string_of_int !dropped; string_of_int !peak ])
      rates;
    print_string (T.render table);
    print_endline
      "Expected shape: goodput tracks the offered rate up to the write\n\
       saturation point, then flattens there while the leader sheds the\n\
       excess — bounded admitted p99 instead of a collapse past the knee."
  end
