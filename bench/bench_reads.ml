(* Read-path shootout (§3.4 + the leader-lease fast path): the same
   read-only workload answered three ways —

     basic  : reads coordinated like writes through the basic protocol
     xpaxos : the §3.4 confirm protocol (client broadcast + majority
              confirms, cost max(E, 2m))
     leased : leader-lease local reads — while the leader holds a
              majority lease it answers at cost E with zero protocol
              messages on the read's critical path (confirms still flow,
              but nothing waits for them)

   Run on the Sysnet cluster and the WAN configuration; with --json-dir
   the per-trial samples land in BENCH_reads.json. *)

module Scenario = Grid_runtime.Scenario
module Stats = Grid_util.Stats
module T = Grid_util.Text_table
open Grid_paxos.Types

(* One second covers a grant's round trip (leader heartbeat out, echoed
   anchor back) even at WAN latencies; shorter leases never establish
   there. *)
let lease_tweak c = Grid_paxos.Config.make ~base:c ~lease_ms:1000.0 ()

let run_one ~quick ~id (scenario : Scenario.t) =
  let trials = if quick then 8 else 40 in
  let reqs = 30 in
  let measure ?cfg_tweak label rtype =
    Experiment.rrt ?cfg_tweak
      ~report:(id, Printf.sprintf "%s %s" scenario.Scenario.name label)
      ~scenario ~rtype ~trials ~reqs ()
  in
  let basic = measure "basic" Write in
  let xpaxos = measure "xpaxos" Read in
  let leased = measure ~cfg_tweak:lease_tweak "leased" Read in
  let table =
    T.create
      ~columns:
        [ ("Read path", T.Left); ("Avg. RRT (ms)", T.Right); ("99% CI (ms)", T.Right) ]
  in
  let row name acc =
    T.add_row table
      [ name; T.cell_f (Stats.mean acc);
        T.cell_ci (Stats.confidence_interval ~confidence:0.99 acc) ]
  in
  row "basic (write protocol)" basic;
  row "X-Paxos (confirms)" xpaxos;
  row "leased (local)" leased;
  print_string (T.render table);
  let reduction a b = (Stats.mean a -. Stats.mean b) /. Stats.mean a *. 100.0 in
  Printf.printf
    "leased read RRT reduction: %.1f%% vs X-Paxos confirms, %.1f%% vs basic\n%!"
    (reduction xpaxos leased) (reduction basic leased)

let run ~quick ~only =
  if only = None || only = Some "reads" then begin
    List.iter
      (fun (scenario : Scenario.t) ->
        Experiment.section
          (Printf.sprintf
             "reads — basic vs X-Paxos vs leased read path, scenario %s"
             scenario.Scenario.name);
        run_one ~quick ~id:"reads" scenario)
      [ Scenario.sysnet; Scenario.wan ]
  end
