(* Message-complexity experiment: count the wire messages each request
   class actually costs and compare with the paper's analytical patterns
   (§3.3–3.5):

     original : 3 client sends (broadcast) + 1 reply           = 4
     read     : 3 client sends + 2 confirms + 1 reply          = 6
     write    : 3 client sends + 2 accepts + 2 acks
                + 2 commits + 1 reply                          = 10
     T-Paxos op: 3 client sends + 1 reply                      = 4
     T-Paxos commit adds one write-shaped round for the batch.

   Heartbeats are excluded (periodic, not per-request). With one
   closed-loop client the measured averages should match the analytical
   counts almost exactly; write batching only kicks in under
   concurrency. *)

module Scenario = Grid_runtime.Scenario
module T = Grid_util.Text_table
module Wire = Grid_codec.Wire
module Noop = Grid_services.Noop
open Grid_paxos.Types
module RT = Experiment.RT

let per_request_messages ~gen ~requests ~seed =
  let t = RT.create ~cfg:(Grid_paxos.Config.default ~n:3) ~scenario:(Scenario.uniform ()) ~seed () in
  ignore (RT.await_leader t);
  RT.reset_message_counts t;
  let _ = RT.run_closed_loop_ops t ~clients:1 ~requests_per_client:requests ~gen in
  let counts = RT.message_counts t in
  let total_no_hb =
    List.fold_left
      (fun acc (kind, n) -> if kind = "heartbeat" then acc else acc + n)
      0 counts
  in
  (Float.of_int total_no_hb /. Float.of_int requests, counts)

let run ~quick:_ ~only =
  if only = None || only = Some "msg-complexity" then begin
    Experiment.section
      "msg-complexity — wire messages per request vs the paper's analysis";
    let requests = 200 in
    let simple rtype =
      per_request_messages ~requests ~seed:3 ~gen:(fun ~client:_ () ->
          Some (Experiment.noop_item rtype))
    in
    let txn () =
      (* 3-op optimized transactions: 4 requests per txn. *)
      per_request_messages ~requests ~seed:3
        ~gen:(Experiment.txn_gen Experiment.Optimized ~reqs_per_txn:3 ~txns:(requests / 4))
    in
    let table =
      T.create
        ~columns:
          [ ("Request class", T.Left); ("Messages/request", T.Right);
            ("Analytical", T.Right) ]
    in
    let row name (avg, _) analytical =
      T.add_row table [ name; T.cell_f ~decimals:2 avg; analytical ]
    in
    row "original" (simple Original) "4";
    row "read (X-Paxos)" (simple Read) "6";
    row "write (basic)" (simple Write) "10";
    row "T-Paxos (3 ops + commit, per request)" (txn ()) "(3*4 + 10)/4 = 5.5";
    print_string (T.render table);
    print_endline
      "Heartbeats excluded (periodic, not per-request). The basic protocol's\n\
     10 messages decompose as the paper's 2M + E + 2m timeline: broadcast\n\
     request (3), accept round (2+2), commit notification (2), reply (1)."
  end
