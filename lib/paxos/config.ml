(** Static replica-group configuration and protocol timeouts.

    All durations are milliseconds of (simulated or real) time. The
    defaults suit the LAN scenario; WAN scenarios scale the election
    timeouts up via {!with_wan_timeouts}. *)

type t = {
  n : int;  (** number of replicas; ids are [0 .. n-1] *)
  execution_cost_ms : float;
      (** the paper's E: service execution time per request *)
  accept_retry_ms : float;  (** leader retransmission of Accept *)
  prepare_retry_ms : float;  (** candidate retransmission of Prepare *)
  hb_period_ms : float;  (** heartbeat broadcast period *)
  suspicion_ms : float;  (** silence after which a replica is suspected *)
  stability_ms : float;
      (** candidate hold-down before starting a takeover (leader
          stability, §3.6) *)
  client_retry_ms : float;  (** client retransmission timeout *)
  record_history : bool;
      (** keep the full committed-request history in memory (for the
          linearizability and agreement checkers; off for benchmarks) *)
  ship : [ `Full | `Delta | `Witness ];
      (** how accepted proposals carry the new state (§3.3): full encoded
          state, service-provided delta, or a determinization witness the
          followers replay. [`Delta] and [`Witness] fall back to [`Full]
          when the service cannot provide them. *)
  snapshot_interval : int;
      (** persist a snapshot and prune the log every this many commits *)
  max_batch : int;
      (** largest write batch the leader folds into one instance *)
  coordination : [ `State_shipping | `Request_shipping ];
      (** [`State_shipping] is the paper's protocol: instances decide on
          ⟨request, state⟩ and followers adopt the shipped state.
          [`Request_shipping] is classic Multi-Paxos (replicated state
          machines, §3.3 ¶1): instances decide on the request only and
          every replica re-executes it locally — correct only for
          deterministic services, and included as the baseline whose
          divergence on nondeterministic services motivates the paper. *)
  disable_dedup : bool;
      (** fault-injection backdoor: leaders treat every request as fresh,
          so a duplicated/retransmitted request commits twice. Exists so
          the nemesis harness can demonstrate that its duplication dice
          and schedule shrinking actually catch the bug the dedup table
          prevents. Never enable outside tests. *)
  lease_ms : float;
      (** leader-lease duration. While the leader holds unexpired lease
          grants from a majority it answers reads locally, with zero
          protocol messages; [0.0] (the default) disables the fast path
          and reads use the X-Paxos confirm round. A follower that
          granted a lease refuses to promise to a different candidate
          until the grant expires on its own clock. *)
  clock_skew_bound_ms : float;
      (** assumed bound on how much any two replica clocks can drift
          relative to each other within one lease window. The leader
          retires each grant this much earlier than its nominal expiry,
          so leases stay safe as long as real drift honours the bound. *)
  max_inflight : int;
      (** admission control: bound on reads the leader holds awaiting
          confirmation/execution. [0] (the default) means unbounded.
          Reads past the bound are shed with [Overloaded] — before writes,
          since a shed read costs the client one round trip while a shed
          write loses queued work. *)
  max_queue : int;
      (** admission control: bound on the leader's pending-write queue.
          [0] (the default) means unbounded. Writes arriving when the
          queue is full are shed with [Overloaded]; reads are shed
          already at half this depth (read-shedding priority). *)
  watchdog_fail_stop : bool;
      (** when the online invariant watchdogs ({!Grid_obs.Watchdog}) are
          wired in, a violation raises instead of only counting: the
          replica halts rather than keep serving from a state it just
          proved inconsistent. Off by default — counters plus the
          [grid_watchdog_violations_total] metric are the production
          posture. *)
}

let default ~n =
  if n < 1 then invalid_arg "Config.default: need at least one replica";
  {
    n;
    execution_cost_ms = 0.0;
    accept_retry_ms = 50.0;
    prepare_retry_ms = 50.0;
    hb_period_ms = 20.0;
    suspicion_ms = 100.0;
    stability_ms = 30.0;
    client_retry_ms = 500.0;
    record_history = false;
    ship = `Delta;
    snapshot_interval = 64;
    max_batch = 6;
    coordination = `State_shipping;
    disable_dedup = false;
    lease_ms = 0.0;
    clock_skew_bound_ms = 5.0;
    max_inflight = 0;
    max_queue = 0;
    watchdog_fail_stop = false;
  }

let make ?base ?n ?execution_cost_ms ?accept_retry_ms ?prepare_retry_ms ?hb_period_ms
    ?suspicion_ms ?stability_ms ?client_retry_ms ?record_history ?ship ?snapshot_interval
    ?max_batch ?coordination ?disable_dedup ?lease_ms ?clock_skew_bound_ms ?max_inflight
    ?max_queue ?watchdog_fail_stop () =
  let base =
    match base with
    | Some b -> b
    | None -> default ~n:(Option.value n ~default:3)
  in
  let n = Option.value n ~default:base.n in
  if n < 1 then invalid_arg "Config.make: need at least one replica";
  let v field override = Option.value override ~default:field in
  {
    n;
    execution_cost_ms = v base.execution_cost_ms execution_cost_ms;
    accept_retry_ms = v base.accept_retry_ms accept_retry_ms;
    prepare_retry_ms = v base.prepare_retry_ms prepare_retry_ms;
    hb_period_ms = v base.hb_period_ms hb_period_ms;
    suspicion_ms = v base.suspicion_ms suspicion_ms;
    stability_ms = v base.stability_ms stability_ms;
    client_retry_ms = v base.client_retry_ms client_retry_ms;
    record_history = v base.record_history record_history;
    ship = v base.ship ship;
    snapshot_interval = v base.snapshot_interval snapshot_interval;
    max_batch = v base.max_batch max_batch;
    coordination = v base.coordination coordination;
    disable_dedup = v base.disable_dedup disable_dedup;
    lease_ms = v base.lease_ms lease_ms;
    clock_skew_bound_ms = v base.clock_skew_bound_ms clock_skew_bound_ms;
    max_inflight = v base.max_inflight max_inflight;
    max_queue = v base.max_queue max_queue;
    watchdog_fail_stop = v base.watchdog_fail_stop watchdog_fail_stop;
  }

let with_n t n = make ~base:t ~n ()

let with_wan_timeouts t =
  {
    t with
    accept_retry_ms = 500.0;
    prepare_retry_ms = 500.0;
    hb_period_ms = 200.0;
    suspicion_ms = 1000.0;
    stability_ms = 300.0;
    client_retry_ms = 3000.0;
  }

let quorum t = (t.n / 2) + 1
(** Majority size: ⌈(n+1)/2⌉, tolerating ⌊(n−1)/2⌋ crashed replicas. *)

let replica_ids t = List.init t.n Fun.id
