(** Static replica-group configuration and protocol timeouts.

    All durations are milliseconds of (simulated or real) time. The
    defaults suit the LAN scenario; WAN scenarios scale the election
    timeouts up via {!with_wan_timeouts}. *)

type t = {
  n : int;  (** number of replicas; ids are [0 .. n-1] *)
  execution_cost_ms : float;
      (** the paper's E: service execution time per request *)
  accept_retry_ms : float;  (** leader retransmission of Accept *)
  prepare_retry_ms : float;  (** candidate retransmission of Prepare *)
  hb_period_ms : float;  (** heartbeat broadcast period *)
  suspicion_ms : float;  (** silence after which a replica is suspected *)
  stability_ms : float;
      (** candidate hold-down before starting a takeover (leader
          stability, §3.6) *)
  client_retry_ms : float;  (** client retransmission timeout *)
  record_history : bool;
      (** keep the full committed-request history in memory (for the
          linearizability and agreement checkers; off for benchmarks) *)
  ship : [ `Full | `Delta | `Witness ];
      (** how accepted proposals carry the new state (§3.3): full encoded
          state, service-provided delta, or a determinization witness the
          followers replay. [`Delta] and [`Witness] fall back to [`Full]
          when the service cannot provide them. *)
  snapshot_interval : int;
      (** persist a snapshot and prune the log every this many commits *)
  max_batch : int;
      (** largest write batch the leader folds into one instance *)
  coordination : [ `State_shipping | `Request_shipping ];
      (** [`State_shipping] is the paper's protocol: instances decide on
          ⟨request, state⟩ and followers adopt the shipped state.
          [`Request_shipping] is classic Multi-Paxos (replicated state
          machines, §3.3 ¶1): instances decide on the request only and
          every replica re-executes it locally — correct only for
          deterministic services, and included as the baseline whose
          divergence on nondeterministic services motivates the paper. *)
  disable_dedup : bool;
      (** fault-injection backdoor: leaders treat every request as fresh,
          so a duplicated/retransmitted request commits twice. Exists so
          the nemesis harness can demonstrate that its duplication dice
          and schedule shrinking actually catch the bug the dedup table
          prevents. Never enable outside tests. *)
}

let default ~n =
  if n < 1 then invalid_arg "Config.default: need at least one replica";
  {
    n;
    execution_cost_ms = 0.0;
    accept_retry_ms = 50.0;
    prepare_retry_ms = 50.0;
    hb_period_ms = 20.0;
    suspicion_ms = 100.0;
    stability_ms = 30.0;
    client_retry_ms = 500.0;
    record_history = false;
    ship = `Delta;
    snapshot_interval = 64;
    max_batch = 6;
    coordination = `State_shipping;
    disable_dedup = false;
  }

let with_wan_timeouts t =
  {
    t with
    accept_retry_ms = 500.0;
    prepare_retry_ms = 500.0;
    hb_period_ms = 200.0;
    suspicion_ms = 1000.0;
    stability_ms = 300.0;
    client_retry_ms = 3000.0;
  }

let quorum t = (t.n / 2) + 1
(** Majority size: ⌈(n+1)/2⌉, tolerating ⌊(n−1)/2⌋ crashed replicas. *)

let replica_ids t = List.init t.n Fun.id
