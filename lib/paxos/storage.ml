module Wire = Grid_codec.Wire
module Rng = Grid_util.Rng

type persisted = {
  promised : Types.Ballot.t;
  entries : Types.recovery_entry list;
  commit_point : int;
  snapshot : string option;
}

type recovery_report = {
  frames_ok : int;
  records_dropped : int;
  bytes_salvaged : int;
  bytes_dropped : int;
  torn_tail : bool;
  interior_corruption : bool;
  snapshot_used : bool;
  snapshot_corrupt : bool;
  log_truncated : bool;
}

let clean_report =
  {
    frames_ok = 0;
    records_dropped = 0;
    bytes_salvaged = 0;
    bytes_dropped = 0;
    torn_tail = false;
    interior_corruption = false;
    snapshot_used = false;
    snapshot_corrupt = false;
    log_truncated = false;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "frames=%d dropped=%d salvaged=%dB lost=%dB torn=%b interior=%b snap=%b snap_bad=%b \
     truncated=%b"
    r.frames_ok r.records_dropped r.bytes_salvaged r.bytes_dropped r.torn_tail
    r.interior_corruption r.snapshot_used r.snapshot_corrupt r.log_truncated

type t = {
  persist_promise : Types.Ballot.t -> unit;
  persist_entry : instance:int -> ballot:Types.Ballot.t -> Types.proposal -> unit;
  persist_commit : int -> unit;
  persist_snapshot : string -> unit;
}

let null () =
  {
    persist_promise = (fun _ -> ());
    persist_entry = (fun ~instance:_ ~ballot:_ _ -> ());
    persist_commit = (fun _ -> ());
    persist_snapshot = (fun _ -> ());
  }

let memory () =
  let promised = ref Types.Ballot.zero in
  let entries : (int, Types.recovery_entry) Hashtbl.t = Hashtbl.create 32 in
  let commit_point = ref 0 in
  let snapshot = ref None in
  let store =
    {
      persist_promise = (fun b -> promised := b);
      persist_entry =
        (fun ~instance ~ballot proposal ->
          Hashtbl.replace entries instance { Types.instance; ballot; proposal });
      persist_commit = (fun cp -> if cp > !commit_point then commit_point := cp);
      persist_snapshot = (fun s -> snapshot := Some s);
    }
  in
  let read () =
    {
      promised = !promised;
      entries = Hashtbl.fold (fun _ e acc -> e :: acc) entries [];
      commit_point = !commit_point;
      snapshot = !snapshot;
    }
  in
  (store, read)

(* File backend: one append-only log of CRC-framed records plus a
   last-snapshot-wins snapshot file. Record framing: u32-le length, then
   [with_crc] payload. *)

let rec_promise = 0
and rec_entry = 1
and rec_commit = 2

let encode_record tag body =
  Wire.encode (fun e ->
      Wire.Encoder.uint e tag;
      body e)

let write_frame oc payload =
  let framed = Wire.with_crc payload in
  let len = String.length framed in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr (len land 0xFF));
  Bytes.set hdr 1 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set hdr 2 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set hdr 3 (Char.chr ((len lsr 24) land 0xFF));
  output_bytes oc hdr;
  output_string oc framed;
  flush oc

(* Read the longest valid prefix of CRC-framed records. Returns the
   frames, the byte length of that prefix, and what ended the scan:
   [`Eof] (clean end), [`Torn] (truncated or CRC-failed final record), or
   [`Interior] (a corrupt record with more data behind it — a bit flip or
   partial overwrite inside the log). We cannot resynchronise past a
   corrupt record (lengths are untrusted), so the suffix is abandoned and
   the caller salvages the prefix. *)
let read_frames path =
  if not (Sys.file_exists path) then ([], 0, `Eof, 0)
  else begin
    let ic = open_in_bin path in
    let file_len = in_channel_length ic in
    let frames = ref [] in
    let valid_len = ref 0 in
    let ending = ref `Eof in
    (try
       let rec loop () =
         let hdr = really_input_string ic 4 in
         let len =
           Char.code hdr.[0]
           lor (Char.code hdr.[1] lsl 8)
           lor (Char.code hdr.[2] lsl 16)
           lor (Char.code hdr.[3] lsl 24)
         in
         (* An absurd length is itself corruption (a flipped header bit);
            treating it as a read larger than the file lands in [`Torn]
            or [`Interior] below. *)
         let framed = really_input_string ic len in
         match Wire.check_crc framed with
         | payload ->
           frames := payload :: !frames;
           valid_len := pos_in ic;
           loop ()
         | exception Wire.Decode_error _ ->
           ending := (if pos_in ic >= file_len then `Torn else `Interior)
       in
       loop ()
     with End_of_file ->
       (* Truncated header or payload: torn unless valid data follows the
          failed read position (only possible when a header length
          overshot the remaining bytes mid-file, which we cannot
          distinguish from a tear — treat as torn). *)
       if !valid_len < file_len then ending := `Torn);
    close_in ic;
    (List.rev !frames, !valid_len, !ending, file_len)
  end

let decode_entry_record d =
  let instance = Wire.Decoder.uint d in
  let ballot = Types.Ballot.decode d in
  let proposal = Types.decode_proposal d in
  { Types.instance; ballot; proposal }

(* Replay CRC-validated records. A record that passed its CRC but still
   fails to decode (unknown tag, malformed body — e.g. written by a newer
   version) is skipped and counted rather than aborting recovery. *)
let replay_log frames =
  let promised = ref Types.Ballot.zero in
  let entries : (int, Types.recovery_entry) Hashtbl.t = Hashtbl.create 32 in
  let commit_point = ref 0 in
  let dropped = ref 0 in
  List.iter
    (fun payload ->
      let d = Wire.Decoder.of_string payload in
      match
        (match Wire.Decoder.uint d with
        | tag when tag = rec_promise -> promised := Types.Ballot.decode d
        | tag when tag = rec_entry ->
          let e = decode_entry_record d in
          Hashtbl.replace entries e.instance e
        | tag when tag = rec_commit ->
          let cp = Wire.Decoder.uint d in
          if cp > !commit_point then commit_point := cp
        | tag ->
          raise
            (Wire.Decode_error { pos = 0; msg = Printf.sprintf "unknown record tag %d" tag }))
      with
      | () -> ()
      | exception Wire.Decode_error _ -> incr dropped)
    frames;
  (!promised, Hashtbl.fold (fun _ e acc -> e :: acc) entries [], !commit_point, !dropped)

let file ~path =
  let log_path = path ^ ".log" and snap_path = path ^ ".snap" in
  let frames, valid_len, ending, file_len = read_frames log_path in
  let snapshot, snapshot_corrupt =
    if Sys.file_exists snap_path then begin
      let ic = open_in_bin snap_path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Wire.check_crc s with
      | body -> (Some body, false)
      | exception Wire.Decode_error _ -> (None, true)
    end
    else (None, false)
  in
  let recovered, records_dropped =
    if frames = [] && snapshot = None then (None, 0)
    else begin
      let promised, entries, commit_point, dropped = replay_log frames in
      (Some { promised; entries; commit_point; snapshot }, dropped)
    end
  in
  (* Salvage: cut the log back to its valid prefix so new appends are
     readable on the next recovery instead of hiding behind the corrupt
     suffix. *)
  let log_truncated =
    if valid_len < file_len then begin
      let prefix =
        if valid_len = 0 then ""
        else begin
          let ic = open_in_bin log_path in
          let p = really_input_string ic valid_len in
          close_in ic;
          p
        end
      in
      let oc = open_out_bin log_path in
      output_string oc prefix;
      close_out oc;
      true
    end
    else false
  in
  let report =
    {
      frames_ok = List.length frames;
      records_dropped;
      bytes_salvaged = valid_len;
      bytes_dropped = file_len - valid_len;
      torn_tail = ending = `Torn;
      interior_corruption = ending = `Interior;
      snapshot_used = snapshot <> None;
      snapshot_corrupt;
      log_truncated;
    }
  in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 log_path in
  let store =
    {
      persist_promise =
        (fun b -> write_frame oc (encode_record rec_promise (fun e -> Types.Ballot.encode e b)));
      persist_entry =
        (fun ~instance ~ballot proposal ->
          write_frame oc
            (encode_record rec_entry (fun e ->
                 Wire.Encoder.uint e instance;
                 Types.Ballot.encode e ballot;
                 Types.encode_proposal e proposal)));
      persist_commit =
        (fun cp -> write_frame oc (encode_record rec_commit (fun e -> Wire.Encoder.uint e cp)));
      persist_snapshot =
        (fun s ->
          let tmp = snap_path ^ ".tmp" in
          let soc = open_out_bin tmp in
          output_string soc (Wire.with_crc s);
          close_out soc;
          Sys.rename tmp snap_path);
    }
  in
  (store, recovered, report)

(* ------------------------------------------------------------------ *)
(* Nemesis: fault-injecting storage wrapper and file-corruption helpers *)

exception Crashed

type fault_ctl = {
  mutable tear_rate : float;
  mutable drop_rate : float;
  mutable drop_meta_only : bool;
  mutable torn : int;
  mutable dropped : int;
}

let faulty ~rng ?(tear_rate = 0.0) ?(drop_rate = 0.0) ?(drop_meta_only = true) inner =
  let ctl = { tear_rate; drop_rate; drop_meta_only; torn = 0; dropped = 0 } in
  (* A tear models the process dying mid-write: the record is lost AND
     control never returns to the engine (we raise), so no action guarded
     by this persist can be emitted — which is what keeps tear injection
     sound for the safety checkers. A drop models a lost fsync: the call
     "succeeds" but the record never hits the platter; unless
     [drop_meta_only] is cleared this only afflicts commit-point and
     snapshot records, whose loss recovery can always repair from the
     entry log and peers. *)
  let gate ~meta k =
    if ctl.tear_rate > 0.0 && Rng.float rng 1.0 < ctl.tear_rate then begin
      ctl.torn <- ctl.torn + 1;
      raise Crashed
    end
    else if
      ctl.drop_rate > 0.0
      && ((not ctl.drop_meta_only) || meta)
      && Rng.float rng 1.0 < ctl.drop_rate
    then ctl.dropped <- ctl.dropped + 1
    else k ()
  in
  let store =
    {
      persist_promise = (fun b -> gate ~meta:false (fun () -> inner.persist_promise b));
      persist_entry =
        (fun ~instance ~ballot p ->
          gate ~meta:false (fun () -> inner.persist_entry ~instance ~ballot p));
      persist_commit = (fun cp -> gate ~meta:true (fun () -> inner.persist_commit cp));
      persist_snapshot = (fun s -> gate ~meta:true (fun () -> inner.persist_snapshot s));
    }
  in
  (store, ctl)

(* Damage a closed log file in place, as a crash or failing disk would.
   Both return [false] when the file is missing or too small to damage. *)

let tear_log ~path ~rng =
  let log_path = path ^ ".log" in
  if not (Sys.file_exists log_path) then false
  else begin
    let ic = open_in_bin log_path in
    let len = in_channel_length ic in
    let all = really_input_string ic len in
    close_in ic;
    if len < 2 then false
    else begin
      (* Chop a random number of trailing bytes — at least one, at most
         the final record plus change. *)
      let cut = 1 + Rng.int rng (min len 64) in
      let oc = open_out_bin log_path in
      output_string oc (String.sub all 0 (len - cut));
      close_out oc;
      true
    end
  end

let flip_byte ~path ~rng =
  let log_path = path ^ ".log" in
  if not (Sys.file_exists log_path) then false
  else begin
    let ic = open_in_bin log_path in
    let len = in_channel_length ic in
    let all = Bytes.of_string (really_input_string ic len) in
    close_in ic;
    if len = 0 then false
    else begin
      let pos = Rng.int rng len in
      let bit = 1 lsl Rng.int rng 8 in
      Bytes.set all pos (Char.chr (Char.code (Bytes.get all pos) lxor bit));
      let oc = open_out_bin log_path in
      output_string oc (Bytes.to_string all);
      close_out oc;
      true
    end
  end
