(** Versioned wire codecs for {!Types.msg}.

    [V1] is the seed's unversioned encoding (byte-identical); [V2] adds
    a two-byte compact header — magic/version byte, then constructor tag
    and per-message flags — and uses the flags to elide trace contexts,
    absent lease anchors and redundant reply ids. Connections negotiate
    [min (local_max, peer_max)] at dial time ({!negotiate}), so mixed
    clusters interoperate during a rolling upgrade. See DESIGN.md §15
    for the byte-level layout and compatibility policy. *)

val min_version : int
(** Oldest version this build still speaks (currently 1). *)

val latest_version : int
(** Newest version this build speaks (currently 2); the default
    advertised in the hello exchange. *)

val negotiate : local_max:int -> peer_max:int -> int option
(** Version a connection settles on: [min local_max peer_max], or [None]
    when that falls below {!min_version} (the peer is too old/new to
    talk to). *)

module V1 : Grid_codec.Wire_intf.WIRE with type msg = Types.msg
module V2 : Grid_codec.Wire_intf.WIRE with type msg = Types.msg

type codec = (module Grid_codec.Wire_intf.WIRE with type msg = Types.msg)

val of_version : int -> codec option
val of_version_exn : int -> codec
val all : codec list
(** Every supported codec, oldest first — for exhaustive cross-version
    tests. *)
