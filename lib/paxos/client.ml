open Types
module Ids = Grid_util.Ids
module Rng = Grid_util.Rng
module Span = Grid_obs.Span

type t = {
  cid : Ids.Client_id.t;
  replicas : int list;
  retry_ms : float;
  rng : Rng.t;
  mutable seq : int;
  mutable pending : request option;
  mutable sent : int;
  mutable retries : int;
  obs : Span.Recorder.t;
  actor : string;  (* precomputed "c<id>" so recording allocates nothing *)
}

let create ~id ~replicas ?(retry_ms = 500.0) ?seed ?(obs = Span.Recorder.disabled) () =
  if replicas = [] then invalid_arg "Client.create: no replicas";
  let seed = match seed with Some s -> s | None -> 0xC11E47 + Ids.Client_id.to_int id in
  {
    cid = id;
    replicas;
    retry_ms;
    rng = Rng.of_int seed;
    seq = 0;
    pending = None;
    sent = 0;
    retries = 0;
    obs;
    actor = "c" ^ string_of_int (Ids.Client_id.to_int id);
  }

(* Retransmission intervals are jittered ±25% so retries cannot phase-lock
   with a periodic failure pattern. *)
let retry_delay t = t.retry_ms *. (0.75 +. Rng.float t.rng 0.5)

let id t = t.cid
let node t = client_node t.cid
let outstanding t = t.pending
let sent_count t = t.sent
let retry_count t = t.retries

let broadcast t (r : request) =
  List.map (fun dst -> send ~dst (Client_req r)) t.replicas

let submit t ?(now = 0.0) rtype ~payload =
  match t.pending with
  | Some _ -> `Busy
  | None ->
    t.seq <- t.seq + 1;
    let r =
      { id = Ids.Request_id.make ~client:t.cid ~seq:t.seq; rtype; payload }
    in
    t.pending <- Some r;
    t.sent <- t.sent + 1;
    Span.Recorder.span t.obs ~time:now ~actor:t.actor ~req:r.id ~instance:(-1)
      ~detail:"" Span.Client_send;
    `Sent (broadcast t r @ [ after ~delay:(retry_delay t) (Client_retry t.seq) ])

let handle t ~now input =
  match input with
  | Timer (Client_retry seq) -> (
    match t.pending with
    | Some r when r.id.seq = seq ->
      t.retries <- t.retries + 1;
      (broadcast t r @ [ after ~delay:(retry_delay t) (Client_retry seq) ], None)
    | _ -> ([], None))
  | Timer _ -> ([], None)
  | Receive { msg = Reply_msg reply; _ } -> (
    match t.pending with
    | Some r when Ids.Request_id.equal r.id reply.req && reply.status = Retry ->
      (* The replica holding our read lost leadership: rebroadcast at
         once (the new leader will answer) instead of waiting out the
         retry timer, which stays armed as a backstop. *)
      t.retries <- t.retries + 1;
      (broadcast t r, None)
    | Some r when Ids.Request_id.equal r.id reply.req ->
      t.pending <- None;
      Span.Recorder.span t.obs ~time:now ~actor:t.actor ~req:reply.req ~instance:(-1)
        ~detail:"" Span.Reply;
      ([], Some reply)
    | _ -> ([], None) (* duplicate or stale reply *))
  | Receive _ -> ([], None)
