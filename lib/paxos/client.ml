open Types
module Ids = Grid_util.Ids
module Rng = Grid_util.Rng
module Span = Grid_obs.Span

type t = {
  cid : Ids.Client_id.t;
  replicas : int list;
  retry_ms : float;
  rng : Rng.t;
  mutable seq : int;
  mutable pending : request option;
  mutable sent : int;
  mutable retries : int;
  mutable overloads : int;  (* Overloaded pushbacks received *)
  (* Overload backoff for the pending request: consecutive [Overloaded]
     replies seen, and the earliest time a retransmission may go out.
     Backstop retry-timer firings inside the window are suppressed. *)
  mutable backoff_attempts : int;
  mutable backoff_until : float;
  obs : Span.Recorder.t;
  actor : string;  (* precomputed "c<id>" so recording allocates nothing *)
  sid_send : string;  (* precomputed own client_send span id *)
}

let create ~id ~replicas ?(retry_ms = 500.0) ?seed ?(obs = Span.Recorder.disabled)
    ?actor () =
  if replicas = [] then invalid_arg "Client.create: no replicas";
  let seed = match seed with Some s -> s | None -> 0xC11E47 + Ids.Client_id.to_int id in
  let actor =
    match actor with
    | Some a -> a
    | None -> "c" ^ string_of_int (Ids.Client_id.to_int id)
  in
  {
    cid = id;
    replicas;
    retry_ms;
    rng = Rng.of_int seed;
    seq = 0;
    pending = None;
    sent = 0;
    retries = 0;
    overloads = 0;
    backoff_attempts = 0;
    backoff_until = neg_infinity;
    obs;
    actor;
    sid_send = Span.span_id ~actor Span.Client_send;
  }

(* Retransmission intervals are jittered ±25% so retries cannot phase-lock
   with a periodic failure pattern. *)
let retry_delay t = t.retry_ms *. (0.75 +. Rng.float t.rng 0.5)

(* Exponential backoff after the [attempt]-th consecutive [Overloaded]:
   the leader's [retry_after_ms] hint doubled per attempt, capped at
   8 x retry_ms (but never below the hint itself — the leader knows its
   backlog better than our static timeout), jittered ±25% like ordinary
   retries so a shed client cohort does not retry in phase. *)
let backoff_delay t ~retry_after_ms ~attempt =
  let scaled = retry_after_ms *. Float.pow 2.0 (Float.of_int (attempt - 1)) in
  let capped = Float.min scaled (Float.max retry_after_ms (8.0 *. t.retry_ms)) in
  capped *. (0.75 +. Rng.float t.rng 0.5)

let id t = t.cid
let node t = client_node t.cid
let outstanding t = t.pending
let sent_count t = t.sent
let retry_count t = t.retries
let overloaded_count t = t.overloads
let backoff_until t = t.backoff_until

let broadcast t (r : request) =
  List.map (fun dst -> send ~dst (Client_req r)) t.replicas

(* Trace context: an explicit [trace] (from the shard router) wins;
   otherwise, when recording is on, derive a deterministic trace id from
   (client, seq) so standalone runs also stitch. The request carries our
   [Client_send] span id as parent, so leader-side spans hang under it. *)
let submit t ?(now = 0.0) ?trace rtype ~payload =
  match t.pending with
  | Some _ -> `Busy
  | None ->
    t.seq <- t.seq + 1;
    let tid, parent =
      match trace with
      | Some (tid, parent) -> (tid, parent)
      | None ->
        if Span.Recorder.enabled t.obs then
          ((Ids.Client_id.to_int t.cid * 1_000_000) + t.seq, "")
        else (0, "")
    in
    let r =
      {
        id = Ids.Request_id.make ~client:t.cid ~seq:t.seq;
        rtype;
        payload;
        trace = (if tid = 0 then no_trace else { tid; parent = t.sid_send });
      }
    in
    t.pending <- Some r;
    t.sent <- t.sent + 1;
    t.backoff_attempts <- 0;
    t.backoff_until <- neg_infinity;
    Span.Recorder.span ~tid ~parent t.obs ~time:now ~actor:t.actor ~req:r.id
      ~instance:(-1) ~detail:"" Span.Client_send;
    `Sent (broadcast t r @ [ after ~delay:(retry_delay t) (Client_retry t.seq) ])

let handle t ~now input =
  match input with
  | Timer (Client_retry seq) -> (
    match t.pending with
    | Some r when r.id.seq = seq ->
      if now +. 1e-9 < t.backoff_until then
        (* Backstop timer fired inside an overload-backoff window: stay
           quiet — the timer armed by the [Overloaded] handler will
           retransmit when the window closes. *)
        ([], None)
      else begin
        t.retries <- t.retries + 1;
        (broadcast t r @ [ after ~delay:(retry_delay t) (Client_retry seq) ], None)
      end
    | _ -> ([], None))
  | Timer _ -> ([], None)
  | Receive { msg = Reply_msg reply; _ } -> (
    match t.pending with
    | Some r when Ids.Request_id.equal r.id reply.req -> (
      match reply.status with
      | Retry ->
        (* The replica holding our read lost leadership: rebroadcast at
           once (the new leader will answer) instead of waiting out the
           retry timer, which stays armed as a backstop. *)
        t.retries <- t.retries + 1;
        (broadcast t r, None)
      | Overloaded { retry_after_ms } ->
        (* Admission pushback: the request is NOT complete. Honor the
           leader's hint with jittered exponential backoff instead of
           rebroadcasting on the blind retry_ms schedule. *)
        t.overloads <- t.overloads + 1;
        t.backoff_attempts <- t.backoff_attempts + 1;
        let delay =
          backoff_delay t ~retry_after_ms ~attempt:t.backoff_attempts
        in
        t.backoff_until <- now +. delay;
        Span.Recorder.span ~tid:r.trace.tid ~parent:t.sid_send t.obs ~time:now
          ~actor:t.actor ~req:reply.req ~instance:(-1) ~detail:"overloaded"
          Span.Reply;
        ([ after ~delay (Client_retry r.id.seq) ], None)
      | Ok | Txn_aborted | Txn_conflict | Wrong_epoch _ ->
        t.pending <- None;
        t.backoff_attempts <- 0;
        t.backoff_until <- neg_infinity;
        Span.Recorder.span ~tid:r.trace.tid ~parent:t.sid_send t.obs ~time:now
          ~actor:t.actor ~req:reply.req ~instance:(-1) ~detail:"" Span.Reply;
        ([], Some reply))
    | _ -> ([], None) (* duplicate or stale reply *))
  | Receive _ -> ([], None)
