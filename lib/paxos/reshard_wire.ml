(** Payload envelopes for the elastic-resharding control plane
    (DESIGN.md §17).

    The reshard coordinator lives in [grid_shard] but the participant
    state machine lives in {!Replica.Make}, which cannot see the shard
    layer — so the byte formats both sides speak are pinned here, next
    to the protocol types. The COMMIT payload needs no envelope: it is
    the encoded successor partition map, opaque to this layer (the
    replica only stores and echoes it). *)

module Wire = Grid_codec.Wire

(** FREEZE: the key range leaving this group and where it is going.
    Bounds are footprint keys, [lo] inclusive, [hi] exclusive ([None] =
    top of the keyspace). *)
type freeze = { f_lo : string; f_hi : string option; f_target : int }

let encode_freeze ~lo ~hi ~target =
  Wire.encode (fun e ->
      Wire.Encoder.string e lo;
      Wire.Encoder.option e (Wire.Encoder.string e) hi;
      Wire.Encoder.uint e target)

let decode_freeze s =
  Wire.decode s (fun d ->
      let f_lo = Wire.Decoder.string d in
      let f_hi = Wire.Decoder.option d Wire.Decoder.string in
      let f_target = Wire.Decoder.uint d in
      { f_lo; f_hi; f_target })

(** INSTALL: the shipped range snapshot arriving at the target group.
    [i_count] is the item count reported by the source's
    [export_range], kept for admin counters; [i_blob] is the opaque
    service slice fed to [import_range]. *)
type install = {
  i_lo : string;
  i_hi : string option;
  i_count : int;
  i_blob : string;
}

let encode_install ~lo ~hi ~count ~blob =
  Wire.encode (fun e ->
      Wire.Encoder.string e lo;
      Wire.Encoder.option e (Wire.Encoder.string e) hi;
      Wire.Encoder.uint e count;
      Wire.Encoder.string e blob)

let decode_install s =
  Wire.decode s (fun d ->
      let i_lo = Wire.Decoder.string d in
      let i_hi = Wire.Decoder.option d Wire.Decoder.string in
      let i_count = Wire.Decoder.uint d in
      let i_blob = Wire.Decoder.string d in
      { i_lo; i_hi; i_count; i_blob })

(** Participant snapshot section: the reshard state a replica derives
    from committed instances, carried in {!Snapshot} so a replica
    adopting a snapshot (catch-up, recovery, election) lands with the
    same migration view as one that replayed the log. *)
type participant = {
  p_epoch : int;  (** highest committed partition-map epoch *)
  p_map : string;  (** encoded map at [p_epoch]; [""] before any commit *)
  p_frozen : (int * string * string option * int) option;
      (** (epoch, lo, hi, target): committed FREEZE awaiting its decision *)
  p_installed : (int * string * string option * int) option;
      (** (epoch, lo, hi, count): committed INSTALL awaiting its decision *)
  p_moved : (string * string option) list;
      (** ranges this group handed away: requests touching them get
          [Wrong_epoch] *)
  p_aborted : int list;  (** abort tombstones, by epoch *)
  p_imported : int;  (** total items absorbed via INSTALL commits *)
}

let empty_participant =
  {
    p_epoch = 0;
    p_map = "";
    p_frozen = None;
    p_installed = None;
    p_moved = [];
    p_aborted = [];
    p_imported = 0;
  }

let encode_participant p =
  Wire.encode (fun e ->
      Wire.Encoder.uint e p.p_epoch;
      Wire.Encoder.string e p.p_map;
      Wire.Encoder.option e
        (fun (ep, lo, hi, target) ->
          Wire.Encoder.uint e ep;
          Wire.Encoder.string e lo;
          Wire.Encoder.option e (Wire.Encoder.string e) hi;
          Wire.Encoder.uint e target)
        p.p_frozen;
      Wire.Encoder.option e
        (fun (ep, lo, hi, count) ->
          Wire.Encoder.uint e ep;
          Wire.Encoder.string e lo;
          Wire.Encoder.option e (Wire.Encoder.string e) hi;
          Wire.Encoder.uint e count)
        p.p_installed;
      Wire.Encoder.list e
        (fun (lo, hi) ->
          Wire.Encoder.string e lo;
          Wire.Encoder.option e (Wire.Encoder.string e) hi)
        p.p_moved;
      Wire.Encoder.list e (Wire.Encoder.uint e) p.p_aborted;
      Wire.Encoder.uint e p.p_imported)

let decode_participant s =
  Wire.decode s (fun d ->
      let p_epoch = Wire.Decoder.uint d in
      let p_map = Wire.Decoder.string d in
      let p_frozen =
        Wire.Decoder.option d (fun d ->
            let ep = Wire.Decoder.uint d in
            let lo = Wire.Decoder.string d in
            let hi = Wire.Decoder.option d Wire.Decoder.string in
            let target = Wire.Decoder.uint d in
            (ep, lo, hi, target))
      in
      let p_installed =
        Wire.Decoder.option d (fun d ->
            let ep = Wire.Decoder.uint d in
            let lo = Wire.Decoder.string d in
            let hi = Wire.Decoder.option d Wire.Decoder.string in
            let count = Wire.Decoder.uint d in
            (ep, lo, hi, count))
      in
      let p_moved =
        Wire.Decoder.list d (fun d ->
            let lo = Wire.Decoder.string d in
            let hi = Wire.Decoder.option d Wire.Decoder.string in
            (lo, hi))
      in
      let p_aborted = Wire.Decoder.list d Wire.Decoder.uint in
      let p_imported = Wire.Decoder.uint d in
      { p_epoch; p_map; p_frozen; p_installed; p_moved; p_aborted; p_imported })

(** Range membership for [Wrong_epoch]/freeze checks: footprint key [k]
    falls in [\[lo, hi)]. *)
let in_range ~lo ~hi k =
  String.compare k lo >= 0
  && match hi with None -> true | Some h -> String.compare k h < 0

(** Subtract [\[lo, hi)] from every range in the list. An imported range
    restores ownership of whatever part of a previously handed-away
    range it covers — the two transitions need not share cut points (a
    merge can bring back a wider range than the split that left). *)
let range_subtract ranges ~lo ~hi =
  let lt a b = String.compare a b < 0 in
  let le a b = String.compare a b <= 0 in
  List.concat_map
    (fun (l, h) ->
      let disjoint =
        (match hi with Some ih -> le ih l | None -> false)
        || match h with Some h -> le h lo | None -> false
      in
      if disjoint then [ (l, h) ]
      else
        let left = if lt l lo then [ (l, Some lo) ] else [] in
        let right =
          match hi with
          | None -> []
          | Some ih -> (
            match h with
            | None -> [ (ih, None) ]
            | Some h when lt ih h -> [ (ih, Some h) ]
            | Some _ -> [])
        in
        left @ right)
    ranges

(** Does a request footprint intersect any of [ranges]? A ["*"]
    footprint intersects every nonempty range set (it touches keys this
    group may no longer own). *)
let footprint_hits ranges fps =
  ranges <> [] && fps <> []
  && (List.mem "*" fps
     || List.exists
          (fun k -> List.exists (fun (lo, hi) -> in_range ~lo ~hi k) ranges)
          fps)
