(** Protocol types shared by every engine in [grid_paxos]: ballots,
    requests, replies, state updates, wire messages, and the input/action
    vocabulary of the pure step machines.

    Engines never touch a clock, a socket or an RNG directly: they consume
    {!input} values and emit {!action} values, and a driver (simulator,
    TCP runtime, or model checker) interprets them. *)

(** Ballot numbers: lexicographically ordered (round, holder) pairs, so
    ballots of distinct replicas never collide. *)
module Ballot : sig
  type t = { round : int; holder : int }

  val zero : t
  val make : round:int -> holder:int -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val encode : Grid_codec.Wire.Encoder.t -> t -> unit
  val decode : Grid_codec.Wire.Decoder.t -> t
end

(** Proposal numbers: (ballot, instance), ordered lexicographically — the
    order the paper uses for replica logs (§3.3). *)
module Pnum : sig
  type t = { ballot : Ballot.t; instance : int }

  val make : ballot:Ballot.t -> instance:int -> t
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

(** How a request wants to be coordinated. [Read] uses X-Paxos, [Write]
    the basic protocol, [Original] no coordination at all (the paper's
    unreplicated baseline). Transactional requests carry a per-client
    transaction number; their coordination is deferred to the commit
    (T-Paxos). [Txn_prepare] is the 2PC prepare vote for a cross-shard
    transaction (DESIGN.md §16): the participant group commits it as a
    consensus instance with the transaction branch re-encoded into the
    payload, making the YES vote crash-safe.

    The [Reshard_*] requests are the elastic-resharding control plane
    (DESIGN.md §17), each carrying the epoch of the map transition it
    belongs to: FREEZE locks the moving key range at the source group,
    INSTALL delivers the shipped range snapshot at the target, COMMIT
    activates the successor partition map, ABORT cancels an in-flight
    transition. All four commit as consensus instances, so the migration
    state machine survives any minority of crashes in either group. *)
type rtype =
  | Read
  | Write
  | Original
  | Txn_op of int
  | Txn_commit of int
  | Txn_abort of int
  | Txn_prepare of int
  | Reshard_freeze of int
  | Reshard_install of int
  | Reshard_commit of int
  | Reshard_abort of int

val rtype_tag : rtype -> int
val pp_rtype : Format.formatter -> rtype -> unit
val encode_rtype : Grid_codec.Wire.Encoder.t -> rtype -> unit
val decode_rtype : Grid_codec.Wire.Decoder.t -> rtype

(** Causal trace context carried inside the request across process
    boundaries: the trace id shared by every span of one end-to-end
    request and the span id the next hop parents its spans under.
    [tid = 0] means untraced. *)
type trace_ctx = { tid : int; parent : string }

val no_trace : trace_ctx

(** A client request. [payload] is the service operation, already encoded
    by the service codec; the replication layer never interprets it. *)
type request = {
  id : Grid_util.Ids.Request_id.t;
  rtype : rtype;
  payload : string;
  trace : trace_ctx;
}

val pp_request : Format.formatter -> request -> unit
val encode_request : Grid_codec.Wire.Encoder.t -> request -> unit
val decode_request : Grid_codec.Wire.Decoder.t -> request

type status =
  | Ok
  | Txn_aborted
      (** transaction rolled back (explicit abort, conflict, or leader switch) *)
  | Txn_conflict  (** first-committer-wins conflict at commit *)
  | Retry
      (** the replica lost leadership while holding this request; the
          client should retransmit (it will reach the new leader) rather
          than wait out its retry timer *)
  | Overloaded of { retry_after_ms : float }
      (** the leader's admission window is full and the request was shed
          before entering the queue; the client should back off for at
          least [retry_after_ms] before retransmitting *)
  | Wrong_epoch of { epoch : int; map : string }
      (** the request touched a key this group no longer (or does not
          yet) own: the partition map moved under the client. [map] is
          the group's current encoded partition map at [epoch]; the
          router adopts it and re-routes (DESIGN.md §17). Final — a
          retransmission to the same group can never succeed *)

val pp_status : Format.formatter -> status -> unit
val status_tag : status -> int

(** Whether a reply with this status completes the request at the client.
    [Retry] and [Overloaded] are pushback: the request stays pending and
    will be retransmitted, so checkers must not count such replies as
    completions. *)
val status_is_final : status -> bool
val encode_status : Grid_codec.Wire.Encoder.t -> status -> unit
val decode_status : Grid_codec.Wire.Decoder.t -> status

type reply = { req : Grid_util.Ids.Request_id.t; status : status; payload : string }

val pp_reply : Format.formatter -> reply -> unit
val encode_reply : Grid_codec.Wire.Encoder.t -> reply -> unit
val decode_reply : Grid_codec.Wire.Decoder.t -> reply

(** The state shipped inside an accepted proposal (§3.3). [Full] carries
    the whole encoded service state; [Delta] a service-specific diff
    against the previous committed state; [Witness] only the
    determinization information needed to re-execute the request
    deterministically at every replica (the paper's first
    overhead-reduction option). *)
type state_update = Full of string | Delta of string | Witness of string

val pp_state_update : Format.formatter -> state_update -> unit
val state_update_size : state_update -> int
val encode_state_update : Grid_codec.Wire.Encoder.t -> state_update -> unit
val decode_state_update : Grid_codec.Wire.Decoder.t -> state_update

(** One value proposed/accepted in a consensus instance: the request
    batch (singleton outside T-Paxos), the state after executing it, and
    the replies produced. This tuple is the paper's [<req, state>]; we
    additionally replicate the replies so that after a leader switch the
    new leader can re-answer duplicate requests it never executed. *)
type proposal = { requests : request list; update : state_update; replies : reply list }

val encode_proposal : Grid_codec.Wire.Encoder.t -> proposal -> unit
val decode_proposal : Grid_codec.Wire.Decoder.t -> proposal

(** A log entry carried in recovery messages. *)
type recovery_entry = { instance : int; ballot : Ballot.t; proposal : proposal }

type msg =
  | Client_req of request
  | Reply_msg of reply
  | Prepare of { ballot : Ballot.t; commit_point : int }
      (** New leader's multi-instance prepare; [commit_point] tells
          replicas which entries the leader already knows committed. *)
  | Prepare_ack of {
      ballot : Ballot.t;
      commit_point : int;  (** the follower's committed prefix *)
      snapshot : string option;
          (** encoded snapshot, present iff the follower is ahead of the
              leader's [commit_point] *)
      accepted : recovery_entry list;
          (** accepted-but-not-committed entries above both commit points *)
    }
  | Accept of { ballot : Ballot.t; instance : int; proposal : proposal }
  | Accept_ack of { ballot : Ballot.t; instance : int }
  | Reject of { promised : Ballot.t }
      (** Nack carrying the higher promise that caused the rejection. *)
  | Commit of { ballot : Ballot.t; instance : int }
  | Read_confirm of {
      ballot : Ballot.t;
      req : Grid_util.Ids.Request_id.t;
      lease_anchor : float;
    }
      (** X-Paxos: follower confirms leadership to the highest-ballot
          holder it has accepted, naming the read it saw. [lease_anchor]
          piggybacks a lease renewal: the [sent_at] of the leader
          heartbeat the sender's current grant is anchored to ([nan] when
          it holds no grant or leases are disabled). *)
  | Heartbeat of {
      round_seen : int;
      commit_point : int;
      promised : Ballot.t;
      sent_at : float;
          (** sender's local clock at send time; followers anchor lease
              grants to the leader's [sent_at] so expiry can be compared
              leader-clock against leader-clock *)
      lease_anchor : float;
          (** grant echo, as in [Read_confirm]; [nan] when none *)
    }
  | Catchup_req of { from_instance : int }
  | Catchup of { snapshot : string }
  | Sp_estimate of {
      instance : int;
      round : int;
      estimate : (proposal * int) option;  (** locked value and its round *)
    }
      (** Semi-passive replication (Défago et al., §5 related work): lazy
          consensus with a rotating coordinator, per instance. *)
  | Sp_propose of { instance : int; round : int; proposal : proposal }
  | Sp_ack of { instance : int; round : int }
  | Sp_decide of { instance : int; proposal : proposal }

val msg_tag : msg -> int
(** Stable on-wire constructor tag, shared by every codec version;
    never renumbered. *)

(** Version-1 message body codec: the seed's unversioned encoding,
    kept byte-identical for rolling-upgrade compatibility. The TCP
    transport goes through {!Wire_codec} instead, which wraps this as
    [V1] and adds the compact-header [V2]. *)

val encode_msg : Grid_codec.Wire.Encoder.t -> msg -> unit
val decode_msg : Grid_codec.Wire.Decoder.t -> msg

(** Approximate wire sizes, for the simulator's bandwidth model: payload
    bytes plus a small fixed header per field. *)

val request_size : request -> int
val reply_size : reply -> int
val proposal_size : proposal -> int
val msg_size : msg -> int

val msg_kind : msg -> string
(** Short stable tag per constructor, for metrics and message counting. *)

val all_msg_kinds : string list
(** Every {!msg_kind} value, in tag order — for metric registration. *)

val pp_msg : Format.formatter -> msg -> unit

(** Timers a replica can arm. Timers are never cancelled explicitly:
    handlers re-check state and ignore stale firings, which keeps driver
    plumbing trivial. *)
type timer =
  | Hb_tick  (** periodic heartbeat broadcast *)
  | Suspicion_tick  (** periodic liveness evaluation *)
  | Stability_check of int
      (** candidate hold-down started while observing this round *)
  | Accept_retry of int  (** instance number *)
  | Prepare_retry of int  (** ballot round *)
  | Exec_done of int  (** execution-cost token *)
  | Client_retry of int  (** client-side retransmission, by sequence *)
  | Sp_round_timeout of int * int
      (** semi-passive replication: (instance, round) suspicion timeout *)

val pp_timer : Format.formatter -> timer -> unit

type input = Receive of { src : int; msg : msg } | Timer of timer

(** Node-id convention: replicas occupy [0 .. n-1] within their group
    (shifted by a per-group node base when several groups share one
    network); client [c] is node [client_node_base + c]. Drivers and
    engines share this mapping. *)

val client_node_base : int
val client_node : Grid_util.Ids.Client_id.t -> int
val node_is_client : int -> bool
val client_of_node : int -> Grid_util.Ids.Client_id.t

type action =
  | Send of { dst : int; msg : msg }
  | After of { delay : float; timer : timer }
  | Note of string  (** trace hint; drivers may log or ignore *)

val send : dst:int -> msg -> action
val after : delay:float -> timer -> action
val pp_action : Format.formatter -> action -> unit
