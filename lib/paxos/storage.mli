(** Stable storage for replicas.

    The protocol requires three things to survive a crash: the promised
    ballot, accepted log entries, and the commit point (plus a state
    snapshot so recovery does not replay from the beginning). Storage is
    a record of synchronous persist hooks so engines stay pure; three
    backends are provided:

    - {!null}: persists nothing (benchmarks — the paper's evaluation does
      not model disk latency either);
    - {!memory}: keeps the persisted image in memory (crash-recovery
      tests that simulate losing volatile state only);
    - {!file}: an append-only CRC-protected log plus snapshot file;
    - {!faulty}: a nemesis wrapper over any backend that injects torn
      writes (crash mid-persist) and lost fsyncs. *)

type persisted = {
  promised : Types.Ballot.t;
  entries : Types.recovery_entry list;  (** accepted entries, any order *)
  commit_point : int;
  snapshot : string option;  (** encoded {!Snapshot.t} *)
}

type t = {
  persist_promise : Types.Ballot.t -> unit;
  persist_entry : instance:int -> ballot:Types.Ballot.t -> Types.proposal -> unit;
  persist_commit : int -> unit;
  persist_snapshot : string -> unit;
}

val null : unit -> t

val memory : unit -> t * (unit -> persisted)
(** The second component reads back the current persisted image. *)

type recovery_report = {
  frames_ok : int;  (** CRC-valid frames replayed *)
  records_dropped : int;  (** CRC-valid frames whose body failed to decode *)
  bytes_salvaged : int;  (** length of the valid log prefix *)
  bytes_dropped : int;  (** corrupt suffix abandoned (0 on a clean log) *)
  torn_tail : bool;  (** the log ended in a truncated / CRC-failed record *)
  interior_corruption : bool;
      (** a corrupt record had valid-looking data behind it (bit flip or
          partial overwrite); the suffix cannot be trusted and is dropped *)
  snapshot_used : bool;
  snapshot_corrupt : bool;  (** snapshot file present but failed its CRC *)
  log_truncated : bool;  (** the log was cut back to its valid prefix *)
}

val clean_report : recovery_report
val pp_report : Format.formatter -> recovery_report -> unit

val file : path:string -> t * persisted option * recovery_report
(** Open (or create) a file-backed store; returns the recovered image if
    the files already existed and were non-empty, plus a report of what
    recovery had to repair. Corruption never raises: the valid log prefix
    is salvaged (and the file truncated to it so future appends stay
    readable), a corrupt snapshot falls back to log replay, and any
    instances lost with the corrupt suffix are resynced from peers at
    runtime — {!Replica.load} tolerates the resulting holes and the
    replica catches up through the existing multi-instance prepare /
    snapshot catch-up path. *)

(** {1 Nemesis} *)

exception Crashed
(** Raised by a {!faulty} store to model the process dying mid-persist:
    the record is lost and the engine step that issued it never completes,
    so no message guarded by the persist escapes — which is what makes
    torn-write injection sound for the safety checkers. *)

type fault_ctl = {
  mutable tear_rate : float;  (** probability a persist raises {!Crashed} *)
  mutable drop_rate : float;  (** probability a persist is silently lost *)
  mutable drop_meta_only : bool;
      (** restrict drops to commit-point/snapshot records, whose loss is
          always repairable (defaults to [true]; dropping promise or entry
          records models real fsync lies but can genuinely break Paxos's
          durability contract — only safe for degradation experiments) *)
  mutable torn : int;  (** counters, for assertions and reports *)
  mutable dropped : int;
}

val faulty :
  rng:Grid_util.Rng.t ->
  ?tear_rate:float ->
  ?drop_rate:float ->
  ?drop_meta_only:bool ->
  t ->
  t * fault_ctl
(** Wrap a store with seeded fault dice. Rates default to [0.]; mutate
    the returned {!fault_ctl} to steer injection mid-run (e.g. disable
    tearing during a drain phase). *)

val tear_log : path:string -> rng:Grid_util.Rng.t -> bool
(** Chop 1–64 random trailing bytes off [path ^ ".log"], as a crash mid
    write would. [false] if there was nothing to tear. *)

val flip_byte : path:string -> rng:Grid_util.Rng.t -> bool
(** Flip one random bit somewhere in [path ^ ".log"] (interior corruption
    — a decayed sector or buggy firmware). [false] if the log is empty. *)
