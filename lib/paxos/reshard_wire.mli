(** Payload envelopes for the elastic-resharding control plane
    (DESIGN.md §17): the byte formats shared by the shard-layer
    coordinator and the replica-level participant state machine. The
    COMMIT payload is the encoded successor partition map and needs no
    envelope (opaque at this layer). *)

type freeze = { f_lo : string; f_hi : string option; f_target : int }

val encode_freeze : lo:string -> hi:string option -> target:int -> string
val decode_freeze : string -> freeze

type install = {
  i_lo : string;
  i_hi : string option;
  i_count : int;  (** item count from [export_range], for admin counters *)
  i_blob : string;  (** opaque service slice for [import_range] *)
}

val encode_install : lo:string -> hi:string option -> count:int -> blob:string -> string
val decode_install : string -> install

(** Reshard participant state carried inside {!Snapshot}. *)
type participant = {
  p_epoch : int;
  p_map : string;
  p_frozen : (int * string * string option * int) option;
  p_installed : (int * string * string option * int) option;
  p_moved : (string * string option) list;
  p_aborted : int list;
  p_imported : int;
}

val empty_participant : participant
val encode_participant : participant -> string
val decode_participant : string -> participant

val in_range : lo:string -> hi:string option -> string -> bool
(** [lo] inclusive, [hi] exclusive, [None] = top of keyspace. *)

val range_subtract :
  (string * string option) list ->
  lo:string ->
  hi:string option ->
  (string * string option) list
(** Remove [\[lo, hi)] from every range: a committed install restores
    ownership of whatever part of a previously handed-away range it
    covers, cut points need not match. *)

val footprint_hits : (string * string option) list -> string list -> bool
(** Does the footprint intersect any range? ["*"] hits every nonempty
    range set; empty footprints hit nothing. *)
