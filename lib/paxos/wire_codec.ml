(** Versioned wire codecs for {!Types.msg}, behind the
    {!Grid_codec.Wire_intf.WIRE} signature the transport is functorized
    over.

    {b V1} is the seed's unversioned encoding, byte-identical to what
    every build since the seed has spoken: no header, first byte is the
    message-tag varint (always [< 0x10]).

    {b V2} prefixes a two-byte compact header and uses it to drop the
    fields that are almost always absent on the hot path:

    - byte 0: magic nibble [0xA] | version nibble [2]
      ({!Grid_codec.Wire_intf.header_byte});
    - byte 1: constructor tag (low nibble; [0xF] escapes to a varint for
      future tags) | per-message flags (bits 4–6):
      {ul
       {- [TRACED]: some carried request has a live trace context; when
          clear, every request body omits its [tid]/[parent] fields;}
       {- [LEASE]: the message's [lease_anchor] is present; when clear
          the 8-byte float is omitted and decodes as [nan];}
       {- [ALIGNED]: every proposal's replies line up 1:1 with its
          requests, so reply bodies omit the request-id echo.}}

    Bodies otherwise reuse the V1 field encodings, so the two codecs
    share all scalar layouts. A V2 frame read by the V1 decoder fails
    its tag check ([0xA2] is not a known tag) and a V1 frame read by the
    V2 decoder fails the magic check — misnegotiation yields a typed
    decode error, never a garbage message.

    Version negotiation: the dial-time hello exchange carries each
    side's highest supported version and both sides settle on the
    minimum ({!negotiate}), so a cluster can be upgraded one replica at
    a time while mixed-version pairs keep talking V1. *)

module Wire = Grid_codec.Wire
module Wire_intf = Grid_codec.Wire_intf
module Ids = Grid_util.Ids
open Types

let min_version = 1
let latest_version = 2

let negotiate ~local_max ~peer_max =
  let v = min local_max peer_max in
  if v >= min_version then Some v else None

module V1 = struct
  type msg = Types.msg

  let version = 1
  let encode m = Wire.encode (fun e -> encode_msg e m)

  let decode s =
    match Wire.decode s decode_msg with
    | m -> Stdlib.Ok m
    | exception Wire.Decode_error { pos; msg } ->
      Error { Wire_intf.version = 1; pos; msg }
end

module V2 = struct
  type msg = Types.msg

  let version = 2

  (* Header flags (byte 1, bits 4-6). *)
  let f_traced = 0x10
  let f_lease = 0x20
  let f_aligned = 0x40

  (* ---------------------------------------------------------------- *)
  (* Flag computation *)

  let request_traced (r : request) = r.trace.tid <> 0 || r.trace.parent <> ""

  let proposal_requests (p : proposal) = p.requests

  let msg_requests = function
    | Client_req r -> [ r ]
    | Accept { proposal; _ } | Sp_propose { proposal; _ } | Sp_decide { proposal; _ }
      ->
      proposal_requests proposal
    | Sp_estimate { estimate = Some (p, _); _ } -> proposal_requests p
    | Prepare_ack { accepted; _ } ->
      List.concat_map (fun (e : recovery_entry) -> proposal_requests e.proposal) accepted
    | _ -> []

  let msg_proposals = function
    | Accept { proposal; _ } | Sp_propose { proposal; _ } | Sp_decide { proposal; _ }
      ->
      [ proposal ]
    | Sp_estimate { estimate = Some (p, _); _ } -> [ p ]
    | Prepare_ack { accepted; _ } ->
      List.map (fun (e : recovery_entry) -> e.proposal) accepted
    | _ -> []

  let proposal_aligned (p : proposal) =
    List.length p.requests = List.length p.replies
    && List.for_all2
         (fun (rq : request) (rp : reply) -> rp.req = rq.id)
         p.requests p.replies

  let msg_lease_present = function
    | Read_confirm { lease_anchor; _ } | Heartbeat { lease_anchor; _ } ->
      not (Float.is_nan lease_anchor)
    | _ -> false

  (* ---------------------------------------------------------------- *)
  (* Bodies: V1 field encodings with the flag-gated fields elided *)

  let encode_request_v2 e ~traced (r : request) =
    Wire.Encoder.uint e (Ids.Client_id.to_int r.id.client);
    Wire.Encoder.uint e r.id.seq;
    encode_rtype e r.rtype;
    Wire.Encoder.string e r.payload;
    if traced then begin
      Wire.Encoder.uint e r.trace.tid;
      Wire.Encoder.string e r.trace.parent
    end

  let decode_request_v2 d ~traced : request =
    let client = Ids.Client_id.of_int (Wire.Decoder.uint d) in
    let seq = Wire.Decoder.uint d in
    let rtype = decode_rtype d in
    let payload = Wire.Decoder.string d in
    let trace =
      if traced then
        let tid = Wire.Decoder.uint d in
        let parent = Wire.Decoder.string d in
        { tid; parent }
      else no_trace
    in
    { id = Ids.Request_id.make ~client ~seq; rtype; payload; trace }

  let encode_proposal_v2 e ~traced ~aligned (p : proposal) =
    Wire.Encoder.list e (encode_request_v2 e ~traced) p.requests;
    encode_state_update e p.update;
    if aligned then
      (* Reply ids are implied positionally by the request list. *)
      Wire.Encoder.list e
        (fun (rp : reply) ->
          encode_status e rp.status;
          Wire.Encoder.string e rp.payload)
        p.replies
    else Wire.Encoder.list e (encode_reply e) p.replies

  let decode_proposal_v2 d ~traced ~aligned : proposal =
    let requests = Wire.Decoder.list d (fun d -> decode_request_v2 d ~traced) in
    let update = decode_state_update d in
    let replies =
      if aligned then begin
        let pairs =
          Wire.Decoder.list d (fun d ->
              let status = decode_status d in
              let payload = Wire.Decoder.string d in
              (status, payload))
        in
        if List.length pairs <> List.length requests then
          raise
            (Wire.Decode_error
               { pos = Wire.Decoder.pos d;
                 msg = "aligned replies do not match the request count" });
        List.map2
          (fun (rq : request) (status, payload) -> { req = rq.id; status; payload })
          requests pairs
      end
      else Wire.Decoder.list d decode_reply
    in
    { requests; update; replies }

  let encode_body e ~traced ~aligned = function
    | Client_req r -> encode_request_v2 e ~traced r
    | Reply_msg r -> encode_reply e r
    | Prepare { ballot; commit_point } ->
      Ballot.encode e ballot;
      Wire.Encoder.uint e commit_point
    | Prepare_ack { ballot; commit_point; snapshot; accepted } ->
      Ballot.encode e ballot;
      Wire.Encoder.uint e commit_point;
      Wire.Encoder.option e (Wire.Encoder.string e) snapshot;
      Wire.Encoder.list e
        (fun (entry : recovery_entry) ->
          Wire.Encoder.uint e entry.instance;
          Ballot.encode e entry.ballot;
          encode_proposal_v2 e ~traced ~aligned entry.proposal)
        accepted
    | Accept { ballot; instance; proposal } ->
      Ballot.encode e ballot;
      Wire.Encoder.uint e instance;
      encode_proposal_v2 e ~traced ~aligned proposal
    | Accept_ack { ballot; instance } ->
      Ballot.encode e ballot;
      Wire.Encoder.uint e instance
    | Reject { promised } -> Ballot.encode e promised
    | Commit { ballot; instance } ->
      Ballot.encode e ballot;
      Wire.Encoder.uint e instance
    | Read_confirm { ballot; req; lease_anchor } ->
      Ballot.encode e ballot;
      Wire.Encoder.uint e (Ids.Client_id.to_int req.client);
      Wire.Encoder.uint e req.seq;
      if not (Float.is_nan lease_anchor) then Wire.Encoder.float e lease_anchor
    | Heartbeat { round_seen; commit_point; promised; sent_at; lease_anchor } ->
      Wire.Encoder.uint e round_seen;
      Wire.Encoder.uint e commit_point;
      Ballot.encode e promised;
      Wire.Encoder.float e sent_at;
      if not (Float.is_nan lease_anchor) then Wire.Encoder.float e lease_anchor
    | Catchup_req { from_instance } -> Wire.Encoder.uint e from_instance
    | Catchup { snapshot } -> Wire.Encoder.string e snapshot
    | Sp_estimate { instance; round; estimate } ->
      Wire.Encoder.uint e instance;
      Wire.Encoder.uint e round;
      Wire.Encoder.option e
        (fun (p, r) ->
          encode_proposal_v2 e ~traced ~aligned p;
          Wire.Encoder.uint e r)
        estimate
    | Sp_propose { instance; round; proposal } ->
      Wire.Encoder.uint e instance;
      Wire.Encoder.uint e round;
      encode_proposal_v2 e ~traced ~aligned proposal
    | Sp_ack { instance; round } ->
      Wire.Encoder.uint e instance;
      Wire.Encoder.uint e round
    | Sp_decide { instance; proposal } ->
      Wire.Encoder.uint e instance;
      encode_proposal_v2 e ~traced ~aligned proposal

  let decode_body d ~tag ~traced ~aligned =
    match tag with
    | 0 -> Client_req (decode_request_v2 d ~traced)
    | 1 -> Reply_msg (decode_reply d)
    | 2 ->
      let ballot = Ballot.decode d in
      let commit_point = Wire.Decoder.uint d in
      Prepare { ballot; commit_point }
    | 3 ->
      let ballot = Ballot.decode d in
      let commit_point = Wire.Decoder.uint d in
      let snapshot = Wire.Decoder.option d Wire.Decoder.string in
      let accepted =
        Wire.Decoder.list d (fun d ->
            let instance = Wire.Decoder.uint d in
            let ballot = Ballot.decode d in
            let proposal = decode_proposal_v2 d ~traced ~aligned in
            { instance; ballot; proposal })
      in
      Prepare_ack { ballot; commit_point; snapshot; accepted }
    | 4 ->
      let ballot = Ballot.decode d in
      let instance = Wire.Decoder.uint d in
      let proposal = decode_proposal_v2 d ~traced ~aligned in
      Accept { ballot; instance; proposal }
    | 5 ->
      let ballot = Ballot.decode d in
      let instance = Wire.Decoder.uint d in
      Accept_ack { ballot; instance }
    | 6 -> Reject { promised = Ballot.decode d }
    | 7 ->
      let ballot = Ballot.decode d in
      let instance = Wire.Decoder.uint d in
      Commit { ballot; instance }
    | 8 ->
      let ballot = Ballot.decode d in
      let client = Ids.Client_id.of_int (Wire.Decoder.uint d) in
      let seq = Wire.Decoder.uint d in
      let lease_anchor =
        if Wire.Decoder.at_end d then Float.nan else Wire.Decoder.float d
      in
      Read_confirm { ballot; req = Ids.Request_id.make ~client ~seq; lease_anchor }
    | 9 ->
      let round_seen = Wire.Decoder.uint d in
      let commit_point = Wire.Decoder.uint d in
      let promised = Ballot.decode d in
      let sent_at = Wire.Decoder.float d in
      let lease_anchor =
        if Wire.Decoder.at_end d then Float.nan else Wire.Decoder.float d
      in
      Heartbeat { round_seen; commit_point; promised; sent_at; lease_anchor }
    | 10 -> Catchup_req { from_instance = Wire.Decoder.uint d }
    | 11 -> Catchup { snapshot = Wire.Decoder.string d }
    | 12 ->
      let instance = Wire.Decoder.uint d in
      let round = Wire.Decoder.uint d in
      let estimate =
        Wire.Decoder.option d (fun d ->
            let p = decode_proposal_v2 d ~traced ~aligned in
            let r = Wire.Decoder.uint d in
            (p, r))
      in
      Sp_estimate { instance; round; estimate }
    | 13 ->
      let instance = Wire.Decoder.uint d in
      let round = Wire.Decoder.uint d in
      let proposal = decode_proposal_v2 d ~traced ~aligned in
      Sp_propose { instance; round; proposal }
    | 14 ->
      let instance = Wire.Decoder.uint d in
      let round = Wire.Decoder.uint d in
      Sp_ack { instance; round }
    | 15 ->
      let instance = Wire.Decoder.uint d in
      let proposal = decode_proposal_v2 d ~traced ~aligned in
      Sp_decide { instance; proposal }
    | n ->
      raise
        (Wire.Decode_error { pos = 1; msg = Printf.sprintf "bad msg tag %d" n })

  (* The lease flag is only read back through the body codecs above (an
     absent float decodes as [nan] because the body ends early), so it
     needs no explicit plumbing: [at_end] arbitrates. Trailing-byte
     detection still holds — a lease float present without the flag
     would decode, but the flag is set exactly when the float is
     written, so the two sides agree by construction and corruption is
     caught by the frame CRC plus the field decoders. *)

  let encode (m : msg) =
    let traced = List.exists request_traced (msg_requests m) in
    let proposals = msg_proposals m in
    let aligned = proposals <> [] && List.for_all proposal_aligned proposals in
    let lease = msg_lease_present m in
    let tag = msg_tag m in
    let flags =
      (if traced then f_traced else 0)
      lor (if aligned then f_aligned else 0)
      lor if lease then f_lease else 0
    in
    Wire.encode (fun e ->
        Wire.Encoder.char e (Wire_intf.header_byte ~version);
        let nibble = if tag < 0xF then tag else 0xF in
        Wire.Encoder.char e (Char.chr (nibble lor flags));
        if tag >= 0xF then Wire.Encoder.uint e (tag - 0xF);
        encode_body e ~traced ~aligned m)

  let decode s =
    match
      if String.length s < 2 then
        raise (Wire.Decode_error { pos = 0; msg = "frame too short for v2 header" });
      (match Wire_intf.header_version s with
      | None ->
        raise (Wire.Decode_error { pos = 0; msg = "bad magic nibble" })
      | Some v when v <> version ->
        raise
          (Wire.Decode_error
             { pos = 0; msg = Printf.sprintf "header version %d, expected %d" v version })
      | Some _ -> ());
      let d = Wire.Decoder.of_string ~pos:1 s in
      let b = Char.code (Wire.Decoder.char d) in
      if b land 0x80 <> 0 then
        raise (Wire.Decode_error { pos = 1; msg = "reserved flag bit set" });
      let traced = b land f_traced <> 0 in
      let aligned = b land f_aligned <> 0 in
      let nibble = b land 0xF in
      let tag = if nibble < 0xF then nibble else 0xF + Wire.Decoder.uint d in
      let m = decode_body d ~tag ~traced ~aligned in
      Wire.Decoder.expect_end d;
      m
    with
    | m -> Stdlib.Ok m
    | exception Wire.Decode_error { pos; msg } ->
      Error { Wire_intf.version = 2; pos; msg }
end

type codec = (module Wire_intf.WIRE with type msg = Types.msg)

let of_version : int -> codec option = function
  | 1 -> Some (module V1)
  | 2 -> Some (module V2)
  | _ -> None

let of_version_exn v =
  match of_version v with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Wire_codec.of_version_exn: version %d" v)

let all : codec list = [ (module V1); (module V2) ]
