open Types
module Rng = Grid_util.Rng
module Bitset = Grid_util.Bitset
module Ids = Grid_util.Ids
module Span = Grid_obs.Span
module Watchdog = Grid_obs.Watchdog

(* Constant labels attached to [Leader_receive] spans; returning string
   literals keeps the instrumented path allocation-free. *)
let rtype_label = function
  | Read -> "read"
  | Write -> "write"
  | Original -> "original"
  | Txn_op _ -> "txn_op"
  | Txn_commit _ -> "txn_commit"
  | Txn_abort _ -> "txn_abort"
  | Txn_prepare _ -> "txn_prepare"
  | Reshard_freeze _ -> "reshard_freeze"
  | Reshard_install _ -> "reshard_install"
  | Reshard_commit _ -> "reshard_commit"
  | Reshard_abort _ -> "reshard_abort"

module Make (S : Service_intf.S) = struct
  type work =
    | W_write of request
    | W_txn_commit of request
        (* also carries the 2PC decision requests for a prepared
           cross-shard transaction: [Txn_commit] replays the prepared
           branch, [Txn_abort] discards it — both as consensus
           instances, so the decision is as durable as the vote *)
    | W_txn_prepare of request
    | W_reshard of request
        (* reshard control-plane markers (FREEZE / INSTALL / COMMIT /
           ABORT): each commits as a consensus instance so the migration
           state machine is exactly as durable as the log *)

  (* Work deferred behind the execution-cost timer (the paper's E). *)
  type exec_work =
    | Exec_batch of work list  (* writes and txn commits, one instance *)
    | Exec_read of request
    | Exec_original of request
    | Exec_txn_op of request

  type pending_read = {
    pr_request : request;
    pr_confirms : Bitset.t;
    mutable pr_exec_done : bool;
    mutable pr_result : string;
    mutable pr_leased : bool;
        (* dispatched on the lease fast path; reverts to the confirm
           path if the lease lapses before execution finishes *)
    pr_watermark : int;  (* commit point at admission *)
    mutable pr_exec_point : int;  (* commit point the read executed at *)
  }

  (* A leader-local transaction branch (T-Paxos). [tx_ops] and
     [tx_replies] are kept reversed. *)
  type txn = {
    mutable tx_state : S.state;
    tx_base : int;  (* commit point at branch time *)
    mutable tx_ops : (request * string option) list;  (* with witnesses *)
    mutable tx_replies : reply list;
    tx_footprint : (string, unit) Hashtbl.t;
  }

  (* A cross-shard transaction branch locked in by a committed 2PC
     prepare instance (DESIGN.md §16). Unlike the leader-local [txn] it
     is replica-level state, reconstructed from the log on every replica:
     a failover leader must honour votes its predecessor cast. The
     footprint stays locked — conflicting writes wait, conflicting
     transaction commits abort — until the commit/abort decision
     instance releases it. *)
  type prepared = {
    p_ops : (request * string option) list;  (* in order, with witnesses *)
    p_replies : reply list;  (* in order *)
    p_footprint : string list;
  }

  let encode_prepared (p : prepared) =
    Grid_codec.Wire.encode (fun e ->
        let module E = Grid_codec.Wire.Encoder in
        E.list e
          (fun (r, w) ->
            encode_request e r;
            E.option e (E.string e) w)
          p.p_ops;
        E.list e (fun r -> encode_reply e r) p.p_replies;
        E.list e (fun k -> E.string e k) p.p_footprint)

  let decode_prepared s =
    Grid_codec.Wire.decode s (fun d ->
        let module D = Grid_codec.Wire.Decoder in
        let p_ops =
          D.list d (fun d ->
              let r = decode_request d in
              let w = D.option d D.string in
              (r, w))
        in
        let p_replies = D.list d decode_reply in
        let p_footprint = D.list d D.string in
        { p_ops; p_replies; p_footprint })

  type inflight = {
    fl_instance : int;
    fl_proposal : proposal;
    fl_acks : Bitset.t;
    fl_post_state : S.state;
    fl_to_send : reply list;  (* replies released at commit time *)
  }

  type phase =
    | Ph_exec  (* waiting on an Exec_done for the current work item *)
    | Ph_prop of inflight

  type leadership = {
    l_ballot : Ballot.t;
    l_queue : work Queue.t;
    mutable l_phase : phase option;
    mutable l_repropose : (int * proposal) list;  (* ascending instances *)
    mutable l_recover_until : int;
        (* highest instance recovered at election: the old leader may
           have committed (and answered) any of them, so reads must not
           execute on our state until the commit point reaches it *)
    mutable l_deferred_reads : request list;
        (* reads received before recovery completed, newest first *)
    l_reads : (Ids.Request_id.t, pending_read) Hashtbl.t;
    l_txns : (int * int, txn) Hashtbl.t;  (* (client, txn id) *)
    mutable l_blocked : work list;
        (* writes held behind a prepared cross-shard lock (reversed);
           re-queued whenever a decision instance releases a lock *)
    l_queued_ids : (Ids.Request_id.t, unit) Hashtbl.t;
    l_grants : float array;
        (* per-follower lease-grant expiry, on the leader's own clock:
           the follower's echoed anchor + lease_ms - clock_skew_bound_ms.
           Own slot unused (the leader always counts itself). *)
  }

  type candidacy = {
    c_ballot : Ballot.t;
    c_acks : Bitset.t;
    c_merged : (int, Ballot.t * proposal) Hashtbl.t;
    mutable c_snapshot : Snapshot.t option;
  }

  type role = Follower | Candidate of candidacy | Leader of leadership

  type t = {
    cfg : Config.t;
    rid : int;
    mutable now : float;  (* driver time of the input being handled *)
    rng : Rng.t;
    storage : Storage.t;
    log : Plog.t;
    mutable promised : Ballot.t;
    mutable role : role;
    mutable app_state : S.state;  (* latest committed service state *)
    dedup : (int, reply) Hashtbl.t;  (* client id -> last committed reply *)
    (* election *)
    last_heard : float array;
    mutable round_seen : int;
    mutable candidate_since : float option;
    (* X-Paxos confirms that arrived before the client request, tagged
       with the leadership ballot they confirmed (stale tags are
       discarded rather than counted toward a later leadership's reads) *)
    pre_confirms : (Ids.Request_id.t, Ballot.t * Bitset.t) Hashtbl.t;
    (* leader-lease grant held as a follower: while [now < lease_until]
       (own clock) this replica refuses to promise to any candidate
       other than [lease_holder]. [lease_anchor] is the [sent_at] of the
       leader heartbeat the grant is anchored to, echoed back so the
       leader can time grant expiry leader-clock against leader-clock. *)
    mutable lease_holder : int;  (* -1 = none (or post-crash blackout) *)
    mutable lease_until : float;
    mutable lease_anchor : float;  (* nan = no grant *)
    (* execution-cost deferral *)
    exec_table : (int, exec_work) Hashtbl.t;
    mutable exec_next : int;
    (* T-Paxos conflict window: footprints of recently committed instances *)
    recent_footprints : (int, string list) Hashtbl.t;
    (* 2PC participant state, derived from committed instances only (so
       it is exactly as durable as the log and survives crash recovery):
       branches whose prepare committed but whose decision has not, and
       the decision tombstones that make commit/abort idempotent under
       duplicate delivery and coordinator failover. *)
    prepared : (int, prepared) Hashtbl.t;  (* cross-txn tid -> branch *)
    txn_outcomes : (int, bool) Hashtbl.t;  (* cross-txn tid -> committed? *)
    (* Elastic-resharding participant state (DESIGN.md §17), derived —
       like the 2PC tables — from committed instances only, so every
       replica of the group reconstructs the same migration view from
       the log (or adopts it from a snapshot). *)
    mutable reshard_epoch : int;  (* highest committed map epoch *)
    mutable reshard_map : string;  (* encoded map at that epoch; "" = seed *)
    mutable frozen : (int * string * string option * int) option;
        (* (epoch, lo, hi, target): committed FREEZE awaiting decision —
           writes into [lo, hi) park in [l_blocked] until it resolves *)
    mutable installed : (int * string * string option * int) option;
        (* (epoch, lo, hi, count): committed INSTALL awaiting decision *)
    mutable moved : (string * string option) list;
        (* ranges handed away: requests touching them get [Wrong_epoch] *)
    reshard_aborted : (int, unit) Hashtbl.t;  (* abort tombstones, by epoch *)
    mutable imported_items : int;  (* items absorbed via INSTALL commits *)
    (* checker support *)
    mutable history : (int * request list * string) list;  (* reversed *)
    mutable commits_seen : int;
    (* admission control: requests shed with [Overloaded] while leading *)
    mutable shed_reads : int;
    mutable shed_writes : int;
    (* observability: lifecycle span recorder plus the precomputed actor
       label, so the disabled path costs one branch and no allocation *)
    obs : Span.Recorder.t;
    actor : string;
    sid_receive : string;
        (* precomputed [Leader_receive] span id: downstream spans of a
           traced request parent under this replica's receive span *)
    wd : Watchdog.monitor;  (* runtime invariant checks; one-branch when off *)
  }

  let create ~cfg ~id ?(storage = Storage.null ()) ?seed ?(obs = Span.Recorder.disabled)
      ?actor ?(watchdog = Watchdog.disabled) () =
    let seed = match seed with Some s -> s | None -> 0x5eed + id in
    let actor = match actor with Some a -> a | None -> "r" ^ string_of_int id in
    {
      cfg;
      rid = id;
      now = 0.0;
      rng = Rng.of_int seed;
      storage;
      log = Plog.create ();
      promised = Ballot.zero;
      role = Follower;
      app_state = S.initial ();
      dedup = Hashtbl.create 32;
      last_heard = Array.make cfg.n neg_infinity;
      round_seen = 0;
      candidate_since = None;
      pre_confirms = Hashtbl.create 16;
      lease_holder = -1;
      lease_until = neg_infinity;
      lease_anchor = Float.nan;
      exec_table = Hashtbl.create 16;
      exec_next = 0;
      recent_footprints = Hashtbl.create 64;
      prepared = Hashtbl.create 8;
      txn_outcomes = Hashtbl.create 32;
      reshard_epoch = 0;
      reshard_map = "";
      frozen = None;
      installed = None;
      moved = [];
      reshard_aborted = Hashtbl.create 8;
      imported_items = 0;
      history = [];
      commits_seen = 0;
      shed_reads = 0;
      shed_writes = 0;
      obs;
      actor;
      sid_receive = Span.span_id ~actor Span.Leader_receive;
      wd = Watchdog.monitor watchdog ~actor;
    }

  (* Record one span for every request of a proposal (e.g. all members of
     a batched instance hit [Propose]/[Accept_quorum]/[Commit] together). *)
  let span_requests t phase ~instance (requests : request list) =
    if Span.Recorder.enabled t.obs then
      List.iter
        (fun (r : request) ->
          Span.Recorder.span ~tid:r.trace.tid ~parent:r.trace.parent t.obs ~time:t.now
            ~actor:t.actor ~req:r.id ~instance ~detail:"" phase)
        requests

  let id t = t.rid
  let promised t = t.promised
  let commit_point t = Plog.commit_point t.log
  let state t = t.app_state
  let is_leader t = match t.role with Leader _ -> true | _ -> false

  let ballot t =
    match t.role with
    | Leader l -> l.l_ballot
    | Candidate c -> c.c_ballot
    | Follower -> t.promised

  let leader_view t =
    if Ballot.equal t.promised Ballot.zero then None else Some t.promised.holder

  let committed_requests t =
    List.rev t.history |> List.concat_map (fun (_, reqs, _) -> reqs)

  let committed_updates t = List.rev t.history
  let stats_commits t = t.commits_seen
  let stats_shed t = (t.shed_reads, t.shed_writes)

  let prepared_txns t =
    Hashtbl.fold (fun tid _ acc -> tid :: acc) t.prepared [] |> List.sort Int.compare

  let txn_outcome t tid = Hashtbl.find_opt t.txn_outcomes tid
  let reshard_epoch t = t.reshard_epoch
  let reshard_map t = t.reshard_map

  let reshard_phase t =
    match (t.frozen, t.installed) with
    | Some _, _ -> "frozen"
    | None, Some _ -> "installing"
    | None, None -> "idle"

  let moved_ranges t = List.length t.moved
  let imported_items t = t.imported_items

  let queue_depth t =
    match t.role with Leader l -> Queue.length l.l_queue | _ -> 0

  let reads_inflight t =
    match t.role with Leader l -> Hashtbl.length l.l_reads | _ -> 0
  let others t = List.filter (fun r -> r <> t.rid) (Config.replica_ids t.cfg)
  let quorum t = Config.quorum t.cfg

  let note fmt = Format.kasprintf (fun s -> Note s) fmt

  let observe_round t round = if round > t.round_seen then t.round_seen <- round
  let heard t ~from ~now = if from >= 0 && from < t.cfg.n then t.last_heard.(from) <- now

  (* ------------------------------------------------------------------ *)
  (* Leader leases                                                       *)

  (* The anchor to echo on outgoing heartbeats and read-confirms: the
     current grant, but only while it still names the replica we are
     promised to — after adopting a newer leadership the old anchor must
     not leak to the new leader as a grant. *)
  let lease_echo t =
    if
      t.cfg.lease_ms > 0.0 && t.lease_holder >= 0
      && t.lease_holder = t.promised.holder
      && t.now < t.lease_until
    then t.lease_anchor
    else Float.nan

  (* Leader side: a follower echoed [anchor]; its enforcement window ends
     no earlier than anchor + lease_ms on our clock (message delay only
     extends it), minus the assumed clock-skew bound. *)
  let record_grant t (l : leadership) ~src ~anchor =
    if
      t.cfg.lease_ms > 0.0
      && (not (Float.is_nan anchor))
      && src >= 0 && src < t.cfg.n && src <> t.rid
    then
      l.l_grants.(src) <-
        Float.max l.l_grants.(src)
          (anchor +. t.cfg.lease_ms -. t.cfg.clock_skew_bound_ms)

  let holds_lease t ~now =
    match t.role with
    | Leader l when t.cfg.lease_ms > 0.0 ->
      let live = ref 0 in
      Array.iteri (fun i e -> if i = t.rid || e > now then incr live) l.l_grants;
      !live >= Config.quorum t.cfg
    | _ -> false

  let lease_granted_to t ~now =
    if t.cfg.lease_ms > 0.0 && now < t.lease_until then Some t.lease_holder else None

  (* How long the current grant quorum lasts with no further renewals:
     the quorum-th largest grant expiry, counting the leader itself as
     unexpiring. This is the window the lease mutual-exclusion watchdog
     treats as "claimed" when a lease-local read is served. *)
  let lease_horizon t (l : leadership) =
    let es =
      Array.to_list
        (Array.mapi (fun i e -> if i = t.rid then infinity else e) l.l_grants)
    in
    match List.sort (fun a b -> Float.compare b a) es with
    | sorted -> ( try List.nth sorted (quorum t - 1) with _ -> neg_infinity)

  (* ------------------------------------------------------------------ *)
  (* Snapshots, dedup, commit bookkeeping                                *)

  let current_snapshot t =
    {
      Snapshot.commit_point = Plog.commit_point t.log;
      state = S.encode_state t.app_state;
      dedup = Hashtbl.fold (fun c r acc -> (c, r) :: acc) t.dedup [];
      prepared =
        Hashtbl.fold (fun tid p acc -> (tid, encode_prepared p) :: acc) t.prepared [];
      outcomes = Hashtbl.fold (fun tid o acc -> (tid, o) :: acc) t.txn_outcomes [];
      reshard =
        Reshard_wire.encode_participant
          {
            p_epoch = t.reshard_epoch;
            p_map = t.reshard_map;
            p_frozen = t.frozen;
            p_installed = t.installed;
            p_moved = t.moved;
            p_aborted = Hashtbl.fold (fun e () acc -> e :: acc) t.reshard_aborted [];
            p_imported = t.imported_items;
          };
    }

  let dedup_update t (r : reply) =
    let c = Ids.Client_id.to_int r.req.client in
    match Hashtbl.find_opt t.dedup c with
    | Some prev when prev.req.seq >= r.req.seq -> ()
    | _ -> Hashtbl.replace t.dedup c r

  let dedup_lookup t (req : request) =
    if t.cfg.disable_dedup then `Fresh
    else
    match Hashtbl.find_opt t.dedup (Ids.Client_id.to_int req.id.client) with
    | Some prev when prev.req.seq = req.id.seq -> `Resend prev
    | Some prev when prev.req.seq > req.id.seq -> `Stale
    | _ -> `Fresh

  (* 2PC participant tracking, applied to every committed instance (live
     commits, catch-up replay, and crash-recovery replay alike): a
     committed [Txn_prepare] locks the branch in; the committed decision
     releases it and leaves a tombstone so duplicate decisions — and
     racing commit-vs-abort from a coordinator and its recovery — resolve
     identically on every replica. *)
  let track_2pc t (p : proposal) =
    List.iter
      (fun (r : request) ->
        match r.rtype with
        | Txn_prepare tid ->
          if not (Hashtbl.mem t.txn_outcomes tid) then
            Hashtbl.replace t.prepared tid (decode_prepared r.payload)
        | Txn_commit tid when Hashtbl.mem t.prepared tid ->
          Hashtbl.remove t.prepared tid;
          Hashtbl.replace t.txn_outcomes tid true
        | Txn_abort tid when Hashtbl.mem t.prepared tid ->
          Hashtbl.remove t.prepared tid;
          Hashtbl.replace t.txn_outcomes tid false
        | _ -> ())
      p.requests;
    (* Bound the tombstone table. Cross-txn tids are allocated from a
       monotone counter, so pruning far-below-max is safe: a decision for
       a pruned tid can only be a very stale duplicate, and its prepare
       can no longer be live (it was tombstoned, hence decided). *)
    if Hashtbl.length t.txn_outcomes > 8192 then begin
      let mx = Hashtbl.fold (fun tid _ m -> max tid m) t.txn_outcomes 0 in
      Hashtbl.filter_map_inplace
        (fun tid v -> if tid < mx - 4096 then None else Some v)
        t.txn_outcomes
    end

  (* Reshard participant tracking, applied — like [track_2pc] — to every
     committed instance on every path (live commit, catch-up replay,
     crash-recovery replay). The committed FREEZE locks the moving range;
     the committed COMMIT activates the successor map, converting the
     source's frozen range into a moved one and dissolving the target's
     pending install; a committed ABORT tombstones the epoch so a racing
     late COMMIT for it loses identically everywhere. *)
  let track_reshard t (p : proposal) =
    List.iter
      (fun (r : request) ->
        match r.rtype with
        | Reshard_freeze e -> (
          if
            e > t.reshard_epoch
            && (not (Hashtbl.mem t.reshard_aborted e))
            && t.frozen = None
          then
            match Reshard_wire.decode_freeze r.payload with
            | { f_lo; f_hi; f_target } -> t.frozen <- Some (e, f_lo, f_hi, f_target)
            | exception _ -> ())
        | Reshard_install e -> (
          if e > t.reshard_epoch && not (Hashtbl.mem t.reshard_aborted e) then
            match Reshard_wire.decode_install r.payload with
            | { i_lo; i_hi; i_count; _ } ->
              t.installed <- Some (e, i_lo, i_hi, i_count)
            | exception _ -> ())
        | Reshard_commit e when e > t.reshard_epoch ->
          (match t.frozen with
          | Some (e', lo, hi, _) when e' = e ->
            (* Source side: the handed-away range only becomes
               unroutable here, at the commit point — not at freeze
               time, so an aborted migration simply thaws. *)
            t.moved <- (lo, hi) :: t.moved;
            t.frozen <- None
          | _ -> ());
          (match t.installed with
          | Some (e', lo, hi, count) when e' = e ->
            (* Target side: only now may the imported range be served.
               If an earlier split had moved any part of this range out,
               the commit restores ownership — by interval subtraction,
               since the two transitions need not share cut points (a
               merge can bring back a wider range than the split that
               left). *)
            t.moved <- Reshard_wire.range_subtract t.moved ~lo ~hi;
            t.imported_items <- t.imported_items + count;
            t.installed <- None
          | _ -> ());
          t.reshard_epoch <- e;
          t.reshard_map <- r.payload
        | Reshard_abort e ->
          Hashtbl.replace t.reshard_aborted e ();
          (match t.frozen with
          | Some (e', _, _, _) when e' = e -> t.frozen <- None
          | _ -> ());
          (match t.installed with
          | Some (e', _, _, _) when e' = e -> t.installed <- None
          | _ -> ())
        | _ -> ())
      p.requests;
    (* Bound the tombstone table: epochs are monotone, so far-below-max
       entries can only be hit by very stale duplicates whose freeze can
       no longer be live. *)
    if Hashtbl.length t.reshard_aborted > 8192 then begin
      let mx = Hashtbl.fold (fun e () m -> max e m) t.reshard_aborted 0 in
      Hashtbl.filter_map_inplace
        (fun e v -> if e < mx - 4096 then None else Some v)
        t.reshard_aborted
    end

  let install_reshard_participant t (p : Reshard_wire.participant) =
    t.reshard_epoch <- p.p_epoch;
    t.reshard_map <- p.p_map;
    t.frozen <- p.p_frozen;
    t.installed <- p.p_installed;
    t.moved <- p.p_moved;
    Hashtbl.reset t.reshard_aborted;
    List.iter (fun e -> Hashtbl.replace t.reshard_aborted e ()) p.p_aborted;
    t.imported_items <- p.p_imported

  let record_commit_bookkeeping t ~instance (p : proposal) =
    List.iter (dedup_update t) p.replies;
    track_2pc t p;
    track_reshard t p;
    (* Dup-commit watchdog: a (client, seq) must never commit at two
       different instances — that is exactly the bug the dedup table
       prevents and [disable_dedup] plants. *)
    List.iter
      (fun (r : request) ->
        Watchdog.record_commit t.wd
          ~client:(Ids.Client_id.to_int r.id.client)
          ~seq:r.id.seq ~instance)
      p.requests;
    (* Footprints for T-Paxos conflict detection: derived from the ops. *)
    let footprint =
      List.concat_map
        (fun (r : request) ->
          match r.rtype with
          | Read | Txn_commit _ | Txn_abort _ | Txn_prepare _
          | Reshard_freeze _ | Reshard_install _ | Reshard_commit _
          | Reshard_abort _ ->
            []
          | Write | Original | Txn_op _ -> (
            try S.footprint (S.decode_op r.payload) with _ -> [ "*" ]))
        p.requests
    in
    Hashtbl.replace t.recent_footprints instance footprint;
    (* Bound the window. *)
    if Hashtbl.length t.recent_footprints > 2048 then begin
      let cp = Plog.commit_point t.log in
      Hashtbl.filter_map_inplace
        (fun i v -> if i < cp - 1024 then None else Some v)
        t.recent_footprints
    end;
    if t.cfg.record_history then
      t.history <- (instance, p.requests, S.encode_state t.app_state) :: t.history;
    t.commits_seen <- t.commits_seen + 1;
    if t.commits_seen mod t.cfg.snapshot_interval = 0 then begin
      t.storage.persist_snapshot (Snapshot.encode (current_snapshot t));
      Plog.prune_below t.log (Plog.commit_point t.log)
    end

  let install_snapshot t (snap : Snapshot.t) =
    if snap.commit_point > Plog.commit_point t.log then begin
      t.app_state <- S.decode_state snap.state;
      List.iter (fun (_, r) -> dedup_update t r) snap.dedup;
      Hashtbl.reset t.prepared;
      Hashtbl.reset t.txn_outcomes;
      List.iter (fun (tid, b) -> Hashtbl.replace t.prepared tid (decode_prepared b))
        snap.prepared;
      List.iter (fun (tid, o) -> Hashtbl.replace t.txn_outcomes tid o) snap.outcomes;
      (match snap.reshard with
      | "" -> ()  (* pre-reshard image: keep the derived view we have *)
      | s -> (
        match Reshard_wire.decode_participant s with
        | p -> install_reshard_participant t p
        | exception _ -> ()));
      Plog.install_commit_point t.log snap.commit_point;
      t.storage.persist_commit snap.commit_point;
      t.storage.persist_snapshot (Snapshot.encode snap)
    end

  (* ------------------------------------------------------------------ *)
  (* State-update construction and application                           *)

  let make_update t ~old_state ~new_state ~witness =
    let full () = Full (S.encode_state new_state) in
    let delta () =
      match S.diff ~old_state new_state with Some d -> Delta d | None -> full ()
    in
    match t.cfg.coordination with
    | `Request_shipping ->
      (* Classic Multi-Paxos ships no state; followers re-execute. *)
      Delta ""
    | `State_shipping -> (
      match t.cfg.ship with
      | `Full -> full ()
      | `Delta -> delta ()
      | `Witness -> ( match witness with Some w -> Witness w | None -> delta ()))

  (* Apply a committed entry's update to the follower's state. *)
  let apply_update t (p : proposal) =
    match t.cfg.coordination with
    | `Request_shipping ->
      (* Replicated state machine: re-execute with the local RNG and
         clock. Deterministic services stay consistent; nondeterministic
         ones diverge — which is the point of the baseline. *)
      List.iter
        (fun (r : request) ->
          match r.rtype with
          | Read | Txn_commit _ | Txn_abort _ | Txn_prepare _
          | Reshard_freeze _ | Reshard_commit _ | Reshard_abort _ ->
            (* Protocol markers: their payloads are not service ops (the
               2PC markers carry op counts and prepared-branch blobs,
               the reshard markers carry envelopes and maps). The ops of
               a committed cross-shard branch appear in the decision
               instance as ordinary [Txn_op] requests and re-execute
               below. *)
            ()
          | Reshard_install _ -> (
            (* Snapshot handoff under request shipping: there is no
               shipped state to adopt, so the imported slice re-applies
               from the committed envelope ([import_range] is
               idempotent, so replay paths are harmless). *)
            match Reshard_wire.decode_install r.payload with
            | env -> t.app_state <- S.import_range t.app_state env.i_blob
            | exception _ -> ())
          | Write | Original | Txn_op _ ->
            let op = S.decode_op r.payload in
            t.app_state <- (S.apply ~rng:t.rng ~now:t.now t.app_state op).state)
        p.requests
    | `State_shipping -> (
      match p.update with
    | Full s -> t.app_state <- S.decode_state s
    | Delta d -> t.app_state <- S.patch t.app_state d
    | Witness w -> (
      match p.requests with
      | [ r ] ->
        let op = S.decode_op r.payload in
        let st, _ = S.replay t.app_state op ~witness:w in
        t.app_state <- st
      | _ ->
        (* Witness shipping is only produced for singleton proposals;
           treat anything else as corrupt input. *)
        invalid_arg "Replica: witness update with non-singleton batch"))

  (* ------------------------------------------------------------------ *)
  (* Leader: proposing                                                   *)

  let broadcast t msg = List.map (fun dst -> send ~dst msg) (others t)

  let start_accept t (l : leadership) ~instance ~proposal ~post_state ~to_send =
    span_requests t Span.Propose ~instance proposal.requests;
    let acks = Bitset.create t.cfg.n in
    Bitset.set acks t.rid;
    ignore (Plog.accept t.log ~instance ~ballot:l.l_ballot proposal);
    t.storage.persist_entry ~instance ~ballot:l.l_ballot proposal;
    l.l_phase <-
      Some
        (Ph_prop
           {
             fl_instance = instance;
             fl_proposal = proposal;
             fl_acks = acks;
             fl_post_state = post_state;
             fl_to_send = to_send;
           });
    broadcast t (Accept { ballot = l.l_ballot; instance; proposal })
    @ [ after ~delay:t.cfg.accept_retry_ms (Accept_retry instance) ]

  let reply_actions replies =
    List.map (fun (r : reply) -> send ~dst:(client_node r.req.client) (Reply_msg r)) replies

  (* ------------------------------------------------------------------ *)
  (* Stepping down                                                       *)

  (* Returns the actions of the demotion: a typed [Retry] reply for every
     pending read, so clients fail over to the new leader immediately
     instead of waiting out their retransmission timers. (Transactions
     are lost, so their commits will abort, §3.6.) Stale pre-confirms
     must not survive into a later leadership of this replica. *)
  let step_down t =
    let acts =
      match t.role with
      | Leader l ->
        let dropped =
          Hashtbl.fold
            (fun id _ acc -> { req = id; status = Retry; payload = "" } :: acc)
            l.l_reads []
        in
        let dropped =
          List.fold_left
            (fun acc (r : request) ->
              { req = r.id; status = Retry; payload = "" } :: acc)
            dropped l.l_deferred_reads
        in
        Hashtbl.reset l.l_reads;
        l.l_deferred_reads <- [];
        Hashtbl.reset l.l_txns;
        Queue.clear l.l_queue;
        Hashtbl.reset l.l_queued_ids;
        l.l_phase <- None;
        t.role <- Follower;
        reply_actions dropped
      | Candidate _ ->
        t.role <- Follower;
        []
      | Follower -> []
    in
    t.candidate_since <- None;
    Hashtbl.reset t.pre_confirms;
    Hashtbl.reset t.exec_table;
    acts

  (* Commit the in-flight instance (majority of accept-acks reached). *)
  let rec do_commit t (l : leadership) (fl : inflight) =
    span_requests t Span.Accept_quorum ~instance:fl.fl_instance fl.fl_proposal.requests;
    ignore (Plog.commit t.log ~instance:fl.fl_instance);
    t.storage.persist_commit (Plog.commit_point t.log);
    t.app_state <- fl.fl_post_state;
    let prepared_before = Hashtbl.length t.prepared in
    let frozen_before = t.frozen in
    record_commit_bookkeeping t ~instance:fl.fl_instance fl.fl_proposal;
    (* A decision instance just released a prepared cross-shard lock, or
       a reshard decision resolved the frozen range (COMMIT turns it
       into a moved range, ABORT thaws it): writes stashed behind either
       become eligible again. Re-queue the lot — pump re-checks each
       against the remaining locks, answering [Wrong_epoch] for writes
       whose range moved away. *)
    if
      (Hashtbl.length t.prepared < prepared_before
      || (frozen_before <> None && t.frozen = None))
      && l.l_blocked <> []
    then begin
      List.iter (fun w -> Queue.add w l.l_queue) (List.rev l.l_blocked);
      l.l_blocked <- []
    end;
    List.iter
      (fun (r : request) -> Hashtbl.remove l.l_queued_ids r.id)
      fl.fl_proposal.requests;
    l.l_phase <- None;
    span_requests t Span.Commit ~instance:fl.fl_instance fl.fl_proposal.requests;
    (* Lost-ack watchdog: every Ok reply released here must correspond to
       a commit just recorded above. *)
    List.iter
      (fun (r : reply) ->
        match r.status with
        | Ok ->
          Watchdog.write_acked t.wd
            ~client:(Ids.Client_id.to_int r.req.client)
            ~seq:r.req.seq
        | _ -> ())
      fl.fl_to_send;
    broadcast t (Commit { ballot = l.l_ballot; instance = fl.fl_instance })
    @ reply_actions fl.fl_to_send
    @ pump t

  (* Drive the leader pipeline: re-proposals first, then queued work. *)
  and pump t =
    match t.role with
    | Leader ({ l_phase = None; _ } as l) -> (
      match l.l_repropose with
      | (instance, proposal) :: rest ->
        l.l_repropose <- rest;
        if instance <> Plog.commit_point t.log + 1 then
          (* A hole in the recovered sequence cannot correspond to any
             chosen instance (the old leader proposed sequentially); drop
             the tail defensively. *)
          (l.l_repropose <- [];
           (* Entries above a hole can never have been chosen, so reads
              need not wait for them either. *)
           l.l_recover_until <- Plog.commit_point t.log;
           note "dropped non-contiguous recovered entries from %d" instance :: pump t)
        else begin
          (* Re-propose under our ballot. The post-state comes from the
             recovered update itself. *)
          let post_state =
            match proposal.update with
            | Full s -> S.decode_state s
            | Delta d -> S.patch t.app_state d
            | Witness w -> (
              match proposal.requests with
              | [ r ] -> fst (S.replay t.app_state (S.decode_op r.payload) ~witness:w)
              | _ -> t.app_state)
          in
          let acts =
            start_accept t l ~instance ~proposal ~post_state
              ~to_send:proposal.replies
          in
          (if quorum t <= 1 then
             match l.l_phase with
             | Some (Ph_prop fl) -> acts @ do_commit t l fl
             | _ -> acts
           else acts)
        end
      | [] ->
        (* Recovery (if any) has fully committed once the commit point
           reaches the last recovered instance: release the reads that
           arrived in the window where our state could still be missing
           writes the old leader had answered. *)
        let released =
          if
            l.l_deferred_reads <> []
            && Plog.commit_point t.log >= l.l_recover_until
          then begin
            let pending = List.rev l.l_deferred_reads in
            l.l_deferred_reads <- [];
            List.concat_map (fun r -> admit_read t l r) pending
          end
          else []
        in
        released @ pump_queue t l)
    | _ -> []

  and pump_queue t (l : leadership) =
    match Queue.take_opt l.l_queue with
        | None -> []
        | Some first ->
          (* Batch every queued work item — writes and transaction
             commits — into one instance: the decided value is
             ⟨batch, state-after-batch⟩, which preserves the no-gap rule
             while letting throughput scale with the number of
             closed-loop clients (cf. Figures 5–6 and 9). Requests that
             committed while queued (e.g. via a re-proposal) are filtered
             here and answered from the dedup cache. *)
          let batch = ref [ first ] in
          let continue_batch = ref true in
          while !continue_batch do
            match Queue.peek_opt l.l_queue with
            | Some w when List.length !batch < t.cfg.max_batch ->
              ignore (Queue.take l.l_queue);
              batch := w :: !batch
            | _ -> continue_batch := false
          done;
          let stale_replies = ref [] in
          let fresh =
            List.filter
              (fun w ->
                let r =
                  match w with
                  | W_write r | W_txn_commit r | W_txn_prepare r | W_reshard r -> r
                in
                match dedup_lookup t r with
                | `Fresh -> true
                | `Resend reply ->
                  Hashtbl.remove l.l_queued_ids r.id;
                  stale_replies := reply :: !stale_replies;
                  false
                | `Stale ->
                  Hashtbl.remove l.l_queued_ids r.id;
                  false)
              (List.rev !batch)
          in
          let resend = reply_actions !stale_replies in
          if fresh = [] then resend @ pump t
          else resend @ begin_execution t l (Exec_batch fresh)

  (* Admit a read into the window and start executing it. Callers have
     already checked admission control and that recovery is complete
     (the leader's state covers every instance the old leader could
     have answered from). *)
  and admit_read t (l : leadership) (r : request) =
    if Hashtbl.mem l.l_reads r.id then []
    else begin
      let confirms =
        match Hashtbl.find_opt t.pre_confirms r.id with
        | Some (b, set) ->
          Hashtbl.remove t.pre_confirms r.id;
          (* Confirms stashed under an earlier leadership of this replica
             confirmed a promise that may since have been usurped and
             re-won: they say nothing about the current ballot. *)
          if Ballot.equal b l.l_ballot then set else Bitset.create t.cfg.n
        | None -> Bitset.create t.cfg.n
      in
      Bitset.set confirms t.rid;
      let pr =
        {
          pr_request = r;
          pr_confirms = confirms;
          pr_exec_done = false;
          pr_result = "";
          pr_leased = holds_lease t ~now:t.now;
          pr_watermark = Plog.commit_point t.log;
          pr_exec_point = -1;
        }
      in
      Hashtbl.replace l.l_reads r.id pr;
      begin_execution t l (Exec_read r)
    end

  (* Defer work behind the execution cost E, or run it inline if E = 0. *)
  and begin_execution t (_l : leadership) work =
    if t.cfg.execution_cost_ms > 0.0 then begin
      let tok = t.exec_next in
      t.exec_next <- t.exec_next + 1;
      Hashtbl.replace t.exec_table tok work;
      let cost =
        match work with
        | Exec_batch batch ->
          (match t.role with Leader l -> l.l_phase <- Some Ph_exec | _ -> ());
          (* Transaction ops already paid E when they executed; only the
             fresh writes in the batch consume execution time now. *)
          let writes =
            List.length (List.filter (function W_write _ -> true | _ -> false) batch)
          in
          t.cfg.execution_cost_ms *. Float.of_int (Stdlib.max 1 writes)
        | _ -> t.cfg.execution_cost_ms
      in
      [ after ~delay:cost (Exec_done tok) ]
    end
    else
      match t.role with
      | Leader l -> finish_execution t l work
      | _ -> []

  (* The service's [apply] reads the leader's local clock from [t.now],
     which [handle] refreshes on every input. *)
  and finish_execution t (l : leadership) work =
    match work with
    | Exec_batch batch ->
      (* Execute the batch in arrival order on the committed state; the
         instance decides the whole batch plus the final state. Writes
         execute here; transaction commits are conflict-checked and
         rebased onto the running batch state. Aborts and conflicts need
         no consensus: their replies go out immediately. *)
      let batch_state = ref t.app_state in
      let batch_fps : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      let requests = ref [] and replies = ref [] and to_send = ref [] in
      let instant = ref [] in
      let last_witness = ref None in
      let conflicts_with_batch txn =
        let star = Hashtbl.mem txn.tx_footprint "*" in
        Hashtbl.length batch_fps > 0
        && (star || Hashtbl.mem batch_fps "*"
           || Hashtbl.fold
                (fun k () acc -> acc || Hashtbl.mem batch_fps k)
                txn.tx_footprint false)
      in
      let conflicts_with_window txn =
        let cp = Plog.commit_point t.log in
        let star = Hashtbl.mem txn.tx_footprint "*" in
        let rec scan i =
          if i > cp then false
          else
            match Hashtbl.find_opt t.recent_footprints i with
            | None -> true (* window evicted: be conservative *)
            | Some fps ->
              if
                fps <> []
                && (star
                   || List.exists (Hashtbl.mem txn.tx_footprint) fps
                   || List.mem "*" fps)
              then true
              else scan (i + 1)
        in
        scan (txn.tx_base + 1)
      in
      (* Prepared cross-shard locks: branches whose 2PC prepare committed
         (or votes YES earlier in this very batch) and whose decision is
         still pending. Conflicting writes wait behind the decision;
         conflicting transaction commits and prepares lose
         (first-prepared-wins, mirroring first-committer-wins). *)
      let batch_prep_fps : (string, unit) Hashtbl.t = Hashtbl.create 4 in
      (* 2PC decisions taken earlier in this batch: [t.prepared] and
         [t.txn_outcomes] only flip when the instance commits, so without
         this a commit and a racing abort for the same tid batched
         together would both claim the branch. *)
      let batch_decided : (int, bool) Hashtbl.t = Hashtbl.create 4 in
      let keys_of tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
      (* Reshard gate: ranges this group handed away answer [Wrong_epoch]
         — the client adopts the attached map and re-routes — while the
         range a committed FREEZE is moving parks writers in [l_blocked]
         until the decision instance resolves it (reads of a frozen
         range still serve: its content is immutable by construction). *)
      let moved_ranges = t.moved in
      let frozen_ranges =
        match t.frozen with Some (_, lo, hi, _) -> [ (lo, hi) ] | None -> []
      in
      (* Ranges frozen by a FREEZE decided *earlier in this very batch*:
         [t.frozen] only flips when the instance commits, so a prepare
         batched after the freeze marker would otherwise vote YES on
         keys whose slice is about to ship without its ops. Plain writes
         and single-shard commits need no such tracking — their effects
         land in this instance's state update, which the export sees. *)
      let batch_frozen = ref frozen_ranges in
      let hits = Reshard_wire.footprint_hits in
      let wrong_epoch () =
        Wrong_epoch { epoch = t.reshard_epoch; map = t.reshard_map }
      in
      let locked_by_prepared fps =
        fps <> []
        && ((Hashtbl.length batch_prep_fps > 0
            && (List.mem "*" fps
               || Hashtbl.mem batch_prep_fps "*"
               || List.exists (Hashtbl.mem batch_prep_fps) fps))
           || Hashtbl.fold
                (fun _ (p : prepared) acc ->
                  acc
                  || p.p_footprint <> []
                     && (List.mem "*" fps
                        || List.mem "*" p.p_footprint
                        || List.exists (fun k -> List.mem k p.p_footprint) fps))
                t.prepared false)
      in
      List.iter
        (function
          | W_write r -> (
            let op = S.decode_op r.payload in
            let fps = S.footprint op in
            if hits moved_ranges fps then begin
              Hashtbl.remove l.l_queued_ids r.id;
              instant :=
                { req = r.id; status = wrong_epoch (); payload = "" } :: !instant
            end
            else if hits frozen_ranges fps then
              (* The moving range is write-frozen until the migration
                 decides; the blocked writer re-queues on COMMIT (and
                 then redirects) or ABORT (and then executes). *)
              l.l_blocked <- W_write r :: l.l_blocked
            else if locked_by_prepared fps then
              (* Held behind a prepared cross-shard branch: the write
                 waits for that branch's decision instance instead of
                 racing the 2PC outcome. It keeps its [l_queued_ids] slot
                 so retransmissions stay deduplicated while it waits. *)
              l.l_blocked <- W_write r :: l.l_blocked
            else begin
              let outcome = S.apply ~rng:t.rng ~now:t.now !batch_state op in
              batch_state := outcome.state;
              last_witness := outcome.witness;
              let reply =
                { req = r.id; status = Ok; payload = S.encode_result outcome.result }
              in
              requests := r :: !requests;
              replies := reply :: !replies;
              to_send := reply :: !to_send;
              List.iter (fun k -> Hashtbl.replace batch_fps k ()) fps
            end)
          | W_txn_commit r -> (
            let tid =
              match r.rtype with Txn_commit tid | Txn_abort tid -> tid | _ -> -1
            in
            let key = (Ids.Client_id.to_int r.id.client, tid) in
            let instant_status status =
              Hashtbl.remove l.l_queued_ids r.id;
              instant := { req = r.id; status; payload = "" } :: !instant
            in
            let decided =
              match Hashtbl.find_opt batch_decided tid with
              | Some _ as d -> d
              | None -> Hashtbl.find_opt t.txn_outcomes tid
            in
            match decided with
            | Some committed ->
              (* Decision tombstone: a duplicate decision, or a
                 coordinator racing its own recovery. Nothing re-executes;
                 the reply reports the recorded outcome — [Ok] to an abort
                 of a committed transaction tells recovery the decision
                 was COMMIT. *)
              instant_status (if committed then Ok else Txn_aborted)
            | None -> (
              match (Hashtbl.find_opt t.prepared tid, r.rtype) with
              | Some p, Txn_commit _ ->
                (* 2PC COMMIT decision for a branch this group voted YES
                   on: replay the frozen ops (with their recorded
                   witnesses) onto the running batch state. The ops, their
                   replies and the decision marker all commit in this one
                   instance; [track_2pc] releases the lock when it does. *)
                batch_state :=
                  List.fold_left
                    (fun st ((opr : request), witness) ->
                      let op = S.decode_op opr.payload in
                      match witness with
                      | Some w -> fst (S.replay st op ~witness:w)
                      | None -> (S.apply ~rng:t.rng ~now:t.now st op).state)
                    !batch_state p.p_ops;
                let commit_reply = { req = r.id; status = Ok; payload = "" } in
                List.iter (fun (opr, _) -> requests := opr :: !requests) p.p_ops;
                requests := r :: !requests;
                List.iter (fun reply -> replies := reply :: !replies) p.p_replies;
                replies := commit_reply :: !replies;
                to_send := commit_reply :: !to_send;
                List.iter (fun k -> Hashtbl.replace batch_fps k ()) p.p_footprint;
                Hashtbl.replace batch_decided tid true
              | Some _, _ ->
                (* 2PC ABORT decision for a prepared branch: the marker
                   alone is decided; committing it discards the branch
                   and releases its locks. *)
                let reply = { req = r.id; status = Txn_aborted; payload = "" } in
                requests := r :: !requests;
                replies := reply :: !replies;
                to_send := reply :: !to_send;
                Hashtbl.replace batch_decided tid false
              | None, Txn_abort _ ->
                (* Presumed abort: no vote on record, nothing to undo. *)
                instant_status Txn_aborted
              | None, _ -> (
                (* Single-shard T-Paxos commit of a leader-local branch. *)
                let abort () = instant_status Txn_aborted in
                match Hashtbl.find_opt l.l_txns key with
                | None ->
                  (* Unknown transaction: ops lost to a leader switch
                     (§3.6). *)
                  abort ()
                | Some txn ->
                  Hashtbl.remove l.l_txns key;
                  let expected_ops =
                    (* The commit payload carries the client's op count so
                       a leader that missed early ops cannot commit a
                       partial batch. *)
                    try Grid_codec.Wire.decode r.payload Grid_codec.Wire.Decoder.uint
                    with _ -> List.length txn.tx_ops
                  in
                  if List.length txn.tx_ops <> expected_ops then abort ()
                  else if hits moved_ranges (keys_of txn.tx_footprint) then
                    (* The branch is pinned to a shard that handed away
                       (part of) its footprint mid-transaction: a typed
                       redirect, never a commit of half the keys under
                       the successor map. *)
                    instant_status (wrong_epoch ())
                  else if hits frozen_ranges (keys_of txn.tx_footprint) then begin
                    (* Migration in flight over the branch's keys: park
                       the commit (and keep the branch) until the
                       decision, then re-check. *)
                    Hashtbl.replace l.l_txns key txn;
                    l.l_blocked <- W_txn_commit r :: l.l_blocked
                  end
                  else if
                    conflicts_with_window txn || conflicts_with_batch txn
                    || locked_by_prepared (keys_of txn.tx_footprint)
                  then instant_status Txn_conflict
                  else begin
                    (* Rebase: replay the recorded ops (with their
                       witnesses) on top of the running batch state. *)
                    let ops = List.rev txn.tx_ops in
                    batch_state :=
                      List.fold_left
                        (fun st ((opr : request), witness) ->
                          let op = S.decode_op opr.payload in
                          match witness with
                          | Some w -> fst (S.replay st op ~witness:w)
                          | None ->
                            (* No witness: the op was deterministic. *)
                            (S.apply ~rng:t.rng ~now:t.now st op).state)
                        !batch_state ops;
                    let commit_reply = { req = r.id; status = Ok; payload = "" } in
                    List.iter (fun (opr, _) -> requests := opr :: !requests) ops;
                    requests := r :: !requests;
                    List.iter
                      (fun reply -> replies := reply :: !replies)
                      (List.rev txn.tx_replies);
                    replies := commit_reply :: !replies;
                    to_send := commit_reply :: !to_send;
                    Hashtbl.iter
                      (fun k () -> Hashtbl.replace batch_fps k ())
                      txn.tx_footprint
                  end)))
          | W_txn_prepare r -> (
            let tid = match r.rtype with Txn_prepare tid -> tid | _ -> -1 in
            let key = (Ids.Client_id.to_int r.id.client, tid) in
            let instant_status status =
              Hashtbl.remove l.l_queued_ids r.id;
              instant := { req = r.id; status; payload = "" } :: !instant
            in
            match Hashtbl.find_opt t.txn_outcomes tid with
            | Some true -> instant_status Ok
            | Some false -> instant_status Txn_aborted
            | None ->
              if Hashtbl.mem t.prepared tid then
                (* A prior prepare for this tid already committed: the
                   YES vote is idempotent. *)
                instant_status Ok
              else (
                match Hashtbl.find_opt l.l_txns key with
                | None ->
                  (* Ops lost (leader switch) or never seen: vote NO.
                     A NO vote needs no durability — recovery presumes
                     abort for any transaction without a committed COMMIT
                     decision. *)
                  instant_status Txn_aborted
                | Some txn ->
                  Hashtbl.remove l.l_txns key;
                  let expected_ops =
                    try Grid_codec.Wire.decode r.payload Grid_codec.Wire.Decoder.uint
                    with _ -> List.length txn.tx_ops
                  in
                  if List.length txn.tx_ops <> expected_ops then
                    instant_status Txn_aborted
                  else if hits moved_ranges (keys_of txn.tx_footprint) then
                    (* Voting YES would promise keys this group no longer
                       owns: redirect the coordinator instead. *)
                    instant_status (wrong_epoch ())
                  else if hits !batch_frozen (keys_of txn.tx_footprint) then begin
                    Hashtbl.replace l.l_txns key txn;
                    l.l_blocked <- W_txn_prepare r :: l.l_blocked
                  end
                  else if
                    conflicts_with_window txn || conflicts_with_batch txn
                    || locked_by_prepared (keys_of txn.tx_footprint)
                  then instant_status Txn_conflict
                  else begin
                    (* YES: freeze the branch into the prepare request
                       itself, so the committed instance carries
                       everything a failover leader needs to finish the
                       transaction, and lock its footprint until the
                       decision arrives. Nothing applies to the batch
                       state yet; the vote reply releases at commit time,
                       which is what makes it a crash-safe promise. *)
                    let p =
                      {
                        p_ops = List.rev txn.tx_ops;
                        p_replies = List.rev txn.tx_replies;
                        p_footprint = keys_of txn.tx_footprint;
                      }
                    in
                    let vote = { req = r.id; status = Ok; payload = "" } in
                    requests := { r with payload = encode_prepared p } :: !requests;
                    replies := vote :: !replies;
                    to_send := vote :: !to_send;
                    List.iter
                      (fun k -> Hashtbl.replace batch_prep_fps k ())
                      p.p_footprint
                  end))
          | W_reshard r -> (
            let instant_reply status payload =
              Hashtbl.remove l.l_queued_ids r.id;
              instant := { req = r.id; status; payload } :: !instant
            in
            let instant_status status = instant_reply status "" in
            (* Decide the marker through consensus: the reply releases at
               commit time, so a phase transition is as durable as the
               log before the coordinator may advance past it.
               [track_reshard] performs the transition when the instance
               commits — on this leader and every other replica alike. *)
            let decide status =
              let reply = { req = r.id; status; payload = "" } in
              requests := r :: !requests;
              replies := reply :: !replies;
              to_send := reply :: !to_send
            in
            match r.rtype with
            | Reshard_freeze e -> (
              if Hashtbl.mem t.reshard_aborted e then instant_status Txn_aborted
              else if e <= t.reshard_epoch then
                (* Stale coordinator: the map already moved past this
                   epoch — hand it the current map. *)
                instant_status (wrong_epoch ())
              else
                match t.frozen with
                | Some (e', _, _, _) when e' = e -> instant_status Ok
                | Some _ ->
                  (* One migration at a time per group. *)
                  instant_status Txn_aborted
                | None -> (
                  match Reshard_wire.decode_freeze r.payload with
                  | { Reshard_wire.f_lo; f_hi; _ } ->
                    (* A prepared cross-shard branch over the moving
                       range is a promise whose effect lands only at its
                       COMMIT decision — *after* the slice would ship.
                       Freezing under it would silently drop those
                       writes at the new owner, so refuse: the
                       coordinator burns the epoch and retries once the
                       branch's decision drains. *)
                    let range = [ (f_lo, f_hi) ] in
                    let prep_locked =
                      Hashtbl.fold
                        (fun k () acc -> acc || hits range [ k ])
                        batch_prep_fps false
                      || Hashtbl.fold
                           (fun _ (p : prepared) acc ->
                             acc || hits range p.p_footprint)
                           t.prepared false
                    in
                    if prep_locked then instant_status Txn_aborted
                    else begin
                      batch_frozen := (f_lo, f_hi) :: !batch_frozen;
                      decide Ok
                    end
                  | exception _ -> instant_status Txn_aborted))
            | Reshard_install e -> (
              if Hashtbl.mem t.reshard_aborted e then instant_status Txn_aborted
              else if e <= t.reshard_epoch then
                (* The install (and its commit) already went through. *)
                instant_status Ok
              else
                match t.installed with
                | Some (e', _, _, _) when e' = e -> instant_status Ok
                | _ -> (
                  match Reshard_wire.decode_install r.payload with
                  | env ->
                    (* Import into the running batch state so the shipped
                       Full/Delta update carries the slice: followers get
                       the handoff through the ordinary ship path and
                       lagging replicas through Catchup snapshots — no
                       new transfer machinery. [import_range] is
                       idempotent, so replay-path re-imports are
                       harmless. *)
                    batch_state := S.import_range !batch_state env.i_blob;
                    decide Ok
                  | exception _ -> instant_status Txn_aborted))
            | Reshard_commit e ->
              if e <= t.reshard_epoch then instant_status Ok  (* duplicate *)
              else if Hashtbl.mem t.reshard_aborted e then
                instant_status Txn_aborted
              else decide Ok
            | Reshard_abort e ->
              if t.reshard_epoch >= e then
                (* The commit decision won the race: [Ok] carrying the
                   committed map tells a recovering coordinator the
                   outcome was COMMIT — mirroring the 2PC "Ok to an
                   abort of a committed transaction" convention. *)
                instant_reply Ok t.reshard_map
              else if Hashtbl.mem t.reshard_aborted e then
                instant_status Txn_aborted
              else decide Txn_aborted
            | _ -> instant_status Txn_aborted))
        batch;
      let instant_actions = reply_actions (List.rev !instant) in
      if !requests = [] then instant_actions @ pump t
      else begin
        let requests = List.rev !requests in
        let update =
          make_update t ~old_state:t.app_state ~new_state:!batch_state
            ~witness:(match requests with [ _ ] -> !last_witness | _ -> None)
        in
        let proposal = { requests; update; replies = List.rev !replies } in
        let instance = Plog.commit_point t.log + 1 in
        span_requests t Span.Apply ~instance requests;
        let acts =
          start_accept t l ~instance ~proposal ~post_state:!batch_state
            ~to_send:(List.rev !to_send)
        in
        instant_actions
        @
        if quorum t <= 1 then
          match l.l_phase with Some (Ph_prop fl) -> acts @ do_commit t l fl | _ -> acts
        else acts
      end
    | Exec_read r -> (
      match Hashtbl.find_opt l.l_reads r.id with
      | None -> []
      | Some pr ->
        let op = S.decode_op r.payload in
        let outcome = S.apply ~rng:t.rng ~now:t.now t.app_state op in
        (* Reads must not change state; the post-state is discarded. *)
        pr.pr_exec_done <- true;
        pr.pr_result <- S.encode_result outcome.result;
        pr.pr_exec_point <- Plog.commit_point t.log;
        Span.Recorder.span ~tid:r.trace.tid ~parent:r.trace.parent t.obs ~time:t.now
          ~actor:t.actor ~req:r.id ~instance:(-1) ~detail:"" Span.Apply;
        check_read_ready t l pr)
    | Exec_original r ->
      (* Unreplicated baseline: execute and answer with no coordination. *)
      let op = S.decode_op r.payload in
      let outcome = S.apply ~rng:t.rng ~now:t.now t.app_state op in
      t.app_state <- outcome.state;
      Span.Recorder.span ~tid:r.trace.tid ~parent:r.trace.parent t.obs ~time:t.now
        ~actor:t.actor ~req:r.id ~instance:(-1) ~detail:"" Span.Apply;
      reply_actions [ { req = r.id; status = Ok; payload = S.encode_result outcome.result } ]
    | Exec_txn_op r -> (
      match r.rtype with
      | Txn_op tid ->
        let key = (Ids.Client_id.to_int r.id.client, tid) in
        let txn =
          match Hashtbl.find_opt l.l_txns key with
          | Some txn -> txn
          | None ->
            let txn =
              {
                tx_state = t.app_state;
                tx_base = Plog.commit_point t.log;
                tx_ops = [];
                tx_replies = [];
                tx_footprint = Hashtbl.create 8;
              }
            in
            Hashtbl.replace l.l_txns key txn;
            txn
        in
        let op = S.decode_op r.payload in
        let outcome = S.apply ~rng:t.rng ~now:t.now txn.tx_state op in
        txn.tx_state <- outcome.state;
        txn.tx_ops <- (r, outcome.witness) :: txn.tx_ops;
        List.iter (fun k -> Hashtbl.replace txn.tx_footprint k ()) (S.footprint op);
        let reply = { req = r.id; status = Ok; payload = S.encode_result outcome.result } in
        txn.tx_replies <- reply :: txn.tx_replies;
        Span.Recorder.span ~tid:r.trace.tid ~parent:r.trace.parent t.obs ~time:t.now
          ~actor:t.actor ~req:r.id ~instance:(-1) ~detail:"" Span.Apply;
        reply_actions [ reply ]
      | _ -> [])

  and check_read_ready t (l : leadership) pr =
    if not pr.pr_exec_done then []
    else if pr.pr_leased && holds_lease t ~now:t.now then begin
      (* Lease fast path: execution alone completes the read — no
         confirm round, zero protocol messages. *)
      Hashtbl.remove l.l_reads pr.pr_request.id;
      Span.Recorder.span ~tid:pr.pr_request.trace.tid ~parent:pr.pr_request.trace.parent
        t.obs ~time:t.now ~actor:t.actor ~req:pr.pr_request.id ~instance:(-1) ~detail:""
        Span.Lease_local;
      Watchdog.lease_claimed t.wd ~now:t.now ~until:(lease_horizon t l)
        ~slack_ms:(2.0 *. t.cfg.clock_skew_bound_ms);
      Watchdog.read_replied t.wd
        ~client:(Ids.Client_id.to_int pr.pr_request.id.client)
        ~seq:pr.pr_request.id.seq ~watermark:pr.pr_watermark
        ~exec_point:pr.pr_exec_point;
      reply_actions [ { req = pr.pr_request.id; status = Ok; payload = pr.pr_result } ]
    end
    else begin
      (* The lease lapsed (or was never held): fall back to the confirm
         protocol. Confirms have been flowing regardless — clients
         broadcast reads to every replica — so the quorum may already be
         in hand. *)
      if pr.pr_leased then pr.pr_leased <- false;
      if Bitset.cardinal pr.pr_confirms >= quorum t then begin
        Hashtbl.remove l.l_reads pr.pr_request.id;
        Watchdog.read_replied t.wd
          ~client:(Ids.Client_id.to_int pr.pr_request.id.client)
          ~seq:pr.pr_request.id.seq ~watermark:pr.pr_watermark
          ~exec_point:pr.pr_exec_point;
        reply_actions [ { req = pr.pr_request.id; status = Ok; payload = pr.pr_result } ]
      end
      else []
    end

  (* ------------------------------------------------------------------ *)
  (* Client request dispatch                                             *)

  (* Admission control. The write window is the leader's pending queue
     ([max_queue]); the read window is the pending-read table
     ([max_inflight]). Reads are additionally shed once the write queue
     passes half its bound — shed-reads-before-writes: a shed read costs
     the client one round trip, a shed write loses queued work, so under
     pressure reads yield their CPU share to the write pipeline first. *)

  let retry_after_ms t backlog =
    (* Rough time to drain the backlog at the configured execution cost
       (floored so zero-cost services still push clients back at least
       one heartbeat), scaled by the backlog itself. *)
    let per_item = Float.max 0.05 t.cfg.execution_cost_ms in
    Float.max t.cfg.hb_period_ms (Float.of_int backlog *. per_item)

  let shed t (r : request) ~backlog =
    (match r.rtype with
    | Read -> t.shed_reads <- t.shed_reads + 1
    | _ -> t.shed_writes <- t.shed_writes + 1);
    Span.Recorder.span ~tid:r.trace.tid ~parent:r.trace.parent t.obs ~time:t.now
      ~actor:t.actor ~req:r.id ~instance:(-1) ~detail:"shed" Span.Leader_receive;
    reply_actions
      [
        {
          req = r.id;
          status = Overloaded { retry_after_ms = retry_after_ms t backlog };
          payload = "";
        };
      ]

  let write_window_full t (l : leadership) =
    t.cfg.max_queue > 0 && Queue.length l.l_queue >= t.cfg.max_queue

  let read_window_full t (l : leadership) =
    (t.cfg.max_inflight > 0
    && Hashtbl.length l.l_reads + List.length l.l_deferred_reads
       >= t.cfg.max_inflight)
    || (t.cfg.max_queue > 0 && Queue.length l.l_queue >= (t.cfg.max_queue + 1) / 2)

  let leader_handle_client t (l : leadership) (r : request) =
    let detail =
      match r.rtype with
      | Read when holds_lease t ~now:t.now -> "read_leased"
      | _ -> rtype_label r.rtype
    in
    Span.Recorder.span ~tid:r.trace.tid ~parent:r.trace.parent t.obs ~time:t.now
      ~actor:t.actor ~req:r.id ~instance:(-1) ~detail Span.Leader_receive;
    (* Hop boundary: everything downstream of this receive — propose,
       apply, commit, the followers' state-ship spans — parents under it,
       so the stitched tree shows client -> leader -> quorum edges. *)
    let r =
      if r.trace.tid = 0 then r
      else { r with trace = { r.trace with parent = t.sid_receive } }
    in
    match r.rtype with
    | Read
      when t.moved <> []
           && Reshard_wire.footprint_hits t.moved
                (try S.footprint (S.decode_op r.payload) with _ -> [ "*" ]) ->
      (* The key range moved to another group: answer with the current
         map so the client re-routes. Reads of a *frozen* range still
         serve below — a frozen range is immutable, so its content here
         stays correct until the commit flips ownership. *)
      reply_actions
        [
          {
            req = r.id;
            status = Wrong_epoch { epoch = t.reshard_epoch; map = t.reshard_map };
            payload = "";
          };
        ]
    | Read ->
      (* A retransmission of a read we already hold is not re-admitted
         (it is already in the window). *)
      if Hashtbl.mem l.l_reads r.id then []
      else if
        List.exists
          (fun (r' : request) -> Ids.Request_id.equal r'.id r.id)
          l.l_deferred_reads
      then []
      else if read_window_full t l then
        shed t r ~backlog:(Queue.length l.l_queue + Hashtbl.length l.l_reads)
      else if Plog.commit_point t.log < l.l_recover_until then begin
        (* Freshly elected and still re-proposing recovered instances:
           our state may be missing writes the old leader answered, so
           executing this read now could travel back in time. It holds
           its admission slot and runs when recovery commits. *)
        Span.Recorder.span ~tid:r.trace.tid ~parent:r.trace.parent t.obs ~time:t.now
          ~actor:t.actor ~req:r.id ~instance:(-1) ~detail:"read_deferred"
          Span.Leader_receive;
        l.l_deferred_reads <- r :: l.l_deferred_reads;
        []
      end
      else admit_read t l r
    | Original -> begin_execution t l (Exec_original r)
    | Write | Txn_commit _ | Txn_prepare _ | Reshard_freeze _ | Reshard_install _
    | Reshard_commit _ | Reshard_abort _ -> (
      match dedup_lookup t r with
      | `Resend reply -> reply_actions [ reply ]
      | `Stale -> []
      | `Fresh ->
        if Hashtbl.mem l.l_queued_ids r.id then []
        else if write_window_full t l then
          (* Shed before touching [l_queued_ids]: an [Overloaded] reply
             promises nothing, so the retransmission must be admittable
             from scratch once the queue drains. *)
          shed t r ~backlog:(Queue.length l.l_queue)
        else begin
          Hashtbl.replace l.l_queued_ids r.id ();
          Queue.add
            (match r.rtype with
            | Write -> W_write r
            | Txn_prepare _ -> W_txn_prepare r
            | Reshard_freeze _ | Reshard_install _ | Reshard_commit _
            | Reshard_abort _ ->
              W_reshard r
            | _ -> W_txn_commit r)
            l.l_queue;
          pump t
        end)
    | Txn_op _ -> begin_execution t l (Exec_txn_op r)
    | Txn_abort tid ->
      if Hashtbl.mem t.prepared tid then (
        (* Aborting a prepared cross-shard branch is itself a 2PC
           decision: it must be replicated through the log (same path as
           a commit decision) so every replica releases the lock and
           records the tombstone. *)
        match dedup_lookup t r with
        | `Resend reply -> reply_actions [ reply ]
        | `Stale -> []
        | `Fresh ->
          if Hashtbl.mem l.l_queued_ids r.id then []
          else if write_window_full t l then shed t r ~backlog:(Queue.length l.l_queue)
          else begin
            Hashtbl.replace l.l_queued_ids r.id ();
            Queue.add (W_txn_commit r) l.l_queue;
            pump t
          end)
      else (
        match Hashtbl.find_opt t.txn_outcomes tid with
        | Some true ->
          (* Cannot abort: the commit decision already committed. [Ok]
             tells a recovering coordinator the outcome was COMMIT. *)
          reply_actions [ { req = r.id; status = Ok; payload = "" } ]
        | Some false ->
          reply_actions [ { req = r.id; status = Txn_aborted; payload = "" } ]
        | None ->
          (* Leader-local branch (or nothing at all): discard instantly,
             no consensus needed — the branch never escaped this leader. *)
          let key = (Ids.Client_id.to_int r.id.client, tid) in
          Hashtbl.remove l.l_txns key;
          reply_actions [ { req = r.id; status = Txn_aborted; payload = "" } ])

  let follower_handle_client t (r : request) =
    match r.rtype with
    | Read -> (
      (* X-Paxos: confirm to the holder of the highest accepted ballot. *)
      match leader_view t with
      | Some holder when holder <> t.rid ->
        [
          send ~dst:holder
            (Read_confirm
               { ballot = t.promised; req = r.id; lease_anchor = lease_echo t });
        ]
      | _ -> [])
    | Write | Original | Txn_op _ | Txn_commit _ | Txn_abort _ | Txn_prepare _
    | Reshard_freeze _ | Reshard_install _ | Reshard_commit _ | Reshard_abort _ ->
      []

  (* ------------------------------------------------------------------ *)
  (* Election                                                            *)

  let alive t ~now =
    List.filter
      (fun r -> r = t.rid || now -. t.last_heard.(r) <= t.cfg.suspicion_ms)
      (Config.replica_ids t.cfg)

  let become_leader t (c : candidacy) =
    (match c.c_snapshot with Some snap -> install_snapshot t snap | None -> ());
    let cp = Plog.commit_point t.log in
    let entries =
      Hashtbl.fold (fun i (_, p) acc -> if i > cp then (i, p) :: acc else acc) c.c_merged []
      |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
    in
    (* Keep only the contiguous run starting at cp+1. *)
    let repropose =
      let rec take expect = function
        | (i, p) :: rest when i = expect -> (i, p) :: take (expect + 1) rest
        | _ -> []
      in
      take (cp + 1) entries
    in
    let l_queued_ids = Hashtbl.create 16 in
    (* Requests being re-proposed are already in flight: without this a
       client retransmission would queue (and execute) them a second
       time. *)
    List.iter
      (fun (_, (p : proposal)) ->
        List.iter (fun (r : request) -> Hashtbl.replace l_queued_ids r.id ()) p.requests)
      repropose;
    (* Confirms stashed while we were a follower or candidate confirmed
       some earlier leadership; they must not count toward our reads. *)
    Hashtbl.reset t.pre_confirms;
    t.role <-
      Leader
        {
          l_ballot = c.c_ballot;
          l_queue = Queue.create ();
          l_phase = None;
          l_repropose = repropose;
          l_recover_until = cp + List.length repropose;
          l_deferred_reads = [];
          l_reads = Hashtbl.create 16;
          l_txns = Hashtbl.create 8;
          l_blocked = [];
          l_queued_ids;
          l_grants = Array.make t.cfg.n neg_infinity;
        };
    note "leader with ballot %a, reproposing %d entries" Ballot.pp c.c_ballot
      (List.length repropose)
    :: pump t

  let start_prepare t ~now:_ =
    t.round_seen <- t.round_seen + 1;
    let ballot = Ballot.make ~round:t.round_seen ~holder:t.rid in
    t.promised <- ballot;
    t.storage.persist_promise ballot;
    let acks = Bitset.create t.cfg.n in
    Bitset.set acks t.rid;
    let merged = Hashtbl.create 8 in
    List.iter
      (fun (e : recovery_entry) -> Hashtbl.replace merged e.instance (e.ballot, e.proposal))
      (Plog.accepted_above t.log (Plog.commit_point t.log));
    let candidacy =
      { c_ballot = ballot; c_acks = acks; c_merged = merged; c_snapshot = None }
    in
    t.role <- Candidate candidacy;
    t.candidate_since <- None;
    if Bitset.cardinal acks >= quorum t then
      (* Single-replica group: the self-promise is already a majority. *)
      become_leader t candidacy
    else
      note "starting prepare with ballot %a" Ballot.pp ballot
      :: broadcast t (Prepare { ballot; commit_point = Plog.commit_point t.log })
      @ [ after ~delay:t.cfg.prepare_retry_ms (Prepare_retry ballot.round) ]

  (* ------------------------------------------------------------------ *)
  (* Message handling                                                    *)

  let handle_prepare t ~now ~src ~ballot ~their_cp =
    heard t ~from:ballot.Ballot.holder ~now;
    observe_round t ballot.round;
    if
      t.cfg.lease_ms > 0.0 && now < t.lease_until
      && ballot.Ballot.holder <> t.lease_holder
    then
      (* Lease enforcement: an unexpired grant refuses promises to any
         other candidate regardless of ballot height — the grant is the
         leader's licence to answer reads locally, and a quorum of
         intersecting refusals is exactly what makes that safe. The
         candidate keeps retrying (Prepare_retry) and wins once the
         grant expires on this clock. *)
      [ send ~dst:src (Reject { promised = t.promised }) ]
    else if Ballot.compare ballot t.promised >= 0 then begin
      (* A higher (or equal, on retry) ballot deposes us. *)
      let demoted =
        match t.role with
        | Leader l when Ballot.compare ballot l.l_ballot > 0 -> step_down t
        | Candidate c when Ballot.compare ballot c.c_ballot > 0 -> step_down t
        | _ -> []
      in
      if Ballot.compare ballot t.promised > 0 then begin
        t.promised <- ballot;
        t.storage.persist_promise ballot
      end;
      t.candidate_since <- None;
      let my_cp = Plog.commit_point t.log in
      let snapshot =
        if my_cp > their_cp then Some (Snapshot.encode (current_snapshot t)) else None
      in
      let accepted = Plog.accepted_above t.log (Stdlib.max my_cp their_cp) in
      demoted
      @ [ send ~dst:src (Prepare_ack { ballot; commit_point = my_cp; snapshot; accepted }) ]
    end
    else [ send ~dst:src (Reject { promised = t.promised }) ]

  let handle_prepare_ack t ~src ~ballot ~snapshot ~accepted =
    match t.role with
    | Candidate c when Ballot.equal ballot c.c_ballot ->
      Bitset.set c.c_acks src;
      (match snapshot with
      | Some s ->
        let snap = Snapshot.decode s in
        (match c.c_snapshot with
        | Some best when best.commit_point >= snap.commit_point -> ()
        | _ -> c.c_snapshot <- Some snap)
      | None -> ());
      List.iter
        (fun (e : recovery_entry) ->
          match Hashtbl.find_opt c.c_merged e.instance with
          | Some (b, _) when Ballot.compare b e.ballot >= 0 -> ()
          | _ -> Hashtbl.replace c.c_merged e.instance (e.ballot, e.proposal))
        accepted;
      if Bitset.cardinal c.c_acks >= quorum t then become_leader t c else []
    | _ -> []

  let handle_accept t ~now ~src ~ballot ~instance ~proposal =
    heard t ~from:ballot.Ballot.holder ~now;
    observe_round t ballot.round;
    if Ballot.compare ballot t.promised >= 0 then begin
      let demoted =
        match t.role with
        | Leader l when not (Ballot.equal ballot l.l_ballot) -> step_down t
        | Candidate c when Ballot.compare ballot c.c_ballot >= 0 -> step_down t
        | _ -> []
      in
      if Ballot.compare ballot t.promised > 0 then begin
        t.promised <- ballot;
        t.storage.persist_promise ballot
      end;
      if Plog.accept t.log ~instance ~ballot proposal then
        t.storage.persist_entry ~instance ~ballot proposal;
      demoted @ [ send ~dst:src (Accept_ack { ballot; instance }) ]
    end
    else [ send ~dst:src (Reject { promised = t.promised }) ]

  let handle_accept_ack t ~src ~ballot ~instance =
    match t.role with
    | Leader l -> (
      match l.l_phase with
      | Some (Ph_prop fl)
        when fl.fl_instance = instance && Ballot.equal ballot l.l_ballot ->
        Bitset.set fl.fl_acks src;
        if Bitset.cardinal fl.fl_acks >= quorum t then do_commit t l fl else []
      | _ -> [])
    | _ -> []

  (* A follower learns an instance was chosen: mark it, then apply the
     updates of every newly contiguous committed instance in order. *)
  let handle_commit t ~now ~src ~ballot ~instance =
    heard t ~from:ballot.Ballot.holder ~now;
    observe_round t ballot.round;
    match t.role with
    | Leader _ -> []  (* leaders commit via accept-acks *)
    | Follower | Candidate _ ->
      let before = Plog.commit_point t.log in
      (* Only commit a value accepted at (or above) the committing ballot.
         An entry below it is a stale accept from a deposed proposer — the
         chosen value may differ (e.g. we rejected the current leader's
         Accept because a failed candidacy left us promised higher), so
         committing it would break agreement. An entry above it is safe:
         once chosen at [ballot], every higher-ballot proposal for the
         instance is bound to the same value. *)
      let entry_current =
        match Plog.get t.log instance with
        | Some e -> e.committed || Ballot.compare e.ballot ballot >= 0
        | None -> false
      in
      if not (entry_current && Plog.commit t.log ~instance) then
        (* Never accepted this instance (or only a stale value): fetch a
           snapshot. *)
        [ send ~dst:src (Catchup_req { from_instance = before + 1 }) ]
      else begin
        let after_cp = Plog.commit_point t.log in
        let rec apply_from i acc =
          if i > after_cp then acc
          else
            match Plog.get t.log i with
            | Some entry ->
              apply_update t entry.proposal;
              span_requests t Span.State_ship ~instance:i entry.proposal.requests;
              record_commit_bookkeeping t ~instance:i entry.proposal;
              apply_from (i + 1) acc
            | None -> acc
        in
        let acts = apply_from (before + 1) [] in
        t.storage.persist_commit after_cp;
        (* A commit beyond our contiguous prefix means we missed earlier
           instances: fetch a snapshot. *)
        if after_cp < instance then
          send ~dst:src (Catchup_req { from_instance = after_cp + 1 }) :: acts
        else acts
      end

  let handle_read_confirm t ~src ~ballot ~req ~lease_anchor =
    match t.role with
    | Leader l when Ballot.equal ballot l.l_ballot -> (
      (* The confirm doubles as a lease renewal. *)
      record_grant t l ~src ~anchor:lease_anchor;
      match Hashtbl.find_opt l.l_reads req with
      | Some pr ->
        Bitset.set pr.pr_confirms src;
        check_read_ready t l pr
      | None ->
        let b =
          match Hashtbl.find_opt t.pre_confirms req with
          | Some (b0, set) when Ballot.equal b0 l.l_ballot -> set
          | _ ->
            let b = Bitset.create t.cfg.n in
            Hashtbl.replace t.pre_confirms req (l.l_ballot, b);
            (* Bound the pre-confirm table against stray confirms. *)
            if Hashtbl.length t.pre_confirms > 4096 then
              Hashtbl.reset t.pre_confirms;
            b
        in
        Bitset.set b src;
        [])
    | _ -> []

  let handle_reject t ~promised:their_promise =
    observe_round t their_promise.Ballot.round;
    if Ballot.compare their_promise t.promised > 0 then begin
      t.promised <- their_promise;
      t.storage.persist_promise their_promise;
      match t.role with
      | Leader _ | Candidate _ ->
        step_down t @ [ note "deposed by ballot %a" Ballot.pp their_promise ]
      | Follower -> []
    end
    else []

  (* ------------------------------------------------------------------ *)
  (* Timers                                                              *)

  let on_hb_tick t ~now =
    heard t ~from:t.rid ~now;
    broadcast t
      (Heartbeat
         {
           round_seen = t.round_seen;
           commit_point = Plog.commit_point t.log;
           promised = t.promised;
           sent_at = now;
           lease_anchor = lease_echo t;
         })
    @ [ after ~delay:t.cfg.hb_period_ms Hb_tick ]

  let on_suspicion_tick t ~now =
    heard t ~from:t.rid ~now;
    let alive_set = alive t ~now in
    (* Ω with stability: the candidate is the incumbent (the holder of
       the highest promise we know) as long as it is alive; only when it
       is suspected do we fall back to the lowest live id. *)
    let candidate =
      match leader_view t with
      | Some holder when List.mem holder alive_set -> holder
      | _ -> List.fold_left Stdlib.min max_int alive_set
    in
    let acts =
      match t.role with
      | Follower when candidate = t.rid -> (
        match t.candidate_since with
        | None ->
          t.candidate_since <- Some now;
          [ after ~delay:t.cfg.stability_ms (Stability_check t.round_seen) ]
        | Some _ -> [])
      | Follower | Candidate _ | Leader _ ->
        if candidate <> t.rid then t.candidate_since <- None;
        []
    in
    acts @ [ after ~delay:(t.cfg.suspicion_ms /. 2.0) Suspicion_tick ]

  let on_stability_check t ~now =
    match (t.role, t.candidate_since) with
    | Follower, Some since when now -. since >= t.cfg.stability_ms -. 1e-9 ->
      let alive_set = alive t ~now in
      if
        t.cfg.lease_ms > 0.0 && now < t.lease_until && t.lease_holder <> t.rid
      then begin
        (* Our own grant (or post-crash blackout) blocks our candidacy
           too; the suspicion tick re-arms the stability check after the
           grant expires, so liveness only shifts by up to one lease. *)
        t.candidate_since <- None;
        []
      end
      else begin
        (* Same candidate rule as the suspicion tick: the incumbent (the
           holder of the highest promise) wins as long as it is alive.
           Checking only for the lowest live id here would deadlock a
           leader that restarted faster than the suspicion timeout — it
           is the holder, so nobody else arms candidacy, yet as a
           restarted follower it would refuse to prepare. *)
        let candidate =
          match leader_view t with
          | Some holder when List.mem holder alive_set -> holder
          | _ -> List.fold_left Stdlib.min max_int alive_set
        in
        if candidate = t.rid then start_prepare t ~now
        else begin
          t.candidate_since <- None;
          []
        end
      end
    | _ ->
      t.candidate_since <- None;
      []

  let on_accept_retry t ~instance =
    match t.role with
    | Leader l -> (
      match l.l_phase with
      | Some (Ph_prop fl) when fl.fl_instance = instance ->
        broadcast t
          (Accept { ballot = l.l_ballot; instance; proposal = fl.fl_proposal })
        @ [ after ~delay:t.cfg.accept_retry_ms (Accept_retry instance) ]
      | _ -> [])
    | _ -> []

  let on_prepare_retry t ~round =
    match t.role with
    | Candidate c when c.c_ballot.round = round ->
      broadcast t (Prepare { ballot = c.c_ballot; commit_point = Plog.commit_point t.log })
      @ [ after ~delay:t.cfg.prepare_retry_ms (Prepare_retry round) ]
    | _ -> []

  let on_exec_done t ~token =
    match Hashtbl.find_opt t.exec_table token with
    | None -> []
    | Some work -> (
      Hashtbl.remove t.exec_table token;
      match t.role with
      | Leader l ->
        (* Writes hold the pipeline slot (Ph_exec) while executing. *)
        (match work with Exec_batch _ -> l.l_phase <- None | _ -> ());
        finish_execution t l work
      | _ -> [])

  (* ------------------------------------------------------------------ *)
  (* Entry points                                                        *)

  let bootstrap t =
    [ after ~delay:0.0 Hb_tick; after ~delay:(t.cfg.suspicion_ms /. 2.0) Suspicion_tick ]

  (* The inline-E path passes nan as [now]; substitute the driver time so
     services always observe a real clock. *)
  let handle t ~now input =
    t.now <- now;
    match input with
    | Timer timer -> (
      match timer with
      | Hb_tick -> on_hb_tick t ~now
      | Suspicion_tick -> on_suspicion_tick t ~now
      | Stability_check _ -> on_stability_check t ~now
      | Accept_retry instance -> on_accept_retry t ~instance
      | Prepare_retry round -> on_prepare_retry t ~round
      | Exec_done token -> on_exec_done t ~token
      | Client_retry _ -> []
      | Sp_round_timeout _ -> [] (* semi-passive engine only *))
    | Receive { src; msg } -> (
      if not (node_is_client src) then heard t ~from:src ~now;
      match msg with
      | Heartbeat { round_seen; commit_point; promised = their_promise; sent_at; lease_anchor }
        ->
        observe_round t round_seen;
        (* Adopting a higher promise unilaterally is always safe (it only
           makes this replica more conservative) and spreads knowledge of
           the current leadership, so a recovered old leader defers to
           the incumbent instead of deposing it (§3.6 stability). *)
        let demoted =
          if Ballot.compare their_promise t.promised > 0 then begin
            let acts =
              match t.role with
              | Leader l when Ballot.compare their_promise l.l_ballot > 0 -> step_down t
              | Candidate c when Ballot.compare their_promise c.c_ballot > 0 ->
                step_down t
              | _ -> []
            in
            t.promised <- their_promise;
            t.storage.persist_promise their_promise;
            acts
          end
          else []
        in
        (* Lease grant (follower side): a heartbeat from the replica we
           are promised to starts or renews a grant. The enforcement
           window only ever extends; the anchor tracks the newest
           [sent_at] so reordered heartbeats cannot roll it back. *)
        if
          t.cfg.lease_ms > 0.0
          && (not (is_leader t))
          && Ballot.equal t.promised their_promise
          && their_promise.Ballot.holder = src
        then begin
          if
            t.lease_holder <> src
            || Float.is_nan t.lease_anchor
            || sent_at > t.lease_anchor
          then t.lease_anchor <- sent_at;
          t.lease_holder <- src;
          t.lease_until <- Float.max t.lease_until (now +. t.cfg.lease_ms)
        end;
        (* Grant renewal (leader side): followers echo their grant anchor
           on their own heartbeats. Only count an echo from a follower
           promised to this exact leadership. *)
        (match t.role with
        | Leader l when Ballot.equal their_promise l.l_ballot ->
          record_grant t l ~src ~anchor:lease_anchor
        | _ -> ());
        (* A heartbeat from the replica we promised to announces a commit
           point ahead of ours: we missed Commit messages — catch up. *)
        demoted
        @
        if
          (not (is_leader t))
          && src = t.promised.holder
          && commit_point > Plog.commit_point t.log
        then [ send ~dst:src (Catchup_req { from_instance = Plog.commit_point t.log + 1 }) ]
        else []
      | Client_req r -> (
        match t.role with
        | Leader l -> leader_handle_client t l r
        | Follower | Candidate _ -> follower_handle_client t r)
      | Prepare { ballot; commit_point } ->
        handle_prepare t ~now ~src ~ballot ~their_cp:commit_point
      | Prepare_ack { ballot; snapshot; accepted; _ } ->
        handle_prepare_ack t ~src ~ballot ~snapshot ~accepted
      | Accept { ballot; instance; proposal } ->
        handle_accept t ~now ~src ~ballot ~instance ~proposal
      | Accept_ack { ballot; instance } -> handle_accept_ack t ~src ~ballot ~instance
      | Commit { ballot; instance } -> handle_commit t ~now ~src ~ballot ~instance
      | Read_confirm { ballot; req; lease_anchor } ->
        handle_read_confirm t ~src ~ballot ~req ~lease_anchor
      | Reject { promised } -> handle_reject t ~promised
      | Catchup_req _ ->
        if is_leader t then
          [ send ~dst:src (Catchup { snapshot = Snapshot.encode (current_snapshot t) }) ]
        else []
      | Catchup { snapshot } ->
        install_snapshot t (Snapshot.decode snapshot);
        []
      | Reply_msg _ -> []
      | Sp_estimate _ | Sp_propose _ | Sp_ack _ | Sp_decide _ ->
        (* Semi-passive wire traffic is handled by Semi_passive.Make. *)
        [])

  let restart t ~now =
    t.now <- now;
    (* A crashed process sends nothing; drop the demotion replies. *)
    ignore (step_down t : action list);
    Hashtbl.reset t.pre_confirms;
    (* Lease blackout: the grant (if any) died with the process, so sit
       out one full lease — refusing every candidate (holder -1 matches
       nobody) — before promising again. Without this a recovered
       follower could promise a usurper while the old leader is still
       lawfully serving leased reads against the forgotten grant. *)
    if t.cfg.lease_ms > 0.0 then begin
      t.lease_holder <- -1;
      t.lease_anchor <- Float.nan;
      t.lease_until <- now +. t.cfg.lease_ms
    end;
    t.candidate_since <- None;
    Array.fill t.last_heard 0 t.cfg.n neg_infinity;
    heard t ~from:t.rid ~now;
    bootstrap t

  let load t (p : Storage.persisted) =
    t.promised <- p.promised;
    if p.promised.round > t.round_seen then t.round_seen <- p.promised.round;
    (match p.snapshot with
    | Some s -> install_snapshot t (Snapshot.decode s)
    | None -> ());
    List.iter
      (fun (e : recovery_entry) ->
        if e.instance > Plog.commit_point t.log then
          ignore (Plog.accept t.log ~instance:e.instance ~ballot:e.ballot e.proposal))
      p.entries;
    (* Entries between the snapshot's commit point and the persisted one
       are committed: apply their updates in order to restore the state. *)
    let rec mark i =
      if i <= p.commit_point then
        match Plog.get t.log i with
        | Some entry ->
          apply_update t entry.proposal;
          (* Restore the dedup table from the committed replies: without
             this, a recovered leader would treat a retransmission of an
             already-committed request as fresh and commit it twice. The
             snapshot carries dedup state only up to its own commit
             point; the replayed suffix must contribute its share. *)
          List.iter (dedup_update t) entry.proposal.replies;
          (* The committed suffix also replays its share of the 2PC and
             reshard participant tables (the snapshot carried them only
             up to its own commit point). *)
          track_2pc t entry.proposal;
          track_reshard t entry.proposal;
          (* Seed (not check) the watchdog: these commits were validated
             by the previous incarnation, and the re-seeded table is what
             lets a later re-delivery of the same instance pass. *)
          List.iter
            (fun (r : request) ->
              Watchdog.seed_commit t.wd
                ~client:(Ids.Client_id.to_int r.id.client)
                ~seq:r.id.seq ~instance:i)
            entry.proposal.requests;
          if t.cfg.record_history then
            t.history <-
              (i, entry.proposal.requests, S.encode_state t.app_state) :: t.history;
          ignore (Plog.commit t.log ~instance:i);
          mark (i + 1)
        | None -> ()
    in
    mark (Plog.commit_point t.log + 1)
end
