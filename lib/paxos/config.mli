(** Static replica-group configuration and protocol timeouts.

    All durations are milliseconds of (simulated or real) time. The
    defaults suit the LAN scenario; WAN scenarios scale the election
    timeouts up via {!with_wan_timeouts}.

    The record is [private]: read fields freely, but build values with
    {!default}, {!make} or the [with_*] helpers so every configuration
    goes through the same validation. *)

type t = private {
  n : int;  (** number of replicas; ids are [0 .. n-1] *)
  execution_cost_ms : float;
      (** the paper's E: service execution time per request *)
  accept_retry_ms : float;  (** leader retransmission of Accept *)
  prepare_retry_ms : float;  (** candidate retransmission of Prepare *)
  hb_period_ms : float;  (** heartbeat broadcast period *)
  suspicion_ms : float;  (** silence after which a replica is suspected *)
  stability_ms : float;
      (** candidate hold-down before starting a takeover (leader
          stability, §3.6) *)
  client_retry_ms : float;  (** client retransmission timeout *)
  record_history : bool;
      (** keep the full committed-request history in memory (for the
          linearizability and agreement checkers; off for benchmarks) *)
  ship : [ `Full | `Delta | `Witness ];
      (** how accepted proposals carry the new state (§3.3): full encoded
          state, service-provided delta, or a determinization witness the
          followers replay. [`Delta] and [`Witness] fall back to [`Full]
          when the service cannot provide them. *)
  snapshot_interval : int;
      (** persist a snapshot and prune the log every this many commits *)
  max_batch : int;
      (** largest write batch the leader folds into one instance *)
  coordination : [ `State_shipping | `Request_shipping ];
      (** [`State_shipping] is the paper's protocol: instances decide on
          ⟨request, state⟩ and followers adopt the shipped state.
          [`Request_shipping] is classic Multi-Paxos (replicated state
          machines, §3.3 ¶1): instances decide on the request only and
          every replica re-executes it locally — correct only for
          deterministic services, and included as the baseline whose
          divergence on nondeterministic services motivates the paper. *)
  disable_dedup : bool;
      (** fault-injection backdoor: leaders treat every request as fresh,
          so a duplicated/retransmitted request commits twice. Exists so
          the nemesis harness can demonstrate that its duplication dice
          and schedule shrinking actually catch the bug the dedup table
          prevents. Never enable outside tests. *)
  lease_ms : float;
      (** leader-lease duration. While the leader holds unexpired lease
          grants from a majority it answers reads locally, with zero
          protocol messages; [0.0] (the default) disables the fast path
          and reads use the X-Paxos confirm round. A follower that
          granted a lease refuses to promise to a different candidate
          until the grant expires on its own clock. *)
  clock_skew_bound_ms : float;
      (** assumed bound on how much any two replica clocks can drift
          relative to each other within one lease window. The leader
          retires each grant this much earlier than its nominal expiry,
          so leases stay safe as long as real drift honours the bound. *)
  max_inflight : int;
      (** admission control: bound on reads the leader holds awaiting
          confirmation/execution. [0] (the default) means unbounded.
          Reads past the bound are shed with [Overloaded] — before writes,
          since a shed read costs the client one round trip while a shed
          write loses queued work. *)
  max_queue : int;
      (** admission control: bound on the leader's pending-write queue.
          [0] (the default) means unbounded. Writes arriving when the
          queue is full are shed with [Overloaded]; reads are shed
          already at half this depth (read-shedding priority). *)
  watchdog_fail_stop : bool;
      (** when the online invariant watchdogs ([Grid_obs.Watchdog]) are
          wired in, a violation raises instead of only counting: the
          replica halts rather than keep serving from a state it just
          proved inconsistent. Off by default. *)
}

val default : n:int -> t
(** LAN defaults for an [n]-replica group. Raises [Invalid_argument] if
    [n < 1]. *)

val make :
  ?base:t ->
  ?n:int ->
  ?execution_cost_ms:float ->
  ?accept_retry_ms:float ->
  ?prepare_retry_ms:float ->
  ?hb_period_ms:float ->
  ?suspicion_ms:float ->
  ?stability_ms:float ->
  ?client_retry_ms:float ->
  ?record_history:bool ->
  ?ship:[ `Full | `Delta | `Witness ] ->
  ?snapshot_interval:int ->
  ?max_batch:int ->
  ?coordination:[ `State_shipping | `Request_shipping ] ->
  ?disable_dedup:bool ->
  ?lease_ms:float ->
  ?clock_skew_bound_ms:float ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?watchdog_fail_stop:bool ->
  unit ->
  t
(** Smart constructor: start from [base] (default [default ~n], where [n]
    defaults to 3) and override the named fields. [Config.make ()] is the
    3-replica LAN default; [Config.make ~base:cfg ~ship:`Full ()] is the
    record-update idiom. Raises [Invalid_argument] if the resulting [n]
    is < 1. *)

val with_n : t -> int -> t
(** [with_n t n] is [t] resized to [n] replicas (scenario overrides). *)

val with_wan_timeouts : t -> t
(** Election and retransmission timeouts scaled for WAN latencies. *)

val quorum : t -> int
(** Majority size: ⌈(n+1)/2⌉, tolerating ⌊(n−1)/2⌋ crashed replicas. *)

val replica_ids : t -> int list
(** [0 .. n-1]. *)
