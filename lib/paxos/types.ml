(** Protocol types shared by every engine in [grid_paxos]: ballots,
    requests, replies, state updates, wire messages, and the input/action
    vocabulary of the pure step machines.

    Engines never touch a clock, a socket or an RNG directly: they consume
    {!input} values and emit {!action} values, and a driver (simulator,
    TCP runtime, or model checker) interprets them. *)

module Wire = Grid_codec.Wire
module Ids = Grid_util.Ids

(** Ballot numbers: lexicographically ordered (round, holder) pairs, so
    ballots of distinct replicas never collide. *)
module Ballot = struct
  type t = { round : int; holder : int }

  let zero = { round = 0; holder = -1 }
  let make ~round ~holder = { round; holder }

  let compare a b =
    match Int.compare a.round b.round with
    | 0 -> Int.compare a.holder b.holder
    | c -> c

  let equal a b = compare a b = 0
  let pp ppf b = Format.fprintf ppf "(%d.%d)" b.round b.holder

  let encode e b =
    Wire.Encoder.int e b.round;
    Wire.Encoder.int e b.holder

  let decode d =
    let round = Wire.Decoder.int d in
    let holder = Wire.Decoder.int d in
    { round; holder }
end

(** Proposal numbers: (ballot, instance), ordered lexicographically — the
    order the paper uses for replica logs (§3.3). *)
module Pnum = struct
  type t = { ballot : Ballot.t; instance : int }

  let make ~ballot ~instance = { ballot; instance }

  let compare a b =
    match Ballot.compare a.ballot b.ballot with
    | 0 -> Int.compare a.instance b.instance
    | c -> c

  let pp ppf p = Format.fprintf ppf "%a@%d" Ballot.pp p.ballot p.instance
end

(** How a request wants to be coordinated. [Read] uses X-Paxos, [Write]
    the basic protocol, [Original] no coordination at all (the paper's
    unreplicated baseline). Transactional requests carry a per-client
    transaction number; their coordination is deferred to the commit
    (T-Paxos). [Txn_prepare] is the 2PC prepare for a cross-shard
    transaction: the participant group votes by committing the request
    (with its branch re-encoded into the payload) as a consensus
    instance, so the YES vote survives any minority of crashes.

    The [Reshard_*] requests are the elastic-resharding control plane
    (DESIGN.md §17), each carrying the epoch of the map transition it
    belongs to: FREEZE locks the moving key range at the source group,
    INSTALL delivers the shipped range snapshot at the target, COMMIT
    activates the successor partition map, ABORT cancels an in-flight
    transition. All four are consensus instances, so the migration state
    machine survives any minority of crashes in either group. *)
type rtype =
  | Read
  | Write
  | Original
  | Txn_op of int
  | Txn_commit of int
  | Txn_abort of int
  | Txn_prepare of int
  | Reshard_freeze of int
  | Reshard_install of int
  | Reshard_commit of int
  | Reshard_abort of int

let rtype_tag = function
  | Read -> 0
  | Write -> 1
  | Original -> 2
  | Txn_op _ -> 3
  | Txn_commit _ -> 4
  | Txn_abort _ -> 5
  | Txn_prepare _ -> 6
  | Reshard_freeze _ -> 7
  | Reshard_install _ -> 8
  | Reshard_commit _ -> 9
  | Reshard_abort _ -> 10

let pp_rtype ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"
  | Original -> Format.pp_print_string ppf "original"
  | Txn_op t -> Format.fprintf ppf "txn_op(%d)" t
  | Txn_commit t -> Format.fprintf ppf "txn_commit(%d)" t
  | Txn_abort t -> Format.fprintf ppf "txn_abort(%d)" t
  | Txn_prepare t -> Format.fprintf ppf "txn_prepare(%d)" t
  | Reshard_freeze e -> Format.fprintf ppf "reshard_freeze(%d)" e
  | Reshard_install e -> Format.fprintf ppf "reshard_install(%d)" e
  | Reshard_commit e -> Format.fprintf ppf "reshard_commit(%d)" e
  | Reshard_abort e -> Format.fprintf ppf "reshard_abort(%d)" e

let encode_rtype e rt =
  Wire.Encoder.uint e (rtype_tag rt);
  match rt with
  | Read | Write | Original -> ()
  | Txn_op t | Txn_commit t | Txn_abort t | Txn_prepare t -> Wire.Encoder.uint e t
  | Reshard_freeze t | Reshard_install t | Reshard_commit t | Reshard_abort t ->
    Wire.Encoder.uint e t

let decode_rtype d =
  match Wire.Decoder.uint d with
  | 0 -> Read
  | 1 -> Write
  | 2 -> Original
  | 3 -> Txn_op (Wire.Decoder.uint d)
  | 4 -> Txn_commit (Wire.Decoder.uint d)
  | 5 -> Txn_abort (Wire.Decoder.uint d)
  | 6 -> Txn_prepare (Wire.Decoder.uint d)
  | 7 -> Reshard_freeze (Wire.Decoder.uint d)
  | 8 -> Reshard_install (Wire.Decoder.uint d)
  | 9 -> Reshard_commit (Wire.Decoder.uint d)
  | 10 -> Reshard_abort (Wire.Decoder.uint d)
  | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "bad rtype %d" n })

(** Causal trace context carried inside the request as it crosses
    process boundaries: the trace id shared by every span of one
    end-to-end request, and the span id of the sender-side span the next
    hop should parent its spans under. [no_trace] for untraced traffic —
    the hot paths branch on [tid = 0] and touch nothing else. *)
type trace_ctx = { tid : int; parent : string }

let no_trace = { tid = 0; parent = "" }

(** A client request. [payload] is the service operation, already encoded
    by the service codec; the replication layer never interprets it. *)
type request = {
  id : Ids.Request_id.t;
  rtype : rtype;
  payload : string;
  trace : trace_ctx;
}

let pp_request ppf r =
  Format.fprintf ppf "%a:%a(%d bytes)" Ids.Request_id.pp r.id pp_rtype r.rtype
    (String.length r.payload)

let encode_request e (r : request) =
  Wire.Encoder.uint e (Ids.Client_id.to_int r.id.client);
  Wire.Encoder.uint e r.id.seq;
  encode_rtype e r.rtype;
  Wire.Encoder.string e r.payload;
  Wire.Encoder.uint e r.trace.tid;
  Wire.Encoder.string e r.trace.parent

let decode_request d : request =
  let client = Ids.Client_id.of_int (Wire.Decoder.uint d) in
  let seq = Wire.Decoder.uint d in
  let rtype = decode_rtype d in
  let payload = Wire.Decoder.string d in
  let tid = Wire.Decoder.uint d in
  let parent = Wire.Decoder.string d in
  { id = Ids.Request_id.make ~client ~seq; rtype; payload; trace = { tid; parent } }

type status =
  | Ok
  | Txn_aborted  (** transaction rolled back (explicit abort, conflict, or leader switch) *)
  | Txn_conflict  (** first-committer-wins conflict at commit *)
  | Retry
      (** the replica lost leadership while holding this request; the
          client should retransmit (it will reach the new leader) rather
          than wait out its retry timer *)
  | Overloaded of { retry_after_ms : float }
      (** the leader's admission window is full and the request was shed
          before entering the queue; the client should back off for at
          least [retry_after_ms] before retransmitting *)
  | Wrong_epoch of { epoch : int; map : string }
      (** the request touched a key this group no longer (or does not
          yet) own: the partition map moved under the client. [map] is
          the group's current encoded {!Grid_shard.Partition} map at
          [epoch]; the client adopts it and re-routes (DESIGN.md §17) *)

let pp_status ppf = function
  | Ok -> Format.pp_print_string ppf "ok"
  | Txn_aborted -> Format.pp_print_string ppf "aborted"
  | Txn_conflict -> Format.pp_print_string ppf "conflict"
  | Retry -> Format.pp_print_string ppf "retry"
  | Overloaded { retry_after_ms } ->
    Format.fprintf ppf "overloaded(retry_after=%.1fms)" retry_after_ms
  | Wrong_epoch { epoch; map } ->
    Format.fprintf ppf "wrong_epoch(e=%d,map=%dB)" epoch (String.length map)

(* A final status completes the request at the client; [Retry] and
   [Overloaded] are pushback — the request is still pending and will be
   retransmitted. Checkers use this to decide which replies count.
   [Wrong_epoch] is final: retransmitting to the same group can never
   succeed — the router must re-route under the carried map. *)
let status_is_final = function
  | Ok | Txn_aborted | Txn_conflict | Wrong_epoch _ -> true
  | Retry | Overloaded _ -> false

type reply = { req : Ids.Request_id.t; status : status; payload : string }

let pp_reply ppf r =
  Format.fprintf ppf "reply(%a,%a,%d bytes)" Ids.Request_id.pp r.req pp_status r.status
    (String.length r.payload)

let status_tag = function
  | Ok -> 0
  | Txn_aborted -> 1
  | Txn_conflict -> 2
  | Retry -> 3
  | Overloaded _ -> 4
  | Wrong_epoch _ -> 5

let encode_status e s =
  Wire.Encoder.uint e (status_tag s);
  match s with
  | Ok | Txn_aborted | Txn_conflict | Retry -> ()
  | Overloaded { retry_after_ms } -> Wire.Encoder.float e retry_after_ms
  | Wrong_epoch { epoch; map } ->
    Wire.Encoder.uint e epoch;
    Wire.Encoder.string e map

let decode_status d =
  match Wire.Decoder.uint d with
  | 0 -> Ok
  | 1 -> Txn_aborted
  | 2 -> Txn_conflict
  | 3 -> Retry
  | 4 -> Overloaded { retry_after_ms = Wire.Decoder.float d }
  | 5 ->
    let epoch = Wire.Decoder.uint d in
    let map = Wire.Decoder.string d in
    Wrong_epoch { epoch; map }
  | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "bad status %d" n })

let encode_reply e (r : reply) =
  Wire.Encoder.uint e (Ids.Client_id.to_int r.req.client);
  Wire.Encoder.uint e r.req.seq;
  encode_status e r.status;
  Wire.Encoder.string e r.payload

let decode_reply d : reply =
  let client = Ids.Client_id.of_int (Wire.Decoder.uint d) in
  let seq = Wire.Decoder.uint d in
  let status = decode_status d in
  let payload = Wire.Decoder.string d in
  { req = Ids.Request_id.make ~client ~seq; status; payload }

(** The state shipped inside an accepted proposal (§3.3). [Full] carries
    the whole encoded service state; [Delta] a service-specific diff
    against the previous committed state; [Witness] only the
    determinization information needed to re-execute the request
    deterministically at every replica (the paper's first
    overhead-reduction option). *)
type state_update = Full of string | Delta of string | Witness of string

let pp_state_update ppf = function
  | Full s -> Format.fprintf ppf "full(%dB)" (String.length s)
  | Delta s -> Format.fprintf ppf "delta(%dB)" (String.length s)
  | Witness s -> Format.fprintf ppf "witness(%dB)" (String.length s)

let state_update_size = function Full s | Delta s | Witness s -> String.length s

let encode_state_update e = function
  | Full s ->
    Wire.Encoder.uint e 0;
    Wire.Encoder.string e s
  | Delta s ->
    Wire.Encoder.uint e 1;
    Wire.Encoder.string e s
  | Witness s ->
    Wire.Encoder.uint e 2;
    Wire.Encoder.string e s

let decode_state_update d =
  let tag = Wire.Decoder.uint d in
  let s = Wire.Decoder.string d in
  match tag with
  | 0 -> Full s
  | 1 -> Delta s
  | 2 -> Witness s
  | n ->
    raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "bad state_update %d" n })

(** One value proposed/accepted in a consensus instance: the request
    batch (singleton outside T-Paxos), the state after executing it, and
    the replies produced. This tuple is the paper's [<req, state>]; we
    additionally replicate the replies so that after a leader switch the
    new leader can re-answer duplicate requests it never executed. *)
type proposal = { requests : request list; update : state_update; replies : reply list }

let encode_proposal e (p : proposal) =
  Wire.Encoder.list e (encode_request e) p.requests;
  encode_state_update e p.update;
  Wire.Encoder.list e (encode_reply e) p.replies

let decode_proposal d : proposal =
  let requests = Wire.Decoder.list d decode_request in
  let update = decode_state_update d in
  let replies = Wire.Decoder.list d decode_reply in
  { requests; update; replies }

(** A log entry carried in recovery messages. *)
type recovery_entry = { instance : int; ballot : Ballot.t; proposal : proposal }

type msg =
  | Client_req of request
  | Reply_msg of reply
  | Prepare of { ballot : Ballot.t; commit_point : int }
      (** New leader's multi-instance prepare; [commit_point] tells
          replicas which entries the leader already knows committed. *)
  | Prepare_ack of {
      ballot : Ballot.t;
      commit_point : int;  (** the follower's committed prefix *)
      snapshot : string option;
          (** encoded snapshot, present iff the follower is ahead of the
              leader's [commit_point] *)
      accepted : recovery_entry list;
          (** accepted-but-not-committed entries above both commit points *)
    }
  | Accept of { ballot : Ballot.t; instance : int; proposal : proposal }
  | Accept_ack of { ballot : Ballot.t; instance : int }
  | Reject of { promised : Ballot.t }
      (** Nack carrying the higher promise that caused the rejection. *)
  | Commit of { ballot : Ballot.t; instance : int }
  | Read_confirm of { ballot : Ballot.t; req : Ids.Request_id.t; lease_anchor : float }
      (** X-Paxos: follower confirms leadership to the highest-ballot
          holder it has accepted, naming the read it saw. [lease_anchor]
          piggybacks a lease renewal: the [sent_at] of the leader
          heartbeat the sender's current grant is anchored to ([nan] when
          it holds no grant or leases are disabled). *)
  | Heartbeat of {
      round_seen : int;
      commit_point : int;
      promised : Ballot.t;
      sent_at : float;
          (** sender's local clock at send time; followers anchor lease
              grants to the leader's [sent_at] so expiry can be compared
              leader-clock against leader-clock *)
      lease_anchor : float;
          (** grant echo, as in [Read_confirm]; [nan] when none *)
    }
  | Catchup_req of { from_instance : int }
  | Catchup of { snapshot : string }
  (* Semi-passive replication (Défago et al., §5 related work): lazy
     consensus with a rotating coordinator, per instance. *)
  | Sp_estimate of {
      instance : int;
      round : int;
      estimate : (proposal * int) option;  (** locked value and its round *)
    }
  | Sp_propose of { instance : int; round : int; proposal : proposal }
  | Sp_ack of { instance : int; round : int }
  | Sp_decide of { instance : int; proposal : proposal }


(* Message tags, shared by every codec version: a tag is the stable
   on-wire identity of a constructor and must never be renumbered. *)
let msg_tag = function
  | Client_req _ -> 0
  | Reply_msg _ -> 1
  | Prepare _ -> 2
  | Prepare_ack _ -> 3
  | Accept _ -> 4
  | Accept_ack _ -> 5
  | Reject _ -> 6
  | Commit _ -> 7
  | Read_confirm _ -> 8
  | Heartbeat _ -> 9
  | Catchup_req _ -> 10
  | Catchup _ -> 11
  | Sp_estimate _ -> 12
  | Sp_propose _ -> 13
  | Sp_ack _ -> 14
  | Sp_decide _ -> 15

(* The body codec below is protocol version 1: the seed's unversioned
   encoding, kept byte-identical so a V1-capped node interoperates with
   every build since the seed. Version 2 (compact header, flag-gated
   fields) lives in {!Wire_codec}. *)

let encode_msg e = function
  | Client_req r ->
    Wire.Encoder.uint e 0;
    encode_request e r
  | Reply_msg r ->
    Wire.Encoder.uint e 1;
    encode_reply e r
  | Prepare { ballot; commit_point } ->
    Wire.Encoder.uint e 2;
    Ballot.encode e ballot;
    Wire.Encoder.uint e commit_point
  | Prepare_ack { ballot; commit_point; snapshot; accepted } ->
    Wire.Encoder.uint e 3;
    Ballot.encode e ballot;
    Wire.Encoder.uint e commit_point;
    Wire.Encoder.option e (Wire.Encoder.string e) snapshot;
    Wire.Encoder.list e
      (fun (entry : recovery_entry) ->
        Wire.Encoder.uint e entry.instance;
        Ballot.encode e entry.ballot;
        encode_proposal e entry.proposal)
      accepted
  | Accept { ballot; instance; proposal } ->
    Wire.Encoder.uint e 4;
    Ballot.encode e ballot;
    Wire.Encoder.uint e instance;
    encode_proposal e proposal
  | Accept_ack { ballot; instance } ->
    Wire.Encoder.uint e 5;
    Ballot.encode e ballot;
    Wire.Encoder.uint e instance
  | Reject { promised } ->
    Wire.Encoder.uint e 6;
    Ballot.encode e promised
  | Commit { ballot; instance } ->
    Wire.Encoder.uint e 7;
    Ballot.encode e ballot;
    Wire.Encoder.uint e instance
  | Read_confirm { ballot; req; lease_anchor } ->
    Wire.Encoder.uint e 8;
    Ballot.encode e ballot;
    Wire.Encoder.uint e (Ids.Client_id.to_int req.client);
    Wire.Encoder.uint e req.seq;
    Wire.Encoder.float e lease_anchor
  | Heartbeat { round_seen; commit_point; promised; sent_at; lease_anchor } ->
    Wire.Encoder.uint e 9;
    Wire.Encoder.uint e round_seen;
    Wire.Encoder.uint e commit_point;
    Ballot.encode e promised;
    Wire.Encoder.float e sent_at;
    Wire.Encoder.float e lease_anchor
  | Catchup_req { from_instance } ->
    Wire.Encoder.uint e 10;
    Wire.Encoder.uint e from_instance
  | Catchup { snapshot } ->
    Wire.Encoder.uint e 11;
    Wire.Encoder.string e snapshot
  | Sp_estimate { instance; round; estimate } ->
    Wire.Encoder.uint e 12;
    Wire.Encoder.uint e instance;
    Wire.Encoder.uint e round;
    Wire.Encoder.option e
      (fun (p, r) ->
        encode_proposal e p;
        Wire.Encoder.uint e r)
      estimate
  | Sp_propose { instance; round; proposal } ->
    Wire.Encoder.uint e 13;
    Wire.Encoder.uint e instance;
    Wire.Encoder.uint e round;
    encode_proposal e proposal
  | Sp_ack { instance; round } ->
    Wire.Encoder.uint e 14;
    Wire.Encoder.uint e instance;
    Wire.Encoder.uint e round
  | Sp_decide { instance; proposal } ->
    Wire.Encoder.uint e 15;
    Wire.Encoder.uint e instance;
    encode_proposal e proposal

let decode_msg d =
  match Wire.Decoder.uint d with
  | 0 -> Client_req (decode_request d)
  | 1 -> Reply_msg (decode_reply d)
  | 2 ->
    let ballot = Ballot.decode d in
    let commit_point = Wire.Decoder.uint d in
    Prepare { ballot; commit_point }
  | 3 ->
    let ballot = Ballot.decode d in
    let commit_point = Wire.Decoder.uint d in
    let snapshot = Wire.Decoder.option d Wire.Decoder.string in
    let accepted =
      Wire.Decoder.list d (fun d ->
          let instance = Wire.Decoder.uint d in
          let ballot = Ballot.decode d in
          let proposal = decode_proposal d in
          { instance; ballot; proposal })
    in
    Prepare_ack { ballot; commit_point; snapshot; accepted }
  | 4 ->
    let ballot = Ballot.decode d in
    let instance = Wire.Decoder.uint d in
    let proposal = decode_proposal d in
    Accept { ballot; instance; proposal }
  | 5 ->
    let ballot = Ballot.decode d in
    let instance = Wire.Decoder.uint d in
    Accept_ack { ballot; instance }
  | 6 -> Reject { promised = Ballot.decode d }
  | 7 ->
    let ballot = Ballot.decode d in
    let instance = Wire.Decoder.uint d in
    Commit { ballot; instance }
  | 8 ->
    let ballot = Ballot.decode d in
    let client = Ids.Client_id.of_int (Wire.Decoder.uint d) in
    let seq = Wire.Decoder.uint d in
    let lease_anchor = Wire.Decoder.float d in
    Read_confirm { ballot; req = Ids.Request_id.make ~client ~seq; lease_anchor }
  | 9 ->
    let round_seen = Wire.Decoder.uint d in
    let commit_point = Wire.Decoder.uint d in
    let promised = Ballot.decode d in
    let sent_at = Wire.Decoder.float d in
    let lease_anchor = Wire.Decoder.float d in
    Heartbeat { round_seen; commit_point; promised; sent_at; lease_anchor }
  | 10 -> Catchup_req { from_instance = Wire.Decoder.uint d }
  | 11 -> Catchup { snapshot = Wire.Decoder.string d }
  | 12 ->
    let instance = Wire.Decoder.uint d in
    let round = Wire.Decoder.uint d in
    let estimate =
      Wire.Decoder.option d (fun d ->
          let p = decode_proposal d in
          let r = Wire.Decoder.uint d in
          (p, r))
    in
    Sp_estimate { instance; round; estimate }
  | 13 ->
    let instance = Wire.Decoder.uint d in
    let round = Wire.Decoder.uint d in
    let proposal = decode_proposal d in
    Sp_propose { instance; round; proposal }
  | 14 ->
    let instance = Wire.Decoder.uint d in
    let round = Wire.Decoder.uint d in
    Sp_ack { instance; round }
  | 15 ->
    let instance = Wire.Decoder.uint d in
    let proposal = decode_proposal d in
    Sp_decide { instance; proposal }
  | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "bad msg tag %d" n })

(* Approximate wire size, for the simulator's bandwidth model: payload
   bytes plus a small fixed header per field. *)
let request_size (r : request) = String.length r.payload + 16
let reply_size (r : reply) = String.length r.payload + 16

let proposal_size (p : proposal) =
  List.fold_left (fun acc r -> acc + request_size r) 0 p.requests
  + state_update_size p.update
  + List.fold_left (fun acc r -> acc + reply_size r) 0 p.replies
  + 8

let msg_size = function
  | Client_req r -> request_size r + 8
  | Reply_msg r -> reply_size r + 8
  | Prepare _ -> 24
  | Prepare_ack { snapshot; accepted; _ } ->
    24
    + (match snapshot with Some s -> String.length s | None -> 0)
    + List.fold_left (fun acc (e : recovery_entry) -> acc + proposal_size e.proposal) 0
        accepted
  | Accept { proposal; _ } -> 24 + proposal_size proposal
  | Accept_ack _ -> 24
  | Reject _ -> 16
  | Commit _ -> 24
  | Read_confirm _ -> 32
  | Heartbeat _ -> 32
  | Catchup_req _ -> 16
  | Catchup { snapshot } -> 16 + String.length snapshot
  | Sp_estimate { estimate; _ } ->
    24 + (match estimate with Some (p, _) -> proposal_size p | None -> 0)
  | Sp_propose { proposal; _ } -> 24 + proposal_size proposal
  | Sp_ack _ -> 24
  | Sp_decide { proposal; _ } -> 16 + proposal_size proposal

(* Every message kind, in tag order — per-kind metric registration and
   the wire benches iterate this instead of hand-maintaining a list. *)
let all_msg_kinds =
  [
    "client_req"; "reply"; "prepare"; "prepare_ack"; "accept"; "accept_ack";
    "reject"; "commit"; "read_confirm"; "heartbeat"; "catchup_req"; "catchup";
    "sp_estimate"; "sp_propose"; "sp_ack"; "sp_decide";
  ]

let msg_kind = function
  | Client_req _ -> "client_req"
  | Reply_msg _ -> "reply"
  | Prepare _ -> "prepare"
  | Prepare_ack _ -> "prepare_ack"
  | Accept _ -> "accept"
  | Accept_ack _ -> "accept_ack"
  | Reject _ -> "reject"
  | Commit _ -> "commit"
  | Read_confirm _ -> "read_confirm"
  | Heartbeat _ -> "heartbeat"
  | Catchup_req _ -> "catchup_req"
  | Catchup _ -> "catchup"
  | Sp_estimate _ -> "sp_estimate"
  | Sp_propose _ -> "sp_propose"
  | Sp_ack _ -> "sp_ack"
  | Sp_decide _ -> "sp_decide"

let pp_msg ppf m =
  match m with
  | Client_req r -> Format.fprintf ppf "client_req %a" pp_request r
  | Reply_msg r -> pp_reply ppf r
  | Prepare { ballot; commit_point } ->
    Format.fprintf ppf "prepare %a cp=%d" Ballot.pp ballot commit_point
  | Prepare_ack { ballot; commit_point; accepted; snapshot } ->
    Format.fprintf ppf "prepare_ack %a cp=%d entries=%d snap=%b" Ballot.pp ballot
      commit_point (List.length accepted) (snapshot <> None)
  | Accept { ballot; instance; proposal } ->
    Format.fprintf ppf "accept %a i=%d reqs=%d %a" Ballot.pp ballot instance
      (List.length proposal.requests)
      pp_state_update proposal.update
  | Accept_ack { ballot; instance } ->
    Format.fprintf ppf "accept_ack %a i=%d" Ballot.pp ballot instance
  | Reject { promised } -> Format.fprintf ppf "reject promised=%a" Ballot.pp promised
  | Commit { ballot; instance } ->
    Format.fprintf ppf "commit %a i=%d" Ballot.pp ballot instance
  | Read_confirm { ballot; req; lease_anchor } ->
    Format.fprintf ppf "read_confirm %a %a lease=%b" Ballot.pp ballot Ids.Request_id.pp
      req
      (not (Float.is_nan lease_anchor))
  | Heartbeat { round_seen; commit_point; promised; lease_anchor; _ } ->
    Format.fprintf ppf "heartbeat rs=%d cp=%d promised=%a lease=%b" round_seen
      commit_point Ballot.pp promised
      (not (Float.is_nan lease_anchor))
  | Catchup_req { from_instance } -> Format.fprintf ppf "catchup_req from=%d" from_instance
  | Catchup _ -> Format.fprintf ppf "catchup"
  | Sp_estimate { instance; round; estimate } ->
    Format.fprintf ppf "sp_estimate i=%d r=%d locked=%b" instance round (estimate <> None)
  | Sp_propose { instance; round; _ } -> Format.fprintf ppf "sp_propose i=%d r=%d" instance round
  | Sp_ack { instance; round } -> Format.fprintf ppf "sp_ack i=%d r=%d" instance round
  | Sp_decide { instance; _ } -> Format.fprintf ppf "sp_decide i=%d" instance

(** Timers a replica can arm. Timers are never cancelled explicitly:
    handlers re-check state and ignore stale firings, which keeps driver
    plumbing trivial. *)
type timer =
  | Hb_tick  (** periodic heartbeat broadcast *)
  | Suspicion_tick  (** periodic liveness evaluation *)
  | Stability_check of int
      (** candidate hold-down started while observing this round *)
  | Accept_retry of int  (** instance number *)
  | Prepare_retry of int  (** ballot round *)
  | Exec_done of int  (** execution-cost token *)
  | Client_retry of int  (** client-side retransmission, by sequence *)
  | Sp_round_timeout of int * int
      (** semi-passive replication: (instance, round) suspicion timeout *)

let pp_timer ppf = function
  | Hb_tick -> Format.pp_print_string ppf "hb_tick"
  | Suspicion_tick -> Format.pp_print_string ppf "suspicion_tick"
  | Stability_check r -> Format.fprintf ppf "stability_check(%d)" r
  | Accept_retry i -> Format.fprintf ppf "accept_retry(%d)" i
  | Prepare_retry r -> Format.fprintf ppf "prepare_retry(%d)" r
  | Exec_done tok -> Format.fprintf ppf "exec_done(%d)" tok
  | Client_retry s -> Format.fprintf ppf "client_retry(%d)" s
  | Sp_round_timeout (i, r) -> Format.fprintf ppf "sp_round_timeout(%d,%d)" i r

type input = Receive of { src : int; msg : msg } | Timer of timer

(** Node-id convention: replicas occupy [0 .. n-1]; client [c] is node
    [client_node_base + c]. Drivers and engines share this mapping. *)
let client_node_base = 10_000

let client_node c = client_node_base + Ids.Client_id.to_int c
let node_is_client node = node >= client_node_base
let client_of_node node = Ids.Client_id.of_int (node - client_node_base)

type action =
  | Send of { dst : int; msg : msg }
  | After of { delay : float; timer : timer }
  | Note of string  (** trace hint; drivers may log or ignore *)

let send ~dst msg = Send { dst; msg }
let after ~delay timer = After { delay; timer }

let pp_action ppf = function
  | Send { dst; msg } -> Format.fprintf ppf "send->%d %a" dst pp_msg msg
  | After { delay; timer } -> Format.fprintf ppf "after %.3f %a" delay pp_timer timer
  | Note s -> Format.fprintf ppf "note %s" s
