(** The client protocol (§3.3): each request is sent to {e all} replicas
    — so clients need not know which replica currently leads — and only
    the leader answers. The client retransmits on timeout and matches
    replies by request id, dropping duplicates.

    Like the replica, the client is a pure step machine: [submit] and
    [handle] return actions for the driver, and [handle] additionally
    surfaces a fresh (non-duplicate) reply for the workload layer. *)

type t

val create :
  id:Grid_util.Ids.Client_id.t ->
  replicas:int list ->
  ?retry_ms:float ->
  ?seed:int ->
  ?obs:Grid_obs.Span.Recorder.t ->
  ?actor:string ->
  unit ->
  t
(** [retry_ms] defaults to 500; actual retransmission delays are jittered
    ±25% (seeded by [seed], default derived from [id]) so that retries
    cannot phase-lock with periodic failures. [obs] receives
    [Client_send]/[Reply] lifecycle spans (default: disabled recorder).
    [actor] labels those spans (default ["c<id>"]; the sharded runtime
    prefixes ["s<k>/"]). *)

val id : t -> Grid_util.Ids.Client_id.t
val node : t -> int
(** The node id this client occupies (see {!Types.client_node}). *)

val submit :
  t ->
  ?now:float ->
  ?trace:int * string ->
  Types.rtype ->
  payload:string ->
  [ `Busy | `Sent of Types.action list ]
(** Issue the next request. The client is closed-loop — at most one
    outstanding request — so [`Busy] is returned when one is already
    pending. [`Sent] carries the broadcast and the retransmission timer
    for the driver to interpret. [now] (default 0) timestamps the
    [Client_send] span; pass the driver clock when tracing.

    [trace] is [(tid, parent)] from an upstream span (the shard router):
    the [Client_send] span parents under it and the request carries the
    trace onward. Without it, a deterministic trace id is derived from
    (client id, seq) when recording is enabled. *)

val handle : t -> now:float -> Types.input -> Types.action list * Types.reply option
(** Feed a reply or timer. The returned reply is [Some] exactly when it
    answers the outstanding request with a {e final} status
    (retransmitted duplicates are absorbed). A [Retry] reply triggers an
    immediate rebroadcast; an [Overloaded] reply arms a retransmission
    timer at the leader's [retry_after_ms] hint, doubled per consecutive
    pushback (capped at 8 x [retry_ms], never below the hint) and
    jittered ±25% — backstop retry firings inside the backoff window are
    suppressed, so a shed request generates no traffic until the window
    closes. Pass the driver clock as [now]: the backoff window is
    measured against it. *)

val outstanding : t -> Types.request option
val sent_count : t -> int
val retry_count : t -> int

val overloaded_count : t -> int
(** [Overloaded] pushbacks received across all requests. *)

val backoff_until : t -> float
(** Earliest time the pending request may be retransmitted
    ([neg_infinity] when not backing off). *)
