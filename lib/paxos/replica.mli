(** The replicated-service process: one engine implementing the paper's
    three coordination paths plus leader election and recovery.

    - {b Basic protocol} (§3.3) for [Write] requests: the leader executes
      the request, then runs the accept phase for the tuple
      ⟨request, resulting state⟩; pipeline depth is one (instance [i] is
      proposed only after [i−1] commits), so the chosen sequence has no
      gaps. Requests that queue while an instance is in flight are
      folded into the next instance as a batch (bounded by
      [Config.max_batch]) — the decided value is ⟨batch, state after the
      batch⟩, preserving the no-gap rule while letting throughput scale
      with concurrent clients. Followers adopt the shipped state when
      the instance commits.
    - {b X-Paxos} (§3.4) for [Read] requests: every replica that receives
      the read sends a confirm to the holder of the highest ballot it has
      accepted; the leader executes the read against its latest committed
      state in parallel and replies once a majority (counting itself) has
      confirmed. With [Config.lease_ms > 0] a lease fast path sits on
      top: followers grant a time-bounded lease on heartbeat receipt and
      piggyback renewals on their own heartbeats and read-confirms; while
      the leader holds unexpired grants from a majority it answers reads
      after execution alone — zero protocol messages — falling back to
      the confirm round when the lease lapses. Granting followers refuse
      to promise to other candidates until their grant expires (and a
      recovered replica sits out one full lease), which is what makes the
      local read linearizable under the configured clock-skew bound.
    - {b T-Paxos} (§3.5) for transactions: operations inside a
      transaction execute immediately on a leader-local branch and are
      answered without coordination; the commit rebases the branch onto
      the current committed state (deterministic replay via witnesses),
      checks first-committer-wins conflicts on service footprints, and
      runs one accept phase for the whole batch. A leader switch aborts
      in-flight transactions (§3.6).
    - [Original] requests are the unreplicated baseline: executed and
      answered by the leader with no coordination.

    Leader election is Ω-style: heartbeats, a suspicion timeout, and a
    stability hold-down before a takeover. A new leader runs a
    multi-instance prepare: followers return their accepted-but-
    uncommitted entries and (if ahead) a snapshot; the leader installs
    the highest snapshot, re-proposes surviving entries under its ballot,
    and only then serves new requests.

    The engine is a pure step machine: all I/O happens through the
    returned {!Types.action} lists, and all nondeterminism comes from the
    seeded RNG and the [~now] argument. *)

module Make (S : Service_intf.S) : sig
  type t

  val create :
    cfg:Config.t ->
    id:int ->
    ?storage:Storage.t ->
    ?seed:int ->
    ?obs:Grid_obs.Span.Recorder.t ->
    ?actor:string ->
    ?watchdog:Grid_obs.Watchdog.t ->
    unit ->
    t
  (** [seed] initializes the replica-local RNG handed to the service
      (defaults to a function of [id]). [obs] receives request-lifecycle
      spans ({!Grid_obs.Span.phase}); defaults to the shared disabled
      recorder, in which case instrumentation costs one branch per site.
      [actor] overrides the span label (default ["r<id>"]; sharded
      runtimes pass ["s<g>/r<id>"]). [watchdog] is the shared sink the
      replica's online invariant checks (duplicate commit, lost ack,
      stale read, lease mutual exclusion) report to; defaults to the
      disabled sink, one branch per check. *)

  val bootstrap : t -> Types.action list
  (** Initial timers (heartbeat and suspicion ticks). Call once before
      feeding inputs. *)

  val handle : t -> now:float -> Types.input -> Types.action list

  val restart : t -> now:float -> Types.action list
  (** Simulate a crash-recovery that loses volatile state: leadership,
      candidacies, pending reads and transactions are dropped; the log,
      promise and committed state (the durable part) survive. Returns the
      bootstrap timers. *)

  val load : t -> Storage.persisted -> unit
  (** Install a persisted image (from {!Storage.file} or
      {!Storage.memory}) into a freshly created replica. *)

  (** {1 Introspection} *)

  val id : t -> int
  val is_leader : t -> bool
  val ballot : t -> Types.Ballot.t
  val promised : t -> Types.Ballot.t
  val commit_point : t -> int
  val state : t -> S.state
  (** Latest committed service state. *)

  val leader_view : t -> int option
  (** Whom this replica would confirm reads to (holder of its promise). *)

  val holds_lease : t -> now:float -> bool
  (** Leader only: unexpired lease grants from a majority (counting
      itself) at [now] on its own clock — reads dispatched now take the
      local fast path. Always [false] when [Config.lease_ms = 0]. *)

  val lease_granted_to : t -> now:float -> int option
  (** Follower view: the replica this one's unexpired grant names (whom
      it would refuse other candidates for), if any. A post-crash
      blackout reports [Some (-1)]: every candidate is refused. *)

  val committed_requests : t -> Types.request list
  (** Requests in committed instance order (requires
      [cfg.record_history]; empty otherwise). *)

  val committed_updates : t -> (int * Types.request list * string) list
  (** Per committed instance: the requests and the encoded service state
      after applying it (requires [cfg.record_history]). For the
      agreement checker. *)

  val stats_commits : t -> int
  (** Number of instances this replica has learned committed. *)

  val stats_shed : t -> int * int
  (** Requests shed with [Overloaded] while leading: [(reads, writes)].
      Both [0] unless [Config.max_inflight]/[max_queue] bound admission. *)

  val queue_depth : t -> int
  (** Leader only: writes and transaction commits waiting in the pending
      queue ([0] on followers). The admission window compares this
      against [Config.max_queue]. *)

  val prepared_txns : t -> int list
  (** Cross-shard transaction ids whose 2PC prepare committed in this
      group's log but whose commit/abort decision has not, ascending.
      Replica-level (followers track it too): a failover leader honours
      the votes of its predecessor. *)

  val txn_outcome : t -> int -> bool option
  (** Decision tombstone for a cross-shard transaction id: [Some true] if
      the commit decision committed here, [Some false] for an abort,
      [None] if undecided (or pruned long after deciding). *)

  val reads_inflight : t -> int
  (** Leader only: reads held awaiting confirmation or execution ([0] on
      followers). Compared against [Config.max_inflight]. *)

  (** {2 Elastic resharding (DESIGN.md §17)} *)

  val reshard_epoch : t -> int
  (** Highest committed partition-map epoch ([0] before any reshard). *)

  val reshard_map : t -> string
  (** Encoded partition map at {!reshard_epoch}; [""] before any reshard
      commit. This is the map [Wrong_epoch] redirects carry. *)

  val reshard_phase : t -> string
  (** Migration phase as derived from committed instances: ["idle"],
      ["frozen"] (a committed FREEZE awaits its decision) or
      ["installing"] (a committed INSTALL awaits its decision). *)

  val moved_ranges : t -> int
  (** Key ranges this group handed away — requests touching them are
      answered with [Wrong_epoch]. *)

  val imported_items : t -> int
  (** Total service items absorbed through committed INSTALLs (the
      [export_range] counts), for admin/metrics. *)
end
