(** Replica snapshots: everything a lagging or recovering replica needs to
    join the group at a given commit point — the encoded service state,
    the committed prefix length, the client deduplication table (so
    duplicate requests keep getting their original replies), and the 2PC
    participant tables (prepared cross-shard branches awaiting their
    decision, plus decision tombstones), since log pruning may have
    dropped the instances they were derived from. *)

module Wire = Grid_codec.Wire
module Ids = Grid_util.Ids

type t = {
  commit_point : int;
  state : string;  (** service state, encoded by the service codec *)
  dedup : (int * Types.reply) list;
      (** per client-id: highest committed sequence's reply *)
  prepared : (int * string) list;
      (** per cross-txn tid: the encoded prepared branch (opaque here;
          {!Replica.Make} owns the codec) *)
  outcomes : (int * bool) list;
      (** per decided cross-txn tid: [true] = committed *)
  reshard : string;
      (** encoded {!Reshard_wire.participant} — the migration state the
          replica derived from committed [Reshard_*] instances; [""] on
          images persisted before resharding existed *)
}

let encode t =
  Wire.encode (fun e ->
      Wire.Encoder.uint e t.commit_point;
      Wire.Encoder.string e t.state;
      Wire.Encoder.list e
        (fun (client, reply) ->
          Wire.Encoder.uint e client;
          Types.encode_reply e reply)
        t.dedup;
      Wire.Encoder.list e
        (fun (tid, branch) ->
          Wire.Encoder.uint e tid;
          Wire.Encoder.string e branch)
        t.prepared;
      Wire.Encoder.list e
        (fun (tid, committed) ->
          Wire.Encoder.uint e tid;
          Wire.Encoder.bool e committed)
        t.outcomes;
      Wire.Encoder.string e t.reshard)

let decode s =
  Wire.decode s (fun d ->
      let commit_point = Wire.Decoder.uint d in
      let state = Wire.Decoder.string d in
      let dedup =
        Wire.Decoder.list d (fun d ->
            let client = Wire.Decoder.uint d in
            let reply = Types.decode_reply d in
            (client, reply))
      in
      (* Snapshots persisted before the 2PC tables existed end here. *)
      let prepared =
        if Wire.Decoder.at_end d then []
        else
          Wire.Decoder.list d (fun d ->
              let tid = Wire.Decoder.uint d in
              let branch = Wire.Decoder.string d in
              (tid, branch))
      in
      let outcomes =
        if Wire.Decoder.at_end d then []
        else
          Wire.Decoder.list d (fun d ->
              let tid = Wire.Decoder.uint d in
              let committed = Wire.Decoder.bool d in
              (tid, committed))
      in
      let reshard = if Wire.Decoder.at_end d then "" else Wire.Decoder.string d in
      { commit_point; state; dedup; prepared; outcomes; reshard })
