(** The contract between the replication layer and a (possibly
    nondeterministic) service.

    The replication engines never interpret operations or states: they
    move encoded bytes. The two hooks that make nondeterminism safe are:

    - {b state shipping}: [apply] runs only at the leader, with the
      leader's RNG and clock injected; the resulting state is shipped to
      the backups via {!Types.state_update} ([Full] or [Delta]);
    - {b determinization witnesses}: [apply] may return a witness — the
      nondeterministic choices it made (random draws, observed clock) —
      and [replay] re-derives the identical transition from it. This is
      the paper's first overhead-reduction option (§3.3) and is also how
      T-Paxos rebases transactions at commit time. *)

module type S = sig
  val name : string

  type state
  type op
  type result

  val initial : unit -> state

  val classify : op -> [ `Read | `Write ]
  (** Whether the operation changes service state. Read operations may be
      coordinated with X-Paxos. *)

  type outcome = {
    state : state;
    result : result;
    witness : string option;
        (** Encoded nondeterministic choices, sufficient for {!replay};
            [None] if the operation happened to be deterministic. *)
  }

  val apply : rng:Grid_util.Rng.t -> now:float -> state -> op -> outcome
  (** Execute [op]. Runs at the leader only. [now] is the leader's local
      clock in milliseconds — services whose behaviour depends on local
      time (the grid scheduler of §2) read it from here. *)

  val replay : state -> op -> witness:string -> state * result
  (** Deterministically re-derive the transition of [apply] from its
      witness. Must satisfy: if [apply ~rng ~now s op] returned
      [{state = s'; result = r; witness = Some w}] then
      [replay s op ~w = (s', r)]. *)

  val footprint : op -> string list
  (** Abstract keys touched by the operation, for T-Paxos first-committer-
      wins conflict detection. [\["*"\]] conflicts with everything; [\[\]]
      conflicts with nothing (pure reads). *)

  (** {1 Codecs} *)

  val encode_op : op -> string
  val decode_op : string -> op
  val encode_result : result -> string
  val decode_result : string -> result
  val encode_state : state -> string
  val decode_state : string -> state

  (** {1 Optional delta shipping} *)

  val diff : old_state:state -> state -> string option
  (** A compact encoding of [state] given [old_state]; [None] to fall
      back to full-state shipping. *)

  val patch : state -> string -> state
  (** Apply a diff produced by {!diff}. *)

  (** {1 Optional range handoff (elastic resharding, DESIGN.md §17)}

      Services whose footprint keys form an ordered keyspace can export
      the slice of their state owned by a key range and absorb such a
      slice shipped from another group. The range bounds are {e
      footprint} keys ([lo] inclusive, [hi] exclusive, [None] = top of
      the keyspace) — the same vocabulary {!footprint} speaks, so the
      reshard coordinator never learns service internals. *)

  val export_range : state -> lo:string -> hi:string option -> (int * string) option
  (** [(count, blob)]: how many items the slice covers (admin counters)
      and the encoded slice of the state owned by [\[lo, hi)]; [None] if
      this service does not support range handoff (the reshard
      coordinator then refuses to move its shards). *)

  val import_range : state -> string -> state
  (** Absorb a slice produced by {!export_range} on another replica's
      state. Must be idempotent: installing the same slice twice yields
      the same state (duplicate INSTALL delivery is legal). *)
end
