(** The [WIRE] signature: one versioned binary codec for a message type.

    A codec owns the full frame payload — header (if its version has
    one) and body — and is the unit the transport negotiates at dial
    time and is functorized over (see {!Grid_net.Framing.Codec}). The
    message type stays abstract here so the signature can live below the
    protocol-types library; implementations for the replication
    protocol's [Types.msg] are in [Grid_paxos.Wire_codec].

    Decoding never raises: failures surface as typed {!decode_error}
    values, which the transport turns into connection-level [`Corrupt]
    results instead of exceptions unwinding through reader loops. *)

type decode_error = {
  version : int;  (** the codec that rejected the bytes *)
  pos : int;  (** byte offset of the failure *)
  msg : string;
}

let pp_decode_error ppf { version; pos; msg } =
  Format.fprintf ppf "wire v%d decode error at byte %d: %s" version pos msg

let decode_error_to_string e = Format.asprintf "%a" pp_decode_error e

(** Versioned frames open with a one-byte header whose high nibble is
    this magic (low nibble: the codec version). Version 1 predates the
    header and has none; its first byte is a message-tag varint, always
    [< 0x10], so the two framings cannot be confused. *)
let magic_nibble = 0xA

let header_byte ~version =
  if version < 0 || version > 0xF then invalid_arg "Wire_intf.header_byte";
  Char.chr ((magic_nibble lsl 4) lor version)

(** [header_version s] classifies the first byte of a frame payload:
    [Some v] when it carries a versioned header (magic nibble matches),
    [None] when it is headerless (version-1 legacy framing or garbage —
    the V1 decoder's tag check arbitrates). *)
let header_version s =
  if String.length s = 0 then None
  else
    let b = Char.code s.[0] in
    if b lsr 4 = magic_nibble then Some (b land 0xF) else None

module type WIRE = sig
  type msg

  val version : int
  (** Protocol version this codec implements; negotiated per connection
      as [min (local, peer)] over the hello exchange. *)

  val encode : msg -> string
  (** Full frame payload: header (if any for this version) plus body. *)

  val decode : string -> (msg, decode_error) result
  (** Inverse of {!encode}; rejects trailing bytes, truncations, wrong
      magic/version headers and out-of-range tags with a typed error,
      never an exception. *)
end
