(** Streaming and batch statistics used by the benchmark harness.

    The paper reports averages with 99% confidence intervals; {!summary}
    and {!confidence_interval} reproduce that reporting (Student-t for
    small samples, normal approximation for large ones). *)

(** {1 Streaming accumulator (Welford)} *)

type t
(** Mutable accumulator of a stream of floats: count, mean, variance,
    min and max, in O(1) memory. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] if empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having seen both
    streams (Chan et al. parallel combination). *)

(** {1 Confidence intervals} *)

val t_quantile : confidence:float -> df:int -> float
(** Two-sided Student-t critical value, e.g.
    [t_quantile ~confidence:0.99 ~df:19]. Interpolated from a fixed table;
    falls back to the normal quantile for large [df]. Supported confidence
    levels: 0.90, 0.95, 0.99. *)

val confidence_interval : ?confidence:float -> t -> float
(** Half-width of the confidence interval of the mean (default 99%),
    i.e. the paper's "±" value. [0.] with fewer than two observations. *)

(** {1 Batch helpers} *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]]; linear interpolation between
    order statistics. Sorts a copy — the input array is never mutated. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci99 : float;  (** half-width of the 99% confidence interval *)
  min : float;
  max : float;
  p50 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Full summary of a non-empty sample (sorts a copy). *)

val pp_summary : Format.formatter -> summary -> unit

(** {1 Histogram} *)

module Histogram : sig
  type h
  (** Binned histogram over [\[lo, hi)]; values outside the range are
      clamped into the first/last bin. Buckets are either fixed-width
      ({!create}) or exponentially growing ({!create_log}) — the latter
      is the shape latency distributions need (constant *relative*
      resolution across decades). *)

  val create : lo:float -> hi:float -> bins:int -> h
  (** Fixed-width buckets. *)

  val create_log : lo:float -> hi:float -> bins:int -> h
  (** Exponential buckets: bin [i] covers [\[lo·r^i, lo·r^(i+1))] with
      [r = (hi/lo)^(1/bins)]. Requires [lo > 0]. Non-positive samples are
      clamped into the first bin. *)

  val add : h -> float -> unit
  val counts : h -> int array
  val total : h -> int
  val sum : h -> float
  val mean : h -> float
  (** [nan] when empty. *)

  val bin_edges : h -> float array
  val percentile_estimate : h -> float -> float
  (** Percentile estimated from bucket counts (linear interpolation
      within the covering bucket); [nan] when empty. With log buckets the
      error is a constant relative factor bounded by the bucket ratio. *)

  val pp : Format.formatter -> h -> unit
  (** Render as an ASCII bar chart, one line per non-empty bin. *)
end
