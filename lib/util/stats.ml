type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. Float.of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. Float.of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min
let max_value t = t.max

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. Float.of_int b.n /. Float.of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. Float.of_int a.n *. Float.of_int b.n /. Float.of_int n)
    in
    { n; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
  end

(* Two-sided Student-t critical values. Rows: degrees of freedom; columns:
   90%, 95%, 99% confidence. Values beyond df=120 use the normal quantile. *)
let t_table =
  [| (1, 6.314, 12.706, 63.657);
     (2, 2.920, 4.303, 9.925);
     (3, 2.353, 3.182, 5.841);
     (4, 2.132, 2.776, 4.604);
     (5, 2.015, 2.571, 4.032);
     (6, 1.943, 2.447, 3.707);
     (7, 1.895, 2.365, 3.499);
     (8, 1.860, 2.306, 3.355);
     (9, 1.833, 2.262, 3.250);
     (10, 1.812, 2.228, 3.169);
     (12, 1.782, 2.179, 3.055);
     (14, 1.761, 2.145, 2.977);
     (16, 1.746, 2.120, 2.921);
     (18, 1.734, 2.101, 2.878);
     (20, 1.725, 2.086, 2.845);
     (25, 1.708, 2.060, 2.787);
     (30, 1.697, 2.042, 2.750);
     (40, 1.684, 2.021, 2.704);
     (60, 1.671, 2.000, 2.660);
     (120, 1.658, 1.980, 2.617) |]

let normal_quantile ~confidence =
  match confidence with
  | 0.90 -> 1.6449
  | 0.95 -> 1.9600
  | 0.99 -> 2.5758
  | _ -> invalid_arg "Stats: confidence must be 0.90, 0.95 or 0.99"

let column ~confidence (_, c90, c95, c99) =
  match confidence with
  | 0.90 -> c90
  | 0.95 -> c95
  | 0.99 -> c99
  | _ -> invalid_arg "Stats: confidence must be 0.90, 0.95 or 0.99"

let t_quantile ~confidence ~df =
  if df < 1 then invalid_arg "Stats.t_quantile: df must be >= 1";
  if df > 120 then normal_quantile ~confidence
  else begin
    (* Find bracketing rows and interpolate linearly in 1/df, which is
       close to linear for the t quantile. *)
    let rec find i =
      if i >= Array.length t_table then t_table.(Array.length t_table - 1)
      else begin
        let ((d, _, _, _) as row) = t_table.(i) in
        if d >= df then
          if d = df || i = 0 then row
          else begin
            let ((d0, _, _, _) as prev) = t_table.(i - 1) in
            let v0 = column ~confidence prev and v1 = column ~confidence row in
            let x0 = 1.0 /. Float.of_int d0
            and x1 = 1.0 /. Float.of_int d
            and x = 1.0 /. Float.of_int df in
            let frac = (x -. x0) /. (x1 -. x0) in
            (df, 0.0, 0.0, v0 +. (frac *. (v1 -. v0)))
            |> fun (_, _, _, v) -> (df, v, v, v)
          end
        else find (i + 1)
      end
    in
    column ~confidence (find 0)
  end

let confidence_interval ?(confidence = 0.99) t =
  if t.n < 2 then 0.0
  else begin
    let crit = t_quantile ~confidence ~df:(t.n - 1) in
    crit *. stddev t /. sqrt (Float.of_int t.n)
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  (* Sort a copy: callers hand us their sample arrays and a statistics
     query must not mutate its input (it used to sort in place, which
     silently reordered benchmark records). *)
  let xs = Array.copy xs in
  Array.sort Float.compare xs;
  let n = Array.length xs in
  if n = 1 then xs.(0)
  else begin
    let rank = p /. 100.0 *. Float.of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. Float.of_int lo in
    xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))
  end

let median xs = percentile xs 50.0

type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci99 : float;
  min : float;
  max : float;
  p50 : float;
  p99 : float;
}

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty sample";
  let acc = create () in
  Array.iter (add acc) xs;
  (* One shared sorted copy for both percentiles. *)
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let of_sorted p =
    let n = Array.length sorted in
    if n = 1 then sorted.(0)
    else begin
      let rank = p /. 100.0 *. Float.of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. Float.of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    end
  in
  {
    n = count acc;
    mean = mean acc;
    stddev = stddev acc;
    ci99 = confidence_interval ~confidence:0.99 acc;
    min = min_value acc;
    max = max_value acc;
    p50 = of_sorted 50.0;
    p99 = of_sorted 99.0;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g ±%.2g (99%% CI) sd=%.3g min=%.4g p50=%.4g p99=%.4g max=%.4g"
    s.n s.mean s.ci99 s.stddev s.min s.p50 s.p99 s.max

module Histogram = struct
  (* [Linear] keeps the original fixed-width layout; [Log ratio] buckets
     grow geometrically by [ratio] per bin — the right shape for latency
     distributions spanning several decades (the metrics registry's
     default). *)
  type scale = Linear | Log of float

  type h = {
    lo : float;
    hi : float;
    scale : scale;
    counts : int array;
    mutable total : int;
    mutable sum : float;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; scale = Linear; counts = Array.make bins 0; total = 0; sum = 0.0 }

  let create_log ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create_log: bins must be positive";
    if not (lo > 0.0) then invalid_arg "Histogram.create_log: lo must be positive";
    if not (hi > lo) then invalid_arg "Histogram.create_log: hi must exceed lo";
    let ratio = Float.exp (Float.log (hi /. lo) /. Float.of_int bins) in
    { lo; hi; scale = Log ratio; counts = Array.make bins 0; total = 0; sum = 0.0 }

  let clamp h i =
    let bins = Array.length h.counts in
    if i < 0 then 0 else if i >= bins then bins - 1 else i

  let bin_index h x =
    match h.scale with
    | Linear ->
      let bins = Array.length h.counts in
      clamp h (int_of_float ((x -. h.lo) /. (h.hi -. h.lo) *. Float.of_int bins))
    | Log ratio ->
      if x <= h.lo then 0
      else clamp h (int_of_float (Float.log (x /. h.lo) /. Float.log ratio))

  let add h x =
    h.counts.(bin_index h x) <- h.counts.(bin_index h x) + 1;
    h.total <- h.total + 1;
    h.sum <- h.sum +. x

  let counts h = Array.copy h.counts
  let total h = h.total
  let sum h = h.sum
  let mean h = if h.total = 0 then nan else h.sum /. Float.of_int h.total

  let edge h i =
    match h.scale with
    | Linear ->
      let bins = Array.length h.counts in
      h.lo +. (Float.of_int i *. (h.hi -. h.lo) /. Float.of_int bins)
    | Log ratio -> h.lo *. (ratio ** Float.of_int i)

  let bin_edges h = Array.init (Array.length h.counts + 1) (edge h)

  (* Percentile estimate from bucket counts: find the bucket holding the
     rank and interpolate linearly inside it. Accuracy is bounded by the
     bucket width — with log buckets, a constant relative error. *)
  let percentile_estimate h p =
    if h.total = 0 then nan
    else begin
      let rank = p /. 100.0 *. Float.of_int h.total in
      let rec find i seen =
        if i >= Array.length h.counts then edge h (Array.length h.counts)
        else begin
          let seen' = seen + h.counts.(i) in
          if Float.of_int seen' >= rank && h.counts.(i) > 0 then begin
            let within =
              (rank -. Float.of_int seen) /. Float.of_int h.counts.(i)
            in
            let lo = edge h i and hi = edge h (i + 1) in
            lo +. (Float.max 0.0 (Float.min 1.0 within) *. (hi -. lo))
          end
          else find (i + 1) seen'
        end
      in
      find 0 0
    end

  let pp ppf h =
    let bins = Array.length h.counts in
    let max_count = Array.fold_left Stdlib.max 1 h.counts in
    for i = 0 to bins - 1 do
      if h.counts.(i) > 0 then begin
        let bar = 50 * h.counts.(i) / max_count in
        Format.fprintf ppf "[%8.3g, %8.3g) %6d %s@." (edge h i)
          (edge h (i + 1))
          h.counts.(i)
          (String.make bar '#')
      end
    done
end
