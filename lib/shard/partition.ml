(* The partition map: abstract footprint keys -> shard ids.

   Ownership depends only on the key and the shard count — never on the
   replica count inside a group — so reconfiguring a group (3 -> 5
   replicas, different timeouts) cannot silently migrate keys. The hash
   is a hand-rolled 64-bit FNV-1a: stable across OCaml versions and
   architectures, unlike [Hashtbl.hash]. *)

type spec =
  | Hash
  | Range of string list

type t = { shards : int; spec : spec }

let create ?(spec = Hash) ~shards () =
  if shards < 1 then invalid_arg "Partition.create: need at least one shard";
  (match spec with
  | Hash -> ()
  | Range cuts ->
    if List.length cuts <> shards - 1 then
      invalid_arg "Partition.create: a k-shard range map needs k-1 cut points";
    let rec sorted = function
      | a :: (b :: _ as rest) -> String.compare a b < 0 && sorted rest
      | _ -> true
    in
    if not (sorted cuts) then
      invalid_arg "Partition.create: range cut points must be strictly increasing");
  { shards; spec }

let shards t = t.shards

let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let owner_of_key t key =
  match t.spec with
  | Hash -> Int64.to_int (Int64.unsigned_rem (fnv1a64 key) (Int64.of_int t.shards))
  | Range cuts ->
    let rec find i = function
      | [] -> i
      | cut :: rest -> if String.compare key cut < 0 then i else find (i + 1) rest
    in
    find 0 cuts

type placement = Single of int | Any

type error =
  [ `All_shards  (** a ["*"] footprint: the op touches every shard *)
  | `Cross_shard of (string * int) list
    (** keys owned by more than one shard, with each key's owner *) ]

let pp_error ppf (e : error) =
  match e with
  | `All_shards -> Format.fprintf ppf "op touches all shards (footprint \"*\")"
  | `Cross_shard keys ->
    Format.fprintf ppf "op spans shards:";
    List.iter (fun (k, s) -> Format.fprintf ppf " %s->s%d" k s) keys

let place t keys : (placement, error) result =
  if List.mem "*" keys then Error `All_shards
  else
    match keys with
    | [] -> Ok Any
    | first :: rest ->
      let owner0 = owner_of_key t first in
      if List.for_all (fun k -> owner_of_key t k = owner0) rest then
        Ok (Single owner0)
      else Error (`Cross_shard (List.map (fun k -> (k, owner_of_key t k)) keys))
