(* The partition map: abstract footprint keys -> shard ids.

   Ownership depends only on the key and the map itself — never on the
   replica count inside a group — so reconfiguring a group (3 -> 5
   replicas, different timeouts) cannot silently migrate keys. The hash
   is a hand-rolled 64-bit FNV-1a: stable across OCaml versions and
   architectures, unlike [Hashtbl.hash].

   Since resharding (DESIGN.md §17) the map is *versioned*: every map
   carries a monotone [epoch], and range maps carry an explicit
   interval->owner assignment so a split can hand the new right half to
   an existing group without renumbering anything. [split]/[merge]
   produce the successor map plus the [move] describing which key range
   changes hands; committing that map is the reshard coordinator's job. *)

module Wire = Grid_codec.Wire

type spec =
  | Hash
  | Range of string list

type t = {
  shards : int;  (* group count — fixed; intervals may outnumber groups *)
  spec : spec;
  epoch : int;
  owners : int array;
      (* interval index -> owning group. For [Hash] the identity over
         [0..shards-1]; for [Range cuts] one entry per interval
         (|cuts| + 1). Epoch-0 maps are the identity, so seed behaviour
         is unchanged. *)
}

let check_cuts ~shards:_ cuts =
  let rec sorted = function
    | a :: (b :: _ as rest) -> String.compare a b < 0 && sorted rest
    | _ -> true
  in
  if not (sorted cuts) then
    invalid_arg "Partition.create: range cut points must be strictly increasing"

let create ?(spec = Hash) ~shards () =
  if shards < 1 then invalid_arg "Partition.create: need at least one shard";
  (match spec with
  | Hash -> ()
  | Range cuts ->
    if List.length cuts <> shards - 1 then
      invalid_arg "Partition.create: a k-shard range map needs k-1 cut points";
    check_cuts ~shards cuts);
  { shards; spec; epoch = 0; owners = Array.init shards (fun i -> i) }

let shards t = t.shards
let epoch t = t.epoch

(* An ABORT decision consumes its epoch at the source group (the
   tombstone refuses every later instance of that epoch) even though
   the map never changed, so a retried transition must skip past it. *)
let restamp t ~epoch =
  if epoch <= t.epoch then
    invalid_arg "Partition.restamp: epoch must exceed the current one";
  { t with epoch }

let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let interval_of_key cuts key =
  let rec find i = function
    | [] -> i
    | cut :: rest -> if String.compare key cut < 0 then i else find (i + 1) rest
  in
  find 0 cuts

let owner_of_key t key =
  match t.spec with
  | Hash -> Int64.to_int (Int64.unsigned_rem (fnv1a64 key) (Int64.of_int t.shards))
  | Range cuts -> t.owners.(interval_of_key cuts key)

(* The (lo, hi) span of interval [i]; [None] bounds are open ends. *)
let interval_span cuts i =
  let arr = Array.of_list cuts in
  let lo = if i = 0 then None else Some arr.(i - 1) in
  let hi = if i = Array.length arr then None else Some arr.(i) in
  (lo, hi)

let intervals t =
  match t.spec with
  | Hash -> []
  | Range cuts ->
    List.init (List.length cuts + 1) (fun i ->
        let lo, hi = interval_span cuts i in
        (lo, hi, t.owners.(i)))

(* ------------------------------------------------------------------ *)
(* Reshard transitions. Both are realizations of one primitive: a key
   range changes owner and the epoch advances. *)

type move = { mv_lo : string; mv_hi : string option; source : int; target : int }

type reshard_error =
  [ `Hash_map  (** hash maps have no contiguous ranges to move *)
  | `Bad_cut of string
  | `Bad_target of string ]

let pp_reshard_error ppf : reshard_error -> unit = function
  | `Hash_map -> Format.pp_print_string ppf "hash partition maps cannot be reshaped"
  | `Bad_cut m -> Format.fprintf ppf "bad cut point: %s" m
  | `Bad_target m -> Format.fprintf ppf "bad target group: %s" m

let split t ~cut ~target : (t * move, reshard_error) result =
  match t.spec with
  | Hash -> Error `Hash_map
  | Range cuts ->
    if target < 0 || target >= t.shards then
      Error (`Bad_target (Printf.sprintf "group %d of %d" target t.shards))
    else if List.mem cut cuts then
      Error (`Bad_cut (Printf.sprintf "%S is already a cut point" cut))
    else begin
      let i = interval_of_key cuts cut in
      let source = t.owners.(i) in
      if source = target then
        Error (`Bad_target (Printf.sprintf "group %d already owns the range" target))
      else begin
        let _, hi = interval_span cuts i in
        (* Splice the cut in and give the right half to [target]. *)
        let cuts' =
          List.concat
            [ List.filteri (fun j _ -> j < i) cuts; [ cut ];
              List.filteri (fun j _ -> j >= i) cuts ]
        in
        let owners' =
          Array.init
            (Array.length t.owners + 1)
            (fun j ->
              if j <= i then t.owners.(j)
              else if j = i + 1 then target
              else t.owners.(j - 1))
        in
        Ok
          ( { t with spec = Range cuts'; owners = owners'; epoch = t.epoch + 1 },
            { mv_lo = cut; mv_hi = hi; source; target } )
      end
    end

let merge t ~cut : (t * move option, reshard_error) result =
  match t.spec with
  | Hash -> Error `Hash_map
  | Range cuts -> (
    match List.find_index (String.equal cut) cuts with
    | None -> Error (`Bad_cut (Printf.sprintf "%S is not a cut point" cut))
    | Some i ->
      (* Intervals [i] (left) and [i+1] (right) merge; the left owner
         absorbs the right interval's range. *)
      let source = t.owners.(i + 1) and target = t.owners.(i) in
      let _, hi = interval_span cuts (i + 1) in
      let cuts' = List.filteri (fun j _ -> j <> i) cuts in
      let owners' =
        Array.init
          (Array.length t.owners - 1)
          (fun j -> if j <= i then t.owners.(j) else t.owners.(j + 1))
      in
      let mv =
        if source = target then None
        else Some { mv_lo = cut; mv_hi = hi; source; target }
      in
      Ok ({ t with spec = Range cuts'; owners = owners'; epoch = t.epoch + 1 }, mv))

(* ------------------------------------------------------------------ *)
(* Map codec: replicas commit the encoded successor map as the payload
   of the reshard COMMIT instance, and [Wrong_epoch] redirects carry it
   back to stale clients. *)

let encode t =
  Wire.encode (fun e ->
      Wire.Encoder.uint e t.shards;
      (match t.spec with
      | Hash -> Wire.Encoder.uint e 0
      | Range cuts ->
        Wire.Encoder.uint e 1;
        Wire.Encoder.list e (Wire.Encoder.string e) cuts);
      Wire.Encoder.uint e t.epoch;
      Wire.Encoder.list e (Wire.Encoder.uint e) (Array.to_list t.owners))

let decode s =
  Wire.decode s (fun d ->
      let shards = Wire.Decoder.uint d in
      let spec =
        match Wire.Decoder.uint d with
        | 0 -> Hash
        | 1 -> Range (Wire.Decoder.list d Wire.Decoder.string)
        | n ->
          raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "bad spec %d" n })
      in
      let epoch = Wire.Decoder.uint d in
      let owners = Array.of_list (Wire.Decoder.list d Wire.Decoder.uint) in
      if shards < 1 then
        raise (Wire.Decode_error { pos = 0; msg = "partition: no shards" });
      let expected =
        match spec with Hash -> shards | Range cuts -> List.length cuts + 1
      in
      if Array.length owners <> expected then
        raise (Wire.Decode_error { pos = 0; msg = "partition: owners mismatch" });
      if Array.exists (fun o -> o < 0 || o >= shards) owners then
        raise (Wire.Decode_error { pos = 0; msg = "partition: owner out of range" });
      (match spec with Hash -> () | Range cuts -> check_cuts ~shards cuts);
      { shards; spec; epoch; owners })

type placement = Single of int | Any

type error =
  [ `All_shards  (** a ["*"] footprint: the op touches every shard *)
  | `Cross_shard of (string * int) list
    (** keys owned by more than one shard, with each key's owner *) ]

let pp_error ppf (e : error) =
  match e with
  | `All_shards -> Format.fprintf ppf "op touches all shards (footprint \"*\")"
  | `Cross_shard keys ->
    Format.fprintf ppf "op spans shards:";
    List.iter (fun (k, s) -> Format.fprintf ppf " %s->s%d" k s) keys

let place t keys : (placement, error) result =
  if List.mem "*" keys then Error `All_shards
  else
    match keys with
    | [] -> Ok Any
    | first :: rest ->
      let owner0 = owner_of_key t first in
      if List.for_all (fun k -> owner_of_key t k = owner0) rest then
        Ok (Single owner0)
      else Error (`Cross_shard (List.map (fun k -> (k, owner_of_key t k)) keys))
