(** The sharded runtime: k independent replica groups over one shared
    simulation, and a router dispatching each client request to the group
    owning its footprint keys.

    Each group runs the full single-group protocol stack unchanged
    (basic / X-Paxos / T-Paxos); groups never exchange messages. The
    router rejects cross-shard operations with a typed error — the
    single-shard restriction (DESIGN.md §11). *)

module Make (S : Grid_paxos.Service_intf.S) : sig
  module Group : module type of Grid_runtime.Runtime.Make (S)

  type t

  type client
  (** A logical client: one protocol engine per group (each with a
      globally unique client id), closed loop across all of them. *)

  val create :
    ?seed:int ->
    ?trace:bool ->
    ?trace_capacity:int ->
    ?spec:Partition.spec ->
    ?route:(S.op -> string list) ->
    ?watchdog:Grid_obs.Watchdog.t ->
    cfg:Grid_paxos.Config.t ->
    scenario:Grid_runtime.Scenario.t ->
    shards:int ->
    unit ->
    t
  (** Build [shards] groups of [scenario.n] replicas each on one shared
      engine/network. Group [g] occupies global nodes
      [g*n .. g*n + n - 1]; its spans are tagged ["s<g>/"] in the shared
      recorder and its counters live in a per-group registry
      ({!metrics}). [route] maps an operation to its partition keys and
      defaults to [S.footprint]; services whose footprint understates
      routing (e.g. a global read with an empty conflict footprint)
      supply their own (see {!Grid_services.Kv_store.route}).

      [watchdog] (default: a fresh enabled sink) is shared by every
      group, so one violation count covers the whole sharded service and
      the lease mutual-exclusion view spans shards. *)

  (** {1 Accessors} *)

  val engine : t -> Grid_sim.Engine.t
  val network : t -> Grid_paxos.Types.msg Grid_sim.Network.t
  val obs : t -> Grid_obs.Span.Recorder.t

  val watchdog : t -> Grid_obs.Watchdog.t
  (** The shared online-invariant sink (zero on green runs). *)

  val partition : t -> Partition.t
  val shards : t -> int

  val group : t -> int -> Group.t
  (** The underlying single-group runtime for shard [g] — replicas,
      leader, message counts, everything the single-group API exposes. *)

  val metrics : t -> shard:int -> Grid_obs.Metrics.t
  val now : t -> float

  (** {1 Clients and routing} *)

  val add_client :
    t ->
    id:int ->
    ?machine_share:int ->
    ?on_reply:(Grid_paxos.Types.reply -> unit) ->
    unit ->
    client
  (** Register a logical client. Logical ids must be unique; the
      underlying per-group client ids are [id * shards + g]. *)

  val set_on_reply : t -> client -> (Grid_paxos.Types.reply -> unit) -> unit

  type submit_error = [ Partition.error | `Busy ]

  val pp_submit_error : Format.formatter -> submit_error -> unit

  val try_submit_item :
    t -> client -> S.op Grid_runtime.Runtime.item -> (int, submit_error) result
  (** Route the item by its footprint keys and submit it to the owning
      group; returns that group's shard id. Empty footprints route to
      shard 0 (deviation: the op conflicts with nothing, so any single
      group may serve it). Transaction items pin their [tid] to the
      first operation's shard; commit/abort follow the pin. Cross-shard
      operations return [`Cross_shard]/[`All_shards] without submitting
      anything.

      When the shared recorder is enabled, each successful submit records
      a router [Route] span with a deterministic nonzero trace id
      ([logical id * 1e6 + submission count + 1]) and threads it into the
      per-shard protocol client, so every span of the request — router,
      client, leader, followers — shares one trace id and parents into
      one tree ({!Grid_obs.Lifecycle.trace_tree}). *)

  val submit_item : t -> client -> S.op Grid_runtime.Runtime.item -> int
  (** {!try_submit_item}, raising [Invalid_argument] on any error. *)

  val try_submit_op : t -> client -> S.op -> (int, submit_error) result
  val submit_op : t -> client -> S.op -> int

  val pinned_txns : client -> int
  (** Open-transaction pins held by the router for this logical client.
      Bounded by the number of genuinely open transactions: commits and
      aborts release their pin once submitted. Each pin also records the
      partition-map epoch at pin time: if the map moves while the
      transaction is open, further ops follow the pin (the pinned group
      completes the transaction against the old epoch or answers
      [Wrong_epoch] at commit) rather than straddling epochs. *)

  val redirect_count : client -> int
  (** Transparent [Wrong_epoch] resubmissions performed on this client's
      behalf. A redirected request counts once per hop; the caller saw
      none of them. *)

  (** {1 Cross-shard transactions (2PC over per-group T-Paxos)}

      The coordinator is client-side and unreplicated; crash safety
      comes from both the prepare votes and the final decision being
      consensus instances in each participant group's log (DESIGN.md
      §16). The home group — lowest participant shard — is the commit
      point: the transaction committed iff the COMMIT decision committed
      there. *)

  type xresult = X_committed | X_aborted | X_conflict

  val pp_xresult : Format.formatter -> xresult -> unit

  val cross_tid_base : int
  (** Cross-shard transaction ids live at and above this value — a
      namespace disjoint from per-client single-shard tids, allocated
      from a monotone per-runtime counter. *)

  val is_cross_tid : int -> bool

  val alloc_cross_tid : t -> int

  val submit_cross_txn :
    ?tid:int ->
    t ->
    client ->
    ops:S.op list ->
    on_done:(xresult -> unit) ->
    int
  (** Run one cross-shard transaction over [ops] (routed per op by
      footprint; at least one op required) and return its tid. Phases:
      per-shard branch execution, prepare fan-out, then the decision
      ([drive_decision] order: home first on commit). [on_done] fires
      once every participant has acknowledged the decision. The client's
      per-shard handles must all be idle; its [on_reply] callback is
      borrowed for the duration and restored before [on_done]. Raises
      [Invalid_argument] on an unroutable op, an empty [ops], or a busy
      handle. *)

  val recover_cross_txn :
    t -> client -> tid:int -> shards:int list -> on_done:(xresult -> unit) -> unit
  (** Presumed-abort recovery for an abandoned coordinator: probe the
      home (lowest) shard with an abort; [Ok] back means the COMMIT
      decision had already committed there, so the commit is completed
      at the remaining participants — anything else aborts them. Safe to
      race with the original coordinator (decision tombstones resolve
      the loser); use a fresh logical client. *)

  (** Raw per-shard submissions for deterministic engine-level tests:
      the caller places ops and drives phases itself. *)

  val submit_txn_op :
    t -> client -> shard:int -> tid:int -> S.op -> [ `Busy | `Submitted ]

  val submit_prepare :
    t -> client -> shard:int -> tid:int -> ops:int -> [ `Busy | `Submitted ]

  val submit_decision :
    t -> client -> shard:int -> tid:int -> commit:bool -> [ `Busy | `Submitted ]

  (** {1 Elastic resharding (DESIGN.md §17)}

      Online shard split/merge with snapshot handoff. The migration
      coordinator is client-side and unreplicated, like the 2PC
      coordinator above; crash safety comes from every protocol step
      being a consensus instance in a participant group's log. The
      {e source} group is the commit point: the reshard committed iff
      the COMMIT decision committed in the source's log. Clients that
      hit a moved range receive a typed [Wrong_epoch] redirect carrying
      the committed map; the router adopts it and transparently
      resubmits plain operations (see {!redirect_count}). *)

  type rresult = R_committed | R_aborted of string

  val pp_rresult : Format.formatter -> rresult -> unit

  val split_shard :
    t ->
    client ->
    cut:string ->
    target:int ->
    on_done:(rresult -> unit) ->
    (unit, Partition.reshard_error) result
  (** Insert [cut] into the owning interval and migrate the right half
      [[cut, hi)] to group [target]: FREEZE at the source, export the
      committed slice, INSTALL at the target, COMMIT at the source (the
      commit point — the router adopts the successor map here), COMMIT
      at the target. [on_done] fires when the target acknowledged its
      COMMIT (commit path) or the source acknowledged the rollback ABORT
      (abort path). [Error] means the plan itself is invalid (hash map,
      bad cut, bad target) and nothing was submitted. The client's
      handles must all be idle; they are borrowed for the duration.
      Raises [Invalid_argument] on a busy handle. *)

  val merge_shards :
    t ->
    client ->
    cut:string ->
    on_done:(rresult -> unit) ->
    (unit, Partition.reshard_error) result
  (** Remove the cut point [cut]; the left interval's owner absorbs the
      right interval via the same FREEZE/INSTALL/COMMIT protocol. When
      both sides already share an owner the epoch still advances but no
      data moves: the map is adopted directly and [on_done R_committed]
      fires synchronously. *)

  val recover_reshard :
    t ->
    client ->
    epoch:int ->
    source:int ->
    target:int ->
    on_done:(rresult -> unit) ->
    unit
  (** Presumed-abort recovery for an abandoned reshard coordinator:
      probe the source with an ABORT for [epoch]. If the source already
      committed the epoch it answers [Ok] carrying the committed map —
      the reshard committed, so the COMMIT is completed at the target
      and the router adopts the map. Anything else rolls the freeze
      back. Safe to race with the original coordinator (epoch
      tombstones make the loser's requests idempotent); use a fresh
      logical client. *)

  val submit_reshard :
    t ->
    client ->
    shard:int ->
    Grid_paxos.Types.rtype ->
    payload:string ->
    [ `Busy | `Submitted ]
  (** Raw reshard-instance submission for deterministic engine-level
      tests: the caller drives FREEZE/INSTALL/COMMIT/ABORT itself (and
      the router's map is not touched). *)

  (** {1 Failure control (per group)} *)

  val crash_replica : t -> shard:int -> int -> unit
  val recover_replica : t -> shard:int -> int -> unit
  val replica_up : t -> shard:int -> int -> bool

  (** {1 Running} *)

  val run_until : t -> float -> unit

  val await_leaders : ?max_wait:float -> t -> int array option
  (** Step the engine until every group has a leader; [None] if any
      group fails within [max_wait] simulated ms (default 10 s per
      group). *)

  (** {1 Aggregate closed-loop workload}

      All logical clients start at the same instant; each keeps one
      request outstanding. The router spreads requests across groups, so
      k disjoint keyspaces drive k depth-one pipelines concurrently. *)

  type record = {
    rec_client : int;
    rec_shard : int;  (** group that served the request *)
    rec_seq : int;
    rec_rtype : Grid_paxos.Types.rtype;
    rec_status : Grid_paxos.Types.status;
    rec_latency : float;
  }

  type results = {
    records : record list;
    started_at : float;
    finished_at : float;
    total_completed : int;
  }

  val latencies : ?filter:(record -> bool) -> results -> float array
  val throughput_rps : results -> float

  val run_closed_loop :
    ?max_sim_ms:float ->
    clients:int ->
    requests_per_client:int ->
    gen:(client:int -> unit -> S.op Grid_runtime.Runtime.item option) ->
    t ->
    results
  (** Raises [Failure] if a generator yields an unroutable item or the
      system stalls past [max_sim_ms] (default 600 s) of simulated
      time. *)
end
