(** Reshard planning: turn a split/merge intent against the current
    partition map into the concrete artefacts the migration protocol
    needs — the successor map, the range move, and the encoded payloads
    of the FREEZE and COMMIT consensus instances (DESIGN.md §17).

    Planning is pure; {!Multi.Make.split_shard} and
    {!Multi.Make.merge_shards} drive the resulting plan through the
    groups' logs. Keeping the two apart lets tests exercise plan
    validation without a cluster, and the coordinator stays a thin
    submission loop. *)

module Rw = Grid_paxos.Reshard_wire

type plan = {
  pl_epoch : int;  (** the epoch the transition commits *)
  pl_map : Partition.t;  (** successor map at [pl_epoch] *)
  pl_move : Partition.move;
  pl_freeze : string;  (** FREEZE payload: the moving range and target *)
  pl_commit : string;  (** COMMIT payload: the encoded successor map *)
}

(** A merge whose two intervals already share an owner advances the
    epoch without moving data: no freeze/ship/commit cycle, the router
    adopts the successor map directly. *)
type outcome = Move of plan | Trivial of Partition.t

let of_move map (mv : Partition.move) =
  {
    pl_epoch = Partition.epoch map;
    pl_map = map;
    pl_move = mv;
    pl_freeze = Rw.encode_freeze ~lo:mv.Partition.mv_lo ~hi:mv.Partition.mv_hi
        ~target:mv.Partition.target;
    pl_commit = Partition.encode map;
  }

let split part ~cut ~target : (outcome, Partition.reshard_error) result =
  Result.map (fun (m, mv) -> Move (of_move m mv)) (Partition.split part ~cut ~target)

let merge part ~cut : (outcome, Partition.reshard_error) result =
  match Partition.merge part ~cut with
  | Error e -> Error e
  | Ok (m, None) -> Ok (Trivial m)
  | Ok (m, Some mv) -> Ok (Move (of_move m mv))

(** Re-stamp an outcome to a later epoch — the coordinator skips epochs
    burned by aborted attempts (see {!Partition.restamp}). *)
let at_epoch outcome ~epoch =
  match outcome with
  | Trivial m -> Trivial (Partition.restamp m ~epoch)
  | Move p -> Move (of_move (Partition.restamp p.pl_map ~epoch) p.pl_move)

(** INSTALL payload for a planned move, once the source's committed
    slice is in hand. *)
let install_payload (p : plan) ~count ~blob =
  Rw.encode_install ~lo:p.pl_move.Partition.mv_lo ~hi:p.pl_move.Partition.mv_hi
    ~count ~blob
