(** Reshard planning (DESIGN.md §17): pure computation of the successor
    partition map, the range move, and the encoded FREEZE/COMMIT
    payloads for a split or merge. {!Multi.Make.split_shard} and
    {!Multi.Make.merge_shards} drive the plan through the groups'
    consensus logs. *)

type plan = {
  pl_epoch : int;  (** the epoch the transition commits *)
  pl_map : Partition.t;  (** successor map at [pl_epoch] *)
  pl_move : Partition.move;
  pl_freeze : string;  (** FREEZE consensus payload *)
  pl_commit : string;  (** COMMIT consensus payload (encoded map) *)
}

type outcome =
  | Move of plan
  | Trivial of Partition.t
      (** epoch advances but no range changes owner (merge of two
          intervals with one owner): adopt the map, skip the protocol *)

val split :
  Partition.t -> cut:string -> target:int -> (outcome, Partition.reshard_error) result

val merge : Partition.t -> cut:string -> (outcome, Partition.reshard_error) result

val at_epoch : outcome -> epoch:int -> outcome
(** Re-stamp to a later epoch, skipping epochs burned by aborted
    attempts (see {!Partition.restamp}). Payloads are recomputed. *)

val install_payload : plan -> count:int -> blob:string -> string
(** INSTALL consensus payload once the source's exported slice is in
    hand. *)
