(* The sharded runtime: k independent replica groups over one shared
   simulation, with a router that sends each client request to the group
   owning its footprint keys.

   Each group runs the full single-group protocol stack unchanged
   (basic / X-Paxos / T-Paxos); groups never exchange messages. The
   router rejects cross-shard operations with a typed error — the
   single-shard restriction DESIGN.md §11 documents as a deviation. *)

module Engine = Grid_sim.Engine
module Network = Grid_sim.Network
module Span = Grid_obs.Span
module Rng = Grid_util.Rng
module Runtime = Grid_runtime.Runtime
module Scenario = Grid_runtime.Scenario
open Grid_paxos.Types

module Make (S : Grid_paxos.Service_intf.S) = struct
  module Group = Runtime.Make (S)

  (* A logical client holds one protocol engine per group (each with its
     own globally unique client id), but the closed-loop contract is per
     logical client: one outstanding request across all groups. *)
  type client = {
    id : int;
    handles : Grid_paxos.Client.t array;  (* indexed by shard *)
    txns : (int, int * int) Hashtbl.t;
        (* open transaction -> (pinned shard, map epoch at pin time):
           the epoch distinguishes a genuine cross-shard op (error)
           from a map that moved under the pin (route to the pin; the
           group answers [Wrong_epoch] if the keys left it) *)
    mutable lseq : int;
        (* logical submissions so far: the deterministic trace-id source
           (id * 1e6 + lseq), advanced only on successful submits *)
    mutable base_on_reply : (reply -> unit) option;
        (* the caller's reply callback, so the 2PC coordinator can
           borrow the per-shard handles and hand them back afterwards *)
    mutable last_item : S.op Runtime.item option;
        (* what the outstanding request was, so a [Wrong_epoch] redirect
           can transparently resubmit it under the adopted map *)
    mutable redirect_budget : int;
        (* transparent resubmits left for the outstanding request;
           exhausted budgets surface the [Wrong_epoch] to the caller *)
    mutable redirects : int;  (* total transparent redirects, for stats *)
    mutable wrapped_cb : reply -> unit;
        (* the redirect-intercepting callback installed on every
           per-shard handle; [set_on_reply]/[release_handles] reinstall
           it (never the raw caller callback) *)
  }

  type t = {
    eng : Engine.t;
    net : msg Network.t;
    mutable part : Partition.t;
        (* the router's current partition map; [split_shard]/
           [merge_shards] and adopted [Wrong_epoch] redirects advance it *)
    route : S.op -> string list;
    groups : Group.t array;
    scenario : Scenario.t;
    obs : Span.Recorder.t;
    watchdog : Grid_obs.Watchdog.t;
    sid_route : string;  (* precomputed router span id *)
    mutable next_client_id : int;
    mutable next_cross_tid : int;
        (* cross-shard transaction ids: a namespace disjoint from every
           per-client single-shard tid, monotone so participant
           tombstone pruning stays safe *)
    mutable reshard_floor : int;
        (* lowest epoch the next reshard attempt may use: an ABORT
           decision burns its epoch at the source (the tombstone refuses
           later instances of it) without advancing the map, so retries
           must skip past every epoch already attempted *)
  }

  let cross_tid_base = 1_000_000_000

  let create ?(seed = 42) ?(trace = false) ?trace_capacity ?spec
      ?(route = S.footprint) ?watchdog ~cfg ~scenario:(sc : Scenario.t) ~shards () =
    let root = Rng.of_int seed in
    let eng = Engine.create () in
    let net = Network.create eng (Rng.split root) in
    let obs = Span.Recorder.create ?capacity:trace_capacity ~enabled:trace () in
    let part = Partition.create ?spec ~shards () in
    (* One watchdog sink for every group: the lease mutual-exclusion view
       is keyed by shard prefix, so sharing is safe and keeps one violation
       count for the whole sharded service. *)
    let watchdog =
      match watchdog with Some w -> w | None -> Grid_obs.Watchdog.create ()
    in
    (* Group g occupies global nodes [g*n .. g*n + n - 1]; its spans are
       tagged "s<g>/..." and its metrics live in its own registry. *)
    let groups =
      Array.init shards (fun g ->
          Group.create ~seed:(seed + ((g + 1) * 7919)) ~attach:(eng, net) ~obs
            ~node_base:(g * sc.n) ~shard:g ~watchdog ~cfg ~scenario:sc ())
    in
    {
      eng;
      net;
      part;
      route;
      groups;
      scenario = sc;
      obs;
      watchdog;
      sid_route = Span.span_id ~actor:"rtr" Span.Route;
      next_client_id = 0;
      next_cross_tid = cross_tid_base;
      reshard_floor = 1;
    }

  let engine t = t.eng
  let network t = t.net
  let obs t = t.obs
  let watchdog t = t.watchdog
  let partition t = t.part
  let shards t = Array.length t.groups
  let group t g = t.groups.(g)
  let metrics t ~shard = Group.metrics t.groups.(shard)
  let now t = Engine.now t.eng

  (* ---------------------------------------------------------------- *)
  (* Clients and routing *)

  let pinned_txns cl = Hashtbl.length cl.txns
  let redirect_count cl = cl.redirects

  (* Resolve an item to its owning shard. Empty footprints route to
     shard 0 (a documented deviation: the op conflicts with nothing, so
     any single group may serve it, but a "global" read like Kv.Size
     must advertise ["*"] to be rejected instead). Transaction items pin
     their tid to the first op's shard; commit and abort follow the pin. *)
  let route_item t cl (it : S.op Runtime.item) : (int, Partition.error) result =
    let place op = Partition.place t.part (t.route op) in
    match it with
    | Runtime.Do op | Runtime.Unreplicated op -> (
      match place op with
      | Ok (Partition.Single s) -> Ok s
      | Ok Partition.Any -> Ok 0
      | Error e -> Error e)
    | Runtime.In_txn (tid, op) -> (
      match Hashtbl.find_opt cl.txns tid with
      | Some (s', pinned_epoch) when pinned_epoch <> Partition.epoch t.part ->
        (* The map moved under an open transaction. The branch must not
           straddle epochs, so every further op follows the pin: the
           pinned group completes the transaction against the old epoch
           if it still owns the keys, or answers the commit with a typed
           [Wrong_epoch] if they moved away — never half under each
           map. *)
        Ok s'
      | pin -> (
        match place op with
        | Ok (Partition.Single s) -> (
          match pin with
          | None ->
            Hashtbl.replace cl.txns tid (s, Partition.epoch t.part);
            Ok s
          | Some (s', _) when s' = s -> Ok s
          | Some (s', _) ->
            Error
              (`Cross_shard
                 ((Printf.sprintf "txn/%d" tid, s')
                 :: List.map
                      (fun k -> (k, Partition.owner_of_key t.part k))
                      (t.route op))))
        | Ok Partition.Any -> (
          match pin with
          | Some (s, _) -> Ok s
          | None ->
            Hashtbl.replace cl.txns tid (0, Partition.epoch t.part);
            Ok 0)
        | Error e -> Error e))
    | Runtime.Commit_txn { tid; _ } | Runtime.Abort_txn tid ->
      (* The pin is read here but only released after a successful
         submit (see [try_submit_item]): releasing on a `Busy submit
         used to unpin the transaction, so the retried commit routed to
         shard 0 instead of the pinned shard, and pins for transactions
         whose commit never got in leaked forever. *)
      Ok (match Hashtbl.find_opt cl.txns tid with Some (s, _) -> s | None -> 0)

  type submit_error = [ Partition.error | `Busy ]

  let pp_submit_error ppf (e : submit_error) =
    match e with
    | #Partition.error as e -> Partition.pp_error ppf e
    | `Busy -> Format.pp_print_string ppf "client has a request outstanding"

  (* [fresh] distinguishes a caller submission from a transparent
     redirect resubmission: only the former re-arms the redirect budget
     (a redirect chain must converge, not re-fund itself). *)
  let submit_routed ~fresh t cl it : (int, submit_error) result =
    match route_item t cl it with
    | Error e -> Error (e :> submit_error)
    | Ok s ->
      (* When recording, every submission gets a deterministic trace id
         derived from (logical client, submission count); the per-shard
         protocol client parents its [Client_send] under the router's
         [Route] span, so the whole cross-shard request stitches into one
         tree. Untraced runs pass no context and pay one branch. *)
      (* +1 keeps the id nonzero: tid 0 is the untraced sentinel, and
         logical client 0's first submission would otherwise produce it. *)
      let trace =
        if Span.Recorder.enabled t.obs then
          Some ((cl.id * 1_000_000) + cl.lseq + 1, t.sid_route)
        else None
      in
      (match Group.try_submit_item t.groups.(s) cl.handles.(s) ?trace it with
      | `Submitted ->
        cl.last_item <- Some it;
        if fresh then cl.redirect_budget <- 8;
        (* Commit/abort are in the pipe: the pin has served its routing
           purpose. The client engine retransmits the request itself
           (including across leader switches, where the commit aborts),
           so the pin is never consulted again for this tid. *)
        (match it with
        | Runtime.Commit_txn { tid; _ } | Runtime.Abort_txn tid ->
          Hashtbl.remove cl.txns tid
        | _ -> ());
        (match trace with
        | Some (tid, _) ->
          cl.lseq <- cl.lseq + 1;
          (match Grid_paxos.Client.outstanding cl.handles.(s) with
          | Some r ->
            (* Tag the routing epoch — migration traffic shows up in
               [tracestat --tree] as the epoch flips, and transparent
               Wrong_epoch resubmissions are marked explicitly. *)
            Span.Recorder.span ~tid t.obs ~time:(now t) ~actor:"rtr" ~req:r.id
              ~instance:s
              ~detail:
                (Printf.sprintf "%sepoch=%d"
                   (if fresh then "" else "redirect ")
                   (Partition.epoch t.part))
              Span.Route
          | None -> ())
        | None -> ());
        Ok s
      | `Busy -> Error `Busy)

  let try_submit_item t cl it = submit_routed ~fresh:true t cl it

  let submit_item t cl it =
    match try_submit_item t cl it with
    | Ok s -> s
    | Error e ->
      invalid_arg (Format.asprintf "Multi.submit_item: %a" pp_submit_error e)

  let try_submit_op t cl op = try_submit_item t cl (Runtime.Do op)
  let submit_op t cl op = submit_item t cl (Runtime.Do op)

  (* ---------------------------------------------------------------- *)
  (* The redirect wrapper: every per-shard handle reports replies here,
     not to the caller. A [Wrong_epoch] reply carries the responding
     group's committed partition map; the wrapper adopts it if newer and
     — for plain ops, within budget — resubmits the request under the
     new map so the caller never sees the migration. Transactions are
     not replayed (their branch executed against the old epoch and is
     gone); the typed status surfaces so the caller can retry the whole
     transaction. *)

  let deliver cl (reply : reply) =
    match cl.base_on_reply with Some f -> f reply | None -> ()

  let handle_reply t cl (reply : reply) =
    match reply.status with
    | Wrong_epoch { epoch = _; map } -> (
      (match Partition.decode map with
      | m ->
        if Partition.epoch m > Partition.epoch t.part then begin
          t.part <- m;
          if Partition.epoch m >= t.reshard_floor then
            t.reshard_floor <- Partition.epoch m + 1
        end
      | exception _ -> ());
      match cl.last_item with
      | Some ((Runtime.Do _ | Runtime.Unreplicated _) as it)
        when cl.redirect_budget > 0 -> (
        cl.redirect_budget <- cl.redirect_budget - 1;
        cl.redirects <- cl.redirects + 1;
        match submit_routed ~fresh:false t cl it with
        | Ok _ -> ()
        | Error _ -> deliver cl reply)
      | _ ->
        (* Transaction item, exhausted budget, or nothing recorded:
           surface the redirect. Any pin this tid held is already gone
           (removed when the commit/abort entered the pipe). *)
        deliver cl reply)
    | _ -> deliver cl reply

  let add_client t ~id ?machine_share ?on_reply () =
    if id >= t.next_client_id then t.next_client_id <- id + 1;
    let k = Array.length t.groups in
    (* The wrapper closes over the client record it serves, but the
       record holds the handles the wrapper is installed on — tie the
       knot through a ref. *)
    let cl_ref = ref None in
    let wrapped reply =
      match !cl_ref with None -> () | Some cl -> handle_reply t cl reply
    in
    let handles =
      Array.mapi
        (fun g group ->
          Group.add_client group ~id:((id * k) + g) ?machine_share
            ~on_reply:wrapped ())
        t.groups
    in
    let cl =
      {
        id;
        handles;
        txns = Hashtbl.create 4;
        lseq = 0;
        base_on_reply = on_reply;
        last_item = None;
        redirect_budget = 0;
        redirects = 0;
        wrapped_cb = wrapped;
      }
    in
    cl_ref := Some cl;
    cl

  let set_on_reply t cl f =
    cl.base_on_reply <- Some f;
    (* Reinstall the wrapper, not [f]: replies must keep flowing through
       the redirect logic (this also ends any coordinator borrow). *)
    Array.iteri (fun g h -> Group.set_on_reply t.groups.(g) h cl.wrapped_cb) cl.handles

  (* ---------------------------------------------------------------- *)
  (* Cross-shard transactions: 2PC over per-group T-Paxos (DESIGN §16).

     The coordinator is client-side and unreplicated; what makes the
     protocol crash-safe is that both the prepare votes and the final
     decision are consensus instances in each participant group's log.
     The home group (lowest participant shard) is the commit point: the
     transaction is committed iff the COMMIT decision committed there.
     An abandoned coordinator is resolved by [recover_cross_txn], which
     probes the home group with an abort — presumed abort — and learns
     the real outcome from the group's decision tombstones. *)

  type xresult = X_committed | X_aborted | X_conflict

  let pp_xresult ppf = function
    | X_committed -> Format.pp_print_string ppf "committed"
    | X_aborted -> Format.pp_print_string ppf "aborted"
    | X_conflict -> Format.pp_print_string ppf "conflict"

  let alloc_cross_tid t =
    let tid = t.next_cross_tid in
    t.next_cross_tid <- tid + 1;
    tid

  let is_cross_tid tid = tid >= cross_tid_base

  let enc_count n =
    Grid_codec.Wire.encode (fun e -> Grid_codec.Wire.Encoder.uint e n)

  (* Raw per-shard submissions, bypassing the router: the coordinator
     (and the deterministic engine tests) place ops itself. *)
  let submit_txn_op t cl ~shard ~tid op =
    Group.submit t.groups.(shard) cl.handles.(shard) (Txn_op tid)
      ~payload:(S.encode_op op)

  let submit_prepare t cl ~shard ~tid ~ops =
    Group.submit t.groups.(shard) cl.handles.(shard) (Txn_prepare tid)
      ~payload:(enc_count ops)

  let submit_decision t cl ~shard ~tid ~commit =
    if commit then
      Group.submit t.groups.(shard) cl.handles.(shard) (Txn_commit tid)
        ~payload:(enc_count 0)
    else
      Group.submit t.groups.(shard) cl.handles.(shard) (Txn_abort tid) ~payload:""

  (* Route each reply arriving on the client's per-shard handles to a
     phase handler; the caller's callback is restored when the protocol
     finishes (or is abandoned by swapping in a new dispatcher). *)
  let borrow_handles t cl dispatch =
    Array.iteri
      (fun g h -> Group.set_on_reply t.groups.(g) h (fun reply -> dispatch g reply))
      cl.handles

  let release_handles t cl =
    (* Back to the redirect wrapper (which forwards to [base_on_reply]),
       never the raw callback: a [Wrong_epoch] arriving right after a
       coordinator hands the handles back must still be intercepted. *)
    Array.iteri (fun g h -> Group.set_on_reply t.groups.(g) h cl.wrapped_cb) cl.handles

  let must_submit ~what = function
    | `Submitted -> ()
    | `Busy -> invalid_arg ("Multi: cross-txn handle busy at " ^ what)

  (* Drive the decision phase: COMMIT goes to the home group first and
     alone — its commit is the transaction's commit point — then fans
     out to the remaining participants; ABORT fans out to everyone at
     once (presumed abort makes ordering irrelevant). [on_done] fires
     after every participant acknowledged its decision, so locks are
     released cluster-wide before the caller proceeds. *)
  let drive_decision t cl ~tid ~home ~rest ~commit ~on_done =
    let pending = ref 0 in
    let result = ref (if commit then X_committed else X_aborted) in
    let fan_out shards ~commit =
      pending := List.length shards;
      if !pending = 0 then begin
        release_handles t cl;
        on_done !result
      end
      else
        List.iter
          (fun s -> must_submit ~what:"decision" (submit_decision t cl ~shard:s ~tid ~commit))
          shards
    in
    let rec dispatch_rest _g (_ : reply) =
      decr pending;
      if !pending = 0 then begin
        release_handles t cl;
        on_done !result
      end
    and dispatch_home _g (reply : reply) =
      (* The home group's answer is authoritative: [Ok] means the COMMIT
         decision committed; [Txn_aborted] means a racing recovery got an
         abort decision in first, so the others must abort too. *)
      let committed = reply.status = Ok in
      if not committed then result := X_aborted;
      borrow_handles t cl dispatch_rest;
      fan_out rest ~commit:committed
    in
    if commit then begin
      borrow_handles t cl dispatch_home;
      pending := 1;
      must_submit ~what:"commit(home)" (submit_decision t cl ~shard:home ~tid ~commit:true)
    end
    else begin
      borrow_handles t cl dispatch_rest;
      fan_out (home :: rest) ~commit:false
    end

  let submit_cross_txn ?tid t cl ~(ops : S.op list) ~on_done =
    if ops = [] then invalid_arg "Multi.submit_cross_txn: empty transaction";
    let tid = match tid with Some tid -> tid | None -> alloc_cross_tid t in
    let k = Array.length t.groups in
    let by_shard = Array.make k [] in
    List.iter
      (fun op ->
        let s =
          match Partition.place t.part (t.route op) with
          | Ok (Partition.Single s) -> s
          | Ok Partition.Any -> 0
          | Error e ->
            invalid_arg
              (Format.asprintf "Multi.submit_cross_txn: unroutable op: %a"
                 Partition.pp_error e)
        in
        by_shard.(s) <- op :: by_shard.(s))
      ops;
    Array.iteri (fun s l -> by_shard.(s) <- List.rev l) by_shard;
    let shards = List.filter (fun s -> by_shard.(s) <> []) (List.init k Fun.id) in
    let home = List.hd shards and rest = List.tl shards in
    (* Phase 1 — ops: each participant executes its slice on a
       leader-local branch (ordinary T-Paxos [Txn_op]s, sequential per
       shard, shards progressing concurrently). *)
    let queues = Array.map (fun l -> ref l) by_shard in
    let ops_pending = ref (List.length shards) in
    (* Phase 2 — prepare: every participant votes by committing (or
       instantly refusing) a [Txn_prepare] instance. *)
    let votes_pending = ref 0 in
    let saw_conflict = ref false in
    let all_yes = ref true in
    let rec start_prepare () =
      borrow_handles t cl dispatch_vote;
      votes_pending := List.length shards;
      List.iter
        (fun s ->
          must_submit ~what:"prepare"
            (submit_prepare t cl ~shard:s ~tid ~ops:(List.length by_shard.(s))))
        shards
    and dispatch_vote _g (reply : reply) =
      (match reply.status with
      | Ok -> ()
      | Txn_conflict ->
        all_yes := false;
        saw_conflict := true
      | _ -> all_yes := false);
      decr votes_pending;
      if !votes_pending = 0 then
        if !all_yes then drive_decision t cl ~tid ~home ~rest ~commit:true ~on_done
        else
          (* Phase 3b — abort: at least one NO. Conflicts surface as
             [X_conflict] so callers can distinguish livelock from
             failure. NO-voters hold no lock, but the abort is still sent
             everywhere: on YES-voters it is the decision instance, on
             NO-voters an instant presumed-abort reply. *)
          drive_decision t cl ~tid ~home ~rest ~commit:false
            ~on_done:(fun _ ->
              on_done (if !saw_conflict then X_conflict else X_aborted))
    and dispatch_op g (reply : reply) =
      match reply.status with
      | Ok -> (
        match !(queues.(g)) with
        | op :: more ->
          queues.(g) := more;
          must_submit ~what:"txn_op" (submit_txn_op t cl ~shard:g ~tid op)
        | [] ->
          decr ops_pending;
          if !ops_pending = 0 then start_prepare ())
      | _ ->
        (* A branch op only fails terminally if its group is wedged;
           votes would refuse anyway, so skip straight to prepare. *)
        queues.(g) := [];
        decr ops_pending;
        if !ops_pending = 0 then start_prepare ()
    in
    borrow_handles t cl dispatch_op;
    List.iter
      (fun s ->
        match !(queues.(s)) with
        | op :: more ->
          queues.(s) := more;
          must_submit ~what:"txn_op" (submit_txn_op t cl ~shard:s ~tid op)
        | [] -> assert false)
      shards;
    tid

  (* Presumed-abort recovery for an abandoned coordinator: try to abort
     at the home group. If the home answers [Ok], the COMMIT decision had
     already committed there — finish the commit at the remaining
     participants; any other answer means the abort decision won (or no
     vote ever committed) and the remaining participants abort. Safe to
     run concurrently with the original coordinator: both race through
     the home group's log, and decision tombstones make the loser's
     requests harmless. Must use a fresh logical client (request ids of
     the abandoned coordinator may still be in flight). *)
  let recover_cross_txn t cl ~tid ~shards ~on_done =
    let shards = List.sort_uniq Int.compare shards in
    match shards with
    | [] -> invalid_arg "Multi.recover_cross_txn: no participants"
    | home :: rest ->
      let dispatch_probe _g (reply : reply) =
        let committed = reply.status = Ok in
        let pending = ref (List.length rest) in
        if !pending = 0 then begin
          release_handles t cl;
          on_done (if committed then X_committed else X_aborted)
        end
        else begin
          borrow_handles t cl (fun _g (_ : reply) ->
              decr pending;
              if !pending = 0 then begin
                release_handles t cl;
                on_done (if committed then X_committed else X_aborted)
              end);
          List.iter
            (fun s ->
              must_submit ~what:"recover-decision"
                (submit_decision t cl ~shard:s ~tid ~commit:committed))
            rest
        end
      in
      borrow_handles t cl dispatch_probe;
      must_submit ~what:"recover-probe"
        (submit_decision t cl ~shard:home ~tid ~commit:false)

  (* ---------------------------------------------------------------- *)
  (* Elastic resharding: the migration coordinator (DESIGN.md §17).

     Like the 2PC coordinator above, this is client-side and
     unreplicated; crash safety comes from every protocol step being a
     consensus instance in a participant group's log. The SOURCE group
     is the commit point: the reshard is committed iff the COMMIT
     decision committed in the source's log. The phases run strictly in
     sequence over one borrowed client:

       FREEZE(source) → export slice → INSTALL(target) →
       COMMIT(source) → COMMIT(target) → adopt map

     and an abandoned coordinator is resolved by [recover_reshard] —
     presumed abort, mirroring [recover_cross_txn]. *)

  type rresult = R_committed | R_aborted of string

  let pp_rresult ppf = function
    | R_committed -> Format.pp_print_string ppf "committed"
    | R_aborted r -> Format.fprintf ppf "aborted: %s" r

  let submit_reshard t cl ~shard rt ~payload =
    let trace =
      if Span.Recorder.enabled t.obs then
        Some ((cl.id * 1_000_000) + cl.lseq + 1, t.sid_route)
      else None
    in
    match Group.submit t.groups.(shard) cl.handles.(shard) ?trace rt ~payload with
    | `Submitted ->
      (match trace with
      | Some (tid, _) ->
        cl.lseq <- cl.lseq + 1;
        (match Grid_paxos.Client.outstanding cl.handles.(shard) with
        | Some r ->
          Span.Recorder.span ~tid t.obs ~time:(now t) ~actor:"rtr" ~req:r.id
            ~instance:shard
            ~detail:(Format.asprintf "reshard %a" pp_rtype rt)
            Span.Route
        | None -> ())
      | None -> ());
      `Submitted
    | `Busy -> `Busy

  (* Pick the source replica to export the moving slice from: any live
     replica whose committed prefix includes the FREEZE, preferring the
     longest prefix. The frozen range is immutable from the FREEZE
     instance on, so every such replica's slice content is identical and
     definitive — the choice only affects availability, not safety. *)
  let export_slice t ~source ~lo ~hi =
    let g = t.groups.(source) in
    let best = ref None in
    for i = 0 to t.scenario.n - 1 do
      if Group.replica_up g i then begin
        let r = Group.replica g i in
        if Group.R.reshard_phase r = "frozen" then
          match !best with
          | Some (cp, _) when cp >= Group.R.commit_point r -> ()
          | _ -> best := Some (Group.R.commit_point r, r)
      end
    done;
    match !best with
    | None -> None
    | Some (_, r) -> S.export_range (Group.R.state r) ~lo ~hi

  let run_plan t cl (p : Reshard.plan) ~on_done =
    let epoch = p.Reshard.pl_epoch in
    let source = p.Reshard.pl_move.Partition.source in
    let target = p.Reshard.pl_move.Partition.target in
    let lo = p.Reshard.pl_move.Partition.mv_lo in
    let hi = p.Reshard.pl_move.Partition.mv_hi in
    let finish r =
      release_handles t cl;
      on_done r
    in
    (* Roll back an uncommitted migration: the ABORT instance clears the
       freeze at the source (and tombstones the epoch), unblocking held
       writers. Nothing was committed, so this is purely availability. *)
    let abort_at_source reason =
      borrow_handles t cl (fun _g (_ : reply) -> finish (R_aborted reason));
      must_submit ~what:"reshard-abort"
        (submit_reshard t cl ~shard:source (Reshard_abort epoch) ~payload:"")
    in
    let commit_target () =
      (* The source committed: the reshard IS committed. The target's
         COMMIT activates the imported slice there; its answer cannot
         change the outcome (a duplicate arriving later via
         [recover_reshard] would be answered [Ok] idempotently). *)
      borrow_handles t cl (fun _g (_ : reply) -> finish R_committed);
      must_submit ~what:"reshard-commit(target)"
        (submit_reshard t cl ~shard:target (Reshard_commit epoch)
           ~payload:p.Reshard.pl_commit)
    in
    let commit_source () =
      borrow_handles t cl (fun _g (reply : reply) ->
          if reply.status = Ok then begin
            t.part <- p.Reshard.pl_map;
            commit_target ()
          end
          else
            (* A racing [recover_reshard] got its abort in first. *)
            finish (R_aborted "source refused COMMIT"));
      must_submit ~what:"reshard-commit(source)"
        (submit_reshard t cl ~shard:source (Reshard_commit epoch)
           ~payload:p.Reshard.pl_commit)
    in
    let install () =
      match export_slice t ~source ~lo ~hi with
      | None -> abort_at_source "no frozen source replica to export from"
      | Some (count, blob) ->
        borrow_handles t cl (fun _g (reply : reply) ->
            if reply.status = Ok then commit_source ()
            else abort_at_source "target refused INSTALL");
        must_submit ~what:"reshard-install"
          (submit_reshard t cl ~shard:target (Reshard_install epoch)
             ~payload:(Reshard.install_payload p ~count ~blob))
    in
    borrow_handles t cl (fun _g (reply : reply) ->
        if reply.status = Ok then install ()
        else finish (R_aborted "source refused FREEZE"));
    must_submit ~what:"reshard-freeze"
      (submit_reshard t cl ~shard:source (Reshard_freeze epoch)
         ~payload:p.Reshard.pl_freeze)

  let run_outcome t cl outcome ~on_done :
      (unit, Partition.reshard_error) result =
    (* Skip epochs burned by earlier aborted attempts, and burn this
       one up front: whatever happens next, no later attempt may reuse
       its epoch. *)
    let outcome =
      let e =
        match outcome with
        | Reshard.Trivial m -> Partition.epoch m
        | Reshard.Move p -> p.Reshard.pl_epoch
      in
      if e < t.reshard_floor then Reshard.at_epoch outcome ~epoch:t.reshard_floor
      else outcome
    in
    (match outcome with
    | Reshard.Trivial m ->
      t.reshard_floor <- Partition.epoch m + 1;
      (* Epoch advances but no range changes owner: the router adopts
         the map directly, no protocol round. *)
      t.part <- m;
      on_done R_committed
    | Reshard.Move p ->
      t.reshard_floor <- p.Reshard.pl_epoch + 1;
      run_plan t cl p ~on_done);
    Ok ()

  let split_shard t cl ~cut ~target ~on_done =
    match Reshard.split t.part ~cut ~target with
    | Error e -> Error e
    | Ok o -> run_outcome t cl o ~on_done

  let merge_shards t cl ~cut ~on_done =
    match Reshard.merge t.part ~cut with
    | Error e -> Error e
    | Ok o -> run_outcome t cl o ~on_done

  (* Presumed-abort recovery for an abandoned reshard coordinator: send
     ABORT for [epoch] to the source (the commit point). If the source
     already committed the epoch it answers [Ok] with the committed map
     as payload — the reshard committed, so finish the COMMIT at the
     target and adopt the map. Any other answer means the abort won (or
     the migration never started) and the freeze is rolled back. Safe to
     race with the original coordinator: both run through the source's
     log, and the epoch tombstones make the loser's requests
     idempotent. *)
  let recover_reshard t cl ~epoch ~source ~target ~on_done =
    if epoch >= t.reshard_floor then t.reshard_floor <- epoch + 1;
    let finish r =
      release_handles t cl;
      on_done r
    in
    let dispatch_probe _g (reply : reply) =
      if reply.status = Ok && reply.payload <> "" then begin
        (match Partition.decode reply.payload with
        | m -> if Partition.epoch m > Partition.epoch t.part then t.part <- m
        | exception _ -> ());
        borrow_handles t cl (fun _g (_ : reply) -> finish R_committed);
        must_submit ~what:"reshard-recover-commit"
          (submit_reshard t cl ~shard:target (Reshard_commit epoch)
             ~payload:reply.payload)
      end
      else finish (R_aborted "abort won")
    in
    borrow_handles t cl dispatch_probe;
    must_submit ~what:"reshard-recover-probe"
      (submit_reshard t cl ~shard:source (Reshard_abort epoch) ~payload:"")

  (* ---------------------------------------------------------------- *)
  (* Failure control: per-group delegation. *)

  let crash_replica t ~shard i = Group.crash_replica t.groups.(shard) i
  let recover_replica t ~shard i = Group.recover_replica t.groups.(shard) i
  let replica_up t ~shard i = Group.replica_up t.groups.(shard) i

  (* ---------------------------------------------------------------- *)
  (* Running *)

  let run_until t horizon = Engine.run ~until:horizon t.eng

  let await_leaders ?max_wait t =
    let leaders = Array.map (fun g -> Group.await_leader ?max_wait g) t.groups in
    if Array.for_all Option.is_some leaders then
      Some (Array.map Option.get leaders)
    else None

  (* ---------------------------------------------------------------- *)
  (* Aggregate closed-loop workload: all logical clients start at the
     same instant and each keeps exactly one request outstanding; the
     router spreads them across groups, so k disjoint keyspaces drive k
     depth-one pipelines concurrently. *)

  type record = {
    rec_client : int;
    rec_shard : int;  (** group that served the request *)
    rec_seq : int;
    rec_rtype : rtype;
    rec_status : status;
    rec_latency : float;
  }

  type results = {
    records : record list;
    started_at : float;
    finished_at : float;
    total_completed : int;
  }

  let latencies ?(filter = fun _ -> true) results =
    List.filter filter results.records
    |> List.map (fun r -> r.rec_latency)
    |> Array.of_list

  let throughput_rps results =
    let dur_ms = results.finished_at -. results.started_at in
    if dur_ms <= 0.0 then 0.0
    else Float.of_int results.total_completed /. dur_ms *. 1000.0

  let rtype_of_item : S.op Runtime.item -> rtype = function
    | Runtime.Do op -> (
      match S.classify op with `Read -> Read | `Write -> Write)
    | Runtime.Unreplicated _ -> Original
    | Runtime.In_txn (tid, _) -> Txn_op tid
    | Runtime.Commit_txn { tid; _ } -> Txn_commit tid
    | Runtime.Abort_txn tid -> Txn_abort tid

  let run_closed_loop ?(max_sim_ms = 600_000.0) ~clients ~requests_per_client
      ~gen t =
    (match await_leaders t with
    | Some _ -> ()
    | None -> failwith "Multi.run_closed_loop: a group failed to elect a leader");
    let records = ref [] in
    let total = ref 0 in
    let started_at = now t in
    let finished_at = ref started_at in
    let expected = clients * requests_per_client in
    let machine_share = t.scenario.clients_per_machine clients in
    (* Unlike the single-group driver we do not rescale replica CPU
       costs with the client count: the O(connections) server-load model
       was calibrated for one group serving every client, and here each
       group serves only the clients whose keys it owns. *)
    for c = 0 to clients - 1 do
      let next = gen ~client:c in
      let remaining = ref requests_per_client in
      let sent_at = ref 0.0 in
      let sent_rtype = ref Read in
      let sent_shard = ref 0 in
      let completions = ref 0 in
      let client_ref = ref None in
      let submit_next () =
        match next () with
        | None -> ()
        | Some it -> (
          match !client_ref with
          | None -> ()
          | Some cl -> (
            sent_at := now t;
            sent_rtype := rtype_of_item it;
            match try_submit_item t cl it with
            | Ok s -> sent_shard := s
            | Error e ->
              failwith
                (Format.asprintf "Multi.run_closed_loop: client %d: %a" c
                   pp_submit_error e)))
      in
      let on_reply (reply : reply) =
        incr completions;
        incr total;
        finished_at := now t;
        records :=
          {
            rec_client = c;
            rec_shard = !sent_shard;
            rec_seq = !completions;
            rec_rtype = !sent_rtype;
            rec_status = reply.status;
            rec_latency = now t -. !sent_at;
          }
          :: !records;
        decr remaining;
        if !remaining > 0 then submit_next ()
      in
      let id = t.next_client_id in
      t.next_client_id <- t.next_client_id + 1;
      let cl = add_client t ~id ~machine_share ~on_reply () in
      client_ref := Some cl;
      ignore
        (Engine.schedule t.eng ~delay:0.0 (fun () ->
             if !remaining > 0 then submit_next ()))
    done;
    let deadline = started_at +. max_sim_ms in
    let rec drive () =
      if !total >= expected then ()
      else if now t > deadline then
        failwith
          (Printf.sprintf "Multi.run_closed_loop: stalled at %d/%d completions"
             !total expected)
      else if Engine.step t.eng then drive ()
      else ()
    in
    drive ();
    {
      records = List.rev !records;
      started_at;
      finished_at = !finished_at;
      total_completed = !total;
    }
end
