(** The partition map: abstract footprint keys (see
    {!Grid_paxos.Service_intf.S.footprint}) to shard ids.

    Ownership depends only on the key and the map itself — never on a
    group's replica count or timeouts — so reconfiguring a group cannot
    silently migrate keys. The default hash is 64-bit FNV-1a, stable
    across OCaml versions and architectures.

    Maps are {e versioned}: every map carries a monotone {!epoch}, and
    range maps carry an explicit interval→owner assignment so
    {!split}/{!merge} can move a key range to an existing group without
    renumbering anything (DESIGN.md §17). Epoch-0 maps assign interval
    [i] to group [i] — the seed behaviour. *)

type spec =
  | Hash  (** FNV-1a over the key bytes, modulo the shard count *)
  | Range of string list
      (** strictly increasing cut points; interval [i] spans
          [\[cut_(i-1), cut_i)] under [String.compare] *)

type t

val create : ?spec:spec -> shards:int -> unit -> t
(** Epoch-0 map: interval [i] owned by group [i]. Raises
    [Invalid_argument] if [shards < 1] or the range cuts are
    malformed. *)

val shards : t -> int
(** The group count — fixed for the lifetime of the cluster; resharding
    moves ranges between existing groups. *)

val epoch : t -> int
val owner_of_key : t -> string -> int

val restamp : t -> epoch:int -> t
(** The same assignment at a later epoch. An epoch is consumed at the
    source group the moment an ABORT decision commits — its tombstone
    refuses every later instance of that epoch — so a retried
    split/merge must skip past burned epochs ({!Multi.Make.split_shard}
    does this automatically). Raises [Invalid_argument] unless [epoch]
    exceeds the current one. *)

val intervals : t -> (string option * string option * int) list
(** Range maps: [(lo, hi, owner)] per interval, [None] bounds open.
    Empty for hash maps. *)

(** {1 Reshard transitions}

    Both are realizations of one primitive — a contiguous key range
    changes owner and the epoch advances — differing only in how the
    successor cut list is computed. *)

type move = {
  mv_lo : string;
  mv_hi : string option;  (** exclusive; [None] = top of keyspace *)
  source : int;  (** group the range leaves *)
  target : int;  (** group the range joins *)
}

type reshard_error =
  [ `Hash_map  (** hash maps have no contiguous ranges to move *)
  | `Bad_cut of string
  | `Bad_target of string ]

val pp_reshard_error : Format.formatter -> reshard_error -> unit

val split : t -> cut:string -> target:int -> (t * move, reshard_error) result
(** Insert [cut] into the interval that contains it and hand the right
    half [\[cut, hi)] to [target]. Fails if the map is hash-partitioned,
    [cut] is already a cut point, [target] is out of range, or [target]
    already owns the range. *)

val merge : t -> cut:string -> (t * move option, reshard_error) result
(** Remove the existing cut point [cut]; the left interval's owner
    absorbs the right interval. The move is [None] when both sides
    already share an owner (epoch still advances). *)

(** {1 Map codec}

    The encoded map is the payload of the reshard COMMIT consensus
    instance and of [Wrong_epoch] client redirects. *)

val encode : t -> string
val decode : string -> t
(** Raises [Grid_codec.Wire.Decode_error] on malformed input. *)

type placement =
  | Single of int  (** every key owned by this shard *)
  | Any  (** empty footprint: the op conflicts with nothing anywhere *)

type error =
  [ `All_shards  (** a ["*"] footprint: the op touches every shard *)
  | `Cross_shard of (string * int) list
    (** keys owned by more than one shard, with each key's owner *) ]

val pp_error : Format.formatter -> error -> unit

val place : t -> string list -> (placement, error) result
(** Resolve a footprint to its owning shard. Cross-shard operations are
    rejected — the single-shard restriction this layer imposes (see
    DESIGN.md §11). *)
