(** The partition map: abstract footprint keys (see
    {!Grid_paxos.Service_intf.S.footprint}) to shard ids.

    Ownership depends only on the key and the shard count — never on a
    group's replica count or timeouts — so reconfiguring a group cannot
    silently migrate keys. The default hash is 64-bit FNV-1a, stable
    across OCaml versions and architectures. *)

type spec =
  | Hash  (** FNV-1a over the key bytes, modulo the shard count *)
  | Range of string list
      (** [k-1] strictly increasing cut points; shard [i] owns keys in
          [\[cut_(i-1), cut_i)] under [String.compare] *)

type t

val create : ?spec:spec -> shards:int -> unit -> t
(** Raises [Invalid_argument] if [shards < 1] or the range cuts are
    malformed. *)

val shards : t -> int
val owner_of_key : t -> string -> int

type placement =
  | Single of int  (** every key owned by this shard *)
  | Any  (** empty footprint: the op conflicts with nothing anywhere *)

type error =
  [ `All_shards  (** a ["*"] footprint: the op touches every shard *)
  | `Cross_shard of (string * int) list
    (** keys owned by more than one shard, with each key's owner *) ]

val pp_error : Format.formatter -> error -> unit

val place : t -> string list -> (placement, error) result
(** Resolve a footprint to its owning shard. Cross-shard operations are
    rejected — the single-shard restriction this layer imposes (see
    DESIGN.md §11). *)
