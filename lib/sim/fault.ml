type event =
  | Crash of int
  | Recover of int
  | Partition of int list * int list
  | Heal
  | Set_drop_rate of float
  | Duplicate_rate of float
  | Reorder_rate of float
  | Delay_spike of { rate : float; magnitude_ms : float }
  | Clock_drift of { node : int; offset_ms : float }

type entry = { at : float; event : event }

let apply net = function
  | Crash id -> Network.crash net id
  | Recover id -> Network.recover net id
  | Partition (a, b) -> Network.partition net a b
  | Heal -> Network.heal net
  | Set_drop_rate p -> Network.set_drop_rate net p
  | Duplicate_rate p -> Network.set_duplicate_rate net p
  | Reorder_rate p -> Network.set_reorder_rate net p
  | Delay_spike { rate; magnitude_ms } ->
    Network.set_delay_spike net ~rate ~magnitude_ms
  | Clock_drift { node; offset_ms } -> Network.set_clock_offset net node offset_ms

let install net entries =
  let eng = Network.engine net in
  List.iter
    (fun { at; event } ->
      ignore (Engine.schedule_at eng ~time:at (fun () -> apply net event)))
    entries

let periodic_crash_recover ~node ~period ~downtime ~until =
  let rec go at acc =
    if at > until then List.rev acc
    else
      go (at +. period)
        ({ at = at +. downtime; event = Recover node }
        :: { at; event = Crash node }
        :: acc)
  in
  go period []

let pp_event ppf = function
  | Crash id -> Format.fprintf ppf "crash(%d)" id
  | Recover id -> Format.fprintf ppf "recover(%d)" id
  | Partition (a, b) ->
    let show l = String.concat "," (List.map string_of_int l) in
    Format.fprintf ppf "partition([%s]|[%s])" (show a) (show b)
  | Heal -> Format.fprintf ppf "heal"
  | Set_drop_rate p -> Format.fprintf ppf "drop_rate(%.3f)" p
  | Duplicate_rate p -> Format.fprintf ppf "duplicate_rate(%.3f)" p
  | Reorder_rate p -> Format.fprintf ppf "reorder_rate(%.3f)" p
  | Delay_spike { rate; magnitude_ms } ->
    Format.fprintf ppf "delay_spike(%.3f,+%.1fms)" rate magnitude_ms
  | Clock_drift { node; offset_ms } ->
    Format.fprintf ppf "clock_drift(%d,%+.2fms)" node offset_ms
