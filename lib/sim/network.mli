(** Simulated message-passing network.

    Nodes are integers in a single id space (the runtime assigns replicas
    and clients disjoint ranges). The network models:

    - {b link latency}: a default {!Latency.t} plus per-directed-link
      overrides; per-(src,dst) FIFO delivery is enforced (delivery times
      are clamped to be non-decreasing per pair), matching the paper's TCP
      channels;
    - {b node CPU}: each node is a serial processor with a per-message
      send cost and receive cost (milliseconds). Sends occupy the sender
      before the message departs and receives occupy the receiver before
      its handler runs, which is what makes closed-loop throughput
      saturate like Figures 5–6;
    - {b failures}: crashed nodes neither send nor receive (in-flight
      messages to a node that is down at delivery time are dropped);
      partitions drop messages crossing the cut; a uniform drop rate can
      inject message loss.

    The paper assumes reliable channels between correct processes;
    retransmission on top of loss is the job of the protocol layer. *)

type 'msg t

val create : Engine.t -> Grid_util.Rng.t -> 'msg t
(** The RNG drives latency sampling and message drops; split it from the
    experiment seed. *)

val engine : 'msg t -> Engine.t

(** {1 Topology} *)

val add_node :
  'msg t ->
  id:int ->
  ?recv_cost:float ->
  ?send_cost:float ->
  (src:int -> 'msg -> unit) ->
  unit
(** Register a node and its message handler. Costs default to [0.]. *)

val set_handler : 'msg t -> id:int -> (src:int -> 'msg -> unit) -> unit
(** Replace a node's handler (used when a recovered replica rebuilds its
    state machine). *)

val set_default_latency : _ t -> Latency.t -> unit
val set_link : _ t -> src:int -> dst:int -> Latency.t -> unit
val set_link_sym : _ t -> int -> int -> Latency.t -> unit
(** Set both directions of a link. *)

val latency_of_link : _ t -> src:int -> dst:int -> Latency.t

(** {1 Messaging} *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** No-op (counted as dropped) if the sender is down, the destination is
    unknown, the pair is partitioned, or the drop die comes up. *)

val broadcast : 'msg t -> src:int -> dsts:int list -> 'msg -> unit

(** {1 Failures} *)

val crash : _ t -> int -> unit
val recover : _ t -> int -> unit
val is_up : _ t -> int -> bool

val set_clock_offset : _ t -> int -> float -> unit
(** Skew a node's local clock: the runtime reports [engine time + offset]
    (ms) as that node's [now]. Timers are unaffected (they measure
    durations); only time {e readings} — e.g. the leader-lease arithmetic
    — see the offset. *)

val clock_offset : _ t -> int -> float
(** Current clock offset of a node (0 unless drifted). *)

val partition : _ t -> int list -> int list -> unit
(** Cut every link between the two groups (both directions). *)

val heal : _ t -> unit
(** Remove all partitions. *)

val set_drop_rate : _ t -> float -> unit
(** Uniform probability in [\[0,1\]] of silently dropping any message. *)

val set_duplicate_rate : _ t -> float -> unit
(** Probability in [\[0,1\]] that a delivered message is also delivered a
    second time. The duplicate travels on an independently sampled path
    and ignores the per-pair FIFO clamp, so it can overtake the original
    — a retransmission after a spurious timeout. Exercises the protocol's
    request-dedup and stale-message paths. *)

val set_reorder_rate : _ t -> float -> unit
(** Probability in [\[0,1\]] that a message escapes the per-pair FIFO
    clamp: its delivery time is neither pushed back to the channel's last
    delivery nor recorded, so it can arrive before messages sent earlier
    on the same directed pair (and later traffic can overtake it). *)

val set_delay_spike : _ t -> rate:float -> magnitude_ms:float -> unit
(** With probability [rate], add [magnitude_ms] to a message's sampled
    link latency — a transient congestion spike on one hop. Spiked
    messages still respect FIFO clamping, so a spike delays everything
    behind it on that channel, which is what provokes spurious suspicion
    timeouts and duplicate leader work. *)

val set_bandwidth : _ t -> float -> unit
(** Link bandwidth in bytes per millisecond; adds [size/bandwidth]
    transmission time to every message once a sizer is installed.
    Default: infinite (size-free links). *)

val set_sizer : 'msg t -> ('msg -> int) -> unit
(** Install the function estimating a message's wire size. *)

val scale_node_costs : _ t -> int -> factor:float -> unit
(** Multiply a node's per-message CPU costs (connection-count load
    modelling). *)

(** {1 Introspection} *)

type stats = {
  sent : int;
  delivered : int;  (** physical deliveries, duplicates included *)
  dropped : int;
  duplicated : int;  (** extra copies injected by the duplicate dice *)
  reordered : int;  (** messages that bypassed the FIFO clamp *)
  delayed : int;  (** messages hit by a delay spike *)
}

val stats : _ t -> stats
