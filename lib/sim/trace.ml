module Span = Grid_obs.Span

(* A trace is now a thin view over the structured span recorder
   ([Grid_obs.Span.Recorder]): [record]/[recordf] append [Note] events,
   and [to_list] projects the notes back out, so pre-existing consumers
   keep working while drivers share one event stream for notes, spans
   and message events. *)
type t = Span.Recorder.t

let create ?(capacity = 4096) ~enabled () = Span.Recorder.create ~capacity ~enabled ()
let of_recorder r = r
let recorder t = t
let enabled = Span.Recorder.enabled
let record t ~time ~actor msg = Span.Recorder.note t ~time ~actor msg
let recordf t ~time ~actor fmt = Span.Recorder.notef t ~time ~actor fmt

let to_list t =
  List.filter_map
    (fun (e : Span.event) ->
      match e.body with Note msg -> Some (e.time, e.actor, msg) | _ -> None)
    (Span.Recorder.events t)

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "%a@." Span.pp_event e)
    (Span.Recorder.events t)

let clear = Span.Recorder.clear
