module Rng = Grid_util.Rng

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  reordered : int;
  delayed : int;
}

type 'msg node = {
  mutable handler : src:int -> 'msg -> unit;
  mutable recv_cost : float;
  mutable send_cost : float;
  mutable busy_until : float; (* serial-CPU timeline *)
  mutable up : bool;
  mutable clock_offset : float; (* local clock = engine time + offset (ms) *)
}

type 'msg t = {
  eng : Engine.t;
  rng : Rng.t;
  nodes : (int, 'msg node) Hashtbl.t;
  links : (int * int, Latency.t) Hashtbl.t;
  mutable default_latency : Latency.t;
  last_delivery : (int * int, float) Hashtbl.t; (* FIFO clamp per pair *)
  cuts : (int * int, unit) Hashtbl.t;
  mutable drop_rate : float;
  mutable duplicate_rate : float;
  mutable reorder_rate : float;
  mutable spike_rate : float;
  mutable spike_magnitude : float; (* extra latency (ms) on a spiked hop *)
  mutable bandwidth : float;  (* bytes/ms; infinity = size-free links *)
  mutable sizer : ('msg -> int) option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable delayed : int;
}

let create eng rng =
  {
    eng;
    rng;
    nodes = Hashtbl.create 32;
    links = Hashtbl.create 64;
    default_latency = Latency.Constant 0.1;
    last_delivery = Hashtbl.create 64;
    cuts = Hashtbl.create 16;
    drop_rate = 0.0;
    duplicate_rate = 0.0;
    reorder_rate = 0.0;
    spike_rate = 0.0;
    spike_magnitude = 0.0;
    bandwidth = infinity;
    sizer = None;
    sent = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    delayed = 0;
  }

let engine t = t.eng

let add_node t ~id ?(recv_cost = 0.0) ?(send_cost = 0.0) handler =
  if Hashtbl.mem t.nodes id then invalid_arg "Network.add_node: duplicate id";
  Hashtbl.replace t.nodes id
    { handler; recv_cost; send_cost; busy_until = 0.0; up = true;
      clock_offset = 0.0 }

let get_node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Network: unknown node %d" id)

let set_handler t ~id handler = (get_node t id).handler <- handler
let set_default_latency t m = t.default_latency <- m
let set_link t ~src ~dst m = Hashtbl.replace t.links (src, dst) m

let set_link_sym t a b m =
  set_link t ~src:a ~dst:b m;
  set_link t ~src:b ~dst:a m

let latency_of_link t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some m -> m
  | None -> t.default_latency

let partitioned t src dst =
  Hashtbl.mem t.cuts (src, dst)

let drop t = t.dropped <- t.dropped + 1

(* Occupy [node]'s serial CPU for [cost] starting no earlier than [at];
   returns the completion time. *)
let occupy node ~at ~cost =
  let start = if node.busy_until > at then node.busy_until else at in
  node.busy_until <- start +. cost;
  node.busy_until

(* Schedule one physical delivery of [msg] at [arrival]; the receiver's
   CPU cost is paid (serially) at arrival time. *)
let deliver_copy t ~src ~arrival receiver msg =
  ignore
    (Engine.schedule_at t.eng ~time:arrival (fun () ->
         if receiver.up then begin
           let done_at =
             occupy receiver ~at:(Engine.now t.eng) ~cost:receiver.recv_cost
           in
           if receiver.recv_cost <= 0.0 then begin
             t.delivered <- t.delivered + 1;
             receiver.handler ~src msg
           end
           else
             ignore
               (Engine.schedule_at t.eng ~time:done_at (fun () ->
                    if receiver.up then begin
                      t.delivered <- t.delivered + 1;
                      receiver.handler ~src msg
                    end
                    else drop t))
         end
         else drop t))

(* One hop's wire time: sampled link latency, an optional nemesis delay
   spike, and size/bandwidth transmission time. *)
let hop_time t ~src ~dst msg =
  let latency =
    if src = dst then 0.0 else Latency.sample (latency_of_link t ~src ~dst) t.rng
  in
  let latency =
    if t.spike_rate > 0.0 && Rng.float t.rng 1.0 < t.spike_rate then begin
      t.delayed <- t.delayed + 1;
      latency +. t.spike_magnitude
    end
    else latency
  in
  let transmission =
    match t.sizer with
    | Some size when t.bandwidth < infinity ->
      Float.of_int (size msg) /. t.bandwidth
    | _ -> 0.0
  in
  latency +. transmission

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  let sender = get_node t src in
  match Hashtbl.find_opt t.nodes dst with
  | None -> drop t
  | Some _ when not sender.up -> drop t
  | Some receiver ->
    if partitioned t src dst then drop t
    else if t.drop_rate > 0.0 && Rng.float t.rng 1.0 < t.drop_rate then drop t
    else begin
      let now = Engine.now t.eng in
      let departure = occupy sender ~at:now ~cost:sender.send_cost in
      let arrival = departure +. hop_time t ~src ~dst msg in
      (* TCP channels deliver in order: clamp to the previous delivery
         time on this directed pair — unless the reorder dice fire, in
         which case this message races ahead of (or lags behind) the
         channel and the clamp is neither applied nor advanced. *)
      let reorder =
        t.reorder_rate > 0.0 && Rng.float t.rng 1.0 < t.reorder_rate
      in
      let arrival =
        if reorder then begin
          t.reordered <- t.reordered + 1;
          arrival
        end
        else begin
          let arrival =
            match Hashtbl.find_opt t.last_delivery (src, dst) with
            | Some last when last > arrival -> last
            | _ -> arrival
          in
          Hashtbl.replace t.last_delivery (src, dst) arrival;
          arrival
        end
      in
      deliver_copy t ~src ~arrival receiver msg;
      (* Duplication: a retransmission races the original on its own
         independently sampled path, unconstrained by the FIFO clamp. *)
      if t.duplicate_rate > 0.0 && Rng.float t.rng 1.0 < t.duplicate_rate
      then begin
        t.duplicated <- t.duplicated + 1;
        let dup_arrival = departure +. hop_time t ~src ~dst msg in
        deliver_copy t ~src ~arrival:dup_arrival receiver msg
      end
    end

let broadcast t ~src ~dsts msg = List.iter (fun dst -> send t ~src ~dst msg) dsts

let crash t id =
  let n = get_node t id in
  n.up <- false

let recover t id =
  let n = get_node t id in
  n.up <- true;
  (* A recovered process starts with an idle CPU. *)
  n.busy_until <- Engine.now t.eng

let is_up t id = (get_node t id).up
let set_clock_offset t id off = (get_node t id).clock_offset <- off
let clock_offset t id = (get_node t id).clock_offset

let partition t group_a group_b =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Hashtbl.replace t.cuts (a, b) ();
          Hashtbl.replace t.cuts (b, a) ())
        group_b)
    group_a

let heal t = Hashtbl.reset t.cuts

let clamp01 p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p
let set_drop_rate t p = t.drop_rate <- clamp01 p
let set_duplicate_rate t p = t.duplicate_rate <- clamp01 p
let set_reorder_rate t p = t.reorder_rate <- clamp01 p

let set_delay_spike t ~rate ~magnitude_ms =
  t.spike_rate <- clamp01 rate;
  t.spike_magnitude <- (if magnitude_ms < 0.0 then 0.0 else magnitude_ms)

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    duplicated = t.duplicated;
    reordered = t.reordered;
    delayed = t.delayed;
  }

let set_bandwidth t bytes_per_ms = t.bandwidth <- bytes_per_ms
let set_sizer t f = t.sizer <- Some f

let scale_node_costs t id ~factor =
  let n = get_node t id in
  n.recv_cost <- n.recv_cost *. factor;
  n.send_cost <- n.send_cost *. factor
