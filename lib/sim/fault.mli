(** Declarative fault-injection schedules.

    A schedule is a list of timed events applied to a {!Network.t}; it is
    installed once and the engine executes it during the run. Used by the
    failover example, the leader-switch ablation, and the recovery
    integration tests. *)

type event =
  | Crash of int  (** node id *)
  | Recover of int
  | Partition of int list * int list
  | Heal
  | Set_drop_rate of float
  | Duplicate_rate of float
      (** see {!Network.set_duplicate_rate}: retransmission-style extra
          copies that may overtake the original *)
  | Reorder_rate of float
      (** see {!Network.set_reorder_rate}: per-message escapes from the
          per-pair FIFO delivery clamp *)
  | Delay_spike of { rate : float; magnitude_ms : float }
      (** see {!Network.set_delay_spike}: transient per-hop congestion *)
  | Clock_drift of { node : int; offset_ms : float }
      (** see {!Network.set_clock_offset}: the node's local clock becomes
          engine time + [offset_ms]; attacks the leader-lease skew bound *)

type entry = { at : float; event : event }

val install : 'msg Network.t -> entry list -> unit
(** Schedule every entry on the network's engine. Entries may be given in
    any order. *)

val periodic_crash_recover :
  node:int -> period:float -> downtime:float -> until:float -> entry list
(** Crash [node] every [period] ms, recovering it [downtime] ms later,
    from time [period] until [until]. Used to force leader switches. *)

val pp_event : Format.formatter -> event -> unit
