(** Bounded event trace for debugging simulation runs.

    Since the observability layer landed, a trace is a thin compatibility
    view over a {!Grid_obs.Span.Recorder}: {!record} appends [Note]
    events to the shared stream, {!to_list} projects them back out, and
    {!recorder} exposes the underlying recorder so drivers can also emit
    structured lifecycle spans and message events into the same buffer.
    Disabled traces still cost one branch per record. *)

type t

val create : ?capacity:int -> enabled:bool -> unit -> t
(** Default capacity: 4096 entries (oldest evicted first). *)

val of_recorder : Grid_obs.Span.Recorder.t -> t
val recorder : t -> Grid_obs.Span.Recorder.t
(** The underlying structured-event recorder ([of_recorder]/[recorder]
    are inverse views, not copies). *)

val enabled : t -> bool
val record : t -> time:float -> actor:string -> string -> unit
(** [record t ~time ~actor msg]; cheap no-op when disabled. *)

val recordf :
  t -> time:float -> actor:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are not evaluated when the
    trace is disabled. *)

val to_list : t -> (float * string * string) list
(** The [Note] events only, oldest first (the historical trace view). *)

val pp : Format.formatter -> t -> unit
(** Prints every event in the underlying recorder — notes, lifecycle
    spans and message events. *)

val clear : t -> unit
