(** A lease manager for grid resources — reservations in the style of the
    Storage Resource Broker or Globus resource co-allocation.

    Leases make clock nondeterminism unavoidable: whether an [Acquire]
    succeeds depends on whether the {e previous} lease has expired {e at
    the moment the service examines it}, i.e. on the local clock of the
    machine that runs the request — the same class of nondeterminism as
    the grid scheduler's examination race (§2). Replicas evaluating the
    same request a few milliseconds apart would disagree.

    Under the paper's protocol only the leader evaluates expiry (against
    its clock, via [apply ~now]) and the decision — including the grant
    deadline — ships in the witness, so every replica records the exact
    same lease table. *)

module Wire = Grid_codec.Wire
module Smap = Map.Make (String)

let name = "lease_manager"

type lease = { holder : int; until : float (* leader-clock ms *) }

type state = { leases : lease Smap.t; grants : int }

type op =
  | Acquire of { resource : string; holder : int; ttl_ms : float }
  | Renew of { resource : string; holder : int; ttl_ms : float }
  | Release of { resource : string; holder : int }
  | Holder_of of string  (** read *)
  | Active_count  (** read: leases unexpired at examination time *)

type result =
  | Granted of { until : float }
  | Denied of { holder : int; until : float }  (** current unexpired lease *)
  | Renewed of { until : float }
  | Released
  | Not_holder
  | Holder of (int * float) option
  | Count of int

let initial () = { leases = Smap.empty; grants = 0 }

let classify = function
  | Acquire _ | Renew _ | Release _ -> `Write
  | Holder_of _ | Active_count -> `Read

type outcome = { state : state; result : result; witness : string option }

let unexpired ~now (l : lease) = l.until > now

(* Witness payload: the decision tag plus the deadline the leader chose.
   Replaying the witness reproduces the identical transition without
   consulting the local clock. *)
let encode_witness e_tag until =
  Wire.encode (fun e ->
      Wire.Encoder.uint e e_tag;
      Wire.Encoder.float e until)

let decode_witness w =
  Wire.decode w (fun d ->
      let tag = Wire.Decoder.uint d in
      let until = Wire.Decoder.float d in
      (tag, until))

let grant state resource holder until =
  {
    leases = Smap.add resource { holder; until } state.leases;
    grants = state.grants + 1;
  }

let apply ~rng:_ ~now state op =
  match op with
  | Acquire { resource; holder; ttl_ms } -> (
    match Smap.find_opt resource state.leases with
    | Some l when unexpired ~now l && l.holder <> holder ->
      { state; result = Denied { holder = l.holder; until = l.until }; witness = Some (encode_witness 0 0.0) }
    | _ ->
      (* Free, expired-by-our-clock, or re-acquired by the same holder. *)
      let until = now +. ttl_ms in
      { state = grant state resource holder until;
        result = Granted { until };
        witness = Some (encode_witness 1 until) })
  | Renew { resource; holder; ttl_ms } -> (
    match Smap.find_opt resource state.leases with
    | Some l when l.holder = holder && unexpired ~now l ->
      let until = now +. ttl_ms in
      { state = { state with leases = Smap.add resource { holder; until } state.leases };
        result = Renewed { until };
        witness = Some (encode_witness 1 until) }
    | _ -> { state; result = Not_holder; witness = Some (encode_witness 0 0.0) })
  | Release { resource; holder } -> (
    match Smap.find_opt resource state.leases with
    | Some l when l.holder = holder ->
      { state = { state with leases = Smap.remove resource state.leases };
        result = Released;
        witness = Some (encode_witness 1 0.0) }
    | _ -> { state; result = Not_holder; witness = Some (encode_witness 0 0.0) })
  | Holder_of resource ->
    let holder =
      match Smap.find_opt resource state.leases with
      | Some l when unexpired ~now l -> Some (l.holder, l.until)
      | _ -> None
    in
    { state; result = Holder holder; witness = None }
  | Active_count ->
    let n = Smap.fold (fun _ l acc -> if unexpired ~now l then acc + 1 else acc) state.leases 0 in
    { state; result = Count n; witness = None }

let replay state op ~witness =
  let tag, until = decode_witness witness in
  match op with
  | Acquire { resource; holder; _ } ->
    if tag = 1 then (grant state resource holder until, Granted { until })
    else begin
      match Smap.find_opt resource state.leases with
      | Some l -> (state, Denied { holder = l.holder; until = l.until })
      | None -> (state, Denied { holder = -1; until = 0.0 })
    end
  | Renew { resource; holder; _ } ->
    if tag = 1 then
      ( { state with leases = Smap.add resource { holder; until } state.leases },
        Renewed { until } )
    else (state, Not_holder)
  | Release { resource; _ } ->
    if tag = 1 then
      ({ state with leases = Smap.remove resource state.leases }, Released)
    else (state, Not_holder)
  | Holder_of _ | Active_count ->
    (* Reads carry no witness; replay is never invoked for them, but be
       total anyway. *)
    (state, Count 0)

let footprint = function
  | Acquire { resource; _ } | Renew { resource; _ } | Release { resource; _ } ->
    [ "lease/" ^ resource ]
  | Holder_of _ | Active_count -> []

(* --- codecs --- *)

let encode_op op =
  Wire.encode (fun e ->
      match op with
      | Acquire { resource; holder; ttl_ms } ->
        Wire.Encoder.uint e 0;
        Wire.Encoder.string e resource;
        Wire.Encoder.uint e holder;
        Wire.Encoder.float e ttl_ms
      | Renew { resource; holder; ttl_ms } ->
        Wire.Encoder.uint e 1;
        Wire.Encoder.string e resource;
        Wire.Encoder.uint e holder;
        Wire.Encoder.float e ttl_ms
      | Release { resource; holder } ->
        Wire.Encoder.uint e 2;
        Wire.Encoder.string e resource;
        Wire.Encoder.uint e holder
      | Holder_of resource ->
        Wire.Encoder.uint e 3;
        Wire.Encoder.string e resource
      | Active_count -> Wire.Encoder.uint e 4)

let decode_op s =
  Wire.decode s (fun d ->
      match Wire.Decoder.uint d with
      | 0 ->
        let resource = Wire.Decoder.string d in
        let holder = Wire.Decoder.uint d in
        let ttl_ms = Wire.Decoder.float d in
        Acquire { resource; holder; ttl_ms }
      | 1 ->
        let resource = Wire.Decoder.string d in
        let holder = Wire.Decoder.uint d in
        let ttl_ms = Wire.Decoder.float d in
        Renew { resource; holder; ttl_ms }
      | 2 ->
        let resource = Wire.Decoder.string d in
        let holder = Wire.Decoder.uint d in
        Release { resource; holder }
      | 3 -> Holder_of (Wire.Decoder.string d)
      | 4 -> Active_count
      | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "lease op %d" n }))

let encode_result r =
  Wire.encode (fun e ->
      match r with
      | Granted { until } ->
        Wire.Encoder.uint e 0;
        Wire.Encoder.float e until
      | Denied { holder; until } ->
        Wire.Encoder.uint e 1;
        Wire.Encoder.int e holder;
        Wire.Encoder.float e until
      | Renewed { until } ->
        Wire.Encoder.uint e 2;
        Wire.Encoder.float e until
      | Released -> Wire.Encoder.uint e 3
      | Not_holder -> Wire.Encoder.uint e 4
      | Holder h ->
        Wire.Encoder.uint e 5;
        Wire.Encoder.option e
          (fun (holder, until) ->
            Wire.Encoder.uint e holder;
            Wire.Encoder.float e until)
          h
      | Count n ->
        Wire.Encoder.uint e 6;
        Wire.Encoder.uint e n)

let decode_result s =
  Wire.decode s (fun d ->
      match Wire.Decoder.uint d with
      | 0 -> Granted { until = Wire.Decoder.float d }
      | 1 ->
        let holder = Wire.Decoder.int d in
        let until = Wire.Decoder.float d in
        Denied { holder; until }
      | 2 -> Renewed { until = Wire.Decoder.float d }
      | 3 -> Released
      | 4 -> Not_holder
      | 5 ->
        Holder
          (Wire.Decoder.option d (fun d ->
               let holder = Wire.Decoder.uint d in
               let until = Wire.Decoder.float d in
               (holder, until)))
      | 6 -> Count (Wire.Decoder.uint d)
      | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "lease result %d" n }))

let encode_state st =
  Wire.encode (fun e ->
      Wire.Encoder.uint e st.grants;
      Wire.Encoder.list e
        (fun (resource, l) ->
          Wire.Encoder.string e resource;
          Wire.Encoder.uint e l.holder;
          Wire.Encoder.float e l.until)
        (Smap.bindings st.leases))

let decode_state s =
  Wire.decode s (fun d ->
      let grants = Wire.Decoder.uint d in
      let leases =
        Wire.Decoder.list d (fun d ->
            let resource = Wire.Decoder.string d in
            let holder = Wire.Decoder.uint d in
            let until = Wire.Decoder.float d in
            (resource, { holder; until }))
      in
      { grants; leases = Smap.of_seq (List.to_seq leases) })

let diff ~old_state st =
  (* Changed/removed leases only. *)
  let changed =
    Smap.fold
      (fun k l acc ->
        match Smap.find_opt k old_state.leases with
        | Some old_l when old_l = l -> acc
        | _ -> (k, l) :: acc)
      st.leases []
  in
  let removed =
    Smap.fold
      (fun k _ acc -> if Smap.mem k st.leases then acc else k :: acc)
      old_state.leases []
  in
  Some
    (Wire.encode (fun e ->
         Wire.Encoder.uint e st.grants;
         Wire.Encoder.list e
           (fun (k, l) ->
             Wire.Encoder.string e k;
             Wire.Encoder.uint e l.holder;
             Wire.Encoder.float e l.until)
           changed;
         Wire.Encoder.list e (Wire.Encoder.string e) removed))

let patch st s =
  Wire.decode s (fun d ->
      let grants = Wire.Decoder.uint d in
      let changed =
        Wire.Decoder.list d (fun d ->
            let k = Wire.Decoder.string d in
            let holder = Wire.Decoder.uint d in
            let until = Wire.Decoder.float d in
            (k, { holder; until }))
      in
      let removed = Wire.Decoder.list d Wire.Decoder.string in
      let leases = List.fold_left (fun m (k, l) -> Smap.add k l m) st.leases changed in
      let leases = List.fold_left (fun m k -> Smap.remove k m) leases removed in
      { grants; leases })

(** Test helpers. *)

let lease_of st resource = Smap.find_opt resource st.leases
let lease_count st = Smap.cardinal st.leases

(* Range handoff (elastic resharding) is not meaningful for this
   service's keyspace; the reshard coordinator refuses to move it. *)
let export_range _ ~lo:_ ~hi:_ = None
let import_range st _ = st
