(** The distributed grid resource broker of §2: accepts requests for
    resources and selects them with a {e randomized} algorithm to balance
    load — the paper's canonical intentionally-nondeterministic service.

    Selection strategies:
    - [Uniform]: uniformly random among feasible resources;
    - [Power_of_two]: sample two candidates, pick the less loaded
      (Mitzenmacher [23]);
    - [Least_loaded]: deterministic argmin (for comparison).

    Selection prefers resources at the requester's site and spills to
    remote sites only when local capacity is insufficient, as described
    in the paper. Every random choice is recorded in the witness, so
    backup replicas replay the exact same selection. *)

module Wire = Grid_codec.Wire
module Rng = Grid_util.Rng
module Imap = Map.Make (Int)

let name = "resource_broker"

type resource = { site : int; capacity : int; used : int }

type state = { resources : resource Imap.t; selections : int (* served Select ops *) }

type strategy = Uniform | Power_of_two | Least_loaded

type op =
  | Register of { rid : int; site : int; capacity : int }
  | Release of { rid : int; units : int }
  | Select of { site : int; units : int; strategy : strategy }
  | List_free  (** read: total free units per site *)
  | Resource_info of int  (** read *)

type result =
  | Registered
  | Released
  | Selected of int list  (** chosen resource ids, one per unit *)
  | No_capacity
  | Free_units of (int * int) list  (** (site, free units) *)
  | Info of resource option
  | Error of string

let initial () = { resources = Imap.empty; selections = 0 }

let classify = function
  | Register _ | Release _ | Select _ -> `Write
  | List_free | Resource_info _ -> `Read

type outcome = { state : state; result : result; witness : string option }

let free r = r.capacity - r.used

let feasible state ~site ~local =
  Imap.fold
    (fun rid r acc ->
      if free r > 0 && (if local then r.site = site else r.site <> site) then
        (rid, r) :: acc
      else acc)
    state.resources []
  |> List.rev

(* Pick one unit's resource among [candidates] (non-empty). Returns the
   chosen id; random draws go through [rng]. *)
let pick_one rng strategy candidates =
  match strategy with
  | Uniform ->
    let arr = Array.of_list candidates in
    fst (Rng.pick rng arr)
  | Power_of_two ->
    let arr = Array.of_list candidates in
    let (id1, r1) = Rng.pick rng arr in
    let (id2, r2) = Rng.pick rng arr in
    if free r1 >= free r2 then id1 else id2
  | Least_loaded ->
    let best =
      List.fold_left
        (fun acc (id, r) ->
          match acc with
          | Some (_, best_r) when free best_r >= free r -> acc
          | _ -> Some (id, r))
        None candidates
    in
    (match best with Some (id, _) -> id | None -> assert false)

let charge state rid =
  let r = Imap.find rid state.resources in
  { state with resources = Imap.add rid { r with used = r.used + 1 } state.resources }

(* Allocate [units] one at a time, local first then remote, so the load
   picture each draw sees includes the previous draws. *)
let select rng state ~site ~units ~strategy =
  let rec go state chosen remaining =
    if remaining = 0 then Some (state, List.rev chosen)
    else begin
      let local = feasible state ~site ~local:true in
      let candidates =
        if local <> [] then local else feasible state ~site ~local:false
      in
      match candidates with
      | [] -> None
      | _ ->
        let rid = pick_one rng strategy candidates in
        go (charge state rid) (rid :: chosen) (remaining - 1)
    end
  in
  go state [] units

let encode_choice chosen = Wire.encode (fun e -> Wire.Encoder.list e (Wire.Encoder.uint e) chosen)
let decode_choice w = Wire.decode w (fun d -> Wire.Decoder.list d Wire.Decoder.uint)

let apply ~rng ~now:_ state op =
  match op with
  | Register { rid; site; capacity } ->
    if capacity < 0 then { state; result = Error "negative capacity"; witness = None }
    else
      {
        state =
          { state with resources = Imap.add rid { site; capacity; used = 0 } state.resources };
        result = Registered;
        witness = None;
      }
  | Release { rid; units } -> (
    match Imap.find_opt rid state.resources with
    | None -> { state; result = Error "unknown resource"; witness = None }
    | Some r ->
      let used = Stdlib.max 0 (r.used - units) in
      {
        state = { state with resources = Imap.add rid { r with used } state.resources };
        result = Released;
        witness = None;
      })
  | Select { site; units; strategy } -> (
    match select rng state ~site ~units ~strategy with
    | None -> { state; result = No_capacity; witness = Some (encode_choice []) }
    | Some (state', chosen) ->
      {
        state = { state' with selections = state'.selections + 1 };
        result = Selected chosen;
        witness = Some (encode_choice chosen);
      })
  | List_free ->
    let per_site = Hashtbl.create 8 in
    Imap.iter
      (fun _ r ->
        let cur = Option.value ~default:0 (Hashtbl.find_opt per_site r.site) in
        Hashtbl.replace per_site r.site (cur + free r))
      state.resources;
    let listing =
      Hashtbl.fold (fun site units acc -> (site, units) :: acc) per_site []
      |> List.sort compare
    in
    { state; result = Free_units listing; witness = None }
  | Resource_info rid ->
    { state; result = Info (Imap.find_opt rid state.resources); witness = None }

(* Replay: re-apply the recorded choices instead of drawing new ones. *)
let replay state op ~witness =
  match op with
  | Select _ -> (
    let chosen = decode_choice witness in
    match chosen with
    | [] -> (state, No_capacity)
    | _ ->
      let state' = List.fold_left charge state chosen in
      ({ state' with selections = state'.selections + 1 }, Selected chosen))
  | Register _ | Release _ | List_free | Resource_info _ ->
    let o = apply ~rng:(Rng.of_int 0) ~now:0.0 state op in
    (o.state, o.result)

let footprint = function
  | Register { rid; _ } | Release { rid; _ } -> [ Printf.sprintf "res/%d" rid ]
  | Select _ -> [ "*" ]  (* selection reads global load: conflicts broadly *)
  | List_free | Resource_info _ -> []

(* --- codecs --- *)

let strategy_tag = function Uniform -> 0 | Power_of_two -> 1 | Least_loaded -> 2

let strategy_of_tag = function
  | 0 -> Uniform
  | 1 -> Power_of_two
  | 2 -> Least_loaded
  | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "strategy %d" n })

let encode_op op =
  Wire.encode (fun e ->
      match op with
      | Register { rid; site; capacity } ->
        Wire.Encoder.uint e 0;
        Wire.Encoder.uint e rid;
        Wire.Encoder.uint e site;
        Wire.Encoder.uint e capacity
      | Release { rid; units } ->
        Wire.Encoder.uint e 1;
        Wire.Encoder.uint e rid;
        Wire.Encoder.uint e units
      | Select { site; units; strategy } ->
        Wire.Encoder.uint e 2;
        Wire.Encoder.uint e site;
        Wire.Encoder.uint e units;
        Wire.Encoder.uint e (strategy_tag strategy)
      | List_free -> Wire.Encoder.uint e 3
      | Resource_info rid ->
        Wire.Encoder.uint e 4;
        Wire.Encoder.uint e rid)

let decode_op s =
  Wire.decode s (fun d ->
      match Wire.Decoder.uint d with
      | 0 ->
        let rid = Wire.Decoder.uint d in
        let site = Wire.Decoder.uint d in
        let capacity = Wire.Decoder.uint d in
        Register { rid; site; capacity }
      | 1 ->
        let rid = Wire.Decoder.uint d in
        let units = Wire.Decoder.uint d in
        Release { rid; units }
      | 2 ->
        let site = Wire.Decoder.uint d in
        let units = Wire.Decoder.uint d in
        let strategy = strategy_of_tag (Wire.Decoder.uint d) in
        Select { site; units; strategy }
      | 3 -> List_free
      | 4 -> Resource_info (Wire.Decoder.uint d)
      | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "broker op %d" n }))

let encode_resource e r =
  Wire.Encoder.uint e r.site;
  Wire.Encoder.uint e r.capacity;
  Wire.Encoder.uint e r.used

let decode_resource d =
  let site = Wire.Decoder.uint d in
  let capacity = Wire.Decoder.uint d in
  let used = Wire.Decoder.uint d in
  { site; capacity; used }

let encode_result r =
  Wire.encode (fun e ->
      match r with
      | Registered -> Wire.Encoder.uint e 0
      | Released -> Wire.Encoder.uint e 1
      | Selected ids ->
        Wire.Encoder.uint e 2;
        Wire.Encoder.list e (Wire.Encoder.uint e) ids
      | No_capacity -> Wire.Encoder.uint e 3
      | Free_units l ->
        Wire.Encoder.uint e 4;
        Wire.Encoder.list e
          (fun (site, units) ->
            Wire.Encoder.uint e site;
            Wire.Encoder.uint e units)
          l
      | Info r ->
        Wire.Encoder.uint e 5;
        Wire.Encoder.option e (encode_resource e) r
      | Error msg ->
        Wire.Encoder.uint e 6;
        Wire.Encoder.string e msg)

let decode_result s =
  Wire.decode s (fun d ->
      match Wire.Decoder.uint d with
      | 0 -> Registered
      | 1 -> Released
      | 2 -> Selected (Wire.Decoder.list d Wire.Decoder.uint)
      | 3 -> No_capacity
      | 4 ->
        Free_units
          (Wire.Decoder.list d (fun d ->
               let site = Wire.Decoder.uint d in
               let units = Wire.Decoder.uint d in
               (site, units)))
      | 5 -> Info (Wire.Decoder.option d decode_resource)
      | 6 -> Error (Wire.Decoder.string d)
      | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "broker result %d" n }))

let encode_state st =
  Wire.encode (fun e ->
      Wire.Encoder.uint e st.selections;
      Wire.Encoder.list e
        (fun (rid, r) ->
          Wire.Encoder.uint e rid;
          encode_resource e r)
        (Imap.bindings st.resources))

let decode_state s =
  Wire.decode s (fun d ->
      let selections = Wire.Decoder.uint d in
      let bindings =
        Wire.Decoder.list d (fun d ->
            let rid = Wire.Decoder.uint d in
            let r = decode_resource d in
            (rid, r))
      in
      { selections; resources = Imap.of_seq (List.to_seq bindings) })

(* Delta: only the resources whose record changed (plus deletions are
   impossible — the broker never removes resources). *)
let diff ~old_state st =
  let changed =
    Imap.fold
      (fun rid r acc ->
        match Imap.find_opt rid old_state.resources with
        | Some old_r when old_r = r -> acc
        | _ -> (rid, r) :: acc)
      st.resources []
  in
  Some
    (Wire.encode (fun e ->
         Wire.Encoder.uint e st.selections;
         Wire.Encoder.list e
           (fun (rid, r) ->
             Wire.Encoder.uint e rid;
             encode_resource e r)
           changed))

let patch st s =
  Wire.decode s (fun d ->
      let selections = Wire.Decoder.uint d in
      let changed =
        Wire.Decoder.list d (fun d ->
            let rid = Wire.Decoder.uint d in
            let r = decode_resource d in
            (rid, r))
      in
      {
        selections;
        resources =
          List.fold_left (fun m (rid, r) -> Imap.add rid r m) st.resources changed;
      })

(** Total used units across resources (test helper). *)
let total_used st = Imap.fold (fun _ r acc -> acc + r.used) st.resources 0

(** Load imbalance: max used minus min used across resources with equal
    capacity (test/example helper for the load-balancing claim). *)
let imbalance st =
  let loads = Imap.fold (fun _ r acc -> r.used :: acc) st.resources [] in
  match loads with
  | [] -> 0
  | x :: rest ->
    let mn = List.fold_left Stdlib.min x rest and mx = List.fold_left Stdlib.max x rest in
    mx - mn

(* Range handoff (elastic resharding) is not meaningful for this
   service's keyspace; the reshard coordinator refuses to move it. *)
let export_range _ ~lo:_ ~hi:_ = None
let import_range st _ = st
