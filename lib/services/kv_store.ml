(** A transactional key-value store — the service behind the T-Paxos
    evaluation (§3.5/§4.2) and the transactions example.

    Operations are deterministic; transactionality comes from the
    replication layer: per-key footprints feed T-Paxos first-committer-
    wins conflict detection, and the persistent-map state makes leader-
    local transaction branches cheap. *)

module Wire = Grid_codec.Wire
module Smap = Map.Make (String)

let name = "kv_store"

type state = { entries : string Smap.t; version : int }

type op =
  | Put of { key : string; value : string }
  | Get of string
  | Del of string
  | Cas of { key : string; expected : string option; value : string }
  | Append of { key : string; value : string }
  | Size  (** read *)

type result =
  | Unit
  | Value of string option
  | Cas_ok of bool
  | Count of int

let initial () = { entries = Smap.empty; version = 0 }

let classify = function
  | Put _ | Del _ | Cas _ | Append _ -> `Write
  | Get _ | Size -> `Read

type outcome = { state : state; result : result; witness : string option }

let bump st entries = { entries; version = st.version + 1 }

let eval state op =
  match op with
  | Put { key; value } -> (bump state (Smap.add key value state.entries), Unit)
  | Get key -> (state, Value (Smap.find_opt key state.entries))
  | Del key -> (bump state (Smap.remove key state.entries), Unit)
  | Cas { key; expected; value } ->
    let current = Smap.find_opt key state.entries in
    if current = expected then (bump state (Smap.add key value state.entries), Cas_ok true)
    else (state, Cas_ok false)
  | Append { key; value } ->
    let current = Option.value ~default:"" (Smap.find_opt key state.entries) in
    (bump state (Smap.add key (current ^ value) state.entries), Unit)
  | Size -> (state, Count (Smap.cardinal state.entries))

let apply ~rng:_ ~now:_ state op =
  let state, result = eval state op in
  { state; result; witness = None }

let replay state op ~witness:_ = eval state op

let footprint = function
  | Put { key; _ } | Del key | Cas { key; _ } | Append { key; _ } -> [ "kv/" ^ key ]
  | Get key -> [ "kv/" ^ key ]
  | Size -> []

(* Partition keys for the sharded runtime. [Size] conflicts with nothing
   (empty footprint) but reads the whole keyspace, so for routing it
   must advertise "*" — one shard's answer would be a slice. *)
let route = function Size -> [ "*" ] | op -> footprint op

(* --- codecs --- *)

let encode_op op =
  Wire.encode (fun e ->
      match op with
      | Put { key; value } ->
        Wire.Encoder.uint e 0;
        Wire.Encoder.string e key;
        Wire.Encoder.string e value
      | Get key ->
        Wire.Encoder.uint e 1;
        Wire.Encoder.string e key
      | Del key ->
        Wire.Encoder.uint e 2;
        Wire.Encoder.string e key
      | Cas { key; expected; value } ->
        Wire.Encoder.uint e 3;
        Wire.Encoder.string e key;
        Wire.Encoder.option e (Wire.Encoder.string e) expected;
        Wire.Encoder.string e value
      | Append { key; value } ->
        Wire.Encoder.uint e 4;
        Wire.Encoder.string e key;
        Wire.Encoder.string e value
      | Size -> Wire.Encoder.uint e 5)

let decode_op s =
  Wire.decode s (fun d ->
      match Wire.Decoder.uint d with
      | 0 ->
        let key = Wire.Decoder.string d in
        let value = Wire.Decoder.string d in
        Put { key; value }
      | 1 -> Get (Wire.Decoder.string d)
      | 2 -> Del (Wire.Decoder.string d)
      | 3 ->
        let key = Wire.Decoder.string d in
        let expected = Wire.Decoder.option d Wire.Decoder.string in
        let value = Wire.Decoder.string d in
        Cas { key; expected; value }
      | 4 ->
        let key = Wire.Decoder.string d in
        let value = Wire.Decoder.string d in
        Append { key; value }
      | 5 -> Size
      | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "kv op %d" n }))

let encode_result r =
  Wire.encode (fun e ->
      match r with
      | Unit -> Wire.Encoder.uint e 0
      | Value v ->
        Wire.Encoder.uint e 1;
        Wire.Encoder.option e (Wire.Encoder.string e) v
      | Cas_ok b ->
        Wire.Encoder.uint e 2;
        Wire.Encoder.bool e b
      | Count n ->
        Wire.Encoder.uint e 3;
        Wire.Encoder.uint e n)

let decode_result s =
  Wire.decode s (fun d ->
      match Wire.Decoder.uint d with
      | 0 -> Unit
      | 1 -> Value (Wire.Decoder.option d Wire.Decoder.string)
      | 2 -> Cas_ok (Wire.Decoder.bool d)
      | 3 -> Count (Wire.Decoder.uint d)
      | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "kv result %d" n }))

let encode_state st =
  Wire.encode (fun e ->
      Wire.Encoder.uint e st.version;
      Wire.Encoder.list e
        (fun (k, v) ->
          Wire.Encoder.string e k;
          Wire.Encoder.string e v)
        (Smap.bindings st.entries))

let decode_state s =
  Wire.decode s (fun d ->
      let version = Wire.Decoder.uint d in
      let bindings =
        Wire.Decoder.list d (fun d ->
            let k = Wire.Decoder.string d in
            let v = Wire.Decoder.string d in
            (k, v))
      in
      { version; entries = Smap.of_seq (List.to_seq bindings) })

(* Delta: changed and removed keys relative to the previous state. *)
let diff ~old_state st =
  let changed =
    Smap.fold
      (fun k v acc ->
        match Smap.find_opt k old_state.entries with
        | Some old_v when String.equal old_v v -> acc
        | _ -> (k, v) :: acc)
      st.entries []
  in
  let removed =
    Smap.fold
      (fun k _ acc -> if Smap.mem k st.entries then acc else k :: acc)
      old_state.entries []
  in
  Some
    (Wire.encode (fun e ->
         Wire.Encoder.uint e st.version;
         Wire.Encoder.list e
           (fun (k, v) ->
             Wire.Encoder.string e k;
             Wire.Encoder.string e v)
           changed;
         Wire.Encoder.list e (Wire.Encoder.string e) removed))

let patch st s =
  Wire.decode s (fun d ->
      let version = Wire.Decoder.uint d in
      let changed =
        Wire.Decoder.list d (fun d ->
            let k = Wire.Decoder.string d in
            let v = Wire.Decoder.string d in
            (k, v))
      in
      let removed = Wire.Decoder.list d Wire.Decoder.string in
      let entries =
        List.fold_left (fun m (k, v) -> Smap.add k v m) st.entries changed
      in
      let entries = List.fold_left (fun m k -> Smap.remove k m) entries removed in
      { version; entries })

(* Range handoff for elastic resharding: the bounds are *footprint*
   keys ("kv/" ^ entry key), since cut points live in the partition
   map's key vocabulary; entries are stored under the raw key. *)

let in_range ~lo ~hi fk =
  String.compare fk lo >= 0
  && match hi with None -> true | Some h -> String.compare fk h < 0

let export_range st ~lo ~hi =
  let slice =
    Smap.fold
      (fun k v acc -> if in_range ~lo ~hi ("kv/" ^ k) then (k, v) :: acc else acc)
      st.entries []
  in
  let slice = List.rev slice in
  Some
    ( List.length slice,
      Wire.encode (fun e ->
          Wire.Encoder.list e
            (fun (k, v) ->
              Wire.Encoder.string e k;
              Wire.Encoder.string e v)
            slice) )

(* Idempotent: re-importing a slice that is already present leaves the
   state (version included) untouched, so duplicate INSTALL delivery is
   harmless. *)
let import_range st s =
  let bindings =
    Wire.decode s (fun d ->
        Wire.Decoder.list d (fun d ->
            let k = Wire.Decoder.string d in
            let v = Wire.Decoder.string d in
            (k, v)))
  in
  let entries, changed =
    List.fold_left
      (fun (m, changed) (k, v) ->
        match Smap.find_opt k m with
        | Some v' when String.equal v v' -> (m, changed)
        | _ -> (Smap.add k v m, true))
      (st.entries, false) bindings
  in
  if changed then { entries; version = st.version + 1 } else st

(** Test helpers. *)

let find st key = Smap.find_opt key st.entries
let cardinal st = Smap.cardinal st.entries
