(** The evaluation service of §4: every operation invokes an empty method.

    The state is a single counter of writes (a few bytes, like the
    paper's) so that write requests genuinely change state and delta
    shipping has something to ship; [payload_padding] lets the
    state-size ablation inflate the encoded state. *)

module Wire = Grid_codec.Wire

let name = "noop"

type state = { writes : int; padding : string }
type op = Noop_read | Noop_write | Noop_sized_write of int
type result = unit

let initial () = { writes = 0; padding = "" }

let classify = function
  | Noop_read -> `Read
  | Noop_write | Noop_sized_write _ -> `Write

type outcome = { state : state; result : result; witness : string option }

let apply ~rng:_ ~now:_ state op =
  match op with
  | Noop_read -> { state; result = (); witness = Some "" }
  | Noop_write -> { state = { state with writes = state.writes + 1 }; result = (); witness = Some "" }
  | Noop_sized_write n ->
    {
      state = { writes = state.writes + 1; padding = String.make n 'x' };
      result = ();
      witness = Some "";
    }

let replay state op ~witness:_ =
  match op with
  | Noop_read -> (state, ())
  | Noop_write -> ({ state with writes = state.writes + 1 }, ())
  | Noop_sized_write n -> ({ writes = state.writes + 1; padding = String.make n 'x' }, ())

(* The evaluation service's operations are empty methods (§4): they
   commute, so transactions over them never conflict. *)
let footprint = function Noop_read | Noop_write | Noop_sized_write _ -> []

let encode_op op =
  Wire.encode (fun e ->
      match op with
      | Noop_read -> Wire.Encoder.uint e 0
      | Noop_write -> Wire.Encoder.uint e 1
      | Noop_sized_write n ->
        Wire.Encoder.uint e 2;
        Wire.Encoder.uint e n)

let decode_op s =
  Wire.decode s (fun d ->
      match Wire.Decoder.uint d with
      | 0 -> Noop_read
      | 1 -> Noop_write
      | 2 -> Noop_sized_write (Wire.Decoder.uint d)
      | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "noop op %d" n }))

let encode_result () = ""
let decode_result _ = ()

let encode_state st =
  Wire.encode (fun e ->
      Wire.Encoder.uint e st.writes;
      Wire.Encoder.string e st.padding)

let decode_state s =
  Wire.decode s (fun d ->
      let writes = Wire.Decoder.uint d in
      let padding = Wire.Decoder.string d in
      { writes; padding })

(* The delta is the new write count plus the padding only if it changed —
   close to the paper's "exchange only the updated state". *)
let diff ~old_state st =
  Some
    (Wire.encode (fun e ->
         Wire.Encoder.uint e st.writes;
         Wire.Encoder.option e (Wire.Encoder.string e)
           (if String.equal old_state.padding st.padding then None else Some st.padding)))

let patch st s =
  Wire.decode s (fun d ->
      let writes = Wire.Decoder.uint d in
      let padding =
        match Wire.Decoder.option d Wire.Decoder.string with
        | Some p -> p
        | None -> st.padding
      in
      { writes; padding })

(* Range handoff (elastic resharding) is not meaningful for this
   service's keyspace; the reshard coordinator refuses to move it. *)
let export_range _ ~lo:_ ~hi:_ = None
let import_range st _ = st
