(** The grid scheduling service of §2 (after the NILE Global Planner):
    jobs are examined in FCFS order, overridden by priorities. The
    service is {e unintentionally} nondeterministic in two ways:

    - a job's effective arrival order depends on the {e local clock} when
      the leader timestamps it ([apply ~now]);
    - [Examine] schedules the best job {e currently} in the queue, so the
      decision depends on how far the queue had filled when the scheduler
      got around to examining it — the paper's Job-A/Job-B race;
    - the target machine is drawn randomly among the least-loaded ones.

    The witness records the observed clock, the chosen job and the chosen
    machine, so backup replicas reproduce the exact decision. *)

module Wire = Grid_codec.Wire
module Rng = Grid_util.Rng
module Imap = Map.Make (Int)

let name = "grid_scheduler"

type job = { priority : int; arrival : float; submitted_seq : int }

type state = {
  machines : int Imap.t;  (** machine id -> number of jobs assigned *)
  pending : job Imap.t;  (** job id -> job *)
  assignments : (int * int) list;  (** (job, machine), newest first *)
  next_seq : int;
}

type op =
  | Add_machine of int
  | Submit of { job : int; priority : int }
  | Examine  (** schedule the best pending job, if any *)
  | Complete of { job : int; machine : int }
  | Queue_length  (** read *)
  | Assignment_of of int  (** read *)

type result =
  | Done
  | Submitted
  | Scheduled of (int * int) option  (** (job, machine); None if queue empty *)
  | Length of int
  | Assigned_to of int option
  | Error of string

let initial () =
  { machines = Imap.empty; pending = Imap.empty; assignments = []; next_seq = 0 }

let classify = function
  | Add_machine _ | Submit _ | Examine | Complete _ -> `Write
  | Queue_length | Assignment_of _ -> `Read

type outcome = { state : state; result : result; witness : string option }

(* FCFS overridden by priority: highest priority first; among equals, the
   earlier arrival (then submission sequence) wins. *)
let best_pending state =
  Imap.fold
    (fun id job acc ->
      match acc with
      | None -> Some (id, job)
      | Some (_, b) ->
        if
          job.priority > b.priority
          || (job.priority = b.priority
             && (job.arrival < b.arrival
                || (job.arrival = b.arrival && job.submitted_seq < b.submitted_seq)))
        then Some (id, job)
        else acc)
    state.pending None

let least_loaded_machines state =
  let min_load =
    Imap.fold (fun _ l acc -> Stdlib.min l acc) state.machines max_int
  in
  Imap.fold (fun m l acc -> if l = min_load then m :: acc else acc) state.machines []
  |> List.rev

let do_assign state job machine =
  {
    state with
    pending = Imap.remove job state.pending;
    machines =
      Imap.update machine
        (function Some l -> Some (l + 1) | None -> Some 1)
        state.machines;
    assignments = (job, machine) :: state.assignments;
  }

let encode_examine_witness (choice : (int * int) option) =
  Wire.encode (fun e ->
      Wire.Encoder.option e
        (fun (job, machine) ->
          Wire.Encoder.uint e job;
          Wire.Encoder.uint e machine)
        choice)

let decode_examine_witness w =
  Wire.decode w (fun d ->
      Wire.Decoder.option d (fun d ->
          let job = Wire.Decoder.uint d in
          let machine = Wire.Decoder.uint d in
          (job, machine)))

let encode_submit_witness arrival = Wire.encode (fun e -> Wire.Encoder.float e arrival)
let decode_submit_witness w = Wire.decode w Wire.Decoder.float

let apply ~rng ~now state op =
  match op with
  | Add_machine m ->
    {
      state = { state with machines = Imap.add m 0 state.machines };
      result = Done;
      witness = None;
    }
  | Submit { job; priority } ->
    if Imap.mem job state.pending then
      { state; result = Error "duplicate job id"; witness = None }
    else
      {
        state =
          {
            state with
            pending =
              Imap.add job
                { priority; arrival = now; submitted_seq = state.next_seq }
                state.pending;
            next_seq = state.next_seq + 1;
          };
        result = Submitted;
        (* The observed clock is the nondeterminism: ship it. *)
        witness = Some (encode_submit_witness now);
      }
  | Examine -> (
    match best_pending state with
    | None ->
      { state; result = Scheduled None; witness = Some (encode_examine_witness None) }
    | Some (job, _) -> (
      match least_loaded_machines state with
      | [] -> { state; result = Error "no machines"; witness = None }
      | machines ->
        let machine = Rng.pick rng (Array.of_list machines) in
        {
          state = do_assign state job machine;
          result = Scheduled (Some (job, machine));
          witness = Some (encode_examine_witness (Some (job, machine)));
        }))
  | Complete { job; machine } ->
    {
      state =
        {
          state with
          machines =
            Imap.update machine
              (function Some l -> Some (Stdlib.max 0 (l - 1)) | None -> None)
              state.machines;
          assignments = List.filter (fun (j, _) -> j <> job) state.assignments;
        };
      result = Done;
      witness = None;
    }
  | Queue_length -> { state; result = Length (Imap.cardinal state.pending); witness = None }
  | Assignment_of job ->
    {
      state;
      result = Assigned_to (List.assoc_opt job state.assignments);
      witness = None;
    }

let replay state op ~witness =
  match op with
  | Submit { job; priority } ->
    let arrival = decode_submit_witness witness in
    if Imap.mem job state.pending then (state, Error "duplicate job id")
    else
      ( {
          state with
          pending =
            Imap.add job { priority; arrival; submitted_seq = state.next_seq } state.pending;
          next_seq = state.next_seq + 1;
        },
        Submitted )
  | Examine -> (
    match decode_examine_witness witness with
    | None -> (state, Scheduled None)
    | Some (job, machine) -> (do_assign state job machine, Scheduled (Some (job, machine))))
  | Add_machine _ | Complete _ | Queue_length | Assignment_of _ ->
    let o = apply ~rng:(Rng.of_int 0) ~now:0.0 state op in
    (o.state, o.result)

let footprint = function
  | Add_machine m -> [ Printf.sprintf "machine/%d" m ]
  | Submit { job; _ } -> [ Printf.sprintf "job/%d" job ]
  | Examine -> [ "*" ]
  | Complete { job; machine } ->
    [ Printf.sprintf "job/%d" job; Printf.sprintf "machine/%d" machine ]
  | Queue_length | Assignment_of _ -> []

(* --- codecs --- *)

let encode_op op =
  Wire.encode (fun e ->
      match op with
      | Add_machine m ->
        Wire.Encoder.uint e 0;
        Wire.Encoder.uint e m
      | Submit { job; priority } ->
        Wire.Encoder.uint e 1;
        Wire.Encoder.uint e job;
        Wire.Encoder.int e priority
      | Examine -> Wire.Encoder.uint e 2
      | Complete { job; machine } ->
        Wire.Encoder.uint e 3;
        Wire.Encoder.uint e job;
        Wire.Encoder.uint e machine
      | Queue_length -> Wire.Encoder.uint e 4
      | Assignment_of job ->
        Wire.Encoder.uint e 5;
        Wire.Encoder.uint e job)

let decode_op s =
  Wire.decode s (fun d ->
      match Wire.Decoder.uint d with
      | 0 -> Add_machine (Wire.Decoder.uint d)
      | 1 ->
        let job = Wire.Decoder.uint d in
        let priority = Wire.Decoder.int d in
        Submit { job; priority }
      | 2 -> Examine
      | 3 ->
        let job = Wire.Decoder.uint d in
        let machine = Wire.Decoder.uint d in
        Complete { job; machine }
      | 4 -> Queue_length
      | 5 -> Assignment_of (Wire.Decoder.uint d)
      | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "sched op %d" n }))

let encode_result r =
  Wire.encode (fun e ->
      match r with
      | Done -> Wire.Encoder.uint e 0
      | Submitted -> Wire.Encoder.uint e 1
      | Scheduled choice ->
        Wire.Encoder.uint e 2;
        Wire.Encoder.option e
          (fun (job, machine) ->
            Wire.Encoder.uint e job;
            Wire.Encoder.uint e machine)
          choice
      | Length n ->
        Wire.Encoder.uint e 3;
        Wire.Encoder.uint e n
      | Assigned_to m ->
        Wire.Encoder.uint e 4;
        Wire.Encoder.option e (Wire.Encoder.uint e) m
      | Error msg ->
        Wire.Encoder.uint e 5;
        Wire.Encoder.string e msg)

let decode_result s =
  Wire.decode s (fun d ->
      match Wire.Decoder.uint d with
      | 0 -> Done
      | 1 -> Submitted
      | 2 ->
        Scheduled
          (Wire.Decoder.option d (fun d ->
               let job = Wire.Decoder.uint d in
               let machine = Wire.Decoder.uint d in
               (job, machine)))
      | 3 -> Length (Wire.Decoder.uint d)
      | 4 -> Assigned_to (Wire.Decoder.option d Wire.Decoder.uint)
      | 5 -> Error (Wire.Decoder.string d)
      | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "sched result %d" n }))

let encode_state st =
  Wire.encode (fun e ->
      Wire.Encoder.uint e st.next_seq;
      Wire.Encoder.list e
        (fun (m, l) ->
          Wire.Encoder.uint e m;
          Wire.Encoder.uint e l)
        (Imap.bindings st.machines);
      Wire.Encoder.list e
        (fun (id, j) ->
          Wire.Encoder.uint e id;
          Wire.Encoder.int e j.priority;
          Wire.Encoder.float e j.arrival;
          Wire.Encoder.uint e j.submitted_seq)
        (Imap.bindings st.pending);
      Wire.Encoder.list e
        (fun (j, m) ->
          Wire.Encoder.uint e j;
          Wire.Encoder.uint e m)
        st.assignments)

let decode_state s =
  Wire.decode s (fun d ->
      let next_seq = Wire.Decoder.uint d in
      let machines =
        Wire.Decoder.list d (fun d ->
            let m = Wire.Decoder.uint d in
            let l = Wire.Decoder.uint d in
            (m, l))
      in
      let pending =
        Wire.Decoder.list d (fun d ->
            let id = Wire.Decoder.uint d in
            let priority = Wire.Decoder.int d in
            let arrival = Wire.Decoder.float d in
            let submitted_seq = Wire.Decoder.uint d in
            (id, { priority; arrival; submitted_seq }))
      in
      let assignments =
        Wire.Decoder.list d (fun d ->
            let j = Wire.Decoder.uint d in
            let m = Wire.Decoder.uint d in
            (j, m))
      in
      {
        next_seq;
        machines = Imap.of_seq (List.to_seq machines);
        pending = Imap.of_seq (List.to_seq pending);
        assignments;
      })

let diff ~old_state:_ st = Some (encode_state st)
let patch _ s = decode_state s

(** Test/example helpers. *)

let pending_jobs st = Imap.bindings st.pending |> List.map fst
let assignments st = List.rev st.assignments
let machine_load st m = Option.value ~default:0 (Imap.find_opt m st.machines)

(* Range handoff (elastic resharding) is not meaningful for this
   service's keyspace; the reshard coordinator refuses to move it. *)
let export_range _ ~lo:_ ~hi:_ = None
let import_range st _ = st
