(** A transactional key-value store — the service behind the T-Paxos
    evaluation (§3.5/§4.2) and the transactions example. Operations are
    deterministic; per-key footprints feed first-committer-wins conflict
    detection. *)

module Smap : Map.S with type key = string

type state = { entries : string Smap.t; version : int }

type op =
  | Put of { key : string; value : string }
  | Get of string
  | Del of string
  | Cas of { key : string; expected : string option; value : string }
  | Append of { key : string; value : string }
  | Size

type result = Unit | Value of string option | Cas_ok of bool | Count of int

include
  Grid_paxos.Service_intf.S
    with type state := state
     and type op := op
     and type result := result

(** {1 Helpers} *)

val find : state -> string -> string option
val cardinal : state -> int

(** {1 Sharding} *)

val route : op -> string list
(** Partition keys for the sharded runtime ({!Grid_shard.Multi}): same
    per-key footprint as {!footprint} for single-key operations, but
    [Size] — whose {e conflict} footprint is empty — advertises ["*"] so
    the router rejects it instead of answering from one shard's slice of
    the keyspace. *)
