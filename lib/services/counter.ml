(** A deterministic replicated counter — the quickstart service and the
    reference service for the protocol test suites (its state is small
    and trivially comparable). *)

module Wire = Grid_codec.Wire

let name = "counter"

type state = int
type op = Get | Add of int
type result = int

let initial () = 0
let classify = function Get -> `Read | Add _ -> `Write

type outcome = { state : state; result : result; witness : string option }

let apply ~rng:_ ~now:_ state op =
  match op with
  | Get -> { state; result = state; witness = None }
  | Add n -> { state = state + n; result = state + n; witness = None }

let replay state op ~witness:_ =
  match op with Get -> (state, state) | Add n -> (state + n, state + n)

let footprint = function Get -> [] | Add _ -> [ "counter" ]

let encode_op op =
  Wire.encode (fun e ->
      match op with
      | Get -> Wire.Encoder.uint e 0
      | Add n ->
        Wire.Encoder.uint e 1;
        Wire.Encoder.int e n)

let decode_op s =
  Wire.decode s (fun d ->
      match Wire.Decoder.uint d with
      | 0 -> Get
      | 1 -> Add (Wire.Decoder.int d)
      | n -> raise (Wire.Decode_error { pos = 0; msg = Printf.sprintf "counter op %d" n }))

let encode_result r = Wire.encode (fun e -> Wire.Encoder.int e r)
let decode_result s = Wire.decode s Wire.Decoder.int
let encode_state = encode_result
let decode_state = decode_result
let diff ~old_state:_ st = Some (encode_state st)
let patch _ s = decode_state s

(* Range handoff (elastic resharding) is not meaningful for this
   service's keyspace; the reshard coordinator refuses to move it. *)
let export_range _ ~lo:_ ~hi:_ = None
let import_range st _ = st
