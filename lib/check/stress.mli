(** The nemesis stress harness: seeded model-checker schedules with the
    full cross-layer fault mix — clean and torn-persist crashes, silent
    metadata loss, message duplication and cross-channel reordering —
    asserting on every schedule that

    - {b agreement} holds (same ⟨batch, state⟩ per instance, in-order
      application, exactly-once commits);
    - {b durability} holds (a replica revived from its persisted image
      carries exactly the committed prefix the group observed);
    - the {b client-visible history is linearizable} against the service
      model (checked when every request was answered);
    - {b no stale reads}: every read's first reply reflects the writes
      committed before it was issued ({!Mcheck.outcome.stale_reads}) —
      the invariant the leader-lease fast path must preserve under clock
      drift and leader failovers.

    Failing schedules are replayed deterministically from their recorded
    fault {!Mcheck.plan} and greedily shrunk to a minimal plan that still
    fails. *)

type service = Counter_service | Kv_service

val service_name : service -> string

val default_nemesis : Mcheck.nemesis
(** The standard stress mix: rare crashes (30% torn), 3% duplication and
    reordering per delivery, 5% metadata-record loss per persist. No
    clock drift — existing seeds replay unchanged. *)

val lease_nemesis : Mcheck.nemesis
(** {!default_nemesis} plus clock drift (0.5% per step, up to ±2 ms) for
    exercising leader leases; pair it with a [cfg_tweak] that sets
    {!Grid_paxos.Config.t.lease_ms}. *)

val overload_nemesis : Mcheck.nemesis
(** {!default_nemesis} with the crash rate doubled, for the overload
    tier: shed requests and backoff retransmissions must survive leader
    churn without losing an acknowledged write. *)

type failure = {
  seed : int;
  service : service;
  reasons : string list;  (** human-readable violation descriptions *)
  plan : Mcheck.plan;  (** the fault plan of the failing run *)
  shrunk : Mcheck.plan option;  (** minimal still-failing plan, if shrunk *)
}

type summary = {
  schedules : int;
  failures : failure list;
  unreplied : int;  (** schedules where the drain left requests unanswered *)
  crashes : int;
  torn_persists : int;
  meta_dropped : int;
  duplicated : int;
  reordered : int;
  drifted : int;  (** clock-drift injections across the batch *)
  shed : int;  (** [Overloaded] pushbacks across the batch *)
  admitted_p99_max : float;
      (** worst per-schedule p99 of admitted-request latency (virtual ms);
          [0.] when no schedule completed a request *)
  delivered : int;
  replies : int;
  watchdog_violations : int;
      (** online invariant checks ({!Grid_obs.Watchdog}) that fired inside
          the replicas across the batch; a non-zero count also surfaces as
          a failure reason on the offending schedule *)
}

val admitted_p99 : Mcheck.outcome -> float
(** p99 of {!Mcheck.outcome.admitted_latencies} ([0.] when empty). *)

val run_one :
  service:service ->
  ?obs:Grid_obs.Span.Recorder.t ->
  ?steps:int ->
  ?nemesis:Mcheck.nemesis ->
  ?disable_dedup:bool ->
  ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
  ?admitted_p99_bound_ms:float ->
  ?shrink:bool ->
  seed:int ->
  unit ->
  Mcheck.outcome * failure option
(** One seeded schedule over a generated workload (3 closed-loop clients,
    mixed reads and writes, derived from the seed). [obs] receives the
    replicas' lifecycle spans (deterministic per seed). [disable_dedup]
    plants the double-commit bug for shrinker demonstrations; [cfg_tweak]
    edits the group config, e.g. to enable leader leases. *)

val run :
  ?services:service list ->
  ?schedules:int ->
  ?base_seed:int ->
  ?steps:int ->
  ?nemesis:Mcheck.nemesis ->
  ?disable_dedup:bool ->
  ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
  ?shrink:bool ->
  ?progress:(summary -> unit) ->
  unit ->
  summary
(** [run ()] spreads [schedules] seeds ([base_seed], [base_seed+1], …)
    round-robin over [services] (default: counter and kv) and aggregates
    the results. *)

val run_overload :
  ?schedules:int ->
  ?base_seed:int ->
  ?steps:int ->
  ?nemesis:Mcheck.nemesis ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?admitted_p99_bound_ms:float ->
  ?shrink:bool ->
  ?progress:(summary -> unit) ->
  unit ->
  summary
(** The overload tier: [schedules] seeded runs of the counter service
    under a write-heavy workload with a deliberately tiny admission
    window ([max_inflight], [max_queue]; defaults 2/2), driven by
    {!overload_nemesis}. On top of the usual oracles, every schedule
    checks that no [Ok]-acknowledged write was lost
    ({!Mcheck.outcome.lost_admitted}) and that the p99 latency of
    admitted requests stays under [admitted_p99_bound_ms] (virtual ms,
    default 120 s). The returned summary's [shed] counts the pushbacks
    actually exercised. *)

(** Per-service harnesses, for targeted tests (replaying a specific plan,
    custom shrink predicates). *)
module Counter_harness : sig
  module MC : module type of Mcheck.Make (Grid_services.Counter)

  val requests_for : seed:int -> (int * Grid_paxos.Types.rtype * string) list

  val run_one :
    ?obs:Grid_obs.Span.Recorder.t ->
    ?steps:int ->
    ?nemesis:Mcheck.nemesis ->
    ?disable_dedup:bool ->
    ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
    ?admitted_p99_bound_ms:float ->
    ?shrink:bool ->
    seed:int ->
    unit ->
    Mcheck.outcome * failure option

  val replay_plan :
    ?steps:int ->
    ?meta_drop_prob:float ->
    ?disable_dedup:bool ->
    ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
    ?admitted_p99_bound_ms:float ->
    seed:int ->
    plan:Mcheck.plan ->
    unit ->
    Mcheck.outcome * string list
  (** Replay a plan under the seed's workload; returns the outcome and
      the violation reasons (empty = passed). *)
end

module Kv_harness : sig
  module MC : module type of Mcheck.Make (Grid_services.Kv_store)

  val requests_for : seed:int -> (int * Grid_paxos.Types.rtype * string) list

  val run_one :
    ?obs:Grid_obs.Span.Recorder.t ->
    ?steps:int ->
    ?nemesis:Mcheck.nemesis ->
    ?disable_dedup:bool ->
    ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
    ?admitted_p99_bound_ms:float ->
    ?shrink:bool ->
    seed:int ->
    unit ->
    Mcheck.outcome * failure option

  val replay_plan :
    ?steps:int ->
    ?meta_drop_prob:float ->
    ?disable_dedup:bool ->
    ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
    ?admitted_p99_bound_ms:float ->
    seed:int ->
    plan:Mcheck.plan ->
    unit ->
    Mcheck.outcome * string list
end

module Overload_harness : sig
  module MC : module type of Mcheck.Make (Grid_services.Counter)

  val requests_for : seed:int -> (int * Grid_paxos.Types.rtype * string) list

  val run_one :
    ?obs:Grid_obs.Span.Recorder.t ->
    ?steps:int ->
    ?nemesis:Mcheck.nemesis ->
    ?disable_dedup:bool ->
    ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
    ?admitted_p99_bound_ms:float ->
    ?shrink:bool ->
    seed:int ->
    unit ->
    Mcheck.outcome * failure option

  val replay_plan :
    ?steps:int ->
    ?meta_drop_prob:float ->
    ?disable_dedup:bool ->
    ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
    ?admitted_p99_bound_ms:float ->
    seed:int ->
    plan:Mcheck.plan ->
    unit ->
    Mcheck.outcome * string list
end

val pp_failure : Format.formatter -> failure -> unit
val pp_summary : Format.formatter -> summary -> unit
