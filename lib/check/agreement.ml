(** Safety checker for the core agreement property of the protocol
    (§3.3): for every consensus instance, all replicas that learn a
    decision learn the {e same} ⟨request batch, state⟩ tuple, and commit
    points advance without gaps.

    Works on the [committed_updates] histories that replicas record when
    [Config.record_history] is set. *)

type violation =
  | Value_mismatch of { instance : int; replica_a : int; replica_b : int }
      (** two replicas committed different request batches for one
          instance *)
  | State_mismatch of { instance : int; replica_a : int; replica_b : int }
      (** same requests but diverged states — the failure mode of
          classic Multi-Paxos under nondeterminism *)
  | Order of { replica : int; instance : int }
      (** a replica applied commits out of instance order *)
  | Duplicate_commit of {
      replica : int;
      request : string;
      instance_a : int;
      instance_b : int;
    }
      (** one request committed in two different instances — exactly-once
          is broken (the failure mode of a missing dedup table) *)

let pp_violation ppf = function
  | Value_mismatch { instance; replica_a; replica_b } ->
    Format.fprintf ppf "instance %d: replicas %d and %d committed different requests"
      instance replica_a replica_b
  | State_mismatch { instance; replica_a; replica_b } ->
    Format.fprintf ppf "instance %d: replicas %d and %d diverged in state" instance
      replica_a replica_b
  | Order { replica; instance } ->
    Format.fprintf ppf "replica %d applied instance %d out of order" replica instance
  | Duplicate_commit { replica; request; instance_a; instance_b } ->
    Format.fprintf ppf "replica %d committed request %s in both instance %d and %d"
      replica request instance_a instance_b

let request_key (reqs : Grid_paxos.Types.request list) =
  String.concat ";"
    (List.map
       (fun (r : Grid_paxos.Types.request) ->
         Format.asprintf "%a/%a/%d" Grid_util.Ids.Request_id.pp r.id
           Grid_paxos.Types.pp_rtype r.rtype
           (Hashtbl.hash r.payload))
       reqs)

(** [check histories] where [histories.(r)] is replica [r]'s
    [committed_updates] (instance, requests, encoded state after). The
    instance-to-state comparison only applies to instances the replica
    applied in full-history order; snapshot-installed prefixes are simply
    absent from a history, which is fine — agreement is checked on the
    instances a replica actually committed. *)
let check (histories : (int * Grid_paxos.Types.request list * string) list array) :
    violation list =
  let violations = ref [] in
  let by_instance : (int, (int * string * string) list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun replica history ->
      (* Ordering check: a replica applies commits in strictly increasing
         instance order. Holes are legal — they correspond to prefixes
         learned via snapshot installation, which never enters the
         per-instance history. *)
      let rec ordered = function
        | (i, _, _) :: ((j, _, _) :: _ as rest) ->
          if j <= i then violations := Order { replica; instance = j } :: !violations;
          ordered rest
        | _ -> ()
      in
      ordered history;
      (* Exactly-once check: a committed state-mutating request must not
         reappear in a later instance of the same history (the dedup
         table's job). Reads are exempt: they are idempotent and not
         deduplicated, so a retransmitted read may legitimately be
         decided in two instances (the client keeps the first reply). *)
      let seen_reqs : (Grid_util.Ids.Request_id.t, int) Hashtbl.t =
        Hashtbl.create 64
      in
      List.iter
        (fun (instance, reqs, _) ->
          List.iter
            (fun (r : Grid_paxos.Types.request) ->
              if r.rtype = Grid_paxos.Types.Read then ()
              else
              match Hashtbl.find_opt seen_reqs r.id with
              | Some instance_a when instance_a <> instance ->
                violations :=
                  Duplicate_commit
                    {
                      replica;
                      request = Format.asprintf "%a" Grid_util.Ids.Request_id.pp r.id;
                      instance_a;
                      instance_b = instance;
                    }
                  :: !violations
              | _ -> Hashtbl.replace seen_reqs r.id instance)
            reqs)
        history;
      List.iter
        (fun (instance, reqs, state) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_instance instance) in
          Hashtbl.replace by_instance instance
            ((replica, request_key reqs, state) :: prev))
        history)
    histories;
  Hashtbl.iter
    (fun instance entries ->
      match entries with
      | [] -> ()
      | (r0, k0, s0) :: rest ->
        List.iter
          (fun (r, k, s) ->
            if not (String.equal k k0) then
              violations :=
                Value_mismatch { instance; replica_a = r0; replica_b = r } :: !violations
            else if not (String.equal s s0) then
              violations :=
                State_mismatch { instance; replica_a = r0; replica_b = r } :: !violations)
          rest)
    by_instance;
  List.rev !violations
