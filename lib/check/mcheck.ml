(** Randomized-schedule state-space exploration for the protocol engines.

    Because the replica and client engines are pure step machines, a
    scheduler that owns the message pool and timer set can drive them
    through interleavings far more adversarial than the latency-ordered
    ones the simulator produces: reordering across pairs (FIFO per pair
    is preserved, as with TCP), arbitrarily late timer firings, crashes
    and recoveries at any step.

    This version adds a nemesis: per-delivery duplication and reordering
    dice, torn-persist crashes (the process dies inside a storage write,
    so the record is lost and the engine step never completes), silent
    loss of metadata records, and crash-consistent recovery — a revived
    replica is rebuilt from its persisted image via {!Replica.load}, not
    from its in-memory carcass. Every fault that fires is recorded in a
    {!plan} keyed by scheduler step, so a failing run can be replayed
    exactly and then shrunk to a minimal failing schedule.

    Each run uses one seed; scheduling choices and fault dice draw from
    two separate RNG streams so that replaying a recorded plan (no dice)
    leaves the scheduling stream — and hence the schedule — unchanged. *)

module Rng = Grid_util.Rng
open Grid_paxos.Types

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)

type fault_event =
  | Crash_at of { step : int; victim : int; torn : bool }
  | Recover_at of { step : int; victim : int }
  | Duplicate_at of { step : int }
  | Reorder_at of { step : int; depth : int }
  | Drift_at of { step : int; victim : int; offset_ms : float }
      (** the victim's clock jumps to virtual time + [offset_ms]; attacks
          the leader-lease clock-skew bound *)
  | Upgrade_at of { step : int; victim : int; version : int }
      (** rolling upgrade: the victim is bounced (crash-consistent
          restart) and comes back speaking wire-protocol [version] *)

type plan = fault_event list

let fault_step = function
  | Crash_at { step; _ } | Recover_at { step; _ }
  | Duplicate_at { step } | Reorder_at { step; _ } | Drift_at { step; _ }
  | Upgrade_at { step; _ } -> step

let pp_fault ppf = function
  | Crash_at { step; victim; torn } ->
    Format.fprintf ppf "@%d crash(%d%s)" step victim (if torn then ",torn" else "")
  | Recover_at { step; victim } -> Format.fprintf ppf "@%d recover(%d)" step victim
  | Duplicate_at { step } -> Format.fprintf ppf "@%d duplicate" step
  | Reorder_at { step; depth } -> Format.fprintf ppf "@%d reorder(+%d)" step depth
  | Drift_at { step; victim; offset_ms } ->
    Format.fprintf ppf "@%d drift(%d,%+.2fms)" step victim offset_ms
  | Upgrade_at { step; victim; version } ->
    Format.fprintf ppf "@%d upgrade(%d,v%d)" step victim version

let pp_plan ppf plan =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_fault)
    plan

type nemesis = {
  crash_prob : float;  (** per-step probability of a crash (recover: 2x window) *)
  torn_frac : float;
      (** fraction of crashes that are torn: the victim dies inside its
          next storage persist instead of between steps *)
  dup_prob : float;  (** per-delivery probability of re-enqueuing a copy *)
  reorder_prob : float;
      (** per-delivery probability of delivering from the middle of the
          channel instead of its head *)
  meta_drop_prob : float;
      (** per-persist probability that a commit-point or snapshot record
          is silently lost (always repairable; see {!Grid_paxos.Storage}) *)
  drift_prob : float;
      (** per-step probability that one replica's clock jumps to a fresh
          offset from virtual time *)
  drift_max_ms : float;  (** drifted offsets are uniform in [-max, +max] *)
}

let no_faults =
  { crash_prob = 0.0; torn_frac = 0.0; dup_prob = 0.0; reorder_prob = 0.0;
    meta_drop_prob = 0.0; drift_prob = 0.0; drift_max_ms = 0.0 }

(* Greedy event-removal shrinking: repeatedly try dropping each event;
   keep any removal after which the schedule still fails. One-at-a-time
   passes loop to a fixed point. *)
let shrink_plan ~still_fails plan =
  let current = ref plan in
  let changed = ref true in
  while !changed do
    changed := false;
    let rec pass kept = function
      | [] -> List.rev kept
      | ev :: rest ->
        let candidate = List.rev_append kept rest in
        if still_fails candidate then begin
          changed := true;
          pass kept rest
        end
        else pass (ev :: kept) rest
    in
    current := pass [] !current
  done;
  !current

type outcome = {
  replies : reply list;
  violations : Agreement.violation list;
  durability : string list;
      (** crash-recovery invariant breaches: a revived replica whose
          reloaded state disagrees with what the group committed *)
  stale_reads : string list;
      (** reads whose reply reflects fewer writes than were committed
          before the read was issued — the invariant the leader-lease
          fast path must preserve under clock drift and failovers *)
  lost_admitted : string list;
      (** admitted-loss oracle breaches: writes acknowledged [Ok] to the
          client that no replica ever observed committed — the invariant
          admission control must preserve while shedding under overload *)
  admitted_latencies : float array;
      (** virtual-time first-injection-to-final-reply latency of every
          request that completed, in completion order; [Overloaded]
          pushback rounds are included in the latency of the eventual
          completion, so the p99 of this array is what the
          bounded-admitted-latency oracle inspects *)
  committed : int array;  (** commit point per replica at the end *)
  delivered : int;
  timer_fires : int;
  all_replied : bool;
  plan : plan;
      (** the faults that actually fired, in order — replayable *)
  crashes : int;
  torn_persists : int;  (** persists that died mid-write *)
  meta_dropped : int;  (** commit/snapshot records silently lost *)
  duplicated : int;
  reordered : int;
  drifted : int;  (** clock-drift injections that fired *)
  upgraded : int;  (** rolling-upgrade bounces that fired *)
  shed : int;  (** [Overloaded] replies the leaders pushed back *)
  wire_errors : string list;
      (** wire-codec oracle breaches: a message that failed the encode →
          decode roundtrip through the version negotiated for its link —
          empty unless the run models wire versions ([wire_versions]) *)
  watchdog_violations : int;
      (** online invariant checks ({!Grid_obs.Watchdog}) that fired inside
          the replicas during the run — the runtime mirror of the offline
          oracles above, asserted silent on green schedules *)
  watchdog_detail : string list;
      (** one line per violation, in firing order *)
}

let failed o =
  o.violations <> [] || o.durability <> [] || o.stale_reads <> []
  || o.lost_admitted <> [] || o.wire_errors <> []

module Make (S : Grid_paxos.Service_intf.S) = struct
  module R = Grid_paxos.Replica.Make (S)

  type mode =
    | Record of { nem : nemesis; frng : Rng.t }
    | Replay of (int, fault_event) Hashtbl.t

  type sched = {
    rng : Rng.t;  (* scheduling choices only; fault dice use frng *)
    base_seed : int;
    cfg : Grid_paxos.Config.t;
    replicas : R.t array;
    down : bool array;
    stores : Grid_paxos.Storage.t array;
    reads : (unit -> Grid_paxos.Storage.persisted) array;
    ctls : Grid_paxos.Storage.fault_ctl array;
    (* FIFO queue per directed pair, keyed (src, dst); client requests
       travel through these too, so the nemesis dice apply to them. *)
    channels : (int * int, msg Queue.t) Hashtbl.t;
    mutable timers : (int * timer * float) list;
    mutable vnow : float;
    (* Per-replica clock offset from virtual time, in ms. Timers stay on
       virtual time (they measure durations); only the [now] a replica
       reads — and hence its lease arithmetic — is skewed. *)
    skew : float array;
    mutable replies : reply list;
    mutable delivered : int;
    mutable timer_fires : int;
    mutable nstep : int;
    mutable mode : mode;
    mutable plan_rev : fault_event list;
    (* Wire-version model: [Some versions] runs every delivered message
       through the codec negotiated for its link — min of the endpoints'
       versions, clients always at latest — exactly what the TCP
       handshake would settle on. [None] skips codecs entirely (the
       pre-versioning behaviour, and the default). *)
    wire : int array option;
    (* step -> (victim, version): scripted upgrades, applied in Record
       mode; replay takes its [Upgrade_at]s from the plan instead. *)
    upgrades_tbl : (int, int * int) Hashtbl.t;
    mutable wire_errors : string list;
    mutable upgraded : int;
    (* instance -> (request key, encoded state after): the union of every
       committed update any incarnation of any replica has reported. *)
    oracle : (int, string * string) Hashtbl.t;
    (* (client, seq) of every request observed in a committed instance —
       the admitted-loss oracle checks acknowledged writes against it. *)
    committed_ids : (int * int, unit) Hashtbl.t;
    (* (client, seq) -> virtual time of the first final reply captured *)
    reply_times : (int * int, float) Hashtbl.t;
    mutable durability : string list;
    mutable crashes : int;
    mutable shed : int;  (* Overloaded replies observed *)
    (* Lifecycle spans recorded by the replicas, timed on [vnow] — fully
       deterministic for a given seed, which the trace tests exploit. *)
    obs : Grid_obs.Span.Recorder.t;
    (* Online invariant sink shared by every replica incarnation: the
       runtime mirror of the offline oracles below. Green schedules keep
       it silent; planted bugs (disable_dedup) fire it. *)
    wd : Grid_obs.Watchdog.t;
  }

  let record sched ev = sched.plan_rev <- ev :: sched.plan_rev

  let enqueue sched ~src ~dst msg =
    let q =
      match Hashtbl.find_opt sched.channels (src, dst) with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace sched.channels (src, dst) q;
        q
    in
    Queue.add msg q

  (* Remove and return the [n]-th element (0-based) of [q]. *)
  let take_nth q n =
    let n = min n (Queue.length q - 1) in
    let prefix = Queue.create () in
    for _ = 1 to n do
      Queue.add (Queue.take q) prefix
    done;
    let x = Queue.take q in
    Queue.transfer q prefix;
    Queue.transfer prefix q;
    x

  let exec_actions sched i actions =
    List.iter
      (function
        | Send { dst; msg } ->
          if node_is_client dst then begin
            match msg with
            (* [Retry] (redirect) and [Overloaded] (admission pushback)
               are not completions: the closed-loop client keeps the
               request pending and retransmits it. Only final statuses
               enter the observed-reply history. *)
            | Reply_msg { status = Overloaded _; _ } ->
              sched.shed <- sched.shed + 1
            | Reply_msg r when status_is_final r.status ->
              let key =
                (Grid_util.Ids.Client_id.to_int r.req.client, r.req.seq)
              in
              if not (Hashtbl.mem sched.reply_times key) then
                Hashtbl.replace sched.reply_times key sched.vnow;
              sched.replies <- r :: sched.replies
            | _ -> ()
          end
          else enqueue sched ~src:i ~dst msg
        | After { delay; timer } ->
          sched.timers <- (i, timer, sched.vnow +. delay) :: sched.timers
        | Note _ -> ())
      actions

  let mark_down sched i =
    if not sched.down.(i) then begin
      sched.down.(i) <- true;
      sched.crashes <- sched.crashes + 1;
      (* Its in-flight timers die with it. *)
      sched.timers <- List.filter (fun (j, _, _) -> j <> i) sched.timers
    end

  (* A torn crash arms the victim's storage: its next persist raises
     {!Grid_paxos.Storage.Crashed} and [dispatch] converts that into the
     actual crash — the record is lost and the step's actions never
     execute, exactly a death between write and fsync-ack. *)
  let crash_replica sched victim ~torn =
    if torn then sched.ctls.(victim).tear_rate <- 1.0
    else begin
      sched.ctls.(victim).tear_rate <- 0.0;
      mark_down sched victim
    end

  (* The wire model: encode with the link's negotiated codec, decode the
     bytes back, deliver the decoded message. A roundtrip failure is an
     oracle breach (the codecs must be lossless for every reachable
     message) and the message is dropped, as the transport drops a
     corrupt frame; retransmission decides liveness from there. *)
  let wire_roundtrip sched ~src ~dst msg =
    match sched.wire with
    | None -> Some msg
    | Some w ->
      let version_of n =
        if node_is_client n then Grid_paxos.Wire_codec.latest_version else w.(n)
      in
      let v = min (version_of src) (version_of dst) in
      let module W =
        (val Grid_paxos.Wire_codec.of_version_exn v : Grid_codec.Wire_intf.WIRE
           with type msg = msg)
      in
      (match W.decode (W.encode msg) with
      | Stdlib.Ok m -> Some m
      | Stdlib.Error e ->
        sched.wire_errors <-
          Printf.sprintf "step %d, %d -> %d (%s over v%d): %s" sched.nstep src
            dst (msg_kind msg) v
            (Grid_codec.Wire_intf.decode_error_to_string e)
          :: sched.wire_errors;
        None)

  let dispatch sched i input =
    if not sched.down.(i) then
      match R.handle sched.replicas.(i) ~now:(sched.vnow +. sched.skew.(i)) input with
      | actions -> exec_actions sched i actions
      | exception Grid_paxos.Storage.Crashed ->
        sched.ctls.(i).tear_rate <- 0.0;
        mark_down sched i

  (* ---------------------------------------------------------------- *)
  (* Durability oracle                                                 *)

  let merge_history sched replica history =
    List.iter
      (fun (instance, reqs, state) ->
        List.iter
          (fun (r : request) ->
            Hashtbl.replace sched.committed_ids
              (Grid_util.Ids.Client_id.to_int r.id.client, r.id.seq)
              ())
          reqs;
        let key = Agreement.request_key reqs in
        match Hashtbl.find_opt sched.oracle instance with
        | None -> Hashtbl.replace sched.oracle instance (key, state)
        | Some (k0, s0) ->
          if not (String.equal k0 key && String.equal s0 state) then
            sched.durability <-
              Printf.sprintf
                "replica %d committed a different value for instance %d than \
                 previously observed"
                replica instance
              :: sched.durability)
      history

  let refresh_oracle sched =
    Array.iteri
      (fun i r -> merge_history sched i (R.committed_updates r))
      sched.replicas

  (* Rebuild [back] from its persisted image — true crash-consistent
     recovery, unlike an in-place [R.restart] which would keep whatever
     the in-memory object happened to hold. The reloaded state must match
     the committed prefix the group observed: that is the durability
     invariant the nemesis exists to attack. *)
  let revive sched back =
    refresh_oracle sched;
    sched.ctls.(back).tear_rate <- 0.0;
    let r =
      R.create ~cfg:sched.cfg ~id:back ~seed:(sched.base_seed + back)
        ~storage:sched.stores.(back) ~obs:sched.obs ~watchdog:sched.wd ()
    in
    R.load r (sched.reads.(back) ());
    sched.replicas.(back) <- r;
    merge_history sched back (R.committed_updates r);
    let cp = R.commit_point r in
    if cp > 0 then begin
      match Hashtbl.find_opt sched.oracle cp with
      | Some (_, st) ->
        if not (String.equal st (S.encode_state (R.state r))) then
          sched.durability <-
            Printf.sprintf
              "replica %d recovered a state at instance %d that differs from \
               the committed one"
              back cp
            :: sched.durability
      | None ->
        sched.durability <-
          Printf.sprintf
            "replica %d recovered to commit point %d, which was never observed \
             committed"
            back cp
          :: sched.durability
    end;
    (* Messages queued toward it while down are lost (TCP reset). *)
    Hashtbl.iter (fun (_, dst) q -> if dst = back then Queue.clear q) sched.channels;
    sched.down.(back) <- false;
    exec_actions sched back (R.restart r ~now:(sched.vnow +. sched.skew.(back)))

  (* A rolling upgrade bounces the victim — crash-consistent restart
     under a binary that speaks [version]. An already-down victim just
     has its version changed; it picks it up when it recovers. *)
  let apply_upgrade sched ~victim ~version =
    record sched (Upgrade_at { step = sched.nstep; victim; version });
    sched.upgraded <- sched.upgraded + 1;
    (match sched.wire with Some w -> w.(victim) <- version | None -> ());
    if not sched.down.(victim) then begin
      crash_replica sched victim ~torn:false;
      revive sched victim
    end

  (* ---------------------------------------------------------------- *)
  (* Scheduling                                                        *)

  let deliverable_pairs sched =
    Hashtbl.fold
      (fun (src, dst) q acc ->
        if (not (Queue.is_empty q)) && not sched.down.(dst) then (src, dst) :: acc
        else acc)
      sched.channels []
    |> List.sort compare

  (* Crash/recovery decision for this step; [true] if it consumed the
     step. Recording draws from the fault RNG; replay consults the plan
     and rolls no dice, leaving the scheduling stream aligned. *)
  let nemesis_step sched ~max_down =
    let down_count =
      Array.fold_left (fun n d -> if d then n + 1 else n) 0 sched.down
    in
    match sched.mode with
    | Record _ when Hashtbl.mem sched.upgrades_tbl sched.nstep ->
      (* Scripted rolling upgrades fire at their exact step, ahead of the
         dice, so a recorded plan replays them from its [Upgrade_at]s. *)
      let victim, version = Hashtbl.find sched.upgrades_tbl sched.nstep in
      apply_upgrade sched ~victim ~version;
      true
    | Record { nem; frng }
      when nem.drift_prob > 0.0 && Rng.float frng 1.0 < nem.drift_prob ->
      (* The drift dice roll only when drift is enabled, so existing
         seeds and recorded plans replay unchanged. *)
      let victim = Rng.int frng sched.cfg.n in
      let offset_ms = Rng.float frng (2.0 *. nem.drift_max_ms) -. nem.drift_max_ms in
      record sched (Drift_at { step = sched.nstep; victim; offset_ms });
      sched.skew.(victim) <- offset_ms;
      true
    | Record { nem; frng } when nem.crash_prob > 0.0 ->
      let roll = Rng.float frng 1.0 in
      if roll < nem.crash_prob && down_count < max_down then begin
        let live =
          List.filter
            (fun i -> not sched.down.(i))
            (Grid_paxos.Config.replica_ids sched.cfg)
        in
        match live with
        | [] -> false
        | _ ->
          let victim = Rng.pick_list frng live in
          let torn = nem.torn_frac > 0.0 && Rng.float frng 1.0 < nem.torn_frac in
          record sched (Crash_at { step = sched.nstep; victim; torn });
          crash_replica sched victim ~torn;
          true
      end
      else if roll < 2.0 *. nem.crash_prob && down_count > 0 then begin
        let dead =
          List.filter
            (fun i -> sched.down.(i))
            (Grid_paxos.Config.replica_ids sched.cfg)
        in
        match dead with
        | [] -> false
        | _ ->
          let back = Rng.pick_list frng dead in
          record sched (Recover_at { step = sched.nstep; victim = back });
          revive sched back;
          true
      end
      else false
    | Record _ -> false
    | Replay tbl -> (
      (* Best effort under shrinking: an event whose precondition no
         longer holds (victim already down / already up) is skipped. *)
      match Hashtbl.find_opt tbl sched.nstep with
      | Some (Crash_at { victim; torn; _ }) when not sched.down.(victim) ->
        record sched (Crash_at { step = sched.nstep; victim; torn });
        crash_replica sched victim ~torn;
        true
      | Some (Recover_at { victim; _ }) when sched.down.(victim) ->
        record sched (Recover_at { step = sched.nstep; victim });
        revive sched victim;
        true
      | Some (Drift_at { victim; offset_ms; _ }) ->
        record sched (Drift_at { step = sched.nstep; victim; offset_ms });
        sched.skew.(victim) <- offset_ms;
        true
      | Some (Upgrade_at { victim; version; _ }) ->
        apply_upgrade sched ~victim ~version;
        true
      | _ -> false)

  (* One scheduling step: a nemesis event, a message delivery (possibly
     reordered within its channel, possibly duplicated), or a timer
     firing. Weights bias toward delivery so runs make progress. *)
  let step sched ~max_down =
    if nemesis_step sched ~max_down then true
    else begin
      let pairs = deliverable_pairs sched in
      let timers = sched.timers in
      let deliver () =
        match pairs with
        | [] -> false
        | _ ->
          let src, dst = Rng.pick_list sched.rng pairs in
          let q = Hashtbl.find sched.channels (src, dst) in
          let msg =
            match sched.mode with
            | Record { nem; frng } ->
              if
                Queue.length q >= 2
                && nem.reorder_prob > 0.0
                && Rng.float frng 1.0 < nem.reorder_prob
              then begin
                let depth = 1 + Rng.int frng (Queue.length q - 1) in
                record sched (Reorder_at { step = sched.nstep; depth });
                take_nth q depth
              end
              else Queue.take q
            | Replay tbl -> (
              match Hashtbl.find_opt tbl sched.nstep with
              | Some (Reorder_at { depth; _ }) when Queue.length q >= 2 ->
                record sched (Reorder_at { step = sched.nstep; depth });
                take_nth q depth
              | _ -> Queue.take q)
          in
          (* Duplication re-enqueues the message at the channel's tail: a
             retransmitted copy that arrives again later. *)
          (match sched.mode with
          | Record { nem; frng } ->
            if nem.dup_prob > 0.0 && Rng.float frng 1.0 < nem.dup_prob then begin
              record sched (Duplicate_at { step = sched.nstep });
              Queue.add msg q
            end
          | Replay tbl -> (
            match Hashtbl.find_opt tbl sched.nstep with
            | Some (Duplicate_at _) ->
              record sched (Duplicate_at { step = sched.nstep });
              Queue.add msg q
            | _ -> ()));
          (match wire_roundtrip sched ~src ~dst msg with
          | Some msg ->
            sched.delivered <- sched.delivered + 1;
            dispatch sched dst (Receive { src; msg })
          | None -> ());
          true
      in
      let fire () =
        let live = List.filter (fun (i, _, _) -> not sched.down.(i)) timers in
        match live with
        | [] -> false
        | _ ->
          let ((i, timer, due) as chosen) = Rng.pick_list sched.rng live in
          sched.timers <- List.filter (fun t -> t != chosen) sched.timers;
          sched.vnow <- Float.max sched.vnow due;
          sched.timer_fires <- sched.timer_fires + 1;
          dispatch sched i (Timer timer);
          true
      in
      (* Prefer delivering a message 3:1 over firing a timer. *)
      if pairs <> [] && (timers = [] || Rng.int sched.rng 4 < 3) then deliver ()
      else if fire () then true
      else deliver ()
    end

  (* ---------------------------------------------------------------- *)
  (* Runs                                                              *)

  let run_mode ?(obs = Grid_obs.Span.Recorder.disabled) ~seed ~steps ~max_down
      ~meta_drop_prob ~disable_dedup ~cfg_tweak ~requests ~wire_versions
      ~upgrades ~mode () =
    let rng = Rng.of_int seed in
    let cfg : Grid_paxos.Config.t =
      cfg_tweak (Grid_paxos.Config.make ~n:3 ~record_history:true ~disable_dedup ())
    in
    let wire =
      match wire_versions with
      | None -> if upgrades = [] then None else Some (Array.make cfg.n 1)
      | Some vs ->
        if Array.length vs <> cfg.n then
          invalid_arg "Mcheck: wire_versions must list one version per replica";
        Array.iter
          (fun v ->
            if Grid_paxos.Wire_codec.of_version v = None then
              invalid_arg (Printf.sprintf "Mcheck: unknown wire version %d" v))
          vs;
        Some (Array.copy vs)
    in
    let upgrades_tbl = Hashtbl.create (List.length upgrades) in
    List.iter
      (fun (step, victim, version) ->
        if victim < 0 || victim >= cfg.n then
          invalid_arg "Mcheck: upgrade victim out of range";
        if Grid_paxos.Wire_codec.of_version version = None then
          invalid_arg (Printf.sprintf "Mcheck: unknown wire version %d" version);
        Hashtbl.replace upgrades_tbl step (victim, version))
      upgrades;
    let stores = Array.make cfg.n (Grid_paxos.Storage.null ()) in
    let reads =
      Array.make cfg.n (fun () ->
          {
            Grid_paxos.Storage.promised = Ballot.zero;
            entries = [];
            commit_point = 0;
            snapshot = None;
          })
    in
    let ctls =
      Array.init cfg.n (fun _ ->
          { Grid_paxos.Storage.tear_rate = 0.0; drop_rate = 0.0;
            drop_meta_only = true; torn = 0; dropped = 0 })
    in
    for i = 0 to cfg.n - 1 do
      let mem, read = Grid_paxos.Storage.memory () in
      let store, ctl =
        Grid_paxos.Storage.faulty
          ~rng:(Rng.of_int ((seed * 31) + i))
          ~drop_rate:meta_drop_prob ~drop_meta_only:true mem
      in
      stores.(i) <- store;
      reads.(i) <- read;
      ctls.(i) <- ctl
    done;
    let wd_detail = ref [] in
    let wd =
      Grid_obs.Watchdog.create
        ~on_violation:(fun ~check ~detail ->
          wd_detail := (check ^ ": " ^ detail) :: !wd_detail)
        ()
    in
    let sched =
      {
        rng;
        base_seed = seed;
        cfg;
        replicas =
          Array.init cfg.n (fun i ->
              R.create ~cfg ~id:i ~seed:(seed + i) ~storage:stores.(i) ~obs
                ~watchdog:wd ());
        down = Array.make cfg.n false;
        stores;
        reads;
        ctls;
        channels = Hashtbl.create 32;
        timers = [];
        vnow = 0.0;
        skew = Array.make cfg.n 0.0;
        replies = [];
        delivered = 0;
        timer_fires = 0;
        nstep = 0;
        mode;
        plan_rev = [];
        wire;
        upgrades_tbl;
        wire_errors = [];
        upgraded = 0;
        oracle = Hashtbl.create 64;
        committed_ids = Hashtbl.create 64;
        reply_times = Hashtbl.create 32;
        durability = [];
        crashes = 0;
        shed = 0;
        obs;
        wd;
      }
    in
    Array.iteri (fun i r -> exec_actions sched i (R.bootstrap r)) sched.replicas;
    (* Clients are closed-loop: each client's requests carry increasing
       sequence numbers and the next is only injected after the previous
       one was answered (deduplication assumes exactly this). Injection
       and retransmission points are scheduling choices, and the requests
       travel through the same schedulable channels as protocol messages,
       so the nemesis can duplicate and reorder them too. *)
    let per_client : (int, request Queue.t) Hashtbl.t = Hashtbl.create 8 in
    let seq_counters : (int, int) Hashtbl.t = Hashtbl.create 8 in
    (* Stale-read oracle bookkeeping: every request's payload by id, and
       for each read the highest instance the group had committed when the
       read was first issued (its visibility watermark). *)
    let payloads : (int * int, string) Hashtbl.t = Hashtbl.create 16 in
    let rtypes : (int * int, rtype) Hashtbl.t = Hashtbl.create 16 in
    let read_marks : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
    (* Admission oracles: virtual time of each request's first injection. *)
    let issue_times : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
    let oracle_max () = Hashtbl.fold (fun i _ m -> max i m) sched.oracle 0 in
    List.iter
      (fun (client, rtype, payload) ->
        let seq = 1 + Option.value ~default:0 (Hashtbl.find_opt seq_counters client) in
        Hashtbl.replace seq_counters client seq;
        Hashtbl.replace payloads (client, seq) payload;
        Hashtbl.replace rtypes (client, seq) rtype;
        let id =
          Grid_util.Ids.Request_id.make
            ~client:(Grid_util.Ids.Client_id.of_int client)
            ~seq
        in
        let q =
          match Hashtbl.find_opt per_client client with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace per_client client q;
            q
        in
        Queue.add { id; rtype; payload; trace = no_trace } q)
      requests;
    let absorb_replies () =
      List.iter
        (fun (r : reply) ->
          match Hashtbl.find_opt per_client (Grid_util.Ids.Client_id.to_int r.req.client) with
          | Some q when not (Queue.is_empty q) ->
            let head = Queue.peek q in
            if head.id.seq = r.req.seq then ignore (Queue.take q)
          | _ -> ())
        sched.replies
    in
    let pending_count () =
      absorb_replies ();
      Hashtbl.fold (fun _ q acc -> acc + Queue.length q) per_client 0
    in
    let inject () =
      absorb_replies ();
      let heads =
        Hashtbl.fold
          (fun _ q acc -> if Queue.is_empty q then acc else Queue.peek q :: acc)
          per_client []
      in
      match heads with
      | [] -> false
      | _ ->
        let r = Rng.pick_list sched.rng heads in
        let key = (Grid_util.Ids.Client_id.to_int r.id.client, r.id.seq) in
        if not (Hashtbl.mem issue_times key) then
          Hashtbl.replace issue_times key sched.vnow;
        (* The watermark is set at the read's first injection; later
           retransmissions of the same pending request don't move it. *)
        if r.rtype = Read && not (Hashtbl.mem read_marks key) then begin
          refresh_oracle sched;
          Hashtbl.replace read_marks key (oracle_max ())
        end;
        for i = 0 to cfg.n - 1 do
          enqueue sched ~src:(client_node r.id.client) ~dst:i (Client_req r)
        done;
        true
    in
    for _ = 1 to steps do
      sched.nstep <- sched.nstep + 1;
      if pending_count () > 0 && Rng.int sched.rng 10 = 0 then ignore (inject ())
      else ignore (step sched ~max_down)
    done;
    (* Drain: the nemesis stops, everyone is disarmed and recovered, and
       we keep injecting unanswered requests and scheduling until all are
       answered or the budget runs out. *)
    sched.mode <- Record { nem = no_faults; frng = Rng.of_int seed };
    Array.iter
      (fun ctl ->
        ctl.Grid_paxos.Storage.tear_rate <- 0.0;
        ctl.drop_rate <- 0.0)
      sched.ctls;
    for i = 0 to cfg.n - 1 do
      if sched.down.(i) then revive sched i
    done;
    let budget = ref (steps * 10) in
    while !budget > 0 && pending_count () > 0 do
      decr budget;
      sched.nstep <- sched.nstep + 1;
      if Rng.int sched.rng 20 = 0 then ignore (inject ())
      else ignore (step sched ~max_down)
    done;
    let all_replied = pending_count () = 0 in
    refresh_oracle sched;
    (* Stale-read oracle: the first reply a client saw for each read must
       equal that read evaluated on some committed state at or after the
       read's watermark — i.e. the read reflects every write committed
       before it was issued. Sound for deterministic read results (all
       built-in services); the leased fast path must not weaken this. *)
    let stale_reads =
      let first : (int * int, reply) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (r : reply) ->
          let key = (Grid_util.Ids.Client_id.to_int r.req.client, r.req.seq) in
          if not (Hashtbl.mem first key) then Hashtbl.replace first key r)
        (List.rev sched.replies);
      let max_i = oracle_max () in
      let read_rng = Rng.of_int seed in
      let result_on st op =
        S.encode_result (S.apply ~rng:read_rng ~now:sched.vnow st op).S.result
      in
      Hashtbl.fold
        (fun ((client, seq) as key) w acc ->
          match Hashtbl.find_opt first key with
          | None -> acc
          | Some r when r.status <> Ok -> acc
          | Some r ->
            let op = S.decode_op (Hashtbl.find payloads key) in
            let matches i =
              if i = 0 then String.equal r.payload (result_on (S.initial ()) op)
              else
                match Hashtbl.find_opt sched.oracle i with
                | None -> false
                | Some (_, st) -> String.equal r.payload (result_on (S.decode_state st) op)
            in
            let ok = ref false in
            for i = w to max_i do
              if (not !ok) && matches i then ok := true
            done;
            if !ok then acc
            else
              Printf.sprintf
                "client %d seq %d: read reply matches no committed state at or \
                 after its watermark (instance %d)"
                client seq w
              :: acc)
        read_marks []
      |> List.sort compare
    in
    (* Admitted-loss oracle: a write (or txn commit) acknowledged [Ok]
       was admitted past the shedding gate and promised durable — it must
       appear in some committed instance of the union oracle. A shed
       request never gets an [Ok], so overload cannot mask a loss. *)
    let lost_admitted =
      let first : (int * int, reply) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (r : reply) ->
          let key = (Grid_util.Ids.Client_id.to_int r.req.client, r.req.seq) in
          if not (Hashtbl.mem first key) then Hashtbl.replace first key r)
        (List.rev sched.replies);
      Hashtbl.fold
        (fun ((client, seq) as key) (r : reply) acc ->
          let is_write =
            match Hashtbl.find_opt rtypes key with
            | Some (Write | Txn_commit _) -> true
            | _ -> false
          in
          if is_write && r.status = Ok && not (Hashtbl.mem sched.committed_ids key)
          then
            Printf.sprintf
              "client %d seq %d: write acknowledged Ok but never observed \
               committed by any replica"
              client seq
            :: acc
          else acc)
        first []
      |> List.sort compare
    in
    (* Bounded-admitted-latency oracle input: first-injection to first
       final reply, per completed request, in completion order. *)
    let admitted_latencies =
      Hashtbl.fold
        (fun key done_at acc ->
          match Hashtbl.find_opt issue_times key with
          | Some issued -> (done_at, done_at -. issued) :: acc
          | None -> acc)
        sched.reply_times []
      |> List.sort compare
      |> List.map snd
      |> Array.of_list
    in
    let histories = Array.map R.committed_updates sched.replicas in
    let plan = List.rev sched.plan_rev in
    let count p = List.length (List.filter p plan) in
    {
      replies = List.rev sched.replies;
      violations = Agreement.check histories;
      durability = List.rev sched.durability;
      stale_reads;
      lost_admitted;
      admitted_latencies;
      committed = Array.map R.commit_point sched.replicas;
      delivered = sched.delivered;
      timer_fires = sched.timer_fires;
      all_replied;
      plan;
      crashes = sched.crashes;
      torn_persists =
        Array.fold_left (fun n c -> n + c.Grid_paxos.Storage.torn) 0 sched.ctls;
      meta_dropped =
        Array.fold_left (fun n c -> n + c.Grid_paxos.Storage.dropped) 0 sched.ctls;
      duplicated = count (function Duplicate_at _ -> true | _ -> false);
      reordered = count (function Reorder_at _ -> true | _ -> false);
      drifted = count (function Drift_at _ -> true | _ -> false);
      upgraded = sched.upgraded;
      shed = sched.shed;
      wire_errors = List.rev sched.wire_errors;
      watchdog_violations = Grid_obs.Watchdog.violations sched.wd;
      watchdog_detail = List.rev !wd_detail;
    }

  (* Typed request triple: the class comes from [S.classify] and the
     payload from [S.encode_op], so callers never build wire strings. *)
  let request client op =
    ( client,
      (match S.classify op with `Read -> Read | `Write -> Write),
      S.encode_op op )

  let explore ?obs ?(seed = 1) ?(steps = 5_000) ?(max_down = 1) ?(nemesis = no_faults)
      ?(disable_dedup = false) ?(cfg_tweak = Fun.id) ?(requests = [])
      ?wire_versions ?(upgrades = []) () =
    run_mode ?obs ~seed ~steps ~max_down ~meta_drop_prob:nemesis.meta_drop_prob
      ~disable_dedup ~cfg_tweak ~requests ~wire_versions ~upgrades
      ~mode:(Record { nem = nemesis; frng = Rng.of_int (seed lxor 0x6e656d) })
      ()

  let replay ?obs ?(seed = 1) ?(steps = 5_000) ?(max_down = 1) ?(meta_drop_prob = 0.0)
      ?(disable_dedup = false) ?(cfg_tweak = Fun.id) ?(requests = [])
      ?wire_versions ~plan () =
    let tbl = Hashtbl.create (List.length plan) in
    List.iter (fun ev -> Hashtbl.replace tbl (fault_step ev) ev) plan;
    run_mode ?obs ~seed ~steps ~max_down ~meta_drop_prob ~disable_dedup ~cfg_tweak
      ~requests ~wire_versions ~upgrades:[] ~mode:(Replay tbl) ()

  let run ?obs ?(seed = 1) ?(steps = 5_000) ?(crash_prob = 0.0) ?(max_down = 1)
      ?cfg_tweak ?(requests = []) () =
    explore ?obs ~seed ~steps ~max_down
      ~nemesis:{ no_faults with crash_prob }
      ?cfg_tweak ~requests ()

  (* Shrink a failing run to a minimal plan: greedily drop events, keeping
     any removal after which the (deterministic) replay still fails. *)
  let shrink ?(seed = 1) ?(steps = 5_000) ?(max_down = 1) ?(meta_drop_prob = 0.0)
      ?(disable_dedup = false) ?(cfg_tweak = Fun.id) ?(requests = [])
      ?wire_versions ~plan () =
    let still_fails p =
      failed
        (replay ~seed ~steps ~max_down ~meta_drop_prob ~disable_dedup ~cfg_tweak
           ~requests ?wire_versions ~plan:p ())
    in
    shrink_plan ~still_fails plan
end
