(** Safety checker for the core agreement property of the protocol
    (§3.3): for every consensus instance, all replicas that learn a
    decision learn the {e same} ⟨request batch, state⟩ tuple, and each
    replica applies decisions in increasing instance order.

    Works on the [committed_updates] histories that replicas record when
    {!Grid_paxos.Config.t.record_history} is set. Holes in a single
    replica's history are legal — they correspond to prefixes learned via
    snapshot installation. *)

type violation =
  | Value_mismatch of { instance : int; replica_a : int; replica_b : int }
      (** two replicas committed different request batches for one
          instance *)
  | State_mismatch of { instance : int; replica_a : int; replica_b : int }
      (** same requests but diverged states — the failure mode of classic
          Multi-Paxos under nondeterminism *)
  | Order of { replica : int; instance : int }
      (** a replica applied commits out of instance order *)
  | Duplicate_commit of {
      replica : int;
      request : string;
      instance_a : int;
      instance_b : int;
    }
      (** one request committed in two different instances — exactly-once
          is broken (the failure mode of a missing dedup table) *)

val pp_violation : Format.formatter -> violation -> unit

val request_key : Grid_paxos.Types.request list -> string
(** Canonical comparison key for a request batch (used by the agreement
    check itself and by the model checker's durability oracle). *)

val check :
  (int * Grid_paxos.Types.request list * string) list array -> violation list
(** [check histories] where [histories.(r)] is replica [r]'s
    [committed_updates]: per committed instance, the request batch and
    the encoded service state after applying it. Returns all violations
    found (empty = the histories agree). *)
