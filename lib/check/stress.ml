(** The nemesis stress harness: many seeded model-checker schedules with
    the full cross-layer fault mix — crashes (clean and torn-persist),
    metadata loss, message duplication and reordering — asserting
    agreement, durability, and client-visible linearizability on each,
    and shrinking any failing schedule to a minimal fault plan.

    Used by [bin/stress.exe] (CLI) and [test/test_stress.ml] (tier). *)

module Rng = Grid_util.Rng
module Lin = Linearizability
module Counter = Grid_services.Counter
module Kv = Grid_services.Kv_store
open Grid_paxos.Types

type service = Counter_service | Kv_service

let service_name = function Counter_service -> "counter" | Kv_service -> "kv"

(* Defaults chosen so a few hundred schedules exercise every fault kind
   while each schedule still commits a useful amount of work. *)
let default_nemesis =
  {
    Mcheck.crash_prob = 0.002;
    torn_frac = 0.3;
    dup_prob = 0.03;
    reorder_prob = 0.03;
    meta_drop_prob = 0.05;
    drift_prob = 0.0;
    drift_max_ms = 0.0;
  }

(* The lease tier adds clock drift on top of the default fault mix; the
   stale-read oracle then checks the leased fast path end to end. *)
let lease_nemesis = { default_nemesis with drift_prob = 0.005; drift_max_ms = 2.0 }

(* The overload tier doubles the crash rate and keeps duplication and
   reordering: shed requests and their backoff retransmissions must
   survive leader churn without losing an acknowledged write. *)
let overload_nemesis = { default_nemesis with Mcheck.crash_prob = 0.004 }

type failure = {
  seed : int;
  service : service;
  reasons : string list;
  plan : Mcheck.plan;  (** the fault plan of the failing run *)
  shrunk : Mcheck.plan option;  (** minimal still-failing plan, if shrunk *)
}

type summary = {
  schedules : int;
  failures : failure list;
  unreplied : int;  (** schedules where the drain left requests unanswered *)
  crashes : int;
  torn_persists : int;
  meta_dropped : int;
  duplicated : int;
  reordered : int;
  drifted : int;
  shed : int;  (** [Overloaded] pushbacks across all schedules *)
  admitted_p99_max : float;
      (** worst per-schedule p99 of admitted-request latency (virtual ms);
          [0.] when no schedule completed a request *)
  delivered : int;
  replies : int;
  watchdog_violations : int;
      (** online invariant checks that fired inside the replicas across the
          batch — zero on green runs *)
}

let empty_summary =
  {
    schedules = 0;
    failures = [];
    unreplied = 0;
    crashes = 0;
    torn_persists = 0;
    meta_dropped = 0;
    duplicated = 0;
    reordered = 0;
    drifted = 0;
    shed = 0;
    admitted_p99_max = 0.0;
    delivered = 0;
    replies = 0;
    watchdog_violations = 0;
  }

let admitted_p99 (o : Mcheck.outcome) =
  if Array.length o.admitted_latencies = 0 then 0.0
  else Grid_util.Stats.percentile o.admitted_latencies 99.0

let add_outcome summary (o : Mcheck.outcome) failure =
  {
    schedules = summary.schedules + 1;
    failures =
      (match failure with Some f -> f :: summary.failures | None -> summary.failures);
    unreplied = (summary.unreplied + if o.all_replied then 0 else 1);
    crashes = summary.crashes + o.crashes;
    torn_persists = summary.torn_persists + o.torn_persists;
    meta_dropped = summary.meta_dropped + o.meta_dropped;
    duplicated = summary.duplicated + o.duplicated;
    reordered = summary.reordered + o.reordered;
    drifted = summary.drifted + o.drifted;
    shed = summary.shed + o.shed;
    admitted_p99_max = Float.max summary.admitted_p99_max (admitted_p99 o);
    delivered = summary.delivered + o.delivered;
    replies = summary.replies + List.length o.replies;
    watchdog_violations = summary.watchdog_violations + o.watchdog_violations;
  }

(* ------------------------------------------------------------------ *)
(* Workloads and linearizability histories                             *)

(* A retransmitted request may be answered more than once; the client
   keeps the first reply. Retry redirects and Overloaded pushbacks are
   not completions and never enter the history. *)
let first_replies replies =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (r : reply) ->
      let key = (r.req.client, r.req.seq) in
      if (not (status_is_final r.status)) || Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    replies

(* The [seq]-th (1-based) request of [client], in workload order. *)
let nth_request_of requests ~client ~seq =
  let rec find i = function
    | [] -> None
    | (c, rt, payload) :: rest ->
      if c = client then if i = seq - 1 then Some (rt, payload) else find (i + 1) rest
      else find i rest
  in
  find 0 requests

(* Build a linearizability history from the first replies: per-client
   program order is encoded through invocation windows (requests of one
   client are sequential), cross-client operations overlap fully. *)
let history_of_replies ~op_of ~result_of requests replies =
  List.filter_map
    (fun (r : reply) ->
      let client = Grid_util.Ids.Client_id.to_int r.req.client in
      match nth_request_of requests ~client ~seq:r.req.seq with
      | None -> None
      | Some (rt, payload) ->
        Option.map
          (fun op ->
            let base = Float.of_int (r.req.seq * 10) in
            {
              Lin.client;
              op;
              result = result_of r.payload;
              invoked_at = base;
              responded_at = base +. 1000.0;
            })
          (op_of rt payload))
    (first_replies replies)

let counter_requests rng =
  let reqs = ref [] in
  for client = 1 to 3 do
    for _ = 1 to 3 do
      let r =
        if Rng.int rng 4 = 0 then (client, Read, Counter.encode_op Counter.Get)
        else (client, Write, Counter.encode_op (Counter.Add (1 + Rng.int rng 9)))
      in
      reqs := r :: !reqs
    done
  done;
  List.rev !reqs

let counter_lin_ok requests replies =
  let op_of rt payload =
    match rt with
    | Read -> Some Lin.Counter_model.Get
    | Write -> (
      match Counter.decode_op payload with
      | Counter.Add n -> Some (Lin.Counter_model.Add n)
      | Counter.Get -> Some Lin.Counter_model.Get)
    | _ -> None
  in
  Lin.Counter.check
    (history_of_replies ~op_of ~result_of:Counter.decode_result requests replies)

let kv_keys = [| "alpha"; "beta"; "gamma" |]

let kv_requests rng =
  let reqs = ref [] in
  for client = 1 to 3 do
    for _ = 1 to 3 do
      let key = kv_keys.(Rng.int rng (Array.length kv_keys)) in
      let r =
        match Rng.int rng 5 with
        | 0 -> (client, Read, Kv.encode_op (Kv.Get key))
        | 1 -> (client, Write, Kv.encode_op (Kv.Del key))
        | _ ->
          ( client,
            Write,
            Kv.encode_op (Kv.Put { key; value = Printf.sprintf "v%d" (Rng.int rng 100) })
          )
      in
      reqs := r :: !reqs
    done
  done;
  List.rev !reqs

(* Overload tier workload: more clients and a write-heavy mix than the
   default counter workload, so small admission windows actually fill,
   shed, and force the backoff/readmission path. *)
let overload_requests rng =
  let reqs = ref [] in
  for client = 1 to 4 do
    for _ = 1 to 4 do
      let r =
        if Rng.int rng 5 = 0 then (client, Read, Counter.encode_op Counter.Get)
        else (client, Write, Counter.encode_op (Counter.Add (1 + Rng.int rng 9)))
      in
      reqs := r :: !reqs
    done
  done;
  List.rev !reqs

let kv_lin_ok requests replies =
  let op_of _rt payload =
    match Kv.decode_op payload with
    | Kv.Put { key; value } -> Some (Lin.Kv_model.Put (key, value))
    | Kv.Get key -> Some (Lin.Kv_model.Get key)
    | Kv.Del key -> Some (Lin.Kv_model.Del key)
    | _ -> None
  in
  let result_of payload =
    match Kv.decode_result payload with
    | Kv.Unit -> Lin.Kv_model.Ok
    | Kv.Value v -> Lin.Kv_model.Found v
    | Kv.Cas_ok _ | Kv.Count _ -> Lin.Kv_model.Ok
  in
  Lin.Kv.check (history_of_replies ~op_of ~result_of requests replies)

(* ------------------------------------------------------------------ *)
(* One schedule                                                        *)

module type SPEC = sig
  module S : Grid_paxos.Service_intf.S

  val which : service
  val gen_requests : Rng.t -> (int * rtype * string) list
  val lin_ok : (int * rtype * string) list -> reply list -> bool
end

module Harness (Spec : SPEC) = struct
  module MC = Mcheck.Make (Spec.S)

  let requests_for ~seed = Spec.gen_requests (Rng.of_int ((seed * 7919) + 17))

  let reasons_of ?(admitted_p99_bound_ms = infinity) requests (o : Mcheck.outcome) =
    let agreement =
      List.map (Format.asprintf "%a" Agreement.pp_violation) o.violations
    in
    let bounded_latency =
      let p99 = admitted_p99 o in
      if p99 > admitted_p99_bound_ms then
        [
          Printf.sprintf
            "admitted-request p99 latency %.1f ms exceeds the %.1f ms bound" p99
            admitted_p99_bound_ms;
        ]
      else []
    in
    let lin =
      if o.all_replied && not (Spec.lin_ok requests o.replies) then
        [ "non-linearizable client history" ]
      else []
    in
    (* The online watchdogs mirror the offline oracles; a firing check on
       a schedule the oracles also flag strengthens the diagnosis, and one
       the oracles miss is a failure in its own right. *)
    let watchdog =
      if o.watchdog_violations = 0 then []
      else
        [
          Printf.sprintf "watchdog: %d online violation(s): %s"
            o.watchdog_violations
            (String.concat "; " o.watchdog_detail);
        ]
    in
    agreement @ o.durability @ o.stale_reads @ o.lost_admitted @ bounded_latency
    @ lin @ watchdog

  (* Run one seeded schedule; on failure optionally shrink its fault plan
     to a minimal one that still fails (under deterministic replay with
     the same seed and workload). *)
  let run_one ?obs ?(steps = 1_200) ?(nemesis = default_nemesis)
      ?(disable_dedup = false) ?(cfg_tweak = Fun.id) ?admitted_p99_bound_ms
      ?(shrink = true) ~seed () =
    let requests = requests_for ~seed in
    let o =
      MC.explore ?obs ~seed ~steps ~nemesis ~disable_dedup ~cfg_tweak ~requests ()
    in
    match reasons_of ?admitted_p99_bound_ms requests o with
    | [] -> (o, None)
    | reasons ->
      let still_fails plan =
        let r =
          MC.replay ~seed ~steps ~meta_drop_prob:nemesis.meta_drop_prob
            ~disable_dedup ~cfg_tweak ~requests ~plan ()
        in
        reasons_of ?admitted_p99_bound_ms requests r <> []
      in
      let shrunk =
        if shrink then Some (Mcheck.shrink_plan ~still_fails o.plan) else None
      in
      (o, Some { seed; service = Spec.which; reasons; plan = o.plan; shrunk })

  let replay_plan ?(steps = 1_200) ?(meta_drop_prob = 0.0)
      ?(disable_dedup = false) ?(cfg_tweak = Fun.id) ?admitted_p99_bound_ms ~seed
      ~plan () =
    let requests = requests_for ~seed in
    let o =
      MC.replay ~seed ~steps ~meta_drop_prob ~disable_dedup ~cfg_tweak ~requests
        ~plan ()
    in
    (o, reasons_of ?admitted_p99_bound_ms requests o)
end

module Counter_harness = Harness (struct
  module S = Grid_services.Counter

  let which = Counter_service
  let gen_requests = counter_requests
  let lin_ok = counter_lin_ok
end)

module Kv_harness = Harness (struct
  module S = Grid_services.Kv_store

  let which = Kv_service
  let gen_requests = kv_requests
  let lin_ok = kv_lin_ok
end)

(* The overload tier runs the counter service under a write-heavy
   workload with a deliberately tiny admission window, asserting — on top
   of the usual agreement/durability/linearizability oracles — that no
   acknowledged write is lost and that the p99 latency of admitted
   requests stays bounded while the leader sheds. *)
module Overload_harness = Harness (struct
  module S = Grid_services.Counter

  let which = Counter_service
  let gen_requests = overload_requests
  let lin_ok = counter_lin_ok
end)

let run_one ~service =
  match service with
  | Counter_service -> Counter_harness.run_one
  | Kv_service -> Kv_harness.run_one

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)

let run ?(services = [ Counter_service; Kv_service ]) ?(schedules = 200)
    ?(base_seed = 1) ?(steps = 1_200) ?(nemesis = default_nemesis)
    ?(disable_dedup = false) ?cfg_tweak ?(shrink = true) ?progress () =
  let n_services = max 1 (List.length services) in
  let summary = ref empty_summary in
  List.iteri
    (fun si service ->
      let share =
        (schedules / n_services) + if si < schedules mod n_services then 1 else 0
      in
      for k = 0 to share - 1 do
        let seed = base_seed + (k * n_services) + si in
        let o, failure =
          run_one ~service ~steps ~nemesis ~disable_dedup ?cfg_tweak ~shrink ~seed ()
        in
        summary := add_outcome !summary o failure;
        match progress with Some f -> f !summary | None -> ()
      done)
    services;
  { !summary with failures = List.rev !summary.failures }

(* The overload batch: every schedule runs with a bounded admission
   window, so leaders shed under the write-heavy workload while the
   nemesis crashes and duplicates around them. Both overload oracles
   (no-admitted-loss, bounded admitted p99) are armed on every run. *)
let run_overload ?(schedules = 200) ?(base_seed = 1) ?(steps = 1_400)
    ?(nemesis = overload_nemesis) ?(max_inflight = 2) ?(max_queue = 2)
    ?(admitted_p99_bound_ms = 120_000.0) ?(shrink = true) ?progress () =
  let cfg_tweak c = Grid_paxos.Config.make ~base:c ~max_inflight ~max_queue () in
  let summary = ref empty_summary in
  for k = 0 to schedules - 1 do
    let seed = base_seed + k in
    let o, failure =
      Overload_harness.run_one ~steps ~nemesis ~cfg_tweak ~admitted_p99_bound_ms
        ~shrink ~seed ()
    in
    summary := add_outcome !summary o failure;
    match progress with Some f -> f !summary | None -> ()
  done;
  { !summary with failures = List.rev !summary.failures }

let pp_failure ppf f =
  Format.fprintf ppf "@[<v2>seed %d (%s):@ %a@ plan: %a" f.seed
    (service_name f.service)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string)
    f.reasons Mcheck.pp_plan f.plan;
  (match f.shrunk with
  | Some p ->
    Format.fprintf ppf "@ shrunk (%d -> %d events): %a" (List.length f.plan)
      (List.length p) Mcheck.pp_plan p
  | None -> ());
  Format.fprintf ppf "@]"

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d schedules: %d failing, %d unreplied@ faults: %d crashes (%d torn \
     persists), %d metadata records dropped, %d duplicated, %d reordered, %d \
     clock drifts@ traffic: %d deliveries, %d replies@]"
    s.schedules (List.length s.failures) s.unreplied s.crashes s.torn_persists
    s.meta_dropped s.duplicated s.reordered s.drifted s.delivered s.replies;
  if s.shed > 0 then
    Format.fprintf ppf "@ overload: %d shed, admitted p99 <= %.1f ms" s.shed
      s.admitted_p99_max;
  if s.watchdog_violations > 0 then
    Format.fprintf ppf "@ watchdog: %d online violation(s)" s.watchdog_violations
