(* Cross-shard nemesis tier: seeded schedules over the sharded KV runtime
   driving 2PC transactions (DESIGN.md §16) against replica crashes,
   message duplication and reordering, and abandoned coordinators that a
   fresh client later recovers with presumed abort. Every schedule ends
   with per-group agreement ({!Agreement.check}) and the cross-shard
   atomicity/serializability oracle ({!Xshard.check}). *)

module M = Grid_shard.Multi.Make (Grid_services.Kv_store)
module Kv = Grid_services.Kv_store
module Partition = Grid_shard.Partition
module Rng = Grid_util.Rng
module Ids = Grid_util.Ids
module Engine = Grid_sim.Engine
module Network = Grid_sim.Network
module Scenario = Grid_runtime.Scenario
module Config = Grid_paxos.Config
module Types = Grid_paxos.Types

let shards = 3
let replicas = 3

type outcome = {
  o_seed : int;
  o_committed : int;  (* cross txns the live coordinator committed *)
  o_aborted : int;
  o_conflicted : int;
  o_abandoned : int;  (* coordinators parked mid-protocol *)
  o_recovered : int;  (* abandoned txns resolved by recovery *)
  o_singles : int;  (* single-shard requests completed alongside *)
  o_crashes : int;
  o_violations : string list;
}

let pp_outcome ppf o =
  Format.fprintf ppf
    "seed %d: %d committed, %d aborted, %d conflicted, %d abandoned (%d \
     recovered), %d singles, %d crashes%s"
    o.o_seed o.o_committed o.o_aborted o.o_conflicted o.o_abandoned o.o_recovered
    o.o_singles o.o_crashes
    (match o.o_violations with
    | [] -> ""
    | vs -> Printf.sprintf ", %d VIOLATIONS" (List.length vs))

(* A few keys owned by shard [s], so transactions can be aimed at a
   chosen set of groups. Small pools on purpose: contention is what
   exercises the conflict votes and the prepared locks. *)
let keys_for p s =
  let rec go i acc found =
    if found >= 4 then List.rev acc
    else
      let k = Printf.sprintf "x%d-%d" s i in
      if Partition.owner_of_key p ("kv/" ^ k) = s then go (i + 1) (k :: acc) (found + 1)
      else go (i + 1) acc found
  in
  Array.of_list (go 0 [] 0)

(* Drive a cross-shard transaction part-way by hand — per-shard branch
   ops, then prepares at a (possibly empty, possibly complete) subset of
   participants — and stop before any decision: an abandoned
   coordinator. [on_parked] fires once every submitted request has been
   answered, leaving the client's handles idle again. *)
let park_cross_txn t cl ~tid ~(shard_ops : (int * Kv.op) list) ~(prepare : int list)
    ~on_parked =
  let ops_pending = ref (List.length shard_ops) in
  let votes_pending = ref 0 in
  let phase = ref `Ops in
  let finish () =
    M.set_on_reply t cl (fun _ -> ());
    on_parked ()
  in
  let submit_prepares () =
    phase := `Votes;
    if prepare = [] then finish ()
    else begin
      votes_pending := List.length prepare;
      List.iter
        (fun s ->
          match M.submit_prepare t cl ~shard:s ~tid ~ops:1 with
          | `Submitted -> ()
          | `Busy -> invalid_arg "Xstress.park_cross_txn: busy handle")
        prepare
    end
  in
  M.set_on_reply t cl (fun (_ : Types.reply) ->
      match !phase with
      | `Ops ->
        decr ops_pending;
        if !ops_pending = 0 then submit_prepares ()
      | `Votes ->
        decr votes_pending;
        if !votes_pending = 0 then finish ());
  List.iter
    (fun (s, op) ->
      match M.submit_txn_op t cl ~shard:s ~tid op with
      | `Submitted -> ()
      | `Busy -> invalid_arg "Xstress.park_cross_txn: busy handle")
    shard_ops

let run_one ?(txns = 12) ?(singles_per_client = 15) ?(abandon_prob = 0.25)
    ?(crash_prob = 0.3) ~seed () : outcome =
  let rng = Rng.of_int (0x5eed + (seed * 7919)) in
  let cfg =
    Config.make ~n:replicas ~record_history:true ~suspicion_ms:60.0
      ~stability_ms:20.0 ()
  in
  let t =
    M.create ~seed ~cfg ~scenario:(Scenario.uniform ~n:replicas ()) ~route:Kv.route
      ~shards ()
  in
  let violations = ref [] in
  let violate fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  (match M.await_leaders t with
  | Some _ -> ()
  | None -> violate "no initial leaders");
  let net = M.network t in
  Network.set_duplicate_rate net 0.02;
  Network.set_reorder_rate net 0.05;
  let pool = Array.init shards (fun s -> keys_for (M.partition t) s) in
  let gen_op s =
    let key = Rng.pick rng pool.(s) in
    if Rng.bool rng then Kv.Put { key; value = Printf.sprintf "s%d" (Rng.int rng 100) }
    else Kv.Append { key; value = "+" }
  in
  (* Nemesis: at most one replica down at a time (any group still has a
     quorum), recovered a few hundred simulated ms later. *)
  let crashes = ref 0 in
  let down = ref None in
  let maybe_crash () =
    if !down = None && Rng.float rng 1.0 < crash_prob then begin
      let g = Rng.int rng shards and r = Rng.int rng replicas in
      down := Some (g, r);
      incr crashes;
      M.crash_replica t ~shard:g r;
      ignore
        (Engine.schedule (M.engine t)
           ~delay:(150.0 +. Rng.float rng 250.0)
           (fun () ->
             M.recover_replica t ~shard:g r;
             down := None))
    end
  in
  (* The coordinator chain: sequential cross-shard transactions, each
     either driven to its decision or abandoned mid-protocol and handed
     to a delayed recovery on a fresh logical client. *)
  let committed = ref 0
  and aborted = ref 0
  and conflicted = ref 0
  and abandoned = ref 0
  and recovered = ref 0 in
  let launched = ref 0 in
  let pending_recoveries = ref 0 in
  let next_client = ref 10 in
  let cl = M.add_client t ~id:0 () in
  let rec next_txn i =
    if i < txns then begin
      launched := i + 1;
      maybe_crash ();
      let order = [| 0; 1; 2 |] in
      Rng.shuffle rng order;
      let parts =
        List.sort Int.compare
          (Array.to_list (Array.sub order 0 (2 + Rng.int rng (shards - 1))))
      in
      let shard_ops = List.map (fun s -> (s, gen_op s)) parts in
      if Rng.float rng 1.0 < abandon_prob then begin
        incr abandoned;
        let tid = M.alloc_cross_tid t in
        let prepare = List.filter (fun _ -> Rng.bool rng) parts in
        park_cross_txn t cl ~tid ~shard_ops ~prepare ~on_parked:(fun () ->
            incr pending_recoveries;
            ignore
              (Engine.schedule (M.engine t)
                 ~delay:(80.0 +. Rng.float rng 150.0)
                 (fun () ->
                   let rcl = M.add_client t ~id:!next_client () in
                   incr next_client;
                   M.recover_cross_txn t rcl ~tid ~shards:parts
                     ~on_done:(fun (_ : M.xresult) ->
                       incr recovered;
                       decr pending_recoveries)));
            next_txn (i + 1))
      end
      else
        ignore
          (M.submit_cross_txn t cl ~ops:(List.map snd shard_ops)
             ~on_done:(fun res ->
               (match res with
               | M.X_committed -> incr committed
               | M.X_aborted -> incr aborted
               | M.X_conflict -> incr conflicted);
               next_txn (i + 1)))
    end
  in
  (* Concurrent single-shard traffic: two closed-loop clients hitting the
     same small key pools, so plain writes race the prepared locks. *)
  let singles_total = 2 * singles_per_client in
  let single_done = ref 0 in
  let start_single id =
    let scl = M.add_client t ~id () in
    let sent = ref 0 in
    let submit_next () =
      if !sent < singles_per_client then begin
        incr sent;
        let s = Rng.int rng shards in
        let op =
          if Rng.bool rng then gen_op s else Kv.Get (Rng.pick rng pool.(s))
        in
        match M.try_submit_op t scl op with
        | Ok _ -> ()
        | Error e ->
          Format.kasprintf invalid_arg "Xstress: single-shard submit: %a"
            M.pp_submit_error e
      end
    in
    M.set_on_reply t scl (fun _ ->
        incr single_done;
        submit_next ());
    submit_next ()
  in
  next_txn 0;
  start_single 1;
  start_single 2;
  let finished () =
    !launched = txns && !pending_recoveries = 0 && !single_done = singles_total
  in
  let horizon = M.now t +. 120_000.0 in
  while (not (finished ())) && M.now t < horizon do
    M.run_until t (M.now t +. 25.0)
  done;
  if not (finished ()) then
    violate "stalled: %d/%d txns launched, %d recoveries pending, %d/%d singles"
      !launched txns !pending_recoveries !single_done singles_total;
  (* Drain: heal everything and let every replica learn every commit. *)
  (match !down with
  | Some (g, r) ->
    (* Only restart a replica whose scheduled crash actually fired;
       recovering a live one would restart it and distort the drain. *)
    if not (M.Group.replica_up (M.group t g) r) then
      M.recover_replica t ~shard:g r;
    down := None
  | None -> ());
  Network.set_duplicate_rate net 0.0;
  Network.set_reorder_rate net 0.0;
  M.run_until t (M.now t +. 2_000.0);
  (* Oracles. *)
  let group_histories g =
    Array.init replicas (fun i ->
        M.Group.R.committed_updates (M.Group.replica (M.group t g) i))
  in
  let longest = Array.make shards [] in
  for g = 0 to shards - 1 do
    let hs = group_histories g in
    Array.iter
      (fun h -> if List.length h > List.length longest.(g) then longest.(g) <- h)
      hs;
    List.iter
      (fun v -> violate "group %d agreement: %a" g Agreement.pp_violation v)
      (Agreement.check hs);
    match M.Group.leader (M.group t g) with
    | Some l -> (
      match M.Group.R.prepared_txns (M.Group.replica (M.group t g) l) with
      | [] -> ()
      | tids ->
        violate "group %d leader still holds prepares [%s] after drain" g
          (String.concat "," (List.map string_of_int tids)))
    | None -> violate "group %d has no leader after drain" g
  done;
  let footprint_of payload =
    match Kv.decode_op payload with
    | op -> Kv.footprint op
    | exception _ -> [ "*" ]
  in
  List.iter
    (fun v -> violate "xshard: %a" Xshard.pp_violation v)
    (Xshard.check ~require_resolved:true ~is_cross_tid:M.is_cross_tid ~footprint_of
       longest);
  if M.watchdog t |> Grid_obs.Watchdog.violations > 0 then
    violate "watchdog: %d online-invariant violations"
      (Grid_obs.Watchdog.violations (M.watchdog t));
  {
    o_seed = seed;
    o_committed = !committed;
    o_aborted = !aborted;
    o_conflicted = !conflicted;
    o_abandoned = !abandoned;
    o_recovered = !recovered;
    o_singles = !single_done;
    o_crashes = !crashes;
    o_violations = List.rev !violations;
  }

type summary = {
  s_schedules : int;
  s_committed : int;
  s_aborted : int;
  s_conflicted : int;
  s_abandoned : int;
  s_recovered : int;
  s_crashes : int;
  s_failures : outcome list;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "%d schedules: %d committed, %d aborted, %d conflicted, %d abandoned (%d \
     recovered), %d crashes, %d failing"
    s.s_schedules s.s_committed s.s_aborted s.s_conflicted s.s_abandoned
    s.s_recovered s.s_crashes
    (List.length s.s_failures)

let run ?(schedules = 100) ?(base_seed = 1) ?txns ?singles_per_client
    ?abandon_prob ?crash_prob ?progress () =
  let acc =
    ref
      {
        s_schedules = 0;
        s_committed = 0;
        s_aborted = 0;
        s_conflicted = 0;
        s_abandoned = 0;
        s_recovered = 0;
        s_crashes = 0;
        s_failures = [];
      }
  in
  for i = 0 to schedules - 1 do
    let o =
      run_one ?txns ?singles_per_client ?abandon_prob ?crash_prob
        ~seed:(base_seed + i) ()
    in
    let s = !acc in
    acc :=
      {
        s_schedules = s.s_schedules + 1;
        s_committed = s.s_committed + o.o_committed;
        s_aborted = s.s_aborted + o.o_aborted;
        s_conflicted = s.s_conflicted + o.o_conflicted;
        s_abandoned = s.s_abandoned + o.o_abandoned;
        s_recovered = s.s_recovered + o.o_recovered;
        s_crashes = s.s_crashes + o.o_crashes;
        s_failures =
          (if o.o_violations = [] then s.s_failures else o :: s.s_failures);
      };
    match progress with Some f -> f !acc | None -> ()
  done;
  { !acc with s_failures = List.rev !acc.s_failures }

(* ------------------------------------------------------------------ *)
(* Elastic-resharding tier (DESIGN.md §17): seeded schedules that split
   and merge a live range back and forth between groups while
   closed-loop clients append uniquely tagged tokens across the moving
   keyspace, leaders of the migrating groups crash mid-protocol, and
   some coordinators park after FREEZE for presumed-abort recovery. The
   oracle: every acked append appears exactly once in the final owner's
   committed value — no lost and no double-executed acked write across
   any number of epoch changes. *)

module Reshard = Grid_shard.Reshard

type reshard_outcome = {
  r_seed : int;
  r_splits : int;  (* committed splits *)
  r_merges : int;  (* committed merges *)
  r_aborted : int;  (* transitions that ended R_aborted *)
  r_parked : int;  (* coordinators abandoned after FREEZE *)
  r_redirects : int;  (* transparent Wrong_epoch resubmissions *)
  r_acked : int;  (* acked appends the oracle verified *)
  r_xcommitted : int;  (* cross-shard txns committed across epochs *)
  r_xaborted : int;  (* cross-shard txns aborted or conflicted *)
  r_crashes : int;
  r_violations : string list;
}

let pp_reshard_outcome ppf o =
  Format.fprintf ppf
    "seed %d: %d splits, %d merges, %d aborted, %d parked, %d redirects, %d \
     acked, %d/%d xtxns, %d crashes%s"
    o.r_seed o.r_splits o.r_merges o.r_aborted o.r_parked o.r_redirects
    o.r_acked o.r_xcommitted
    (o.r_xcommitted + o.r_xaborted)
    o.r_crashes
    (match o.r_violations with
    | [] -> ""
    | vs -> Printf.sprintf ", %d VIOLATIONS" (List.length vs))

(* Cut points in footprint space: shard 0 owns [-inf,"kv/h"), shard 1
   ["kv/h","kv/p"), shard 2 ["kv/p",inf). Every transition moves
   ["kv/f","kv/h") out of (or back into) shard 0, so the "d"/"m"/"q"
   keys never move and the "f"/"g" keys migrate constantly. *)
let reshard_cuts = [ "kv/h"; "kv/p" ]
let reshard_cut = "kv/f"

let reshard_pool =
  [| "d0"; "d1"; "f0"; "f1"; "g0"; "g1"; "m0"; "m1"; "q0"; "q1" |]

let count_occurrences hay needle =
  let n = String.length needle and h = String.length hay in
  if n = 0 then 0
  else begin
    let c = ref 0 in
    for i = 0 to h - n do
      if String.sub hay i n = needle then incr c
    done;
    !c
  end

let run_reshard_one ?(steps = 6) ?(appends_per_client = 30) ?(park_prob = 0.2)
    ?(crash_prob = 0.35) ~seed () : reshard_outcome =
  let rng = Rng.of_int (0xe57a + (seed * 104729)) in
  let cfg =
    Config.make ~n:replicas ~record_history:true ~suspicion_ms:60.0
      ~stability_ms:20.0 ()
  in
  let t =
    M.create ~seed ~cfg ~scenario:(Scenario.uniform ~n:replicas ())
      ~route:Kv.route ~spec:(Partition.Range reshard_cuts) ~shards ()
  in
  let violations = ref [] in
  let violate fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  (match M.await_leaders t with
  | Some _ -> ()
  | None -> violate "no initial leaders");
  let net = M.network t in
  Network.set_duplicate_rate net 0.02;
  Network.set_reorder_rate net 0.05;
  (* Nemesis: crash the leader of a group participating in the starting
     transition; one replica down at a time so quorums survive. *)
  let crashes = ref 0 in
  let down = ref None in
  let maybe_crash_leader groups =
    if !down = None && Rng.float rng 1.0 < crash_prob then begin
      let g = List.nth groups (Rng.int rng (List.length groups)) in
      match M.Group.leader (M.group t g) with
      | None -> ()
      | Some r ->
        down := Some (g, r);
        incr crashes;
        ignore
          (Engine.schedule (M.engine t)
             ~delay:(Rng.float rng 60.0)
             (fun () -> M.crash_replica t ~shard:g r));
        ignore
          (Engine.schedule (M.engine t)
             ~delay:(200.0 +. Rng.float rng 300.0)
             (fun () ->
               M.recover_replica t ~shard:g r;
               down := None))
    end
  in
  (* The reshard chain: [steps] transitions, strictly sequential. Odd
     steps move the range back so splits always start from a clean cut
     list; the epoch floor mirrors Multi's internal one so parked (raw)
     freezes never reuse a burned epoch. *)
  let splits = ref 0
  and merges = ref 0
  and aborted = ref 0
  and parked = ref 0 in
  let steps_done = ref false in
  let split_active = ref false in
  let floor = ref 1 in
  let next_client = ref 100 in
  let coord = M.add_client t ~id:50 () in
  let attempt_epoch () = max (Partition.epoch (M.partition t) + 1) !floor in
  let rec next_step i =
    if i >= steps then steps_done := true
    else
      ignore
        (Engine.schedule (M.engine t)
           ~delay:(30.0 +. Rng.float rng 120.0)
           (fun () -> do_step i))
  and do_step i =
    if not !split_active then begin
      let target = 1 + Rng.int rng 2 in
      maybe_crash_leader [ 0; target ];
      if Rng.float rng 1.0 < park_prob then park_freeze i target
      else begin
        let e = attempt_epoch () in
        floor := e + 1;
        match
          M.split_shard t coord ~cut:reshard_cut ~target ~on_done:(fun r ->
              (match r with
              | M.R_committed ->
                incr splits;
                split_active := true
              | M.R_aborted _ -> incr aborted);
              next_step (i + 1))
        with
        | Ok () -> ()
        | Error e ->
          violate "split plan: %a" Partition.pp_reshard_error e;
          next_step (i + 1)
      end
    end
    else begin
      maybe_crash_leader [ 0; 1; 2 ];
      let e = attempt_epoch () in
      floor := e + 1;
      match
        M.merge_shards t coord ~cut:reshard_cut ~on_done:(fun r ->
            (match r with
            | M.R_committed ->
              incr merges;
              split_active := false
            | M.R_aborted _ -> incr aborted);
            next_step (i + 1))
      with
      | Ok () -> ()
      | Error e ->
        violate "merge plan: %a" Partition.pp_reshard_error e;
        next_step (i + 1)
    end
  and park_freeze i target =
    (* Abandoned coordinator: commit the FREEZE and vanish; a delayed
       presumed-abort recovery on a fresh client rolls it back and
       releases any writers blocked on the frozen range. *)
    match Reshard.split (M.partition t) ~cut:reshard_cut ~target with
    | Error e ->
      violate "park plan: %a" Partition.pp_reshard_error e;
      next_step (i + 1)
    | Ok o -> (
      let o =
        let e =
          match o with
          | Reshard.Trivial m -> Partition.epoch m
          | Reshard.Move p -> p.Reshard.pl_epoch
        in
        if e < !floor then Reshard.at_epoch o ~epoch:!floor else o
      in
      match o with
      | Reshard.Trivial _ -> next_step (i + 1)
      | Reshard.Move p ->
        let e = p.Reshard.pl_epoch in
        floor := e + 1;
        incr parked;
        let source = p.Reshard.pl_move.Partition.source in
        M.set_on_reply t coord (fun (_ : Types.reply) ->
            M.set_on_reply t coord (fun _ -> ());
            ignore
              (Engine.schedule (M.engine t)
                 ~delay:(60.0 +. Rng.float rng 150.0)
                 (fun () ->
                   let rcl = M.add_client t ~id:!next_client () in
                   incr next_client;
                   M.recover_reshard t rcl ~epoch:e ~source
                     ~target:p.Reshard.pl_move.Partition.target
                     ~on_done:(fun r ->
                       (match r with
                       | M.R_aborted _ -> incr aborted
                       | M.R_committed ->
                         incr splits;
                         split_active := true);
                       next_step (i + 1)))));
        (match
           M.submit_reshard t coord ~shard:source (Types.Reshard_freeze e)
             ~payload:p.Reshard.pl_freeze
         with
        | `Submitted -> ()
        | `Busy -> invalid_arg "Xstress.run_reshard: coordinator handle busy"))
  in
  (* Closed-loop appenders tagging every write with a unique token; the
     redirect wrapper hides Wrong_epoch from them, so an Ok reply is an
     ack whatever epoch finally served the request. *)
  let acked = ref [] in
  let clients = 3 in
  let appender_done = ref 0 in
  let appender_clients = ref [] in
  let start_appender idx =
    let scl = M.add_client t ~id:(10 + idx) () in
    appender_clients := scl :: !appender_clients;
    let sent = ref 0 in
    let cur = ref None in
    let submit_next () =
      if !sent >= appends_per_client then incr appender_done
      else begin
        incr sent;
        let key = Rng.pick rng reshard_pool in
        if Rng.float rng 1.0 < 0.2 then begin
          cur := None;
          match M.try_submit_op t scl (Kv.Get key) with
          | Ok _ -> ()
          | Error e ->
            Format.kasprintf invalid_arg "Xstress.run_reshard: get: %a"
              M.pp_submit_error e
        end
        else begin
          let token = Printf.sprintf "+%d.%d;" idx !sent in
          cur := Some (key, token);
          match M.try_submit_op t scl (Kv.Append { key; value = token }) with
          | Ok _ -> ()
          | Error e ->
            Format.kasprintf invalid_arg "Xstress.run_reshard: append: %a"
              M.pp_submit_error e
        end
      end
    in
    M.set_on_reply t scl (fun (r : Types.reply) ->
        (match !cur with
        | Some (key, token) when r.status = Types.Ok ->
          acked := (key, token) :: !acked
        | _ -> ());
        submit_next ());
    submit_next ()
  in
  (* Cross-shard transactions racing the migrations: each txn appends a
     unique token to a key inside the moving range plus one stable key
     in each of the other two groups, so every transaction spans the
     epoch boundary. The serializability checker runs over the drained
     histories, and an atomicity oracle counts each token at the final
     owners — exactly once on every key if the txn committed, zero
     times if it aborted, whatever the map looked like in between. *)
  let xtxn_moving = [| "f9"; "g9" |] in
  let xtxn_stable = [ "m9"; "q9" ] in
  let xtxns = 8 in
  let xtxn_results = ref [] in
  let x_committed = ref 0 and x_aborted = ref 0 in
  let xtxn_done = ref false in
  let xcl = M.add_client t ~id:7 () in
  let rec next_xtxn i =
    if i >= xtxns then xtxn_done := true
    else
      ignore
        (Engine.schedule (M.engine t)
           ~delay:(20.0 +. Rng.float rng 140.0)
           (fun () ->
             let mk = Rng.pick rng xtxn_moving in
             let token = Printf.sprintf "x%d;" i in
             let ops =
               List.map
                 (fun key -> Kv.Append { key; value = token })
                 (mk :: xtxn_stable)
             in
             ignore
               (M.submit_cross_txn t xcl ~ops ~on_done:(fun res ->
                    (match res with
                    | M.X_committed -> incr x_committed
                    | M.X_aborted | M.X_conflict -> incr x_aborted);
                    xtxn_results := (token, mk, res) :: !xtxn_results;
                    next_xtxn (i + 1)))))
  in
  next_step 0;
  next_xtxn 0;
  for i = 0 to clients - 1 do
    start_appender i
  done;
  let finished () =
    !steps_done && !appender_done = clients && !xtxn_done
  in
  let horizon = M.now t +. 180_000.0 in
  while (not (finished ())) && M.now t < horizon do
    M.run_until t (M.now t +. 25.0)
  done;
  if not (finished ()) then
    violate "stalled: steps_done=%b, %d/%d appenders finished, xtxns done=%b"
      !steps_done !appender_done clients !xtxn_done;
  (* Drain: heal, quiesce the network, let every replica learn every
     commit. *)
  (match !down with
  | Some (g, r) ->
    (* Only restart a replica whose scheduled crash actually fired;
       recovering a live one would restart it and distort the drain. *)
    if not (M.Group.replica_up (M.group t g) r) then
      M.recover_replica t ~shard:g r;
    down := None
  | None -> ());
  Network.set_duplicate_rate net 0.0;
  Network.set_reorder_rate net 0.0;
  M.run_until t (M.now t +. 2_000.0);
  (* Oracles: per-group agreement, cross-epoch serializability, the
     watchdog, exactly-once acked appends at the final owner, and
     all-or-nothing cross-shard transactions. *)
  let longest = Array.make shards [] in
  for g = 0 to shards - 1 do
    let hs =
      Array.init replicas (fun i ->
          M.Group.R.committed_updates (M.Group.replica (M.group t g) i))
    in
    Array.iter
      (fun h -> if List.length h > List.length longest.(g) then longest.(g) <- h)
      hs;
    List.iter
      (fun v -> violate "group %d agreement: %a" g Agreement.pp_violation v)
      (Agreement.check hs);
    match M.Group.leader (M.group t g) with
    | Some l ->
      let r = M.Group.replica (M.group t g) l in
      if M.Group.R.reshard_phase r <> "idle" then
        violate "group %d still %s after drain" g (M.Group.R.reshard_phase r)
    | None ->
      let buf = Buffer.create 64 in
      for i = 0 to replicas - 1 do
        let r = M.Group.replica (M.group t g) i in
        Buffer.add_string buf
          (Printf.sprintf "[r%d up=%b ldr=%b bal=%s view=%s phase=%s cp=%d] " i
             (M.Group.replica_up (M.group t g) i)
             (M.Group.R.is_leader r)
             (Format.asprintf "%a" Types.Ballot.pp (M.Group.R.ballot r))
             (match M.Group.R.leader_view r with
             | Some v -> string_of_int v
             | None -> "-")
             (M.Group.R.reshard_phase r)
             (M.Group.R.commit_point r))
      done;
      violate "group %d has no leader after drain: %s" g (Buffer.contents buf)
  done;
  (* The cross-shard serializability checker, extended across epochs:
     the histories it reads interleave 2PC prepares/decisions with
     reshard markers and the imported slice, and must still present
     every cross-tid with a single consistent decision. *)
  let footprint_of payload =
    match Kv.decode_op payload with
    | op -> Kv.footprint op
    | exception _ -> [ "*" ]
  in
  List.iter
    (fun v -> violate "xshard: %a" Xshard.pp_violation v)
    (Xshard.check ~require_resolved:true ~is_cross_tid:M.is_cross_tid
       ~footprint_of longest);
  (* Atomicity across the epoch change: a committed txn's token appears
     exactly once on every key it touched at that key's *final* owner —
     in particular the moving key must not have been lost in a slice
     shipped under a prepared lock — and an aborted txn's on none. *)
  let count_at key token =
    let g = Partition.owner_of_key (M.partition t) ("kv/" ^ key) in
    let state =
      match M.Group.leader (M.group t g) with
      | Some l -> M.Group.R.state (M.Group.replica (M.group t g) l)
      | None -> M.Group.R.state (M.Group.replica (M.group t g) 0)
    in
    count_occurrences (Option.value ~default:"" (Kv.find state key)) token
  in
  List.iter
    (fun (token, mk, res) ->
      let expect = match res with M.X_committed -> 1 | _ -> 0 in
      List.iter
        (fun key ->
          let n = count_at key token in
          if n <> expect then
            violate "cross txn %s (%a) applied %d times (want %d) on %s"
              token M.pp_xresult res n expect key)
        (mk :: xtxn_stable))
    !xtxn_results;
  List.iter
    (fun (key, token) ->
      let g = Partition.owner_of_key (M.partition t) ("kv/" ^ key) in
      let state =
        match M.Group.leader (M.group t g) with
        | Some l -> M.Group.R.state (M.Group.replica (M.group t g) l)
        | None -> M.Group.R.state (M.Group.replica (M.group t g) 0)
      in
      let v = Option.value ~default:"" (Kv.find state key) in
      let n = count_occurrences v token in
      if n <> 1 then
        violate "acked append %s on %s applied %d times at final owner %d"
          token key n g)
    !acked;
  if M.watchdog t |> Grid_obs.Watchdog.violations > 0 then
    violate "watchdog: %d online-invariant violations"
      (Grid_obs.Watchdog.violations (M.watchdog t));
  {
    r_seed = seed;
    r_splits = !splits;
    r_merges = !merges;
    r_aborted = !aborted;
    r_parked = !parked;
    r_redirects =
      List.fold_left (fun acc cl -> acc + M.redirect_count cl) 0
        !appender_clients;
    r_acked = List.length !acked;
    r_xcommitted = !x_committed;
    r_xaborted = !x_aborted;
    r_crashes = !crashes;
    r_violations = List.rev !violations;
  }

type reshard_summary = {
  rs_schedules : int;
  rs_splits : int;
  rs_merges : int;
  rs_aborted : int;
  rs_parked : int;
  rs_redirects : int;
  rs_acked : int;
  rs_xcommitted : int;
  rs_xaborted : int;
  rs_crashes : int;
  rs_failures : reshard_outcome list;
}

let pp_reshard_summary ppf s =
  Format.fprintf ppf
    "%d schedules: %d splits, %d merges, %d aborted, %d parked, %d redirects, \
     %d acked writes verified, %d/%d cross txns committed, %d crashes, %d \
     failing"
    s.rs_schedules s.rs_splits s.rs_merges s.rs_aborted s.rs_parked
    s.rs_redirects s.rs_acked s.rs_xcommitted
    (s.rs_xcommitted + s.rs_xaborted)
    s.rs_crashes
    (List.length s.rs_failures)

let run_reshard ?(schedules = 100) ?(base_seed = 1) ?steps ?appends_per_client
    ?park_prob ?crash_prob ?progress () =
  let acc =
    ref
      {
        rs_schedules = 0;
        rs_splits = 0;
        rs_merges = 0;
        rs_aborted = 0;
        rs_parked = 0;
        rs_redirects = 0;
        rs_acked = 0;
        rs_xcommitted = 0;
        rs_xaborted = 0;
        rs_crashes = 0;
        rs_failures = [];
      }
  in
  for i = 0 to schedules - 1 do
    let o =
      run_reshard_one ?steps ?appends_per_client ?park_prob ?crash_prob
        ~seed:(base_seed + i) ()
    in
    let s = !acc in
    acc :=
      {
        rs_schedules = s.rs_schedules + 1;
        rs_splits = s.rs_splits + o.r_splits;
        rs_merges = s.rs_merges + o.r_merges;
        rs_aborted = s.rs_aborted + o.r_aborted;
        rs_parked = s.rs_parked + o.r_parked;
        rs_redirects = s.rs_redirects + o.r_redirects;
        rs_acked = s.rs_acked + o.r_acked;
        rs_xcommitted = s.rs_xcommitted + o.r_xcommitted;
        rs_xaborted = s.rs_xaborted + o.r_xaborted;
        rs_crashes = s.rs_crashes + o.r_crashes;
        rs_failures =
          (if o.r_violations = [] then s.rs_failures else o :: s.rs_failures);
      };
    match progress with Some f -> f !acc | None -> ()
  done;
  { !acc with rs_failures = List.rev !acc.rs_failures }
