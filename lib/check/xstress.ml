(* Cross-shard nemesis tier: seeded schedules over the sharded KV runtime
   driving 2PC transactions (DESIGN.md §16) against replica crashes,
   message duplication and reordering, and abandoned coordinators that a
   fresh client later recovers with presumed abort. Every schedule ends
   with per-group agreement ({!Agreement.check}) and the cross-shard
   atomicity/serializability oracle ({!Xshard.check}). *)

module M = Grid_shard.Multi.Make (Grid_services.Kv_store)
module Kv = Grid_services.Kv_store
module Partition = Grid_shard.Partition
module Rng = Grid_util.Rng
module Ids = Grid_util.Ids
module Engine = Grid_sim.Engine
module Network = Grid_sim.Network
module Scenario = Grid_runtime.Scenario
module Config = Grid_paxos.Config
module Types = Grid_paxos.Types

let shards = 3
let replicas = 3

type outcome = {
  o_seed : int;
  o_committed : int;  (* cross txns the live coordinator committed *)
  o_aborted : int;
  o_conflicted : int;
  o_abandoned : int;  (* coordinators parked mid-protocol *)
  o_recovered : int;  (* abandoned txns resolved by recovery *)
  o_singles : int;  (* single-shard requests completed alongside *)
  o_crashes : int;
  o_violations : string list;
}

let pp_outcome ppf o =
  Format.fprintf ppf
    "seed %d: %d committed, %d aborted, %d conflicted, %d abandoned (%d \
     recovered), %d singles, %d crashes%s"
    o.o_seed o.o_committed o.o_aborted o.o_conflicted o.o_abandoned o.o_recovered
    o.o_singles o.o_crashes
    (match o.o_violations with
    | [] -> ""
    | vs -> Printf.sprintf ", %d VIOLATIONS" (List.length vs))

(* A few keys owned by shard [s], so transactions can be aimed at a
   chosen set of groups. Small pools on purpose: contention is what
   exercises the conflict votes and the prepared locks. *)
let keys_for p s =
  let rec go i acc found =
    if found >= 4 then List.rev acc
    else
      let k = Printf.sprintf "x%d-%d" s i in
      if Partition.owner_of_key p ("kv/" ^ k) = s then go (i + 1) (k :: acc) (found + 1)
      else go (i + 1) acc found
  in
  Array.of_list (go 0 [] 0)

(* Drive a cross-shard transaction part-way by hand — per-shard branch
   ops, then prepares at a (possibly empty, possibly complete) subset of
   participants — and stop before any decision: an abandoned
   coordinator. [on_parked] fires once every submitted request has been
   answered, leaving the client's handles idle again. *)
let park_cross_txn t cl ~tid ~(shard_ops : (int * Kv.op) list) ~(prepare : int list)
    ~on_parked =
  let ops_pending = ref (List.length shard_ops) in
  let votes_pending = ref 0 in
  let phase = ref `Ops in
  let finish () =
    M.set_on_reply t cl (fun _ -> ());
    on_parked ()
  in
  let submit_prepares () =
    phase := `Votes;
    if prepare = [] then finish ()
    else begin
      votes_pending := List.length prepare;
      List.iter
        (fun s ->
          match M.submit_prepare t cl ~shard:s ~tid ~ops:1 with
          | `Submitted -> ()
          | `Busy -> invalid_arg "Xstress.park_cross_txn: busy handle")
        prepare
    end
  in
  M.set_on_reply t cl (fun (_ : Types.reply) ->
      match !phase with
      | `Ops ->
        decr ops_pending;
        if !ops_pending = 0 then submit_prepares ()
      | `Votes ->
        decr votes_pending;
        if !votes_pending = 0 then finish ());
  List.iter
    (fun (s, op) ->
      match M.submit_txn_op t cl ~shard:s ~tid op with
      | `Submitted -> ()
      | `Busy -> invalid_arg "Xstress.park_cross_txn: busy handle")
    shard_ops

let run_one ?(txns = 12) ?(singles_per_client = 15) ?(abandon_prob = 0.25)
    ?(crash_prob = 0.3) ~seed () : outcome =
  let rng = Rng.of_int (0x5eed + (seed * 7919)) in
  let cfg =
    Config.make ~n:replicas ~record_history:true ~suspicion_ms:60.0
      ~stability_ms:20.0 ()
  in
  let t =
    M.create ~seed ~cfg ~scenario:(Scenario.uniform ~n:replicas ()) ~route:Kv.route
      ~shards ()
  in
  let violations = ref [] in
  let violate fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  (match M.await_leaders t with
  | Some _ -> ()
  | None -> violate "no initial leaders");
  let net = M.network t in
  Network.set_duplicate_rate net 0.02;
  Network.set_reorder_rate net 0.05;
  let pool = Array.init shards (fun s -> keys_for (M.partition t) s) in
  let gen_op s =
    let key = Rng.pick rng pool.(s) in
    if Rng.bool rng then Kv.Put { key; value = Printf.sprintf "s%d" (Rng.int rng 100) }
    else Kv.Append { key; value = "+" }
  in
  (* Nemesis: at most one replica down at a time (any group still has a
     quorum), recovered a few hundred simulated ms later. *)
  let crashes = ref 0 in
  let down = ref None in
  let maybe_crash () =
    if !down = None && Rng.float rng 1.0 < crash_prob then begin
      let g = Rng.int rng shards and r = Rng.int rng replicas in
      down := Some (g, r);
      incr crashes;
      M.crash_replica t ~shard:g r;
      ignore
        (Engine.schedule (M.engine t)
           ~delay:(150.0 +. Rng.float rng 250.0)
           (fun () ->
             M.recover_replica t ~shard:g r;
             down := None))
    end
  in
  (* The coordinator chain: sequential cross-shard transactions, each
     either driven to its decision or abandoned mid-protocol and handed
     to a delayed recovery on a fresh logical client. *)
  let committed = ref 0
  and aborted = ref 0
  and conflicted = ref 0
  and abandoned = ref 0
  and recovered = ref 0 in
  let launched = ref 0 in
  let pending_recoveries = ref 0 in
  let next_client = ref 10 in
  let cl = M.add_client t ~id:0 () in
  let rec next_txn i =
    if i < txns then begin
      launched := i + 1;
      maybe_crash ();
      let order = [| 0; 1; 2 |] in
      Rng.shuffle rng order;
      let parts =
        List.sort Int.compare
          (Array.to_list (Array.sub order 0 (2 + Rng.int rng (shards - 1))))
      in
      let shard_ops = List.map (fun s -> (s, gen_op s)) parts in
      if Rng.float rng 1.0 < abandon_prob then begin
        incr abandoned;
        let tid = M.alloc_cross_tid t in
        let prepare = List.filter (fun _ -> Rng.bool rng) parts in
        park_cross_txn t cl ~tid ~shard_ops ~prepare ~on_parked:(fun () ->
            incr pending_recoveries;
            ignore
              (Engine.schedule (M.engine t)
                 ~delay:(80.0 +. Rng.float rng 150.0)
                 (fun () ->
                   let rcl = M.add_client t ~id:!next_client () in
                   incr next_client;
                   M.recover_cross_txn t rcl ~tid ~shards:parts
                     ~on_done:(fun (_ : M.xresult) ->
                       incr recovered;
                       decr pending_recoveries)));
            next_txn (i + 1))
      end
      else
        ignore
          (M.submit_cross_txn t cl ~ops:(List.map snd shard_ops)
             ~on_done:(fun res ->
               (match res with
               | M.X_committed -> incr committed
               | M.X_aborted -> incr aborted
               | M.X_conflict -> incr conflicted);
               next_txn (i + 1)))
    end
  in
  (* Concurrent single-shard traffic: two closed-loop clients hitting the
     same small key pools, so plain writes race the prepared locks. *)
  let singles_total = 2 * singles_per_client in
  let single_done = ref 0 in
  let start_single id =
    let scl = M.add_client t ~id () in
    let sent = ref 0 in
    let submit_next () =
      if !sent < singles_per_client then begin
        incr sent;
        let s = Rng.int rng shards in
        let op =
          if Rng.bool rng then gen_op s else Kv.Get (Rng.pick rng pool.(s))
        in
        match M.try_submit_op t scl op with
        | Ok _ -> ()
        | Error e ->
          Format.kasprintf invalid_arg "Xstress: single-shard submit: %a"
            M.pp_submit_error e
      end
    in
    M.set_on_reply t scl (fun _ ->
        incr single_done;
        submit_next ());
    submit_next ()
  in
  next_txn 0;
  start_single 1;
  start_single 2;
  let finished () =
    !launched = txns && !pending_recoveries = 0 && !single_done = singles_total
  in
  let horizon = M.now t +. 120_000.0 in
  while (not (finished ())) && M.now t < horizon do
    M.run_until t (M.now t +. 25.0)
  done;
  if not (finished ()) then
    violate "stalled: %d/%d txns launched, %d recoveries pending, %d/%d singles"
      !launched txns !pending_recoveries !single_done singles_total;
  (* Drain: heal everything and let every replica learn every commit. *)
  (match !down with
  | Some (g, r) ->
    M.recover_replica t ~shard:g r;
    down := None
  | None -> ());
  Network.set_duplicate_rate net 0.0;
  Network.set_reorder_rate net 0.0;
  M.run_until t (M.now t +. 2_000.0);
  (* Oracles. *)
  let group_histories g =
    Array.init replicas (fun i ->
        M.Group.R.committed_updates (M.Group.replica (M.group t g) i))
  in
  let longest = Array.make shards [] in
  for g = 0 to shards - 1 do
    let hs = group_histories g in
    Array.iter
      (fun h -> if List.length h > List.length longest.(g) then longest.(g) <- h)
      hs;
    List.iter
      (fun v -> violate "group %d agreement: %a" g Agreement.pp_violation v)
      (Agreement.check hs);
    match M.Group.leader (M.group t g) with
    | Some l -> (
      match M.Group.R.prepared_txns (M.Group.replica (M.group t g) l) with
      | [] -> ()
      | tids ->
        violate "group %d leader still holds prepares [%s] after drain" g
          (String.concat "," (List.map string_of_int tids)))
    | None -> violate "group %d has no leader after drain" g
  done;
  let footprint_of payload =
    match Kv.decode_op payload with
    | op -> Kv.footprint op
    | exception _ -> [ "*" ]
  in
  List.iter
    (fun v -> violate "xshard: %a" Xshard.pp_violation v)
    (Xshard.check ~require_resolved:true ~is_cross_tid:M.is_cross_tid ~footprint_of
       longest);
  if M.watchdog t |> Grid_obs.Watchdog.violations > 0 then
    violate "watchdog: %d online-invariant violations"
      (Grid_obs.Watchdog.violations (M.watchdog t));
  {
    o_seed = seed;
    o_committed = !committed;
    o_aborted = !aborted;
    o_conflicted = !conflicted;
    o_abandoned = !abandoned;
    o_recovered = !recovered;
    o_singles = !single_done;
    o_crashes = !crashes;
    o_violations = List.rev !violations;
  }

type summary = {
  s_schedules : int;
  s_committed : int;
  s_aborted : int;
  s_conflicted : int;
  s_abandoned : int;
  s_recovered : int;
  s_crashes : int;
  s_failures : outcome list;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "%d schedules: %d committed, %d aborted, %d conflicted, %d abandoned (%d \
     recovered), %d crashes, %d failing"
    s.s_schedules s.s_committed s.s_aborted s.s_conflicted s.s_abandoned
    s.s_recovered s.s_crashes
    (List.length s.s_failures)

let run ?(schedules = 100) ?(base_seed = 1) ?txns ?singles_per_client
    ?abandon_prob ?crash_prob ?progress () =
  let acc =
    ref
      {
        s_schedules = 0;
        s_committed = 0;
        s_aborted = 0;
        s_conflicted = 0;
        s_abandoned = 0;
        s_recovered = 0;
        s_crashes = 0;
        s_failures = [];
      }
  in
  for i = 0 to schedules - 1 do
    let o =
      run_one ?txns ?singles_per_client ?abandon_prob ?crash_prob
        ~seed:(base_seed + i) ()
    in
    let s = !acc in
    acc :=
      {
        s_schedules = s.s_schedules + 1;
        s_committed = s.s_committed + o.o_committed;
        s_aborted = s.s_aborted + o.o_aborted;
        s_conflicted = s.s_conflicted + o.o_conflicted;
        s_abandoned = s.s_abandoned + o.o_abandoned;
        s_recovered = s.s_recovered + o.o_recovered;
        s_crashes = s.s_crashes + o.o_crashes;
        s_failures =
          (if o.o_violations = [] then s.s_failures else o :: s.s_failures);
      };
    match progress with Some f -> f !acc | None -> ()
  done;
  { !acc with s_failures = List.rev !acc.s_failures }
