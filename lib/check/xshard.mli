(** Cross-shard transaction checker: atomicity and serializability of
    2PC over per-group T-Paxos (DESIGN.md §16), from the groups'
    committed histories alone.

    Feed it one committed history per group — normally the longest
    replica [committed_updates] of each group. Per-replica agreement
    {e within} a group is {!Agreement.check}'s job; this checker reads
    the cross-group protocol: every participant that logged a prepare
    gets exactly one decision, all participants decide the same way, and
    the per-group decision orders of conflicting committed transactions
    embed into one serial order. *)

type violation =
  | Mixed_decision of { tid : int; committed_in : int list; aborted_in : int list }
      (** atomicity broken: the transaction committed in some groups and
          logged an abort decision in others *)
  | Duplicate_decision of { tid : int; group : int; instances : int list }
      (** a group committed more than one decision instance for one tid —
          the decision tombstones failed under duplicate delivery *)
  | Unresolved_prepare of { tid : int; group : int; instance : int }
      (** a committed prepare with no committed decision in that group;
          reported only under [require_resolved] (use after a drain that
          completed or recovered every transaction) *)
  | Cycle of { tids : int list }
      (** serializability broken: committed cross-shard transactions
          whose per-group decision orders form a cycle over conflicting
          footprints *)

val pp_violation : Format.formatter -> violation -> unit

val check :
  ?require_resolved:bool ->
  is_cross_tid:(int -> bool) ->
  footprint_of:(string -> string list) ->
  (int * Grid_paxos.Types.request list * string) list array ->
  violation list
(** [check histories] where [histories.(g)] is group [g]'s committed
    history (instance, batch, encoded state). [is_cross_tid] classifies
    transaction ids ({!Grid_shard.Multi.Make.is_cross_tid});
    [footprint_of] decodes an op payload to its partition/conflict keys
    (e.g. [Kv_store.footprint ∘ decode_op], wildcard ["*"] honoured).
    Empty result = the cross-shard history is atomic and serializable. *)
