(** Cross-shard nemesis tier: seeded schedules over the sharded KV
    runtime driving 2PC transactions (DESIGN.md §16) against replica
    crashes, message duplication/reordering, contending single-shard
    traffic, and abandoned coordinators later resolved by presumed-abort
    recovery on a fresh client. Each schedule ends with per-group
    {!Agreement.check} plus the cross-shard atomicity/serializability
    oracle {!Xshard.check} over the drained histories. *)

type outcome = {
  o_seed : int;
  o_committed : int;  (** cross txns the live coordinator committed *)
  o_aborted : int;
  o_conflicted : int;
  o_abandoned : int;  (** coordinators parked mid-protocol *)
  o_recovered : int;  (** abandoned txns resolved by recovery *)
  o_singles : int;  (** single-shard requests completed alongside *)
  o_crashes : int;
  o_violations : string list;  (** empty iff the schedule passed *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val run_one :
  ?txns:int ->
  ?singles_per_client:int ->
  ?abandon_prob:float ->
  ?crash_prob:float ->
  seed:int ->
  unit ->
  outcome
(** One seeded schedule: 3 groups of 3 replicas, [txns] sequential
    cross-shard transactions over 2–3 groups each (default 12), two
    closed-loop single-shard clients ([singles_per_client] requests
    each, default 15) racing the same small key pools, duplication and
    reordering on every link, and at most one crashed replica at a time.
    With probability [abandon_prob] (default 0.25) a transaction's
    coordinator parks after its branch ops and a random subset of
    prepares; a delayed {!Grid_shard.Multi.Make.recover_cross_txn} on a
    fresh client resolves it. *)

type summary = {
  s_schedules : int;
  s_committed : int;
  s_aborted : int;
  s_conflicted : int;
  s_abandoned : int;
  s_recovered : int;
  s_crashes : int;
  s_failures : outcome list;  (** schedules with nonempty violations *)
}

val pp_summary : Format.formatter -> summary -> unit

val run :
  ?schedules:int ->
  ?base_seed:int ->
  ?txns:int ->
  ?singles_per_client:int ->
  ?abandon_prob:float ->
  ?crash_prob:float ->
  ?progress:(summary -> unit) ->
  unit ->
  summary
