(** Cross-shard nemesis tier: seeded schedules over the sharded KV
    runtime driving 2PC transactions (DESIGN.md §16) against replica
    crashes, message duplication/reordering, contending single-shard
    traffic, and abandoned coordinators later resolved by presumed-abort
    recovery on a fresh client. Each schedule ends with per-group
    {!Agreement.check} plus the cross-shard atomicity/serializability
    oracle {!Xshard.check} over the drained histories. *)

type outcome = {
  o_seed : int;
  o_committed : int;  (** cross txns the live coordinator committed *)
  o_aborted : int;
  o_conflicted : int;
  o_abandoned : int;  (** coordinators parked mid-protocol *)
  o_recovered : int;  (** abandoned txns resolved by recovery *)
  o_singles : int;  (** single-shard requests completed alongside *)
  o_crashes : int;
  o_violations : string list;  (** empty iff the schedule passed *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val run_one :
  ?txns:int ->
  ?singles_per_client:int ->
  ?abandon_prob:float ->
  ?crash_prob:float ->
  seed:int ->
  unit ->
  outcome
(** One seeded schedule: 3 groups of 3 replicas, [txns] sequential
    cross-shard transactions over 2–3 groups each (default 12), two
    closed-loop single-shard clients ([singles_per_client] requests
    each, default 15) racing the same small key pools, duplication and
    reordering on every link, and at most one crashed replica at a time.
    With probability [abandon_prob] (default 0.25) a transaction's
    coordinator parks after its branch ops and a random subset of
    prepares; a delayed {!Grid_shard.Multi.Make.recover_cross_txn} on a
    fresh client resolves it. *)

type summary = {
  s_schedules : int;
  s_committed : int;
  s_aborted : int;
  s_conflicted : int;
  s_abandoned : int;
  s_recovered : int;
  s_crashes : int;
  s_failures : outcome list;  (** schedules with nonempty violations *)
}

val pp_summary : Format.formatter -> summary -> unit

val run :
  ?schedules:int ->
  ?base_seed:int ->
  ?txns:int ->
  ?singles_per_client:int ->
  ?abandon_prob:float ->
  ?crash_prob:float ->
  ?progress:(summary -> unit) ->
  unit ->
  summary

(** {1 Elastic-resharding tier (DESIGN.md §17)}

    Seeded schedules that split and merge a live key range back and
    forth between groups while closed-loop clients append uniquely
    tagged tokens across the moving keyspace, leaders of the migrating
    groups crash mid-protocol, and some coordinators park after FREEZE
    for presumed-abort recovery. A coordinator also drives cross-shard
    transactions whose footprints straddle the moving range, so 2PC
    prepares race FREEZE markers. The oracles: every acked append
    appears exactly once in the final owner's committed value — no lost
    and no double-executed acked write across any number of epoch
    changes — every cross-shard transaction is all-or-nothing at the
    final owners of its keys, and {!Xshard.check} holds over the
    drained histories with reshard markers interleaved. *)

type reshard_outcome = {
  r_seed : int;
  r_splits : int;  (** committed splits *)
  r_merges : int;  (** committed merges *)
  r_aborted : int;  (** transitions that ended [R_aborted] *)
  r_parked : int;  (** coordinators abandoned after FREEZE *)
  r_redirects : int;  (** transparent [Wrong_epoch] resubmissions *)
  r_acked : int;  (** acked appends the oracle verified *)
  r_xcommitted : int;  (** cross-shard txns committed across epochs *)
  r_xaborted : int;  (** cross-shard txns aborted or conflicted *)
  r_crashes : int;
  r_violations : string list;  (** empty iff the schedule passed *)
}

val pp_reshard_outcome : Format.formatter -> reshard_outcome -> unit

val run_reshard_one :
  ?steps:int ->
  ?appends_per_client:int ->
  ?park_prob:float ->
  ?crash_prob:float ->
  seed:int ->
  unit ->
  reshard_outcome
(** One seeded schedule: 3 range-partitioned groups of 3 replicas,
    [steps] (default 6) strictly sequential split/merge transitions of
    one range, 3 closed-loop clients appending [appends_per_client]
    (default 30) tagged tokens each, duplication and reordering on every
    link, leader crashes in the migrating groups with probability
    [crash_prob] per transition, and FREEZE-then-vanish coordinators
    with probability [park_prob] resolved by a delayed
    {!Grid_shard.Multi.Make.recover_reshard}. *)

type reshard_summary = {
  rs_schedules : int;
  rs_splits : int;
  rs_merges : int;
  rs_aborted : int;
  rs_parked : int;
  rs_redirects : int;
  rs_acked : int;
  rs_xcommitted : int;
  rs_xaborted : int;
  rs_crashes : int;
  rs_failures : reshard_outcome list;  (** schedules with violations *)
}

val pp_reshard_summary : Format.formatter -> reshard_summary -> unit

val run_reshard :
  ?schedules:int ->
  ?base_seed:int ->
  ?steps:int ->
  ?appends_per_client:int ->
  ?park_prob:float ->
  ?crash_prob:float ->
  ?progress:(reshard_summary -> unit) ->
  unit ->
  reshard_summary
