(* Cross-shard transaction checker: atomicity and serializability of 2PC
   over per-group T-Paxos, from the groups' committed histories alone.

   The input is one committed history per group (instance, request batch,
   encoded state) — normally the longest replica history of each group;
   per-replica agreement within a group is Agreement.check's job, not
   ours. Cross-shard transaction ids are recognised by [is_cross_tid]
   (Multi allocates them at and above [Multi.cross_tid_base]). *)

open Grid_paxos.Types

type violation =
  | Mixed_decision of { tid : int; committed_in : int list; aborted_in : int list }
      (** atomicity broken: the tid committed in some groups and logged an
          abort decision in others *)
  | Duplicate_decision of { tid : int; group : int; instances : int list }
      (** one group committed more than one decision instance for a tid —
          the decision tombstones failed *)
  | Unresolved_prepare of { tid : int; group : int; instance : int }
      (** a committed prepare with no committed decision in that group
          (reported only under [require_resolved]) *)
  | Cycle of { tids : int list }
      (** serializability broken: committed cross-shard transactions whose
          per-group decision orders form a cycle over conflicting
          footprints *)

let pp_violation ppf = function
  | Mixed_decision { tid; committed_in; aborted_in } ->
    Format.fprintf ppf "txn %d committed in groups [%s] but aborted in [%s]" tid
      (String.concat "," (List.map string_of_int committed_in))
      (String.concat "," (List.map string_of_int aborted_in))
  | Duplicate_decision { tid; group; instances } ->
    Format.fprintf ppf "txn %d decided more than once in group %d (instances %s)"
      tid group
      (String.concat "," (List.map string_of_int instances))
  | Unresolved_prepare { tid; group; instance } ->
    Format.fprintf ppf
      "txn %d prepared in group %d (instance %d) but never decided there" tid group
      instance
  | Cycle { tids } ->
    Format.fprintf ppf "serialization cycle over cross-shard txns [%s]"
      (String.concat " -> " (List.map string_of_int tids))

(* Per-group observation of one cross-shard transaction. *)
type obs = {
  mutable o_prepared : int option;  (* instance of the committed prepare *)
  mutable o_decisions : (int * bool) list;  (* (instance, committed?) *)
  mutable o_footprint : string list;  (* from the replayed ops, commit only *)
}

let fp_intersect a b =
  a <> [] && b <> []
  && (List.mem "*" a || List.mem "*" b || List.exists (fun k -> List.mem k b) a)

let check ?(require_resolved = false) ~is_cross_tid ~footprint_of
    (histories : (int * request list * string) list array) : violation list =
  let groups = Array.length histories in
  (* (group, tid) -> obs *)
  let seen : (int * int, obs) Hashtbl.t = Hashtbl.create 64 in
  let obs g tid =
    match Hashtbl.find_opt seen (g, tid) with
    | Some o -> o
    | None ->
      let o = { o_prepared = None; o_decisions = []; o_footprint = [] } in
      Hashtbl.replace seen (g, tid) o;
      o
  in
  for g = 0 to groups - 1 do
    List.iter
      (fun (instance, (requests : request list), _state) ->
        (* The ops replayed by a commit decision precede their marker in
           the same batch; collect them per tid as we scan. *)
        let batch_ops : (int, string list) Hashtbl.t = Hashtbl.create 4 in
        List.iter
          (fun (r : request) ->
            match r.rtype with
            | Txn_op tid when is_cross_tid tid ->
              let fp = footprint_of r.payload in
              Hashtbl.replace batch_ops tid
                (fp
                @ Option.value ~default:[] (Hashtbl.find_opt batch_ops tid))
            | Txn_prepare tid when is_cross_tid tid ->
              let o = obs g tid in
              if o.o_prepared = None then o.o_prepared <- Some instance
            | Txn_commit tid when is_cross_tid tid ->
              let o = obs g tid in
              o.o_decisions <- (instance, true) :: o.o_decisions;
              o.o_footprint <-
                Option.value ~default:[] (Hashtbl.find_opt batch_ops tid)
                @ o.o_footprint
            | Txn_abort tid when is_cross_tid tid ->
              let o = obs g tid in
              o.o_decisions <- (instance, false) :: o.o_decisions
            | _ -> ())
          requests)
      histories.(g)
  done;
  let violations = ref [] in
  (* Aggregate per tid across groups. *)
  let by_tid : (int, (int * obs) list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (g, tid) o ->
      Hashtbl.replace by_tid tid
        ((g, o) :: Option.value ~default:[] (Hashtbl.find_opt by_tid tid)))
    seen;
  Hashtbl.iter
    (fun tid gobs ->
      let committed_in =
        List.filter_map
          (fun (g, o) ->
            if List.exists (fun (_, c) -> c) o.o_decisions then Some g else None)
          gobs
        |> List.sort Int.compare
      and aborted_in =
        List.filter_map
          (fun (g, o) ->
            if List.exists (fun (_, c) -> not c) o.o_decisions then Some g
            else None)
          gobs
        |> List.sort Int.compare
      in
      if committed_in <> [] && aborted_in <> [] then
        violations := Mixed_decision { tid; committed_in; aborted_in } :: !violations;
      List.iter
        (fun (g, o) ->
          (match o.o_decisions with
          | _ :: _ :: _ ->
            violations :=
              Duplicate_decision
                { tid; group = g; instances = List.map fst o.o_decisions }
              :: !violations
          | _ -> ());
          match (o.o_prepared, o.o_decisions) with
          | Some instance, [] when require_resolved ->
            violations := Unresolved_prepare { tid; group = g; instance } :: !violations
          | _ -> ())
        gobs)
    by_tid;
  (* Serialization graph over committed cross-shard txns: in each group,
     decision instances are totally ordered; an edge T1 -> T2 exists when
     some group decided T1 before T2 and their footprints in that group
     conflict. A cycle needs two groups to order two conflicting txns
     oppositely — exactly what the prepare locks must prevent. *)
  let committed_obs g tid =
    match Hashtbl.find_opt seen (g, tid) with
    | Some o -> (
      match List.find_opt (fun (_, c) -> c) o.o_decisions with
      | Some (i, _) -> Some (i, o.o_footprint)
      | None -> None)
    | None -> None
  in
  let nodes =
    Hashtbl.fold
      (fun tid gobs acc ->
        if List.exists (fun (_, o) -> List.exists snd o.o_decisions) gobs then
          tid :: acc
        else acc)
      by_tid []
  in
  let edges : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  for g = 0 to groups - 1 do
    let decided =
      List.filter_map
        (fun tid ->
          match committed_obs g tid with
          | Some (i, fp) -> Some (tid, i, fp)
          | None -> None)
        nodes
      |> List.sort (fun (_, i, _) (_, j, _) -> Int.compare i j)
    in
    let rec pairs = function
      | [] -> ()
      | (t1, _, fp1) :: rest ->
        List.iter
          (fun (t2, _, fp2) ->
            if t1 <> t2 && fp_intersect fp1 fp2 then
              Hashtbl.replace edges t1
                (t2 :: Option.value ~default:[] (Hashtbl.find_opt edges t1)))
          rest;
        pairs rest
    in
    pairs decided
  done;
  (* Cycle detection: DFS with colours. *)
  let colour : (int, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 16 in
  let cycle = ref None in
  let rec dfs path tid =
    match Hashtbl.find_opt colour tid with
    | Some `Black -> ()
    | Some `Grey ->
      if !cycle = None then begin
        (* [path] has the re-reached node at its head and its previous
           occurrence further down: the segment between them, reversed,
           is the cycle in edge order. *)
        let rec upto = function
          | [] -> []
          | x :: rest -> if x = tid then [ x ] else x :: upto rest
        in
        match path with
        | _ :: tl -> cycle := Some (List.rev (upto tl))
        | [] -> ()
      end
    | None ->
      Hashtbl.replace colour tid `Grey;
      List.iter
        (fun n -> dfs (n :: path) n)
        (Option.value ~default:[] (Hashtbl.find_opt edges tid));
      Hashtbl.replace colour tid `Black
  in
  List.iter (fun tid -> dfs [ tid ] tid) (List.sort Int.compare nodes);
  (match !cycle with
  | Some tids -> violations := Cycle { tids } :: !violations
  | None -> ());
  List.rev !violations
