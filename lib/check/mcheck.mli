(** Randomized-schedule state-space exploration of the protocol engines,
    with a cross-layer nemesis.

    A scheduler owns the message pool (FIFO per directed pair, as with
    TCP) and the timer set, and drives the replicas through interleavings
    far more adversarial than latency-ordered simulation. On top of the
    schedule itself, a {!nemesis} injects:

    - {b crashes and recoveries} at any step — recovery is
      crash-consistent: the replica is rebuilt from its persisted image
      via {!Grid_paxos.Replica.Make.load}, not from the in-memory object;
    - {b torn persists}: a crash can instead be armed to strike inside
      the victim's next storage write ({!Grid_paxos.Storage.Crashed}),
      so the record is lost and the engine step never completes;
    - {b metadata loss}: commit-point and snapshot records silently
      dropped on the way to disk (always repairable);
    - {b duplication}: a delivered message is re-enqueued at its
      channel's tail, arriving again later (a retransmission);
    - {b reordering}: a delivery taken from the middle of its channel
      instead of the head (FIFO escape);
    - {b clock drift}: a replica's local clock jumps to a bounded offset
      from virtual time, attacking the leader-lease skew assumption
      (timers are unaffected — they measure durations).

    Client requests travel through the same schedulable channels as
    protocol messages, so the nemesis applies to them too.

    Every fault that fires is recorded in a {!plan} keyed by scheduler
    step. Scheduling choices and fault dice draw from separate RNG
    streams, so {!Make.replay} of a recorded plan rolls no dice and
    reproduces the run exactly; {!Make.shrink} then greedily drops plan
    events to find a minimal failing schedule. *)

(** {1 Fault plans} *)

type fault_event =
  | Crash_at of { step : int; victim : int; torn : bool }
  | Recover_at of { step : int; victim : int }
  | Duplicate_at of { step : int }
  | Reorder_at of { step : int; depth : int }
      (** the delivery at [step] took the element [depth] places behind
          the channel head *)
  | Drift_at of { step : int; victim : int; offset_ms : float }
      (** the victim's clock becomes virtual time + [offset_ms] *)
  | Upgrade_at of { step : int; victim : int; version : int }
      (** rolling upgrade: the victim is bounced (crash-consistent
          restart) and comes back speaking wire-protocol [version] *)

type plan = fault_event list

val pp_fault : Format.formatter -> fault_event -> unit
val pp_plan : Format.formatter -> plan -> unit

type nemesis = {
  crash_prob : float;
      (** per-step probability of a crash; recovery triggers in the
          [\[crash_prob, 2*crash_prob)] window of the same roll *)
  torn_frac : float;  (** fraction of crashes that are torn persists *)
  dup_prob : float;  (** per-delivery duplication probability *)
  reorder_prob : float;  (** per-delivery FIFO-escape probability *)
  meta_drop_prob : float;
      (** per-persist probability of silently losing a commit-point or
          snapshot record (see {!Grid_paxos.Storage.fault_ctl}) *)
  drift_prob : float;
      (** per-step probability that one replica's clock jumps to a fresh
          offset; dice for it roll only when positive, so plans recorded
          without drift replay unchanged *)
  drift_max_ms : float;  (** drifted offsets are uniform in [-max, +max] *)
}

val no_faults : nemesis

val shrink_plan : still_fails:(plan -> bool) -> plan -> plan
(** Greedy event removal to a fixed point: drop any event whose removal
    keeps [still_fails] true. The predicate should replay the schedule
    deterministically (see {!Make.replay}). *)

(** {1 Outcomes} *)

type outcome = {
  replies : Grid_paxos.Types.reply list;
  violations : Agreement.violation list;
  durability : string list;
      (** crash-recovery invariant breaches: a revived replica whose
          reloaded state disagrees with the committed prefix the group
          observed, or conflicting committed values across incarnations *)
  stale_reads : string list;
      (** reads whose first reply matches no committed state at or after
          the read's issue-time watermark — i.e. the reply misses writes
          that were committed before the read was issued. This is the
          invariant the leader-lease read fast path must preserve under
          clock drift and leader failovers. *)
  lost_admitted : string list;
      (** admitted-loss oracle breaches: writes acknowledged [Ok] that no
          replica (across incarnations) ever observed committed. A shed
          request never receives [Ok], so admission control cannot mask a
          loss; a non-empty list means pushback broke durability. *)
  admitted_latencies : float array;
      (** virtual-time latency (first injection to first final reply) of
          every request that completed, in completion order. [Overloaded]
          pushback rounds are folded into the eventual completion's
          latency, so a percentile over this array bounds what an
          admitted client actually waited. *)
  committed : int array;  (** commit point per replica at the end *)
  delivered : int;
  timer_fires : int;
  all_replied : bool;
      (** every injected request got a reply by the end of the drain *)
  plan : plan;  (** the faults that actually fired, in order *)
  crashes : int;
  torn_persists : int;
  meta_dropped : int;
  duplicated : int;
  reordered : int;
  drifted : int;  (** clock-drift injections that fired *)
  upgraded : int;  (** rolling-upgrade bounces that fired *)
  shed : int;
      (** [Overloaded] replies leaders pushed back (0 unless the config
          bounds admission via [max_inflight]/[max_queue]) *)
  wire_errors : string list;
      (** wire-codec oracle breaches: a message that failed the
          encode → decode roundtrip through the version negotiated for
          its link. Always empty unless the run models wire versions
          ([wire_versions]/[upgrades]); non-empty fails the run. *)
  watchdog_violations : int;
      (** online invariant checks ({!Grid_obs.Watchdog}) that fired inside
          the replicas during the run — the runtime mirror of the offline
          oracles, asserted silent on green schedules *)
  watchdog_detail : string list;  (** one line per violation, firing order *)
}

val failed : outcome -> bool
(** Agreement or durability violated, a stale read observed, an admitted
    write lost, or a wire-codec roundtrip failure. *)

module Make (S : Grid_paxos.Service_intf.S) : sig
  module R : module type of Grid_paxos.Replica.Make (S)

  val request : int -> S.op -> int * Grid_paxos.Types.rtype * string
  (** [request client op] builds a typed request triple for [requests]:
      the class comes from [S.classify] and the payload from
      [S.encode_op], so callers never construct wire strings. *)

  val explore :
    ?obs:Grid_obs.Span.Recorder.t ->
    ?seed:int ->
    ?steps:int ->
    ?max_down:int ->
    ?nemesis:nemesis ->
    ?disable_dedup:bool ->
    ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
    ?requests:(int * Grid_paxos.Types.rtype * string) list ->
    ?wire_versions:int array ->
    ?upgrades:(int * int * int) list ->
    unit ->
    outcome
  (** Explore one schedule over a 3-replica group. [obs] receives the
      replicas' lifecycle spans, timed on the scheduler's virtual clock —
      deterministic for a given seed. [requests] are
      (client id, rtype, payload) triples; each client's requests are
      injected in order (closed loop) and retransmitted until answered.
      After [steps] scheduling choices the nemesis stops, every replica
      is recovered from storage, and the system is drained so liveness
      can be asserted. [disable_dedup] plants the double-commit bug the
      request-dedup table exists to prevent (for validating that the
      checkers and shrinker catch it). [cfg_tweak] edits the group's
      {!Grid_paxos.Config.t} before the replicas are built — e.g. to
      enable leader leases ([lease_ms]) for the stale-read oracle.

      [wire_versions] turns on the wire-codec model: one protocol
      version per replica, and every delivered message is run through
      the codec its link would negotiate over TCP
      (min of the endpoints' versions; clients speak
      {!Grid_paxos.Wire_codec.latest_version}). [upgrades] scripts
      rolling upgrades as [(step, victim, version)] triples: at [step]
      the victim is bounced crash-consistently and comes back speaking
      [version] — the mixed-version cluster scenario. Roundtrip
      failures land in [wire_errors] and fail the run. *)

  val replay :
    ?obs:Grid_obs.Span.Recorder.t ->
    ?seed:int ->
    ?steps:int ->
    ?max_down:int ->
    ?meta_drop_prob:float ->
    ?disable_dedup:bool ->
    ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
    ?requests:(int * Grid_paxos.Types.rtype * string) list ->
    ?wire_versions:int array ->
    plan:plan ->
    unit ->
    outcome
  (** Re-run a schedule applying faults from [plan] instead of dice
      (including any [Upgrade_at] events the recording produced; pass
      the same [wire_versions] as the recording).
      With the plan and parameters of a recorded run, the replay is
      exact; with a shrunk plan it is best-effort (events whose
      preconditions no longer hold are skipped). *)

  val shrink :
    ?seed:int ->
    ?steps:int ->
    ?max_down:int ->
    ?meta_drop_prob:float ->
    ?disable_dedup:bool ->
    ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
    ?requests:(int * Grid_paxos.Types.rtype * string) list ->
    ?wire_versions:int array ->
    plan:plan ->
    unit ->
    plan
  (** [shrink ~plan ()] greedily minimizes a failing plan under
      {!replay} with the same parameters, using {!failed} as the
      predicate. *)

  val run :
    ?obs:Grid_obs.Span.Recorder.t ->
    ?seed:int ->
    ?steps:int ->
    ?crash_prob:float ->
    ?max_down:int ->
    ?cfg_tweak:(Grid_paxos.Config.t -> Grid_paxos.Config.t) ->
    ?requests:(int * Grid_paxos.Types.rtype * string) list ->
    unit ->
    outcome
  (** [explore] with only (clean) crash/recovery faults — the historical
      entry point used by the schedule-exploration tests. *)
end
