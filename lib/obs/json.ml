type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int i = Num (Float.of_int i)

(* Emit numbers with enough digits to round-trip (shortest of %.12g/%.17g
   that parses back exactly), but render integers without an exponent so
   the files stay readable and byte-stable across runs. *)
let string_of_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    (* JSON has no NaN/Infinity literals. *)
    if Float.is_finite f then Buffer.add_string buf (string_of_float f)
    else Buffer.add_string buf "null"
  | Str s -> escape buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* Pretty printer: two-space indent, keys in given order. Used for the
   BENCH_*.json files so diffs across PRs stay readable. *)
let to_string_pretty v =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | (Null | Bool _ | Num _ | Str _) as v -> write buf v
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape buf k;
          Buffer.add_string buf ": ";
          go (indent + 2) v)
        kvs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing — a small recursive-descent parser for the subset we emit.  *)

exception Parse_error of { pos : int; msg : string }

type parser_state = { src : string; mutable pos : int }

let fail p msg = raise (Parse_error { pos = p.pos; msg })
let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
    p.pos <- p.pos + 1;
    skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> p.pos <- p.pos + 1
  | _ -> fail p (Printf.sprintf "expected %c" c)

let literal p word v =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = word then begin
    p.pos <- p.pos + n;
    v
  end
  else fail p (Printf.sprintf "expected %s" word)

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> p.pos <- p.pos + 1
    | Some '\\' -> (
      p.pos <- p.pos + 1;
      match peek p with
      | Some '"' -> Buffer.add_char buf '"'; p.pos <- p.pos + 1; go ()
      | Some '\\' -> Buffer.add_char buf '\\'; p.pos <- p.pos + 1; go ()
      | Some '/' -> Buffer.add_char buf '/'; p.pos <- p.pos + 1; go ()
      | Some 'n' -> Buffer.add_char buf '\n'; p.pos <- p.pos + 1; go ()
      | Some 'r' -> Buffer.add_char buf '\r'; p.pos <- p.pos + 1; go ()
      | Some 't' -> Buffer.add_char buf '\t'; p.pos <- p.pos + 1; go ()
      | Some 'b' -> Buffer.add_char buf '\b'; p.pos <- p.pos + 1; go ()
      | Some 'f' -> Buffer.add_char buf '\012'; p.pos <- p.pos + 1; go ()
      | Some 'u' ->
        if p.pos + 5 > String.length p.src then fail p "truncated \\u escape";
        let hex = String.sub p.src (p.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail p "bad \\u escape"
        in
        (* Encode the code point as UTF-8 (surrogates left as-is bytes). *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        p.pos <- p.pos + 5;
        go ()
      | _ -> fail p "bad escape")
    | Some c ->
      Buffer.add_char buf c;
      p.pos <- p.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c when is_num_char c -> true | _ -> false) do
    p.pos <- p.pos + 1
  done;
  if p.pos = start then fail p "expected number";
  match float_of_string_opt (String.sub p.src start (p.pos - start)) with
  | Some f -> Num f
  | None -> fail p "malformed number"

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some '{' ->
    p.pos <- p.pos + 1;
    skip_ws p;
    if peek p = Some '}' then begin
      p.pos <- p.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws p;
        let k = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          p.pos <- p.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          p.pos <- p.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail p "expected , or }"
      in
      Obj (members [])
    end
  | Some '[' ->
    p.pos <- p.pos + 1;
    skip_ws p;
    if peek p = Some ']' then begin
      p.pos <- p.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          p.pos <- p.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          p.pos <- p.pos + 1;
          List.rev (v :: acc)
        | _ -> fail p "expected , or ]"
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some _ -> parse_number p

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail p "trailing garbage";
  v

(* Accessors for decoded documents; total (option-returning) so callers
   can degrade gracefully on hand-edited files. *)
let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None
let to_str = function Str s -> Some s | _ -> None
