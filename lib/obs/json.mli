(** Minimal JSON emitter/parser for the observability layer: trace dumps
    (JSONL), metric snapshots and the machine-readable bench telemetry.

    Deliberately tiny — the repo carries no external JSON dependency. The
    emitter is deterministic (stable float formatting, caller-controlled
    key order), which the trace-determinism tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
(** [int i] is [Num (float_of_int i)]. *)

val to_string : t -> string
(** Compact, single-line rendering (used for JSONL). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering (used for BENCH_*.json files). *)

exception Parse_error of { pos : int; msg : string }

val of_string : string -> t
(** Parse one JSON document; raises {!Parse_error} on malformed input or
    trailing garbage. *)

(** {1 Accessors} *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
