(** Structured request-lifecycle events.

    Each committed request passes through a fixed sequence of lifecycle
    points; recording them with timestamps lets a run reconstruct the
    paper's latency decomposition (§3.4): [M] WAN hops, [E] execution,
    [m] LAN hops. See {!Lifecycle} for the analysis side.

    Recording is designed to be free when disabled: every [Recorder]
    function is a single branch, and takes only unboxed/required
    arguments so call sites allocate nothing on the disabled path. *)

module Ids := Grid_util.Ids

type phase =
  | Route  (** the shard router resolved the owning group (trace root) *)
  | Client_send  (** client hands the request to the network *)
  | Leader_receive  (** leader engine first sees the request *)
  | Propose  (** leader starts the accept round for an instance *)
  | Accept_quorum  (** leader gathers a majority of accept acks *)
  | Commit  (** leader learns/announces the decision *)
  | State_ship  (** follower receives the committed decision *)
  | Apply  (** service executes the request *)
  | Lease_local
      (** the leader answered a read locally under a majority lease:
          execution alone completed it, no confirm round *)
  | Reply  (** client receives the answer *)

val all_phases : phase list
(** In lifecycle order. *)

val phase_name : phase -> string
val phase_of_name : string -> phase option
val pp_phase : Format.formatter -> phase -> unit

type body =
  | Span of {
      req : Ids.Request_id.t;
      phase : phase;
      instance : int;
      detail : string;
      tid : int;
      parent : string;
    }
      (** [instance = -1] when not tied to a consensus instance;
          [detail = ""] unless the site attaches a label (the request
          type at [Leader_receive], the executing replica at [Apply]).
          [tid] is the causal trace id shared by every span of one
          end-to-end request ([0] = untraced); [parent] is the
          {!span_id} of the causally preceding span ([""] = root). *)
  | Msg of { kind : string; dst : int }
  | Note of string

type event = { time : float; actor : string; body : body }

val span_id : actor:string -> phase -> string
(** [actor ^ ":" ^ phase_name phase] — the id another span's [parent]
    field uses to point at this span. *)

val pp_event : Format.formatter -> event -> unit

module Recorder : sig
  type t

  val create : ?capacity:int -> enabled:bool -> unit -> t
  (** Ring-buffer backed; default capacity 65536 events (oldest evicted
      first). An [enabled:false] recorder never stores anything. *)

  val disabled : t
  (** Shared always-off recorder, for defaulting optional parameters. *)

  val enabled : t -> bool

  val span :
    ?tid:int ->
    ?parent:string ->
    t ->
    time:float ->
    actor:string ->
    req:Ids.Request_id.t ->
    instance:int ->
    detail:string ->
    phase ->
    unit
  (** [tid] defaults to [0] (untraced), [parent] to [""] (root). *)

  val msg : t -> time:float -> actor:string -> kind:string -> dst:int -> unit
  val note : t -> time:float -> actor:string -> string -> unit

  val notef :
    t -> time:float -> actor:string -> ('a, Format.formatter, unit) format -> 'a
  (** Formatted note; the format arguments are still evaluated when
      disabled (OCaml applies them), so prefer {!note} with a constant
      string on hot paths. *)

  val events : t -> event list
  (** Oldest first. *)

  val length : t -> int
  val clear : t -> unit
end

(** {1 JSONL serialization}

    One compact JSON object per line; deterministic byte-for-byte for a
    given event list (stable key order and float formatting), which the
    trace-determinism tests depend on. *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> event option
val dump_string : event list -> string
val dump_file : string -> event list -> unit
val load_string : string -> event list
(** Skips blank and malformed lines. *)

val load_file : string -> event list
