module Stats = Grid_util.Stats

(* A registry is a flat name -> metric table. Metric names follow the
   Prometheus convention (snake_case, unit suffix: _total, _seconds,
   _ms). Counters and gauges are plain mutable cells so the hot-path cost
   of an update is one load + one store. *)

type counter = { mutable count : int }
type gauge = { mutable value : float }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Stats.Histogram.h

type t = { tbl : (string, string * metric) Hashtbl.t }
(* value = (help text, metric) *)

let create () = { tbl = Hashtbl.create 32 }

let register t name ~help metric =
  if Hashtbl.mem t.tbl name then
    invalid_arg (Printf.sprintf "Metrics: duplicate metric %s" name);
  Hashtbl.replace t.tbl name (help, metric)

(* Removing a metric frees its name for re-registration; handles already
   held keep working but no longer feed the exposition. A shutting-down
   component (e.g. a TCP node's per-peer backoff gauges) must unregister
   what it registered, or restarts accumulate dead series. *)
let unregister t name = Hashtbl.remove t.tbl name
let mem t name = Hashtbl.mem t.tbl name

let counter t name ~help =
  let c = { count = 0 } in
  register t name ~help (Counter c);
  c

let gauge t name ~help =
  let g = { value = 0.0 } in
  register t name ~help (Gauge g);
  g

let histogram t name ~help ~lo ~hi ~bins =
  let h = Stats.Histogram.create_log ~lo ~hi ~bins in
  register t name ~help (Histogram h);
  h

let inc ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count
let set g v = g.value <- v
let gauge_value g = g.value
let observe h v = Stats.Histogram.add h v

let sorted_entries t =
  Hashtbl.fold (fun name (help, m) acc -> (name, help, m) :: acc) t.tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (version 0.0.4 format)                   *)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let expose t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, help, m) ->
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      match m with
      | Counter c ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" name c.count)
      | Gauge g ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
        Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt_float g.value))
      | Histogram h ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
        let counts = Stats.Histogram.counts h in
        let edges = Stats.Histogram.bin_edges h in
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                 (fmt_float edges.(i + 1))
                 !cum))
          counts;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name
             (Stats.Histogram.total h));
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n" name (fmt_float (Stats.Histogram.sum h)));
        Buffer.add_string buf
          (Printf.sprintf "%s_count %d\n" name (Stats.Histogram.total h)))
    (sorted_entries t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)

let to_json t : Json.t =
  Json.Obj
    (List.map
       (fun (name, help, m) ->
         let body =
           match m with
           | Counter c ->
             [ ("type", Json.Str "counter"); ("value", Json.int c.count) ]
           | Gauge g -> [ ("type", Json.Str "gauge"); ("value", Json.Num g.value) ]
           | Histogram h ->
             [
               ("type", Json.Str "histogram");
               ("count", Json.int (Stats.Histogram.total h));
               ("sum", Json.Num (Stats.Histogram.sum h));
               ("mean", Json.Num (Stats.Histogram.mean h));
               ("p50", Json.Num (Stats.Histogram.percentile_estimate h 50.0));
               ("p99", Json.Num (Stats.Histogram.percentile_estimate h 99.0));
               ( "buckets",
                 Json.Arr
                   (Array.to_list
                      (Array.map (fun c -> Json.int c) (Stats.Histogram.counts h)))
               );
               ( "edges",
                 Json.Arr
                   (Array.to_list
                      (Array.map (fun e -> Json.Num e) (Stats.Histogram.bin_edges h)))
               );
             ]
         in
         (name, Json.Obj (("help", Json.Str help) :: body)))
       (sorted_entries t))

let pp ppf t =
  List.iter
    (fun (name, _, m) ->
      match m with
      | Counter c -> Format.fprintf ppf "%-40s %d@." name c.count
      | Gauge g -> Format.fprintf ppf "%-40s %s@." name (fmt_float g.value)
      | Histogram h ->
        Format.fprintf ppf "%-40s n=%d mean=%.4g p50=%.4g p99=%.4g@." name
          (Stats.Histogram.total h) (Stats.Histogram.mean h)
          (Stats.Histogram.percentile_estimate h 50.0)
          (Stats.Histogram.percentile_estimate h 99.0))
    (sorted_entries t)
