(** Metrics registry: named counters, gauges and log-scale latency
    histograms with Prometheus-style text exposition and a JSON
    snapshot.

    Handles returned at registration are plain mutable cells — an
    {!inc}/{!set}/{!observe} on the hot path costs one load and one
    store, no lookup. Registration itself is not hot and uses a
    hashtable keyed by metric name. *)

type t
type counter
type gauge

val create : unit -> t

val counter : t -> string -> help:string -> counter
(** Registers and returns a counter starting at 0. Raises
    [Invalid_argument] on a duplicate name. *)

val gauge : t -> string -> help:string -> gauge

val unregister : t -> string -> unit
(** Remove a metric by name (no-op if absent). The name becomes free for
    re-registration; a handle already held keeps working but stops
    appearing in {!expose}/{!to_json}. Components that register metrics
    dynamically (per-peer gauges) must unregister them on shutdown. *)

val mem : t -> string -> bool
val histogram :
  t -> string -> help:string -> lo:float -> hi:float -> bins:int -> Grid_util.Stats.Histogram.h
(** Log-scale histogram over [\[lo, hi)] (see
    {!Grid_util.Stats.Histogram.create_log}). *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : Grid_util.Stats.Histogram.h -> float -> unit

val expose : t -> string
(** Prometheus text exposition format (0.0.4): # HELP / # TYPE lines,
    cumulative [_bucket{le="..."}] series for histograms, metrics sorted
    by name (deterministic output). *)

val to_json : t -> Json.t
(** Snapshot of every metric: counters/gauges as values, histograms as
    count/sum/mean/p50/p99 plus raw buckets and edges. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line-per-metric dump. *)
