(* Online invariant watchdogs: the offline stress oracles (duplicate
   commit, lost acknowledged write, stale read, lease mutual exclusion)
   recast as cheap runtime checkers that run inside the replica on every
   commit/reply instead of post-hoc over a recorded outcome.

   A [t] is the shared sink for one process/runtime: it owns the
   violation counters (optionally registered in a [Metrics.t] so they
   reach the Prometheus exposition as [grid_watchdog_*_total]) and the
   cross-replica lease view. Each replica incarnation gets its own
   [monitor] holding the per-replica commit table; a monitor dies with
   its incarnation and is re-seeded from storage on recovery, so a
   legitimately re-proposed request after a torn persist never counts as
   a duplicate.

   Every check is a single branch when the sink is disabled. This module
   stays independent of [grid_paxos]: it sees only ints, floats and
   strings. *)

type check = Dup_commit | Lost_ack | Stale_read | Lease_conflict

let check_name = function
  | Dup_commit -> "dup_commit"
  | Lost_ack -> "lost_ack"
  | Stale_read -> "stale_read"
  | Lease_conflict -> "lease_conflict"

exception Violation of string

type counters = {
  mutable total : int;
  mutable dup_commits : int;
  mutable lost_acks : int;
  mutable stale_reads : int;
  mutable lease_conflicts : int;
}

type t = {
  enabled : bool;
  fail_stop : bool;
  counts : counters;
  mutable on_violation : check:string -> detail:string -> unit;
  (* the cross-replica lease view, per replica group (shards lease
     independently): last claimed holder and the local time its lease
     runs out (on the holder's clock) *)
  leases : (string, string * float) Hashtbl.t;
  m_total : Metrics.counter option;
  m_dup : Metrics.counter option;
  m_lost : Metrics.counter option;
  m_stale : Metrics.counter option;
  m_lease : Metrics.counter option;
}

let create ?(fail_stop = false) ?metrics ?(on_violation = fun ~check:_ ~detail:_ -> ())
    () =
  let reg name help =
    Option.map (fun m -> Metrics.counter m name ~help) metrics
  in
  {
    enabled = true;
    fail_stop;
    counts =
      { total = 0; dup_commits = 0; lost_acks = 0; stale_reads = 0; lease_conflicts = 0 };
    on_violation;
    leases = Hashtbl.create 4;
    m_total =
      reg "grid_watchdog_violations_total"
        "Runtime invariant violations caught by the watchdogs";
    m_dup =
      reg "grid_watchdog_dup_commit_total"
        "Requests observed committing at two different instances";
    m_lost =
      reg "grid_watchdog_lost_ack_total"
        "Ok replies sent for writes with no recorded commit";
    m_stale =
      reg "grid_watchdog_stale_read_total"
        "Reads answered from a state older than their admission watermark";
    m_lease =
      reg "grid_watchdog_lease_conflict_total"
        "Lease-local reads served while another replica's lease was live";
  }

let disabled =
  let t = create () in
  { t with enabled = false }

let set_on_violation t f = t.on_violation <- f
let violations t = t.counts.total
let dup_commits t = t.counts.dup_commits
let lost_acks t = t.counts.lost_acks
let stale_reads t = t.counts.stale_reads
let lease_conflicts t = t.counts.lease_conflicts

let reset t =
  t.counts.total <- 0;
  t.counts.dup_commits <- 0;
  t.counts.lost_acks <- 0;
  t.counts.stale_reads <- 0;
  t.counts.lease_conflicts <- 0;
  Hashtbl.reset t.leases

let fire t which detail =
  t.counts.total <- t.counts.total + 1;
  (match t.m_total with Some c -> Metrics.inc c | None -> ());
  let bump field handle =
    field ();
    match handle with Some c -> Metrics.inc c | None -> ()
  in
  (match which with
  | Dup_commit ->
    bump (fun () -> t.counts.dup_commits <- t.counts.dup_commits + 1) t.m_dup
  | Lost_ack -> bump (fun () -> t.counts.lost_acks <- t.counts.lost_acks + 1) t.m_lost
  | Stale_read ->
    bump (fun () -> t.counts.stale_reads <- t.counts.stale_reads + 1) t.m_stale
  | Lease_conflict ->
    bump
      (fun () -> t.counts.lease_conflicts <- t.counts.lease_conflicts + 1)
      t.m_lease);
  t.on_violation ~check:(check_name which) ~detail;
  if t.fail_stop then
    raise (Violation (Printf.sprintf "watchdog[%s]: %s" (check_name which) detail))

(* ------------------------------------------------------------------ *)
(* Per-replica monitor                                                  *)

type monitor = {
  sink : t;
  actor : string;
  group : string;
      (* which lease domain this replica belongs to: the shard prefix of
         the actor label ("s1/r0" -> "s1/", plain "r0" -> ""), since
         every group leases independently *)
  committed : (int * int, int) Hashtbl.t;  (* (client, seq) -> instance *)
  order : (int * int) Queue.t;  (* insertion order, for bounded eviction *)
  capacity : int;
}

let monitor ?(capacity = 65536) sink ~actor =
  let group =
    match String.rindex_opt actor '/' with
    | Some i -> String.sub actor 0 (i + 1)
    | None -> ""
  in
  { sink; actor; group; committed = Hashtbl.create 256; order = Queue.create (); capacity }

let remember m key instance =
  if not (Hashtbl.mem m.committed key) then begin
    if Queue.length m.order >= m.capacity then begin
      match Queue.take_opt m.order with
      | Some old -> Hashtbl.remove m.committed old
      | None -> ()
    end;
    Queue.add key m.order
  end;
  Hashtbl.replace m.committed key instance

(* Seeding (log replay at recovery, or a known-good commit fed by a
   driver) records without checking: these commits were already
   validated in a previous incarnation. *)
let seed_commit m ~client ~seq ~instance =
  if m.sink.enabled then remember m (client, seq) instance

let record_commit m ~client ~seq ~instance =
  if m.sink.enabled then begin
    let key = (client, seq) in
    (match Hashtbl.find_opt m.committed key with
    | Some i when i <> instance ->
      fire m.sink Dup_commit
        (Printf.sprintf "%s: request c%d#%d committed at instance %d and again at %d"
           m.actor client seq i instance)
    | _ -> ());
    remember m key instance
  end

let write_acked m ~client ~seq =
  if m.sink.enabled && not (Hashtbl.mem m.committed (client, seq)) then
    fire m.sink Lost_ack
      (Printf.sprintf "%s: Ok reply for write c%d#%d with no recorded commit" m.actor
         client seq)

let read_replied m ~client ~seq ~watermark ~exec_point =
  if m.sink.enabled && exec_point < watermark then
    fire m.sink Stale_read
      (Printf.sprintf
         "%s: read c%d#%d answered at instance %d below its admission watermark %d"
         m.actor client seq exec_point watermark)

(* Lease mutual exclusion: a replica claiming the lease (serving a
   lease-local read) while another replica's claim is still live — with
   [slack_ms] of allowance for the configured clock-skew bound — means
   two leaders both believed they could answer reads locally. *)
let lease_claimed m ~now ~until ~slack_ms =
  if m.sink.enabled then begin
    let s = m.sink in
    let prev = Hashtbl.find_opt s.leases m.group in
    (match prev with
    | Some (holder, h_until) when holder <> m.actor && now +. slack_ms < h_until ->
      fire s Lease_conflict
        (Printf.sprintf
           "%s: lease claimed at %.3f while %s holds one until %.3f (slack %.3f ms)"
           m.actor now holder h_until slack_ms)
    | _ -> ());
    (* A holder's window only extends (reordered claims must not shrink
       it); a change of holder starts a fresh window. *)
    let carry =
      match prev with
      | Some (holder, u) when holder = m.actor -> Float.max until u
      | _ -> until
    in
    Hashtbl.replace s.leases m.group (m.actor, carry)
  end
