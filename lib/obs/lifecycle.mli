(** Request-lifecycle analysis over recorded {!Span.event} traces.

    Reconstructs per-request timelines and the paper's latency
    decomposition (§3.4): [M] = client→leader WAN hop, [E] = execution
    at the leader, [2m] = the propose→accept-quorum LAN round trip.
    Basic writes cost 2M + E + 2m; X-Paxos reads skip the accept round
    entirely (their timelines have no [Propose]/[Accept_quorum] phases),
    matching 2M + max(E, m). *)

module Ids := Grid_util.Ids

type protocol = Basic | Xpaxos_read | Leased_read | Tpaxos | Unreplicated | Unknown

val protocol_name : protocol -> string

val protocol_of_detail : string -> protocol
(** Classify from the [Leader_receive] span's detail label ("read",
    "write", "original", "txn_op", ...). *)

type timeline = {
  req : Ids.Request_id.t;
  protocol : protocol;
  spans : Span.event list;  (** this request's span events, in time order *)
  phases : (Span.phase * float) list;
      (** first occurrence time of each recorded phase, lifecycle order *)
}

type breakdown = {
  m_wan : float;  (** M: client_send → leader_receive; [nan] if unrecorded *)
  exec : float;  (** E: leader_receive → apply; [nan] if unrecorded *)
  m_lan2 : float;  (** 2m: propose → accept_quorum; [nan] for reads *)
  total : float;  (** client_send → reply *)
}

val timelines : Span.event list -> timeline list
(** Group a trace into per-request timelines, ordered by first
    appearance. *)

val find : Span.event list -> Ids.Request_id.t -> timeline option
val phase_time : timeline -> Span.phase -> float option
val completed : timeline -> bool

val breakdown : timeline -> breakdown option
(** [None] unless both [Client_send] and [Reply] were recorded. *)

type phase_stats = {
  protocol : protocol;
  count : int;
  mean_m_wan : float;
  mean_exec : float;
  mean_m_lan2 : float;
  mean_total : float;
}

val phase_stats : Span.event list -> phase_stats list
(** Mean per-phase latency by protocol class, over completed requests.
    Component means skip requests that never recorded that component. *)

val slowest : ?n:int -> Span.event list -> (timeline * breakdown) list
(** The [n] (default 10) completed requests with the largest total
    latency, slowest first. *)

val message_counts : Span.event list -> (string * string * int) list
(** [(actor, msg kind, count)] triples, sorted by actor then kind. *)

(** {1 Stitched trace trees}

    One causal trace = every span event sharing a nonzero trace id,
    across shard/actor boundaries; edges come from the recorded
    [parent] span ids. *)

type tree = { event : Span.event; id : string; children : tree list }

val trace_id_of : Span.event list -> Ids.Request_id.t -> int option
(** The trace id of a request, from its first traced span. *)

val trace_ids : Span.event list -> int list
(** Every distinct nonzero trace id, in order of first appearance. *)

val trace_tree : Span.event list -> tid:int -> tree list
(** The stitched tree(s) of one trace: spans time-sorted, children
    attached to the first event bearing their parent's span id; spans
    whose parent is empty or unresolvable become roots. *)

(** {1 Tail attribution} *)

type attribution = {
  a_protocol : protocol;
  a_count : int;  (** completed requests of this class *)
  a_tail : int;  (** requests at/above the threshold *)
  a_threshold : float;  (** the [pct] percentile of total latency, ms *)
  a_segments : (string * float) list;
      (** consecutive phase-to-phase segment -> mean duration (ms) over
          the tail requests, largest first *)
}

val tail_attribution : ?pct:float -> Span.event list -> attribution list
(** Which segment dominates tail latency per protocol class: over the
    completed requests whose total latency is at or above the [pct]
    (default 99) percentile for their class. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
val pp_timeline : Format.formatter -> timeline -> unit
val pp_phase_stats : Format.formatter -> phase_stats list -> unit
val pp_tree : Format.formatter -> tree list -> unit
val pp_attribution : Format.formatter -> attribution list -> unit
