module Ids = Grid_util.Ids
module Ring_buffer = Grid_util.Ring_buffer

type phase =
  | Client_send
  | Leader_receive
  | Propose
  | Accept_quorum
  | Commit
  | State_ship
  | Apply
  | Lease_local
      (** the leader answered a read locally under a majority lease:
          execution alone completed it, no confirm round *)
  | Reply

let all_phases =
  [ Client_send; Leader_receive; Propose; Accept_quorum; Commit; State_ship;
    Apply; Lease_local; Reply ]

let phase_name = function
  | Client_send -> "client_send"
  | Leader_receive -> "leader_receive"
  | Propose -> "propose"
  | Accept_quorum -> "accept_quorum"
  | Commit -> "commit"
  | State_ship -> "state_ship"
  | Apply -> "apply"
  | Lease_local -> "lease_local"
  | Reply -> "reply"

let phase_of_name = function
  | "client_send" -> Some Client_send
  | "leader_receive" -> Some Leader_receive
  | "propose" -> Some Propose
  | "accept_quorum" -> Some Accept_quorum
  | "commit" -> Some Commit
  | "state_ship" -> Some State_ship
  | "apply" -> Some Apply
  | "lease_local" -> Some Lease_local
  | "reply" -> Some Reply
  | _ -> None

let pp_phase ppf p = Format.pp_print_string ppf (phase_name p)

type body =
  | Span of { req : Ids.Request_id.t; phase : phase; instance : int; detail : string }
      (** one lifecycle point of a request; [instance = -1] when the
          event is not tied to a consensus instance, [detail = ""] unless
          the recording site has a label to attach (e.g. the rtype at
          [Leader_receive]) *)
  | Msg of { kind : string; dst : int }  (** one wire message sent *)
  | Note of string  (** free-form annotation (the old [Sim.Trace] lines) *)

type event = { time : float; actor : string; body : body }

let pp_event ppf e =
  match e.body with
  | Span { req; phase; instance; detail } ->
    Format.fprintf ppf "%10.3f %-8s %a %a%s%s" e.time e.actor Ids.Request_id.pp req
      pp_phase phase
      (if instance >= 0 then Printf.sprintf " i=%d" instance else "")
      (if detail = "" then "" else " " ^ detail)
  | Msg { kind; dst } -> Format.fprintf ppf "%10.3f %-8s send %s ->%d" e.time e.actor kind dst
  | Note s -> Format.fprintf ppf "%10.3f %-8s %s" e.time e.actor s

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)

module Recorder = struct
  type t = { buf : event Ring_buffer.t; enabled : bool }

  let create ?(capacity = 65536) ~enabled () =
    { buf = Ring_buffer.create capacity; enabled }

  let disabled = create ~capacity:1 ~enabled:false ()
  let enabled t = t.enabled

  (* Every record function is a single branch when disabled: no event is
     constructed, no string is built. Call sites must likewise avoid
     building arguments eagerly (pass preformatted actor names, constant
     detail strings). *)

  let span t ~time ~actor ~req ~instance ~detail phase =
    if t.enabled then
      Ring_buffer.push t.buf { time; actor; body = Span { req; phase; instance; detail } }

  let msg t ~time ~actor ~kind ~dst =
    if t.enabled then Ring_buffer.push t.buf { time; actor; body = Msg { kind; dst } }

  let note t ~time ~actor text =
    if t.enabled then Ring_buffer.push t.buf { time; actor; body = Note text }

  let notef t ~time ~actor fmt =
    if t.enabled then
      Format.kasprintf
        (fun text -> Ring_buffer.push t.buf { time; actor; body = Note text })
        fmt
    else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

  let events t = Ring_buffer.to_list t.buf
  let length t = Ring_buffer.length t.buf
  let clear t = Ring_buffer.clear t.buf
end

(* ------------------------------------------------------------------ *)
(* JSONL serialization                                                 *)

let event_to_json (e : event) : Json.t =
  let base = [ ("t", Json.Num e.time); ("actor", Json.Str e.actor) ] in
  match e.body with
  | Span { req; phase; instance; detail } ->
    Json.Obj
      (base
      @ [ ("type", Json.Str "span");
          ("client", Json.int (Ids.Client_id.to_int req.client));
          ("seq", Json.int req.seq);
          ("phase", Json.Str (phase_name phase)) ]
      @ (if instance >= 0 then [ ("instance", Json.int instance) ] else [])
      @ if detail = "" then [] else [ ("detail", Json.Str detail) ])
  | Msg { kind; dst } ->
    Json.Obj
      (base @ [ ("type", Json.Str "msg"); ("kind", Json.Str kind); ("dst", Json.int dst) ])
  | Note text -> Json.Obj (base @ [ ("type", Json.Str "note"); ("text", Json.Str text) ])

let event_of_json (j : Json.t) : event option =
  let ( let* ) = Option.bind in
  let* time = Option.bind (Json.member "t" j) Json.to_float in
  let* actor = Option.bind (Json.member "actor" j) Json.to_str in
  let* kind = Option.bind (Json.member "type" j) Json.to_str in
  match kind with
  | "span" ->
    let* client = Option.bind (Json.member "client" j) Json.to_int in
    let* seq = Option.bind (Json.member "seq" j) Json.to_int in
    let* phase =
      Option.bind (Json.member "phase" j) (fun p ->
          Option.bind (Json.to_str p) phase_of_name)
    in
    let instance =
      Option.value ~default:(-1) (Option.bind (Json.member "instance" j) Json.to_int)
    in
    let detail =
      Option.value ~default:"" (Option.bind (Json.member "detail" j) Json.to_str)
    in
    let req = Ids.Request_id.make ~client:(Ids.Client_id.of_int client) ~seq in
    Some { time; actor; body = Span { req; phase; instance; detail } }
  | "msg" ->
    let* mkind = Option.bind (Json.member "kind" j) Json.to_str in
    let dst = Option.value ~default:(-1) (Option.bind (Json.member "dst" j) Json.to_int) in
    Some { time; actor; body = Msg { kind = mkind; dst } }
  | "note" ->
    let* text = Option.bind (Json.member "text" j) Json.to_str in
    Some { time; actor; body = Note text }
  | _ -> None

let dump_string events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let dump_file path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump_string events))

let load_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match Json.of_string line with
           | j -> event_of_json j
           | exception Json.Parse_error _ -> None)

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> load_string (really_input_string ic (in_channel_length ic)))
