module Ids = Grid_util.Ids

type phase =
  | Route
  | Client_send
  | Leader_receive
  | Propose
  | Accept_quorum
  | Commit
  | State_ship
  | Apply
  | Lease_local
      (** the leader answered a read locally under a majority lease:
          execution alone completed it, no confirm round *)
  | Reply

let all_phases =
  [ Route; Client_send; Leader_receive; Propose; Accept_quorum; Commit;
    State_ship; Apply; Lease_local; Reply ]

let phase_name = function
  | Route -> "route"
  | Client_send -> "client_send"
  | Leader_receive -> "leader_receive"
  | Propose -> "propose"
  | Accept_quorum -> "accept_quorum"
  | Commit -> "commit"
  | State_ship -> "state_ship"
  | Apply -> "apply"
  | Lease_local -> "lease_local"
  | Reply -> "reply"

let phase_of_name = function
  | "route" -> Some Route
  | "client_send" -> Some Client_send
  | "leader_receive" -> Some Leader_receive
  | "propose" -> Some Propose
  | "accept_quorum" -> Some Accept_quorum
  | "commit" -> Some Commit
  | "state_ship" -> Some State_ship
  | "apply" -> Some Apply
  | "lease_local" -> Some Lease_local
  | "reply" -> Some Reply
  | _ -> None

let pp_phase ppf p = Format.pp_print_string ppf (phase_name p)

type body =
  | Span of {
      req : Ids.Request_id.t;
      phase : phase;
      instance : int;
      detail : string;
      tid : int;
      parent : string;
    }
      (** one lifecycle point of a request; [instance = -1] when the
          event is not tied to a consensus instance, [detail = ""] unless
          the recording site has a label to attach (e.g. the rtype at
          [Leader_receive]). [tid]/[parent] are the causal trace context:
          [tid = 0] when untraced, [parent = ""] for a root span; a span's
          own id is [actor ^ ":" ^ phase_name phase]. *)
  | Msg of { kind : string; dst : int }  (** one wire message sent *)
  | Note of string  (** free-form annotation (the old [Sim.Trace] lines) *)

type event = { time : float; actor : string; body : body }

(** The id other spans use as their [parent] to point at this span. *)
let span_id ~actor phase = actor ^ ":" ^ phase_name phase

let pp_event ppf e =
  match e.body with
  | Span { req; phase; instance; detail; tid; parent } ->
    Format.fprintf ppf "%10.3f %-8s %a %a%s%s%s%s" e.time e.actor Ids.Request_id.pp req
      pp_phase phase
      (if instance >= 0 then Printf.sprintf " i=%d" instance else "")
      (if detail = "" then "" else " " ^ detail)
      (if tid <> 0 then Printf.sprintf " tid=%d" tid else "")
      (if parent = "" then "" else " <" ^ parent)
  | Msg { kind; dst } -> Format.fprintf ppf "%10.3f %-8s send %s ->%d" e.time e.actor kind dst
  | Note s -> Format.fprintf ppf "%10.3f %-8s %s" e.time e.actor s

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)

module Recorder = struct
  (* Struct-of-arrays ring. Recording an event allocates nothing: the
     columns are preallocated and the stored strings are the caller's —
     constants or precomputed ids on the hot paths — so a retained trace
     costs plain stores instead of boxed events that the minor GC must
     promote (which dominated the tracing overhead: a kept boxed event
     cost ~100ns of promotion; a column write costs a few ns). The
     numeric columns live in Bigarrays — outside the OCaml heap — so a
     recorder's buffer adds no GC pressure either: per-trial recorders
     in the simulator were costing more in major-collection churn from
     their own buffers than from the events recorded into them. Events
     are materialized only when read back with [events]. *)

  let phase_index = function
    | Route -> 0
    | Client_send -> 1
    | Leader_receive -> 2
    | Propose -> 3
    | Accept_quorum -> 4
    | Commit -> 5
    | State_ship -> 6
    | Apply -> 7
    | Lease_local -> 8
    | Reply -> 9

  let phase_table = Array.of_list all_phases
  let tag_msg = 100
  let tag_note = 101

  (* Per-slot layout: 5 ints (tag, client/dst, seq, instance, tid) in
     one Bigarray, 3 strings (actor; detail/kind/text; parent) in one
     OCaml array, one float (time) in a float64 Bigarray. *)
  let ints_per = 5
  let strs_per = 3

  type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = {
    enabled : bool;
    cap : int;
    mutable len : int; (* events stored, <= cap *)
    mutable next : int; (* next write slot *)
    mutable a_time : floats;
    mutable a_int : ints;
    mutable a_str : string array;
  }

  (* Shared zero-length buffers: columns are allocated on first push, so
     disabled recorders stay weightless. *)
  let empty_floats : floats = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 0
  let empty_ints : ints = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 0

  let create ?(capacity = 65536) ~enabled () =
    if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
    {
      enabled;
      cap = capacity;
      len = 0;
      next = 0;
      a_time = empty_floats;
      a_int = empty_ints;
      a_str = [||];
    }

  let disabled = create ~capacity:1 ~enabled:false ()
  let enabled t = t.enabled

  (* Columns grow geometrically up to [cap] rather than being allocated
     at full capacity upfront: a 64k-slot recorder would otherwise cost
     ~4MB of allocation and zeroing per instance, which dwarfed the
     per-event cost for short traces. Growth only happens while the ring
     has never wrapped ([len < cap]), so the live region is a prefix and
     a plain prefix copy resizes it safely. *)
  let grow t =
    let cur = Bigarray.Array1.dim t.a_time in
    let want = min t.cap (max 1024 (2 * cur)) in
    let time' = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout want in
    let int' = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (want * ints_per) in
    let str' = Array.make (want * strs_per) "" in
    if cur > 0 then begin
      Bigarray.Array1.blit t.a_time (Bigarray.Array1.sub time' 0 cur);
      Bigarray.Array1.blit t.a_int (Bigarray.Array1.sub int' 0 (cur * ints_per));
      Array.blit t.a_str 0 str' 0 (cur * strs_per)
    end;
    t.a_time <- time';
    t.a_int <- int';
    t.a_str <- str'

  let slot t =
    let dim = Bigarray.Array1.dim t.a_time in
    if t.next >= dim && dim < t.cap then grow t;
    let i = t.next in
    t.next <- (if i + 1 = t.cap then 0 else i + 1);
    if t.len < t.cap then t.len <- t.len + 1;
    i

  (* Every record function is a single branch when disabled: no event is
     constructed, no string is built. Call sites must likewise avoid
     building arguments eagerly (pass preformatted actor names, constant
     detail strings). *)

  let span ?(tid = 0) ?(parent = "") t ~time ~actor ~req ~instance ~detail phase =
    if t.enabled then begin
      let i = slot t in
      t.a_time.{i} <- time;
      let b = i * ints_per in
      t.a_int.{b} <- phase_index phase;
      t.a_int.{b + 1} <- Ids.Client_id.to_int req.Ids.Request_id.client;
      t.a_int.{b + 2} <- req.Ids.Request_id.seq;
      t.a_int.{b + 3} <- instance;
      t.a_int.{b + 4} <- tid;
      let s = i * strs_per in
      t.a_str.(s) <- actor;
      t.a_str.(s + 1) <- detail;
      t.a_str.(s + 2) <- parent
    end

  let msg t ~time ~actor ~kind ~dst =
    if t.enabled then begin
      let i = slot t in
      t.a_time.{i} <- time;
      let b = i * ints_per in
      t.a_int.{b} <- tag_msg;
      t.a_int.{b + 1} <- dst;
      let s = i * strs_per in
      t.a_str.(s) <- actor;
      t.a_str.(s + 1) <- kind;
      t.a_str.(s + 2) <- ""
    end

  let note t ~time ~actor text =
    if t.enabled then begin
      let i = slot t in
      t.a_time.{i} <- time;
      t.a_int.{i * ints_per} <- tag_note;
      let s = i * strs_per in
      t.a_str.(s) <- actor;
      t.a_str.(s + 1) <- text;
      t.a_str.(s + 2) <- ""
    end

  let notef t ~time ~actor fmt =
    if t.enabled then Format.kasprintf (fun text -> note t ~time ~actor text) fmt
    else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

  let event_at t i =
    let b = i * ints_per and s = i * strs_per in
    let tag = t.a_int.{b} in
    let body =
      if tag = tag_note then Note t.a_str.(s + 1)
      else if tag = tag_msg then Msg { kind = t.a_str.(s + 1); dst = t.a_int.{b + 1} }
      else
        Span
          {
            req =
              Ids.Request_id.make
                ~client:(Ids.Client_id.of_int t.a_int.{b + 1})
                ~seq:t.a_int.{b + 2};
            phase = phase_table.(tag);
            instance = t.a_int.{b + 3};
            detail = t.a_str.(s + 1);
            tid = t.a_int.{b + 4};
            parent = t.a_str.(s + 2);
          }
    in
    { time = t.a_time.{i}; actor = t.a_str.(s); body }

  let events t =
    let start = if t.len < t.cap then 0 else t.next in
    List.init t.len (fun k -> event_at t ((start + k) mod t.cap))

  let length t = t.len

  let clear t =
    t.len <- 0;
    t.next <- 0
end

(* ------------------------------------------------------------------ *)
(* JSONL serialization                                                 *)

let event_to_json (e : event) : Json.t =
  let base = [ ("t", Json.Num e.time); ("actor", Json.Str e.actor) ] in
  match e.body with
  | Span { req; phase; instance; detail; tid; parent } ->
    Json.Obj
      (base
      @ [ ("type", Json.Str "span");
          ("client", Json.int (Ids.Client_id.to_int req.client));
          ("seq", Json.int req.seq);
          ("phase", Json.Str (phase_name phase)) ]
      @ (if instance >= 0 then [ ("instance", Json.int instance) ] else [])
      @ (if detail = "" then [] else [ ("detail", Json.Str detail) ])
      (* trace context only when present, so untraced dumps are
         byte-identical to pre-tracing ones *)
      @ (if tid <> 0 then [ ("tid", Json.int tid) ] else [])
      @ if parent = "" then [] else [ ("parent", Json.Str parent) ])
  | Msg { kind; dst } ->
    Json.Obj
      (base @ [ ("type", Json.Str "msg"); ("kind", Json.Str kind); ("dst", Json.int dst) ])
  | Note text -> Json.Obj (base @ [ ("type", Json.Str "note"); ("text", Json.Str text) ])

let event_of_json (j : Json.t) : event option =
  let ( let* ) = Option.bind in
  let* time = Option.bind (Json.member "t" j) Json.to_float in
  let* actor = Option.bind (Json.member "actor" j) Json.to_str in
  let* kind = Option.bind (Json.member "type" j) Json.to_str in
  match kind with
  | "span" ->
    let* client = Option.bind (Json.member "client" j) Json.to_int in
    let* seq = Option.bind (Json.member "seq" j) Json.to_int in
    let* phase =
      Option.bind (Json.member "phase" j) (fun p ->
          Option.bind (Json.to_str p) phase_of_name)
    in
    let instance =
      Option.value ~default:(-1) (Option.bind (Json.member "instance" j) Json.to_int)
    in
    let detail =
      Option.value ~default:"" (Option.bind (Json.member "detail" j) Json.to_str)
    in
    let tid =
      Option.value ~default:0 (Option.bind (Json.member "tid" j) Json.to_int)
    in
    let parent =
      Option.value ~default:"" (Option.bind (Json.member "parent" j) Json.to_str)
    in
    let req = Ids.Request_id.make ~client:(Ids.Client_id.of_int client) ~seq in
    Some { time; actor; body = Span { req; phase; instance; detail; tid; parent } }
  | "msg" ->
    let* mkind = Option.bind (Json.member "kind" j) Json.to_str in
    let dst = Option.value ~default:(-1) (Option.bind (Json.member "dst" j) Json.to_int) in
    Some { time; actor; body = Msg { kind = mkind; dst } }
  | "note" ->
    let* text = Option.bind (Json.member "text" j) Json.to_str in
    Some { time; actor; body = Note text }
  | _ -> None

let dump_string events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let dump_file path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump_string events))

let load_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match Json.of_string line with
           | j -> event_of_json j
           | exception Json.Parse_error _ -> None)

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> load_string (really_input_string ic (in_channel_length ic)))
