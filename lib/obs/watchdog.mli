(** Online invariant watchdogs: the stress-tier oracles (duplicate
    commit, lost acknowledged write, stale read, lease mutual exclusion)
    as cheap runtime checkers executed inside the replica on every
    commit/reply.

    One {!t} (the sink) per process or simulated runtime: it counts
    violations — optionally into a {!Metrics.t} registry as
    [grid_watchdog_violations_total] plus one counter per check — and
    holds the cross-replica lease view. Each replica incarnation creates
    its own {!monitor} (the bounded per-replica commit table); recovery
    makes a fresh monitor and re-seeds it from storage via
    {!seed_commit}, so replayed commits are never misflagged.

    Every check is a single branch when the sink is {!disabled}. The
    module is independent of [grid_paxos]: it sees ints, floats and
    strings only. *)

type t

exception Violation of string
(** Raised by a failing check when the sink was created with
    [fail_stop:true]. *)

val create :
  ?fail_stop:bool ->
  ?metrics:Metrics.t ->
  ?on_violation:(check:string -> detail:string -> unit) ->
  unit ->
  t
(** [fail_stop] (default [false]) raises {!Violation} on the violating
    call instead of only counting. [metrics] registers the
    [grid_watchdog_*_total] counters there. [on_violation] runs on every
    violation (after counting, before any raise) — e.g. to drop a note
    into a flight recorder. *)

val disabled : t
(** Shared no-op sink: every check is one branch, nothing is counted. *)

val set_on_violation : t -> (check:string -> detail:string -> unit) -> unit
val violations : t -> int
val dup_commits : t -> int
val lost_acks : t -> int
val stale_reads : t -> int
val lease_conflicts : t -> int

val reset : t -> unit
(** Zero the counters and forget the lease view. Metrics-registered
    counters are not rewound (Prometheus counters are monotonic). *)

type monitor

val monitor : ?capacity:int -> t -> actor:string -> monitor
(** A per-replica commit table bounded to [capacity] (default 65536)
    remembered requests, oldest evicted first. *)

val seed_commit : monitor -> client:int -> seq:int -> instance:int -> unit
(** Record a commit without checking: log replay at recovery, where the
    commit was validated by a previous incarnation. *)

val record_commit : monitor -> client:int -> seq:int -> instance:int -> unit
(** Flags [dup_commit] if this request was already seen committing at a
    {e different} instance (re-delivery of the same instance is fine). *)

val write_acked : monitor -> client:int -> seq:int -> unit
(** Flags [lost_ack] if an Ok write reply is sent for a request this
    replica never saw commit. *)

val read_replied : monitor -> client:int -> seq:int -> watermark:int -> exec_point:int -> unit
(** Flags [stale_read] if a read is answered from a state behind the
    commit point it was admitted at ([exec_point < watermark]). *)

val lease_claimed : monitor -> now:float -> until:float -> slack_ms:float -> unit
(** Flags [lease_conflict] if this replica claims the read lease (serves
    a lease-local read valid [until] its local clock reaches that time)
    while another replica's claim is still live beyond the clock-skew
    allowance [slack_ms]. *)
