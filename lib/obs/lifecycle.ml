module Ids = Grid_util.Ids

type protocol = Basic | Xpaxos_read | Leased_read | Tpaxos | Unreplicated | Unknown

let protocol_name = function
  | Basic -> "basic"
  | Xpaxos_read -> "x-paxos read"
  | Leased_read -> "x-paxos leased"
  | Tpaxos -> "t-paxos"
  | Unreplicated -> "unreplicated"
  | Unknown -> "unknown"

(* The leader records the request type as a constant label on the
   [Leader_receive] span; that label is the only protocol information the
   analysis needs, keeping [grid_obs] independent of [grid_paxos]. *)
let protocol_of_detail = function
  | "read" -> Xpaxos_read
  | "read_leased" -> Leased_read
  | "write" -> Basic
  | "original" -> Unreplicated
  | "txn_op" | "txn_commit" | "txn_abort" -> Tpaxos
  | _ -> Unknown

type timeline = {
  req : Ids.Request_id.t;
  protocol : protocol;
  spans : Span.event list;  (** this request's span events, in time order *)
  phases : (Span.phase * float) list;
      (** first occurrence time of each recorded phase, in lifecycle order *)
}

type breakdown = {
  m_wan : float;  (** M: client send -> leader receive (one WAN hop) *)
  exec : float;  (** E: leader receive -> apply at the leader *)
  m_lan2 : float;  (** 2m: propose -> accept quorum (LAN round trip) *)
  total : float;  (** client send -> reply *)
}

let phase_time tl p = List.assoc_opt p tl.phases

let breakdown tl =
  let ( let* ) = Option.bind in
  let* send = phase_time tl Span.Client_send in
  let* reply = phase_time tl Span.Reply in
  let recv = phase_time tl Span.Leader_receive in
  let apply = phase_time tl Span.Apply in
  let propose = phase_time tl Span.Propose in
  let quorum = phase_time tl Span.Accept_quorum in
  let diff a b = match (a, b) with Some a, Some b -> b -. a | _ -> nan in
  Some
    {
      m_wan = diff (Some send) recv;
      exec = diff recv apply;
      m_lan2 = diff propose quorum;
      total = reply -. send;
    }

let compare_req (a : Ids.Request_id.t) b = Ids.Request_id.compare a b

(* Group the span events of a trace into per-request timelines, ordered by
   first appearance in the trace. *)
let timelines (events : Span.event list) : timeline list =
  let module M = Map.Make (struct
    type t = Ids.Request_id.t

    let compare = compare_req
  end) in
  let order = ref [] in
  let acc = ref M.empty in
  List.iter
    (fun (e : Span.event) ->
      match e.body with
      | Span { req; _ } ->
        (match M.find_opt req !acc with
        | None ->
          order := req :: !order;
          acc := M.add req [ e ] !acc
        | Some es -> acc := M.add req (e :: es) !acc)
      | Msg _ | Note _ -> ())
    events;
  List.rev_map
    (fun req ->
      let spans =
        List.stable_sort
          (fun (a : Span.event) b -> Float.compare a.time b.time)
          (List.rev (M.find req !acc))
      in
      let phases =
        List.filter_map
          (fun p ->
            List.find_map
              (fun (e : Span.event) ->
                match e.body with
                | Span s when s.phase = p -> Some (p, e.time)
                | _ -> None)
              spans)
          Span.all_phases
      in
      let protocol =
        (* A [Lease_local] span is authoritative: the read actually
           completed on the fast path. A read dispatched leased can still
           finish on the confirm path (lease lapsed mid-execution), so
           the dispatch label alone would over-count. *)
        let leased =
          List.exists
            (fun (e : Span.event) ->
              match e.body with
              | Span { phase = Lease_local; _ } -> true
              | _ -> false)
            spans
        in
        if leased then Leased_read
        else
          match
            List.find_map
              (fun (e : Span.event) ->
                match e.body with
                | Span { phase = Leader_receive; detail; _ } -> Some detail
                | _ -> None)
              spans
          with
          | Some d when d <> "read_leased" -> protocol_of_detail d
          | Some _ -> Xpaxos_read  (* dispatched leased, completed confirmed *)
          | None -> Unknown
      in
      { req; protocol; spans; phases })
    !order
  |> List.rev

let find events req = List.find_opt (fun tl -> compare_req tl.req req = 0) (timelines events)

let completed tl = phase_time tl Span.Reply <> None

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)

type phase_stats = {
  protocol : protocol;
  count : int;  (** completed requests of this protocol class *)
  mean_m_wan : float;
  mean_exec : float;
  mean_m_lan2 : float;
  mean_total : float;
}

let protocol_order = [ Basic; Xpaxos_read; Leased_read; Tpaxos; Unreplicated; Unknown ]

let phase_stats events =
  let tls = timelines events in
  List.filter_map
    (fun proto ->
      let bds =
        List.filter_map
          (fun (tl : timeline) -> if tl.protocol = proto then breakdown tl else None)
          tls
      in
      match bds with
      | [] -> None
      | _ ->
        let n = List.length bds in
        (* Per-component means ignore requests missing that component
           (e.g. reads never record propose/accept_quorum). *)
        let mean_of f =
          let xs = List.filter Float.is_finite (List.map f bds) in
          match xs with
          | [] -> nan
          | _ -> List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)
        in
        Some
          {
            protocol = proto;
            count = n;
            mean_m_wan = mean_of (fun b -> b.m_wan);
            mean_exec = mean_of (fun b -> b.exec);
            mean_m_lan2 = mean_of (fun b -> b.m_lan2);
            mean_total = mean_of (fun b -> b.total);
          })
    protocol_order

let slowest ?(n = 10) events =
  timelines events
  |> List.filter_map (fun tl ->
         match breakdown tl with Some b -> Some (tl, b) | None -> None)
  |> List.stable_sort (fun (_, a) (_, b) -> Float.compare b.total a.total)
  |> List.filteri (fun i _ -> i < n)

let message_counts events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Span.event) ->
      match e.body with
      | Msg { kind; _ } ->
        let key = (e.actor, kind) in
        Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | _ -> ())
    events;
  Hashtbl.fold (fun (actor, kind) n acc -> (actor, kind, n) :: acc) tbl []
  |> List.sort (fun (a1, k1, _) (a2, k2, _) ->
         match String.compare a1 a2 with 0 -> String.compare k1 k2 | c -> c)

(* ------------------------------------------------------------------ *)
(* Stitched trace trees                                                 *)

(* One causal trace = every span event sharing a trace id, across shard
   and actor boundaries. Edges come from the recorded [parent] span ids;
   when several events share a span id (a retry re-recording the same
   actor/phase), children attach to the first occurrence. *)

type tree = { event : Span.event; id : string; children : tree list }

let span_tid (e : Span.event) =
  match e.body with Span { tid; _ } when tid <> 0 -> Some tid | _ -> None

(* The trace id of a request: from the first traced span carrying it. *)
let trace_id_of events req =
  List.find_map
    (fun (e : Span.event) ->
      match e.body with
      | Span { req = r; tid; _ } when tid <> 0 && compare_req r req = 0 -> Some tid
      | _ -> None)
    events

let trace_ids events =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      match span_tid e with
      | Some tid when not (Hashtbl.mem seen tid) ->
        Hashtbl.replace seen tid ();
        order := tid :: !order
      | _ -> ())
    events;
  List.rev !order

let trace_tree events ~tid =
  let spans =
    List.filter (fun e -> span_tid e = Some tid) events
    |> List.stable_sort (fun (a : Span.event) b -> Float.compare a.time b.time)
    |> Array.of_list
  in
  let id_of i =
    match spans.(i).body with
    | Span { phase; _ } -> Span.span_id ~actor:spans.(i).actor phase
    | _ -> assert false
  in
  let parent_of i =
    match spans.(i).body with Span { parent; _ } -> parent | _ -> assert false
  in
  let first = Hashtbl.create 16 in
  Array.iteri
    (fun i _ -> if not (Hashtbl.mem first (id_of i)) then Hashtbl.add first (id_of i) i)
    spans;
  let children = Array.make (Array.length spans) [] in
  let roots = ref [] in
  (* Walk in reverse so the child lists come out in time order. *)
  for i = Array.length spans - 1 downto 0 do
    let p = parent_of i in
    match (if p = "" then None else Hashtbl.find_opt first p) with
    | Some pi when pi <> i -> children.(pi) <- i :: children.(pi)
    | _ -> roots := i :: !roots
  done;
  let rec build i =
    { event = spans.(i); id = id_of i; children = List.map build children.(i) }
  in
  List.map build !roots

(* ------------------------------------------------------------------ *)
(* Tail attribution                                                     *)

(* Which inter-phase segment dominates tail latency, per protocol class:
   over the completed requests whose total latency is at or above the
   [pct] percentile, the mean duration of each consecutive phase-to-phase
   segment (first-occurrence times, time-sorted), largest first. *)

type attribution = {
  a_protocol : protocol;
  a_count : int;  (** completed requests of this class *)
  a_tail : int;  (** requests at/above the threshold *)
  a_threshold : float;  (** the [pct] percentile of total latency, ms *)
  a_segments : (string * float) list;  (** segment -> mean ms over the tail *)
}

let tail_attribution ?(pct = 99.0) events =
  let tls = timelines events in
  List.filter_map
    (fun proto ->
      let completed =
        List.filter_map
          (fun (tl : timeline) ->
            if tl.protocol <> proto then None
            else Option.map (fun b -> (tl, b.total)) (breakdown tl))
          tls
      in
      match completed with
      | [] -> None
      | _ ->
        let totals = Array.of_list (List.map snd completed) in
        let threshold = Grid_util.Stats.percentile totals pct in
        let tail = List.filter (fun (_, t) -> t >= threshold) completed in
        let sums = Hashtbl.create 8 in
        List.iter
          (fun ((tl : timeline), _) ->
            let pts =
              List.stable_sort
                (fun (_, a) (_, b) -> Float.compare a b)
                tl.phases
            in
            let rec segs = function
              | (pa, ta) :: ((pb, tb) :: _ as rest) ->
                let key = Span.phase_name pa ^ "->" ^ Span.phase_name pb in
                let s, n =
                  Option.value ~default:(0.0, 0) (Hashtbl.find_opt sums key)
                in
                Hashtbl.replace sums key (s +. (tb -. ta), n + 1);
                segs rest
              | _ -> ()
            in
            segs pts)
          tail;
        let segments =
          Hashtbl.fold (fun k (s, n) acc -> (k, s /. Float.of_int n) :: acc) sums []
          |> List.sort (fun (ka, a) (kb, b) ->
                 match Float.compare b a with 0 -> String.compare ka kb | c -> c)
        in
        Some
          {
            a_protocol = proto;
            a_count = List.length completed;
            a_tail = List.length tail;
            a_threshold = threshold;
            a_segments = segments;
          })
    protocol_order

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let pp_breakdown ppf b =
  let cell v = if Float.is_finite v then Printf.sprintf "%8.3f" v else "       -" in
  Format.fprintf ppf "M=%s E=%s 2m=%s total=%s" (cell b.m_wan) (cell b.exec)
    (cell b.m_lan2) (cell b.total)

let pp_timeline ppf tl =
  Format.fprintf ppf "%a (%s)@." Ids.Request_id.pp tl.req (protocol_name tl.protocol);
  (match tl.phases with
  | [] -> ()
  | (_, t0) :: _ ->
    List.iter
      (fun (e : Span.event) ->
        match e.body with
        | Span { phase; instance; detail; _ } ->
          Format.fprintf ppf "  +%9.3f %-8s %-14s%s%s@." (e.time -. t0) e.actor
            (Span.phase_name phase)
            (if instance >= 0 then Printf.sprintf " i=%d" instance else "")
            (if detail = "" then "" else " " ^ detail)
        | _ -> ())
      tl.spans);
  match breakdown tl with
  | Some b -> Format.fprintf ppf "  %a@." pp_breakdown b
  | None -> Format.fprintf ppf "  (incomplete: no reply recorded)@."

let pp_phase_stats ppf stats =
  Format.fprintf ppf "%-14s %6s %10s %10s %10s %10s@." "protocol" "n" "M" "E" "2m"
    "total";
  List.iter
    (fun s ->
      let cell v = if Float.is_finite v then Printf.sprintf "%10.3f" v else "         -" in
      Format.fprintf ppf "%-14s %6d %s %s %s %s@." (protocol_name s.protocol) s.count
        (cell s.mean_m_wan) (cell s.mean_exec) (cell s.mean_m_lan2)
        (cell s.mean_total))
    stats

let pp_tree ppf roots =
  let rec go depth node =
    (match node.event.body with
    | Span.Span { req; phase; instance; detail; _ } ->
      Format.fprintf ppf "%s+%9.3f %-22s %a %s%s%s@." (String.make (2 * depth) ' ')
        node.event.time
        (node.event.actor ^ ":" ^ Span.phase_name phase)
        Ids.Request_id.pp req
        (if instance >= 0 then Printf.sprintf "i=%d " instance else "")
        (if detail = "" then "" else detail ^ " ")
        ""
    | _ -> ());
    List.iter (go (depth + 1)) node.children
  in
  List.iter (go 0) roots

let pp_attribution ppf attrs =
  List.iter
    (fun a ->
      Format.fprintf ppf "%-14s n=%d tail(>=p)=%d threshold=%.3f ms@."
        (protocol_name a.a_protocol) a.a_count a.a_tail a.a_threshold;
      List.iter
        (fun (seg, mean) -> Format.fprintf ppf "    %-30s %10.3f ms@." seg mean)
        a.a_segments)
    attrs
