module Ids = Grid_util.Ids

type protocol = Basic | Xpaxos_read | Leased_read | Tpaxos | Unreplicated | Unknown

let protocol_name = function
  | Basic -> "basic"
  | Xpaxos_read -> "x-paxos read"
  | Leased_read -> "x-paxos leased"
  | Tpaxos -> "t-paxos"
  | Unreplicated -> "unreplicated"
  | Unknown -> "unknown"

(* The leader records the request type as a constant label on the
   [Leader_receive] span; that label is the only protocol information the
   analysis needs, keeping [grid_obs] independent of [grid_paxos]. *)
let protocol_of_detail = function
  | "read" -> Xpaxos_read
  | "read_leased" -> Leased_read
  | "write" -> Basic
  | "original" -> Unreplicated
  | "txn_op" | "txn_commit" | "txn_abort" -> Tpaxos
  | _ -> Unknown

type timeline = {
  req : Ids.Request_id.t;
  protocol : protocol;
  spans : Span.event list;  (** this request's span events, in time order *)
  phases : (Span.phase * float) list;
      (** first occurrence time of each recorded phase, in lifecycle order *)
}

type breakdown = {
  m_wan : float;  (** M: client send -> leader receive (one WAN hop) *)
  exec : float;  (** E: leader receive -> apply at the leader *)
  m_lan2 : float;  (** 2m: propose -> accept quorum (LAN round trip) *)
  total : float;  (** client send -> reply *)
}

let phase_time tl p = List.assoc_opt p tl.phases

let breakdown tl =
  let ( let* ) = Option.bind in
  let* send = phase_time tl Span.Client_send in
  let* reply = phase_time tl Span.Reply in
  let recv = phase_time tl Span.Leader_receive in
  let apply = phase_time tl Span.Apply in
  let propose = phase_time tl Span.Propose in
  let quorum = phase_time tl Span.Accept_quorum in
  let diff a b = match (a, b) with Some a, Some b -> b -. a | _ -> nan in
  Some
    {
      m_wan = diff (Some send) recv;
      exec = diff recv apply;
      m_lan2 = diff propose quorum;
      total = reply -. send;
    }

let compare_req (a : Ids.Request_id.t) b = Ids.Request_id.compare a b

(* Group the span events of a trace into per-request timelines, ordered by
   first appearance in the trace. *)
let timelines (events : Span.event list) : timeline list =
  let module M = Map.Make (struct
    type t = Ids.Request_id.t

    let compare = compare_req
  end) in
  let order = ref [] in
  let acc = ref M.empty in
  List.iter
    (fun (e : Span.event) ->
      match e.body with
      | Span { req; _ } ->
        (match M.find_opt req !acc with
        | None ->
          order := req :: !order;
          acc := M.add req [ e ] !acc
        | Some es -> acc := M.add req (e :: es) !acc)
      | Msg _ | Note _ -> ())
    events;
  List.rev_map
    (fun req ->
      let spans =
        List.stable_sort
          (fun (a : Span.event) b -> Float.compare a.time b.time)
          (List.rev (M.find req !acc))
      in
      let phases =
        List.filter_map
          (fun p ->
            List.find_map
              (fun (e : Span.event) ->
                match e.body with
                | Span s when s.phase = p -> Some (p, e.time)
                | _ -> None)
              spans)
          Span.all_phases
      in
      let protocol =
        (* A [Lease_local] span is authoritative: the read actually
           completed on the fast path. A read dispatched leased can still
           finish on the confirm path (lease lapsed mid-execution), so
           the dispatch label alone would over-count. *)
        let leased =
          List.exists
            (fun (e : Span.event) ->
              match e.body with
              | Span { phase = Lease_local; _ } -> true
              | _ -> false)
            spans
        in
        if leased then Leased_read
        else
          match
            List.find_map
              (fun (e : Span.event) ->
                match e.body with
                | Span { phase = Leader_receive; detail; _ } -> Some detail
                | _ -> None)
              spans
          with
          | Some d when d <> "read_leased" -> protocol_of_detail d
          | Some _ -> Xpaxos_read  (* dispatched leased, completed confirmed *)
          | None -> Unknown
      in
      { req; protocol; spans; phases })
    !order
  |> List.rev

let find events req = List.find_opt (fun tl -> compare_req tl.req req = 0) (timelines events)

let completed tl = phase_time tl Span.Reply <> None

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)

type phase_stats = {
  protocol : protocol;
  count : int;  (** completed requests of this protocol class *)
  mean_m_wan : float;
  mean_exec : float;
  mean_m_lan2 : float;
  mean_total : float;
}

let protocol_order = [ Basic; Xpaxos_read; Leased_read; Tpaxos; Unreplicated; Unknown ]

let phase_stats events =
  let tls = timelines events in
  List.filter_map
    (fun proto ->
      let bds =
        List.filter_map
          (fun (tl : timeline) -> if tl.protocol = proto then breakdown tl else None)
          tls
      in
      match bds with
      | [] -> None
      | _ ->
        let n = List.length bds in
        (* Per-component means ignore requests missing that component
           (e.g. reads never record propose/accept_quorum). *)
        let mean_of f =
          let xs = List.filter Float.is_finite (List.map f bds) in
          match xs with
          | [] -> nan
          | _ -> List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)
        in
        Some
          {
            protocol = proto;
            count = n;
            mean_m_wan = mean_of (fun b -> b.m_wan);
            mean_exec = mean_of (fun b -> b.exec);
            mean_m_lan2 = mean_of (fun b -> b.m_lan2);
            mean_total = mean_of (fun b -> b.total);
          })
    protocol_order

let slowest ?(n = 10) events =
  timelines events
  |> List.filter_map (fun tl ->
         match breakdown tl with Some b -> Some (tl, b) | None -> None)
  |> List.stable_sort (fun (_, a) (_, b) -> Float.compare b.total a.total)
  |> List.filteri (fun i _ -> i < n)

let message_counts events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Span.event) ->
      match e.body with
      | Msg { kind; _ } ->
        let key = (e.actor, kind) in
        Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | _ -> ())
    events;
  Hashtbl.fold (fun (actor, kind) n acc -> (actor, kind, n) :: acc) tbl []
  |> List.sort (fun (a1, k1, _) (a2, k2, _) ->
         match String.compare a1 a2 with 0 -> String.compare k1 k2 | c -> c)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let pp_breakdown ppf b =
  let cell v = if Float.is_finite v then Printf.sprintf "%8.3f" v else "       -" in
  Format.fprintf ppf "M=%s E=%s 2m=%s total=%s" (cell b.m_wan) (cell b.exec)
    (cell b.m_lan2) (cell b.total)

let pp_timeline ppf tl =
  Format.fprintf ppf "%a (%s)@." Ids.Request_id.pp tl.req (protocol_name tl.protocol);
  (match tl.phases with
  | [] -> ()
  | (_, t0) :: _ ->
    List.iter
      (fun (e : Span.event) ->
        match e.body with
        | Span { phase; instance; detail; _ } ->
          Format.fprintf ppf "  +%9.3f %-8s %-14s%s%s@." (e.time -. t0) e.actor
            (Span.phase_name phase)
            (if instance >= 0 then Printf.sprintf " i=%d" instance else "")
            (if detail = "" then "" else " " ^ detail)
        | _ -> ())
      tl.spans);
  match breakdown tl with
  | Some b -> Format.fprintf ppf "  %a@." pp_breakdown b
  | None -> Format.fprintf ppf "  (incomplete: no reply recorded)@."

let pp_phase_stats ppf stats =
  Format.fprintf ppf "%-14s %6s %10s %10s %10s %10s@." "protocol" "n" "M" "E" "2m"
    "total";
  List.iter
    (fun s ->
      let cell v = if Float.is_finite v then Printf.sprintf "%10.3f" v else "         -" in
      Format.fprintf ppf "%-14s %6d %s %s %s %s@." (protocol_name s.protocol) s.count
        (cell s.mean_m_wan) (cell s.mean_exec) (cell s.mean_m_lan2)
        (cell s.mean_total))
    stats
