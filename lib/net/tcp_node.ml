open Grid_paxos.Types
module Rng = Grid_util.Rng
module Span = Grid_obs.Span
module Metrics = Grid_obs.Metrics
module Wire_codec = Grid_paxos.Wire_codec

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Transport counters, one registry per node. Unlike the simulator's
   metrics these count real socket traffic: dial attempts and failures
   feed the backoff story, sent/received feed throughput sanity checks,
   and the byte counters price the wire format itself (the reason the
   codec is versioned at all). *)
type net_meters = {
  registry : Metrics.t;
  nm_sent : Metrics.counter;
  nm_received : Metrics.counter;
  nm_bytes : Metrics.counter;  (* both directions, frame overhead included *)
  nm_bytes_sent : Metrics.counter;
  nm_bytes_received : Metrics.counter;
  nm_bytes_by_kind : (string, Metrics.counter) Hashtbl.t;
      (* per message kind, both directions *)
  nm_decode_errors : Metrics.counter;
  nm_dials : Metrics.counter;
  nm_dial_failures : Metrics.counter;
  nm_conns : Metrics.gauge;
  nm_backoff : (int, Metrics.gauge) Hashtbl.t;
      (* per-peer current reconnect delay, 0 when healthy *)
  nm_wire_version : (int, Metrics.gauge) Hashtbl.t;
      (* per-peer negotiated protocol version, 0 when disconnected *)
}

let make_meters ~peers () =
  let registry = Metrics.create () in
  let nm_backoff = Hashtbl.create 8 in
  let nm_wire_version = Hashtbl.create 8 in
  List.iter
    (fun p ->
      Hashtbl.replace nm_backoff p
        (Metrics.gauge registry
           (Printf.sprintf "grid_net_backoff_ms_peer_%d" p)
           ~help:"Current reconnect backoff delay toward this peer (0 = healthy)");
      Hashtbl.replace nm_wire_version p
        (Metrics.gauge registry
           (Printf.sprintf "grid_net_wire_version_peer_%d" p)
           ~help:
             "Wire-protocol version negotiated with this peer (0 = not connected)"))
    peers;
  let nm_bytes_by_kind = Hashtbl.create 16 in
  List.iter
    (fun kind ->
      Hashtbl.replace nm_bytes_by_kind kind
        (Metrics.counter registry
           (Printf.sprintf "grid_net_bytes_total_%s" kind)
           ~help:"On-wire bytes carrying this message kind, both directions"))
    Grid_paxos.Types.all_msg_kinds;
  {
    registry;
    nm_sent =
      Metrics.counter registry "grid_net_messages_sent_total"
        ~help:"Protocol messages written to peer sockets";
    nm_received =
      Metrics.counter registry "grid_net_messages_received_total"
        ~help:"Protocol messages read off peer sockets";
    nm_bytes =
      Metrics.counter registry "grid_net_bytes_total"
        ~help:"On-wire bytes, both directions, frame overhead included";
    nm_bytes_sent =
      Metrics.counter registry "grid_net_bytes_sent_total"
        ~help:"On-wire bytes written to peer sockets";
    nm_bytes_received =
      Metrics.counter registry "grid_net_bytes_received_total"
        ~help:"On-wire bytes read off peer sockets";
    nm_bytes_by_kind;
    nm_decode_errors =
      Metrics.counter registry "grid_net_decode_errors_total"
        ~help:"Frames dropped as corrupt or undecodable (connection closed)";
    nm_dials =
      Metrics.counter registry "grid_net_dials_total"
        ~help:"Outbound connection attempts";
    nm_dial_failures =
      Metrics.counter registry "grid_net_dial_failures_total"
        ~help:"Failed dials (peer enters reconnect backoff)";
    nm_conns =
      Metrics.gauge registry "grid_net_connections"
        ~help:"Currently established peer connections";
    nm_backoff;
    nm_wire_version;
  }

let set_backoff_gauge meters peer ms =
  match Hashtbl.find_opt meters.nm_backoff peer with
  | Some g -> Metrics.set g ms
  | None -> ()

let set_version_gauge meters peer v =
  match Hashtbl.find_opt meters.nm_wire_version peer with
  | Some g -> Metrics.set g (float_of_int v)
  | None -> ()

let count_bytes meters msg n =
  Metrics.inc ~by:n meters.nm_bytes;
  match Hashtbl.find_opt meters.nm_bytes_by_kind (msg_kind msg) with
  | Some c -> Metrics.inc ~by:n c
  | None -> ()

(* Release the per-peer gauges when the node stops: their names embed
   peer ids, so a node restarted against a different peer set must not
   inherit stale series from the previous incarnation. *)
let release_meters meters =
  Hashtbl.iter
    (fun p _ ->
      Metrics.unregister meters.registry
        (Printf.sprintf "grid_net_backoff_ms_peer_%d" p))
    meters.nm_backoff;
  Hashtbl.reset meters.nm_backoff;
  Hashtbl.iter
    (fun p _ ->
      Metrics.unregister meters.registry
        (Printf.sprintf "grid_net_wire_version_peer_%d" p))
    meters.nm_wire_version;
  Hashtbl.reset meters.nm_wire_version

(* Reconnect backoff: a peer that refused a dial is not redialed before a
   delay that doubles per consecutive failure, from [backoff_base_ms] up
   to [backoff_cap_ms], with jitter so a restarted replica is not hit by
   every peer in the same instant. Without this, a dead peer costs one
   connect syscall per outgoing message (heartbeats: every few ms). The
   constants are per-node state, settable at [start] time. *)
let default_backoff_base_ms = 20.0
let default_backoff_cap_ms = 2000.0

(* ------------------------------------------------------------------ *)
(* Per-connection codec: fixed at handshake time by version negotiation
   and used for every frame on that socket in both directions. *)

module type CONN_CODEC = sig
  val write_msg : Unix.file_descr -> msg -> int
  val read_msg : Unix.file_descr -> (msg * int, Framing.read_error) result
end

module Codec_v1 = Framing.Codec (Wire_codec.V1)
module Codec_v2 = Framing.Codec (Wire_codec.V2)

let conn_codec version : (module CONN_CODEC) =
  match version with
  | 1 -> (module Codec_v1)
  | 2 -> (module Codec_v2)
  | v -> invalid_arg (Printf.sprintf "Tcp_node.conn_codec: version %d" v)

type conn = { fd : Unix.file_descr; version : int; codec : (module CONN_CODEC) }

(* ------------------------------------------------------------------ *)
(* Generic event loop: an inbox fed by reader threads, a timer queue, and
   a self-pipe so the main loop can sleep in [select] yet wake on either
   a message or a due timer. *)

type core = {
  node_id : int;
  max_wire_version : int;  (* highest version advertised in hellos *)
  mutex : Mutex.t;
  inbox : (int * msg) Queue.t;
  thunks : (unit -> unit) Queue.t;  (* injected work, run on the loop thread *)
  mutable timers : (float * timer) list;  (* sorted by due time *)
  mutable conns : (int * conn) list;
  mutable stop : bool;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  addresses : (int * Unix.sockaddr) list;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  (* peer -> (earliest next dial in ms, current backoff delay in ms) *)
  backoff : (int, float * float) Hashtbl.t;
  rng : Rng.t;  (* jitter; guarded by [mutex] *)
  obs : Span.Recorder.t;  (* spans timed on the wall clock (ms) *)
  actor : string;
  meters : net_meters;
}

let create_core ?(obs = Span.Recorder.disabled)
    ?(backoff_base_ms = default_backoff_base_ms)
    ?(backoff_cap_ms = default_backoff_cap_ms)
    ?(max_wire_version = Wire_codec.latest_version) ~node_id ~actor ~addresses
    () =
  if max_wire_version < Wire_codec.min_version then
    invalid_arg "Tcp_node.create_core: max_wire_version below min_version";
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  {
    node_id;
    max_wire_version;
    mutex = Mutex.create ();
    inbox = Queue.create ();
    thunks = Queue.create ();
    timers = [];
    conns = [];
    stop = false;
    pipe_r;
    pipe_w;
    addresses;
    backoff_base_ms;
    backoff_cap_ms;
    backoff = Hashtbl.create 8;
    rng = Rng.of_int (0x7cb1 + node_id);
    obs;
    actor;
    meters = make_meters ~peers:(List.map fst addresses) ();
  }

let wake core = try ignore (Unix.write_substring core.pipe_w "x" 0 1) with _ -> ()

let with_lock core f =
  Mutex.lock core.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock core.mutex) f

let enqueue_msg core src msg =
  Metrics.inc core.meters.nm_received;
  with_lock core (fun () -> Queue.add (src, msg) core.inbox);
  wake core

let inject core thunk =
  with_lock core (fun () -> Queue.add thunk core.thunks);
  wake core

(* Run [f] on the node's loop thread and wait for its result: engine
   access is confined to that thread, so introspection (admin endpoint,
   test accessors) synchronizes through the inbox. *)
let run_on_loop core f =
  let result = ref None in
  let m = Mutex.create () and c = Condition.create () in
  inject core (fun () ->
      Mutex.lock m;
      result := Some (f ());
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while !result = None do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Option.get !result

let register_conn core peer conn =
  with_lock core (fun () ->
      core.conns <- (peer, conn) :: List.remove_assoc peer core.conns;
      Metrics.set core.meters.nm_conns (float_of_int (List.length core.conns)));
  set_version_gauge core.meters peer conn.version

let drop_conn core peer =
  with_lock core (fun () ->
      core.conns <- List.remove_assoc peer core.conns;
      Metrics.set core.meters.nm_conns (float_of_int (List.length core.conns)));
  set_version_gauge core.meters peer 0

(* The negotiated version per live peer connection, for /health. *)
let peer_versions core =
  with_lock core (fun () -> List.map (fun (p, c) -> (p, c.version)) core.conns)

let note_corrupt core ~peer err =
  Metrics.inc core.meters.nm_decode_errors;
  if Span.Recorder.enabled core.obs then
    Span.Recorder.note core.obs ~time:(now_ms ()) ~actor:core.actor
      (Format.asprintf "drop conn to %d: %a" peer Framing.pp_read_error err)

(* Reader thread: handshake already done; pump messages into the inbox.
   [Eof] is a peer going away (normal churn); [Corrupt] is an
   unresynchronizable stream — count it, note it, and drop the
   connection. Either way the socket is closed and the next send
   redials. *)
let reader_thread core peer (conn : conn) =
  let module C = (val conn.codec : CONN_CODEC) in
  let rec pump () =
    if core.stop then ()
    else
      match C.read_msg conn.fd with
      | Ok (msg, bytes) ->
        Metrics.inc ~by:bytes core.meters.nm_bytes_received;
        count_bytes core.meters msg bytes;
        enqueue_msg core peer msg;
        pump ()
      | Error Eof -> ()
      | Error (Corrupt _ as err) -> note_corrupt core ~peer err
      | exception Unix.Unix_error _ -> ()
  in
  pump ();
  drop_conn core peer;
  try Unix.close conn.fd with _ -> ()

(* Get (or dial) the connection to [peer]; None if unreachable or still
   backing off after a failed dial. Dialing performs the version
   handshake synchronously: send our hello, read the listener's hello
   back, settle on min(local, peer). *)
exception Handshake_failed of string

let connection core peer =
  match with_lock core (fun () -> List.assoc_opt peer core.conns) with
  | Some conn -> Some conn
  | None -> (
    match List.assoc_opt peer core.addresses with
    | None -> None
    | Some addr ->
      let now = now_ms () in
      let backing_off =
        with_lock core (fun () ->
            match Hashtbl.find_opt core.backoff peer with
            | Some (not_before, _) -> now < not_before
            | None -> false)
      in
      if backing_off then None
      else (
        Metrics.inc core.meters.nm_dials;
        try
          let fd = Unix.socket PF_INET SOCK_STREAM 0 in
          let conn =
            try
              Unix.setsockopt fd TCP_NODELAY true;
              Unix.connect fd addr;
              Framing.write_hello fd ~node_id:core.node_id
                ~max_version:core.max_wire_version;
              let _peer_id, peer_max =
                match Framing.read_hello fd with
                | Ok hello -> hello
                | Error e ->
                  raise
                    (Handshake_failed
                       (Format.asprintf "%a" Framing.pp_read_error e))
              in
              let version =
                match
                  Wire_codec.negotiate ~local_max:core.max_wire_version
                    ~peer_max
                with
                | Some v -> v
                | None ->
                  raise
                    (Handshake_failed
                       (Printf.sprintf "no common wire version (peer max %d)"
                          peer_max))
              in
              { fd; version; codec = conn_codec version }
            with e ->
              (try Unix.close fd with _ -> ());
              raise e
          in
          with_lock core (fun () -> Hashtbl.remove core.backoff peer);
          set_backoff_gauge core.meters peer 0.0;
          register_conn core peer conn;
          ignore (Thread.create (fun () -> reader_thread core peer conn) ());
          Some conn
        with
        | Unix.Unix_error _ | Framing.Closed | Handshake_failed _ ->
          Metrics.inc core.meters.nm_dial_failures;
          with_lock core (fun () ->
              let prev =
                match Hashtbl.find_opt core.backoff peer with
                | Some (_, d) -> d
                | None -> 0.0
              in
              let next =
                Float.min core.backoff_cap_ms
                  (Float.max core.backoff_base_ms (prev *. 2.0))
              in
              (* Jitter in [next/2, next): consecutive retries stay spread
                 out even when every peer noticed the death together. *)
              let wait = next *. (0.5 +. Rng.float core.rng 0.5) in
              Hashtbl.replace core.backoff peer (now +. wait, next));
          (match with_lock core (fun () -> Hashtbl.find_opt core.backoff peer) with
          | Some (_, d) -> set_backoff_gauge core.meters peer d
          | None -> ());
          None))

let send_msg core ~dst msg =
  if Span.Recorder.enabled core.obs then
    Span.Recorder.msg core.obs ~time:(now_ms ()) ~actor:core.actor
      ~kind:(msg_kind msg) ~dst;
  match connection core dst with
  | None -> ()  (* unreachable peer: retransmission recovers *)
  | Some conn -> (
    let module C = (val conn.codec : CONN_CODEC) in
    try
      let bytes = C.write_msg conn.fd msg in
      Metrics.inc core.meters.nm_sent;
      Metrics.inc ~by:bytes core.meters.nm_bytes_sent;
      count_bytes core.meters msg bytes
    with Framing.Closed | Unix.Unix_error _ -> drop_conn core dst)

let arm_timer core ~due timer =
  with_lock core (fun () ->
      core.timers <-
        List.merge
          (fun (a, _) (b, _) -> Float.compare a b)
          core.timers [ (due, timer) ])

let run_actions core actions =
  List.iter
    (function
      | Send { dst; msg } -> send_msg core ~dst msg
      | After { delay; timer } -> arm_timer core ~due:(now_ms () +. delay) timer
      | Note s ->
        if Span.Recorder.enabled core.obs then
          Span.Recorder.note core.obs ~time:(now_ms ()) ~actor:core.actor s)
    actions

(* The main loop: [handle] processes one input and returns actions. *)
let event_loop core handle =
  let drain_pipe () =
    let buf = Bytes.create 64 in
    try
      while Unix.read core.pipe_r buf 0 64 > 0 do
        ()
      done
    with Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  in
  while not core.stop do
    (* Pull work under the lock. *)
    let inputs, thunks, timeout =
      with_lock core (fun () ->
          let msgs = Queue.fold (fun acc x -> x :: acc) [] core.inbox in
          Queue.clear core.inbox;
          let thunks = Queue.fold (fun acc x -> x :: acc) [] core.thunks in
          Queue.clear core.thunks;
          let now = now_ms () in
          let due, later = List.partition (fun (d, _) -> d <= now) core.timers in
          core.timers <- later;
          let timeout =
            match later with
            | [] -> 0.1 (* s *)
            | (d, _) :: _ -> Float.max 0.0 ((d -. now) /. 1000.0)
          in
          ( List.rev_map (fun (src, msg) -> Receive { src; msg }) msgs
            @ List.map (fun (_, timer) -> Timer timer) due,
            List.rev thunks,
            timeout ))
    in
    List.iter (fun thunk -> thunk ()) thunks;
    List.iter (fun input -> run_actions core (handle ~now:(now_ms ()) input)) inputs;
    if inputs = [] && thunks = [] then begin
      (match Unix.select [ core.pipe_r ] [] [] timeout with
      | [ _ ], _, _ -> drain_pipe ()
      | _ -> ()
      | exception Unix.Unix_error (EINTR, _, _) -> ())
    end
  done

let shutdown core =
  core.stop <- true;
  wake core;
  with_lock core (fun () ->
      List.iter
        (fun (_, c) -> try Unix.shutdown c.fd SHUTDOWN_ALL with _ -> ())
        core.conns)

(* ------------------------------------------------------------------ *)
(* Admin endpoint: a minimal HTTP/1.0 responder sharing the replica's
   accept loop. A protocol connection opens with a hello frame whose
   first bytes are a little-endian length (tiny, so never printable
   ASCII); an HTTP request opens with a method name — peeking four bytes
   disambiguates without consuming either. No HTTP library: one request
   line in, one Content-Length response out, connection closed. *)

let sniff_http fd =
  let methods = [ "GET "; "HEAD"; "POST" ] in
  let buf = Bytes.create 4 in
  let rec peek attempts =
    match Unix.recv fd buf 0 4 [ Unix.MSG_PEEK ] with
    | 0 -> false
    | n ->
      (* Classify on whatever prefix has arrived: the moment the peeked
         bytes diverge from every method we serve this is a protocol
         peer (its hello starts with a tiny length byte, never a
         printable method prefix) — don't stall it through the retry
         budget, and never fall back to judging the first byte alone. A
         true prefix is a dribbling HTTP client: retry, and if the wire
         stays short past the budget, trust the prefix. *)
      let s = Bytes.sub_string buf 0 n in
      if not (List.exists (fun m -> String.sub m 0 n = s) methods) then false
      else if n = 4 then true
      else if attempts > 0 then begin
        Thread.delay 0.002;
        peek (attempts - 1)
      end
      else true
  in
  try peek 25 with Unix.Unix_error _ -> false

(* Read up to the end of the request line; headers and body (if any) are
   irrelevant to the admin surface and left unread. *)
let read_request_line fd =
  let buf = Buffer.create 64 in
  let b = Bytes.create 1 in
  let rec go () =
    if Buffer.length buf > 4096 then Buffer.contents buf
    else if Unix.read fd b 0 1 <> 1 then Buffer.contents buf
    else
      match Bytes.get b 0 with
      | '\n' -> Buffer.contents buf
      | '\r' -> go ()
      | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

(* One thread per admin request: parse the path, ask the node's [routes]
   callback for a body, answer, close. *)
let http_thread routes fd =
  (try
     let line = read_request_line fd in
     let path =
       match String.split_on_char ' ' line with
       | _meth :: path :: _ -> path
       | _ -> "/"
     in
     let response =
       match routes path with
       | Some (content_type, body) ->
         http_response ~status:"200 OK" ~content_type body
       | None ->
         http_response ~status:"404 Not Found" ~content_type:"text/plain"
           "not found\n"
     in
     ignore (Unix.write_substring fd response 0 (String.length response))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with _ -> ()

(* ------------------------------------------------------------------ *)

module Make (S : Grid_paxos.Service_intf.S) = struct
  module R = Grid_paxos.Replica.Make (S)
  module Client = Grid_paxos.Client

  type replica_handle = {
    r_core : core;
    replica : R.t;
    r_watchdog : Grid_obs.Watchdog.t;
    r_loop : Thread.t;
    r_accept : Thread.t;
    listener : Unix.file_descr;
  }

  (* Inbound handshake: read the dialer's hello, answer with ours, keep
     the connection iff the version ranges overlap. A corrupt hello (or
     a version gap) closes the socket; the dialer sees EOF and backs
     off. *)
  let acceptor ?routes core listener =
    try
      while not core.stop do
        let fd, _ = Unix.accept listener in
        Unix.setsockopt fd TCP_NODELAY true;
        match routes with
        | Some routes when sniff_http fd ->
          ignore (Thread.create (fun () -> http_thread routes fd) ())
        | _ -> (
          match Framing.read_hello fd with
          | Ok (peer, peer_max) -> (
            match
              Wire_codec.negotiate ~local_max:core.max_wire_version ~peer_max
            with
            | Some version -> (
              match
                Framing.write_hello fd ~node_id:core.node_id
                  ~max_version:core.max_wire_version
              with
              | () ->
                let conn = { fd; version; codec = conn_codec version } in
                register_conn core peer conn;
                ignore (Thread.create (fun () -> reader_thread core peer conn) ())
              | exception (Framing.Closed | Unix.Unix_error _) -> (
                try Unix.close fd with _ -> ()))
            | None ->
              note_corrupt core ~peer
                (Framing.Corrupt
                   { pos = 0;
                     msg = Printf.sprintf "no common wire version (peer max %d)" peer_max
                   });
              (try Unix.close fd with _ -> ()))
          | Error Eof -> ( try Unix.close fd with _ -> ())
          | Error (Corrupt _ as err) ->
            note_corrupt core ~peer:(-1) err;
            (try Unix.close fd with _ -> ()))
      done
    with Unix.Unix_error _ -> ()

  let start_replica ~cfg ~id ~port ~peers ?storage ?obs ?(flight_capacity = 2048)
      ?backoff_base_ms ?backoff_cap_ms ?max_wire_version () =
    let actor = "r" ^ string_of_int id in
    (* Flight recorder: unless the caller supplies a recorder, keep a
       bounded always-on one — the last [flight_capacity] events are a
       crash-scene record dumped by the admin endpoint, at ring-buffer
       cost. *)
    let obs =
      match obs with
      | Some o -> o
      | None -> Span.Recorder.create ~capacity:flight_capacity ~enabled:true ()
    in
    let core =
      create_core ~obs ?backoff_base_ms ?backoff_cap_ms ?max_wire_version
        ~node_id:id ~actor ~addresses:peers ()
    in
    (* Online invariant checks: counted in this node's registry and noted
       into the flight recorder, so /metrics and /flightrec both carry the
       violation story. *)
    let watchdog =
      Grid_obs.Watchdog.create
        ~fail_stop:cfg.Grid_paxos.Config.watchdog_fail_stop
        ~metrics:core.meters.registry
        ~on_violation:(fun ~check ~detail ->
          Span.Recorder.note obs ~time:(now_ms ()) ~actor
            (Printf.sprintf "watchdog %s: %s" check detail))
        ()
    in
    let replica = R.create ~cfg ~id ?storage ~obs ~actor ~watchdog () in
    let listener = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt listener SO_REUSEADDR true;
    Unix.bind listener (ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen listener 64;
    (* Engine access is confined to the loop thread; bootstrap through an
       injected thunk. *)
    inject core (fun () -> run_actions core (R.bootstrap replica));
    (* Resharding visibility (DESIGN.md §17): gauges track the replica's
       partition-map epoch and migration progress; refreshed after every
       handled input (four stores, no lookup). *)
    let reshard_epoch_g =
      Metrics.gauge core.meters.registry "grid_reshard_epoch"
        ~help:"Partition-map epoch this replica has committed"
    in
    let reshard_migrating_g =
      Metrics.gauge core.meters.registry "grid_reshard_migrating"
        ~help:"1 while a split/merge holds this replica frozen or installing"
    in
    let reshard_moved_g =
      Metrics.gauge core.meters.registry "grid_reshard_moved_ranges"
        ~help:"Key ranges handed to another group and not yet received back"
    in
    let reshard_imported_g =
      Metrics.gauge core.meters.registry "grid_reshard_imported_items"
        ~help:"Items adopted from shipped migration snapshots"
    in
    let refresh_reshard () =
      Metrics.set reshard_epoch_g (Float.of_int (R.reshard_epoch replica));
      Metrics.set reshard_migrating_g
        (if R.reshard_phase replica = "idle" then 0.0 else 1.0);
      Metrics.set reshard_moved_g (Float.of_int (R.moved_ranges replica));
      Metrics.set reshard_imported_g (Float.of_int (R.imported_items replica))
    in
    refresh_reshard ();
    let handle ~now input =
      let acts = R.handle replica ~now input in
      refresh_reshard ();
      acts
    in
    let health () =
      let peer_json =
        peer_versions core
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.map (fun (p, v) -> Printf.sprintf {|"%d":%d|} p v)
        |> String.concat ","
      in
      run_on_loop core (fun () ->
          let now = now_ms () in
          let b = R.ballot replica in
          let shed_reads, shed_writes = R.stats_shed replica in
          Printf.sprintf
            {|{"node":%d,"role":"%s","ballot":{"round":%d,"holder":%d},"commit_point":%d,"holds_lease":%b,"queue_depth":%d,"reads_inflight":%d,"shed_reads":%d,"shed_writes":%d,"watchdog_violations":%d,"reshard":{"epoch":%d,"phase":"%s","moved_ranges":%d,"imported_items":%d},"wire_version":%d,"peer_wire_versions":{%s}}|}
            id
            (if R.is_leader replica then "leader" else "follower")
            b.Grid_paxos.Types.Ballot.round b.Grid_paxos.Types.Ballot.holder
            (R.commit_point replica)
            (R.holds_lease replica ~now)
            (R.queue_depth replica) (R.reads_inflight replica) shed_reads
            shed_writes
            (Grid_obs.Watchdog.violations watchdog)
            (R.reshard_epoch replica) (R.reshard_phase replica)
            (R.moved_ranges replica) (R.imported_items replica)
            core.max_wire_version peer_json)
    in
    let routes path =
      match path with
      | "/metrics" ->
        Some ("text/plain; version=0.0.4", Metrics.expose core.meters.registry)
      | "/health" -> Some ("application/json", health () ^ "\n")
      | "/flightrec" ->
        Some
          ( "application/jsonl",
            Span.dump_string
              (run_on_loop core (fun () -> Span.Recorder.events obs)) )
      | _ -> None
    in
    let r_loop = Thread.create (fun () -> event_loop core handle) () in
    let r_accept = Thread.create (fun () -> acceptor ~routes core listener) () in
    { r_core = core; replica; r_watchdog = watchdog; r_loop; r_accept; listener }

  (* Engine introspection must also run on the loop thread. *)
  let on_loop h f = run_on_loop h.r_core f
  let replica_is_leader h = on_loop h (fun () -> R.is_leader h.replica)
  let replica_commit_point h = on_loop h (fun () -> R.commit_point h.replica)
  let replica_state h = on_loop h (fun () -> R.state h.replica)
  let replica_metrics h = h.r_core.meters.registry
  let replica_obs h = h.r_core.obs
  let replica_watchdog h = h.r_watchdog
  let replica_peer_versions h = peer_versions h.r_core

  let stop_replica h =
    shutdown h.r_core;
    (try Unix.shutdown h.listener SHUTDOWN_ALL with _ -> ());
    (try Unix.close h.listener with _ -> ());
    (try Thread.join h.r_loop with _ -> ());
    (try Thread.join h.r_accept with _ -> ());
    release_meters h.r_core.meters

  type client_handle = {
    c_core : core;
    client : Client.t;
    c_loop : Thread.t;
    c_mutex : Mutex.t;
    c_cond : Condition.t;
    c_reply : reply option ref;
  }

  let start_client ~id ~replicas ?(retry_ms = 200.0) ?obs ?backoff_base_ms
      ?backoff_cap_ms ?max_wire_version () =
    let cid = Grid_util.Ids.Client_id.of_int id in
    let client =
      Client.create ~id:cid ~replicas:(List.map fst replicas) ~retry_ms ?obs ()
    in
    let core =
      create_core ?obs ?backoff_base_ms ?backoff_cap_ms ?max_wire_version
        ~node_id:(client_node cid) ~actor:("c" ^ string_of_int id)
        ~addresses:replicas ()
    in
    let c_mutex = Mutex.create () in
    let c_cond = Condition.create () in
    let c_reply = ref None in
    let handle ~now input =
      let actions, reply = Client.handle client ~now input in
      (match reply with
      | Some r ->
        Mutex.lock c_mutex;
        c_reply := Some r;
        Condition.signal c_cond;
        Mutex.unlock c_mutex
      | None -> ());
      actions
    in
    let c_loop = Thread.create (fun () -> event_loop core handle) () in
    { c_core = core; client; c_loop; c_mutex; c_cond; c_reply }

  (* Internal: the raw rtype/payload request path. Exposed only through
     {!call_op}, which derives both from the service signature — callers
     never build wire payloads by hand. *)
  let call h rtype ~payload ~timeout_s =
    Mutex.lock h.c_mutex;
    h.c_reply := None;
    Mutex.unlock h.c_mutex;
    inject h.c_core (fun () ->
        match Client.submit h.client ~now:(now_ms ()) rtype ~payload with
        | `Sent actions -> run_actions h.c_core actions
        | `Busy ->
          (* Closed-loop contract violated by the caller; leave the
             previous request outstanding and let this call time out. *)
          ());
    let deadline = Unix.gettimeofday () +. timeout_s in
    Mutex.lock h.c_mutex;
    let rec wait () =
      match !(h.c_reply) with
      | Some r ->
        Mutex.unlock h.c_mutex;
        Some r
      | None ->
        if Unix.gettimeofday () > deadline then begin
          Mutex.unlock h.c_mutex;
          None
        end
        else begin
          (* Condition has no timed wait in the stdlib: poll briefly. *)
          Mutex.unlock h.c_mutex;
          Thread.delay 0.002;
          Mutex.lock h.c_mutex;
          wait ()
        end
    in
    wait ()

  (* Typed entrypoint: classification and encoding stay inside the
     library. *)
  let call_op h ?(unreplicated = false) op ~timeout_s =
    let rtype : rtype =
      if unreplicated then Original
      else match S.classify op with `Read -> Read | `Write -> Write
    in
    call h rtype ~payload:(S.encode_op op) ~timeout_s

  let client_metrics h = h.c_core.meters.registry
  let client_peer_versions h = peer_versions h.c_core

  let stop_client h =
    shutdown h.c_core;
    (try Thread.join h.c_loop with _ -> ());
    release_meters h.c_core.meters
end
