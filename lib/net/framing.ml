module Wire = Grid_codec.Wire
module Wire_intf = Grid_codec.Wire_intf

exception Closed

type read_error = Eof | Corrupt of { pos : int; msg : string }

let pp_read_error ppf = function
  | Eof -> Format.pp_print_string ppf "eof"
  | Corrupt { pos; msg } -> Format.fprintf ppf "corrupt frame at byte %d: %s" pos msg

let max_frame = 16 * 1024 * 1024

let really_write fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let n = Unix.write_substring fd s !pos (len - !pos) in
    if n = 0 then raise Closed;
    pos := !pos + n
  done

(* [None] on clean EOF at the first byte, [Closed] on EOF mid-read: the
   first is a peer hanging up between frames, the second a truncated
   frame. *)
let really_read fd n =
  let buf = Bytes.create n in
  let pos = ref 0 in
  (try
     while !pos < n do
       let k = Unix.read fd buf !pos (n - !pos) in
       if k = 0 then raise Closed;
       pos := !pos + k
     done
   with Closed when !pos = 0 -> ());
  if !pos = 0 && n > 0 then None else Some (Bytes.unsafe_to_string buf)

let really_read_exn fd n =
  match really_read fd n with Some s -> s | None -> raise Closed

let write_frame fd payload =
  let framed = Wire.with_crc payload in
  let len = String.length framed in
  if len > max_frame then invalid_arg "Framing.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr (len land 0xFF));
  Bytes.set hdr 1 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set hdr 2 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set hdr 3 (Char.chr ((len lsr 24) land 0xFF));
  really_write fd (Bytes.unsafe_to_string hdr ^ framed);
  4 + len

let read_frame fd =
  match really_read fd 4 with
  | None -> Error Eof
  | Some hdr -> (
    let len =
      Char.code hdr.[0]
      lor (Char.code hdr.[1] lsl 8)
      lor (Char.code hdr.[2] lsl 16)
      lor (Char.code hdr.[3] lsl 24)
    in
    if len < 4 || len > max_frame then
      Error (Corrupt { pos = 0; msg = Printf.sprintf "bad frame length %d" len })
    else
      match really_read_exn fd len with
      | body -> (
        match Wire.check_crc body with
        | payload -> Ok payload
        | exception Wire.Decode_error { pos; msg } -> Error (Corrupt { pos; msg }))
      | exception Closed ->
        Error (Corrupt { pos = 0; msg = "eof inside frame body" }))

(* Hello frame: [uint node_id] then [uint max_wire_version]. Pre-
   versioning builds sent only the node id; an absent version field
   decodes as 1, which keeps this side of the handshake compatible. *)
let write_hello fd ~node_id ~max_version =
  ignore
    (write_frame fd
       (Wire.encode (fun e ->
            Wire.Encoder.uint e node_id;
            Wire.Encoder.uint e max_version)))

let read_hello fd =
  match read_frame fd with
  | Error e -> Error e
  | Ok payload -> (
    match
      let d = Wire.Decoder.of_string payload in
      let node_id = Wire.Decoder.uint d in
      let max_version = if Wire.Decoder.at_end d then 1 else Wire.Decoder.uint d in
      Wire.Decoder.expect_end d;
      (node_id, max_version)
    with
    | hello -> Ok hello
    | exception Wire.Decode_error { pos; msg } -> Error (Corrupt { pos; msg }))

(* One negotiated connection speaks exactly one codec; the transport
   instantiates this per peer after the hello exchange. Both directions
   report the on-wire byte count (header + payload + CRC) so the
   transport can feed its byte counters without re-measuring. *)
module Codec (W : Wire_intf.WIRE with type msg = Grid_paxos.Types.msg) = struct
  let version = W.version
  let write_msg fd msg = write_frame fd (W.encode msg)

  let read_msg fd =
    match read_frame fd with
    | Error e -> Error e
    | Ok payload -> (
      match W.decode payload with
      | Ok msg -> Ok (msg, 8 + String.length payload)
      | Error e ->
        Error
          (Corrupt { pos = e.Wire_intf.pos; msg = Wire_intf.decode_error_to_string e }))
end
