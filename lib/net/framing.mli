(** Length-prefixed, CRC-protected message framing over file descriptors.

    Frame layout: 4-byte little-endian payload length, then the payload
    with the 4-byte CRC32 trailer of {!Grid_codec.Wire.with_crc}. The
    maximum frame size guards against corrupt length headers.

    Reads return typed [result] values — [Eof] for a peer that hung up
    between frames, [`Corrupt`] for bad lengths, CRC mismatches,
    truncated bodies, or payloads the codec rejects — so reader loops
    can tell corruption from normal disconnects instead of both
    unwinding as exceptions. The write path still raises ({!Closed} /
    [Unix.Unix_error]): writers hold locks and an exception is the
    correct way to abandon a wedged connection. *)

exception Closed
(** Raised by writes on EOF or a closed peer. *)

type read_error =
  | Eof  (** peer closed the connection cleanly, between frames *)
  | Corrupt of { pos : int; msg : string }
      (** frame or payload failed validation; the stream cannot be
          resynchronized and the connection must be dropped *)

val pp_read_error : Format.formatter -> read_error -> unit

val max_frame : int
(** 16 MiB. *)

val write_frame : Unix.file_descr -> string -> int
(** Write one frame (payload without CRC; the trailer is added here) and
    return the bytes put on the wire (header + payload + CRC). Raises
    {!Closed} / [Unix.Unix_error] on socket errors. *)

val read_frame : Unix.file_descr -> (string, read_error) result
(** Read one frame, verify the CRC, and return the payload. *)

val write_hello : Unix.file_descr -> node_id:int -> max_version:int -> unit
(** Connection handshake frame: node id plus the highest wire-protocol
    version the sender speaks. Sent dialer-first; the listener answers
    with its own hello and both sides settle on the minimum (see
    {!Grid_paxos.Wire_codec.negotiate}). *)

val read_hello : Unix.file_descr -> (int * int, read_error) result
(** [(node_id, max_version)]. Hellos from pre-versioning builds carry no
    version field and decode as [max_version = 1]. *)

(** Per-connection message codec, instantiated with the negotiated
    {!Grid_codec.Wire_intf.WIRE} version. Both directions report the
    on-wire byte count (frame header + payload + CRC trailer) for the
    transport's byte counters. *)
module Codec (W : Grid_codec.Wire_intf.WIRE with type msg = Grid_paxos.Types.msg) : sig
  val version : int
  val write_msg : Unix.file_descr -> Grid_paxos.Types.msg -> int
  val read_msg : Unix.file_descr -> (Grid_paxos.Types.msg * int, read_error) result
end
