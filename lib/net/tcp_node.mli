(** TCP runtime: hosts the same pure protocol engines that run on the
    simulator over real sockets and threads.

    Each node runs one event loop (a [select] on a self-pipe, the inbox
    and the timer queue). Peer connections are dialed lazily and
    deduplicated by the handshake's node id; replies to clients travel
    back over the connection the client dialed in on.

    The handshake also negotiates the wire-protocol version: each side
    sends the highest {!Grid_paxos.Wire_codec} version it speaks
    (dialer first, listener answering) and the connection settles on the
    minimum, so a cluster can be upgraded one replica at a time — old
    and new builds interoperate on V1 until both ends speak V2. The
    negotiated version is pinned per connection and visible as
    [grid_net_wire_version_peer_<id>] gauges, in [GET /health], and via
    {!Make.replica_peer_versions}.

    A failed dial puts the peer on exponential backoff (doubling from
    [backoff_base_ms] to [backoff_cap_ms], default 20 ms to 2 s,
    jittered per node), so a dead peer costs one connect attempt per
    backoff window instead of one per outgoing message, and a restarting
    replica is not reconnected by every peer in the same instant. A
    successful dial resets the peer's backoff; losing an established
    connection never delays the first redial. Each node's metrics
    registry exposes the live per-peer delay as
    [grid_net_backoff_ms_peer_<id>] gauges (0 = healthy).

    Transport byte accounting: [grid_net_bytes_total] counts on-wire
    bytes in both directions (frame header and CRC included), split as
    [grid_net_bytes_sent_total]/[grid_net_bytes_received_total] and by
    message kind as [grid_net_bytes_total_<kind>]. Corrupt or
    undecodable frames increment [grid_net_decode_errors_total] and
    drop the connection (a byte stream cannot be resynchronized after a
    bad frame); the next send redials.

    Each replica's listening port doubles as a plaintext admin endpoint:
    the accept loop peeks the first bytes of a new connection and routes
    HTTP methods ([GET]/[HEAD]/[POST]) to a minimal HTTP/1.0 responder
    instead of the protocol handshake. [GET /metrics] serves the node's
    registry in Prometheus exposition format, [GET /health] a one-line
    JSON summary (role, ballot, commit point, lease, admission queue
    depths, watchdog violations, wire versions), and [GET /flightrec]
    the node's bounded always-on flight recorder as JSONL (readable back
    with {!Grid_obs.Span.load_string}). No extra port, thread pool or
    dependency: one short-lived thread per request.

    This is the backend for [bin/replica.exe] and [bin/client.exe], and
    for the loopback integration tests. The evaluation itself uses the
    simulator (DESIGN.md §2) — this module demonstrates that the engines
    are transport-agnostic. *)

module Make (S : Grid_paxos.Service_intf.S) : sig
  module R : module type of Grid_paxos.Replica.Make (S)

  type replica_handle

  val start_replica :
    cfg:Grid_paxos.Config.t ->
    id:int ->
    port:int ->
    peers:(int * Unix.sockaddr) list ->
    ?storage:Grid_paxos.Storage.t ->
    ?obs:Grid_obs.Span.Recorder.t ->
    ?flight_capacity:int ->
    ?backoff_base_ms:float ->
    ?backoff_cap_ms:float ->
    ?max_wire_version:int ->
    unit ->
    replica_handle
  (** Bind [port], bootstrap the replica engine, and serve until
      {!stop_replica}; the same port answers admin HTTP requests
      ([/metrics], [/health], [/flightrec]). [peers] maps the other
      replica ids to their addresses. [obs] receives the engine's
      lifecycle spans and the transport's message events, timed on the
      wall clock (ms since the epoch); when omitted, the node keeps its
      own always-on flight recorder over the last [flight_capacity]
      events (default 2048). The replica also reports to an online
      invariant watchdog ({!Grid_obs.Watchdog}) whose counters live in
      {!replica_metrics} and which honours
      [cfg.watchdog_fail_stop]. [backoff_base_ms]/[backoff_cap_ms] bound
      the reconnect backoff toward dead peers (defaults 20/2000).
      [max_wire_version] caps the wire-protocol version this node
      advertises (default {!Grid_paxos.Wire_codec.latest_version});
      pinning it to an older version emulates a not-yet-upgraded build
      in rolling-upgrade tests. *)

  val replica_is_leader : replica_handle -> bool
  val replica_commit_point : replica_handle -> int
  val replica_state : replica_handle -> S.state

  val replica_metrics : replica_handle -> Grid_obs.Metrics.t
  (** This node's registry: transport counters (messages and bytes
      sent/received, per-kind bytes, decode errors, dial attempts and
      failures, established connections, per-peer backoff and wire
      version) and the watchdog violation counters. Served by
      [GET /metrics]. *)

  val replica_obs : replica_handle -> Grid_obs.Span.Recorder.t
  (** The node's span recorder (the flight recorder unless [obs] was
      supplied). Served by [GET /flightrec]. *)

  val replica_watchdog : replica_handle -> Grid_obs.Watchdog.t
  (** The node's online invariant sink; zero on healthy runs. *)

  val replica_peer_versions : replica_handle -> (int * int) list
  (** [(peer, negotiated wire version)] for every live connection. *)

  val stop_replica : replica_handle -> unit
  (** Stop the loops, close the listener and connections, and release the
      per-peer gauges from the node's registry. *)

  type client_handle

  val start_client :
    id:int ->
    replicas:(int * Unix.sockaddr) list ->
    ?retry_ms:float ->
    ?obs:Grid_obs.Span.Recorder.t ->
    ?backoff_base_ms:float ->
    ?backoff_cap_ms:float ->
    ?max_wire_version:int ->
    unit ->
    client_handle
  (** Connect to every replica. The client keeps no listening socket;
      replies arrive on the dialed connections. [obs], the backoff
      bounds and [max_wire_version] are as for {!start_replica}. *)

  val call_op :
    client_handle ->
    ?unreplicated:bool ->
    S.op ->
    timeout_s:float ->
    Grid_paxos.Types.reply option
  (** Synchronous typed request: broadcast to all replicas, wait for the
      leader's reply (with protocol-level retransmission), [None] on
      timeout. The request class comes from [S.classify] (or [Original]
      when [unreplicated] is set) and the payload from [S.encode_op] —
      there is no raw [rtype ~payload] entry point; callers never
      construct wire strings. *)

  val client_metrics : client_handle -> Grid_obs.Metrics.t

  val client_peer_versions : client_handle -> (int * int) list
  (** [(replica, negotiated wire version)] for every live connection. *)

  val stop_client : client_handle -> unit
end
