(** Workload generators for experiments beyond the paper's fixed scripts:
    read/write mixes, Zipf-skewed key-value traffic, transaction scripts,
    and an open-loop (Poisson-arrival) driver that measures latency under
    a fixed offered load instead of the closed-loop saturation the
    paper's methodology induces.

    Generators are typed: they yield {!Runtime.item} values over the
    service's own [op] type, and the runtime encodes them — no payload
    strings at this layer. *)

module Rng = Grid_util.Rng
module Stats = Grid_util.Stats

(** {1 Request generators}

    A generator is what {!Runtime.Make.run_closed_loop_ops} consumes: per
    client, a function producing that client's successive typed items. *)

(** Fixed number of requests with a given read fraction. The
    read/write coordination class comes from [S.classify] at encode
    time, so [read_op] should classify as a read and [write_op] as a
    write. *)
let mix ~rng ~read_fraction ~count ~read_op ~write_op ~client:_ =
  let rng = Rng.split rng in
  let remaining = ref count in
  fun () ->
    if !remaining <= 0 then None
    else begin
      decr remaining;
      if Rng.float rng 1.0 < read_fraction then Some (Runtime.Do read_op)
      else Some (Runtime.Do write_op)
    end

(** Zipf-skewed key-value traffic over [keys] keys with exponent [s]:
    reads [Kv_store.Get], writes [Kv_store.Put]. *)
let kv_zipf ~rng ~read_fraction ~keys ~s ~count ~client =
  let module Kv = Grid_services.Kv_store in
  let rng = Rng.split rng in
  let remaining = ref count in
  fun () ->
    if !remaining <= 0 then None
    else begin
      decr remaining;
      let key = Printf.sprintf "key-%d" (Rng.zipf rng ~n:keys ~s) in
      if Rng.float rng 1.0 < read_fraction then Some (Runtime.Do (Kv.Get key))
      else
        Some
          (Runtime.Do (Kv.Put { key; value = Printf.sprintf "v%d-%d" client !remaining }))
    end

(** T-Paxos transaction scripts: [txns] transactions of [ops_per_txn]
    operations [op], each closed by a commit carrying the op count. *)
let transactions ~ops_per_txn ~txns ~op ~client:_ =
  let txn = ref 0 and step = ref 0 in
  fun () ->
    if !txn >= txns then None
    else if !step < ops_per_txn then begin
      incr step;
      Some (Runtime.In_txn (!txn + 1, op))
    end
    else begin
      let tid = !txn + 1 in
      step := 0;
      incr txn;
      Some (Runtime.Commit_txn { tid; ops = ops_per_txn })
    end

(** {1 Open-loop driving}

    Unlike the paper's closed loop, an open-loop client issues requests
    at exponentially distributed intervals regardless of outstanding
    replies, so response time can be studied as a function of offered
    load. Because the protocol client allows one outstanding request,
    an open-loop driver needs one live client per request in flight:
    {!Make.run} models each arrival as its own short-lived client,
    {!Make.run_sessions} multiplexes arrivals over a recycled
    {!Session} pool and scales to 10^5+ concurrent requests. *)

(** The arrival process, as a rate modulation around the nominal [rps].
    Arrivals are drawn by thinning a Poisson process at the shape's peak
    rate, so inter-arrival gaps stay exponential within any window of
    constant rate. *)
type arrival_shape =
  | Poisson  (** constant rate [rps] *)
  | Burst of { period_ms : float; duty : float; factor : float }
      (** every [period_ms], a burst lasting [duty] of the period at
          [factor] times the nominal rate; nominal rate in between *)
  | Diurnal of { period_ms : float; trough : float }
      (** sinusoid between [trough]x and 1x the nominal rate with period
          [period_ms] — a compressed day/night cycle *)

let relative_rate shape ~t =
  match shape with
  | Poisson -> 1.0
  | Burst { period_ms; duty; factor } ->
    if Float.rem t period_ms < duty *. period_ms then factor else 1.0
  | Diurnal { period_ms; trough } ->
    trough +. ((1.0 -. trough) *. 0.5 *. (1.0 +. sin (2.0 *. Float.pi *. t /. period_ms)))

let peak_rate = function
  | Poisson -> 1.0
  | Burst { factor; _ } -> Float.max 1.0 factor
  | Diurnal _ -> 1.0

type open_loop_results = {
  offered_rps : float;  (** nominal rate; shapes modulate around it *)
  arrivals : int;  (** arrivals the process generated *)
  completed : int;
  dropped : int;
      (** arrivals that never became requests: no idle session was
          available (or, in {!Make.run}, the submit was refused) *)
  still_inflight : int;
      (** requests submitted but unanswered when the run ended — cut off
          by the horizon, not lost *)
  latencies_ms : float array;
}

module Make (S : Grid_paxos.Service_intf.S) = struct
  module RT = Runtime.Make (S)
  module Sess = Session.Make (S)

  (** [run t ~rps ~duration_ms ~item] offers [rps] requests per second
      (Poisson arrivals) for [duration_ms] of simulated time and returns
      the observed latencies. The runtime must have an elected leader
      (see {!RT.await_leader}). Each arrival is its own client node —
      fine for thousands of arrivals; use {!run_sessions} beyond that. *)
  let run t ~seed ~rps ~duration_ms ~item =
    let eng = RT.engine t in
    let rng = Rng.of_int seed in
    let latencies = ref [] in
    let completed = ref 0 in
    let arrivals = ref 0 in
    let dropped = ref 0 in
    let inflight = ref 0 in
    let next_id = ref 0 in
    let deadline = RT.now t +. duration_ms in
    let rec arrive () =
      if RT.now t < deadline then begin
        let id = 5000 + !next_id in
        incr next_id;
        incr arrivals;
        let sent_at = RT.now t in
        let client =
          RT.add_client t ~id
            ~on_reply:(fun _reply ->
              decr inflight;
              incr completed;
              latencies := (RT.now t -. sent_at) :: !latencies)
            ()
        in
        (match RT.submit_item t client item with
        | `Submitted -> incr inflight
        | `Busy -> incr dropped (* unreachable: the client is fresh *));
        let gap = Rng.exponential rng ~mean:(1000.0 /. rps) in
        ignore (Grid_sim.Engine.schedule eng ~delay:gap arrive)
      end
    in
    arrive ();
    (* Run past the deadline to let stragglers finish. *)
    RT.run_until t (deadline +. 2_000.0);
    {
      offered_rps = rps;
      arrivals = !arrivals;
      completed = !completed;
      dropped = !dropped;
      still_inflight = !inflight;
      latencies_ms = Array.of_list (List.rev !latencies);
    }

  (** [run_sessions pool ~rps ~duration_ms ~item] is {!run} over a
      {!Session} pool: arrivals grab an idle session (dropped when none
      is available and the pool is full) and the pool recycles sessions
      as replies land, so one run sustains as many concurrent requests
      as the pool allows. [shape] modulates the arrival rate (default
      {!Poisson}); [grace_ms] extends the run past the last arrival so
      stragglers can finish. Leader-admission gauges are refreshed on
      every arrival. *)
  let run_sessions pool ~seed ~rps ~duration_ms ?(shape = Poisson)
      ?(grace_ms = 2_000.0) ~item () =
    let t = Sess.runtime pool in
    let eng = RT.engine t in
    let rng = Rng.of_int seed in
    let latencies = ref [] in
    let completed = ref 0 in
    let arrivals = ref 0 in
    let dropped = ref 0 in
    let inflight = ref 0 in
    let start = RT.now t in
    let deadline = start +. duration_ms in
    let peak = peak_rate shape in
    let mean_gap_ms = 1000.0 /. (rps *. peak) in
    let rec arrive () =
      if RT.now t < deadline then begin
        let accept =
          match shape with
          | Poisson -> true
          | _ ->
            Rng.float rng 1.0 < relative_rate shape ~t:(RT.now t -. start) /. peak
        in
        if accept then begin
          incr arrivals;
          match
            Sess.submit pool item
              ~on_reply:(fun _reply ~latency_ms ->
                decr inflight;
                incr completed;
                latencies := latency_ms :: !latencies)
          with
          | `Submitted ->
            incr inflight;
            Sess.sample_leader pool
          | `No_session -> incr dropped
        end;
        let gap = Rng.exponential rng ~mean:mean_gap_ms in
        ignore (Grid_sim.Engine.schedule eng ~delay:gap arrive)
      end
    in
    arrive ();
    RT.run_until t (deadline +. grace_ms);
    {
      offered_rps = rps;
      arrivals = !arrivals;
      completed = !completed;
      dropped = !dropped;
      still_inflight = !inflight;
      latencies_ms = Array.of_list (List.rev !latencies);
    }
end
