(** Multiplexed client sessions: an O(1)-per-client pool over the
    runtime, built for open-loop experiments that need 10^5+ concurrent
    outstanding requests in one simulation.

    Each session wraps one protocol client registered {e light} (see
    {!Runtime.Make.add_client}): no per-replica link records — the
    network's default latency is pointed at the scenario's client link
    at pool creation — and zero modelled CPU cost. Sessions are recycled
    through a free list the moment their request completes, so a
    long open-loop run touches a bounded set of simulator nodes no
    matter how many requests it issues. *)

module Make (S : Grid_paxos.Service_intf.S) : sig
  module RT : module type of Runtime.Make (S)

  type t

  val create : ?base_id:int -> ?max_sessions:int -> RT.t -> t
  (** Build an empty pool over a runtime. Sessions are registered on
      demand, up to [max_sessions] (default 200k); ids start at
      [base_id] (default 100k) and must not collide with other clients
      on the runtime. Registers session gauges/counters and the
      leader-admission gauges in the runtime's metrics registry, so at
      most one pool per runtime. Sets the runtime network's default
      latency to the scenario's client link. *)

  val submit :
    t ->
    S.op Runtime.item ->
    on_reply:(Grid_paxos.Types.reply -> latency_ms:float -> unit) ->
    [ `Submitted | `No_session ]
  (** Submit on an idle session (registering a new one if the free list
      is empty and the pool is below [max_sessions]). [`No_session]
      means every session is busy — the open-loop driver counts the
      arrival as dropped. [on_reply] fires with the request's {e final}
      reply and its latency in simulated ms; [Overloaded] pushback and
      backoff rounds happen inside the session's client and are folded
      into that latency. The session returns to the free list before
      [on_reply] runs, so a callback may resubmit immediately. *)

  val sample_leader : t -> unit
  (** Refresh the leader-admission gauges (queue depth, reads in
      flight, cumulative sheds) from the current leader, if any. *)

  (** {1 Introspection} *)

  val runtime : t -> RT.t
  val sessions : t -> int
  (** Sessions registered so far. *)

  val in_flight : t -> int
  val peak_in_flight : t -> int
  (** High-water mark of concurrently outstanding sessions. *)

  val submitted : t -> int
  val completed : t -> int

  val rejected : t -> int
  (** Arrivals refused with [`No_session]. *)
end
