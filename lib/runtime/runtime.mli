(** Simulation runtime: wires replica and client step machines into the
    discrete-event simulator, drives closed-loop workloads, and exposes
    crash/recovery controls. One [Make (S)] instantiation simulates one
    replicated service; all randomness derives from the creation seed,
    so runs are reproducible. *)

(** A typed request: what {!Make.submit_item} and the [_ops] workload
    drivers consume instead of raw [(rtype, payload)] pairs. Encoding to
    the wire representation happens inside the runtime, so services and
    workloads never touch payload strings. *)
type 'op item =
  | Do of 'op  (** replicate; coordination class from [S.classify] *)
  | Unreplicated of 'op  (** the paper's uncoordinated baseline *)
  | In_txn of int * 'op  (** T-Paxos: operation inside transaction [tid] *)
  | Commit_txn of { tid : int; ops : int }
      (** close transaction [tid] after [ops] operations *)
  | Abort_txn of int

module Make (S : Grid_paxos.Service_intf.S) : sig
  module R : module type of Grid_paxos.Replica.Make (S)

  type t

  val create :
    ?seed:int ->
    ?trace:bool ->
    ?trace_capacity:int ->
    ?attach:Grid_sim.Engine.t * Grid_paxos.Types.msg Grid_sim.Network.t ->
    ?obs:Grid_obs.Span.Recorder.t ->
    ?node_base:int ->
    ?shard:int ->
    ?watchdog:Grid_obs.Watchdog.t ->
    cfg:Grid_paxos.Config.t ->
    scenario:Scenario.t ->
    unit ->
    t
  (** Build the cluster described by [scenario] (its replica count
      overrides [cfg.n]), register the replicas on the simulated network
      and arm their bootstrap timers. With [trace:true] every replica and
      client records request-lifecycle spans, message sends and notes into
      one shared {!Grid_obs.Span.Recorder} (ring buffer of
      [trace_capacity] events, default 65536).

      [attach] hosts this group on an existing engine/network instead of
      creating its own — the sharded runtime places k groups on one
      simulation this way. [node_base] (default 0) offsets the group's
      replica ids in the shared node space; [shard] tags the group's
      span actors with an ["s<k>/"] prefix; [obs] shares a recorder
      across groups (overriding [trace]/[trace_capacity]).

      [watchdog] is the sink for the replicas' online invariant checks
      ({!Grid_obs.Watchdog}); by default the runtime creates its own,
      registered in {!metrics} and honouring
      [cfg.watchdog_fail_stop]. The sharded runtime passes one sink to
      all groups so the lease mutual-exclusion view spans shards. *)

  (** {1 Accessors} *)

  val engine : t -> Grid_sim.Engine.t
  val network : t -> Grid_paxos.Types.msg Grid_sim.Network.t
  val config : t -> Grid_paxos.Config.t
  val scenario : t -> Scenario.t

  val obs : t -> Grid_obs.Span.Recorder.t
  (** The structured event stream: lifecycle spans, message events and
      notes. Empty unless created with [~trace:true] (or an enabled
      [obs]). *)

  val metrics : t -> Grid_obs.Metrics.t
  (** Registry with request/reply/message counters and the closed-loop
      latency histogram; always live (metrics are cheap). *)

  val watchdog : t -> Grid_obs.Watchdog.t
  (** The online invariant sink the replicas report to. Green runs keep
      every counter at zero; a planted bug (e.g. [cfg.disable_dedup])
      fires it. *)

  val replica : t -> int -> R.t
  val node_base : t -> int
  val now : t -> float

  (** {1 Clients} *)

  val add_client :
    t ->
    id:int ->
    ?machine_share:int ->
    ?light:bool ->
    ?on_reply:(Grid_paxos.Types.reply -> unit) ->
    unit ->
    Grid_paxos.Client.t
  (** Register a client node. [machine_share] scales its per-message CPU
      costs to model several client processes sharing one host. Client
      ids must be unique across every group sharing one network.

      [light:true] (default false) registers the client in O(1) for
      session pools: zero per-message CPU cost and no per-replica link
      records — its messages ride the network's default latency, which
      {!Session.Make.create} points at the scenario's client link. *)

  val set_on_reply : t -> Grid_paxos.Client.t -> (Grid_paxos.Types.reply -> unit) -> unit

  val submit :
    t ->
    Grid_paxos.Client.t ->
    ?trace:int * string ->
    Grid_paxos.Types.rtype ->
    payload:string ->
    [ `Busy | `Submitted ]
  (** Issue a pre-encoded request through the client engine. The client
      is closed-loop: if it still has a request outstanding the submit
      returns [`Busy] and nothing is sent — drivers react (defer, pick
      another session, count a drop) instead of crashing. Prefer
      {!submit_op}/{!submit_item}, which keep payload encoding inside
      the runtime.

      [trace] is an upstream [(trace id, parent span id)] — the shard
      router passes its [Route] span here so the whole cross-shard
      request stitches into one tree. *)

  val try_submit :
    t ->
    Grid_paxos.Client.t ->
    Grid_paxos.Types.rtype ->
    payload:string ->
    [ `Busy | `Submitted ]
  (** Alias of {!submit}, kept for callers that predate the typed
      return. *)

  val submit_op : t -> Grid_paxos.Client.t -> S.op -> [ `Busy | `Submitted ]
  (** Typed entry point: classify via [S.classify], encode via
      [S.encode_op], and submit. Equivalent to [submit_item t c (Do op)]. *)

  val submit_item :
    t -> Grid_paxos.Client.t -> ?trace:int * string -> S.op item -> [ `Busy | `Submitted ]

  val try_submit_item :
    t -> Grid_paxos.Client.t -> ?trace:int * string -> S.op item -> [ `Busy | `Submitted ]
  (** Alias of {!submit_item}. *)

  (** {1 Failure control} *)

  val crash_replica : t -> int -> unit
  val recover_replica : t -> int -> unit
  (** Restart the replica's volatile state and re-arm its timers; timers
      from the previous incarnation are discarded. *)

  val replica_up : t -> int -> bool

  (** {1 Running} *)

  val run_until : t -> float -> unit
  val leader : t -> int option
  (** First live replica that believes it leads. *)

  val await_leader : ?max_wait:float -> t -> int option
  (** Step the engine until a leader exists (or [max_wait] simulated ms
      pass; default 10 s). *)

  (** {1 Closed-loop workloads}

      Mirrors the paper's methodology (§4): after the leader is elected,
      all clients start at the same instant and each sends its next
      request only after receiving the reply to the previous one. *)

  type record = {
    rec_client : int;
    rec_seq : int;  (** per-client completion index, 1-based *)
    rec_rtype : Grid_paxos.Types.rtype;
    rec_status : Grid_paxos.Types.status;
    rec_latency : float;  (** ms *)
  }

  type results = {
    records : record list;  (** completion order *)
    started_at : float;
    finished_at : float;
    total_completed : int;
  }

  val latencies : ?filter:(record -> bool) -> results -> float array
  val throughput_rps : results -> float

  val run_closed_loop :
    ?max_sim_ms:float ->
    clients:int ->
    requests_per_client:int ->
    gen:
      (client:int -> unit -> (Grid_paxos.Types.rtype * string) option) ->
    t ->
    results
  (** Run the workload to completion. [gen ~client] is invoked once per
      client and must yield that client's successive requests; it must
      supply at least [requests_per_client] items. Raises [Failure] if
      the system stalls past [max_sim_ms] (default 600 s) of simulated
      time. *)

  val run_closed_loop_ops :
    ?max_sim_ms:float ->
    clients:int ->
    requests_per_client:int ->
    gen:(client:int -> unit -> S.op item option) ->
    t ->
    results
  (** Typed-generator front end to {!run_closed_loop}: items are encoded
      by the runtime, so generators deal only in [S.op]. *)

  (** {1 Introspection} *)

  val message_counts : t -> (string * int) list
  (** Messages sent by engine actions, by {!Grid_paxos.Types.msg_kind},
      since creation or the last {!reset_message_counts}. *)

  val reset_message_counts : t -> unit
end
