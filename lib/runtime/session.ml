(** Multiplexed client sessions: an O(1)-per-client pool over the
    runtime, built for open-loop experiments that need 10^5+ concurrent
    outstanding requests in one simulation.

    The protocol client allows one outstanding request, so an open-loop
    driver needs as many live clients as it has requests in flight. The
    naive approach (a fresh {!Runtime.Make.add_client} per arrival) costs
    per-replica link records and per-message CPU cost entries for every
    arrival and never reclaims them. A session pool instead registers
    {e light} clients — no link records (their messages ride the
    network's default latency, pointed at the scenario's client link) and
    zero modelled CPU cost — and recycles each one through a free list
    as soon as its request completes. Submitting on an idle pool is a
    stack pop; completing is a stack push. *)

module Network = Grid_sim.Network
module Metrics = Grid_obs.Metrics
open Grid_paxos.Types

module Make (S : Grid_paxos.Service_intf.S) = struct
  module RT = Runtime.Make (S)

  type slot = {
    client : Grid_paxos.Client.t;
    mutable sent_at : float;
    mutable cb : (reply -> latency_ms:float -> unit) option;
  }

  type t = {
    rt : RT.t;
    base_id : int;
    max_sessions : int;
    slots : (int, slot) Hashtbl.t;  (* session index -> slot *)
    free : int Stack.t;  (* indices with no request outstanding *)
    mutable registered : int;
    mutable inflight : int;
    mutable peak_inflight : int;
    mutable submitted : int;
    mutable completed : int;
    mutable rejected : int;
    g_sessions : Metrics.gauge;
    g_inflight : Metrics.gauge;
    c_submitted : Metrics.counter;
    c_rejected : Metrics.counter;
    g_queue_depth : Metrics.gauge;
    g_reads_inflight : Metrics.gauge;
    g_shed_reads : Metrics.gauge;
    g_shed_writes : Metrics.gauge;
  }

  let create ?(base_id = 100_000) ?(max_sessions = 200_000) rt =
    (* Session nodes carry no per-pair link records: point the network's
       default latency at the scenario's client link so their messages
       see the same delay distribution a heavy client would. *)
    Network.set_default_latency (RT.network rt) ((RT.scenario rt).Scenario.client_link 0);
    let m = RT.metrics rt in
    {
      rt;
      base_id;
      max_sessions;
      slots = Hashtbl.create 4096;
      free = Stack.create ();
      registered = 0;
      inflight = 0;
      peak_inflight = 0;
      submitted = 0;
      completed = 0;
      rejected = 0;
      g_sessions =
        Metrics.gauge m "grid_sessions_open" ~help:"Client sessions registered in the pool";
      g_inflight =
        Metrics.gauge m "grid_sessions_inflight"
          ~help:"Sessions with a request outstanding";
      c_submitted =
        Metrics.counter m "grid_session_submitted_total"
          ~help:"Requests submitted through the session pool";
      c_rejected =
        Metrics.counter m "grid_session_rejected_total"
          ~help:"Arrivals dropped because every session was busy";
      g_queue_depth =
        Metrics.gauge m "grid_leader_queue_depth"
          ~help:"Leader admission queue depth at the last sample";
      g_reads_inflight =
        Metrics.gauge m "grid_leader_reads_inflight"
          ~help:"Leader read quorums in flight at the last sample";
      g_shed_reads =
        Metrics.gauge m "grid_shed_reads_total"
          ~help:"Reads the leader shed with Overloaded (cumulative)";
      g_shed_writes =
        Metrics.gauge m "grid_shed_writes_total"
          ~help:"Writes the leader shed with Overloaded (cumulative)";
    }

  let runtime t = t.rt
  let sessions t = t.registered
  let in_flight t = t.inflight
  let peak_in_flight t = t.peak_inflight
  let submitted t = t.submitted
  let completed t = t.completed
  let rejected t = t.rejected

  (* Free the slot before running the callback so a callback that
     resubmits can reuse the session it just released. *)
  let complete t idx (r : reply) =
    match Hashtbl.find_opt t.slots idx with
    | None -> ()
    | Some slot ->
      let cb = slot.cb in
      let latency_ms = RT.now t.rt -. slot.sent_at in
      slot.cb <- None;
      t.inflight <- t.inflight - 1;
      t.completed <- t.completed + 1;
      Metrics.set t.g_inflight (Float.of_int t.inflight);
      Stack.push idx t.free;
      (match cb with Some f -> f r ~latency_ms | None -> ())

  let acquire t =
    if not (Stack.is_empty t.free) then Some (Stack.pop t.free)
    else if t.registered >= t.max_sessions then None
    else begin
      let idx = t.registered in
      t.registered <- t.registered + 1;
      let client =
        RT.add_client t.rt ~id:(t.base_id + idx) ~light:true
          ~on_reply:(fun r -> complete t idx r)
          ()
      in
      Hashtbl.replace t.slots idx { client; sent_at = 0.0; cb = None };
      Metrics.set t.g_sessions (Float.of_int t.registered);
      Some idx
    end

  let submit t item ~on_reply =
    match acquire t with
    | None ->
      t.rejected <- t.rejected + 1;
      Metrics.inc t.c_rejected;
      `No_session
    | Some idx -> (
      let slot = Hashtbl.find t.slots idx in
      slot.sent_at <- RT.now t.rt;
      slot.cb <- Some on_reply;
      match RT.submit_item t.rt slot.client item with
      | `Submitted ->
        t.submitted <- t.submitted + 1;
        t.inflight <- t.inflight + 1;
        if t.inflight > t.peak_inflight then t.peak_inflight <- t.inflight;
        Metrics.inc t.c_submitted;
        Metrics.set t.g_inflight (Float.of_int t.inflight);
        `Submitted
      | `Busy ->
        (* A free-listed session has no request outstanding, so this can
           only happen on pool misuse; surface it without losing the
           slot. *)
        slot.cb <- None;
        Stack.push idx t.free;
        `No_session)

  let sample_leader t =
    match RT.leader t.rt with
    | None -> ()
    | Some l ->
      let r = RT.replica t.rt l in
      let shed_reads, shed_writes = RT.R.stats_shed r in
      Metrics.set t.g_queue_depth (Float.of_int (RT.R.queue_depth r));
      Metrics.set t.g_reads_inflight (Float.of_int (RT.R.reads_inflight r));
      Metrics.set t.g_shed_reads (Float.of_int shed_reads);
      Metrics.set t.g_shed_writes (Float.of_int shed_writes)
end
