(** Wires replica and client step machines into the discrete-event
    simulator: interprets their actions (sends, timers, notes), drives
    closed-loop workloads, and exposes crash/recovery controls.

    One [Make (S)] instantiation simulates one replicated service. All
    randomness derives from the seed passed to {!create}, so every run is
    reproducible.

    Several groups can share one engine/network (the sharded runtime in
    [lib/shard]): each group occupies the node range
    [node_base .. node_base + n - 1], and the dispatcher translates
    between the engines' local replica ids and the global node space at
    the send/receive boundary. Client nodes ([>= client_node_base]) are
    global and pass through untranslated. *)

module Engine = Grid_sim.Engine
module Network = Grid_sim.Network
module Span = Grid_obs.Span
module Metrics = Grid_obs.Metrics
module Watchdog = Grid_obs.Watchdog
module Rng = Grid_util.Rng
module Ids = Grid_util.Ids
module Config = Grid_paxos.Config
module Client = Grid_paxos.Client
open Grid_paxos.Types

(** A typed request: what {!Make.submit_item} and the [_ops] workload
    drivers consume instead of raw [(rtype, payload)] pairs. Encoding to
    the wire representation happens inside the runtime, so services and
    workloads never touch payload strings. *)
type 'op item =
  | Do of 'op  (** replicate; coordination class from [S.classify] *)
  | Unreplicated of 'op  (** the paper's uncoordinated baseline *)
  | In_txn of int * 'op  (** T-Paxos: operation inside transaction [tid] *)
  | Commit_txn of { tid : int; ops : int }
      (** close transaction [tid] after [ops] operations *)
  | Abort_txn of int

module Make (S : Grid_paxos.Service_intf.S) = struct
  module R = Grid_paxos.Replica.Make (S)

  type client_slot = {
    client : Client.t;
    actor : string;  (* precomputed node label for event recording *)
    mutable on_reply : reply -> unit;
  }

  (* The handles the runtime updates on its hot paths; registered once at
     creation so an update is a single store. *)
  type meters = {
    m_requests : Metrics.counter;
    m_replies : Metrics.counter;
    m_msgs : Metrics.counter;
    m_latency : Grid_util.Stats.Histogram.h;
  }

  type t = {
    eng : Engine.t;
    net : msg Network.t;
    cfg : Config.t;
    scenario : Scenario.t;
    node_base : int;  (* global node id of replica 0 *)
    actor_prefix : string;  (* "s<k>/" when hosting shard k, else "" *)
    replicas : R.t array;
    clients : (int, client_slot) Hashtbl.t;  (* node id -> slot *)
    down : bool array;
    incarnation : int array;
        (* bumped on recovery so timers armed in a previous life die *)
    msg_counts : (string, int) Hashtbl.t;  (* sends by message kind *)
    mutable load_applied : float;  (* server load factor currently in force *)
    obs : Span.Recorder.t;
    replica_actors : string array;  (* precomputed "r<i>" labels *)
    metrics : Metrics.t;
    meters : meters;
    watchdog : Watchdog.t;  (* online invariant checks, shared sink *)
    mutable next_client_id : int;  (* fresh ids for successive workloads *)
  }

  let engine t = t.eng
  let network t = t.net
  let config t = t.cfg
  let scenario t = t.scenario
  let obs t = t.obs
  let metrics t = t.metrics
  let watchdog t = t.watchdog
  let replica t i = t.replicas.(i)
  let node_base t = t.node_base
  let now t = Engine.now t.eng

  (* A replica's local clock: engine time plus any injected drift
     ({!Grid_sim.Fault.Clock_drift}). Timers stay on engine time — drift
     skews time readings (the lease arithmetic), not durations. *)
  let rnow t i = Engine.now t.eng +. Network.clock_offset t.net (t.node_base + i)

  (* Local replica id <-> global node id. Client nodes are global. *)
  let out_node t dst = if node_is_client dst then dst else t.node_base + dst
  let in_node t src = if node_is_client src then src else src - t.node_base

  let count_msg t msg =
    Metrics.inc t.meters.m_msgs;
    let k = msg_kind msg in
    Hashtbl.replace t.msg_counts k (1 + Option.value ~default:0 (Hashtbl.find_opt t.msg_counts k))

  let rec dispatch_replica t i actions = List.iter (run_action t i) actions

  and run_action t i = function
    | Send { dst; msg } ->
      count_msg t msg;
      Span.Recorder.msg t.obs ~time:(Engine.now t.eng) ~actor:t.replica_actors.(i)
        ~kind:(msg_kind msg) ~dst:(out_node t dst);
      Network.send t.net ~src:(t.node_base + i) ~dst:(out_node t dst) msg
    | After { delay; timer } ->
      let armed_in = t.incarnation.(i) in
      ignore
        (Engine.schedule t.eng ~delay (fun () ->
             (* Timers armed before a crash must not fire into the next
                incarnation: recovery re-bootstraps its own timers. *)
             if (not t.down.(i)) && t.incarnation.(i) = armed_in then
               dispatch_replica t i
                 (R.handle t.replicas.(i) ~now:(rnow t i) (Timer timer))))
    | Note s ->
      Span.Recorder.note t.obs ~time:(Engine.now t.eng) ~actor:t.replica_actors.(i) s

  let rec dispatch_client t node actions reply =
    List.iter
      (fun action ->
        match (action, Hashtbl.find_opt t.clients node) with
        | Send { dst; msg }, slot ->
          count_msg t msg;
          (match slot with
          | Some s ->
            Span.Recorder.msg t.obs ~time:(Engine.now t.eng) ~actor:s.actor
              ~kind:(msg_kind msg) ~dst:(out_node t dst)
          | None -> ());
          Network.send t.net ~src:node ~dst:(out_node t dst) msg
        | After { delay; timer }, _ ->
          ignore
            (Engine.schedule t.eng ~delay (fun () ->
                 match Hashtbl.find_opt t.clients node with
                 | None -> ()
                 | Some slot ->
                   let actions, reply =
                     Client.handle slot.client ~now:(Engine.now t.eng) (Timer timer)
                   in
                   dispatch_client t node actions reply))
        | Note s, slot ->
          let actor =
            match slot with Some sl -> sl.actor | None -> Printf.sprintf "n%d" node
          in
          Span.Recorder.note t.obs ~time:(Engine.now t.eng) ~actor s)
      actions;
    match (reply, Hashtbl.find_opt t.clients node) with
    | Some r, Some slot -> slot.on_reply r
    | _ -> ()

  let create ?(seed = 42) ?(trace = false) ?trace_capacity ?attach ?obs ?(node_base = 0)
      ?shard ?watchdog ~cfg ~scenario:(sc : Scenario.t) () =
    let cfg = sc.tune (Config.with_n cfg sc.n) in
    let root = Rng.of_int seed in
    let eng, net =
      match attach with
      | Some (eng, net) -> (eng, net)
      | None ->
        let eng = Engine.create () in
        (eng, Network.create eng (Rng.split root))
    in
    let obs =
      match obs with
      | Some o -> o
      | None -> Span.Recorder.create ?capacity:trace_capacity ~enabled:trace ()
    in
    let actor_prefix =
      match shard with Some k -> "s" ^ string_of_int k ^ "/" | None -> ""
    in
    let metrics = Metrics.create () in
    let watchdog =
      match watchdog with
      | Some w -> w
      | None -> Watchdog.create ~fail_stop:cfg.watchdog_fail_stop ~metrics ()
    in
    let replicas =
      Array.init cfg.n (fun i ->
          R.create ~cfg ~id:i ~seed:(Int64.to_int (Rng.bits64 root) land 0xFFFFFF) ~obs
            ~actor:(actor_prefix ^ "r" ^ string_of_int i)
            ~watchdog ())
    in
    let meters =
      {
        m_requests =
          Metrics.counter metrics "grid_requests_total" ~help:"Requests submitted by clients";
        m_replies =
          Metrics.counter metrics "grid_replies_total" ~help:"Replies delivered to clients";
        m_msgs =
          Metrics.counter metrics "grid_messages_sent_total"
            ~help:"Protocol messages handed to the network";
        m_latency =
          Metrics.histogram metrics "grid_request_latency_ms"
            ~help:"Closed-loop request latency (simulated ms)" ~lo:0.01 ~hi:100_000.0
            ~bins:64;
      }
    in
    let t =
      {
        eng;
        net;
        cfg;
        scenario = sc;
        node_base;
        actor_prefix;
        replicas;
        clients = Hashtbl.create 16;
        down = Array.make cfg.n false;
        incarnation = Array.make cfg.n 0;
        msg_counts = Hashtbl.create 16;
        load_applied = 1.0;
        obs;
        replica_actors =
          Array.init cfg.n (fun i -> actor_prefix ^ "r" ^ string_of_int i);
        metrics;
        meters;
        watchdog;
        next_client_id = 0;
      }
    in
    for i = 0 to cfg.n - 1 do
      Network.add_node net ~id:(node_base + i) ~recv_cost:sc.replica_recv_cost
        ~send_cost:sc.replica_send_cost (fun ~src msg ->
          if not t.down.(i) then
            dispatch_replica t i
              (R.handle t.replicas.(i) ~now:(rnow t i)
                 (Receive { src = in_node t src; msg })))
    done;
    for i = 0 to cfg.n - 1 do
      for j = 0 to cfg.n - 1 do
        if i <> j then
          Network.set_link net ~src:(node_base + i) ~dst:(node_base + j)
            (sc.replica_link i j)
      done
    done;
    Array.iteri (fun i r -> dispatch_replica t i (R.bootstrap r)) replicas;
    t

  (** Add a closed-loop client. [machine_share] models how many clients
      share this client's physical machine: per-message CPU costs scale
      with it (the paper runs up to 16 client processes per host).

      [light:true] registers a session-pool client in O(1): no per-replica
      link records (the network's default latency applies — see
      {!Session.Make.create}, which points it at the scenario's client
      link) and no per-message CPU cost, so a simulation can hold 10^5+
      concurrent clients without the per-client setup dominating. *)
  let add_client t ~id ?(machine_share = 1) ?(light = false) ?(on_reply = fun _ -> ())
      () =
    if id >= t.next_client_id then t.next_client_id <- id + 1;
    let cid = Ids.Client_id.of_int id in
    let actor = t.actor_prefix ^ "c" ^ string_of_int id in
    let client =
      Client.create ~id:cid
        ~replicas:(Config.replica_ids t.cfg)
        ~retry_ms:t.cfg.client_retry_ms ~obs:t.obs ~actor ()
    in
    let node = Client.node client in
    let slot = { client; actor; on_reply } in
    Hashtbl.replace t.clients node slot;
    let share = if light then 0.0 else Float.of_int machine_share in
    Network.add_node t.net ~id:node
      ~recv_cost:(t.scenario.client_recv_cost *. share)
      ~send_cost:(t.scenario.client_send_cost *. share)
      (fun ~src msg ->
        let actions, reply =
          Client.handle slot.client ~now:(Engine.now t.eng)
            (Receive { src = in_node t src; msg })
        in
        dispatch_client t node actions reply);
    if not light then
      for r = 0 to t.cfg.n - 1 do
        Network.set_link_sym t.net node (t.node_base + r) (t.scenario.client_link r)
      done;
    client

  (** Sends by message kind since creation (or the last reset). *)
  let message_counts t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.msg_counts [] |> List.sort compare

  let reset_message_counts t = Hashtbl.reset t.msg_counts

  let set_on_reply t client f =
    match Hashtbl.find_opt t.clients (Client.node client) with
    | Some slot -> slot.on_reply <- f
    | None -> invalid_arg "Runtime.set_on_reply: unknown client"

  let submit t client ?trace rtype ~payload =
    match Client.submit client ~now:(Engine.now t.eng) ?trace rtype ~payload with
    | `Busy -> `Busy
    | `Sent actions ->
      Metrics.inc t.meters.m_requests;
      dispatch_client t (Client.node client) actions None;
      `Submitted

  (* Alias kept for callers that predate the typed return. *)
  let try_submit t client rtype ~payload = submit t client rtype ~payload

  (* Typed submission: classify and encode inside the runtime, so
     workloads and examples never build payload strings. The commit
     payload carries the op count on the wire (the replica's T-Paxos path
     never decodes it, but the byte size matters to the network model). *)
  let encode_item = function
    | Do op ->
      ((match S.classify op with `Read -> Read | `Write -> Write), S.encode_op op)
    | Unreplicated op -> (Original, S.encode_op op)
    | In_txn (tid, op) -> (Txn_op tid, S.encode_op op)
    | Commit_txn { tid; ops } ->
      ( Txn_commit tid,
        Grid_codec.Wire.encode (fun e -> Grid_codec.Wire.Encoder.uint e ops) )
    | Abort_txn tid -> (Txn_abort tid, "")

  let submit_item t client ?trace it =
    let rtype, payload = encode_item it in
    submit t client ?trace rtype ~payload

  let try_submit_item t client ?trace it = submit_item t client ?trace it
  let submit_op t client op = submit_item t client (Do op)

  (** {1 Failure control} *)

  let crash_replica t i =
    t.down.(i) <- true;
    Network.crash t.net (t.node_base + i)

  (** Recovery restarts the replica's volatile state (as a real process
      restart would) and re-arms its timers. *)
  let recover_replica t i =
    t.down.(i) <- false;
    t.incarnation.(i) <- t.incarnation.(i) + 1;
    Network.recover t.net (t.node_base + i);
    dispatch_replica t i (R.restart t.replicas.(i) ~now:(rnow t i))

  let replica_up t i = not t.down.(i)

  (** {1 Running} *)

  let run_until t horizon = Engine.run ~until:horizon t.eng

  let leader t =
    let rec find i =
      if i >= t.cfg.n then None
      else if (not t.down.(i)) && R.is_leader t.replicas.(i) then Some i
      else find (i + 1)
    in
    find 0

  (** Run until a leader is elected (and its prepare round finished), or
      [max_wait] simulated ms elapse. *)
  let await_leader ?(max_wait = 10_000.0) t =
    let deadline = Engine.now t.eng +. max_wait in
    let rec loop () =
      match leader t with
      | Some l -> Some l
      | None ->
        if Engine.now t.eng >= deadline then None
        else if Engine.step t.eng then loop ()
        else None
    in
    loop ()

  (** {1 Closed-loop workloads}

      Mirrors the paper's methodology: after the leader is elected the
      clients all start at the same instant; each sends its next request
      only after receiving the reply to the previous one. *)

  type record = {
    rec_client : int;
    rec_seq : int;  (* per-client completion index, 1-based *)
    rec_rtype : rtype;
    rec_status : status;
    rec_latency : float;  (* ms *)
  }

  type results = {
    records : record list;  (** completion order *)
    started_at : float;
    finished_at : float;
    total_completed : int;
  }

  let latencies ?(filter = fun _ -> true) results =
    List.filter filter results.records
    |> List.map (fun r -> r.rec_latency)
    |> Array.of_list

  let throughput_rps results =
    let dur_ms = results.finished_at -. results.started_at in
    if dur_ms <= 0.0 then 0.0
    else Float.of_int results.total_completed /. dur_ms *. 1000.0

  (** [run_closed_loop t ~clients ~requests_per_client ~gen ()] runs the
      workload to completion. [gen ~client] is called once per client and
      must return a generator producing that client's successive requests.
      Returns per-request records (latency in simulated ms). *)
  let run_closed_loop ?(max_sim_ms = 600_000.0) ~clients ~requests_per_client ~gen t =
    (match await_leader t with
    | Some _ -> ()
    | None -> failwith "run_closed_loop: no leader elected");
    let records = ref [] in
    let total = ref 0 in
    let finished_at = ref (now t) in
    let expected = clients * requests_per_client in
    let started_at = now t in
    let machine_share = t.scenario.clients_per_machine clients in
    (* Rescale replica CPU costs for this client count; relative to the
       factor already in force so repeated workloads do not compound. *)
    let load = t.scenario.server_load_factor clients in
    if load <> t.load_applied then begin
      for i = 0 to t.cfg.n - 1 do
        Network.scale_node_costs t.net (t.node_base + i) ~factor:(load /. t.load_applied)
      done;
      t.load_applied <- load
    end;
    for c = 0 to clients - 1 do
      let next = gen ~client:c in
      let remaining = ref requests_per_client in
      let sent_at = ref 0.0 in
      let sent_rtype = ref Read in
      let completions = ref 0 in
      let client_ref = ref None in
      let submit_next () =
        match next () with
        | Some (rtype, payload) -> (
          sent_at := now t;
          sent_rtype := rtype;
          match !client_ref with
          | Some cl -> (
            (* The closed loop only submits after the previous reply
               cleared the pending slot, so [`Busy] here is a driver bug. *)
            match submit t cl rtype ~payload with
            | `Submitted -> ()
            | `Busy -> failwith "run_closed_loop: client busy on submit")
          | None -> ())
        | None -> ()
      in
      let on_reply (reply : reply) =
        incr completions;
        incr total;
        finished_at := now t;
        Metrics.inc t.meters.m_replies;
        Metrics.observe t.meters.m_latency (now t -. !sent_at);
        records :=
          {
            rec_client = c;
            rec_seq = !completions;
            rec_rtype = !sent_rtype;
            rec_status = reply.status;
            rec_latency = now t -. !sent_at;
          }
          :: !records;
        decr remaining;
        if !remaining > 0 then submit_next ()
      in
      let id = t.next_client_id in
      t.next_client_id <- t.next_client_id + 1;
      let client = add_client t ~id ~machine_share ~on_reply () in
      client_ref := Some client;
      (* First request of every client at the same instant — the paper's
         leader-sent start signal. *)
      ignore
        (Engine.schedule t.eng ~delay:0.0 (fun () ->
             if !remaining > 0 then submit_next ()))
    done;
    let deadline = started_at +. max_sim_ms in
    let rec drive () =
      if !total >= expected then ()
      else if now t > deadline then
        failwith
          (Printf.sprintf "run_closed_loop: stalled at %d/%d completions" !total expected)
      else if Engine.step t.eng then drive ()
      else ()
    in
    drive ();
    {
      records = List.rev !records;
      started_at;
      finished_at = !finished_at;
      total_completed = !total;
    }

  (** Typed-generator front end to {!run_closed_loop}: items are encoded
      by the runtime, so generators deal only in [S.op]. *)
  let run_closed_loop_ops ?max_sim_ms ~clients ~requests_per_client ~gen t =
    run_closed_loop ?max_sim_ms ~clients ~requests_per_client
      ~gen:(fun ~client ->
        let next = gen ~client in
        fun () -> Option.map encode_item (next ()))
      t
end
