(* Tests for the lease manager service: expiry semantics, the clock
   nondeterminism it embodies, witness replay, and consistent
   replication. *)

module Lease = Grid_services.Lease_manager
module Rng = Grid_util.Rng
module Config = Grid_paxos.Config
module Scenario = Grid_runtime.Scenario
open Grid_paxos.Types

module RT = Grid_runtime.Runtime.Make (Lease)

let rng = Rng.of_int 1

let test_acquire_release () =
  let s = Lease.initial () in
  let o = Lease.apply ~rng ~now:100.0 s (Lease.Acquire { resource = "gpu"; holder = 1; ttl_ms = 50.0 }) in
  (match o.result with
  | Lease.Granted { until } -> Alcotest.(check (float 1e-9)) "deadline" 150.0 until
  | _ -> Alcotest.fail "expected grant");
  (* Another holder is denied while the lease is live. *)
  let o2 = Lease.apply ~rng ~now:120.0 o.state (Lease.Acquire { resource = "gpu"; holder = 2; ttl_ms = 50.0 }) in
  (match o2.result with
  | Lease.Denied { holder = 1; _ } -> ()
  | _ -> Alcotest.fail "expected denial");
  (* Release frees it. *)
  let o3 = Lease.apply ~rng ~now:130.0 o2.state (Lease.Release { resource = "gpu"; holder = 1 }) in
  Alcotest.(check bool) "released" true (o3.result = Lease.Released);
  let o4 = Lease.apply ~rng ~now:131.0 o3.state (Lease.Acquire { resource = "gpu"; holder = 2; ttl_ms = 10.0 }) in
  match o4.result with Lease.Granted _ -> () | _ -> Alcotest.fail "freed lease grantable"

let test_expiry_is_clock_dependent () =
  (* The paper's nondeterminism class: the same request sequence examined
     at different local times produces different behaviour. *)
  let s = Lease.initial () in
  let s =
    (Lease.apply ~rng ~now:100.0 s (Lease.Acquire { resource = "r"; holder = 1; ttl_ms = 50.0 })).state
  in
  let fast = Lease.apply ~rng ~now:149.0 s (Lease.Acquire { resource = "r"; holder = 2; ttl_ms = 50.0 }) in
  let slow = Lease.apply ~rng ~now:151.0 s (Lease.Acquire { resource = "r"; holder = 2; ttl_ms = 50.0 }) in
  (match fast.result with
  | Lease.Denied _ -> ()
  | _ -> Alcotest.fail "fast examiner still sees the lease");
  match slow.result with
  | Lease.Granted _ -> ()
  | _ -> Alcotest.fail "slow examiner sees it expired"

let test_renew () =
  let s = Lease.initial () in
  let s = (Lease.apply ~rng ~now:0.0 s (Lease.Acquire { resource = "r"; holder = 1; ttl_ms = 10.0 })).state in
  let o = Lease.apply ~rng ~now:5.0 s (Lease.Renew { resource = "r"; holder = 1; ttl_ms = 20.0 }) in
  (match o.result with
  | Lease.Renewed { until } -> Alcotest.(check (float 1e-9)) "extended" 25.0 until
  | _ -> Alcotest.fail "expected renewal");
  (* Wrong holder, or renewal after expiry, fails. *)
  let o2 = Lease.apply ~rng ~now:6.0 o.state (Lease.Renew { resource = "r"; holder = 2; ttl_ms = 5.0 }) in
  Alcotest.(check bool) "wrong holder" true (o2.result = Lease.Not_holder);
  let o3 = Lease.apply ~rng ~now:99.0 o.state (Lease.Renew { resource = "r"; holder = 1; ttl_ms = 5.0 }) in
  Alcotest.(check bool) "expired renewal" true (o3.result = Lease.Not_holder)

let test_reads () =
  let s = Lease.initial () in
  let s = (Lease.apply ~rng ~now:0.0 s (Lease.Acquire { resource = "a"; holder = 3; ttl_ms = 100.0 })).state in
  let s = (Lease.apply ~rng ~now:0.0 s (Lease.Acquire { resource = "b"; holder = 4; ttl_ms = 10.0 })).state in
  (match (Lease.apply ~rng ~now:5.0 s (Lease.Holder_of "a")).result with
  | Lease.Holder (Some (3, _)) -> ()
  | _ -> Alcotest.fail "holder of a");
  (match (Lease.apply ~rng ~now:50.0 s (Lease.Holder_of "b")).result with
  | Lease.Holder None -> ()  (* expired by now=50 *)
  | _ -> Alcotest.fail "b should read as expired");
  match (Lease.apply ~rng ~now:50.0 s Lease.Active_count).result with
  | Lease.Count 1 -> ()
  | _ -> Alcotest.fail "one active lease at t=50"

let test_witness_replay () =
  (* Replay must reproduce the leader's transition exactly — including
     the deadline the leader computed from ITS clock — without looking at
     any clock. *)
  let s = Lease.initial () in
  let ops_at =
    [ (100.0, Lease.Acquire { resource = "r"; holder = 1; ttl_ms = 37.0 });
      (120.0, Lease.Renew { resource = "r"; holder = 1; ttl_ms = 55.0 });
      (300.0, Lease.Acquire { resource = "r"; holder = 2; ttl_ms = 10.0 });
      (305.0, Lease.Release { resource = "r"; holder = 2 }) ]
  in
  ignore
    (List.fold_left
       (fun (leader_state, replica_state) (now, op) ->
         let o = Lease.apply ~rng ~now leader_state op in
         let replica_state', result' =
           Lease.replay replica_state op ~witness:(Option.get o.witness)
         in
         Alcotest.(check string) "states equal"
           (Lease.encode_state o.state) (Lease.encode_state replica_state');
         Alcotest.(check bool) "results equal" true (result' = o.result);
         (o.state, replica_state'))
       (s, s) ops_at)

let test_codecs () =
  List.iter
    (fun op -> Alcotest.(check bool) "op roundtrip" true (Lease.decode_op (Lease.encode_op op) = op))
    [ Lease.Acquire { resource = "r"; holder = 1; ttl_ms = 5.0 };
      Lease.Renew { resource = "r"; holder = 2; ttl_ms = 6.0 };
      Lease.Release { resource = "r"; holder = 1 };
      Lease.Holder_of "x";
      Lease.Active_count ];
  List.iter
    (fun r -> Alcotest.(check bool) "result roundtrip" true (Lease.decode_result (Lease.encode_result r) = r))
    [ Lease.Granted { until = 1.5 };
      Lease.Denied { holder = 2; until = 3.0 };
      Lease.Renewed { until = 9.0 };
      Lease.Released;
      Lease.Not_holder;
      Lease.Holder (Some (1, 2.0));
      Lease.Holder None;
      Lease.Count 4 ]

let test_diff_patch () =
  let s = Lease.initial () in
  let s1 = (Lease.apply ~rng ~now:0.0 s (Lease.Acquire { resource = "a"; holder = 1; ttl_ms = 10.0 })).state in
  let s2 = (Lease.apply ~rng ~now:1.0 s1 (Lease.Acquire { resource = "b"; holder = 2; ttl_ms = 10.0 })).state in
  let s3 = (Lease.apply ~rng ~now:2.0 s2 (Lease.Release { resource = "a"; holder = 1 })).state in
  let d12 = Option.get (Lease.diff ~old_state:s1 s2) in
  Alcotest.(check string) "patch add" (Lease.encode_state s2)
    (Lease.encode_state (Lease.patch s1 d12));
  let d23 = Option.get (Lease.diff ~old_state:s2 s3) in
  Alcotest.(check string) "patch remove" (Lease.encode_state s3)
    (Lease.encode_state (Lease.patch s2 d23))

let test_replicated_leases_consistent () =
  (* End to end: replicas agree on every grant/deny even though the
     decisions are clock-dependent, and leases survive a leader switch. *)
  let cfg = Config.make ~n:3 ~record_history:true () in
  let t = RT.create ~cfg ~scenario:(Scenario.uniform ()) () in
  ignore (RT.await_leader t);
  let results = ref [] in
  let client = ref None in
  let ops =
    ref
      [ Lease.Acquire { resource = "gpu"; holder = 1; ttl_ms = 100_000.0 };
        Lease.Acquire { resource = "gpu"; holder = 2; ttl_ms = 50.0 };
        Lease.Acquire { resource = "disk"; holder = 2; ttl_ms = 100_000.0 } ]
  in
  let submit_next () =
    match !ops with
    | [] -> ()
    | op :: rest ->
      ops := rest;
      (match RT.submit t (Option.get !client) Write ~payload:(Lease.encode_op op) with
      | `Submitted -> ()
      | `Busy -> Alcotest.fail "submit: client busy")
  in
  let c =
    RT.add_client t ~id:1
      ~on_reply:(fun reply ->
        results := Lease.decode_result reply.payload :: !results;
        submit_next ())
      ()
  in
  client := Some c;
  submit_next ();
  RT.run_until t (RT.now t +. 500.0);
  (match List.rev !results with
  | [ Lease.Granted _; Lease.Denied { holder = 1; _ }; Lease.Granted _ ] -> ()
  | _ -> Alcotest.fail "unexpected grant/deny sequence");
  (* Leader switch: lease table survives because it was replicated. *)
  RT.crash_replica t 0;
  RT.run_until t (RT.now t +. 2_000.0);
  let l = Option.get (RT.leader t) in
  Alcotest.(check bool) "new leader" true (l <> 0);
  let st = RT.R.state (RT.replica t l) in
  (match Lease.lease_of st "gpu" with
  | Some { holder = 1; _ } -> ()
  | _ -> Alcotest.fail "gpu lease lost across leader switch");
  Alcotest.(check int) "two leases" 2 (Lease.lease_count st)

let suite =
  [
    ( "services.lease",
      [
        Alcotest.test_case "acquire/deny/release" `Quick test_acquire_release;
        Alcotest.test_case "expiry is clock-dependent (§2 class)" `Quick
          test_expiry_is_clock_dependent;
        Alcotest.test_case "renew" `Quick test_renew;
        Alcotest.test_case "reads" `Quick test_reads;
        Alcotest.test_case "witness replay" `Quick test_witness_replay;
        Alcotest.test_case "codecs" `Quick test_codecs;
        Alcotest.test_case "diff/patch" `Quick test_diff_patch;
        Alcotest.test_case "replicated leases survive failover" `Quick
          test_replicated_leases_consistent;
      ] );
  ]
