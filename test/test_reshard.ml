(* Elastic resharding tests (DESIGN.md §17): deterministic engine-level
   scripts for the migration protocol — the happy split path with
   snapshot handoff, the Wrong_epoch client redirect against a stale
   router, coordinator abandonment on both sides of the commit point,
   duplicate map-commit delivery, the pinned-transaction-across-epochs
   regression, merge (both the data-moving and the trivial kind), and
   snapshot catch-up of a target replica that slept through the
   migration. *)

module Config = Grid_paxos.Config
module Runtime = Grid_runtime.Runtime
module Scenario = Grid_runtime.Scenario
module Partition = Grid_shard.Partition
module Reshard = Grid_shard.Reshard
module Kv = Grid_services.Kv_store
module M = Grid_shard.Multi.Make (Kv)
open Grid_paxos.Types

(* Three groups over explicit cut points in footprint space
   ("kv/" ^ key): shard 0 owns [-inf, "kv/h"), shard 1 ["kv/h", "kv/p"),
   shard 2 ["kv/p", +inf). The tests below split shard 0 at "kv/f",
   moving ["kv/f", "kv/h") — e.g. key "g1" — to shard 1. *)
let cuts = [ "kv/h"; "kv/p" ]
let cut = "kv/f"

let mk_cluster ?(seed = 9) () =
  let t =
    M.create ~seed
      ~cfg:
        (Config.make ~n:3 ~record_history:true ~suspicion_ms:60.0
           ~stability_ms:20.0 ())
      ~scenario:(Scenario.uniform ()) ~route:Kv.route
      ~spec:(Partition.Range cuts) ~shards:3 ()
  in
  (match M.await_leaders t with
  | Some _ -> ()
  | None -> Alcotest.fail "leaders not elected");
  t

let settle ?(ms = 500.0) t = M.run_until t (M.now t +. ms)

let wait ?(what = "condition") t cond =
  let deadline = M.now t +. 10_000.0 in
  while (not (cond ())) && M.now t < deadline do
    M.run_until t (M.now t +. 10.0)
  done;
  if not (cond ()) then Alcotest.fail ("timed out waiting for " ^ what)

let leader_of t g =
  match M.Group.leader (M.group t g) with
  | Some l -> M.Group.replica (M.group t g) l
  | None -> Alcotest.fail (Printf.sprintf "group %d has no leader" g)

let value_at t g key = Kv.find (M.Group.R.state (leader_of t g)) key

let submit_ok what = function
  | `Submitted -> ()
  | `Busy -> Alcotest.fail (what ^ ": handle busy")

(* A client whose replies land in a list, newest first. *)
let spy_client t ~id =
  let replies = ref [] in
  let cl = M.add_client t ~id ~on_reply:(fun r -> replies := r :: !replies) () in
  (cl, replies)

let put t cl ~key ~value =
  match M.try_submit_op t cl (Kv.Put { key; value }) with
  | Ok s -> s
  | Error e -> Alcotest.failf "put %s: %a" key M.pp_submit_error e

let write_and_wait t cl replies ~key ~value =
  let before = List.length !replies in
  let s = put t cl ~key ~value in
  wait ~what:("write " ^ key) t (fun () -> List.length !replies > before);
  (s, (List.hd !replies).status)

(* ------------------------------------------------------------------ *)
(* Happy path: live split with snapshot handoff. *)

let test_split_happy_path () =
  let t = mk_cluster () in
  let cl, replies = spy_client t ~id:0 in
  ignore (write_and_wait t cl replies ~key:"g1" ~value:"before");
  ignore (write_and_wait t cl replies ~key:"d1" ~value:"stays");
  Alcotest.(check int) "moving key starts at shard 0" 0
    (Partition.owner_of_key (M.partition t) "kv/g1");
  let coord = M.add_client t ~id:1 () in
  let result = ref None in
  (match
     M.split_shard t coord ~cut ~target:1 ~on_done:(fun r -> result := Some r)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "split plan: %a" Partition.pp_reshard_error e);
  wait ~what:"split" t (fun () -> !result <> None);
  (match !result with
  | Some M.R_committed -> ()
  | Some r -> Alcotest.failf "split: %a" M.pp_rresult r
  | None -> assert false);
  (* The router adopted the successor map at the source's commit. *)
  Alcotest.(check int) "map epoch advanced" 1 (Partition.epoch (M.partition t));
  Alcotest.(check int) "moving key now owned by shard 1" 1
    (Partition.owner_of_key (M.partition t) "kv/g1");
  settle t;
  (* Participant state on both sides. *)
  let src = leader_of t 0 and tgt = leader_of t 1 in
  Alcotest.(check string) "source idle again" "idle"
    (M.Group.R.reshard_phase src);
  Alcotest.(check int) "source committed the epoch" 1
    (M.Group.R.reshard_epoch src);
  Alcotest.(check int) "source tracks one moved range" 1
    (M.Group.R.moved_ranges src);
  Alcotest.(check int) "target committed the epoch" 1
    (M.Group.R.reshard_epoch tgt);
  Alcotest.(check int) "target imported the slice" 1
    (M.Group.R.imported_items tgt);
  (* Snapshot handoff: the pre-split write is already at the target. *)
  Alcotest.(check (option string)) "moved key served by target"
    (Some "before") (value_at t 1 "g1");
  (* New writes route to the new owner. *)
  let s, st = write_and_wait t cl replies ~key:"g1" ~value:"after" in
  Alcotest.(check int) "write routed to shard 1" 1 s;
  Alcotest.(check bool) "write accepted" true (st = Ok);
  settle t;
  Alcotest.(check (option string)) "target applied the write" (Some "after")
    (value_at t 1 "g1");
  Alcotest.(check (option string)) "non-moving key still at source"
    (Some "stays") (value_at t 0 "d1")

(* ------------------------------------------------------------------ *)
(* A stale router: the migration completes behind the router's back
   (raw submissions), then a plain write redirects transparently. *)

let plan_of t =
  match Reshard.split (M.partition t) ~cut ~target:1 with
  | Ok (Reshard.Move p) -> p
  | Ok (Reshard.Trivial _) -> Alcotest.fail "split cannot be trivial"
  | Error e -> Alcotest.failf "plan: %a" Partition.pp_reshard_error e

let test_wrong_epoch_redirect () =
  let t = mk_cluster () in
  let cl, replies = spy_client t ~id:0 in
  ignore (write_and_wait t cl replies ~key:"g1" ~value:"v0");
  let p = plan_of t in
  let e = p.Reshard.pl_epoch in
  (* Drive the whole migration manually; M.partition t stays at epoch 0. *)
  let drv, drv_replies = spy_client t ~id:1 in
  let step what ~shard rt ~payload =
    let before = List.length !drv_replies in
    submit_ok what (M.submit_reshard t drv ~shard rt ~payload);
    wait ~what t (fun () -> List.length !drv_replies > before);
    (List.hd !drv_replies).status
  in
  Alcotest.(check bool) "freeze Ok" true
    (step "freeze" ~shard:0 (Reshard_freeze e) ~payload:p.Reshard.pl_freeze = Ok);
  let count, blob =
    match
      Kv.export_range
        (M.Group.R.state (leader_of t 0))
        ~lo:p.Reshard.pl_move.Partition.mv_lo
        ~hi:p.Reshard.pl_move.Partition.mv_hi
    with
    | Some (c, b) -> (c, b)
    | None -> Alcotest.fail "export refused"
  in
  Alcotest.(check int) "export found the key" 1 count;
  Alcotest.(check bool) "install Ok" true
    (step "install" ~shard:1 (Reshard_install e)
       ~payload:(Reshard.install_payload p ~count ~blob)
    = Ok);
  Alcotest.(check bool) "commit(source) Ok" true
    (step "commit-src" ~shard:0 (Reshard_commit e) ~payload:p.Reshard.pl_commit
    = Ok);
  Alcotest.(check bool) "commit(target) Ok" true
    (step "commit-tgt" ~shard:1 (Reshard_commit e) ~payload:p.Reshard.pl_commit
    = Ok);
  Alcotest.(check int) "router map still stale" 0
    (Partition.epoch (M.partition t));
  (* The stale router sends the write to shard 0; the source answers
     Wrong_epoch with the committed map; the wrapper adopts it and
     resubmits to shard 1 — the caller sees one Ok reply. *)
  let s, st = write_and_wait t cl replies ~key:"g1" ~value:"v1" in
  Alcotest.(check int) "initial routing used the stale map" 0 s;
  Alcotest.(check bool) "caller saw a plain Ok" true (st = Ok);
  Alcotest.(check int) "one transparent redirect" 1 (M.redirect_count cl);
  Alcotest.(check int) "router adopted the committed map" 1
    (Partition.epoch (M.partition t));
  settle t;
  Alcotest.(check (option string)) "write landed at the new owner"
    (Some "v1") (value_at t 1 "g1")

(* ------------------------------------------------------------------ *)
(* Coordinator dies after FREEZE (before the commit point): writes to
   the frozen range block, presumed-abort recovery rolls the freeze
   back and releases them, and a retried split skips the burned epoch. *)

let test_coordinator_crash_after_freeze () =
  let t = mk_cluster () in
  let p = plan_of t in
  let e = p.Reshard.pl_epoch in
  let drv, drv_replies = spy_client t ~id:0 in
  submit_ok "freeze"
    (M.submit_reshard t drv ~shard:0 (Reshard_freeze e)
       ~payload:p.Reshard.pl_freeze);
  wait ~what:"freeze" t (fun () -> !drv_replies <> []);
  Alcotest.(check string) "source frozen" "frozen"
    (M.Group.R.reshard_phase (leader_of t 0));
  (* A write into the frozen range holds. *)
  let wcl, wreplies = spy_client t ~id:1 in
  ignore (put t wcl ~key:"g1" ~value:"W");
  settle t ~ms:300.0;
  Alcotest.(check bool) "write blocked behind the freeze" true
    (!wreplies = []);
  (* ...and the coordinator is gone. A fresh client resolves: nothing
     committed, so the abort wins. *)
  let rcl = M.add_client t ~id:2 () in
  let rresult = ref None in
  M.recover_reshard t rcl ~epoch:e ~source:0 ~target:1 ~on_done:(fun r ->
      rresult := Some r);
  wait ~what:"recovery" t (fun () -> !rresult <> None);
  (match !rresult with
  | Some (M.R_aborted _) -> ()
  | Some M.R_committed -> Alcotest.fail "recovery must abort an uncommitted migration"
  | None -> assert false);
  (* The blocked write was released and ran against the unchanged map. *)
  wait ~what:"released write" t (fun () -> !wreplies <> []);
  Alcotest.(check bool) "released write succeeded" true
    ((List.hd !wreplies).status = Ok);
  settle t;
  Alcotest.(check string) "freeze rolled back" "idle"
    (M.Group.R.reshard_phase (leader_of t 0));
  Alcotest.(check int) "no epoch committed" 0
    (M.Group.R.reshard_epoch (leader_of t 0));
  Alcotest.(check (option string)) "write applied at the source" (Some "W")
    (value_at t 0 "g1");
  (* Retry: the aborted attempt burned epoch [e]; the coordinator must
     skip past the tombstone and still succeed. *)
  let coord = M.add_client t ~id:3 () in
  let result = ref None in
  (match
     M.split_shard t coord ~cut ~target:1 ~on_done:(fun r -> result := Some r)
   with
  | Ok () -> ()
  | Error err -> Alcotest.failf "retry plan: %a" Partition.pp_reshard_error err);
  wait ~what:"retried split" t (fun () -> !result <> None);
  (match !result with
  | Some M.R_committed -> ()
  | Some r -> Alcotest.failf "retried split: %a" M.pp_rresult r
  | None -> assert false);
  Alcotest.(check bool) "retry used a fresh epoch" true
    (Partition.epoch (M.partition t) > e);
  settle t;
  Alcotest.(check (option string)) "moved key carried to target" (Some "W")
    (value_at t 1 "g1")

(* ------------------------------------------------------------------ *)
(* Coordinator dies after COMMIT(source) — past the commit point:
   recovery must finish the commit at the target, not abort. *)

let test_recovery_finds_commit () =
  let t = mk_cluster () in
  let cl, replies = spy_client t ~id:0 in
  ignore (write_and_wait t cl replies ~key:"g1" ~value:"kept");
  let p = plan_of t in
  let e = p.Reshard.pl_epoch in
  let drv, drv_replies = spy_client t ~id:1 in
  let step what ~shard rt ~payload =
    let before = List.length !drv_replies in
    submit_ok what (M.submit_reshard t drv ~shard rt ~payload);
    wait ~what t (fun () -> List.length !drv_replies > before)
  in
  step "freeze" ~shard:0 (Reshard_freeze e) ~payload:p.Reshard.pl_freeze;
  let count, blob =
    match
      Kv.export_range
        (M.Group.R.state (leader_of t 0))
        ~lo:p.Reshard.pl_move.Partition.mv_lo
        ~hi:p.Reshard.pl_move.Partition.mv_hi
    with
    | Some (c, b) -> (c, b)
    | None -> Alcotest.fail "export refused"
  in
  step "install" ~shard:1 (Reshard_install e)
    ~payload:(Reshard.install_payload p ~count ~blob);
  step "commit-src" ~shard:0 (Reshard_commit e) ~payload:p.Reshard.pl_commit;
  (* Commit point passed; the coordinator is abandoned here. *)
  let rcl = M.add_client t ~id:2 () in
  let rresult = ref None in
  M.recover_reshard t rcl ~epoch:e ~source:0 ~target:1 ~on_done:(fun r ->
      rresult := Some r);
  wait ~what:"recovery" t (fun () -> !rresult <> None);
  (match !rresult with
  | Some M.R_committed -> ()
  | Some (M.R_aborted why) ->
    Alcotest.failf "recovery aborted a committed migration: %s" why
  | None -> assert false);
  Alcotest.(check int) "recovery adopted the committed map" 1
    (Partition.epoch (M.partition t));
  settle t;
  Alcotest.(check int) "target finished the commit" e
    (M.Group.R.reshard_epoch (leader_of t 1));
  Alcotest.(check (option string)) "moved key served by target"
    (Some "kept") (value_at t 1 "g1")

(* ------------------------------------------------------------------ *)
(* Duplicate map-commit delivery: epoch tombstones answer Ok without
   re-moving anything. *)

let test_duplicate_commit_delivery () =
  let t = mk_cluster () in
  let coord = M.add_client t ~id:0 () in
  let result = ref None in
  (match
     M.split_shard t coord ~cut ~target:1 ~on_done:(fun r -> result := Some r)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "split plan: %a" Partition.pp_reshard_error e);
  wait ~what:"split" t (fun () -> !result <> None);
  settle t;
  let e = Partition.epoch (M.partition t) in
  let moved0 = M.Group.R.moved_ranges (leader_of t 0) in
  let imported1 = M.Group.R.imported_items (leader_of t 1) in
  let payload = Partition.encode (M.partition t) in
  let dup, dups = spy_client t ~id:1 in
  let redeliver ~shard =
    let before = List.length !dups in
    submit_ok "dup commit" (M.submit_reshard t dup ~shard (Reshard_commit e) ~payload);
    wait ~what:"dup commit" t (fun () -> List.length !dups > before);
    (List.hd !dups).status
  in
  Alcotest.(check bool) "source answers the duplicate Ok" true
    (redeliver ~shard:0 = Ok);
  Alcotest.(check bool) "target answers the duplicate Ok" true
    (redeliver ~shard:1 = Ok);
  settle t;
  Alcotest.(check int) "no extra range moved" moved0
    (M.Group.R.moved_ranges (leader_of t 0));
  Alcotest.(check int) "nothing re-imported" imported1
    (M.Group.R.imported_items (leader_of t 1));
  Alcotest.(check int) "epoch unchanged" e (Partition.epoch (M.partition t))

(* ------------------------------------------------------------------ *)
(* Regression: a transaction pinned to a shard that splits mid-flight
   must never have its halves routed to different epochs. Its commit
   follows the pin and either completes against the old owner (keys
   stayed) or surfaces a typed Wrong_epoch (keys moved). *)

let test_pinned_txn_across_split () =
  let t = mk_cluster () in
  let cl, replies = spy_client t ~id:0 in
  let submit what it =
    match M.try_submit_item t cl it with
    | Ok s -> s
    | Error e -> Alcotest.failf "%s: %a" what M.pp_submit_error e
  in
  let await what before =
    wait ~what t (fun () -> List.length !replies > before);
    (List.hd !replies).status
  in
  (* Txn 1 touches the moving range; txn 2 does not. Open both before
     the split. *)
  let s1 =
    submit "txn1 op" (Runtime.In_txn (1, Kv.Put { key = "g1"; value = "T1" }))
  in
  ignore (await "txn1 op" 0);
  let s2 =
    submit "txn2 op" (Runtime.In_txn (2, Kv.Put { key = "d1"; value = "T2" }))
  in
  ignore (await "txn2 op" 1);
  Alcotest.(check int) "both pinned to shard 0" 0 (max s1 s2);
  Alcotest.(check int) "two pins held" 2 (M.pinned_txns cl);
  (* Split commits while the transactions are open. *)
  let coord = M.add_client t ~id:1 () in
  let result = ref None in
  (match
     M.split_shard t coord ~cut ~target:1 ~on_done:(fun r -> result := Some r)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "split plan: %a" Partition.pp_reshard_error e);
  wait ~what:"split" t (fun () -> !result = Some M.R_committed);
  (* Txn 1: its key moved away. The commit follows the pin to shard 0
     and comes back as a typed Wrong_epoch — not a partial commit, not
     a silent reroute. *)
  let before = List.length !replies in
  let s = submit "txn1 commit" (Runtime.Commit_txn { tid = 1; ops = 1 }) in
  Alcotest.(check int) "commit followed the pin" 0 s;
  (match await "txn1 commit" before with
  | Wrong_epoch { epoch; _ } -> Alcotest.(check int) "redirect names the epoch" 1 epoch
  | st -> Alcotest.failf "expected Wrong_epoch, got %a" pp_status st);
  settle t;
  Alcotest.(check (option string)) "txn1 never applied at the source" None
    (value_at t 0 "g1");
  Alcotest.(check (option string)) "txn1 never applied at the target" None
    (value_at t 1 "g1");
  (* Txn 2: its key stayed. The commit follows the pin and completes
     against the old epoch. *)
  let before = List.length !replies in
  let s = submit "txn2 commit" (Runtime.Commit_txn { tid = 2; ops = 1 }) in
  Alcotest.(check int) "commit followed the pin" 0 s;
  Alcotest.(check bool) "txn2 committed" true (await "txn2 commit" before = Ok);
  settle t;
  Alcotest.(check (option string)) "txn2 applied" (Some "T2")
    (value_at t 0 "d1");
  Alcotest.(check int) "pins released" 0 (M.pinned_txns cl)

(* ------------------------------------------------------------------ *)
(* Merge: the inverse move carries the data back, and a merge whose two
   sides already share an owner is a pure epoch bump. *)

let test_merge_paths () =
  let t = mk_cluster () in
  let cl, replies = spy_client t ~id:0 in
  ignore (write_and_wait t cl replies ~key:"g1" ~value:"ping");
  let coord = M.add_client t ~id:1 () in
  let run what
      (go :
        on_done:(M.rresult -> unit) ->
        (unit, Partition.reshard_error) result) =
    let result = ref None in
    (match go ~on_done:(fun r -> result := Some r) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s plan: %a" what Partition.pp_reshard_error e);
    wait ~what t (fun () -> !result <> None);
    match !result with
    | Some M.R_committed -> ()
    | Some r -> Alcotest.failf "%s: %a" what M.pp_rresult r
    | None -> assert false
  in
  run "split" (fun ~on_done -> M.split_shard t coord ~cut ~target:1 ~on_done);
  settle t;
  Alcotest.(check (option string)) "moved out" (Some "ping")
    (value_at t 1 "g1");
  (* Merging at "kv/h" joins ["kv/f","kv/h") and ["kv/h","kv/p") — both
     owned by shard 1 now: a trivial merge, committed synchronously. *)
  let e_before = Partition.epoch (M.partition t) in
  let fired = ref false in
  (match M.merge_shards t coord ~cut:"kv/h" ~on_done:(fun r ->
       fired := true;
       match r with
       | M.R_committed -> ()
       | r -> Alcotest.failf "trivial merge: %a" M.pp_rresult r)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trivial merge plan: %a" Partition.pp_reshard_error e);
  Alcotest.(check bool) "trivial merge completes synchronously" true !fired;
  Alcotest.(check bool) "trivial merge still advances the epoch" true
    (Partition.epoch (M.partition t) > e_before);
  (* Merging at the original cut moves ["kv/f","kv/p") back to shard 0 —
     including keys that always lived on shard 1, e.g. "m1". *)
  ignore (write_and_wait t cl replies ~key:"m1" ~value:"pong");
  run "merge" (fun ~on_done -> M.merge_shards t coord ~cut ~on_done);
  settle t;
  Alcotest.(check int) "keys back at shard 0" 0
    (Partition.owner_of_key (M.partition t) "kv/g1");
  Alcotest.(check (option string)) "moved-back key served by shard 0"
    (Some "ping") (value_at t 0 "g1");
  Alcotest.(check (option string)) "absorbed key served by shard 0"
    (Some "pong") (value_at t 0 "m1");
  let s, st = write_and_wait t cl replies ~key:"g1" ~value:"home" in
  Alcotest.(check int) "writes route home" 0 s;
  Alcotest.(check bool) "write accepted" true (st = Ok)

(* ------------------------------------------------------------------ *)
(* Catch-up: a target replica that slept through the migration adopts
   the imported slice from the shipped snapshot, not from a second
   transfer. *)

let test_lagging_target_catches_up () =
  let t = mk_cluster () in
  let cl, replies = spy_client t ~id:0 in
  ignore (write_and_wait t cl replies ~key:"g1" ~value:"carried");
  (* Crash a follower of the target group for the whole migration. *)
  let sleeper =
    match M.Group.leader (M.group t 1) with
    | Some l -> (l + 1) mod 3
    | None -> Alcotest.fail "group 1 has no leader"
  in
  M.crash_replica t ~shard:1 sleeper;
  let coord = M.add_client t ~id:1 () in
  let result = ref None in
  (match
     M.split_shard t coord ~cut ~target:1 ~on_done:(fun r -> result := Some r)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "split plan: %a" Partition.pp_reshard_error e);
  wait ~what:"split" t (fun () -> !result = Some M.R_committed);
  settle t;
  M.recover_replica t ~shard:1 sleeper;
  let r = M.Group.replica (M.group t 1) sleeper in
  wait ~what:"catch-up" t (fun () ->
      M.Group.R.reshard_epoch r = 1
      && Kv.find (M.Group.R.state r) "g1" = Some "carried");
  Alcotest.(check string) "recovered replica is idle" "idle"
    (M.Group.R.reshard_phase r)

(* ------------------------------------------------------------------ *)
(* A FREEZE overlapping a prepared 2PC footprint must be refused: the
   branch's writes only apply at its COMMIT decision, so shipping the
   slice under the lock would silently lose them at the new owner. *)

let test_freeze_refused_under_prepared_lock () =
  let t = mk_cluster () in
  let tid = M.alloc_cross_tid t in
  let cl, replies = spy_client t ~id:1 in
  (* Stage a branch op on a moving-range key and prepare it, leaving
     the decision open — a lock the migration must respect. *)
  submit_ok "txn op"
    (M.submit_txn_op t cl ~shard:0 ~tid (Kv.Append { key = "g1"; value = "x" }));
  wait ~what:"txn op reply" t (fun () -> List.length !replies >= 1);
  submit_ok "prepare" (M.submit_prepare t cl ~shard:0 ~tid ~ops:1);
  wait ~what:"prepare vote" t (fun () -> List.length !replies >= 2);
  (match (List.hd !replies).status with
  | Ok -> ()
  | s -> Alcotest.failf "prepare vote: %a" pp_status s);
  let coord = M.add_client t ~id:2 () in
  let result = ref None in
  (match
     M.split_shard t coord ~cut ~target:1 ~on_done:(fun r -> result := Some r)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "split plan: %a" Partition.pp_reshard_error e);
  wait ~what:"split outcome" t (fun () -> !result <> None);
  (match !result with
  | Some (M.R_aborted _) -> ()
  | Some M.R_committed -> Alcotest.fail "split committed under a prepared lock"
  | None -> assert false);
  Alcotest.(check int) "map unchanged" 0 (Partition.epoch (M.partition t));
  (* Decide the branch; the retried split then commits and the branch's
     write travels with the slice to the new owner. *)
  submit_ok "decision" (M.submit_decision t cl ~shard:0 ~tid ~commit:true);
  wait ~what:"decision reply" t (fun () -> List.length !replies >= 3);
  let result2 = ref None in
  (match
     M.split_shard t coord ~cut ~target:1 ~on_done:(fun r -> result2 := Some r)
   with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "split retry plan: %a" Partition.pp_reshard_error e);
  wait ~what:"split retry outcome" t (fun () -> !result2 <> None);
  (match !result2 with
  | Some M.R_committed -> ()
  | Some (M.R_aborted reason) -> Alcotest.failf "split retry aborted: %s" reason
  | None -> assert false);
  settle t;
  Alcotest.(check (option string))
    "txn write at new owner" (Some "x") (value_at t 1 "g1")

let suite =
  [
    ( "reshard.protocol",
      [
        Alcotest.test_case "live split with snapshot handoff" `Quick
          test_split_happy_path;
        Alcotest.test_case "stale router redirects transparently" `Quick
          test_wrong_epoch_redirect;
        Alcotest.test_case "coordinator crash after freeze aborts and retries"
          `Quick test_coordinator_crash_after_freeze;
        Alcotest.test_case "recovery finishes a committed migration" `Quick
          test_recovery_finds_commit;
        Alcotest.test_case "duplicate map-commit delivery is idempotent" `Quick
          test_duplicate_commit_delivery;
        Alcotest.test_case "pinned transaction never straddles epochs" `Quick
          test_pinned_txn_across_split;
        Alcotest.test_case "merge moves data back; same-owner merge is trivial"
          `Quick test_merge_paths;
        Alcotest.test_case "lagging target replica catches up via snapshot"
          `Quick test_lagging_target_catches_up;
        Alcotest.test_case "freeze refused while a 2PC branch is prepared"
          `Quick test_freeze_refused_under_prepared_lock;
      ] );
  ]
